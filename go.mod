module hammertime

go 1.22
