package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: hammertime
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkIdleFastForward/burst-8         	   87903	     11536 ns/op	372295625824678 cycles/s	39775173699 refs/s	       0 B/op	       0 allocs/op
BenchmarkIdleFastForward/per-ref-8       	     158	   7486842 ns/op	573668772413 cycles/s	  61289398 refs/s	       0 B/op	       0 allocs/op
BenchmarkSchedulerManyAgents             	      42	  28506544 ns/op	   8.9e+06 steps/s	    9464 B/op	     154 allocs/op
BenchmarkActHotPath/plain-8              	interrupted
PASS
ok  	hammertime	4.335s
`

func TestParseBench(t *testing.T) {
	results := make(map[string]map[string]float64)
	if err := parseBench(strings.NewReader(sampleBench), results); err != nil {
		t.Fatal(err)
	}
	// Sub-benchmark with the -8 procs suffix stripped.
	if got := results["BenchmarkIdleFastForward/burst"]["refs/s"]; got != 39775173699 {
		t.Errorf("burst refs/s = %g", got)
	}
	if got := results["BenchmarkIdleFastForward/burst"]["allocs/op"]; got != 0 {
		t.Errorf("burst allocs/op = %g", got)
	}
	// Scientific notation and a name with no procs suffix.
	if got := results["BenchmarkSchedulerManyAgents"]["steps/s"]; got != 8.9e6 {
		t.Errorf("steps/s = %g", got)
	}
	if got := results["BenchmarkSchedulerManyAgents"]["allocs/op"]; got != 154 {
		t.Errorf("allocs/op = %g", got)
	}
	// The mangled line must not contribute anything.
	if _, ok := results["BenchmarkActHotPath/plain"]; ok {
		t.Error("mangled benchmark line parsed")
	}
}

func writeFile(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunGates(t *testing.T) {
	bench := writeFile(t, "bench.txt", sampleBench)

	t.Run("pass", func(t *testing.T) {
		base := writeFile(t, "base.json", `[
			{"benchmark": "BenchmarkIdleFastForward/burst", "metric": "refs/s", "min": 4e10},
			{"benchmark": "BenchmarkIdleFastForward/burst", "metric": "allocs/op", "max": 0},
			{"benchmark": "BenchmarkSchedulerManyAgents", "metric": "steps/s", "min": 9e6}
		]`)
		var out strings.Builder
		// Floors slightly above the measurements: the 10% tolerance is
		// what lets them pass.
		if err := run(base, 0.10, []string{bench}, &out); err != nil {
			t.Fatalf("run: %v\n%s", err, out.String())
		}
	})

	t.Run("regression", func(t *testing.T) {
		base := writeFile(t, "base.json", `[
			{"benchmark": "BenchmarkIdleFastForward/per-ref", "metric": "refs/s", "min": 1e9}
		]`)
		var out strings.Builder
		if err := run(base, 0.10, []string{bench}, &out); err == nil {
			t.Fatalf("regressed floor passed:\n%s", out.String())
		} else if !strings.Contains(out.String(), "below floor") {
			t.Fatalf("unexpected output: %v\n%s", err, out.String())
		}
	})

	t.Run("alloc-ceiling", func(t *testing.T) {
		base := writeFile(t, "base.json", `[
			{"benchmark": "BenchmarkSchedulerManyAgents", "metric": "allocs/op", "max": 0}
		]`)
		var out strings.Builder
		if err := run(base, 0.10, []string{bench}, &out); err == nil {
			t.Fatalf("154 allocs/op passed a max-0 gate:\n%s", out.String())
		}
	})

	t.Run("missing-benchmark-fails", func(t *testing.T) {
		base := writeFile(t, "base.json", `[
			{"benchmark": "BenchmarkDoesNotExist", "metric": "ns/op", "min": 1}
		]`)
		var out strings.Builder
		if err := run(base, 0.10, []string{bench}, &out); err == nil {
			t.Fatalf("absent benchmark passed its gate:\n%s", out.String())
		} else if !strings.Contains(out.String(), "not found") {
			t.Fatalf("unexpected output: %v\n%s", err, out.String())
		}
	})

	t.Run("malformed-gate", func(t *testing.T) {
		base := writeFile(t, "base.json", `[
			{"benchmark": "BenchmarkIdleFastForward/burst", "metric": "refs/s"}
		]`)
		var out strings.Builder
		if err := run(base, 0.10, []string{bench}, &out); err == nil ||
			!strings.Contains(err.Error(), "exactly one of min, max or max_ratio") {
			t.Fatalf("gate without bound accepted: %v", err)
		}
	})

	t.Run("ratio-pass", func(t *testing.T) {
		// per-ref is ~649x the burst ns/op; a generous ceiling passes.
		base := writeFile(t, "base.json", `[
			{"benchmark": "BenchmarkIdleFastForward/per-ref", "metric": "ns/op",
			 "ratio_of": "BenchmarkIdleFastForward/burst", "max_ratio": 1000}
		]`)
		var out strings.Builder
		if err := run(base, 0.10, []string{bench}, &out); err != nil {
			t.Fatalf("run: %v\n%s", err, out.String())
		}
	})

	t.Run("ratio-regression", func(t *testing.T) {
		base := writeFile(t, "base.json", `[
			{"benchmark": "BenchmarkIdleFastForward/per-ref", "metric": "ns/op",
			 "ratio_of": "BenchmarkIdleFastForward/burst", "max_ratio": 2}
		]`)
		var out strings.Builder
		if err := run(base, 0.10, []string{bench}, &out); err == nil {
			t.Fatalf("649x ratio passed a 2x ceiling:\n%s", out.String())
		} else if !strings.Contains(out.String(), "above ratio ceiling") {
			t.Fatalf("unexpected output: %v\n%s", err, out.String())
		}
	})

	t.Run("ratio-missing-base", func(t *testing.T) {
		base := writeFile(t, "base.json", `[
			{"benchmark": "BenchmarkIdleFastForward/per-ref", "metric": "ns/op",
			 "ratio_of": "BenchmarkDoesNotExist", "max_ratio": 2}
		]`)
		var out strings.Builder
		if err := run(base, 0.10, []string{bench}, &out); err == nil {
			t.Fatalf("ratio gate with absent base passed:\n%s", out.String())
		} else if !strings.Contains(out.String(), "ratio base") {
			t.Fatalf("unexpected output: %v\n%s", err, out.String())
		}
	})

	t.Run("ratio-without-base-name", func(t *testing.T) {
		base := writeFile(t, "base.json", `[
			{"benchmark": "BenchmarkIdleFastForward/per-ref", "metric": "ns/op", "max_ratio": 2}
		]`)
		var out strings.Builder
		if err := run(base, 0.10, []string{bench}, &out); err == nil ||
			!strings.Contains(err.Error(), "ratio_of and max_ratio go together") {
			t.Fatalf("max_ratio without ratio_of accepted: %v", err)
		}
	})
}
