// Command benchgate compares `go test -bench` output against a committed
// baseline and fails on regressions. It is the CI tripwire for the
// event-driven core's throughput and the hot paths' zero-allocation
// guarantees: floors (min) gate throughput metrics like refs/s and
// steps/s, ceilings (max) gate allocs/op.
//
// Usage:
//
//	benchgate -baseline bench_baseline.json [-tolerance 0.10] bench.txt...
//
// The baseline is a JSON list of gates:
//
//	[{"benchmark": "BenchmarkIdleFastForward/burst", "metric": "refs/s", "min": 5e9},
//	 {"benchmark": "BenchmarkActHotPath/plain", "metric": "allocs/op", "max": 0},
//	 {"benchmark": "BenchmarkTelemetryGrid/on", "metric": "ns/op",
//	  "ratio_of": "BenchmarkTelemetryGrid/off", "max_ratio": 1.5}]
//
// A min gate fails when the measured value drops below min*(1-tolerance);
// a max gate fails when it exceeds max*(1+tolerance) (so max 0 means
// exactly zero). A ratio gate (ratio_of + max_ratio) divides the gated
// metric by the same metric of the ratio_of benchmark from the same run
// and fails when the quotient exceeds max_ratio*(1+tolerance) — it pins
// relative overhead (e.g. tracing on vs off) without pinning absolute
// machine speed. A gate whose benchmark or metric never appears in the
// input fails too: a silently-skipped benchmark must not pass the gate.
// Benchmark names are matched with the -N GOMAXPROCS suffix stripped.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Gate is one baseline entry: a benchmark metric with a floor, a
// ceiling, or a ceiling on its ratio to another benchmark's metric.
type Gate struct {
	Benchmark string   `json:"benchmark"`
	Metric    string   `json:"metric"`
	Min       *float64 `json:"min,omitempty"`
	Max       *float64 `json:"max,omitempty"`
	// RatioOf names the denominator benchmark (same metric) for a
	// MaxRatio gate.
	RatioOf  string   `json:"ratio_of,omitempty"`
	MaxRatio *float64 `json:"max_ratio,omitempty"`
}

func main() {
	var (
		baseline  = flag.String("baseline", "bench_baseline.json", "baseline JSON with gated metrics")
		tolerance = flag.Float64("tolerance", 0.10, "allowed relative regression before failing")
	)
	flag.Parse()
	if err := run(*baseline, *tolerance, flag.Args(), os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(1)
	}
}

func run(baseline string, tolerance float64, inputs []string, out io.Writer) error {
	if tolerance < 0 || tolerance >= 1 {
		return fmt.Errorf("tolerance %g out of range [0, 1)", tolerance)
	}
	data, err := os.ReadFile(baseline)
	if err != nil {
		return err
	}
	var gates []Gate
	if err := json.Unmarshal(data, &gates); err != nil {
		return fmt.Errorf("parse %s: %w", baseline, err)
	}
	if len(gates) == 0 {
		return fmt.Errorf("%s has no gates", baseline)
	}

	results := make(map[string]map[string]float64)
	if len(inputs) == 0 {
		if err := parseBench(os.Stdin, results); err != nil {
			return err
		}
	}
	for _, name := range inputs {
		f, err := os.Open(name)
		if err != nil {
			return err
		}
		err = parseBench(f, results)
		f.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
	}

	failures := 0
	for _, g := range gates {
		if err := g.validate(); err != nil {
			return err
		}
		val, ok := results[g.Benchmark][g.Metric]
		if !ok {
			failures++
			fmt.Fprintf(out, "FAIL %s %s: not found in benchmark output\n", g.Benchmark, g.Metric)
			continue
		}
		if g.MaxRatio != nil {
			base, ok := results[g.RatioOf][g.Metric]
			if !ok {
				failures++
				fmt.Fprintf(out, "FAIL %s %s: ratio base %s not found in benchmark output\n",
					g.Benchmark, g.Metric, g.RatioOf)
				continue
			}
			if base <= 0 {
				failures++
				fmt.Fprintf(out, "FAIL %s %s: ratio base %s is %g, cannot divide\n",
					g.Benchmark, g.Metric, g.RatioOf, base)
				continue
			}
			ratio := val / base
			if ratio > *g.MaxRatio*(1+tolerance) {
				failures++
				fmt.Fprintf(out, "FAIL %s %s: %gx of %s above ratio ceiling %gx (tolerance %g%%)\n",
					g.Benchmark, g.Metric, ratio, g.RatioOf, *g.MaxRatio, tolerance*100)
			} else {
				fmt.Fprintf(out, "ok   %s %s: %gx of %s\n", g.Benchmark, g.Metric, ratio, g.RatioOf)
			}
			continue
		}
		switch {
		case g.Min != nil && val < *g.Min*(1-tolerance):
			failures++
			fmt.Fprintf(out, "FAIL %s %s: %g below floor %g (tolerance %g%%)\n",
				g.Benchmark, g.Metric, val, *g.Min, tolerance*100)
		case g.Max != nil && val > *g.Max*(1+tolerance):
			failures++
			fmt.Fprintf(out, "FAIL %s %s: %g above ceiling %g (tolerance %g%%)\n",
				g.Benchmark, g.Metric, val, *g.Max, tolerance*100)
		default:
			fmt.Fprintf(out, "ok   %s %s: %g\n", g.Benchmark, g.Metric, val)
		}
	}
	if failures > 0 {
		return fmt.Errorf("%d of %d gates failed", failures, len(gates))
	}
	fmt.Fprintf(out, "all %d gates passed\n", len(gates))
	return nil
}

func (g Gate) validate() error {
	if g.Benchmark == "" || g.Metric == "" {
		return fmt.Errorf("gate %+v: benchmark and metric are required", g)
	}
	set := 0
	for _, p := range []*float64{g.Min, g.Max, g.MaxRatio} {
		if p != nil {
			set++
		}
	}
	if set != 1 {
		return fmt.Errorf("gate %s %s: exactly one of min, max or max_ratio is required", g.Benchmark, g.Metric)
	}
	if (g.MaxRatio != nil) != (g.RatioOf != "") {
		return fmt.Errorf("gate %s %s: ratio_of and max_ratio go together", g.Benchmark, g.Metric)
	}
	return nil
}

// parseBench scans `go test -bench` output and merges every measurement
// line into results[benchmark][unit]. Lines look like
//
//	BenchmarkName/sub-8   1000   1234 ns/op   5.6e+07 refs/s   0 B/op   0 allocs/op
//
// with (value, unit) pairs after the iteration count; values may use Go's
// %g scientific notation. Non-benchmark lines are ignored.
func parseBench(r io.Reader, results map[string]map[string]float64) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		if _, err := strconv.ParseUint(fields[1], 10, 64); err != nil {
			continue // e.g. the "Benchmarking..." prose of some tools
		}
		name := fields[0]
		// Strip the trailing -N GOMAXPROCS suffix go test appends.
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.ParseUint(name[i+1:], 10, 64); err == nil {
				name = name[:i]
			}
		}
		m := results[name]
		if m == nil {
			m = make(map[string]float64)
			results[name] = m
		}
		for i := 2; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break // mangled tail; keep what parsed cleanly
			}
			m[fields[i+1]] = val
		}
	}
	return sc.Err()
}
