package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hammertime/internal/trace"
)

func TestGenThenStats(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "trace.jsonl")
	if err := genCmd([]string{"-workload", "zipf", "-count", "5000", "-lines", "4096", "-out", out}); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	events, err := trace.Read(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 5000 {
		t.Fatalf("events = %d", len(events))
	}

	// stats path (stdout silenced).
	old := os.Stdout
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devnull
	defer func() {
		os.Stdout = old
		devnull.Close()
	}()
	if err := statsCmd([]string{"-in", out, "-top", "3"}); err != nil {
		t.Fatal(err)
	}
}

func TestGenAllWorkloads(t *testing.T) {
	dir := t.TempDir()
	for _, wl := range []string{"stream", "random", "chase"} {
		out := filepath.Join(dir, wl+".jsonl")
		if err := genCmd([]string{"-workload", wl, "-count", "100", "-lines", "64", "-out", out}); err != nil {
			t.Fatalf("%s: %v", wl, err)
		}
	}
	if err := genCmd([]string{"-workload", "bogus", "-out", filepath.Join(dir, "x")}); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestStatsMissingFile(t *testing.T) {
	if err := statsCmd([]string{"-in", "/nonexistent/trace.jsonl"}); err == nil {
		t.Fatal("missing trace accepted")
	}
}

func TestStatsTruncatedTrace(t *testing.T) {
	dir := t.TempDir()
	full := filepath.Join(dir, "full.jsonl")
	if err := genCmd([]string{"-count", "100", "-lines", "64", "-out", full}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	// Cut the file off mid-line, as an interrupted copy would.
	trunc := filepath.Join(dir, "trunc.jsonl")
	if err := os.WriteFile(trunc, data[:len(data)/2-3], 0o644); err != nil {
		t.Fatal(err)
	}
	err = statsCmd([]string{"-in", trunc, "-top", "3"})
	if err == nil {
		t.Fatal("truncated trace accepted")
	}
	if !strings.Contains(err.Error(), "trace: truncated at event") {
		t.Fatalf("err = %v, want truncated-at-event", err)
	}
}
