// Command hammertrace generates and analyzes memory-access traces.
//
// Generate a trace from a synthetic workload:
//
//	hammertrace gen -workload zipf -count 100000 -out trace.jsonl
//
// Summarize a trace (hottest DRAM rows under the default mapping — the
// offline view of what an ACT counter sees):
//
//	hammertrace stats -in trace.jsonl -top 10
package main

import (
	"flag"
	"fmt"
	"os"

	"hammertime/internal/addr"
	"hammertime/internal/cpu"
	"hammertime/internal/dram"
	"hammertime/internal/report"
	"hammertime/internal/sim"
	"hammertime/internal/trace"
	"hammertime/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: hammertrace gen|stats [flags]")
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "gen":
		err = genCmd(os.Args[2:])
	case "stats":
		err = statsCmd(os.Args[2:])
	default:
		err = fmt.Errorf("unknown subcommand %q (want gen or stats)", os.Args[1])
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "hammertrace:", err)
		os.Exit(1)
	}
}

func genCmd(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	var (
		wl    = fs.String("workload", "zipf", "workload: stream, random, zipf, chase")
		count = fs.Int("count", 100_000, "accesses to generate")
		nline = fs.Uint64("lines", 65536, "working-set size in cache lines")
		skew  = fs.Float64("skew", 0.99, "zipfian skew")
		seed  = fs.Uint64("seed", 1, "generator seed")
		out   = fs.String("out", "-", "output file (- for stdout)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	lines := make([]uint64, *nline)
	for i := range lines {
		lines[i] = uint64(i)
	}
	rng := sim.NewRNG(*seed)
	var prog cpu.Program
	var err error
	switch *wl {
	case "stream":
		prog, err = workload.Stream(lines, *count, 0)
	case "random":
		prog, err = workload.Random(lines, *count, 0, 0.3, rng)
	case "zipf":
		prog, err = workload.Zipfian(lines, *count, 0, *skew, rng)
	case "chase":
		prog, err = workload.PointerChase(lines, *count, 0, rng)
	default:
		return fmt.Errorf("unknown workload %q", *wl)
	}
	if err != nil {
		return err
	}

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer func() {
			if cerr := f.Close(); cerr != nil {
				fmt.Fprintln(os.Stderr, "hammertrace: close:", cerr)
			}
		}()
		w = f
	}
	tw := trace.NewWriter(w)
	rec := trace.Record(prog, tw)
	for {
		if _, ok := rec.Next(); !ok {
			break
		}
	}
	if tw.Count() != uint64(*count) {
		return fmt.Errorf("recorded %d of %d accesses (sink failed?)", tw.Count(), *count)
	}
	fmt.Fprintf(os.Stderr, "wrote %d events\n", tw.Count())
	return nil
}

func statsCmd(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	var (
		in  = fs.String("in", "-", "input trace (- for stdin)")
		top = fs.Int("top", 10, "rows to print")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	r := os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	events, err := trace.Read(r)
	if err != nil {
		return err
	}
	mapper := addr.NewLineInterleave(dram.DefaultGeometry())
	stats := trace.Summarize(events, mapper)
	tb := report.NewTable(
		fmt.Sprintf("hottest rows of %d accesses over %d rows", len(events), len(stats)),
		"bank", "row", "accesses")
	for i, s := range stats {
		if i >= *top {
			break
		}
		tb.AddRowf(s.Bank, s.Row, s.Accesses)
	}
	return tb.Render(os.Stdout)
}
