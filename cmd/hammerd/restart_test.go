package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestDaemonSIGKILLRestartResumes is the tentpole's process-level
// acceptance test: a daemon with -state-dir is SIGKILLed mid-simulation
// (no drain, no goodbye write), restarted over the same state dir, and
// the same job id must finish with a table byte-identical to an
// uninterrupted daemon's — the restarted process resumes from the cells
// the dead one already completed instead of starting over.
func TestDaemonSIGKILLRestartResumes(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the real binary")
	}
	const submission = `{"experiment":"e1","horizon":20000000}`

	submit := func(url string) string {
		t.Helper()
		resp, err := http.Post(url+"/v1/jobs", "application/json", strings.NewReader(submission))
		if err != nil {
			t.Fatal(err)
		}
		var view struct {
			ID string `json:"id"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted || view.ID == "" {
			t.Fatalf("submit: %d id=%q", resp.StatusCode, view.ID)
		}
		return view.ID
	}
	pollDone := func(url, id string, stderr *syncBuf) (restarts int) {
		t.Helper()
		deadline := time.Now().Add(120 * time.Second)
		for {
			if time.Now().After(deadline) {
				t.Fatalf("job %s never finished\nstderr:\n%s", id, stderr.String())
			}
			resp, err := http.Get(url + "/v1/jobs/" + id)
			if err != nil {
				t.Fatal(err)
			}
			var view struct {
				State    string `json:"state"`
				Restarts int    `json:"restarts"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			switch view.State {
			case "done":
				return view.Restarts
			case "failed", "cancelled":
				t.Fatalf("job %s: %s\nstderr:\n%s", id, view.State, stderr.String())
			}
			time.Sleep(50 * time.Millisecond)
		}
	}
	fetchTable := func(url, id string) []byte {
		t.Helper()
		resp, err := http.Get(url + "/v1/jobs/" + id + "/result")
		if err != nil {
			t.Fatal(err)
		}
		table, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || len(table) == 0 {
			t.Fatalf("result: %d\n%s", resp.StatusCode, table)
		}
		return table
	}

	// Reference: an uninterrupted daemon (no state dir) runs the same
	// submission to completion.
	var refErr syncBuf
	refURL, refCmd := startDaemon(t, &refErr, "-sessions", "1", "-rate", "-1")
	refID := submit(refURL)
	pollDone(refURL, refID, &refErr)
	want := fetchTable(refURL, refID)
	refCmd.Process.Kill()

	// Victim: same submission under -state-dir, SIGKILLed as soon as its
	// checkpoint shows completed cells — guaranteed mid-run, with
	// resumable state on disk and no chance to journal a terminal state.
	stateDir := filepath.Join(t.TempDir(), "state")
	var firstErr syncBuf
	firstURL, firstCmd := startDaemon(t, &firstErr,
		"-sessions", "1", "-rate", "-1", "-state-dir", stateDir)
	jobID := submit(firstURL)
	ckpt := filepath.Join(stateDir, "checkpoints", jobID+".ckpt")
	deadline := time.Now().Add(60 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatalf("job %s checkpointed no cells to kill over\nstderr:\n%s", jobID, firstErr.String())
		}
		if b, err := os.ReadFile(ckpt); err == nil && bytes.Count(b, []byte{'\n'}) >= 1 {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err := firstCmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	firstCmd.Wait()

	// Restart over the same state dir: the same job id must be found
	// mid-flight, resumed (restarts >= 1), and finish byte-identical.
	var secondErr syncBuf
	secondURL, _ := startDaemon(t, &secondErr,
		"-sessions", "1", "-rate", "-1", "-state-dir", stateDir)
	if restarts := pollDone(secondURL, jobID, &secondErr); restarts != 1 {
		t.Fatalf("resumed job reports restarts=%d, want 1\nstderr:\n%s", restarts, secondErr.String())
	}
	if !strings.Contains(secondErr.String(), "resuming 1 interrupted job") {
		t.Fatalf("restarted daemon did not announce the resume:\n%s", secondErr.String())
	}
	got := fetchTable(secondURL, jobID)
	if !bytes.Equal(got, want) {
		t.Errorf("resumed table differs from uninterrupted run:\n--- resumed ---\n%s\n--- baseline ---\n%s", got, want)
	}
	// The terminal job's checkpoint is cleaned out of the state dir.
	removeDeadline := time.Now().Add(10 * time.Second)
	for {
		if _, err := os.Stat(ckpt); os.IsNotExist(err) {
			break
		}
		if time.Now().After(removeDeadline) {
			t.Fatal("finished job's checkpoint file was never removed")
		}
		time.Sleep(20 * time.Millisecond)
	}
}
