// Command hammerd serves the experiment harness over HTTP: submit an
// experiment (e1..e10), poll its status, fetch the rendered table,
// cancel it mid-simulation. The daemon is built for long-running
// operation on shared hardware:
//
//   - a bounded session pool (-sessions) caps concurrent simulations;
//   - a bounded queue (-queue) plus per-client token buckets (-rate,
//     -burst) shed load with 429 + Retry-After instead of queueing
//     without bound; Retry-After is derived from the measured queue
//     drain rate (or the drain deadline), not a constant;
//   - per-job deadlines (-job-timeout, or "timeout" per request) and
//     client cancellation (DELETE) tear a running simulation down via
//     the cooperative cancellation threaded through the simulator's
//     hot loops — the machine unwinds at its next cancellation point,
//     auditor-consistent, not abandoned;
//   - a panicking simulation fails its own job and the session keeps
//     serving (per-session panic isolation);
//   - SIGINT/SIGTERM drains gracefully: /readyz flips to 503, running
//     and queued jobs finish (bounded by -drain-timeout, after which
//     they are cooperatively cancelled), then the daemon exits 0;
//   - -state-dir makes jobs durable: every accepted job is journaled
//     and running jobs checkpoint completed grid cells, so a crashed
//     (even SIGKILL'd) daemon restarts with finished jobs' tables
//     intact and interrupted jobs resumed — same job id, same trace id,
//     byte-identical table; -job-retention and -job-retention-count
//     bound the retained history;
//   - -chaos (or HAMMERTIME_CHAOS) arms the fault-injection middleware
//     — "latency=20ms:0.5,panic:0.1,cancel:0.2" — used by the CI soak;
//   - every job carries a telemetry trace (trace_id in the submit
//     response): GET /v1/jobs/{id}/events streams live progress over
//     SSE, GET /v1/jobs/{id}/trace returns the span tree as a Chrome
//     trace, and GET /metrics serves Prometheus text exposition when
//     asked for text/plain; -log-format/-log-level shape the
//     structured request/job logs on stderr.
//
// Beyond the standalone default, hammerd runs as a cluster:
//
//   - -coordinator accepts jobs as usual but shards each experiment's
//     grids cell-by-cell across registered workers, merging the partial
//     results byte-identically to a serial run. Straggler and dead-worker
//     cells are stolen and re-dispatched (or computed locally), so a
//     worker crash never loses a run. A content-addressed result cache
//     (-cache-bytes, -cache-spill) short-circuits cells already computed
//     under the same determinism epoch, seed and grid config;
//   - -worker http://coordinator:8077 turns the process into a stateless
//     cell executor: it registers with the coordinator (heartbeats double
//     as liveness), computes assigned cells with the same simulator, and
//     returns exact result JSON plus its span trace, which the
//     coordinator grafts into the job's trace.
//
// Quickstart:
//
//	hammerd -addr localhost:8077 &
//	curl -s -XPOST localhost:8077/v1/jobs -d '{"experiment":"e1","horizon":400000}'
//	curl -s localhost:8077/v1/jobs/job-1
//	curl -sN localhost:8077/v1/jobs/job-1/events   # live SSE progress
//	curl -s localhost:8077/v1/jobs/job-1/result
//	curl -s localhost:8077/v1/jobs/job-1/trace > trace.json  # open in Perfetto
//	curl -s -XDELETE localhost:8077/v1/jobs/job-1
//	curl -s localhost:8077/healthz
//	curl -s localhost:8077/metrics                         # JSON
//	curl -s -H 'Accept: text/plain' localhost:8077/metrics # Prometheus
//
// Cluster quickstart (one coordinator, two workers):
//
//	hammerd -coordinator -addr localhost:8077 &
//	hammerd -worker http://localhost:8077 -addr localhost:8078 &
//	hammerd -worker http://localhost:8077 -addr localhost:8079 &
//	curl -s localhost:8077/v1/cluster/workers
//	curl -s -XPOST localhost:8077/v1/jobs -d '{"experiment":"e1","horizon":400000}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"hammertime/internal/cluster"
	"hammertime/internal/cluster/resilience"
	"hammertime/internal/harness"
	"hammertime/internal/serve"
)

// options collects every flag; which subset applies depends on the mode
// (standalone, -coordinator, -worker).
type options struct {
	addr         string
	sessions     int
	queue        int
	rate         float64
	burst        int
	jobTimeout   time.Duration
	drainTimeout time.Duration
	chaosSpec    string
	chaosSeed    uint64
	trustClient  bool

	stateDir       string
	retentionAge   time.Duration
	retentionCount int

	coordinator     bool
	workerOf        string
	workerName      string
	advertise       string
	cacheBytes      int64
	cacheSpill      string
	dispatchTimeout time.Duration
	workerTTL       time.Duration
	batchCells      int

	clusterChaos     string
	clusterChaosSeed uint64
	rpcRetries       int
	breakerThreshold int
	breakerCooldown  time.Duration
	hedgeRounds      int
	auditFraction    float64
	auditSeed        uint64
	quarantineFor    time.Duration
	corruptResults   float64
	corruptSeed      uint64
}

func main() {
	var o options
	flag.StringVar(&o.addr, "addr", "localhost:8077", "HTTP listen address")
	flag.IntVar(&o.sessions, "sessions", 2, "session pool size: max concurrent simulations")
	flag.IntVar(&o.queue, "queue", 8, "max queued jobs; beyond this submissions are shed with 429")
	flag.Float64Var(&o.rate, "rate", 5, "per-client submissions per second (<0 disables rate limiting)")
	flag.IntVar(&o.burst, "burst", 10, "per-client token-bucket burst")
	flag.DurationVar(&o.jobTimeout, "job-timeout", 0, "per-job running deadline (0 = none); requests may tighten it")
	flag.DurationVar(&o.drainTimeout, "drain-timeout", 2*time.Minute, "graceful-drain bound on SIGTERM; running jobs are cancelled after it")
	flag.StringVar(&o.chaosSpec, "chaos", os.Getenv("HAMMERTIME_CHAOS"), "fault injection, e.g. latency=20ms:0.5,panic:0.1,cancel:0.2 (default $HAMMERTIME_CHAOS)")
	flag.Uint64Var(&o.chaosSeed, "chaos-seed", 1, "chaos RNG seed")
	flag.BoolVar(&o.trustClient, "trust-client-header", false, "key rate limiting by the unauthenticated X-Hammertime-Client header; enable only behind a proxy that strips or validates it")
	flag.StringVar(&o.stateDir, "state-dir", "", "persist jobs (journal + per-job checkpoints) under this directory; on restart, finished jobs reappear and interrupted ones resume from their last completed cells (empty = in-memory only)")
	flag.DurationVar(&o.retentionAge, "job-retention", 6*time.Hour, "evict finished jobs from the registry (and state dir) this long after completion (<0 disables the age bound)")
	flag.IntVar(&o.retentionCount, "job-retention-count", 4096, "max finished jobs retained; the oldest beyond this are evicted (<0 disables the count bound)")
	flag.BoolVar(&o.coordinator, "coordinator", false, "shard experiment grids across registered workers (see -worker)")
	flag.StringVar(&o.workerOf, "worker", "", "run as a cell worker for the coordinator at this URL (e.g. http://host:8077)")
	flag.StringVar(&o.workerName, "worker-name", "", "worker identity in the coordinator's registry (default hostname-pid)")
	flag.StringVar(&o.advertise, "advertise", "", "URL the coordinator should dial this worker on (default http://<listen addr>)")
	flag.Int64Var(&o.cacheBytes, "cache-bytes", 64<<20, "coordinator result-cache budget in bytes (in-memory LRU)")
	flag.StringVar(&o.cacheSpill, "cache-spill", "", "JSONL file persisting cache entries across restarts (empty = memory only)")
	flag.DurationVar(&o.dispatchTimeout, "dispatch-timeout", 2*time.Minute, "per-batch worker deadline; overrun batches are stolen and re-dispatched")
	flag.DurationVar(&o.workerTTL, "worker-ttl", 15*time.Second, "silence after which a worker leaves the live set; heartbeats run at a third of this")
	flag.IntVar(&o.batchCells, "batch-cells", 4, "max cells per dispatch batch")
	flag.StringVar(&o.clusterChaos, "cluster-chaos", os.Getenv("HAMMERTIME_CLUSTER_CHAOS"), "coordinator-side RPC fault injection, e.g. drop:0.1,delay=20ms:0.3,spike=80ms@10-30,partition=w2@40-60 (default $HAMMERTIME_CLUSTER_CHAOS)")
	flag.Uint64Var(&o.clusterChaosSeed, "cluster-chaos-seed", 1, "cluster chaos RNG seed; the fault schedule is a pure function of (seed, call index)")
	flag.IntVar(&o.rpcRetries, "rpc-retries", 2, "extra attempts per batch RPC against the same worker before the batch is stolen (<0 disables)")
	flag.IntVar(&o.breakerThreshold, "breaker-threshold", 3, "consecutive batch failures that open a worker's circuit breaker")
	flag.DurationVar(&o.breakerCooldown, "breaker-cooldown", 10*time.Second, "open-breaker cooldown before the worker half-opens for a probe batch")
	flag.IntVar(&o.hedgeRounds, "hedge-rounds", 2, "during the final N dispatch rounds, straggler batches are hedged to a second worker (<0 disables)")
	flag.Float64Var(&o.auditFraction, "audit-fraction", 0.05, "fraction of remotely computed cells re-executed locally and byte-compared; a mismatch quarantines the worker (0 disables)")
	flag.Uint64Var(&o.auditSeed, "audit-seed", 1, "seed selecting which cells the byte audit samples")
	flag.DurationVar(&o.quarantineFor, "quarantine-for", 10*time.Minute, "penalty window of a worker caught returning corrupt bytes; its heartbeats are ignored until it ends")
	flag.Float64Var(&o.corruptResults, "chaos-corrupt-results", 0, "worker-mode fault injection: probability per cell of returning corrupted result bytes (soak/CI only)")
	flag.Uint64Var(&o.corruptSeed, "chaos-corrupt-seed", 1, "seed for -chaos-corrupt-results")
	logFormat := flag.String("log-format", "text", "structured log format: text or json")
	logLevel := flag.String("log-level", "info", "log level: debug, info, warn, error")
	flag.Parse()

	logger, err := buildLogger(*logFormat, *logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hammerd:", err)
		os.Exit(1)
	}
	if o.coordinator && o.workerOf != "" {
		fmt.Fprintln(os.Stderr, "hammerd: -coordinator and -worker are mutually exclusive")
		os.Exit(1)
	}
	if o.workerOf != "" {
		err = runWorker(logger, o)
	} else {
		err = run(logger, o)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "hammerd:", err)
		os.Exit(1)
	}
}

// buildLogger constructs the daemon's structured logger on stderr. The
// handler choice only shapes the log records; the few fixed lifecycle
// lines ("listening", "drained, exiting") stay plain so operational
// scripts keep grepping them.
func buildLogger(format, level string) (*slog.Logger, error) {
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("log-level: %w", err)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	default:
		return nil, fmt.Errorf("log-format: unknown format %q (want text or json)", format)
	}
}

// buildDispatcher assembles the coordinator's cache, fault transport and
// dispatcher from the cache/cluster/resilience flags.
func buildDispatcher(logger *slog.Logger, o options) (*cluster.Dispatcher, error) {
	cache := cluster.NewResultCache(o.cacheBytes)
	if o.cacheSpill != "" {
		if err := cache.OpenSpill(o.cacheSpill); err != nil {
			return nil, fmt.Errorf("cache-spill: %w", err)
		}
		logger.Info("cache spill open", "path", o.cacheSpill, "entries", cache.Len())
	}
	breaker := resilience.BreakerConfig{Threshold: o.breakerThreshold, Cooldown: o.breakerCooldown}
	cfg := cluster.DispatcherConfig{
		Cache: cache,
		Registry: cluster.NewRegistryConfig(cluster.RegistryConfig{
			TTL:     o.workerTTL,
			Breaker: breaker,
		}),
		DispatchTimeout: o.dispatchTimeout,
		BatchSize:       o.batchCells,
		RPCRetries:      o.rpcRetries,
		Breaker:         breaker,
		HedgeRounds:     o.hedgeRounds,
		AuditFraction:   o.auditFraction,
		AuditSeed:       o.auditSeed,
		QuarantineFor:   o.quarantineFor,
		Log:             logger,
	}
	spec, err := resilience.ParseSpec(o.clusterChaos)
	if err != nil {
		return nil, fmt.Errorf("cluster-chaos: %w", err)
	}
	if spec.Enabled() {
		tr := resilience.NewTransport(nil, spec, o.clusterChaosSeed)
		cfg.Client = &http.Client{Transport: tr}
		cfg.Chaos = tr
		logger.Warn("cluster RPC chaos armed", "spec", spec.String(), "seed", o.clusterChaosSeed)
	}
	return cluster.NewDispatcher(cfg), nil
}

func run(logger *slog.Logger, o options) error {
	chaos, err := serve.ParseChaos(o.chaosSpec, o.chaosSeed)
	if err != nil {
		return err
	}
	// The harness's warnings (slow cells, failed grid cells) join the
	// daemon's structured log stream.
	harness.SetLogger(logger)
	cfg := serve.Config{
		Sessions:          o.sessions,
		QueueDepth:        o.queue,
		RatePerSec:        o.rate,
		Burst:             o.burst,
		JobTimeout:        o.jobTimeout,
		Chaos:             chaos,
		Logger:            logger,
		TrustClientHeader: o.trustClient,
		RetentionAge:      o.retentionAge,
		RetentionMax:      o.retentionCount,
	}
	if o.stateDir != "" {
		store, err := serve.OpenStore(o.stateDir)
		if err != nil {
			return fmt.Errorf("state-dir: %w", err)
		}
		defer store.Close()
		cfg.Store = store
	}

	var disp *cluster.Dispatcher
	if o.coordinator {
		if disp, err = buildDispatcher(logger, o); err != nil {
			return err
		}
		defer disp.Cache().Close()
		// Each job's grids run through the dispatcher when the request is
		// distributable; the delegate shards cells across live workers and
		// the job falls back to local execution when none are registered.
		cfg.Run = func(ctx context.Context, req serve.JobRequest) (string, error) {
			opts := harness.AttackOpts{}
			if del := disp.ForJob(req.Experiment, req.Horizon, opts); del != nil {
				ctx = harness.WithGridDelegate(ctx, del)
			}
			tb, err := harness.Experiment(ctx, req.Experiment, req.Horizon, opts)
			if err != nil {
				return "", err
			}
			return tb.String(), nil
		}
		// Cache hit/miss/steal counters and worker gauges join /metrics.
		cfg.ExtraMetrics = disp.MergeInto
	}
	mgr := serve.NewManager(cfg)
	if cfg.Store != nil {
		replayed, resumed := mgr.Recovered()
		logger.Info("job store open", "dir", o.stateDir, "replayed", replayed, "resumed", resumed)
		if resumed > 0 {
			// A fixed plain line like "listening": restart tooling greps it.
			fmt.Fprintf(os.Stderr, "hammerd: resuming %d interrupted job(s) from %s\n", resumed, o.stateDir)
		}
	}

	handler := serve.NewHandler(mgr)
	if disp != nil {
		mux := http.NewServeMux()
		disp.Mount(mux)
		mux.Handle("/", handler)
		handler = mux
	}

	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: handler}
	mode := "standalone"
	if o.coordinator {
		mode = "coordinator"
	}
	fmt.Fprintf(os.Stderr, "hammerd: listening on http://%s (%s sessions=%d queue=%d rate=%g/s chaos=%s)\n",
		ln.Addr(), mode, o.sessions, o.queue, o.rate, chaos)

	// Serve until the first SIGINT/SIGTERM, then drain: stop admitting
	// (readyz 503, submits 503), let in-flight jobs finish bounded by
	// drainTimeout, and exit 0. A drain overrun cancels the remaining
	// simulations cooperatively and still exits cleanly — the bound
	// exists so an orchestrator's SIGKILL grace window is never hit
	// with the daemon mid-write.
	sigCtx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()

	select {
	case err := <-errCh:
		return fmt.Errorf("serve: %w", err)
	case <-sigCtx.Done():
	}
	fmt.Fprintln(os.Stderr, "hammerd: signal received, draining")

	drainCtx, cancel := context.WithTimeout(context.Background(), o.drainTimeout)
	defer cancel()
	if err := mgr.Drain(drainCtx); err != nil {
		fmt.Fprintln(os.Stderr, "hammerd:", err)
	}
	// The pool is drained; now close the listener and let in-flight
	// HTTP responses (status polls racing the drain) finish.
	httpCtx, cancelHTTP := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancelHTTP()
	if err := srv.Shutdown(httpCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return fmt.Errorf("shutdown: %w", err)
	}
	<-errCh // Serve has returned ErrServerClosed
	fmt.Fprintln(os.Stderr, "hammerd: drained, exiting")
	return nil
}

// runWorker serves the stateless cell-executor surface and heartbeats
// against the coordinator until signalled. Shutdown is bounded by
// -drain-timeout: in-flight cell batches get that long to finish (the
// coordinator steals them anyway if they don't).
func runWorker(logger *slog.Logger, o options) error {
	harness.SetLogger(logger)
	name := o.workerName
	if name == "" {
		host, err := os.Hostname()
		if err != nil || host == "" {
			host = "worker"
		}
		name = fmt.Sprintf("%s-%d", host, os.Getpid())
	}

	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		return err
	}
	advertise := o.advertise
	if advertise == "" {
		advertise = "http://" + ln.Addr().String()
	}
	node := &cluster.WorkerNode{Name: name, Log: logger}
	handler := node.Handler()
	if o.corruptResults > 0 {
		// Byzantine-worker fault injection for soaks: correct shape and
		// keys, wrong bytes — only the coordinator's audit catches it.
		handler = resilience.CorruptCellResults(handler, o.corruptSeed, o.corruptResults)
		logger.Warn("worker corrupt-results chaos armed", "p", o.corruptResults, "seed", o.corruptSeed)
	}
	srv := &http.Server{Handler: handler}
	fmt.Fprintf(os.Stderr, "hammerd: worker %s listening on http://%s (coordinator %s, advertised as %s)\n",
		name, ln.Addr(), o.workerOf, advertise)

	sigCtx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go cluster.Heartbeat(sigCtx, nil, o.workerOf, name, advertise, o.workerTTL/3, logger)

	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()
	select {
	case err := <-errCh:
		return fmt.Errorf("serve: %w", err)
	case <-sigCtx.Done():
	}
	// Graceful drain: refuse new batches (503 + Retry-After — the
	// coordinator's retry machinery reroutes them), tell the coordinator
	// goodbye so it stops dispatching here immediately instead of waiting
	// out the TTL, finish in-flight batches bounded by -drain-timeout,
	// then close the server.
	fmt.Fprintln(os.Stderr, "hammerd: worker signal received, draining")
	node.StartDrain()
	drainCtx, cancelDrain := context.WithTimeout(context.Background(), o.drainTimeout)
	defer cancelDrain()
	if err := cluster.Deregister(drainCtx, nil, o.workerOf, name); err != nil {
		logger.Warn("deregister failed; coordinator will age this worker out", "err", err)
	}
	if err := node.WaitIdle(drainCtx); err != nil {
		// The coordinator steals overrun batches anyway; exit on schedule.
		logger.Warn("drain bound hit with batches still in flight", "err", err)
	}
	if err := srv.Shutdown(drainCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return fmt.Errorf("shutdown: %w", err)
	}
	<-errCh
	fmt.Fprintln(os.Stderr, "hammerd: worker exiting")
	return nil
}
