// Command hammerd serves the experiment harness over HTTP: submit an
// experiment (e1..e10), poll its status, fetch the rendered table,
// cancel it mid-simulation. The daemon is built for long-running
// operation on shared hardware:
//
//   - a bounded session pool (-sessions) caps concurrent simulations;
//   - a bounded queue (-queue) plus per-client token buckets (-rate,
//     -burst) shed load with 429 + Retry-After instead of queueing
//     without bound;
//   - per-job deadlines (-job-timeout, or "timeout" per request) and
//     client cancellation (DELETE) tear a running simulation down via
//     the cooperative cancellation threaded through the simulator's
//     hot loops — the machine unwinds at its next cancellation point,
//     auditor-consistent, not abandoned;
//   - a panicking simulation fails its own job and the session keeps
//     serving (per-session panic isolation);
//   - SIGINT/SIGTERM drains gracefully: /readyz flips to 503, running
//     and queued jobs finish (bounded by -drain-timeout, after which
//     they are cooperatively cancelled), then the daemon exits 0;
//   - -chaos (or HAMMERTIME_CHAOS) arms the fault-injection middleware
//     — "latency=20ms:0.5,panic:0.1,cancel:0.2" — used by the CI soak;
//   - every job carries a telemetry trace (trace_id in the submit
//     response): GET /v1/jobs/{id}/events streams live progress over
//     SSE, GET /v1/jobs/{id}/trace returns the span tree as a Chrome
//     trace, and GET /metrics serves Prometheus text exposition when
//     asked for text/plain; -log-format/-log-level shape the
//     structured request/job logs on stderr.
//
// Quickstart:
//
//	hammerd -addr localhost:8077 &
//	curl -s -XPOST localhost:8077/v1/jobs -d '{"experiment":"e1","horizon":400000}'
//	curl -s localhost:8077/v1/jobs/job-1
//	curl -sN localhost:8077/v1/jobs/job-1/events   # live SSE progress
//	curl -s localhost:8077/v1/jobs/job-1/result
//	curl -s localhost:8077/v1/jobs/job-1/trace > trace.json  # open in Perfetto
//	curl -s -XDELETE localhost:8077/v1/jobs/job-1
//	curl -s localhost:8077/healthz
//	curl -s localhost:8077/metrics                         # JSON
//	curl -s -H 'Accept: text/plain' localhost:8077/metrics # Prometheus
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"hammertime/internal/harness"
	"hammertime/internal/serve"
)

func main() {
	var (
		addr         = flag.String("addr", "localhost:8077", "HTTP listen address")
		sessions     = flag.Int("sessions", 2, "session pool size: max concurrent simulations")
		queue        = flag.Int("queue", 8, "max queued jobs; beyond this submissions are shed with 429")
		rate         = flag.Float64("rate", 5, "per-client submissions per second (<0 disables rate limiting)")
		burst        = flag.Int("burst", 10, "per-client token-bucket burst")
		jobTimeout   = flag.Duration("job-timeout", 0, "per-job running deadline (0 = none); requests may tighten it")
		drainTimeout = flag.Duration("drain-timeout", 2*time.Minute, "graceful-drain bound on SIGTERM; running jobs are cancelled after it")
		chaosSpec    = flag.String("chaos", os.Getenv("HAMMERTIME_CHAOS"), "fault injection, e.g. latency=20ms:0.5,panic:0.1,cancel:0.2 (default $HAMMERTIME_CHAOS)")
		chaosSeed    = flag.Uint64("chaos-seed", 1, "chaos RNG seed")
		logFormat    = flag.String("log-format", "text", "structured log format: text or json")
		logLevel     = flag.String("log-level", "info", "log level: debug, info, warn, error")
	)
	flag.Parse()
	logger, err := buildLogger(*logFormat, *logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hammerd:", err)
		os.Exit(1)
	}
	if err := run(logger, *addr, *sessions, *queue, *rate, *burst, *jobTimeout, *drainTimeout, *chaosSpec, *chaosSeed); err != nil {
		fmt.Fprintln(os.Stderr, "hammerd:", err)
		os.Exit(1)
	}
}

// buildLogger constructs the daemon's structured logger on stderr. The
// handler choice only shapes the log records; the few fixed lifecycle
// lines ("listening", "drained, exiting") stay plain so operational
// scripts keep grepping them.
func buildLogger(format, level string) (*slog.Logger, error) {
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("log-level: %w", err)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	default:
		return nil, fmt.Errorf("log-format: unknown format %q (want text or json)", format)
	}
}

func run(logger *slog.Logger, addr string, sessions, queue int, rate float64, burst int, jobTimeout, drainTimeout time.Duration, chaosSpec string, chaosSeed uint64) error {
	chaos, err := serve.ParseChaos(chaosSpec, chaosSeed)
	if err != nil {
		return err
	}
	// The harness's warnings (slow cells, failed grid cells) join the
	// daemon's structured log stream.
	harness.SetLogger(logger)
	mgr := serve.NewManager(serve.Config{
		Sessions:   sessions,
		QueueDepth: queue,
		RatePerSec: rate,
		Burst:      burst,
		JobTimeout: jobTimeout,
		Chaos:      chaos,
		Logger:     logger,
	})

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: serve.NewHandler(mgr)}
	fmt.Fprintf(os.Stderr, "hammerd: listening on http://%s (sessions=%d queue=%d rate=%g/s chaos=%s)\n",
		ln.Addr(), sessions, queue, rate, chaos)

	// Serve until the first SIGINT/SIGTERM, then drain: stop admitting
	// (readyz 503, submits 503), let in-flight jobs finish bounded by
	// drainTimeout, and exit 0. A drain overrun cancels the remaining
	// simulations cooperatively and still exits cleanly — the bound
	// exists so an orchestrator's SIGKILL grace window is never hit
	// with the daemon mid-write.
	sigCtx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()

	select {
	case err := <-errCh:
		return fmt.Errorf("serve: %w", err)
	case <-sigCtx.Done():
	}
	fmt.Fprintln(os.Stderr, "hammerd: signal received, draining")

	drainCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := mgr.Drain(drainCtx); err != nil {
		fmt.Fprintln(os.Stderr, "hammerd:", err)
	}
	// The pool is drained; now close the listener and let in-flight
	// HTTP responses (status polls racing the drain) finish.
	httpCtx, cancelHTTP := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancelHTTP()
	if err := srv.Shutdown(httpCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return fmt.Errorf("shutdown: %w", err)
	}
	<-errCh // Serve has returned ErrServerClosed
	fmt.Fprintln(os.Stderr, "hammerd: drained, exiting")
	return nil
}
