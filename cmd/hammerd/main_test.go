package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// TestRunRejectsBadChaosSpec pins the flag wiring: a malformed -chaos
// spec must fail startup, not silently disarm the middleware.
func TestRunRejectsBadChaosSpec(t *testing.T) {
	err := run(nil, options{
		addr: "localhost:0", sessions: 1, queue: 1, rate: -1, burst: 1,
		drainTimeout: time.Second, chaosSpec: "latency=nonsense", chaosSeed: 1,
	})
	if err == nil || !strings.Contains(err.Error(), "chaos") {
		t.Fatalf("bad chaos spec accepted: %v", err)
	}
}

// syncBuf collects daemon stderr from the reader goroutine while the
// test reads it for assertions.
type syncBuf struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuf) add(line string) {
	b.mu.Lock()
	fmt.Fprintln(&b.buf, line)
	b.mu.Unlock()
}

func (b *syncBuf) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// startDaemon builds and starts the real hammerd binary and returns its
// base URL (parsed from the startup banner) plus the running command.
func startDaemon(t *testing.T, stderr *syncBuf, extra ...string) (string, *exec.Cmd) {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "hammerd")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	args := append([]string{"-addr", "localhost:0"}, extra...)
	cmd := exec.Command(bin, args...)
	pr, pw := io.Pipe()
	cmd.Stderr = pw
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
		pw.Close()
	})

	// The banner is "hammerd: listening on http://HOST:PORT (...)"; it
	// carries the kernel-chosen port. It is not necessarily the first
	// stderr line (a -state-dir daemon logs its recovery first), so scan
	// for it. Keep draining stderr afterwards so the daemon never blocks
	// on a full pipe.
	lines := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(pr)
		found := false
		for sc.Scan() {
			line := sc.Text()
			stderr.add(line)
			if !found && strings.Contains(line, "listening on http://") {
				found = true
				lines <- line
			}
		}
		close(lines)
	}()
	select {
	case banner := <-lines:
		i := strings.Index(banner, "http://")
		if i < 0 {
			t.Fatalf("no URL in startup banner: %q", banner)
		}
		url := banner[i:]
		if j := strings.IndexByte(url, ' '); j >= 0 {
			url = url[:j]
		}
		return url, cmd
	case <-time.After(30 * time.Second):
		t.Fatal("daemon never printed its startup banner")
		return "", nil
	}
}

// TestDaemonServesAndDrainsOnSIGTERM is the end-to-end satellite test:
// the real binary comes up, serves /healthz and a submitted job, and a
// SIGTERM drains it to a zero exit.
func TestDaemonServesAndDrainsOnSIGTERM(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the real binary")
	}
	var stderr syncBuf
	url, cmd := startDaemon(t, &stderr, "-sessions", "1", "-rate", "-1", "-drain-timeout", "30s")

	resp, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v\nstderr:\n%s", err, stderr.String())
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}

	// Submit the cheapest real experiment and poll it to done — the
	// daemon runs actual simulations, not stubs.
	resp, err = http.Post(url+"/v1/jobs", "application/json",
		strings.NewReader(`{"experiment":"e7"}`))
	if err != nil {
		t.Fatal(err)
	}
	var view struct {
		ID    string `json:"id"`
		State string `json:"state"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || view.ID == "" {
		t.Fatalf("submit: %d %+v", resp.StatusCode, view)
	}
	deadline := time.Now().Add(60 * time.Second)
	for view.State != "done" {
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %q", view.State)
		}
		time.Sleep(50 * time.Millisecond)
		resp, err := http.Get(url + "/v1/jobs/" + view.ID)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if view.State == "failed" || view.State == "cancelled" {
			t.Fatalf("job %s: %s\nstderr:\n%s", view.ID, view.State, stderr.String())
		}
	}
	resp, err = http.Get(url + "/v1/jobs/" + view.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	table, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(table), "E7") {
		t.Fatalf("result: %d\n%s", resp.StatusCode, table)
	}

	// SIGTERM: graceful drain, exit 0.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	waited := make(chan error, 1)
	go func() { waited <- cmd.Wait() }()
	select {
	case err := <-waited:
		if err != nil {
			t.Fatalf("SIGTERM'd daemon exited nonzero: %v\nstderr:\n%s", err, stderr.String())
		}
	case <-time.After(60 * time.Second):
		t.Fatalf("daemon never exited after SIGTERM\nstderr:\n%s", stderr.String())
	}
	if !strings.Contains(stderr.String(), "drained, exiting") {
		t.Fatalf("daemon exited without draining:\n%s", stderr.String())
	}
}
