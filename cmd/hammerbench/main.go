// Command hammerbench regenerates every experiment table of the
// "Stop! Hammer Time" reproduction (E1-E10 in DESIGN.md): the protection
// matrix, the interleaving-throughput comparison, the density-scaling
// sweep, defense overheads, the TRRespass sweep, the ACT-interrupt
// comparison, the refresh-path micro-benchmark, the enclave semantics,
// the SECDED ECC outcome hierarchy and the Half-Double relay.
//
// Usage:
//
//	hammerbench [-experiment all|e1|..|e10|idle] [-horizon N] [-csv] [-parallel N]
//	            [-check] [-fail-soft] [-retries N] [-cell-timeout 30s] [-resume grid.ckpt]
//	            [-metrics-out bench.json] [-trace-events f -trace-format chrome]
//	            [-pprof-cpu f] [-pprof-http addr]
//
// -metrics-out emits a machine-readable performance report (the
// BENCH_harness.json shape): per-experiment and per-cell wall-clock plus
// simulated events/sec, as collected by the parallel harness.
// -trace-events records the simulator event stream of E1's cells (the
// sink is mutex-wrapped, so parallel cells interleave safely; use
// -parallel 1 for a single-machine-ordered trace).
//
// Experiments fan their independent (defense, attack, sweep-point) cells
// across a worker pool; -parallel caps the pool (0 = one worker per CPU,
// 1 = serial). Parallel and serial runs produce byte-identical tables —
// every cell simulates its own machine from a fixed seed — so -parallel
// only changes wall-clock time, which is reported per experiment on
// stderr to keep -csv output on stdout clean.
//
// -check attaches the online invariant auditor (internal/check) to every
// machine a grid cell builds: row-buffer legality, command ordering,
// refresh cadence/coverage and charge conservation are verified against
// an independent shadow model as each cell runs, plus an exact final
// state comparison. Observer-only (tables stay byte-identical); a
// violation fails the cell — combine with -fail-soft to render it as
// ERR(...) instead of aborting the grid.
//
// Long grids are fail-soft capable: -fail-soft records per-cell failures
// (panics included) and finishes the run with ERR(reason) placeholders
// in the affected cells; -retries and -cell-timeout bound flaky or hung
// cells. -resume names a checkpoint file to which completed cells are
// appended as they finish; a killed run restarted with the same flags
// skips the completed cells and produces byte-identical tables.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"hammertime/internal/core"

	"hammertime/internal/cliutil"
	"hammertime/internal/harness"
	"hammertime/internal/report"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "which experiment to run (all, e1..e10)")
		horizon    = flag.Uint64("horizon", 0, "simulation horizon in cycles (0 = per-experiment default)")
		csv        = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		parallel   = flag.Int("parallel", 0, "worker goroutines per experiment (0 = GOMAXPROCS, 1 = serial)")
		obsFlags   cliutil.ObsFlags
		robust     cliutil.RobustFlags
	)
	obsFlags.Register()
	robust.Register()
	flag.Parse()
	harness.SetParallelism(*parallel)
	ctx, stop := cliutil.ShutdownContext()
	defer stop()
	if err := run(ctx, strings.ToLower(*experiment), *horizon, *csv, obsFlags, robust); err != nil {
		if errors.Is(err, core.ErrCancelled) || errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "hammerbench: interrupted:", err)
		} else {
			fmt.Fprintln(os.Stderr, "hammerbench:", err)
		}
		os.Exit(1)
	}
}

func run(ctx context.Context, experiment string, horizon uint64, csv bool, obsFlags cliutil.ObsFlags, robust cliutil.RobustFlags) (err error) {
	// The recorder may serve many parallel cells; sync the sink.
	session, err := obsFlags.Start(true)
	if err != nil {
		return err
	}
	// Teardown errors (an unflushed trace, a checkpoint write that failed
	// mid-run) must reach the exit code, not just stderr.
	defer func() {
		if cerr := session.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("close observability: %w", cerr)
		}
	}()
	cleanup, err := robust.Apply(session.Recorder)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := cleanup(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	collector := harness.NewBenchCollector("hammerbench")
	harness.SetBenchCollector(collector)
	defer harness.SetBenchCollector(nil)
	// With -trace-events the grids record spans (grid, cells, machine
	// phases) into the trace alongside the event stream.
	ctx = session.Context(ctx)

	recorder := session.Recorder

	type exp struct {
		id  string
		gen func(ctx context.Context) (*report.Table, error)
	}
	experiments := []exp{
		{"e1", func(ctx context.Context) (*report.Table, error) {
			return harness.E1Matrix(ctx, nil, 12, harness.AttackOpts{Horizon: horizon, Observer: recorder})
		}},
		{"e2", func(ctx context.Context) (*report.Table, error) {
			tb, _, err := harness.E2Interleaving(ctx, horizon)
			return tb, err
		}},
		{"e3", func(ctx context.Context) (*report.Table, error) { return harness.E3DensityScaling(ctx, horizon) }},
		{"e4", func(ctx context.Context) (*report.Table, error) { return harness.E4Overhead(ctx, horizon, nil) }},
		{"e5", func(ctx context.Context) (*report.Table, error) { return harness.E5TRRBypass(ctx, horizon, nil, nil) }},
		{"e6", func(ctx context.Context) (*report.Table, error) {
			tb, _, err := harness.E6ActInterrupt(ctx, horizon)
			return tb, err
		}},
		{"e7", func(ctx context.Context) (*report.Table, error) {
			tb, _, err := harness.E7RefreshPath(ctx)
			return tb, err
		}},
		{"e8", func(ctx context.Context) (*report.Table, error) { return harness.E8Enclave(ctx, horizon) }},
		{"e9", func(ctx context.Context) (*report.Table, error) {
			tb, _, err := harness.E9ECC(ctx, nil)
			return tb, err
		}},
		{"e10", func(ctx context.Context) (*report.Table, error) { return harness.E10HalfDouble(ctx, horizon) }},
		{"idle", func(ctx context.Context) (*report.Table, error) { return harness.IdleFastForward(ctx, horizon) }},
	}

	ran := false
	for _, e := range experiments {
		if experiment != "all" && experiment != e.id {
			continue
		}
		ran = true
		start := time.Now()
		collector.Begin(e.id)
		tb, err := e.gen(ctx)
		collector.End()
		if err != nil {
			err = fmt.Errorf("%s: %w", e.id, err)
			// An interrupted run still flushes what it measured: the
			// deferred teardown closes the trace and checkpoint, and the
			// partial performance report is written here so a SIGTERM'd
			// grid leaves analyzable artifacts behind its nonzero exit.
			if errors.Is(err, core.ErrCancelled) || errors.Is(err, context.Canceled) {
				if werr := session.WriteMetrics(collector.Report()); werr != nil {
					fmt.Fprintln(os.Stderr, "hammerbench: flush on interrupt:", werr)
				}
			}
			return err
		}
		fmt.Fprintf(os.Stderr, "%s: %v (%d workers)\n",
			e.id, time.Since(start).Round(time.Millisecond), harness.Parallelism())
		if tb.Degraded() {
			fmt.Fprintf(os.Stderr, "%s: DEGRADED: %d cells failed and render as ERR(...) (fail-soft)\n",
				e.id, tb.DegradedCells())
		}
		if csv {
			if err := tb.RenderCSV(os.Stdout); err != nil {
				return err
			}
			fmt.Println()
			continue
		}
		if err := tb.Render(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q (want all, e1..e10 or idle)", experiment)
	}
	return session.WriteMetrics(collector.Report())
}
