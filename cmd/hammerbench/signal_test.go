package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"hammertime/internal/harness"
)

// buildHammerbench compiles the real binary so the test exercises the
// actual signal path (signal.NotifyContext -> context -> grid teardown),
// not an in-process approximation.
func buildHammerbench(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "hammerbench")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// TestSIGTERMLeavesResumableCheckpoint is the satellite regression test
// for interrupted grids: a SIGTERM mid-grid must exit nonzero but leave
// a non-torn checkpoint — one that OpenCheckpoint parses cleanly and a
// restart with identical flags resumes to completion.
func TestSIGTERMLeavesResumableCheckpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the real binary")
	}
	bin := buildHammerbench(t)
	ckpt := filepath.Join(t.TempDir(), "e1.ckpt")
	// Serial cells at this horizon take ~0.5s each over a ~14-cell grid:
	// slow enough to land the signal mid-grid, fast enough to resume.
	args := []string{"-experiment", "e1", "-horizon", "40000000", "-parallel", "1", "-resume", ckpt}

	var stderr bytes.Buffer
	cmd := exec.Command(bin, args...)
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}

	// Wait for at least one completed cell to be checkpointed, then
	// interrupt the grid.
	deadline := time.Now().Add(60 * time.Second)
	for {
		if fi, err := os.Stat(ckpt); err == nil && fi.Size() > 0 {
			break
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			t.Fatalf("no checkpoint appeared; stderr:\n%s", stderr.String())
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	err := cmd.Wait()
	if err == nil {
		t.Fatalf("SIGTERM'd run exited 0; a partial grid must not pass for a complete one\nstderr:\n%s", stderr.String())
	}
	if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != 1 {
		t.Fatalf("want exit code 1, got %v", err)
	}
	if !strings.Contains(stderr.String(), "interrupted") {
		t.Fatalf("stderr does not attribute the failure to the interrupt:\n%s", stderr.String())
	}

	// Non-torn: the checkpoint parses cleanly with completed cells.
	ck, err := harness.OpenCheckpoint(ckpt)
	if err != nil {
		t.Fatalf("SIGTERM left a torn checkpoint: %v", err)
	}
	loaded := ck.Loaded()
	if cerr := ck.Close(); cerr != nil {
		t.Fatal(cerr)
	}
	if loaded == 0 {
		t.Fatal("checkpoint parsed but holds no completed cells")
	}

	// Resumable: the same flags skip the completed cells and finish.
	var stderr2 bytes.Buffer
	resume := exec.Command(bin, args...)
	resume.Stderr = &stderr2
	if out, err := resume.Output(); err != nil {
		t.Fatalf("resumed run failed: %v\nstderr:\n%s", err, stderr2.String())
	} else if !strings.Contains(string(out), "E1") {
		t.Fatalf("resumed run produced no E1 table:\n%s", out)
	}
	t.Logf("interrupted with %d cells checkpointed; resume completed", loaded)
}
