package main

import (
	"context"
	"hammertime/internal/cliutil"

	"os"
	"testing"
	"time"
)

func silence(t *testing.T) {
	t.Helper()
	old := os.Stdout
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devnull
	t.Cleanup(func() {
		os.Stdout = old
		if err := devnull.Close(); err != nil {
			t.Error(err)
		}
	})
}

func TestRunSingleExperiment(t *testing.T) {
	silence(t)
	// E7 is the cheapest experiment; both render paths.
	if err := run(context.Background(), "e7", 0, false, cliutil.ObsFlags{}, cliutil.RobustFlags{}); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), "e7", 0, true, cliutil.ObsFlags{}, cliutil.RobustFlags{}); err != nil {
		t.Fatal(err)
	}
}

func TestRunWithHorizonOverride(t *testing.T) {
	silence(t)
	if err := run(context.Background(), "e8", 1_000_000, false, cliutil.ObsFlags{}, cliutil.RobustFlags{}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	silence(t)
	if err := run(context.Background(), "e99", 0, false, cliutil.ObsFlags{}, cliutil.RobustFlags{}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunFailSoftInjectedFailure(t *testing.T) {
	silence(t)
	t.Setenv("HAMMERTIME_FAIL_CELL", "e7:1:panic")
	// Strict: the injected per-cell panic aborts the run.
	if err := run(context.Background(), "e7", 0, false, cliutil.ObsFlags{}, cliutil.RobustFlags{}); err == nil {
		t.Fatal("injected cell failure did not abort the strict run")
	}
	// Fail-soft: the run completes; the cell renders as ERR(...).
	if err := run(context.Background(), "e7", 0, false, cliutil.ObsFlags{}, cliutil.RobustFlags{FailSoft: true}); err != nil {
		t.Fatalf("fail-soft run aborted: %v", err)
	}
}

func TestRunResumeCheckpoint(t *testing.T) {
	silence(t)
	ckpt := t.TempDir() + "/e7.ckpt"
	// First run dies on an injected failure; completed cells persist.
	t.Setenv("HAMMERTIME_FAIL_CELL", "e7:3:error")
	if err := run(context.Background(), "e7", 0, false, cliutil.ObsFlags{}, cliutil.RobustFlags{Resume: ckpt}); err == nil {
		t.Fatal("injected cell failure did not abort the strict run")
	}
	fi, err := os.Stat(ckpt)
	if err != nil || fi.Size() == 0 {
		t.Fatalf("interrupted run left no checkpoint: %v", err)
	}
	// Restart with the same flags resumes and completes.
	t.Setenv("HAMMERTIME_FAIL_CELL", "")
	if err := run(context.Background(), "e7", 0, false, cliutil.ObsFlags{}, cliutil.RobustFlags{Resume: ckpt}); err != nil {
		t.Fatalf("resumed run failed: %v", err)
	}
}

func TestRunRejectsBadRobustFlags(t *testing.T) {
	silence(t)
	if err := run(context.Background(), "e7", 0, false, cliutil.ObsFlags{}, cliutil.RobustFlags{Retries: -1}); err == nil {
		t.Fatal("negative retries accepted")
	}
	if err := run(context.Background(), "e7", 0, false, cliutil.ObsFlags{}, cliutil.RobustFlags{CellTimeout: -time.Second}); err == nil {
		t.Fatal("negative cell-timeout accepted")
	}
}
