package main

import (
	"hammertime/internal/cliutil"

	"os"
	"testing"
)

func silence(t *testing.T) {
	t.Helper()
	old := os.Stdout
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devnull
	t.Cleanup(func() {
		os.Stdout = old
		if err := devnull.Close(); err != nil {
			t.Error(err)
		}
	})
}

func TestRunSingleExperiment(t *testing.T) {
	silence(t)
	// E7 is the cheapest experiment; both render paths.
	if err := run("e7", 0, false, cliutil.ObsFlags{}); err != nil {
		t.Fatal(err)
	}
	if err := run("e7", 0, true, cliutil.ObsFlags{}); err != nil {
		t.Fatal(err)
	}
}

func TestRunWithHorizonOverride(t *testing.T) {
	silence(t)
	if err := run("e8", 1_000_000, false, cliutil.ObsFlags{}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	silence(t)
	if err := run("e99", 0, false, cliutil.ObsFlags{}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}
