// Command hammersim runs a single Rowhammer scenario: it builds a
// multi-tenant machine with the chosen DRAM generation and defense,
// launches the chosen attack from tenant 1 while the remaining tenants
// run benign workloads, and prints the outcome.
//
// Usage:
//
//	hammersim [-defense none] [-attack double] [-profile ddr4-old]
//	          [-horizon 4000000] [-tenants 3] [-pages 170] [-stats]
//	          [-check] [-fail-soft] [-retries N] [-cell-timeout 30s]
//	          [-trace-events f -trace-format jsonl|chrome]
//	          [-metrics-out f.json] [-pprof-cpu f] [-pprof-http addr]
//
// Attacks: single, double, many:<k>, dma. Defenses: see -list.
//
// -trace-events records the full simulator event stream (ACT/PRE/REF,
// row-buffer outcomes, defense triggers, bit flips, ...); with
// -trace-format=chrome the file opens directly in Perfetto or
// chrome://tracing, one track per bank plus defense/system tracks.
// -metrics-out dumps every counter, gauge, per-bank vector and histogram
// as JSON. Recording is observer-only: results are byte-identical with
// or without it.
//
// -check turns on the online invariant auditor (internal/check): the
// machine's event stream feeds an independent shadow model that verifies
// row-buffer legality, DDR command ordering, refresh cadence and
// coverage, and charge conservation as the run executes, and the final
// DRAM state bit for bit afterwards. Observer-only — results are
// byte-identical with or without it — and a violation fails the run
// with the offending event and a trace of its predecessors.
//
// The scenario runs under the harness robustness policy: -retries and
// -cell-timeout bound a flaky or hung simulation, and with -fail-soft a
// crash degrades into a reported ERR(reason) line and exit code 0
// instead of aborting — useful when hammersim runs as one step of a
// larger scripted sweep.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"hammertime/internal/attack"
	"hammertime/internal/cliutil"
	"hammertime/internal/core"
	"hammertime/internal/defense"
	"hammertime/internal/dram"
	"hammertime/internal/harness"
	"hammertime/internal/report"
	"hammertime/internal/trace"
)

func main() {
	var (
		defenseName = flag.String("defense", "none", "defense to enable (see -list)")
		attackName  = flag.String("attack", "double", "attack: single, double, many:<k>, dma")
		profileName = flag.String("profile", "lpddr4", "DRAM generation: ddr3, ddr4-old, ddr4-new, lpddr4, future")
		horizon     = flag.Uint64("horizon", 4_000_000, "simulation horizon in cycles")
		tenants     = flag.Int("tenants", 3, "number of tenant domains (tenant 1 attacks)")
		pages       = flag.Int("pages", 170, "pages allocated per tenant")
		seed        = flag.Uint64("seed", 1, "simulation seed")
		integrity   = flag.Bool("integrity", false, "victims are integrity-checked enclaves (§4.4)")
		stats       = flag.Bool("stats", false, "dump all simulator counters")
		traceOut    = flag.String("trace-out", "", "record the attacker's access stream to this file")
		traceIn     = flag.String("trace-in", "", "replay a recorded stream as the attack instead of planning one")
		list        = flag.Bool("list", false, "list available defenses and exit")
		obsFlags    cliutil.ObsFlags
		robust      cliutil.RobustFlags
	)
	obsFlags.Register()
	robust.Register()
	flag.Parse()
	if *list {
		fmt.Println("defenses:", strings.Join(defense.Names(), " "))
		return
	}
	ctx, stop := cliutil.ShutdownContext()
	defer stop()
	if err := run(ctx, *defenseName, *attackName, *profileName, *horizon, *tenants, *pages, *seed, *integrity, *stats, *traceOut, *traceIn, obsFlags, robust); err != nil {
		if errors.Is(err, core.ErrCancelled) || errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "hammersim: interrupted:", err)
		} else {
			fmt.Fprintln(os.Stderr, "hammersim:", err)
		}
		os.Exit(1)
	}
}

func profileByName(name string) (dram.DisturbanceProfile, error) {
	switch strings.ToLower(name) {
	case "ddr3":
		return dram.DDR3(), nil
	case "ddr4-old":
		return dram.DDR4Old(), nil
	case "ddr4-new":
		return dram.DDR4New(), nil
	case "lpddr4":
		return dram.LPDDR4(), nil
	case "future":
		return dram.FutureDense(), nil
	default:
		return dram.DisturbanceProfile{}, fmt.Errorf("unknown profile %q", name)
	}
}

func attackByName(name string) (attack.Kind, error) {
	switch {
	case name == "single":
		return attack.Kind{Name: "single-sided", Sided: 1}, nil
	case name == "double":
		return attack.Kind{Name: "double-sided", Sided: 2}, nil
	case name == "dma":
		return attack.Kind{Name: "dma-double-sided", Sided: 2, DMA: true}, nil
	case strings.HasPrefix(name, "many:"):
		k, err := strconv.Atoi(strings.TrimPrefix(name, "many:"))
		if err != nil || k < 3 {
			return attack.Kind{}, fmt.Errorf("bad many-sided count in %q", name)
		}
		return attack.Kind{Name: fmt.Sprintf("many-sided(%d)", k), Sided: k}, nil
	default:
		return attack.Kind{}, fmt.Errorf("unknown attack %q (want single, double, many:<k>, dma)", name)
	}
}

func run(ctx context.Context, defenseName, attackName, profileName string, horizon uint64, tenants, pages int, seed uint64, integrity, stats bool, traceOut, traceIn string, obsFlags cliutil.ObsFlags, robust cliutil.RobustFlags) (err error) {
	d, err := defense.New(defenseName)
	if err != nil {
		return err
	}
	kind, err := attackByName(attackName)
	if err != nil {
		return err
	}
	prof, err := profileByName(profileName)
	if err != nil {
		return err
	}
	spec := core.DefaultSpec()
	spec.Profile = prof
	spec.Seed = seed

	session, err := obsFlags.Start(false)
	if err != nil {
		return err
	}
	// Teardown errors (an unflushed trace sink, a failed profile close)
	// must reach the exit code, not just stderr.
	defer func() {
		if cerr := session.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("close observability: %w", cerr)
		}
	}()
	cleanup, err := robust.Apply(session.Recorder)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := cleanup(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	// With -trace-events the run's spans (machine.run, machine.drain)
	// are recorded alongside the event stream and exported at Close.
	ctx = session.Context(ctx)

	opts := harness.AttackOpts{
		Horizon:         horizon,
		Tenants:         tenants,
		PagesPerTenant:  pages,
		VictimIntegrity: integrity,
		Observer:        session.Recorder,
	}
	if traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			return err
		}
		defer func() {
			if cerr := f.Close(); cerr != nil && err == nil {
				err = fmt.Errorf("close trace: %w", cerr)
			}
		}()
		opts.AttackTrace = f
	}
	if traceIn != "" {
		f, err := os.Open(traceIn)
		if err != nil {
			return err
		}
		events, err := trace.Read(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		opts.ReplayAttack = events
	}

	// The scenario runs under the robustness policy: panics are contained,
	// -retries/-cell-timeout apply, and with -fail-soft a failure degrades
	// into a reported ERR line instead of a non-zero exit.
	out, ce := harness.GuardedCtx(ctx, "sim", func(ctx context.Context) (harness.AttackOutcome, error) {
		return harness.RunAttackCtx(ctx, spec, d, kind, opts)
	})
	if ce != nil {
		if !robust.FailSoft {
			return ce
		}
		fmt.Printf("machine:   %s, defense %s (%s class)\n", prof.Name, defenseName, d.Class())
		fmt.Printf("result:    %s\n", report.ErrCell(ce.Reason()))
		fmt.Println("verdict:   DEGRADED (fail-soft: scenario did not complete)")
		return nil
	}

	fmt.Printf("machine:   %s, %d banks x %d subarrays, defense %s (%s class)\n",
		prof.Name, spec.Geometry.Banks, spec.Geometry.SubarraysPerBank, out.Defense,
		d.Class())
	fmt.Printf("attack:    %s (planned as %s, cross-domain targets: %v)\n",
		out.Attack, out.PlanKind, out.PlannedCross)
	fmt.Printf("horizon:   %d cycles, ACTs issued: %d\n",
		horizon, out.Result.Stats.Counter("mc.acts"))
	fmt.Printf("result:    %d bit flips total, %d cross-domain\n", out.Flips, out.CrossFlips)
	if out.LockedUp {
		fmt.Println("integrity: machine LOCKED UP (detected corruption, denial of service)")
	}
	verdict := "attack DEFEATED"
	if out.Succeeded() {
		verdict = "attack SUCCEEDED (cross-domain corruption)"
	}
	fmt.Println("verdict:  ", verdict)
	fmt.Printf("benign:    %d tenant accesses completed\n", out.BenignSteps)
	if stats {
		fmt.Println("--- counters ---")
		fmt.Print(out.Result.Stats.String())
	}
	if err := session.WriteMetrics(out.Result.Stats.Snapshot()); err != nil {
		return err
	}
	return nil
}
