package main

import (
	"context"
	"encoding/json"
	"hammertime/internal/cliutil"

	"os"
	"testing"
)

// silence redirects stdout during a test body so table output does not
// pollute the test log.
func silence(t *testing.T) {
	t.Helper()
	old := os.Stdout
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devnull
	t.Cleanup(func() {
		os.Stdout = old
		if err := devnull.Close(); err != nil {
			t.Error(err)
		}
	})
}

func TestAttackByName(t *testing.T) {
	cases := map[string]struct {
		sided int
		dma   bool
		err   bool
	}{
		"single":  {sided: 1},
		"double":  {sided: 2},
		"dma":     {sided: 2, dma: true},
		"many:12": {sided: 12},
		"many:2":  {err: true},
		"many:x":  {err: true},
		"bogus":   {err: true},
	}
	for name, want := range cases {
		kind, err := attackByName(name)
		if want.err {
			if err == nil {
				t.Errorf("%s: expected error", name)
			}
			continue
		}
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if kind.Sided != want.sided || kind.DMA != want.dma {
			t.Errorf("%s: got %+v", name, kind)
		}
	}
}

func TestProfileByName(t *testing.T) {
	for _, name := range []string{"ddr3", "ddr4-old", "ddr4-new", "lpddr4", "future"} {
		if _, err := profileByName(name); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	if _, err := profileByName("ddr9"); err == nil {
		t.Error("unknown profile accepted")
	}
}

func TestRunEndToEnd(t *testing.T) {
	silence(t)
	if err := run(context.Background(), "none", "double", "lpddr4", 1_000_000, 3, 48, 1, false, true, "", "", cliutil.ObsFlags{}, cliutil.RobustFlags{}); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), "subarray", "dma", "lpddr4", 1_000_000, 3, 48, 1, false, false, "", "", cliutil.ObsFlags{}, cliutil.RobustFlags{}); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), "none", "double", "lpddr4", 500_000, 2, 16, 1, true, false, "", "", cliutil.ObsFlags{}, cliutil.RobustFlags{}); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadArgs(t *testing.T) {
	silence(t)
	if err := run(context.Background(), "bogus", "double", "lpddr4", 1000, 3, 16, 1, false, false, "", "", cliutil.ObsFlags{}, cliutil.RobustFlags{}); err == nil {
		t.Fatal("unknown defense accepted")
	}
	if err := run(context.Background(), "none", "bogus", "lpddr4", 1000, 3, 16, 1, false, false, "", "", cliutil.ObsFlags{}, cliutil.RobustFlags{}); err == nil {
		t.Fatal("unknown attack accepted")
	}
	if err := run(context.Background(), "none", "double", "bogus", 1000, 3, 16, 1, false, false, "", "", cliutil.ObsFlags{}, cliutil.RobustFlags{}); err == nil {
		t.Fatal("unknown profile accepted")
	}
}

func TestRunTraceRecordReplay(t *testing.T) {
	silence(t)
	dir := t.TempDir()
	out := dir + "/attack.jsonl"
	if err := run(context.Background(), "none", "double", "lpddr4", 500_000, 2, 16, 1, false, false, out, "", cliutil.ObsFlags{}, cliutil.RobustFlags{}); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(out); err != nil || fi.Size() == 0 {
		t.Fatalf("trace not written: %v", err)
	}
	// Replay the recorded attack against a different defense.
	if err := run(context.Background(), "swrefresh", "double", "lpddr4", 500_000, 2, 16, 1, false, false, "", out, cliutil.ObsFlags{}, cliutil.RobustFlags{}); err != nil {
		t.Fatal(err)
	}
}

func TestRunObservabilityFlags(t *testing.T) {
	silence(t)
	dir := t.TempDir()
	traceFile := dir + "/events.json"
	metricsFile := dir + "/metrics.json"
	flags := cliutil.ObsFlags{TraceEvents: traceFile, TraceFormat: "chrome", MetricsOut: metricsFile}
	if err := run(context.Background(), "swrefresh", "double", "lpddr4", 2_000_000, 2, 32, 1, false, false, "", "", flags, cliutil.RobustFlags{}); err != nil {
		t.Fatal(err)
	}

	// The trace must be valid Chrome trace-event JSON with ACT events on
	// at least two banks plus REF and defense-trigger events.
	data, err := os.ReadFile(traceFile)
	if err != nil {
		t.Fatal(err)
	}
	var tracefile struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Pid  int    `json:"pid"`
			Tid  int    `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &tracefile); err != nil {
		t.Fatalf("trace is not valid Chrome trace JSON: %v", err)
	}
	actBanks := map[int]bool{}
	kinds := map[string]int{}
	for _, ev := range tracefile.TraceEvents {
		kinds[ev.Name]++
		if ev.Name == "act" {
			actBanks[ev.Tid] = true
		}
	}
	if len(actBanks) < 2 {
		t.Errorf("ACT events cover %d banks, want >= 2", len(actBanks))
	}
	if kinds["ref"] == 0 || kinds["defense-trigger"] == 0 {
		t.Errorf("missing event kinds: %v", kinds)
	}

	// The metrics dump must parse and include at least one histogram.
	data, err = os.ReadFile(metricsFile)
	if err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Histograms []struct {
			Name  string `json:"name"`
			Count uint64 `json:"count"`
		} `json:"histograms"`
	}
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("metrics are not valid JSON: %v", err)
	}
	if len(snap.Histograms) == 0 {
		t.Fatal("metrics JSON has no histograms")
	}
	populated := false
	for _, h := range snap.Histograms {
		if h.Count > 0 {
			populated = true
		}
	}
	if !populated {
		t.Errorf("all histograms empty: %+v", snap.Histograms)
	}
}

func TestRunRejectsBadTraceFormat(t *testing.T) {
	silence(t)
	flags := cliutil.ObsFlags{TraceEvents: t.TempDir() + "/x", TraceFormat: "bogus"}
	if err := run(context.Background(), "none", "double", "lpddr4", 1000, 2, 16, 1, false, false, "", "", flags, cliutil.RobustFlags{}); err == nil {
		t.Fatal("unknown trace format accepted")
	}
}

func TestRunFailSoftDegradesInsteadOfAborting(t *testing.T) {
	silence(t)
	t.Setenv("HAMMERTIME_FAIL_CELL", "sim:0:panic")
	// Strict: the contained panic still fails the run.
	if err := run(context.Background(), "none", "double", "lpddr4", 200_000, 2, 16, 1, false, false, "", "", cliutil.ObsFlags{}, cliutil.RobustFlags{}); err == nil {
		t.Fatal("injected panic did not fail the strict run")
	}
	// Fail-soft: the scenario degrades to an ERR line and exit code 0.
	if err := run(context.Background(), "none", "double", "lpddr4", 200_000, 2, 16, 1, false, false, "", "", cliutil.ObsFlags{}, cliutil.RobustFlags{FailSoft: true}); err != nil {
		t.Fatalf("fail-soft run returned %v", err)
	}
}

func TestRunRetriesRecoverTransientFailure(t *testing.T) {
	silence(t)
	t.Setenv("HAMMERTIME_FAIL_CELL", "sim:0:once")
	if err := run(context.Background(), "none", "double", "lpddr4", 200_000, 2, 16, 1, false, false, "", "", cliutil.ObsFlags{}, cliutil.RobustFlags{Retries: 1}); err != nil {
		t.Fatalf("one retry did not recover the transient failure: %v", err)
	}
}
