package main

import (
	"os"
	"testing"
)

// silence redirects stdout during a test body so table output does not
// pollute the test log.
func silence(t *testing.T) {
	t.Helper()
	old := os.Stdout
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devnull
	t.Cleanup(func() {
		os.Stdout = old
		if err := devnull.Close(); err != nil {
			t.Error(err)
		}
	})
}

func TestAttackByName(t *testing.T) {
	cases := map[string]struct {
		sided int
		dma   bool
		err   bool
	}{
		"single":  {sided: 1},
		"double":  {sided: 2},
		"dma":     {sided: 2, dma: true},
		"many:12": {sided: 12},
		"many:2":  {err: true},
		"many:x":  {err: true},
		"bogus":   {err: true},
	}
	for name, want := range cases {
		kind, err := attackByName(name)
		if want.err {
			if err == nil {
				t.Errorf("%s: expected error", name)
			}
			continue
		}
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if kind.Sided != want.sided || kind.DMA != want.dma {
			t.Errorf("%s: got %+v", name, kind)
		}
	}
}

func TestProfileByName(t *testing.T) {
	for _, name := range []string{"ddr3", "ddr4-old", "ddr4-new", "lpddr4", "future"} {
		if _, err := profileByName(name); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	if _, err := profileByName("ddr9"); err == nil {
		t.Error("unknown profile accepted")
	}
}

func TestRunEndToEnd(t *testing.T) {
	silence(t)
	if err := run("none", "double", "lpddr4", 1_000_000, 3, 48, 1, false, true, "", ""); err != nil {
		t.Fatal(err)
	}
	if err := run("subarray", "dma", "lpddr4", 1_000_000, 3, 48, 1, false, false, "", ""); err != nil {
		t.Fatal(err)
	}
	if err := run("none", "double", "lpddr4", 500_000, 2, 16, 1, true, false, "", ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadArgs(t *testing.T) {
	silence(t)
	if err := run("bogus", "double", "lpddr4", 1000, 3, 16, 1, false, false, "", ""); err == nil {
		t.Fatal("unknown defense accepted")
	}
	if err := run("none", "bogus", "lpddr4", 1000, 3, 16, 1, false, false, "", ""); err == nil {
		t.Fatal("unknown attack accepted")
	}
	if err := run("none", "double", "bogus", 1000, 3, 16, 1, false, false, "", ""); err == nil {
		t.Fatal("unknown profile accepted")
	}
}

func TestRunTraceRecordReplay(t *testing.T) {
	silence(t)
	dir := t.TempDir()
	out := dir + "/attack.jsonl"
	if err := run("none", "double", "lpddr4", 500_000, 2, 16, 1, false, false, out, ""); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(out); err != nil || fi.Size() == 0 {
		t.Fatalf("trace not written: %v", err)
	}
	// Replay the recorded attack against a different defense.
	if err := run("swrefresh", "double", "lpddr4", 500_000, 2, 16, 1, false, false, "", out); err != nil {
		t.Fatal(err)
	}
}
