// Command hammerprobe demonstrates the §2.1/§4.1 inference methods: it
// uses the success or failure of Rowhammer itself to reveal the module's
// subarray boundaries and blast radius from software, without any vendor
// documentation — the capability subarray-aware allocation relies on when
// DRAM vendors expose nothing.
//
// Usage:
//
//	hammerprobe [-bank 0] [-from 56] [-to 72] [-profile lpddr4]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"hammertime/internal/attack"
	"hammertime/internal/core"
	"hammertime/internal/dram"
)

func main() {
	var (
		bank    = flag.Int("bank", 0, "bank to probe")
		from    = flag.Int("from", 56, "first row of the probed range")
		to      = flag.Int("to", 72, "last row of the probed range")
		profile = flag.String("profile", "lpddr4", "DRAM generation: ddr3, ddr4-old, ddr4-new, lpddr4, future")
		seed    = flag.Uint64("seed", 1, "simulation seed")
	)
	flag.Parse()
	if err := run(*bank, *from, *to, *profile, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "hammerprobe:", err)
		os.Exit(1)
	}
}

func run(bank, from, to int, profile string, seed uint64) error {
	spec := core.DefaultSpec()
	spec.Seed = seed
	switch strings.ToLower(profile) {
	case "ddr3":
		spec.Profile = dram.DDR3()
	case "ddr4-old":
		spec.Profile = dram.DDR4Old()
	case "ddr4-new":
		spec.Profile = dram.DDR4New()
	case "lpddr4":
		spec.Profile = dram.LPDDR4()
	case "future":
		spec.Profile = dram.FutureDense()
	default:
		return fmt.Errorf("unknown profile %q", profile)
	}
	if from < 0 || to <= from {
		return fmt.Errorf("bad row range [%d, %d]", from, to)
	}

	m, err := core.NewMachine(spec)
	if err != nil {
		return err
	}
	// The prober needs its own data in every probed row: allocate the
	// whole module to one domain.
	d := m.Kernel.CreateDomain("prober", false, false)
	totalPages := int(m.Spec.Geometry.TotalBytes() / 4096)
	if _, err := m.Kernel.AllocPages(d.ID, 0, totalPages); err != nil {
		return err
	}
	p := attack.NewProber(m, d.ID)

	fmt.Printf("module: %s (MAC %d, true blast radius %d), %d rows/subarray\n",
		spec.Profile.Name, spec.Profile.MAC, spec.Profile.BlastRadius,
		spec.Geometry.RowsPerSubarray)
	fmt.Printf("probing bank %d rows %d..%d with the hammer-and-verify method...\n\n", bank, from, to)

	boundaries, err := p.InferSubarrayBoundaries(bank, from, to)
	if err != nil {
		return err
	}
	if len(boundaries) == 0 {
		fmt.Println("no subarray boundary found in the probed range")
	}
	for _, b := range boundaries {
		fmt.Printf("subarray boundary detected between rows %d and %d\n", b, b+1)
	}

	probeRow := from
	if len(boundaries) > 0 {
		// Probe the blast radius from inside a subarray, away from the
		// boundary, so the measurement is not truncated.
		probeRow = boundaries[0] + 1 + spec.Geometry.RowsPerSubarray/2
	}
	radius, err := p.InferBlastRadius(bank, probeRow, 8)
	if err != nil {
		return err
	}
	fmt.Printf("\nblast radius inferred from row %d: %d (true: %d)\n",
		probeRow, radius, spec.Profile.BlastRadius)
	fmt.Printf("probe cost: %d activations\n", m.MC.Stats().Counter("mc.acts"))
	return nil
}
