package main

import (
	"os"
	"testing"
)

func silence(t *testing.T) {
	t.Helper()
	old := os.Stdout
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devnull
	t.Cleanup(func() {
		os.Stdout = old
		if err := devnull.Close(); err != nil {
			t.Error(err)
		}
	})
}

func TestRunProbesBoundary(t *testing.T) {
	silence(t)
	// Rows 62..66 straddle the 63/64 subarray boundary; LPDDR4's MAC is
	// small enough to keep the probe quick.
	if err := run(0, 62, 66, "lpddr4", 1); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadArgs(t *testing.T) {
	silence(t)
	if err := run(0, 10, 5, "lpddr4", 1); err == nil {
		t.Fatal("inverted row range accepted")
	}
	if err := run(0, 0, 4, "ddr9", 1); err == nil {
		t.Fatal("unknown profile accepted")
	}
}
