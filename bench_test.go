// Package hammertime's root benchmark suite regenerates every experiment
// table/figure of the reproduction (one benchmark per experiment; see
// DESIGN.md's index) and measures the simulator's own hot paths. The
// experiment benchmarks run reduced parameter sets suitable for
// `go test -bench`; `cmd/hammerbench` produces the full tables.
package hammertime

import (
	"context"
	"testing"

	"hammertime/internal/addr"
	"hammertime/internal/attack"
	"hammertime/internal/cache"
	"hammertime/internal/core"
	"hammertime/internal/defense"
	"hammertime/internal/dram"
	"hammertime/internal/harness"
	"hammertime/internal/memctrl"
	"hammertime/internal/telemetry"
)

// --- Experiment benchmarks (E1-E8) ---

// BenchmarkE1ProtectionMatrix regenerates a slice of the Table 1 matrix:
// one defense per taxonomy class against the full attack catalog.
func BenchmarkE1ProtectionMatrix(b *testing.B) {
	var cross uint64
	for i := 0; i < b.N; i++ {
		tb, err := harness.E1Matrix(context.Background(), 
			[]string{"none", "trr", "subarray", "actremap", "swrefresh", "anvil"},
			12, harness.AttackOpts{Horizon: 2_000_000})
		if err != nil {
			b.Fatal(err)
		}
		cross += uint64(len(tb.Rows))
	}
	b.ReportMetric(float64(cross)/float64(b.N), "defenses/op")
}

// BenchmarkE2Interleaving regenerates the interleaving-throughput figure.
func BenchmarkE2Interleaving(b *testing.B) {
	var loss float64
	for i := 0; i < b.N; i++ {
		_, results, err := harness.E2Interleaving(context.Background(), 1_000_000)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range results {
			if r.Scheme == "bank-partition(4)" && r.Workload == "stream" {
				loss = r.LossVsInterleave
			}
		}
	}
	b.ReportMetric(loss, "bankpart-stream-loss-%")
}

// BenchmarkE3DensityScaling regenerates the generation sweep.
func BenchmarkE3DensityScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := harness.E3DensityScaling(context.Background(), 6_000_000); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE4Overhead regenerates the benign-slowdown table.
func BenchmarkE4Overhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := harness.E4Overhead(context.Background(), 600_000, []float64{0.001, 0.02}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE5TRRBypass regenerates the TRRespass sweep (reduced points).
func BenchmarkE5TRRBypass(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := harness.E5TRRBypass(context.Background(), 16_000_000, []int{2, 12}, []int{4}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE6ActInterrupt regenerates the counter-design comparison.
func BenchmarkE6ActInterrupt(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := harness.E6ActInterrupt(context.Background(), 3_000_000); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE7RefreshInstr regenerates the refresh-path micro-comparison
// and reports the headline numbers: cycles per targeted refresh by path.
func BenchmarkE7RefreshInstr(b *testing.B) {
	var instr, load float64
	for i := 0; i < b.N; i++ {
		_, results, err := harness.E7RefreshPath(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range results {
			if r.BankState != "other row open" {
				continue
			}
			switch r.Method {
			case harness.E7RefreshInstr:
				instr = float64(r.Cycles)
			case harness.E7LoadPath:
				load = float64(r.Cycles)
			}
		}
	}
	b.ReportMetric(instr, "refresh-instr-cycles")
	b.ReportMetric(load, "clflush+load-cycles")
}

// BenchmarkE8Enclave regenerates the enclave-semantics table.
func BenchmarkE8Enclave(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := harness.E8Enclave(context.Background(), 2_000_000); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE9ECC regenerates the SECDED outcome hierarchy.
func BenchmarkE9ECC(b *testing.B) {
	var silent uint64
	for i := 0; i < b.N; i++ {
		_, outs, err := harness.E9ECC(context.Background(), []uint64{2_000_000, 8_000_000})
		if err != nil {
			b.Fatal(err)
		}
		silent = outs[len(outs)-1].Silent
	}
	b.ReportMetric(float64(silent), "silent-corruptions")
}

// BenchmarkE10HalfDouble regenerates the mitigation-relay comparison.
func BenchmarkE10HalfDouble(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := harness.E10HalfDouble(context.Background(), 0); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation benchmarks (design choices called out in DESIGN.md) ---

// BenchmarkAblationUncoreMove contrasts page-migration cost with and
// without the §4.2 uncore move instruction.
func BenchmarkAblationUncoreMove(b *testing.B) {
	for _, uncore := range []bool{false, true} {
		name := "kernel-copy"
		if uncore {
			name = "uncore-move"
		}
		b.Run(name, func(b *testing.B) {
			m, err := core.NewMachine(core.DefaultSpec())
			if err != nil {
				b.Fatal(err)
			}
			d := m.Kernel.CreateDomain("d", false, false)
			// A fixed pool: every migration frees its old frame, so the
			// footprint stays constant no matter how large b.N grows.
			const pool = 64
			if _, err := m.Kernel.AllocPages(d.ID, 0, pool); err != nil {
				b.Fatal(err)
			}
			if uncore {
				m.Kernel.EnableUncoreMove()
			}
			var cycles uint64
			now := uint64(0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := m.Kernel.MigratePage(d.ID, uint64(i%pool), now)
				if err != nil {
					b.Fatal(err)
				}
				cycles += res.Completion - now
				now = res.Completion
			}
			b.ReportMetric(float64(cycles)/float64(b.N), "sim-cycles/migration")
		})
	}
}

// BenchmarkAblationPagePolicy contrasts open- vs closed-page row-buffer
// policy under an attack run: closed-page slows the attacker (every
// access activates — but so does every benign access).
func BenchmarkAblationPagePolicy(b *testing.B) {
	for _, closed := range []bool{false, true} {
		name := "open-page"
		if closed {
			name = "closed-page"
		}
		b.Run(name, func(b *testing.B) {
			var acts uint64
			for i := 0; i < b.N; i++ {
				spec := core.DefaultSpec()
				spec.Profile = dram.LPDDR4()
				spec.ClosedPage = closed
				out, err := harness.RunAttack(spec, defense.None{},
					attack.Kind{Name: "double-sided", Sided: 2},
					harness.AttackOpts{Horizon: 1_000_000})
				if err != nil {
					b.Fatal(err)
				}
				acts += uint64(out.Result.Stats.Counter("mc.acts"))
			}
			b.ReportMetric(float64(acts)/float64(b.N), "acts/run")
		})
	}
}

// BenchmarkAblationDetectorRandomization contrasts fixed vs randomized
// counter resets against the evasive attacker (E6's core ablation).
func BenchmarkAblationDetectorRandomization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := harness.E6ActInterrupt(context.Background(), 2_000_000); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Simulator hot-path micro-benchmarks ---

func BenchmarkDRAMActivate(b *testing.B) {
	m, err := dram.NewModule(dram.Config{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Activate(i%8, (i*7)%1024, uint64(i), -1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMCServeRowHit(b *testing.B) {
	mod, err := dram.NewModule(dram.Config{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	mc, err := memctrl.NewController(memctrl.Config{
		Mapper: addr.NewLineInterleave(mod.Geometry()), DRAM: mod, OpenPage: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	now := uint64(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := mc.ServeRequest(memctrl.Request{Line: uint64(i % 8)}, now)
		if err != nil {
			b.Fatal(err)
		}
		now = res.Completion
	}
}

func BenchmarkMCServeRowConflict(b *testing.B) {
	mod, err := dram.NewModule(dram.Config{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	mc, err := memctrl.NewController(memctrl.Config{
		Mapper: addr.NewLineInterleave(mod.Geometry()), DRAM: mod, OpenPage: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	g := mod.Geometry()
	stripe := uint64(g.Banks * g.ColumnsPerRow)
	now := uint64(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := mc.ServeRequest(memctrl.Request{Line: uint64(i%2) * stripe}, now)
		if err != nil {
			b.Fatal(err)
		}
		now = res.Completion
	}
}

func BenchmarkCacheAccess(b *testing.B) {
	c, err := cache.New(cache.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(uint64(i%100000), i%3 == 0)
	}
}

func BenchmarkMapperLineInterleave(b *testing.B) {
	m := addr.NewLineInterleave(dram.DefaultGeometry())
	total := m.Geometry().TotalLines()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := m.Map(uint64(i) % total)
		if m.Unmap(d) != uint64(i)%total {
			b.Fatal("bijection broken")
		}
	}
}

func BenchmarkMapperSubarrayIsolated(b *testing.B) {
	g := dram.DefaultGeometry()
	part, err := addr.NewPartition(g, 4)
	if err != nil {
		b.Fatal(err)
	}
	m, err := addr.NewSubarrayIsolated(addr.NewLineInterleave(g), part)
	if err != nil {
		b.Fatal(err)
	}
	total := g.TotalLines()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := m.Map(uint64(i) % total)
		if m.Unmap(d) != uint64(i)%total {
			b.Fatal("bijection broken")
		}
	}
}

// BenchmarkHammerThroughput measures simulated attacker throughput — how
// many hammering accesses per wall-clock second the simulator sustains.
func BenchmarkHammerThroughput(b *testing.B) {
	spec := core.DefaultSpec()
	m, err := core.NewMachine(spec)
	if err != nil {
		b.Fatal(err)
	}
	d := m.Kernel.CreateDomain("attacker", false, false)
	if _, err := m.Kernel.AllocPages(d.ID, 0, 8); err != nil {
		b.Fatal(err)
	}
	g := spec.Geometry
	stripe := uint64(g.Banks * g.ColumnsPerRow)
	now := uint64(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := m.MC.ServeRequest(memctrl.Request{Line: uint64(i%2) * 2 * stripe, Domain: d.ID}, now)
		if err != nil {
			b.Fatal(err)
		}
		now = res.Completion
	}
}

// --- ACT hot-path benchmarks (dense per-bank state) ---

// BenchmarkActHotPath measures the per-activation cost of the DRAM module
// with its dense disturbance/ACT-count slices, plain and with the in-DRAM
// TRR tracker engaged. The stride-7 row walk (as in BenchmarkDRAMActivate)
// spreads disturbance so the path is pure bookkeeping; steady state is
// 0 allocs/op.
func BenchmarkActHotPath(b *testing.B) {
	for _, v := range []struct {
		name string
		trr  bool
	}{{"plain", false}, {"trr", true}} {
		b.Run(v.name, func(b *testing.B) {
			cfg := dram.Config{Seed: 1}
			if v.trr {
				trr := dram.DefaultTRR()
				cfg.TRR = &trr
			}
			m, err := dram.NewModule(cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := m.Activate(i%8, (i*7)%1024, uint64(i), -1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMCActCounterHotPath measures the controller's full per-ACT
// bookkeeping stack — the ACT counter, the Graphene Misra-Gries tracker,
// and the BlockHammer rate limiter — under row-conflict traffic where
// every request activates. All three index dense per-bank state; steady
// state is 0 allocs/op.
func BenchmarkMCActCounterHotPath(b *testing.B) {
	mod, err := dram.NewModule(dram.Config{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	g := mod.Geometry()
	mc, err := memctrl.NewController(memctrl.Config{
		Mapper:    addr.NewLineInterleave(g),
		DRAM:      mod,
		OpenPage:  true,
		Graphene:  memctrl.NewGraphene(g.Banks, 16, 1<<20, 1),
		Admission: memctrl.NewRateLimiter(g, 1<<20, 64_000_000, 0),
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := mc.EnableACTCounter(true, 1<<20, func(memctrl.ACTEvent) uint64 { return 0 }); err != nil {
		b.Fatal(err)
	}
	stripe := uint64(g.Banks * g.ColumnsPerRow)
	now := uint64(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		line := uint64((i*7)%1024)*stripe + uint64(i%8)*uint64(g.ColumnsPerRow)
		res, err := mc.ServeRequest(memctrl.Request{Line: line}, now)
		if err != nil {
			b.Fatal(err)
		}
		now = res.Completion
	}
}

// --- Event-driven core benchmarks ---

// BenchmarkIdleFastForward measures pure idle time: no agents, no
// requests, just the controller catching its refresh schedule up across
// a 2^32-cycle horizon. The burst variant collapses each catch-up into a
// closed-form sweep (the event-driven core's fast path); per-ref is the
// reference schedule walked one REF at a time. Checking is forced off so
// the unobserved fast path is actually reachable, as in CLI runs.
func BenchmarkIdleFastForward(b *testing.B) {
	core.SetCheckingOff()
	defer core.SetChecking(false)
	for _, v := range []struct {
		name  string
		burst bool
	}{{"burst", true}, {"per-ref", false}} {
		b.Run(v.name, func(b *testing.B) {
			m, err := core.NewMachine(core.DefaultSpec())
			if err != nil {
				b.Fatal(err)
			}
			if m.Auditor() != nil {
				b.Fatal("auditor attached despite SetCheckingOff")
			}
			m.MC.SetRefreshBurst(v.burst)
			const horizon = uint64(1) << 32
			now := uint64(0)
			before := m.MC.Stats().Counter("mc.ref")
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				now += horizon
				m.MC.AdvanceTo(now)
			}
			b.StopTimer()
			refs := m.MC.Stats().Counter("mc.ref") - before
			secs := b.Elapsed().Seconds()
			if secs > 0 {
				b.ReportMetric(float64(refs)/secs, "refs/s")
				b.ReportMetric(float64(horizon)*float64(b.N)/secs, "cycles/s")
			}
		})
	}
}

// benchStrideAgent is a pure compute agent: it never touches the memory
// controller, so scheduling it exercises only the run loop itself.
type benchStrideAgent struct {
	stride    uint64
	remaining int
}

func (a *benchStrideAgent) Done() bool { return a.remaining == 0 }

func (a *benchStrideAgent) Step(now uint64) (uint64, bool, error) {
	if a.remaining == 0 {
		return 0, false, nil
	}
	a.remaining--
	return now + a.stride, true, nil
}

// BenchmarkSchedulerManyAgents measures the run loop's per-step dispatch
// cost with a wide agent set: 128 pure agents with coprime strides, so
// the indexed heap is churned on every step. Reported as scheduled agent
// steps per wall-clock second.
func BenchmarkSchedulerManyAgents(b *testing.B) {
	core.SetCheckingOff()
	defer core.SetChecking(false)
	m, err := core.NewMachine(core.DefaultSpec())
	if err != nil {
		b.Fatal(err)
	}
	const (
		nAgents = 128
		perStep = 2000
	)
	var steps uint64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		agents := make([]core.Agent, nAgents)
		for j := range agents {
			agents[j] = &benchStrideAgent{stride: uint64(13 + j%41), remaining: perStep}
		}
		res, err := m.Run(agents, 1_000_000)
		if err != nil {
			b.Fatal(err)
		}
		for _, s := range res.Steps {
			steps += s
		}
	}
	b.StopTimer()
	secs := b.Elapsed().Seconds()
	if secs > 0 {
		b.ReportMetric(float64(steps)/secs, "steps/s")
	}
}

// BenchmarkTelemetryGrid measures the span/progress telemetry's
// overhead on a real experiment grid: the same reduced E1 matrix with
// no scope in the context (off — the shipping CLI default) and with a
// full tracer + hub scope threaded through (on — what hammerd gives
// every job). The benchgate baseline pins on/off ns/op within a fixed
// ratio, so telemetry cost is gated relative to the machine's own
// speed rather than as an absolute time.
func BenchmarkTelemetryGrid(b *testing.B) {
	defenses := []string{"none", "trr", "anvil"}
	run := func(b *testing.B, ctx context.Context) {
		for i := 0; i < b.N; i++ {
			if _, err := harness.E1Matrix(ctx, defenses, 12,
				harness.AttackOpts{Horizon: 400_000}); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("off", func(b *testing.B) {
		run(b, context.Background())
	})
	b.Run("on", func(b *testing.B) {
		// A fresh tracer per iteration, as hammerd allocates per job; the
		// hub has no subscribers, matching a job nobody is streaming.
		for i := 0; i < b.N; i++ {
			ctx := telemetry.NewContext(context.Background(), &telemetry.Scope{
				Tracer: telemetry.NewTracer(),
				Hub:    telemetry.NewHub(),
			})
			if _, err := harness.E1Matrix(ctx, defenses, 12,
				harness.AttackOpts{Horizon: 400_000}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE1MatrixParallel contrasts the serial and pooled harness on
// the same E1 grid as BenchmarkE1ProtectionMatrix. Tables are
// byte-identical either way; on a multi-core host the parallel variant
// shows the worker-pool speedup.
func BenchmarkE1MatrixParallel(b *testing.B) {
	for _, v := range []struct {
		name    string
		workers int
	}{{"serial", 1}, {"parallel", 0}} {
		b.Run(v.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := harness.E1Matrix(context.Background(), 
					[]string{"none", "trr", "subarray", "actremap", "swrefresh", "anvil"},
					12, harness.AttackOpts{Horizon: 2_000_000, Parallelism: v.workers})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
