// Cloud multi-tenant scenario (§4.1): three VMs share a host. The example
// shows the isolation/performance dilemma the paper resolves:
//
//  1. full cache-line interleaving: fast, but VM pages mix in DRAM rows
//     and an attacker VM can hammer its neighbors;
//  2. bank partitioning: isolated, but each VM loses bank-level
//     parallelism and streams slow down dramatically;
//  3. subarray-isolated interleaving (the paper's primitive): isolated
//     AND as fast as full interleaving.
//
// Run with: go run ./examples/cloud_multitenant
package main

import (
	"fmt"
	"log"

	"hammertime/internal/attack"
	"hammertime/internal/core"
	"hammertime/internal/cpu"
	"hammertime/internal/defense"
	"hammertime/internal/dram"
	"hammertime/internal/harness"
	"hammertime/internal/workload"
)

func main() {
	configs := []struct {
		label   string
		defense string
	}{
		{"full interleave, no isolation", "none"},
		{"bank partitioning (PALLOC-style)", "bankpart"},
		{"subarray-isolated interleaving (§4.1)", "subarray"},
	}

	fmt.Println("inter-VM double-sided attack + VM streaming throughput, per configuration:")
	fmt.Println()
	for _, cfg := range configs {
		d, err := defense.New(cfg.defense)
		if err != nil {
			log.Fatal(err)
		}
		security, err := harness.RunAttack(attackSpec(), d,
			attack.Kind{Name: "double-sided", Sided: 2}, harness.AttackOpts{})
		if err != nil {
			log.Fatal(err)
		}
		throughput, err := vmStreamThroughput(cfg.defense)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-40s cross-VM flips: %4d   VM stream throughput: %6d accesses\n",
			cfg.label, security.CrossFlips, throughput)
	}
	fmt.Println()
	fmt.Println("bank partitioning buys isolation with tenant performance;")
	fmt.Println("subarray-isolated interleaving buys it for free.")
}

func attackSpec() core.MachineSpec {
	spec := core.DefaultSpec()
	spec.Profile = dram.LPDDR4()
	return spec
}

// vmStreamThroughput measures one VM streaming through a >LLC working set
// with an MLP-8 core for one million cycles.
func vmStreamThroughput(defenseName string) (uint64, error) {
	d, err := defense.New(defenseName)
	if err != nil {
		return 0, err
	}
	m, err := core.BuildWithDefense(core.DefaultSpec(), d)
	if err != nil {
		return 0, err
	}
	tenants, err := harness.SetupTenants(m, 1, 768)
	if err != nil {
		return 0, err
	}
	prog, err := workload.Stream(tenants[0].Lines, 1<<30, 0)
	if err != nil {
		return 0, err
	}
	c, err := cpu.NewCore(0, tenants[0].Domain.ID, prog, m.Cache, m.MC)
	if err != nil {
		return 0, err
	}
	c.MLP = 8
	if _, err := m.Run([]core.Agent{c}, 1_000_000); err != nil {
		return 0, err
	}
	return c.Counters().Accesses, nil
}
