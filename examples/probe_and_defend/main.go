// Probe-and-defend: the closed loop the paper's long-term outlook (§5)
// laments is missing today. DRAM vendors expose nothing, so the host
// first *measures* the module's Rowhammer characteristics with the
// §2.1/§4.1 hammer-and-verify probes — blast radius and subarray
// boundaries — then configures its defenses from the measurements, and
// finally verifies that an attack that corrupted the unprotected machine
// is defeated.
//
// Run with: go run ./examples/probe_and_defend
package main

import (
	"fmt"
	"log"

	"hammertime/internal/attack"
	"hammertime/internal/core"
	"hammertime/internal/defense"
	"hammertime/internal/dram"
	"hammertime/internal/harness"
)

func main() {
	spec := core.DefaultSpec()
	spec.Profile = dram.LPDDR4()

	// --- Step 1: measure the module (no vendor documentation used). ---
	probeMachine, err := core.NewMachine(spec)
	if err != nil {
		log.Fatal(err)
	}
	surveyor := probeMachine.Kernel.CreateDomain("surveyor", false, false)
	totalPages := int(spec.Geometry.TotalBytes() / 4096)
	if _, err := probeMachine.Kernel.AllocPages(surveyor.ID, 0, totalPages); err != nil {
		log.Fatal(err)
	}
	prober := attack.NewProber(probeMachine, surveyor.ID)

	radius, err := prober.InferBlastRadius(0, 96, 8)
	if err != nil {
		log.Fatal(err)
	}
	boundaries, err := prober.InferSubarrayBoundaries(0, 60, 70)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("probe: blast radius = %d (vendor truth: %d)\n", radius, spec.Profile.BlastRadius)
	if len(boundaries) == 1 {
		rowsPerSubarray := boundaries[0] + 1
		fmt.Printf("probe: subarray boundary after row %d => %d rows per subarray (vendor truth: %d)\n",
			boundaries[0], rowsPerSubarray, spec.Geometry.RowsPerSubarray)
	}

	// --- Step 2: configure defenses from the measurements. ---
	// Guard-row isolation needs the measured radius; subarray isolation
	// needs the measured boundary stride (here we use the probe result
	// to validate the BIOS-reported grouping before trusting it).
	guard := defense.ZebRAM{Radius: radius}
	fmt.Printf("\nconfiguring guard-row isolation with measured radius %d\n", radius)

	// --- Step 3: verify. ---
	double := attack.Kind{Name: "double-sided", Sided: 2}
	before, err := harness.RunAttack(spec, defense.None{}, double, harness.AttackOpts{})
	if err != nil {
		log.Fatal(err)
	}
	after, err := harness.RunAttack(spec, guard, double, harness.AttackOpts{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("undefended:       %d cross-domain flips\n", before.CrossFlips)
	fmt.Printf("measured defense: %d cross-domain flips (attacker found targets: %v)\n",
		after.CrossFlips, after.PlannedCross)
	if before.CrossFlips > 0 && after.CrossFlips == 0 {
		fmt.Println("\nthe loop closes: measure, configure, verify — no vendor cooperation needed.")
	}
}
