// Quickstart: build a simulated machine, corrupt a victim with a
// double-sided Rowhammer attack, then enable one of the paper's defenses
// and watch the same attack fail.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"hammertime/internal/attack"
	"hammertime/internal/core"
	"hammertime/internal/defense"
	"hammertime/internal/dram"
	"hammertime/internal/harness"
)

func main() {
	// A machine with LPDDR4-class susceptibility: MAC 4.8k, blast
	// radius 4 — the emerging-DRAM regime the paper worries about.
	spec := core.DefaultSpec()
	spec.Profile = dram.LPDDR4()

	double := attack.Kind{Name: "double-sided", Sided: 2}

	// Round 1: no defense. Tenant 1 hammers rows adjacent to tenant 2's
	// pages; bits flip in memory the attacker never touched.
	undefended, err := harness.RunAttack(spec, defense.None{}, double, harness.AttackOpts{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== undefended machine ===")
	fmt.Printf("attack plan: %s (cross-domain victims found: %v)\n",
		undefended.PlanKind, undefended.PlannedCross)
	fmt.Printf("bit flips: %d total, %d in other tenants' memory\n",
		undefended.Flips, undefended.CrossFlips)

	// Round 2: the same attack against the paper's §4.3 software
	// defense — precise ACT interrupts identify the aggressor rows and
	// the refresh instruction recharges their victims in time.
	d, err := defense.New("swrefresh")
	if err != nil {
		log.Fatal(err)
	}
	defended, err := harness.RunAttack(spec, d, double, harness.AttackOpts{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n=== with swrefresh (precise ACT interrupt + refresh instruction) ===")
	fmt.Printf("bit flips: %d total, %d in other tenants' memory\n",
		defended.Flips, defended.CrossFlips)
	fmt.Printf("targeted refreshes issued: %d\n",
		defended.Result.Stats.Counter("os.refresh_instr"))

	if undefended.CrossFlips > 0 && defended.CrossFlips == 0 {
		fmt.Println("\nsame attack, same module — the defense made the difference.")
	}
}
