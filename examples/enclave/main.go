// Enclave scenario (§4.4): the same Rowhammer attack against (a) a plain
// VM, whose data silently corrupts, and (b) an integrity-checked enclave,
// where the corruption is detected on access and the machine locks up —
// degrading an arbitrary-corruption attack into a denial of service.
// It also shows the §4.4 refresh-permission extension: an enclave may
// issue the refresh instruction for its own addresses only.
//
// Run with: go run ./examples/enclave
package main

import (
	"errors"
	"fmt"
	"log"

	"hammertime/internal/attack"
	"hammertime/internal/core"
	"hammertime/internal/defense"
	"hammertime/internal/dram"
	"hammertime/internal/harness"
	"hammertime/internal/memctrl"
)

func main() {
	spec := core.DefaultSpec()
	spec.Profile = dram.LPDDR4()
	double := attack.Kind{Name: "double-sided", Sided: 2}

	plain, err := harness.RunAttack(spec, defense.None{}, double, harness.AttackOpts{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== plain victim VM ===")
	fmt.Printf("cross-domain flips: %d, machine locked up: %v\n", plain.CrossFlips, plain.LockedUp)
	fmt.Println("outcome: silent corruption — page tables, keys, anything.")

	enclave, err := harness.RunAttack(spec, defense.None{}, double,
		harness.AttackOpts{VictimIntegrity: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n=== integrity-checked enclave victim (SGX-style) ===")
	fmt.Printf("cross-domain flips: %d, machine locked up: %v\n", enclave.CrossFlips, enclave.LockedUp)
	fmt.Println("outcome: flips detected on access; the machine halts (DoS only).")

	// §4.4 extension: with subarray-isolated memory, an enclave can be
	// allowed to refresh rows inside its own address space.
	fmt.Println("\n=== enclave-issued refresh instruction ===")
	m, err := core.NewMachine(spec)
	if err != nil {
		log.Fatal(err)
	}
	tenants, err := harness.SetupTenants(m, 2, 16)
	if err != nil {
		log.Fatal(err)
	}
	enclaveDom := tenants[0].Domain
	enclaveDom.Enclave = true
	otherDom := tenants[1].Domain

	owned := map[uint64]bool{}
	for _, l := range tenants[0].Lines {
		owned[l] = true
	}
	// The host grants the enclave refresh rights over its own lines only.
	m.MC.SetRefreshPermission(func(domain int, line uint64) bool {
		if domain == 0 {
			return true
		}
		return domain == enclaveDom.ID && owned[line]
	})

	ownLine := tenants[0].Lines[0]
	foreignLine := tenants[1].Lines[0]
	if _, err := m.MC.RefreshInstruction(ownLine, true, enclaveDom.ID, 0); err != nil {
		log.Fatalf("enclave refresh of its own row failed: %v", err)
	}
	fmt.Printf("enclave %d refreshed its own row: allowed\n", enclaveDom.ID)
	_, err = m.MC.RefreshInstruction(foreignLine, true, enclaveDom.ID, 0)
	if !errors.Is(err, memctrl.ErrPrivileged) {
		log.Fatalf("expected privilege fault, got %v", err)
	}
	fmt.Printf("enclave %d refreshing tenant %d's row: denied (%v)\n",
		enclaveDom.ID, otherDom.ID, err)
}
