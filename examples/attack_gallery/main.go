// Attack gallery: every attack in the catalog against one defense from
// each taxonomy class (§2.2), printed as a compact matrix. A condensed,
// runnable version of experiment E1.
//
// Run with: go run ./examples/attack_gallery
package main

import (
	"fmt"
	"log"

	"hammertime/internal/attack"
	"hammertime/internal/core"
	"hammertime/internal/defense"
	"hammertime/internal/dram"
	"hammertime/internal/harness"
	"hammertime/internal/report"
)

func main() {
	defenses := []string{
		"none",      // baseline
		"trr",       // in-DRAM blackbox (bypassed by many-sided)
		"subarray",  // isolation-centric (the §4.1 primitive)
		"actremap",  // frequency-centric (the §4.2 primitive)
		"swrefresh", // refresh-centric (the §4.3 primitive)
		"anvil",     // legacy software (blind to DMA)
	}
	attacks := attack.Catalog(12)

	spec := core.DefaultSpec()
	spec.Profile = dram.LPDDR4()

	headers := []string{"defense \\ attack"}
	for _, a := range attacks {
		headers = append(headers, a.Name)
	}
	tb := report.NewTable("cross-domain flips by attack and defense", headers...)
	for _, name := range defenses {
		d, err := defense.New(name)
		if err != nil {
			log.Fatal(err)
		}
		row := []string{d.Name()}
		for _, kind := range attacks {
			out, err := harness.RunAttack(spec, d, kind, harness.AttackOpts{})
			if err != nil {
				log.Fatal(err)
			}
			cell := "safe"
			if out.CrossFlips > 0 {
				cell = fmt.Sprintf("%d FLIPS", out.CrossFlips)
			}
			row = append(row, cell)
		}
		tb.AddRow(row...)
	}
	fmt.Print(tb.String())
	fmt.Println()
	fmt.Println("note the two structural failures the paper highlights:")
	fmt.Println("  - trr falls to the many-sided attack (tracker thrash, TRRespass);")
	fmt.Println("  - anvil falls to DMA hammering (CPU counters never see it).")
}
