package attack

import (
	"context"
	"fmt"

	"hammertime/internal/addr"
	"hammertime/internal/core"
	"hammertime/internal/dram"
	"hammertime/internal/memctrl"
	"hammertime/internal/sim"
)

// Prober implements the inference methods of §2.1/§4.1: an attacker (or a
// defender without vendor documentation) uses the success or failure of
// Rowhammer itself to reveal physical row adjacency, subarray boundaries
// and the blast radius. The prober writes patterns into its own lines,
// hammers, and reads them back — it never needs another domain's data.
type Prober struct {
	machine *core.Machine
	domain  int
	// HammerFactor scales how hard each probe hammers: the aggressor
	// receives HammerFactor * MAC activations (default 3).
	HammerFactor int

	now  uint64
	gate *sim.Canceler
}

// NewProber returns a prober for the given domain.
func NewProber(m *core.Machine, domain int) *Prober {
	return &Prober{machine: m, domain: domain, HammerFactor: 3}
}

// SetContext arms cooperative cancellation on the prober: the hammer loop
// — the prober's hot path, MAC-scaled thousands of raw controller
// requests per probe — polls the context at a bounded interval and
// returns its cause once cancelled. A nil or never-cancellable context
// disables the gate (the default).
func (p *Prober) SetContext(ctx context.Context) {
	p.gate = sim.NewCanceler(ctx, 256)
}

// ownLines returns the domain's lines in the given bank-local row.
func (p *Prober) ownLines(bank, row int) []uint64 {
	g := p.machine.Mapper.Geometry()
	var lines []uint64
	for col := 0; col < g.ColumnsPerRow; col++ {
		line := p.machine.Mapper.Unmap(ddr(bank, row, col))
		if owner, ok := p.machine.Kernel.OwnerOfLine(line); ok && owner == p.domain {
			lines = append(lines, line)
		}
	}
	return lines
}

func ddr(bank, row, col int) addr.DDR { return addr.DDR{Bank: bank, Row: row, Column: col} }

// hammer drives raw alternating accesses to two rows of one bank until
// the primary aggressor has absorbed the requested activations.
func (p *Prober) hammer(bank, row int, acts int) error {
	companion, err := p.companionRow(bank, row)
	if err != nil {
		return err
	}
	lineA := p.machine.Mapper.Unmap(ddr(bank, row, 0))
	lineB := p.machine.Mapper.Unmap(ddr(bank, companion, 0))
	for i := 0; i < acts; i++ {
		if err := p.gate.Check(); err != nil {
			return fmt.Errorf("attack: probe cancelled: %w", err)
		}
		for _, line := range [2]uint64{lineA, lineB} {
			res, err := p.machine.MC.ServeRequest(memctrl.Request{
				Line:   line,
				Domain: p.domain,
				Source: memctrl.Source{Kind: memctrl.SourceCPU},
			}, p.now)
			if err != nil {
				return err
			}
			p.now = res.Completion
		}
	}
	return nil
}

// companionRow picks a row far from the probe target (preferably another
// subarray) to force row-buffer conflicts without polluting the probe.
func (p *Prober) companionRow(bank, row int) (int, error) {
	g := p.machine.Mapper.Geometry()
	half := g.RowsPerBank() / 2
	companion := (row + half) % g.RowsPerBank()
	if g.SameSubarray(companion, row) {
		return 0, fmt.Errorf("attack: prober cannot find an isolated companion for row %d", row)
	}
	return companion, nil
}

// pattern fills the domain's lines of (bank, row) with 0xA5 and returns
// how many lines were written. Zero means the probe has no visibility
// into that row.
func (p *Prober) pattern(bank, row int) (int, error) {
	g := p.machine.Mapper.Geometry()
	lines := p.ownLines(bank, row)
	buf := make([]byte, g.LineBytes)
	for i := range buf {
		buf[i] = 0xA5
	}
	for _, line := range lines {
		d := p.machine.Mapper.Map(line)
		if err := p.machine.DRAM.WriteLine(dram.LineAddr{Bank: d.Bank, Row: d.Row, Column: d.Column}, buf); err != nil {
			return 0, err
		}
	}
	return len(lines), nil
}

// corrupted reports whether any of the domain's lines in (bank, row)
// deviate from the written pattern.
func (p *Prober) corrupted(bank, row int) (bool, error) {
	lines := p.ownLines(bank, row)
	for _, line := range lines {
		d := p.machine.Mapper.Map(line)
		data, err := p.machine.DRAM.ReadLine(dram.LineAddr{Bank: d.Bank, Row: d.Row, Column: d.Column})
		if err != nil {
			return false, err
		}
		for _, b := range data {
			if b != 0xA5 {
				return true, nil
			}
		}
	}
	return false, nil
}

// ProbePair hammers probe row `aggressor` and reports whether `victim`
// flipped — i.e., whether the two rows are electromagnetically adjacent
// (same subarray, within the blast radius). Requires the domain to own
// at least one line in the victim row for visibility.
func (p *Prober) ProbePair(bank, aggressor, victim int) (bool, error) {
	g := p.machine.Mapper.Geometry()
	if !g.ValidRow(aggressor) || !g.ValidRow(victim) {
		return false, fmt.Errorf("attack: probe rows %d/%d out of range", aggressor, victim)
	}
	n, err := p.pattern(bank, victim)
	if err != nil {
		return false, err
	}
	if n == 0 {
		return false, fmt.Errorf("attack: domain %d owns no lines in bank %d row %d", p.domain, bank, victim)
	}
	factor := p.HammerFactor
	if factor <= 0 {
		factor = 3
	}
	acts := int(p.machine.Spec.Profile.MAC) * factor
	if err := p.hammer(bank, aggressor, acts); err != nil {
		return false, err
	}
	return p.corrupted(bank, victim)
}

// InferSubarrayBoundaries scans consecutive row pairs of a bank and
// returns the rows r where (r, r+1) showed no disturbance — the §4.1
// method for discovering subarray boundaries without vendor cooperation.
// Rows the domain cannot see into are skipped.
func (p *Prober) InferSubarrayBoundaries(bank, fromRow, toRow int) ([]int, error) {
	var boundaries []int
	for r := fromRow; r < toRow; r++ {
		adjacent, err := p.ProbePair(bank, r, r+1)
		if err != nil {
			return nil, fmt.Errorf("attack: boundary probe at row %d: %w", r, err)
		}
		if !adjacent {
			boundaries = append(boundaries, r)
		}
	}
	return boundaries, nil
}

// InferBlastRadius hammers one aggressor row and probes victims at growing
// distance until flips stop, returning the inferred radius.
func (p *Prober) InferBlastRadius(bank, aggressor, maxProbe int) (int, error) {
	g := p.machine.Mapper.Geometry()
	radius := 0
	for dist := 1; dist <= maxProbe; dist++ {
		victim := aggressor + dist
		if !g.ValidRow(victim) || !g.SameSubarray(aggressor, victim) {
			break
		}
		flipped, err := p.ProbePair(bank, aggressor, victim)
		if err != nil {
			return 0, err
		}
		if !flipped {
			break
		}
		radius = dist
	}
	return radius, nil
}
