package attack

import (
	"fmt"

	"hammertime/internal/cpu"
	"hammertime/internal/hostos"
)

// Hammer returns a program that hammers the plan's aggressor lines
// round-robin for `iterations` rounds. With flush=true each access is
// preceded by CLFLUSH so it must reach DRAM (the standard CPU hammering
// idiom); DMA attacks pass flush=false since the DMA path is uncached.
//
// Round-robin over lines in different rows of the same bank forces row
// buffer conflicts, so every access costs an ACT — the §2.1 mechanism.
func Hammer(plan Plan, iterations int, flush bool) (cpu.Program, error) {
	if len(plan.AggressorLines) == 0 {
		return nil, fmt.Errorf("attack: plan %q has no aggressor lines", plan.Kind)
	}
	if iterations <= 0 {
		return nil, fmt.Errorf("attack: iterations must be > 0")
	}
	total := iterations * len(plan.AggressorLines)
	i := 0
	return cpu.ProgramFunc(func() (cpu.Access, bool) {
		if i >= total {
			return cpu.Access{}, false
		}
		line := plan.AggressorLines[i%len(plan.AggressorLines)]
		i++
		return cpu.Access{Line: line, Flush: flush}, true
	}), nil
}

// HammerVA is like Hammer but hammers the plan's virtual addresses,
// re-translating through the attacker's page table on every access. If the
// host migrates a hammered page (ACT wear-leveling, §4.2), the attack
// follows the mapping to the new frame — it cannot keep hammering the old
// physical row.
func HammerVA(k *hostos.Kernel, domain int, plan Plan, iterations int, flush bool) (cpu.Program, error) {
	if len(plan.AggressorVAs) == 0 {
		return nil, fmt.Errorf("attack: plan %q has no aggressor virtual addresses", plan.Kind)
	}
	if iterations <= 0 {
		return nil, fmt.Errorf("attack: iterations must be > 0")
	}
	total := iterations * len(plan.AggressorVAs)
	i := 0
	return cpu.ProgramFunc(func() (cpu.Access, bool) {
		if i >= total {
			return cpu.Access{}, false
		}
		va := plan.AggressorVAs[i%len(plan.AggressorVAs)]
		i++
		line, err := k.Translate(domain, va)
		if err != nil {
			// The page vanished (host unmapped it); the attack is over.
			return cpu.Access{}, false
		}
		return cpu.Access{Line: line, Flush: flush}, true
	}), nil
}

// Kind names a canonical attack shape for the E1 protection matrix.
type Kind struct {
	// Name identifies the attack in reports.
	Name string
	// Sided is the number of aggressor rows to use (1, 2, or many).
	Sided int
	// DMA routes the hammering through a DMA device instead of a core,
	// making it invisible to CPU performance counters.
	DMA bool
}

// Catalog returns the attack shapes every defense is evaluated against
// in experiment E1. manySided sets the TRRespass aggressor count.
func Catalog(manySided int) []Kind {
	return []Kind{
		{Name: "single-sided", Sided: 1},
		{Name: "double-sided", Sided: 2},
		{Name: fmt.Sprintf("many-sided(%d)", manySided), Sided: manySided},
		{Name: "dma-double-sided", Sided: 2, DMA: true},
	}
}
