package attack

import (
	"testing"

	"hammertime/internal/core"
	"hammertime/internal/dram"
)

// probeSpec keeps the MAC tiny so probes are fast and refresh-sweep
// interference is negligible.
func probeSpec(radius int) core.MachineSpec {
	spec := core.DefaultSpec()
	spec.Profile = dram.DisturbanceProfile{
		Name: "probe-test", MAC: 200, BlastRadius: radius, DistanceDecay: 0.5, FlipProb: 0.05,
	}
	return spec
}

// singleTenant allocates every frame the prober might need to one domain
// so it has visibility into all rows of the probed range.
func singleTenant(t *testing.T, spec core.MachineSpec, pages int) (*core.Machine, int) {
	t.Helper()
	m, err := core.NewMachine(spec)
	if err != nil {
		t.Fatal(err)
	}
	d := m.Kernel.CreateDomain("prober", false, false)
	if _, err := m.Kernel.AllocPages(d.ID, 0, pages); err != nil {
		t.Fatal(err)
	}
	return m, d.ID
}

func TestProbePairDetectsAdjacency(t *testing.T) {
	m, domain := singleTenant(t, probeSpec(2), 2048)
	p := NewProber(m, domain)
	adjacent, err := p.ProbePair(0, 10, 11)
	if err != nil {
		t.Fatal(err)
	}
	if !adjacent {
		t.Fatal("adjacent rows not detected")
	}
	far, err := p.ProbePair(0, 10, 20)
	if err != nil {
		t.Fatal(err)
	}
	if far {
		t.Fatal("rows 10 and 20 reported adjacent")
	}
}

func TestProbeDetectsSubarrayBoundary(t *testing.T) {
	m, domain := singleTenant(t, probeSpec(2), 2048)
	p := NewProber(m, domain)
	// Rows 60..67 straddle the subarray boundary at 63/64.
	boundaries, err := p.InferSubarrayBoundaries(0, 60, 67)
	if err != nil {
		t.Fatal(err)
	}
	if len(boundaries) != 1 || boundaries[0] != 63 {
		t.Fatalf("boundaries = %v, want [63]", boundaries)
	}
}

func TestProbeInfersBlastRadius(t *testing.T) {
	for _, radius := range []int{1, 2, 3} {
		m, domain := singleTenant(t, probeSpec(radius), 2048)
		p := NewProber(m, domain)
		// Probe from an interior row of subarray 1.
		got, err := p.InferBlastRadius(0, 80, 6)
		if err != nil {
			t.Fatal(err)
		}
		if got != radius {
			t.Fatalf("inferred radius %d, want %d", got, radius)
		}
	}
}

func TestProbeRequiresVisibility(t *testing.T) {
	// Domain owns nothing: pattern writing must fail loudly.
	m, err := core.NewMachine(probeSpec(2))
	if err != nil {
		t.Fatal(err)
	}
	d := m.Kernel.CreateDomain("blind", false, false)
	p := NewProber(m, d.ID)
	if _, err := p.ProbePair(0, 10, 11); err == nil {
		t.Fatal("probe without visibility succeeded")
	}
}
