package attack

import (
	"fmt"
	"testing"

	"hammertime/internal/core"
	"hammertime/internal/hostos"
)

// tenantMachine builds a machine and allocates interleaved pages for an
// attacker (returned first) and two victims.
func tenantMachine(t *testing.T, spec core.MachineSpec, pages int) (*core.Machine, []int) {
	t.Helper()
	m, err := core.NewMachine(spec)
	if err != nil {
		t.Fatal(err)
	}
	var ids []int
	for i := 0; i < 3; i++ {
		ids = append(ids, m.Kernel.CreateDomain(fmt.Sprintf("t%d", i), false, false).ID)
	}
	for p := 0; p < pages; p++ {
		for _, id := range ids {
			if _, err := m.Kernel.AllocPages(id, uint64(p), 1); err != nil {
				t.Fatal(err)
			}
		}
	}
	return m, ids
}

func TestPlanDoubleSidedFindsSandwich(t *testing.T) {
	m, ids := tenantMachine(t, core.DefaultSpec(), 170)
	plan, err := PlanDoubleSided(m.Kernel, m.Mapper, ids[0], 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Kind != "double-sided" || !plan.CrossDomain {
		t.Fatalf("plan = %s cross=%v", plan.Kind, plan.CrossDomain)
	}
	if len(plan.AggressorLines) != 2 || len(plan.VictimRows) != 1 {
		t.Fatalf("aggressors=%d victims=%d", len(plan.AggressorLines), len(plan.VictimRows))
	}
	a1, a2, v := plan.Aggressors[0], plan.Aggressors[1], plan.VictimRows[0]
	if a1.Bank != a2.Bank || a1.Bank != v.Bank {
		t.Fatal("aggressors and victim not in the same bank")
	}
	if a2.Row-a1.Row != 2 || v.Row != a1.Row+1 {
		t.Fatalf("not a sandwich: %d, %d around %d", a1.Row, a2.Row, v.Row)
	}
	if len(plan.AggressorVAs) != 2 {
		t.Fatal("virtual addresses missing")
	}
	// VAs must currently translate back to the planned lines.
	for i, va := range plan.AggressorVAs {
		line, err := m.Kernel.Translate(ids[0], va)
		if err != nil {
			t.Fatal(err)
		}
		if line != plan.AggressorLines[i] {
			t.Fatalf("va %d resolves to line %d, want %d", va, line, plan.AggressorLines[i])
		}
	}
}

func TestPlanSingleSidedHasConflictCompanion(t *testing.T) {
	m, ids := tenantMachine(t, core.DefaultSpec(), 170)
	plan, err := PlanSingleSided(m.Kernel, m.Mapper, ids[0], 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.AggressorLines) != 2 {
		t.Fatalf("single-sided plan has %d lines, want aggressor + companion", len(plan.AggressorLines))
	}
	if plan.Aggressors[0].Bank != plan.Aggressors[1].Bank {
		t.Fatal("companion in a different bank cannot force row conflicts")
	}
	if plan.Aggressors[0].Row == plan.Aggressors[1].Row {
		t.Fatal("companion in the same row cannot force row conflicts")
	}
}

func TestPlanManySidedSpacing(t *testing.T) {
	m, ids := tenantMachine(t, core.DefaultSpec(), 170)
	plan, err := PlanManySided(m.Kernel, m.Mapper, ids[0], 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Aggressors) != 10 {
		t.Fatalf("aggressors = %d", len(plan.Aggressors))
	}
	bank := plan.Aggressors[0].Bank
	rows := make(map[int]bool)
	for _, a := range plan.Aggressors {
		if a.Bank != bank {
			t.Fatal("many-sided aggressors span banks")
		}
		rows[a.Row] = true
	}
	for r := range rows {
		if rows[r+1] {
			t.Fatalf("aggressor rows %d and %d adjacent (victims must sit between)", r, r+1)
		}
	}
}

func TestPlansDegradeUnderGuardRows(t *testing.T) {
	spec := core.DefaultSpec()
	spec.Alloc = core.AllocGuardRow
	spec.GuardRadius = 2
	m, ids := tenantMachine(t, spec, 40)
	plan, err := PlanDoubleSided(m.Kernel, m.Mapper, ids[0], 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if plan.CrossDomain {
		t.Fatalf("guard-row allocation left cross-domain targets: %s", plan.Kind)
	}
}

func TestPlansDegradeUnderSubarrayIsolation(t *testing.T) {
	spec := core.DefaultSpec()
	spec.SubarrayGroups = 4
	spec.Alloc = core.AllocSubarrayAware
	m, ids := tenantMachine(t, spec, 60)
	plan, err := PlanSingleSided(m.Kernel, m.Mapper, ids[0], 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if plan.CrossDomain {
		t.Fatalf("subarray isolation left cross-domain targets: %s", plan.Kind)
	}
}

func TestPlanErrorsWithoutMemory(t *testing.T) {
	m, err := core.NewMachine(core.DefaultSpec())
	if err != nil {
		t.Fatal(err)
	}
	d := m.Kernel.CreateDomain("empty", false, false)
	if _, err := PlanDoubleSided(m.Kernel, m.Mapper, d.ID, 1, 2); err == nil {
		t.Fatal("plan succeeded for a domain with no memory")
	}
}

func TestHammerRoundRobinWithFlush(t *testing.T) {
	plan := Plan{Kind: "test", AggressorLines: []uint64{7, 9}}
	prog, err := Hammer(plan, 2, true)
	if err != nil {
		t.Fatal(err)
	}
	want := []uint64{7, 9, 7, 9}
	for i, w := range want {
		a, ok := prog.Next()
		if !ok {
			t.Fatalf("program ended at %d", i)
		}
		if a.Line != w || !a.Flush {
			t.Fatalf("access %d = %+v", i, a)
		}
	}
	if _, ok := prog.Next(); ok {
		t.Fatal("program did not end after iterations*lines accesses")
	}
}

func TestHammerValidates(t *testing.T) {
	if _, err := Hammer(Plan{}, 1, true); err == nil {
		t.Fatal("empty plan accepted")
	}
	if _, err := Hammer(Plan{AggressorLines: []uint64{1}}, 0, true); err == nil {
		t.Fatal("zero iterations accepted")
	}
}

func TestHammerVAFollowsMigration(t *testing.T) {
	m, ids := tenantMachine(t, core.DefaultSpec(), 8)
	plan, err := PlanDoubleSided(m.Kernel, m.Mapper, ids[0], 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := HammerVA(m.Kernel, ids[0], plan, 10, true)
	if err != nil {
		t.Fatal(err)
	}
	a1, _ := prog.Next()
	if a1.Line != plan.AggressorLines[0] {
		t.Fatalf("first access line %d, want %d", a1.Line, plan.AggressorLines[0])
	}
	// Migrate the page behind the second aggressor VA; the program's
	// next access to it must land on the new frame.
	va := plan.AggressorVAs[1]
	vpn := va / hostos.PageSize
	if _, err := m.Kernel.MigratePage(ids[0], vpn, 0); err != nil {
		t.Fatal(err)
	}
	a2, _ := prog.Next()
	if a2.Line == plan.AggressorLines[1] {
		t.Fatal("attack kept hammering the old physical line after migration")
	}
	wantLine, err := m.Kernel.Translate(ids[0], va)
	if err != nil {
		t.Fatal(err)
	}
	if a2.Line != wantLine {
		t.Fatalf("post-migration access line %d, want %d", a2.Line, wantLine)
	}
}

func TestCatalogShapes(t *testing.T) {
	kinds := Catalog(12)
	if len(kinds) != 4 {
		t.Fatalf("catalog size = %d", len(kinds))
	}
	dmaCount := 0
	for _, k := range kinds {
		if k.DMA {
			dmaCount++
		}
	}
	if dmaCount != 1 {
		t.Fatalf("catalog has %d DMA attacks, want 1", dmaCount)
	}
}
