// Package attack implements Rowhammer attack planning and execution
// against the simulated machine: single-sided, double-sided and
// many-sided (TRRespass-style) hammering from CPU or DMA, plus the
// adjacency/subarray inference probes of §2.1/§4.1 of "Stop! Hammer Time".
//
// Planners inspect real page-table ownership through the host kernel —
// with the attacker's assumed knowledge of DRAM address mappings (§2.1) —
// so isolation defenses genuinely remove cross-domain targets rather than
// being special-cased.
package attack

import (
	"fmt"
	"sort"

	"hammertime/internal/addr"
	"hammertime/internal/hostos"
)

// Plan is a concrete hammering plan: which lines to hammer and which rows
// are expected victims.
type Plan struct {
	Kind           string
	AggressorLines []uint64
	// AggressorVAs are the attacker-virtual addresses of the aggressor
	// lines. Attacks hammer virtual addresses — if the host migrates the
	// backing page (ACT wear-leveling, §4.2), subsequent accesses follow
	// the new mapping, exactly as on real hardware.
	AggressorVAs []uint64
	Aggressors   []addr.DDR
	VictimRows   []addr.DDR
	// CrossDomain reports whether any expected victim row holds another
	// domain's data — i.e., whether the isolation precondition of §2.2
	// holds for the attacker.
	CrossDomain bool
}

// fillVAs resolves each aggressor line to the attacker's virtual address.
func fillVAs(k *hostos.Kernel, lineBytes int, plan *Plan) error {
	plan.AggressorVAs = make([]uint64, len(plan.AggressorLines))
	for i, line := range plan.AggressorLines {
		_, vpn, ok := k.VPNOfLine(line)
		if !ok {
			return fmt.Errorf("attack: aggressor line %d has no virtual mapping", line)
		}
		offset := line * uint64(lineBytes) % hostos.PageSize
		plan.AggressorVAs[i] = vpn*hostos.PageSize + offset
	}
	return nil
}

// bankMap is the attacker's reverse-engineered view of one bank. Under
// cache-line interleaving a single DRAM row mixes lines from many pages
// (the §4.1 observation), so the attacker needs only one of its own lines
// in a row to activate it, and a row is a victim if it holds at least one
// line of another domain.
type bankMap struct {
	// attackerLine maps rows containing attacker data to one attacker
	// line in that row (the line to hammer).
	attackerLine map[int]uint64
	// hasOther marks rows containing at least one other domain's line.
	hasOther map[int]bool
}

// surveyor builds per-bank ownership maps for an attacker domain.
type surveyor struct {
	kernel   *hostos.Kernel
	mapper   addr.Mapper
	attacker int
	banks    map[int]*bankMap
}

func newSurveyor(k *hostos.Kernel, m addr.Mapper, attacker int) *surveyor {
	return &surveyor{kernel: k, mapper: m, attacker: attacker, banks: make(map[int]*bankMap)}
}

// survey classifies every row the attacker or any other domain owns by
// walking all allocated pages (the attacker learns adjacency via the
// established inference methods of §2.1; we grant it the result).
func (s *surveyor) survey() {
	g := s.mapper.Geometry()
	for bank := 0; bank < g.Banks; bank++ {
		bm := &bankMap{attackerLine: make(map[int]uint64), hasOther: make(map[int]bool)}
		s.banks[bank] = bm
	}
	lpp := hostos.LinesPerPage(g)
	for frame := uint64(0); frame < hostos.TotalFrames(g); frame++ {
		owner, ok := s.kernel.OwnerOfLine(frame * lpp)
		if !ok {
			continue
		}
		for l := uint64(0); l < lpp; l++ {
			line := frame*lpp + l
			d := s.mapper.Map(line)
			bm := s.banks[d.Bank]
			if owner == s.attacker {
				if _, have := bm.attackerLine[d.Row]; !have {
					bm.attackerLine[d.Row] = line
				}
			} else {
				bm.hasOther[d.Row] = true
			}
		}
	}
}

// NOTE: OwnerOfLine is per line, but pages are the allocation unit, so
// checking the first line of each frame suffices.

// candidate is an attacker row with at least one victim row in range.
type candidate struct {
	bank, row int
	line      uint64
	victims   []int // victim rows within radius
}

// candidates returns attacker rows sorted by (bank, row) that have at
// least one cross-domain victim within radius (same subarray).
func (s *surveyor) candidates(radius int) []candidate {
	g := s.mapper.Geometry()
	var out []candidate
	bankIDs := make([]int, 0, len(s.banks))
	for b := range s.banks {
		bankIDs = append(bankIDs, b)
	}
	sort.Ints(bankIDs)
	for _, bank := range bankIDs {
		bm := s.banks[bank]
		rows := sortedAttackerRows(bm)
		for _, r := range rows {
			var victims []int
			for d := 1; d <= radius; d++ {
				for _, v := range [2]int{r - d, r + d} {
					if g.ValidRow(v) && g.SameSubarray(r, v) && bm.hasOther[v] {
						victims = append(victims, v)
					}
				}
			}
			if len(victims) > 0 {
				out = append(out, candidate{bank: bank, row: r, line: bm.attackerLine[r], victims: victims})
			}
		}
	}
	return out
}

// anyAttackerRows returns up to n attacker rows in one bank (preferring
// the bank with the most), for best-effort hammering when no cross-domain
// candidates exist.
func (s *surveyor) anyAttackerRows(n int) []candidate {
	bestBank, bestCount := -1, 0
	for b, bm := range s.banks {
		count := len(bm.attackerLine)
		if count > bestCount || (count == bestCount && count > 0 && (bestBank == -1 || b < bestBank)) {
			bestBank, bestCount = b, count
		}
	}
	if bestBank < 0 || bestCount == 0 {
		return nil
	}
	bm := s.banks[bestBank]
	rows := sortedAttackerRows(bm)
	if len(rows) > n {
		rows = rows[:n]
	}
	out := make([]candidate, 0, len(rows))
	for _, r := range rows {
		out = append(out, candidate{bank: bestBank, row: r, line: bm.attackerLine[r]})
	}
	return out
}

// PlanDoubleSided builds up to `pairs` classic double-sided plans: victim
// rows sandwiched between two attacker-owned aggressors at distance 1.
// When no sandwich exists it degrades to the best single-sided candidates,
// and finally to best-effort hammering of the attacker's own rows.
func PlanDoubleSided(k *hostos.Kernel, m addr.Mapper, attacker, pairs, radius int) (Plan, error) {
	if pairs <= 0 {
		return Plan{}, fmt.Errorf("attack: double-sided needs pairs > 0")
	}
	s := newSurveyor(k, m, attacker)
	s.survey()
	g := m.Geometry()

	plan := Plan{Kind: "double-sided"}
	seen := make(map[[2]int]bool)
	for _, bank := range sortedBanks(s) {
		bm := s.banks[bank]
		rows := sortedAttackerRows(bm)
		for _, r := range rows {
			v := r + 1
			r2 := r + 2
			if !g.ValidRow(r2) || !g.SameSubarray(r, r2) {
				continue
			}
			if !bm.hasOther[v] {
				continue
			}
			if _, ok := bm.attackerLine[r2]; !ok {
				continue
			}
			if seen[[2]int{bank, r}] || seen[[2]int{bank, r2}] {
				continue
			}
			seen[[2]int{bank, r}], seen[[2]int{bank, r2}] = true, true
			plan.AggressorLines = append(plan.AggressorLines, bm.attackerLine[r], bm.attackerLine[r2])
			plan.Aggressors = append(plan.Aggressors,
				addr.DDR{Bank: bank, Row: r}, addr.DDR{Bank: bank, Row: r2})
			plan.VictimRows = append(plan.VictimRows, addr.DDR{Bank: bank, Row: v})
			plan.CrossDomain = true
			if len(plan.VictimRows) >= pairs {
				return plan, fillVAs(k, g.LineBytes, &plan)
			}
		}
	}
	if len(plan.AggressorLines) > 0 {
		return plan, fillVAs(k, g.LineBytes, &plan)
	}
	// No sandwich: fall back to single-sided candidates.
	if fallback, err := PlanSingleSided(k, m, attacker, 2*pairs, radius); err == nil && len(fallback.AggressorLines) > 0 {
		fallback.Kind = "double-sided(degraded:single)"
		return fallback, nil
	}
	return bestEffort(s, "double-sided(degraded:blind)", 2*pairs)
}

// PlanSingleSided builds a plan hammering up to count attacker rows that
// each have at least one cross-domain victim within radius. Because a
// single row would simply stay in the row buffer (every access a hit, no
// ACTs), each aggressor gets a "conflict companion": an attacker line in
// the same bank, far from any victim, whose alternating accesses force a
// row-buffer conflict — the standard single-sided hammering idiom.
func PlanSingleSided(k *hostos.Kernel, m addr.Mapper, attacker, count, radius int) (Plan, error) {
	if count <= 0 {
		return Plan{}, fmt.Errorf("attack: single-sided needs count > 0")
	}
	s := newSurveyor(k, m, attacker)
	s.survey()
	cands := s.candidates(radius)
	plan := Plan{Kind: "single-sided"}
	for _, c := range cands {
		comp, ok := s.conflictCompanion(c.bank, c.row, radius)
		if !ok {
			continue
		}
		plan.AggressorLines = append(plan.AggressorLines, c.line, comp.line)
		plan.Aggressors = append(plan.Aggressors,
			addr.DDR{Bank: c.bank, Row: c.row}, addr.DDR{Bank: comp.bank, Row: comp.row})
		for _, v := range c.victims {
			plan.VictimRows = append(plan.VictimRows, addr.DDR{Bank: c.bank, Row: v})
		}
		plan.CrossDomain = true
		if len(plan.AggressorLines) >= 2*count {
			return plan, fillVAs(k, m.Geometry().LineBytes, &plan)
		}
	}
	if len(plan.AggressorLines) > 0 {
		return plan, fillVAs(k, m.Geometry().LineBytes, &plan)
	}
	return bestEffort(s, "single-sided(degraded:blind)", count)
}

// conflictCompanion finds an attacker line in the same bank as row to
// alternate with, forcing row-buffer conflicts. It prefers a row in a
// different subarray (no disturbance interaction at all), then the
// farthest row available.
func (s *surveyor) conflictCompanion(bank, row, radius int) (candidate, bool) {
	g := s.mapper.Geometry()
	bm := s.banks[bank]
	best, bestDist := -1, -1
	for _, r := range sortedAttackerRows(bm) {
		if r == row {
			continue
		}
		if !g.SameSubarray(r, row) {
			return candidate{bank: bank, row: r, line: bm.attackerLine[r]}, true
		}
		dist := r - row
		if dist < 0 {
			dist = -dist
		}
		if dist > bestDist {
			best, bestDist = r, dist
		}
	}
	if best >= 0 && bestDist > radius {
		return candidate{bank: bank, row: best, line: bm.attackerLine[best]}, true
	}
	return candidate{}, false
}

// PlanManySided builds a TRRespass-style plan with `aggressors` distinct
// aggressor rows in a single bank, preferring rows with cross-domain
// victims and padding with harmless attacker rows from the same bank to
// dilute in-DRAM trackers.
func PlanManySided(k *hostos.Kernel, m addr.Mapper, attacker, aggressors, radius int) (Plan, error) {
	if aggressors <= 0 {
		return Plan{}, fmt.Errorf("attack: many-sided needs aggressors > 0")
	}
	s := newSurveyor(k, m, attacker)
	s.survey()
	cands := s.candidates(radius)

	// Choose the bank with the most cross-domain candidates.
	perBank := make(map[int][]candidate)
	for _, c := range cands {
		perBank[c.bank] = append(perBank[c.bank], c)
	}
	bestBank, best := -1, 0
	for b, cs := range perBank {
		if len(cs) > best || (len(cs) == best && (bestBank == -1 || b < bestBank)) {
			bestBank, best = b, len(cs)
		}
	}
	plan := Plan{Kind: fmt.Sprintf("many-sided(%d)", aggressors)}
	if bestBank >= 0 {
		used := make(map[int]bool)
		for _, c := range perBank[bestBank] {
			if len(plan.AggressorLines) >= aggressors {
				break
			}
			// Space aggressors two rows apart (the TRRespass pattern):
			// the skipped rows in between become sandwiched victims
			// instead of self-refreshing aggressors.
			if used[c.row-1] || used[c.row+1] || used[c.row] {
				continue
			}
			plan.AggressorLines = append(plan.AggressorLines, c.line)
			plan.Aggressors = append(plan.Aggressors, addr.DDR{Bank: c.bank, Row: c.row})
			used[c.row] = true
			for _, v := range c.victims {
				plan.VictimRows = append(plan.VictimRows, addr.DDR{Bank: c.bank, Row: v})
			}
			plan.CrossDomain = true
		}
		// Pad with attacker rows from the same bank (tracker dilution),
		// keeping the two-apart spacing so pads do not refresh victims.
		bm := s.banks[bestBank]
		for _, r := range sortedAttackerRows(bm) {
			if len(plan.AggressorLines) >= aggressors {
				break
			}
			if used[r] || used[r-1] || used[r+1] {
				continue
			}
			used[r] = true
			plan.AggressorLines = append(plan.AggressorLines, bm.attackerLine[r])
			plan.Aggressors = append(plan.Aggressors, addr.DDR{Bank: bestBank, Row: r})
		}
	}
	if len(plan.AggressorLines) > 0 {
		return plan, fillVAs(k, m.Geometry().LineBytes, &plan)
	}
	return bestEffort(s, plan.Kind+"(degraded:blind)", aggressors)
}

// bestEffort hammers the attacker's own rows when no cross-domain target
// exists (isolation in effect): the attack still burns ACTs — and may
// still corrupt the attacker's own data — but cannot reach other domains.
func bestEffort(s *surveyor, kind string, n int) (Plan, error) {
	rows := s.anyAttackerRows(n)
	if len(rows) == 0 {
		return Plan{}, fmt.Errorf("attack: attacker domain %d owns no memory to hammer", s.attacker)
	}
	plan := Plan{Kind: kind}
	for _, c := range rows {
		plan.AggressorLines = append(plan.AggressorLines, c.line)
		plan.Aggressors = append(plan.Aggressors, addr.DDR{Bank: c.bank, Row: c.row})
	}
	return plan, fillVAs(s.kernel, s.mapper.Geometry().LineBytes, &plan)
}

func sortedBanks(s *surveyor) []int {
	out := make([]int, 0, len(s.banks))
	for b := range s.banks {
		out = append(out, b)
	}
	sort.Ints(out)
	return out
}

func sortedAttackerRows(bm *bankMap) []int {
	rows := make([]int, 0, len(bm.attackerLine))
	for r := range bm.attackerLine {
		rows = append(rows, r)
	}
	sort.Ints(rows)
	return rows
}
