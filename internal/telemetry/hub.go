package telemetry

import (
	"encoding/json"
	"sync"
	"sync/atomic"
	"time"

	"hammertime/internal/obs"
)

// Msg is one record fanned out to subscribers: an SSE event type plus a
// marshalled JSON payload (marshalled once per publish, shared by every
// subscriber).
type Msg struct {
	Type string
	Data []byte
}

// Progress is the periodic grid-progress record streamed over SSE.
type Progress struct {
	Grid         string  `json:"grid"`
	Done         int     `json:"done"`
	Total        int     `json:"total"`
	Restored     int     `json:"restored,omitempty"`
	Failed       int     `json:"failed,omitempty"`
	EventsPerSec float64 `json:"events_per_sec"`
	ETASeconds   float64 `json:"eta_seconds"`
}

// CellDone is the per-cell completion record streamed over SSE.
type CellDone struct {
	Grid     string  `json:"grid"`
	Index    int     `json:"index"`
	WallMS   float64 `json:"wall_ms"`
	Attempts int     `json:"attempts,omitempty"`
	Restored bool    `json:"restored,omitempty"`
	Err      string  `json:"err,omitempty"`
}

// ObsRecord is the wire form of one simulator event on the SSE stream.
type ObsRecord struct {
	Kind   string `json:"kind"`
	Cycle  uint64 `json:"cycle"`
	Bank   int    `json:"bank,omitempty"`
	Row    int    `json:"row,omitempty"`
	Domain int    `json:"domain,omitempty"`
	Line   uint64 `json:"line,omitempty"`
	Arg    uint64 `json:"arg,omitempty"`
}

// Hub fans live records out to bounded per-subscriber rings. Publishing
// never blocks and never waits on a subscriber: a slow client overflows
// its own ring (oldest records dropped and counted) while the
// simulation runs at full speed. With zero subscribers Publish skips
// marshalling entirely — one atomic load.
type Hub struct {
	nsubs  atomic.Int32
	events atomic.Uint64 // simulated events counted via CountEvents
	start  time.Time

	mu   sync.Mutex
	subs []*Subscriber
}

// NewHub returns an empty hub; the events/sec clock starts now.
func NewHub() *Hub { return &Hub{start: time.Now()} }

// CountEvents adds n simulated events to the throughput counter. Safe
// on a nil receiver.
func (h *Hub) CountEvents(n uint64) {
	if h == nil {
		return
	}
	h.events.Add(n)
}

// Events returns the lifetime simulated-event count.
func (h *Hub) Events() uint64 {
	if h == nil {
		return 0
	}
	return h.events.Load()
}

// EventsPerSec returns the average simulated-event throughput since the
// hub was created.
func (h *Hub) EventsPerSec() float64 {
	if h == nil {
		return 0
	}
	sec := time.Since(h.start).Seconds()
	if sec <= 0 {
		return 0
	}
	return float64(h.events.Load()) / sec
}

// Publish marshals v once and offers it to every subscriber,
// non-blocking. Free (one atomic load) when nobody is subscribed; a
// marshal failure drops the record.
func (h *Hub) Publish(typ string, v any) {
	if h == nil || h.nsubs.Load() == 0 {
		return
	}
	data, err := json.Marshal(v)
	if err != nil {
		return
	}
	msg := Msg{Type: typ, Data: data}
	h.mu.Lock()
	subs := h.subs
	h.mu.Unlock()
	for _, s := range subs {
		s.offer(msg)
	}
}

// Subscribe registers a subscriber with a ring of n records (n ≥ 1).
func (h *Hub) Subscribe(n int) *Subscriber {
	if n < 1 {
		n = 1
	}
	s := &Subscriber{hub: h, ring: make([]Msg, n), notify: make(chan struct{}, 1)}
	h.mu.Lock()
	h.subs = append(h.subs, s)
	h.mu.Unlock()
	h.nsubs.Add(1)
	return s
}

// Unsubscribe removes s; its Notify channel stops firing.
func (h *Hub) Unsubscribe(s *Subscriber) {
	h.mu.Lock()
	for i, cur := range h.subs {
		if cur == s {
			h.subs = append(h.subs[:i], h.subs[i+1:]...)
			h.nsubs.Add(-1)
			break
		}
	}
	h.mu.Unlock()
}

// Subscriber is one bounded consumer of a hub. Records beyond the
// ring's capacity evict the oldest and count as drops; the reader
// learns how many records it missed with each batch it takes.
type Subscriber struct {
	hub    *Hub
	notify chan struct{}

	mu      sync.Mutex
	ring    []Msg
	head    int // next slot to write
	size    int // occupied slots
	dropped uint64
}

// Notify returns a channel that receives (capacity-1, coalesced) after
// new records arrive. Select on it alongside the request context.
func (s *Subscriber) Notify() <-chan struct{} { return s.notify }

// offer appends msg, evicting the oldest record when full.
func (s *Subscriber) offer(msg Msg) {
	s.mu.Lock()
	s.ring[s.head] = msg
	s.head = (s.head + 1) % len(s.ring)
	if s.size == len(s.ring) {
		s.dropped++
	} else {
		s.size++
	}
	s.mu.Unlock()
	select {
	case s.notify <- struct{}{}:
	default:
	}
}

// Take drains the buffered records (oldest first) and reports how many
// records were dropped since the previous Take.
func (s *Subscriber) Take() (msgs []Msg, dropped uint64) {
	s.mu.Lock()
	if s.size > 0 {
		msgs = make([]Msg, 0, s.size)
		start := s.head - s.size
		if start < 0 {
			start += len(s.ring)
		}
		for i := 0; i < s.size; i++ {
			msgs = append(msgs, s.ring[(start+i)%len(s.ring)])
		}
		s.size = 0
	}
	dropped = s.dropped
	s.dropped = 0
	s.mu.Unlock()
	return msgs, dropped
}

// ObsSink returns an obs.Sink that publishes every recorded event as an
// "obs" record on the hub. It implements obs.JobTagger as a no-op (job
// identity is already carried by the stream the subscriber chose).
// Publishing is non-blocking, so wiring this sink into a recorder keeps
// the simulation isolated from slow clients.
func (h *Hub) ObsSink() obs.Sink { return hubSink{h} }

type hubSink struct{ h *Hub }

func (s hubSink) Record(ev obs.Event) {
	if s.h.nsubs.Load() == 0 {
		return
	}
	rec := ObsRecord{Kind: ev.Kind.String(), Cycle: ev.Cycle, Line: ev.Line, Arg: ev.Arg}
	if ev.Bank >= 0 {
		rec.Bank = ev.Bank
	}
	if ev.Row >= 0 {
		rec.Row = ev.Row
	}
	if ev.Domain >= 0 {
		rec.Domain = ev.Domain
	}
	s.h.Publish("obs", rec)
}

func (hubSink) Flush() error    { return nil }
func (hubSink) SetJob(_ string) {}
