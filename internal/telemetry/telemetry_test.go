package telemetry

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"

	"hammertime/internal/obs"
	"hammertime/internal/sim"
)

func TestNilScopeIsInert(t *testing.T) {
	ctx := context.Background()
	ctx2, span := StartSpan(ctx, "root")
	if span != nil {
		t.Fatalf("StartSpan without scope returned %v, want nil", span)
	}
	if ctx2 != ctx {
		t.Fatal("StartSpan without scope should return ctx unchanged")
	}
	// Every method must be a no-op on nil.
	span.SetAttrs(String("k", "v"))
	span.SetCycles(1, 2)
	span.Fail(errors.New("x"))
	span.EndErr(errors.New("y"))
	span.End()
	if span.ID() != 0 {
		t.Fatal("nil span ID should be 0")
	}
	if ScopeFrom(ctx) != nil || SpanFrom(ctx) != nil || HubFrom(ctx) != nil || ObserverFrom(ctx) != nil {
		t.Fatal("empty context should yield nil scope/span/hub/observer")
	}
	CountEvents(ctx, 10) // must not panic
	var tr *Tracer
	if tr.ID() != 0 || tr.Snapshot() != nil {
		t.Fatal("nil tracer should be inert")
	}
}

func TestSpanHierarchyAndLanes(t *testing.T) {
	tr := NewTracerWithID(0xabc)
	ctx := NewContext(context.Background(), &Scope{Tracer: tr})

	ctx, job := StartSpan(ctx, "job")
	job.SetAttrs(String("id", "job-1"))

	cctx1, cell1 := StartLane(ctx, "cell")
	_, phase := StartSpan(cctx1, "machine.run")
	phase.SetCycles(0, 500)
	phase.End()
	cell1.End()

	_, cell2 := StartLane(ctx, "cell")
	cell2.EndErr(errors.New("boom"))
	job.End()

	snaps := tr.Snapshot()
	if len(snaps) != 4 {
		t.Fatalf("got %d spans, want 4", len(snaps))
	}
	byName := map[string][]SpanSnap{}
	for _, s := range snaps {
		if s.Trace != 0xabc {
			t.Fatalf("span %s trace %v, want 0xabc", s.Name, s.Trace)
		}
		byName[s.Name] = append(byName[s.Name], s)
	}
	j := byName["job"][0]
	if j.Parent != 0 {
		t.Fatalf("job parent %d, want 0 (root)", j.Parent)
	}
	if j.Lane != j.ID {
		t.Fatal("root span should own its lane")
	}
	c1, c2 := byName["cell"][0], byName["cell"][1]
	if c1.Parent != j.ID || c2.Parent != j.ID {
		t.Fatal("cells should be children of job")
	}
	if c1.Lane == j.Lane || c2.Lane == j.Lane || c1.Lane == c2.Lane {
		t.Fatalf("StartLane cells must each get fresh lanes: job=%d c1=%d c2=%d", j.Lane, c1.Lane, c2.Lane)
	}
	p := byName["machine.run"][0]
	if p.Parent != c1.ID {
		t.Fatal("phase should be child of first cell")
	}
	if p.Lane != c1.Lane {
		t.Fatal("StartSpan child should inherit parent's lane")
	}
	if !p.HasCycles || p.StartCycle != 0 || p.EndCycle != 500 {
		t.Fatalf("phase cycles = %d..%d (has=%v), want 0..500", p.StartCycle, p.EndCycle, p.HasCycles)
	}
	if c2.Err != "boom" {
		t.Fatalf("cell2 err %q, want boom", c2.Err)
	}
	for _, s := range []SpanSnap{j, c1, c2, p} {
		if s.End.IsZero() || s.EndSeq == 0 {
			t.Fatalf("span %s not ended", s.Name)
		}
		if s.End.Before(s.Start) {
			t.Fatalf("span %s ends before it starts", s.Name)
		}
	}
	// Seq ordering: ends happen after starts, parent job ends last.
	if !(j.StartSeq < c1.StartSeq && c1.StartSeq < p.StartSeq) {
		t.Fatal("start seq order broken")
	}
	if j.EndSeq < c2.EndSeq {
		t.Fatal("job should end after cell2")
	}
}

func TestSpanDoubleEndKeepsFirst(t *testing.T) {
	tr := NewTracerWithID(1)
	ctx := NewContext(context.Background(), &Scope{Tracer: tr})
	_, s := StartSpan(ctx, "x")
	s.End()
	first := tr.Snapshot()[0].End
	s.End()
	if got := tr.Snapshot()[0].End; !got.Equal(first) {
		t.Fatal("second End moved the end time")
	}
}

func TestTracerConcurrentSpans(t *testing.T) {
	tr := NewTracer()
	ctx := NewContext(context.Background(), &Scope{Tracer: tr})
	ctx, root := StartSpan(ctx, "root")
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cctx, cell := StartLane(ctx, "cell")
			_, ph := StartSpan(cctx, "phase")
			ph.End()
			cell.End()
		}()
	}
	wg.Wait()
	root.End()
	snaps := tr.Snapshot()
	if len(snaps) != 65 {
		t.Fatalf("got %d spans, want 65", len(snaps))
	}
	ids := map[SpanID]bool{}
	for _, s := range snaps {
		if ids[s.ID] {
			t.Fatalf("duplicate span id %d", s.ID)
		}
		ids[s.ID] = true
	}
}

func TestHubPubSubAndDrops(t *testing.T) {
	h := NewHub()
	// No subscribers: Publish must be cheap and harmless.
	h.Publish("progress", Progress{Grid: "e1"})

	sub := h.Subscribe(4)
	for i := 0; i < 3; i++ {
		h.Publish("cell", CellDone{Grid: "e1", Index: i})
	}
	msgs, dropped := sub.Take()
	if dropped != 0 || len(msgs) != 3 {
		t.Fatalf("got %d msgs %d dropped, want 3/0", len(msgs), dropped)
	}
	var cd CellDone
	if err := json.Unmarshal(msgs[2].Data, &cd); err != nil || cd.Index != 2 {
		t.Fatalf("bad payload %s: %v", msgs[2].Data, err)
	}
	if msgs[0].Type != "cell" {
		t.Fatalf("type %q, want cell", msgs[0].Type)
	}

	// Overflow: ring of 4, publish 10 → keep newest 4, drop 6.
	for i := 0; i < 10; i++ {
		h.Publish("cell", CellDone{Index: i})
	}
	msgs, dropped = sub.Take()
	if len(msgs) != 4 || dropped != 6 {
		t.Fatalf("got %d msgs %d dropped, want 4/6", len(msgs), dropped)
	}
	json.Unmarshal(msgs[0].Data, &cd)
	if cd.Index != 6 {
		t.Fatalf("oldest kept index %d, want 6 (drop-oldest)", cd.Index)
	}

	// Drop counter resets per Take.
	if _, d := sub.Take(); d != 0 {
		t.Fatalf("drops not reset: %d", d)
	}

	h.Unsubscribe(sub)
	h.Publish("cell", CellDone{Index: 99})
	if msgs, _ := sub.Take(); len(msgs) != 0 {
		t.Fatal("unsubscribed subscriber still receives")
	}

	// Nil hub is inert.
	var nh *Hub
	nh.CountEvents(5)
	nh.Publish("x", 1)
	if nh.EventsPerSec() != 0 || nh.Events() != 0 {
		t.Fatal("nil hub should be inert")
	}
}

func TestHubNotify(t *testing.T) {
	h := NewHub()
	sub := h.Subscribe(8)
	select {
	case <-sub.Notify():
		t.Fatal("notified before any publish")
	default:
	}
	h.Publish("progress", Progress{})
	select {
	case <-sub.Notify():
	default:
		t.Fatal("no notification after publish")
	}
}

func TestHubConcurrentPublishSubscribe(t *testing.T) {
	h := NewHub()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sub := h.Subscribe(16)
			for j := 0; j < 50; j++ {
				h.Publish("cell", CellDone{Index: j})
				sub.Take()
			}
			h.Unsubscribe(sub)
		}()
	}
	wg.Wait()
}

func TestHubObsSink(t *testing.T) {
	h := NewHub()
	rec := obs.NewRecorder(h.ObsSink())
	sub := h.Subscribe(8)
	rec.Emit(obs.Event{Kind: obs.KindBitFlip, Cycle: 42, Bank: 1, Row: 7, Domain: -1, Arg: 3})
	msgs, _ := sub.Take()
	if len(msgs) != 1 || msgs[0].Type != "obs" {
		t.Fatalf("got %d msgs, want one obs record", len(msgs))
	}
	var r ObsRecord
	if err := json.Unmarshal(msgs[0].Data, &r); err != nil {
		t.Fatal(err)
	}
	if r.Kind != "bit-flip" || r.Cycle != 42 || r.Bank != 1 || r.Row != 7 || r.Arg != 3 || r.Domain != 0 {
		t.Fatalf("bad record %+v", r)
	}
}

func TestExportChromeNestedSpans(t *testing.T) {
	tr := NewTracerWithID(0xdeadbeef)
	ctx := NewContext(context.Background(), &Scope{Tracer: tr})
	ctx, job := StartSpan(ctx, "job")
	cctx, cell := StartLane(ctx, "cell")
	_, ph := StartSpan(cctx, "machine.run")
	ph.End()
	cell.End()
	_, open := StartLane(ctx, "inflight-cell")
	_ = open // deliberately left in flight
	job.End()

	var buf bytes.Buffer
	ct := obs.NewChromeTrace(&buf)
	ExportChrome(ct, tr.Snapshot())
	if err := ct.Flush(); err != nil {
		t.Fatal(err)
	}

	var doc struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			Cat  string            `json:"cat"`
			ID   uint64            `json:"id"`
			Pid  int               `json:"pid"`
			Ts   float64           `json:"ts"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v\n%s", err, buf.String())
	}
	begins, ends := 0, 0
	open2 := map[uint64]int{}
	var jobTrace string
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "b" {
			begins++
			open2[ev.ID]++
			if ev.Pid != 3 || ev.Cat != "span" {
				t.Fatalf("span on pid %d cat %q", ev.Pid, ev.Cat)
			}
			if ev.Name == "job" {
				jobTrace = ev.Args["trace"]
			}
		}
		if ev.Ph == "e" {
			ends++
			if open2[ev.ID] <= 0 {
				t.Fatalf("end before begin for lane %d", ev.ID)
			}
			open2[ev.ID]--
		}
	}
	if begins != 4 || ends != 4 {
		t.Fatalf("got %d begins %d ends, want 4/4 (in-flight span closed at export)", begins, ends)
	}
	for id, n := range open2 {
		if n != 0 {
			t.Fatalf("lane %d left %d spans open", id, n)
		}
	}
	if jobTrace != TraceID(0xdeadbeef).String() {
		t.Fatalf("job trace arg %q, want %q", jobTrace, TraceID(0xdeadbeef).String())
	}
	// The in-flight span must be flagged.
	found := false
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "e" && ev.Name == "inflight-cell" && ev.Args["inflight"] == "true" {
			found = true
		}
	}
	if !found {
		t.Fatal("in-flight span not tagged inflight on its synthesized end")
	}
}

func TestExportJSONL(t *testing.T) {
	tr := NewTracerWithID(7)
	ctx := NewContext(context.Background(), &Scope{Tracer: tr})
	_, s := StartSpan(ctx, "run")
	s.SetAttrs(String("grid", "e1"), Int("cells", 12))
	s.SetCycles(100, 900)
	s.End()

	var buf bytes.Buffer
	j := obs.NewJSONL(&buf)
	ExportJSONL(j, tr.Snapshot())
	if err := j.Flush(); err != nil {
		t.Fatal(err)
	}
	var w map[string]any
	if err := json.Unmarshal(buf.Bytes(), &w); err != nil {
		t.Fatalf("span line is not valid JSON: %v\n%s", err, buf.String())
	}
	if w["type"] != "span" || w["name"] != "run" || w["trace"] != TraceID(7).String() {
		t.Fatalf("bad span line: %v", w)
	}
	attrs := w["attrs"].(map[string]any)
	if attrs["grid"] != "e1" || attrs["cells"] != "12" {
		t.Fatalf("bad attrs: %v", attrs)
	}
	if w["start_cycle"].(float64) != 100 || w["end_cycle"].(float64) != 900 {
		t.Fatalf("bad cycles: %v", w)
	}
	if _, ok := w["end"]; !ok {
		t.Fatal("ended span missing end")
	}
}

func TestWritePrometheus(t *testing.T) {
	var st sim.Stats
	st.Add("serve.jobs.submitted", 42)
	st.SetGauge("serve.sessions", 3)
	st.AddVec("dram.bank.acts", 0, 10)
	st.AddVec("dram.bank.acts", 2, 5)
	h := st.NewHistogram("serve.http.seconds;route=GET /metrics;code=200", sim.ExpBuckets(0.001, 10, 3))
	h.Observe(0.0005) // below first bound
	h.Observe(0.005)
	h.Observe(7) // above last bound (0.1)
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, st.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE serve_jobs_submitted counter\nserve_jobs_submitted 42\n",
		"# TYPE serve_sessions gauge\nserve_sessions 3\n",
		`dram_bank_acts{idx="0"} 10`,
		`dram_bank_acts{idx="1"} 0`,
		`dram_bank_acts{idx="2"} 5`,
		"# TYPE serve_http_seconds histogram",
		`serve_http_seconds_bucket{route="GET /metrics",code="200",le="0.001"} 1`,
		`serve_http_seconds_bucket{route="GET /metrics",code="200",le="0.01"} 2`,
		`serve_http_seconds_bucket{route="GET /metrics",code="200",le="0.1"} 2`,
		`serve_http_seconds_bucket{route="GET /metrics",code="200",le="+Inf"} 3`,
		`serve_http_seconds_sum{route="GET /metrics",code="200"} 7.0055`,
		`serve_http_seconds_count{route="GET /metrics",code="200"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n---\n%s", want, out)
		}
	}
	if err := checkExposition(out); err != nil {
		t.Fatalf("exposition does not parse: %v\n%s", err, out)
	}
}

func TestPromNameMangling(t *testing.T) {
	cases := []struct {
		in, name string
		nlabels  int
	}{
		{"plain", "plain", 0},
		{"dots.and-dashes", "dots_and_dashes", 0},
		{"a;k=v", "a", 1},
		{"serve.http.seconds;route=GET /v1/jobs", "serve_http_seconds", 1},
	}
	for _, c := range cases {
		name, labels := promName(c.in)
		if name != c.name || len(labels) != c.nlabels {
			t.Errorf("promName(%q) = %q/%d, want %q/%d", c.in, name, len(labels), c.name, c.nlabels)
		}
	}
	if escapeLabel(`a"b\c`+"\n") != `a\"b\\c\n` {
		t.Errorf("escapeLabel broken: %q", escapeLabel(`a"b\c`+"\n"))
	}
}

func TestParseTraceID(t *testing.T) {
	id := TraceID(0xdeadbeefcafe0123)
	got, ok := ParseTraceID(id.String())
	if !ok || got != id {
		t.Fatalf("ParseTraceID(%q) = %v/%v, want %v/true", id.String(), got, ok, id)
	}
	for _, bad := range []string{"", "xyz", "deadbeef", "00000000000000000", "g000000000000000"} {
		if _, ok := ParseTraceID(bad); ok {
			t.Errorf("ParseTraceID(%q) accepted", bad)
		}
	}
}

func TestImportRemote(t *testing.T) {
	// Worker side: a grid span with two cell lanes, one failed, one open.
	remote := NewTracerWithID(0x1111)
	rctx := NewContext(context.Background(), &Scope{Tracer: remote})
	rctx, grid := StartSpan(rctx, "grid:e1")
	grid.SetAttrs(String("mode", "worker"))
	cctx, cell := StartLane(rctx, "cell")
	_, ph := StartSpan(cctx, "machine.run")
	ph.SetCycles(10, 20)
	ph.End()
	cell.End()
	_, cell2 := StartLane(rctx, "cell")
	cell2.EndErr(errors.New("boom"))
	grid.End()

	// Coordinator side: a job span plus a dispatch span the import hangs
	// off of.
	local := NewTracerWithID(0x2222)
	lctx := NewContext(context.Background(), &Scope{Tracer: local})
	lctx, job := StartSpan(lctx, "job")
	_, disp := StartSpan(lctx, "dispatch")
	local.ImportRemote(disp.ID(), remote.Snapshot())
	disp.End()
	job.End()

	snaps := local.Snapshot()
	if len(snaps) != 6 {
		t.Fatalf("got %d spans, want 6 (2 local + 4 imported)", len(snaps))
	}
	byName := map[string][]SpanSnap{}
	ids := map[SpanID]bool{}
	for _, s := range snaps {
		if s.Trace != 0x2222 {
			t.Fatalf("imported span %s kept remote trace id %v", s.Name, s.Trace)
		}
		if ids[s.ID] {
			t.Fatalf("duplicate span id %d after import", s.ID)
		}
		ids[s.ID] = true
		byName[s.Name] = append(byName[s.Name], s)
	}
	g := byName["grid:e1"][0]
	if g.Parent != disp.ID() {
		t.Fatalf("remote root reparented to %d, want dispatch %d", g.Parent, disp.ID())
	}
	c1, c2 := byName["cell"][0], byName["cell"][1]
	if c1.Parent != g.ID || c2.Parent != g.ID {
		t.Fatal("imported cells should stay children of imported grid")
	}
	if c1.Lane == g.Lane || c1.Lane == c2.Lane {
		t.Fatal("imported lanes must stay distinct")
	}
	p := byName["machine.run"][0]
	if p.Parent != c1.ID || p.Lane != c1.Lane {
		t.Fatal("imported child should keep remapped parent and lane")
	}
	if !p.HasCycles || p.StartCycle != 10 || p.EndCycle != 20 {
		t.Fatalf("cycles lost: %d..%d has=%v", p.StartCycle, p.EndCycle, p.HasCycles)
	}
	if c2.Err != "boom" {
		t.Fatalf("imported error lost: %q", c2.Err)
	}
	if len(g.Attrs) != 1 || g.Attrs[0].Key != "mode" {
		t.Fatalf("imported attrs lost: %+v", g.Attrs)
	}
	// Imported spans sequence after everything local at import time, and
	// the chrome exporter must still accept the merged snapshot.
	jb := byName["job"][0]
	if g.StartSeq <= jb.StartSeq {
		t.Fatal("imported span sequenced before local job start")
	}
	var buf bytes.Buffer
	ct := obs.NewChromeTrace(&buf)
	ExportChrome(ct, snaps)
	if err := ct.Flush(); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("merged trace does not export: %s", buf.String())
	}
}

func TestImportRemoteEmptyAndNil(t *testing.T) {
	var nilTr *Tracer
	nilTr.ImportRemote(0, []SpanSnap{{ID: 1, Name: "x"}}) // must not panic
	tr := NewTracer()
	tr.ImportRemote(0, nil)
	if got := tr.Snapshot(); len(got) != 0 {
		t.Fatalf("empty import added %d spans", len(got))
	}
}

func BenchmarkTelemetryDisabled(b *testing.B) {
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, span := StartSpan(ctx, "cell")
		span.SetCycles(0, 1)
		span.End()
		CountEvents(ctx, 100)
	}
}
