package telemetry

import (
	"bufio"
	"io"
	"strconv"
	"strings"

	"hammertime/internal/sim"
)

// PromContentType is the Content-Type of Prometheus text exposition
// format 0.0.4, the format WritePrometheus produces.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus renders a sim.StatsSnapshot in Prometheus text
// exposition format.
//
// Metric names are the stats names with every character outside
// [a-zA-Z0-9_:] replaced by '_' ("serve.job.seconds" scrapes as
// serve_job_seconds). A stats name of the form "base;k=v;k2=v2" becomes
// base{k="v",k2="v2"} — the convention the serve layer uses for
// per-route metrics. Counters and vectors expose as counters (vectors
// with an idx label), gauges as gauges, histograms as cumulative
// _bucket/_sum/_count families with a closing +Inf bucket.
func WritePrometheus(w io.Writer, snap sim.StatsSnapshot) error {
	b := bufio.NewWriter(w)
	typed := make(map[string]bool)
	family := func(name, kind string) {
		if !typed[name] {
			typed[name] = true
			b.WriteString("# TYPE ")
			b.WriteString(name)
			b.WriteByte(' ')
			b.WriteString(kind)
			b.WriteByte('\n')
		}
	}
	for _, c := range snap.Counters {
		name, labels := promName(c.Name)
		family(name, "counter")
		b.WriteString(name)
		writeLabels(b, labels, "", "")
		b.WriteByte(' ')
		b.WriteString(strconv.FormatInt(c.Value, 10))
		b.WriteByte('\n')
	}
	for _, g := range snap.Gauges {
		name, labels := promName(g.Name)
		family(name, "gauge")
		b.WriteString(name)
		writeLabels(b, labels, "", "")
		b.WriteByte(' ')
		b.WriteString(promFloat(g.Value))
		b.WriteByte('\n')
	}
	for _, v := range snap.Vectors {
		name, labels := promName(v.Name)
		family(name, "counter")
		for i, val := range v.Values {
			b.WriteString(name)
			writeLabels(b, labels, "idx", strconv.Itoa(i))
			b.WriteByte(' ')
			b.WriteString(strconv.FormatInt(val, 10))
			b.WriteByte('\n')
		}
	}
	for _, h := range snap.Histograms {
		name, labels := promName(h.Name)
		family(name, "histogram")
		var cum uint64
		for i, bound := range h.Bounds {
			cum += h.Counts[i]
			b.WriteString(name)
			b.WriteString("_bucket")
			writeLabels(b, labels, "le", promFloat(bound))
			b.WriteByte(' ')
			b.WriteString(strconv.FormatUint(cum, 10))
			b.WriteByte('\n')
		}
		b.WriteString(name)
		b.WriteString("_bucket")
		writeLabels(b, labels, "le", "+Inf")
		b.WriteByte(' ')
		b.WriteString(strconv.FormatUint(h.Count, 10))
		b.WriteByte('\n')
		b.WriteString(name)
		b.WriteString("_sum")
		writeLabels(b, labels, "", "")
		b.WriteByte(' ')
		b.WriteString(promFloat(h.Sum))
		b.WriteByte('\n')
		b.WriteString(name)
		b.WriteString("_count")
		writeLabels(b, labels, "", "")
		b.WriteByte(' ')
		b.WriteString(strconv.FormatUint(h.Count, 10))
		b.WriteByte('\n')
	}
	return b.Flush()
}

// promName splits "base;k=v;..." into the mangled metric name and its
// label pairs.
func promName(statsName string) (name string, labels [][2]string) {
	parts := strings.Split(statsName, ";")
	name = mangle(parts[0])
	for _, p := range parts[1:] {
		k, v, ok := strings.Cut(p, "=")
		if !ok {
			k, v = "label", p
		}
		labels = append(labels, [2]string{mangle(k), v})
	}
	return name, labels
}

// writeLabels renders {k="v",...}; extraK/extraV append one more pair
// (the le bound, the vector idx) when extraK is non-empty.
func writeLabels(b *bufio.Writer, labels [][2]string, extraK, extraV string) {
	if len(labels) == 0 && extraK == "" {
		return
	}
	b.WriteByte('{')
	first := true
	pair := func(k, v string) {
		if !first {
			b.WriteByte(',')
		}
		first = false
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(v))
		b.WriteByte('"')
	}
	for _, kv := range labels {
		pair(kv[0], kv[1])
	}
	if extraK != "" {
		pair(extraK, extraV)
	}
	b.WriteByte('}')
}

// mangle maps a stats name onto the Prometheus metric-name alphabet.
func mangle(s string) string {
	var out []byte
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(c >= '0' && c <= '9' && i > 0)
		if ok {
			if out != nil {
				out = append(out, c)
			}
			continue
		}
		if out == nil {
			out = append([]byte{}, s[:i]...)
		}
		out = append(out, '_')
	}
	if out == nil {
		return s
	}
	return string(out)
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var sb strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			sb.WriteString(`\\`)
		case '"':
			sb.WriteString(`\"`)
		case '\n':
			sb.WriteString(`\n`)
		default:
			sb.WriteRune(r)
		}
	}
	return sb.String()
}

// promFloat renders a float the way Prometheus text format expects.
func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
