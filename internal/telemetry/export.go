package telemetry

import (
	"encoding/json"
	"sort"
	"strconv"
	"time"

	"hammertime/internal/obs"
)

// spanEvent is one begin or end half of a span, the unit Chrome export
// sorts: Perfetto nests async events by emission order within a lane, so
// the halves must be written in the global begin/end order the tracer
// observed (startSeq/endSeq), not span by span.
type spanEvent struct {
	seq   uint64
	begin bool
	span  SpanSnap
}

// ExportChrome writes the spans into ct as async begin/end events on the
// spans process, lanes as async ids. Spans still in flight (End zero)
// are closed at the latest timestamp in the snapshot and tagged
// inflight, so a trace fetched mid-run still renders. The simulator's
// instant events use simulation cycles as timestamps while spans use
// wall-clock microseconds from the first span's start; they share a file
// but not a clock, which is why spans live on their own process.
func ExportChrome(ct *obs.ChromeTrace, spans []SpanSnap) {
	if len(spans) == 0 {
		return
	}
	origin := spans[0].Start
	var maxSeq uint64
	var latest time.Time
	for _, s := range spans {
		if s.Start.Before(origin) {
			origin = s.Start
		}
		if s.StartSeq > maxSeq {
			maxSeq = s.StartSeq
		}
		if s.EndSeq > maxSeq {
			maxSeq = s.EndSeq
		}
		if s.Start.After(latest) {
			latest = s.Start
		}
		if s.End.After(latest) {
			latest = s.End
		}
	}
	events := make([]spanEvent, 0, 2*len(spans))
	for _, s := range spans {
		events = append(events, spanEvent{seq: s.StartSeq, begin: true, span: s})
		endSeq := s.EndSeq
		if s.End.IsZero() {
			// In flight: synthesize an end after every real event.
			maxSeq++
			endSeq = maxSeq
			s.End = latest
		}
		events = append(events, spanEvent{seq: endSeq, begin: false, span: s})
	}
	sort.Slice(events, func(i, j int) bool { return events[i].seq < events[j].seq })
	for _, ev := range events {
		s := ev.span
		ts := s.Start
		if !ev.begin {
			ts = s.End
		}
		var args [][2]string
		if ev.begin {
			args = append(args,
				[2]string{"trace", s.Trace.String()},
				[2]string{"span", strconv.FormatUint(uint64(s.ID), 10)},
			)
			if s.Parent != 0 {
				args = append(args, [2]string{"parent", strconv.FormatUint(uint64(s.Parent), 10)})
			}
			for _, a := range s.Attrs {
				args = append(args, [2]string{a.Key, a.Val})
			}
		} else {
			if s.HasCycles {
				args = append(args,
					[2]string{"start_cycle", strconv.FormatUint(s.StartCycle, 10)},
					[2]string{"end_cycle", strconv.FormatUint(s.EndCycle, 10)},
				)
			}
			if s.Err != "" {
				args = append(args, [2]string{"err", s.Err})
			}
			if s.EndSeq == 0 {
				args = append(args, [2]string{"inflight", "true"})
			}
		}
		micros := float64(ts.Sub(origin)) / float64(time.Microsecond)
		ct.AsyncSpan(ev.begin, uint64(s.Lane), s.Name, micros, args)
	}
}

// spanWire is the JSONL form of one span.
type spanWire struct {
	Type       string            `json:"type"`
	Trace      string            `json:"trace"`
	Span       uint64            `json:"span"`
	Parent     uint64            `json:"parent,omitempty"`
	Lane       uint64            `json:"lane"`
	Name       string            `json:"name"`
	Start      time.Time         `json:"start"`
	End        *time.Time        `json:"end,omitempty"`
	DurUS      float64           `json:"dur_us,omitempty"`
	StartCycle uint64            `json:"start_cycle,omitempty"`
	EndCycle   uint64            `json:"end_cycle,omitempty"`
	Attrs      map[string]string `json:"attrs,omitempty"`
	Err        string            `json:"err,omitempty"`
}

// ExportJSONL writes one `{"type":"span",...}` line per span into j,
// suitable for mixing with (job-tagged) simulator event lines in the
// same stream.
func ExportJSONL(j *obs.JSONL, spans []SpanSnap) {
	for _, s := range spans {
		w := spanWire{
			Type:       "span",
			Trace:      s.Trace.String(),
			Span:       uint64(s.ID),
			Parent:     uint64(s.Parent),
			Lane:       uint64(s.Lane),
			Name:       s.Name,
			Start:      s.Start,
			StartCycle: s.StartCycle,
			EndCycle:   s.EndCycle,
			Err:        s.Err,
		}
		if !s.End.IsZero() {
			end := s.End
			w.End = &end
			w.DurUS = float64(s.End.Sub(s.Start)) / float64(time.Microsecond)
		}
		if len(s.Attrs) > 0 {
			w.Attrs = make(map[string]string, len(s.Attrs))
			for _, a := range s.Attrs {
				w.Attrs[a.Key] = a.Val
			}
		}
		line, err := json.Marshal(w)
		if err != nil {
			continue
		}
		j.Raw(string(line))
	}
}
