package telemetry

import (
	"sort"
	"strconv"
)

// Remote-span import: the coordinator→worker RPC hop of the distributed
// cluster carries the trace id outward (an X-Hammertime-Trace header)
// and the worker's span snapshots back in the response. ImportRemote
// grafts those snapshots into the local tracer under the dispatch span,
// so a job's trace shows the worker-side grid/cell spans nested where
// the RPC happened — one trace across processes.

// ParseTraceID parses the 16-hex-digit wire form produced by
// TraceID.String. Reports false on anything else.
func ParseTraceID(s string) (TraceID, bool) {
	if len(s) != 16 {
		return 0, false
	}
	v, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return 0, false
	}
	return TraceID(v), true
}

// ImportRemote appends spans collected by another process (a worker's
// Tracer.Snapshot) to t, remapped onto fresh local span ids: every
// remote parent/lane link is preserved among the imported spans, and
// remote roots (parent 0, or a parent missing from the snapshot) become
// children of parent. Remote spans are assigned start/end sequence
// numbers after everything already in t — they were collected before the
// import, so export ordering stays consistent. Spans still open in the
// snapshot stay open locally (the exporters already tag in-flight
// spans). No-op on a nil tracer.
func (t *Tracer) ImportRemote(parent SpanID, snaps []SpanSnap) {
	if t == nil || len(snaps) == 0 {
		return
	}
	ordered := append([]SpanSnap(nil), snaps...)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].StartSeq < ordered[j].StartSeq })

	t.mu.Lock()
	defer t.mu.Unlock()
	ids := make(map[SpanID]SpanID, len(ordered))
	for _, snap := range ordered {
		t.next++
		ids[snap.ID] = t.next
	}
	for _, snap := range ordered {
		s := &Span{
			tracer: t,
			id:     ids[snap.ID],
			name:   snap.Name,
			start:  snap.Start,
		}
		if p, ok := ids[snap.Parent]; ok {
			s.parent = p
		} else {
			s.parent = parent
		}
		if lane, ok := ids[snap.Lane]; ok {
			s.lane = lane
		} else {
			s.lane = s.id
		}
		t.seq++
		s.startSeq = t.seq
		s.attrs = append([]Attr(nil), snap.Attrs...)
		s.errMsg = snap.Err
		s.startCycle, s.endCycle, s.hasCycles = snap.StartCycle, snap.EndCycle, snap.HasCycles
		if !snap.End.IsZero() {
			s.end = snap.End
			t.seq++
			s.endSeq = t.seq
		}
		t.spans = append(t.spans, s)
	}
}
