package telemetry

import (
	"fmt"
	"strconv"
	"strings"
)

// checkExposition is a strict structural parser for Prometheus text
// exposition format 0.0.4 — the CI-side validator for what
// WritePrometheus (and hammerd's /metrics) produce. It verifies:
//
//   - every non-comment line is `name[{labels}] value`;
//   - metric names and label keys stay in the legal alphabets;
//   - label values are properly quoted and escaped;
//   - every sample's family has a preceding # TYPE line;
//   - histogram families have monotonically non-decreasing buckets, a
//     +Inf bucket, and _count equal to the +Inf bucket.
func checkExposition(text string) error {
	types := map[string]string{}
	infBucket := map[string]float64{}
	lastBucket := map[string]float64{}
	counts := map[string]float64{}

	for ln, line := range strings.Split(text, "\n") {
		lineNo := ln + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 2 && fields[1] == "TYPE" {
				if len(fields) != 4 {
					return fmt.Errorf("line %d: malformed TYPE comment %q", lineNo, line)
				}
				switch fields[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return fmt.Errorf("line %d: unknown type %q", lineNo, fields[3])
				}
				types[fields[2]] = fields[3]
			}
			continue
		}
		name, labels, value, err := parseSample(line)
		if err != nil {
			return fmt.Errorf("line %d: %w", lineNo, err)
		}
		if !validMetricName(name) {
			return fmt.Errorf("line %d: invalid metric name %q", lineNo, name)
		}
		family := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(name, suffix)
			if base != name && types[base] == "histogram" {
				family = base
				break
			}
		}
		if _, ok := types[family]; !ok {
			return fmt.Errorf("line %d: sample %q has no # TYPE line", lineNo, name)
		}
		if types[family] == "histogram" {
			key := family + "|" + labelsKeyWithout(labels, "le")
			switch {
			case strings.HasSuffix(name, "_bucket"):
				le, ok := labels["le"]
				if !ok {
					return fmt.Errorf("line %d: bucket without le label", lineNo)
				}
				if le == "+Inf" {
					infBucket[key] = value
				} else {
					if _, err := strconv.ParseFloat(le, 64); err != nil {
						return fmt.Errorf("line %d: bad le %q", lineNo, le)
					}
					if prev, ok := lastBucket[key]; ok && value < prev {
						return fmt.Errorf("line %d: bucket counts not cumulative (%g after %g)", lineNo, value, prev)
					}
					lastBucket[key] = value
				}
			case strings.HasSuffix(name, "_count"):
				counts[key] = value
			}
		}
	}
	for key, c := range counts {
		inf, ok := infBucket[key]
		if !ok {
			return fmt.Errorf("histogram %s: no +Inf bucket", key)
		}
		if inf != c {
			return fmt.Errorf("histogram %s: +Inf bucket %g != count %g", key, inf, c)
		}
		if last, ok := lastBucket[key]; ok && last > inf {
			return fmt.Errorf("histogram %s: finite bucket %g exceeds +Inf %g", key, last, inf)
		}
	}
	return nil
}

func parseSample(line string) (name string, labels map[string]string, value float64, err error) {
	labels = map[string]string{}
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		name = rest[:i]
		end := strings.LastIndexByte(rest, '}')
		if end < i {
			return "", nil, 0, fmt.Errorf("unterminated label set in %q", line)
		}
		if err := parseLabels(rest[i+1:end], labels); err != nil {
			return "", nil, 0, err
		}
		rest = strings.TrimSpace(rest[end+1:])
	} else {
		fields := strings.SplitN(rest, " ", 2)
		if len(fields) != 2 {
			return "", nil, 0, fmt.Errorf("no value in %q", line)
		}
		name, rest = fields[0], strings.TrimSpace(fields[1])
	}
	valStr := strings.Fields(rest)
	if len(valStr) == 0 {
		return "", nil, 0, fmt.Errorf("no value in %q", line)
	}
	if valStr[0] == "+Inf" || valStr[0] == "-Inf" || valStr[0] == "NaN" {
		return name, labels, 0, nil
	}
	value, err = strconv.ParseFloat(valStr[0], 64)
	if err != nil {
		return "", nil, 0, fmt.Errorf("bad value %q: %w", valStr[0], err)
	}
	return name, labels, value, nil
}

func parseLabels(s string, out map[string]string) error {
	for len(s) > 0 {
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return fmt.Errorf("label without '=' in %q", s)
		}
		key := strings.TrimSpace(s[:eq])
		if !validLabelName(key) {
			return fmt.Errorf("invalid label name %q", key)
		}
		s = s[eq+1:]
		if len(s) == 0 || s[0] != '"' {
			return fmt.Errorf("unquoted label value for %q", key)
		}
		s = s[1:]
		var val strings.Builder
		closed := false
		for i := 0; i < len(s); i++ {
			c := s[i]
			if c == '\\' && i+1 < len(s) {
				i++
				switch s[i] {
				case 'n':
					val.WriteByte('\n')
				case '\\', '"':
					val.WriteByte(s[i])
				default:
					return fmt.Errorf("bad escape \\%c", s[i])
				}
				continue
			}
			if c == '"' {
				out[key] = val.String()
				s = s[i+1:]
				closed = true
				break
			}
			val.WriteByte(c)
		}
		if !closed {
			return fmt.Errorf("unterminated label value for %q", key)
		}
		s = strings.TrimPrefix(s, ",")
	}
	return nil
}

func labelsKeyWithout(labels map[string]string, skip string) string {
	var parts []string
	for k, v := range labels {
		if k != skip {
			parts = append(parts, k+"="+v)
		}
	}
	// Map order is random; sort for a stable key.
	for i := 1; i < len(parts); i++ {
		for j := i; j > 0 && parts[j] < parts[j-1]; j-- {
			parts[j], parts[j-1] = parts[j-1], parts[j]
		}
	}
	return strings.Join(parts, ",")
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(c >= '0' && c <= '9' && i > 0)
		if !ok {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(c >= '0' && c <= '9' && i > 0)
		if !ok {
			return false
		}
	}
	return true
}
