// Package telemetry is the live-introspection layer over the simulator:
// span-based tracing (a trace ID plus parent/child spans carrying
// wall-clock, simulation cycles and attributes) propagated through
// context.Context along the whole run path — a hammerd job, the
// experiment grid, each grid cell, the machine phases inside a cell —
// plus a publish/subscribe Hub for streaming progress and simulator
// events to live clients (the SSE endpoint of hammerd), and Prometheus
// text exposition for sim.Stats snapshots.
//
// Everything here is observer-only and nil-tolerant: a context without a
// Scope yields nil spans and a nil hub, and every method on those is a
// no-op costing one branch — the same contract obs.Recorder establishes
// for the event bus. Simulation results are byte-identical with
// telemetry on or off, and the disabled path allocates nothing
// (BenchmarkTelemetryDisabled pins this).
package telemetry

import (
	"context"
	"log/slog"
	"math/rand/v2"
	"strconv"
	"sync"
	"time"

	"hammertime/internal/obs"
)

// TraceID identifies one trace — all spans of one job or one CLI run.
// It is random per tracer, not derived from simulation seeds: telemetry
// is wall-clock-side and never feeds back into the simulation.
type TraceID uint64

// String renders the id as 16 lowercase hex digits (the wire format
// returned in hammerd job views).
func (t TraceID) String() string { return hex16(uint64(t)) }

// SpanID identifies one span within its trace. IDs are small sequential
// integers assigned by the tracer; 0 means "no span" (a root's parent).
type SpanID uint64

func hex16(v uint64) string {
	const digits = "0123456789abcdef"
	var b [16]byte
	for i := 15; i >= 0; i-- {
		b[i] = digits[v&0xf]
		v >>= 4
	}
	return string(b[:])
}

// Attr is one key/value attribute on a span. Values are strings — span
// attributes are for humans and JSON, not for hot-path aggregation
// (that is sim.Stats' job).
type Attr struct {
	Key string
	Val string
}

// String builds a string attribute.
func String(k, v string) Attr { return Attr{Key: k, Val: v} }

// Int builds an integer attribute.
func Int(k string, v int64) Attr { return Attr{Key: k, Val: strconv.FormatInt(v, 10)} }

// Uint builds an unsigned integer attribute.
func Uint(k string, v uint64) Attr { return Attr{Key: k, Val: strconv.FormatUint(v, 10)} }

// Tracer collects the spans of one trace. It is safe for concurrent use:
// parallel grid cells start and end spans on pool workers. The zero
// value is not usable; construct with NewTracer.
type Tracer struct {
	id TraceID

	mu    sync.Mutex
	spans []*Span
	next  SpanID
	seq   uint64 // monotonic start/end order, for export sorting
}

// NewTracer returns a tracer with a random trace ID.
func NewTracer() *Tracer { return NewTracerWithID(TraceID(rand.Uint64() | 1)) }

// NewTracerWithID returns a tracer with a fixed trace ID (tests, and
// callers that correlate with an external system).
func NewTracerWithID(id TraceID) *Tracer { return &Tracer{id: id} }

// ID returns the trace ID.
func (t *Tracer) ID() TraceID {
	if t == nil {
		return 0
	}
	return t.id
}

// start registers a new span. lane 0 means "inherit parent's lane".
func (t *Tracer) start(name string, parent *Span, newLane bool) *Span {
	s := &Span{tracer: t, name: name, start: time.Now()}
	t.mu.Lock()
	t.next++
	s.id = t.next
	t.seq++
	s.startSeq = t.seq
	if parent != nil {
		s.parent = parent.id
		s.lane = parent.lane
	}
	if newLane || parent == nil {
		s.lane = s.id
	}
	t.spans = append(t.spans, s)
	t.mu.Unlock()
	return s
}

// Span is one timed operation within a trace. All methods are safe on a
// nil receiver (the disabled path) and safe for use from the goroutine
// that started the span; a span must be ended exactly once, before its
// parent.
type Span struct {
	tracer   *Tracer
	id       SpanID
	parent   SpanID
	lane     SpanID
	name     string
	start    time.Time
	startSeq uint64

	mu         sync.Mutex
	end        time.Time
	endSeq     uint64
	startCycle uint64
	endCycle   uint64
	hasCycles  bool
	attrs      []Attr
	errMsg     string
}

// ID returns the span's id (0 on nil).
func (s *Span) ID() SpanID {
	if s == nil {
		return 0
	}
	return s.id
}

// SetAttrs appends attributes to the span. No-op on nil.
func (s *Span) SetAttrs(attrs ...Attr) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, attrs...)
	s.mu.Unlock()
}

// SetCycles records the simulation-cycle window the span covers. No-op
// on nil.
func (s *Span) SetCycles(start, end uint64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.startCycle, s.endCycle, s.hasCycles = start, end, true
	s.mu.Unlock()
}

// Fail records the span's failure cause without ending it. No-op on nil
// or nil err.
func (s *Span) Fail(err error) {
	if s == nil || err == nil {
		return
	}
	s.mu.Lock()
	s.errMsg = err.Error()
	s.mu.Unlock()
}

// End closes the span at the current wall clock. Ending twice keeps the
// first end. No-op on nil.
func (s *Span) End() {
	if s == nil {
		return
	}
	now := time.Now()
	s.tracer.mu.Lock()
	s.tracer.seq++
	seq := s.tracer.seq
	s.tracer.mu.Unlock()
	s.mu.Lock()
	if s.end.IsZero() {
		s.end = now
		s.endSeq = seq
	}
	s.mu.Unlock()
}

// EndErr records err (if any) and ends the span. No-op on nil.
func (s *Span) EndErr(err error) {
	s.Fail(err)
	s.End()
}

// SpanSnap is an immutable snapshot of one span, the unit the exporters
// consume. End is zero for a span still in flight at snapshot time.
type SpanSnap struct {
	Trace      TraceID
	ID         SpanID
	Parent     SpanID
	Lane       SpanID
	Name       string
	Start      time.Time
	End        time.Time
	StartSeq   uint64
	EndSeq     uint64
	StartCycle uint64
	EndCycle   uint64
	HasCycles  bool
	Attrs      []Attr
	Err        string
}

// Snapshot returns a copy of every span started so far, in start order.
// Safe to call while spans are still being started and ended.
func (t *Tracer) Snapshot() []SpanSnap {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	spans := append([]*Span(nil), t.spans...)
	t.mu.Unlock()
	out := make([]SpanSnap, 0, len(spans))
	for _, s := range spans {
		s.mu.Lock()
		snap := SpanSnap{
			Trace:      t.id,
			ID:         s.id,
			Parent:     s.parent,
			Lane:       s.lane,
			Name:       s.name,
			Start:      s.start,
			End:        s.end,
			StartSeq:   s.startSeq,
			EndSeq:     s.endSeq,
			StartCycle: s.startCycle,
			EndCycle:   s.endCycle,
			HasCycles:  s.hasCycles,
			Attrs:      append([]Attr(nil), s.attrs...),
			Err:        s.errMsg,
		}
		s.mu.Unlock()
		out = append(out, snap)
	}
	return out
}

// Scope is the telemetry context of one job or CLI run: the tracer
// collecting its spans, the hub streaming its live records (nil when
// nobody can subscribe), and the obs recorder to attach to machines
// (nil when simulator events were not requested — keeping the
// unobserved fast-forward path intact).
type Scope struct {
	Tracer   *Tracer
	Hub      *Hub
	Observer *obs.Recorder
}

type scopeKey struct{}
type spanKey struct{}

// NewContext returns ctx carrying the scope. A nil scope returns ctx
// unchanged.
func NewContext(ctx context.Context, s *Scope) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, scopeKey{}, s)
}

// ScopeFrom returns the scope carried by ctx, or nil.
func ScopeFrom(ctx context.Context) *Scope {
	s, _ := ctx.Value(scopeKey{}).(*Scope)
	return s
}

// HubFrom returns the hub carried by ctx's scope, or nil.
func HubFrom(ctx context.Context) *Hub {
	if s := ScopeFrom(ctx); s != nil {
		return s.Hub
	}
	return nil
}

// ObserverFrom returns the obs recorder carried by ctx's scope, or nil.
func ObserverFrom(ctx context.Context) *obs.Recorder {
	if s := ScopeFrom(ctx); s != nil {
		return s.Observer
	}
	return nil
}

// SpanFrom returns the innermost span carried by ctx, or nil.
func SpanFrom(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

// StartSpan starts a span named name as a child of ctx's current span
// (a root when there is none), on the parent's lane, and returns a
// context carrying it. Without a scope in ctx it returns (ctx, nil) —
// one Value lookup, zero allocations; all Span methods no-op on nil.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	return startSpan(ctx, name, false)
}

// StartLane is StartSpan on a fresh lane: the span (and its children)
// render as their own concurrent track in the Chrome trace. Grid cells
// running in parallel each get a lane; sequential phases inherit their
// parent's.
func StartLane(ctx context.Context, name string) (context.Context, *Span) {
	return startSpan(ctx, name, true)
}

// WithSpan returns ctx carrying span as the current span, so spans
// started later nest under it. Used when the parent span was started on
// a different context than the one threaded into the work (hammerd
// starts the job span at submission but runs the job on the session's
// cancellable context). A nil span returns ctx unchanged.
func WithSpan(ctx context.Context, span *Span) context.Context {
	if span == nil {
		return ctx
	}
	return context.WithValue(ctx, spanKey{}, span)
}

func startSpan(ctx context.Context, name string, newLane bool) (context.Context, *Span) {
	scope := ScopeFrom(ctx)
	if scope == nil || scope.Tracer == nil {
		return ctx, nil
	}
	span := scope.Tracer.start(name, SpanFrom(ctx), newLane)
	return context.WithValue(ctx, spanKey{}, span), span
}

// CountEvents adds n simulated events to ctx's hub counter (the
// events/sec source of progress records). Free without a hub.
func CountEvents(ctx context.Context, n uint64) {
	if h := HubFrom(ctx); h != nil {
		h.CountEvents(n)
	}
}

// nopHandler discards every record. slog.DiscardHandler exists only
// from Go 1.24; this keeps the module buildable at its declared
// language version.
type nopHandler struct{}

func (nopHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (nopHandler) Handle(context.Context, slog.Record) error { return nil }
func (nopHandler) WithAttrs([]slog.Attr) slog.Handler        { return nopHandler{} }
func (nopHandler) WithGroup(string) slog.Handler             { return nopHandler{} }

var nopLogger = slog.New(nopHandler{})

// NopLogger returns a logger that discards everything — the default
// wherever a *slog.Logger is optional.
func NopLogger() *slog.Logger { return nopLogger }

// OrNop returns l, or the nop logger when l is nil.
func OrNop(l *slog.Logger) *slog.Logger {
	if l == nil {
		return nopLogger
	}
	return l
}
