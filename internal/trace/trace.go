// Package trace records and replays memory-access traces as JSON lines,
// so workloads can be captured once (from a generator, a probe run, or a
// hand-written scenario) and replayed deterministically against different
// machine configurations — the standard methodology for comparing
// defenses on identical access streams.
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"hammertime/internal/addr"
	"hammertime/internal/cpu"
)

// Event is one recorded access at cache-line granularity.
type Event struct {
	// Seq is the 0-based position in the stream.
	Seq uint64 `json:"seq"`
	// Line is the physical line index.
	Line  uint64 `json:"line"`
	Write bool   `json:"write,omitempty"`
	Flush bool   `json:"flush,omitempty"`
	Think uint64 `json:"think,omitempty"`
}

// Writer streams events as JSON lines.
type Writer struct {
	enc *json.Encoder
	seq uint64
}

// NewWriter returns a Writer emitting to w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{enc: json.NewEncoder(w)}
}

// Write appends one event (Seq is assigned automatically).
func (w *Writer) Write(ev Event) error {
	ev.Seq = w.seq
	w.seq++
	if err := w.enc.Encode(ev); err != nil {
		return fmt.Errorf("trace: write event %d: %w", ev.Seq, err)
	}
	return nil
}

// Count returns how many events have been written.
func (w *Writer) Count() uint64 { return w.seq }

// Record wraps a program so every access it yields is also written to w.
func Record(p cpu.Program, w *Writer) cpu.Program {
	failed := false
	return cpu.ProgramFunc(func() (cpu.Access, bool) {
		if failed {
			return cpu.Access{}, false
		}
		acc, ok := p.Next()
		if !ok {
			return cpu.Access{}, false
		}
		if err := w.Write(Event{Line: acc.Line, Write: acc.Write, Flush: acc.Flush, Think: acc.Think}); err != nil {
			// A broken trace sink ends the program rather than silently
			// recording a partial stream.
			failed = true
			return cpu.Access{}, false
		}
		return acc, true
	})
}

// Read parses a complete JSON-lines trace. A stream cut off mid-event —
// an unparsable final line, or a jump in the seq numbering where lost
// lines would leave a gap — is reported as a "trace: truncated at event
// N" error rather than silently yielding the surviving prefix, so
// replaying a half-copied trace fails loudly instead of comparing
// defenses on different access streams.
func Read(r io.Reader) ([]Event, error) {
	var events []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			if !sc.Scan() {
				// The unparsable line is the last one: the stream was cut
				// off mid-event.
				return nil, fmt.Errorf("trace: truncated at event %d: %w", len(events), err)
			}
			return nil, fmt.Errorf("trace: line %d: %w", lineNo, err)
		}
		if ev.Seq != uint64(len(events)) {
			return nil, fmt.Errorf("trace: truncated at event %d: line %d has seq %d",
				len(events), lineNo, ev.Seq)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: read: %w", err)
	}
	return events, nil
}

// Replay turns a recorded trace back into a program.
func Replay(events []Event) cpu.Program {
	i := 0
	return cpu.ProgramFunc(func() (cpu.Access, bool) {
		if i >= len(events) {
			return cpu.Access{}, false
		}
		ev := events[i]
		i++
		return cpu.Access{Line: ev.Line, Write: ev.Write, Flush: ev.Flush, Think: ev.Think}, true
	})
}

// RowStats summarizes a trace against an address mapping: accesses per
// (bank, row), sorted hottest-first — the offline view of what an ACT
// counter sees, useful for sizing detector thresholds.
type RowStats struct {
	Bank, Row int
	Accesses  uint64
}

// Summarize aggregates per-row access counts.
func Summarize(events []Event, m addr.Mapper) []RowStats {
	counts := make(map[[2]int]uint64)
	for _, ev := range events {
		d := m.Map(ev.Line)
		counts[[2]int{d.Bank, d.Row}]++
	}
	out := make([]RowStats, 0, len(counts))
	for k, n := range counts {
		out = append(out, RowStats{Bank: k[0], Row: k[1], Accesses: n})
	}
	// Hottest first; deterministic tie-break by (bank, row).
	for i := 1; i < len(out); i++ {
		for j := i; j > 0; j-- {
			a, b := out[j-1], out[j]
			if b.Accesses > a.Accesses ||
				(b.Accesses == a.Accesses && (b.Bank < a.Bank || (b.Bank == a.Bank && b.Row < a.Row))) {
				out[j-1], out[j] = out[j], out[j-1]
			} else {
				break
			}
		}
	}
	return out
}
