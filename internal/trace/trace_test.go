package trace

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"hammertime/internal/addr"
	"hammertime/internal/cpu"
	"hammertime/internal/dram"
)

func progFromAccesses(accs []cpu.Access) cpu.Program {
	i := 0
	return cpu.ProgramFunc(func() (cpu.Access, bool) {
		if i >= len(accs) {
			return cpu.Access{}, false
		}
		a := accs[i]
		i++
		return a, true
	})
}

// TestRecordReplayRoundTrip is the core property: for any access stream,
// record-then-replay reproduces the stream exactly.
func TestRecordReplayRoundTrip(t *testing.T) {
	f := func(lines []uint16, flags []bool) bool {
		var accs []cpu.Access
		for i, l := range lines {
			a := cpu.Access{Line: uint64(l), Think: uint64(l % 7)}
			if i < len(flags) {
				a.Write = flags[i]
				a.Flush = !flags[i]
			}
			accs = append(accs, a)
		}
		var buf bytes.Buffer
		w := NewWriter(&buf)
		rec := Record(progFromAccesses(accs), w)
		for {
			if _, ok := rec.Next(); !ok {
				break
			}
		}
		if w.Count() != uint64(len(accs)) {
			return false
		}
		events, err := Read(&buf)
		if err != nil {
			return false
		}
		rep := Replay(events)
		for _, want := range accs {
			got, ok := rep.Next()
			if !ok || got != want {
				return false
			}
		}
		_, ok := rep.Next()
		return !ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader("{\"seq\":0}\nnot json\n")); err == nil {
		t.Fatal("malformed trace accepted")
	}
}

func TestReadSkipsBlankLines(t *testing.T) {
	events, err := Read(strings.NewReader("{\"seq\":0,\"line\":5}\n\n{\"seq\":1,\"line\":6}\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 || events[1].Line != 6 {
		t.Fatalf("events = %+v", events)
	}
}

func TestReadTruncatedMidLine(t *testing.T) {
	// The second event's line was cut off mid-object — a half-copied file.
	_, err := Read(strings.NewReader("{\"seq\":0,\"line\":5}\n{\"seq\":1,\"li"))
	if err == nil {
		t.Fatal("truncated trace accepted")
	}
	if !strings.Contains(err.Error(), "trace: truncated at event 1") {
		t.Fatalf("err = %v, want truncated-at-event-1", err)
	}
}

func TestReadTruncatedSeqGap(t *testing.T) {
	// Lost middle lines leave a jump in the seq numbering.
	_, err := Read(strings.NewReader("{\"seq\":0,\"line\":5}\n{\"seq\":3,\"line\":6}\n"))
	if err == nil {
		t.Fatal("seq gap accepted")
	}
	if !strings.Contains(err.Error(), "trace: truncated at event 1") {
		t.Fatalf("err = %v, want truncated-at-event-1", err)
	}
}

func TestSummarizeHottestFirst(t *testing.T) {
	m := addr.NewLineInterleave(dram.DefaultGeometry())
	g := dram.DefaultGeometry()
	stripe := uint64(g.Banks * g.ColumnsPerRow)
	var events []Event
	// Row 1 of bank 0 hit 5 times, row 0 of bank 0 twice.
	for i := 0; i < 5; i++ {
		events = append(events, Event{Line: stripe})
	}
	events = append(events, Event{Line: 0}, Event{Line: 0})
	stats := Summarize(events, m)
	if len(stats) != 2 {
		t.Fatalf("stats = %+v", stats)
	}
	if stats[0].Row != 1 || stats[0].Accesses != 5 {
		t.Fatalf("hottest = %+v", stats[0])
	}
	if stats[1].Row != 0 || stats[1].Accesses != 2 {
		t.Fatalf("second = %+v", stats[1])
	}
}

func TestRecordSinkFailureEndsProgram(t *testing.T) {
	w := NewWriter(failingWriter{})
	rec := Record(progFromAccesses([]cpu.Access{{Line: 1}, {Line: 2}}), w)
	if _, ok := rec.Next(); ok {
		t.Fatal("program continued past a failing trace sink")
	}
}

type failingWriter struct{}

func (failingWriter) Write([]byte) (int, error) {
	return 0, &writeErr{}
}

type writeErr struct{}

func (*writeErr) Error() string { return "sink failed" }
