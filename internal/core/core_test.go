package core

import (
	"fmt"
	"testing"

	"hammertime/internal/dram"
	"hammertime/internal/memctrl"
)

func TestNewMachineDefaults(t *testing.T) {
	m, err := NewMachine(MachineSpec{})
	if err != nil {
		t.Fatal(err)
	}
	if m.DRAM == nil || m.MC == nil || m.Cache == nil || m.Kernel == nil || m.Mapper == nil {
		t.Fatal("machine has nil components")
	}
	if m.Mapper.Name() != "line-interleave" {
		t.Fatalf("default mapper = %s", m.Mapper.Name())
	}
}

func TestNewMachineValidation(t *testing.T) {
	spec := DefaultSpec()
	spec.Alloc = AllocSubarrayAware // requires SubarrayGroups > 0
	if _, err := NewMachine(spec); err == nil {
		t.Fatal("subarray-aware allocation without groups accepted")
	}
	spec = DefaultSpec()
	spec.Interleave = InterleaveKind(99)
	if _, err := NewMachine(spec); err == nil {
		t.Fatal("unknown interleave accepted")
	}
	spec = DefaultSpec()
	spec.Alloc = AllocKind(99)
	if _, err := NewMachine(spec); err == nil {
		t.Fatal("unknown allocator accepted")
	}
	spec = DefaultSpec()
	spec.SubarrayGroups = 3 // not a divisor of 16
	if _, err := NewMachine(spec); err == nil {
		t.Fatal("indivisible group count accepted")
	}
}

func TestClassString(t *testing.T) {
	want := map[Class]string{
		ClassNone: "none", ClassIsolation: "isolation", ClassFrequency: "frequency",
		ClassRefresh: "refresh", ClassInDRAM: "in-dram", ClassInMC: "in-mc",
	}
	for c, s := range want {
		if c.String() != s {
			t.Errorf("%d -> %s, want %s", int(c), c.String(), s)
		}
	}
	if Class(42).String() != "Class(42)" {
		t.Fatal("unknown class string")
	}
}

// stepperAgent performs fixed-cost steps for scheduling tests.
type stepperAgent struct {
	cost  uint64
	limit int
	steps int
	log   *[]int
	id    int
}

func (a *stepperAgent) Done() bool { return a.steps >= a.limit }

func (a *stepperAgent) Step(now uint64) (uint64, bool, error) {
	if a.Done() {
		return now, false, nil
	}
	a.steps++
	if a.log != nil {
		*a.log = append(*a.log, a.id)
	}
	return now + a.cost, true, nil
}

func TestRunSchedulesEarliestFirst(t *testing.T) {
	m, err := NewMachine(MachineSpec{})
	if err != nil {
		t.Fatal(err)
	}
	var order []int
	fast := &stepperAgent{cost: 10, limit: 1000000, log: &order, id: 0}
	slow := &stepperAgent{cost: 30, limit: 1000000, log: &order, id: 1}
	res, err := m.Run([]Agent{fast, slow}, 300)
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps[0] != 30 || res.Steps[1] != 10 {
		t.Fatalf("steps = %v, want [30 10]", res.Steps)
	}
	// Deterministic interleave: the fast agent must run ~3x as often.
	if len(order) != 40 {
		t.Fatalf("order length %d", len(order))
	}
}

func TestRunStopsFinishedAgents(t *testing.T) {
	m, err := NewMachine(MachineSpec{})
	if err != nil {
		t.Fatal(err)
	}
	short := &stepperAgent{cost: 1, limit: 5}
	res, err := m.Run([]Agent{short}, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps[0] != 5 {
		t.Fatalf("steps = %d, want 5", res.Steps[0])
	}
}

func TestRunIncludesDaemons(t *testing.T) {
	m, err := NewMachine(MachineSpec{})
	if err != nil {
		t.Fatal(err)
	}
	d := &stepperAgent{cost: 100, limit: 1 << 30}
	m.AddDaemon(d)
	res, err := m.Run([]Agent{&stepperAgent{cost: 50, limit: 2}}, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Steps) != 2 {
		t.Fatalf("steps slice = %v", res.Steps)
	}
	if res.Steps[1] != 10 {
		t.Fatalf("daemon steps = %d, want 10", res.Steps[1])
	}
}

func TestRunRequiresHorizon(t *testing.T) {
	m, err := NewMachine(MachineSpec{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(nil, 0); err == nil {
		t.Fatal("zero horizon accepted")
	}
}

func TestRunAdvancesRefreshToHorizon(t *testing.T) {
	m, err := NewMachine(MachineSpec{})
	if err != nil {
		t.Fatal(err)
	}
	horizon := m.Spec.Timing.TREFI * 10
	res, err := m.Run(nil, horizon)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Counter("dram.ref") != 10 {
		t.Fatalf("refs = %d, want 10", res.Stats.Counter("dram.ref"))
	}
}

func TestThroughputHelper(t *testing.T) {
	r := RunResult{Horizon: 1000, Steps: []uint64{500}}
	if got := r.Throughput(0); got != 500 {
		t.Fatalf("throughput = %g, want 500 per kilocycle", got)
	}
	if (RunResult{}).Horizon != 0 {
		t.Fatal("zero value wrong")
	}
}

func TestBuildWithDefenseNil(t *testing.T) {
	m, err := BuildWithDefense(DefaultSpec(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if m == nil {
		t.Fatal("nil machine")
	}
}

// TestDeterminism is the cornerstone invariant: identical specs and agent
// programs produce bit-identical outcomes.
func TestDeterminism(t *testing.T) {
	run := func() (uint64, string) {
		spec := DefaultSpec()
		spec.Profile = dram.LPDDR4()
		m, err := NewMachine(spec)
		if err != nil {
			t.Fatal(err)
		}
		d := m.Kernel.CreateDomain("d", false, false)
		if _, err := m.Kernel.AllocPages(d.ID, 0, 8); err != nil {
			t.Fatal(err)
		}
		// Drive raw controller traffic: alternating rows in one bank.
		g := m.Spec.Geometry
		stripe := uint64(g.Banks * g.ColumnsPerRow)
		now := uint64(0)
		for i := 0; i < 30000; i++ {
			res, err := m.MC.ServeRequest(memctrl.Request{Line: uint64(i%2) * 2 * stripe, Domain: d.ID}, now)
			if err != nil {
				t.Fatal(err)
			}
			now = res.Completion
		}
		return m.Flips(), m.DRAM.Stats().String()
	}
	f1, s1 := run()
	f2, s2 := run()
	if f1 != f2 || s1 != s2 {
		t.Fatalf("two identical runs diverged: %d vs %d flips", f1, f2)
	}
	if f1 == 0 {
		t.Fatal("determinism test never flipped (dead test)")
	}
}

func TestNewMachineVariants(t *testing.T) {
	// Every spec knob the defenses rely on must build and wire correctly.
	spec := DefaultSpec()
	spec.Interleave = InterleaveXOR
	if _, err := NewMachine(spec); err != nil {
		t.Fatalf("xor interleave: %v", err)
	}

	spec = DefaultSpec()
	spec.Interleave = InterleaveRowRegion
	spec.Alloc = AllocBankAware
	spec.BankPartitions = 2
	if _, err := NewMachine(spec); err != nil {
		t.Fatalf("bank-aware: %v", err)
	}

	spec = DefaultSpec()
	spec.Alloc = AllocGuardRow // radius defaults to the profile's blast radius
	if _, err := NewMachine(spec); err != nil {
		t.Fatalf("guard-row: %v", err)
	}

	spec = DefaultSpec()
	spec.Graphene = &GrapheneSpec{Entries: 8}
	spec.RateLimit = &RateLimitSpec{}
	spec.PARAProb = 0.001
	spec.TRR = &dram.TRRConfig{TrackerEntries: 4, MitigationsPerREF: 1, RefreshRadius: 1}
	spec.ECC = true
	m, err := NewMachine(spec)
	if err != nil {
		t.Fatalf("full-featured machine: %v", err)
	}
	if !m.DRAM.ECCEnabled() {
		t.Fatal("ECC not wired through")
	}

	spec = DefaultSpec()
	spec.SubarrayGroups = 4
	spec.EnforceDomains = true
	m, err = NewMachine(spec)
	if err != nil {
		t.Fatalf("enforced subarray machine: %v", err)
	}
	if m.MC.Enforcer() == nil {
		t.Fatal("enforcer not wired through")
	}
}

func TestFlipAttributionByVictim(t *testing.T) {
	spec := DefaultSpec()
	spec.Profile = dram.LPDDR4()
	m, err := NewMachine(spec)
	if err != nil {
		t.Fatal(err)
	}
	agg := m.Kernel.CreateDomain("agg", false, false)
	vic := m.Kernel.CreateDomain("vic", false, false)
	// Interleave allocations so rows mix both domains.
	for p := 0; p < 64; p++ {
		if _, err := m.Kernel.AllocPages(agg.ID, uint64(p), 1); err != nil {
			t.Fatal(err)
		}
		if _, err := m.Kernel.AllocPages(vic.ID, uint64(p), 1); err != nil {
			t.Fatal(err)
		}
	}
	g := spec.Geometry
	stripe := uint64(g.Banks * g.ColumnsPerRow)
	now := uint64(0)
	for i := 0; i < 30000; i++ {
		res, err := m.MC.ServeRequest(memctrl.Request{Line: uint64(i%2) * 2 * stripe, Domain: agg.ID}, now)
		if err != nil {
			t.Fatal(err)
		}
		now = res.Completion
	}
	if m.Flips() == 0 {
		t.Fatal("no flips")
	}
	byVictim := m.FlipsByVictim()
	if byVictim[vic.ID] == 0 {
		t.Fatalf("no flips attributed to the victim domain: %v", byVictim)
	}
	if m.CrossDomainFlips() != byVictim[vic.ID] {
		t.Fatalf("cross flips %d != victim-attributed %d (aggressor tagged wrong?)",
			m.CrossDomainFlips(), byVictim[vic.ID])
	}
	if m.MitigationFlips() != 0 {
		t.Fatal("mitigation flips counted without any mitigation")
	}
}

func TestRunPropagatesAgentError(t *testing.T) {
	m, err := NewMachine(MachineSpec{})
	if err != nil {
		t.Fatal(err)
	}
	bad := &failingAgent{}
	if _, err := m.Run([]Agent{bad}, 1000); err == nil {
		t.Fatal("agent error swallowed")
	}
}

type failingAgent struct{}

func (*failingAgent) Done() bool { return false }
func (*failingAgent) Step(now uint64) (uint64, bool, error) {
	return 0, false, errTestAgent
}

var errTestAgent = fmt.Errorf("agent exploded")
