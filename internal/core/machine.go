// Package core assembles the simulated machine — DRAM module, memory
// controller, cache, cores/DMA, host kernel — and runs deterministic
// multi-agent simulations over it. It also defines the Defense interface
// and the paper's mitigation taxonomy (§2.2): isolation-centric,
// frequency-centric and refresh-centric.
package core

import (
	"fmt"

	"hammertime/internal/addr"
	"hammertime/internal/cache"
	"hammertime/internal/check"
	"hammertime/internal/dram"
	"hammertime/internal/hostos"
	"hammertime/internal/memctrl"
	"hammertime/internal/obs"
	"hammertime/internal/sim"
)

// Class is the paper's taxonomy of Rowhammer mitigations plus the
// hardware-baseline classes used for comparison.
type Class int

const (
	// ClassNone is the undefended baseline.
	ClassNone Class = iota
	// ClassIsolation removes cross-domain aggressor-victim pairs (§2.2).
	ClassIsolation
	// ClassFrequency prevents dangerously-frequent ACTs (§2.2).
	ClassFrequency
	// ClassRefresh refreshes potential victims before they flip (§2.2).
	ClassRefresh
	// ClassInDRAM marks blackbox in-DRAM baselines (TRR).
	ClassInDRAM
	// ClassInMC marks in-memory-controller hardware baselines
	// (PARA, Graphene, BlockHammer).
	ClassInMC
)

// String returns the class name.
func (c Class) String() string {
	switch c {
	case ClassNone:
		return "none"
	case ClassIsolation:
		return "isolation"
	case ClassFrequency:
		return "frequency"
	case ClassRefresh:
		return "refresh"
	case ClassInDRAM:
		return "in-dram"
	case ClassInMC:
		return "in-mc"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// InterleaveKind selects the BIOS-configured address mapping.
type InterleaveKind int

const (
	// InterleaveLine spreads consecutive lines across banks (default).
	InterleaveLine InterleaveKind = iota
	// InterleaveRowRegion disables bank interleaving (each bank owns a
	// contiguous region) — what bank-aware allocation requires.
	InterleaveRowRegion
	// InterleaveXOR is line interleaving with XOR bank permutation.
	InterleaveXOR
)

// AllocKind selects the host page-allocation policy.
type AllocKind int

const (
	// AllocLinear is the Rowhammer-oblivious default.
	AllocLinear AllocKind = iota
	// AllocBankAware confines each domain to its own banks (PALLOC).
	AllocBankAware
	// AllocGuardRow separates all data rows by guard rows (ZebRAM).
	AllocGuardRow
	// AllocSubarrayAware confines each domain to a subarray group (§4.1).
	AllocSubarrayAware
)

// RateLimitSpec configures the BlockHammer-style admission controller.
type RateLimitSpec struct {
	MaxActsPerWindow uint64
	WatchThreshold   uint64
}

// GrapheneSpec configures the in-MC Misra-Gries tracker baseline.
type GrapheneSpec struct {
	Entries   int
	Threshold uint64
	Radius    int
}

// MachineSpec is the buildable description of a machine. Defenses mutate
// it in Configure before the machine is built.
type MachineSpec struct {
	Geometry dram.Geometry
	Timing   dram.Timing
	Profile  dram.DisturbanceProfile
	Seed     uint64

	// TRR enables the in-DRAM blackbox baseline.
	TRR *dram.TRRConfig
	// ECC enables SECDED (72,64) protection in the module (the Cojocar
	// et al. threat-landscape baseline; experiment E9).
	ECC bool

	Interleave InterleaveKind
	// SubarrayGroups > 0 wraps the interleave with subarray-isolated
	// interleaving over that many groups (§4.1).
	SubarrayGroups int
	// EnforceDomains installs the MC-side domain/group check (§4.1).
	EnforceDomains bool

	Alloc AllocKind
	// BankPartitions is the partition count for AllocBankAware.
	BankPartitions int
	// GuardRadius is the guard-row spacing for AllocGuardRow
	// (0 means the profile's blast radius).
	GuardRadius int

	// PARAProb > 0 enables PARA with that per-ACT probability.
	PARAProb   float64
	PARARadius int

	Graphene  *GrapheneSpec
	RateLimit *RateLimitSpec

	Cache cache.Config
	// ClosedPage auto-precharges after every access (ablation).
	ClosedPage bool
}

// DefaultSpec returns an undefended machine: default geometry and DDR4
// timing, old-DDR4 susceptibility, line interleaving, linear allocation.
func DefaultSpec() MachineSpec {
	return MachineSpec{
		Geometry: dram.DefaultGeometry(),
		Timing:   dram.DDR4Timing(),
		Profile:  dram.DDR4Old(),
		Cache:    cache.DefaultConfig(),
		Seed:     1,
	}
}

// Agent is anything the runner can schedule: cores, DMA devices, and
// defense daemons. Step executes the agent's next action beginning at
// cycle now and returns when the agent is next ready; ok=false means the
// agent has finished.
type Agent interface {
	Step(now uint64) (next uint64, ok bool, err error)
	Done() bool
}

// Machine is a fully-wired simulated host.
type Machine struct {
	Spec   MachineSpec
	DRAM   *dram.Module
	MC     *memctrl.Controller
	Cache  *cache.Cache
	Kernel *hostos.Kernel
	Mapper addr.Mapper
	RNG    *sim.RNG

	daemons []Agent
	rec     *obs.Recorder
	aud     *check.Auditor

	// Flip accounting (attributed via the kernel's ownership tables).
	flips           uint64
	crossFlips      uint64
	mitigationFlips uint64
	byVictim        map[int]uint64
	byAggressor     map[int]uint64
	unattributed    uint64
}

// NewMachine builds and wires a machine from spec.
func NewMachine(spec MachineSpec) (*Machine, error) {
	if spec.Geometry == (dram.Geometry{}) {
		spec.Geometry = dram.DefaultGeometry()
	}
	if spec.Timing == (dram.Timing{}) {
		spec.Timing = dram.DDR4Timing()
	}
	if spec.Profile == (dram.DisturbanceProfile{}) {
		spec.Profile = dram.DDR4Old()
	}
	if spec.Cache == (cache.Config{}) {
		spec.Cache = cache.DefaultConfig()
	}

	mod, err := dram.NewModule(dram.Config{
		Geometry: spec.Geometry,
		Timing:   spec.Timing,
		Profile:  spec.Profile,
		TRR:      spec.TRR,
		ECC:      spec.ECC,
		Seed:     spec.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("core: build DRAM: %w", err)
	}

	var mapper addr.Mapper
	switch spec.Interleave {
	case InterleaveLine:
		mapper = addr.NewLineInterleave(spec.Geometry)
	case InterleaveRowRegion:
		mapper = addr.NewRowRegion(spec.Geometry)
	case InterleaveXOR:
		mapper, err = addr.NewXORInterleave(spec.Geometry)
		if err != nil {
			return nil, fmt.Errorf("core: build mapper: %w", err)
		}
	default:
		return nil, fmt.Errorf("core: unknown interleave kind %d", spec.Interleave)
	}

	var enforcer *memctrl.DomainEnforcer
	if spec.SubarrayGroups > 0 {
		part, err := addr.NewPartition(spec.Geometry, spec.SubarrayGroups)
		if err != nil {
			return nil, fmt.Errorf("core: subarray partition: %w", err)
		}
		iso, err := addr.NewSubarrayIsolated(mapper, part)
		if err != nil {
			return nil, fmt.Errorf("core: subarray-isolated mapper: %w", err)
		}
		mapper = iso
		if spec.EnforceDomains {
			enforcer = memctrl.NewDomainEnforcer(part)
		}
	}

	var graphene *memctrl.Graphene
	if spec.Graphene != nil {
		g := *spec.Graphene
		if g.Radius == 0 {
			g.Radius = spec.Profile.BlastRadius
		}
		if g.Threshold == 0 {
			// MAC/4 leaves margin for multiple aggressors summing at a victim.
			g.Threshold = spec.Profile.MAC / 4
		}
		graphene = memctrl.NewGraphene(spec.Geometry.Banks, g.Entries, g.Threshold, g.Radius)
	}
	var admission memctrl.AdmissionController
	if spec.RateLimit != nil {
		rl := *spec.RateLimit
		if rl.MaxActsPerWindow == 0 {
			// MAC/4 leaves margin for multiple aggressors summing at a victim.
			rl.MaxActsPerWindow = spec.Profile.MAC / 4
		}
		admission = memctrl.NewRateLimiter(spec.Geometry, rl.MaxActsPerWindow, spec.Timing.RefreshWindow, rl.WatchThreshold)
	}

	mc, err := memctrl.NewController(memctrl.Config{
		Mapper:     mapper,
		DRAM:       mod,
		OpenPage:   !spec.ClosedPage,
		PARAProb:   spec.PARAProb,
		PARARadius: spec.PARARadius,
		Graphene:   graphene,
		Admission:  admission,
		Enforcer:   enforcer,
		Seed:       spec.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("core: build controller: %w", err)
	}

	llc, err := cache.New(spec.Cache)
	if err != nil {
		return nil, fmt.Errorf("core: build cache: %w", err)
	}

	var alloc hostos.Allocator
	switch spec.Alloc {
	case AllocLinear:
		alloc = hostos.NewLinear(spec.Geometry)
	case AllocBankAware:
		n := spec.BankPartitions
		if n == 0 {
			n = 4
		}
		alloc, err = hostos.NewBankAware(mapper, n)
		if err != nil {
			return nil, fmt.Errorf("core: bank-aware allocator: %w", err)
		}
	case AllocGuardRow:
		r := spec.GuardRadius
		if r == 0 {
			r = spec.Profile.BlastRadius
		}
		alloc, err = hostos.NewGuardRow(mapper, r)
		if err != nil {
			return nil, fmt.Errorf("core: guard-row allocator: %w", err)
		}
	case AllocSubarrayAware:
		iso, ok := mapper.(*addr.SubarrayIsolated)
		if !ok {
			return nil, fmt.Errorf("core: subarray-aware allocation requires SubarrayGroups > 0")
		}
		alloc, err = hostos.NewSubarrayAware(iso)
		if err != nil {
			return nil, fmt.Errorf("core: subarray-aware allocator: %w", err)
		}
	default:
		return nil, fmt.Errorf("core: unknown allocator kind %d", spec.Alloc)
	}

	kern, err := hostos.NewKernel(mc, alloc)
	if err != nil {
		return nil, fmt.Errorf("core: build kernel: %w", err)
	}

	m := &Machine{
		Spec:        spec,
		DRAM:        mod,
		MC:          mc,
		Cache:       llc,
		Kernel:      kern,
		Mapper:      mapper,
		RNG:         sim.NewRNG(spec.Seed),
		byVictim:    make(map[int]uint64),
		byAggressor: make(map[int]uint64),
	}
	mod.SetFlipObserver(m.onFlip)
	if CheckingEnabled() {
		m.aud = check.New(check.Config{
			Geometry: spec.Geometry,
			Timing:   spec.Timing,
			Profile:  spec.Profile,
		})
		if enforcer != nil {
			m.aud.SetEnforcer(enforcer)
		}
		// Attach from cycle 0 so setup traffic, direct controller driving
		// and seeded disturbance are all in the shadow model.
		m.SetRecorder(nil)
	}
	return m, nil
}

// SetRecorder threads an event recorder through every component of the
// machine: DRAM commands, memory-controller scheduling, cache line
// locking (timestamped with the controller's clock), and kernel page
// migrations. Software defenses read the recorder lazily via Recorder(),
// so attaching it before or after BuildWithDefense both work. nil
// detaches. Recording is observer-only — simulation results are
// byte-identical with or without it.
func (m *Machine) SetRecorder(r *obs.Recorder) {
	m.rec = r
	eff := r
	if m.aud != nil {
		// The invariant auditor stays first in the chain whatever the
		// user attaches or detaches; it forwards to r (mask-filtered).
		eff = m.aud.Chain(r)
	}
	m.DRAM.SetRecorder(eff)
	m.MC.SetRecorder(eff)
	m.Kernel.SetRecorder(eff)
	m.Cache.SetRecorder(eff, m.MC.Now)
}

// Recorder returns the user-attached event recorder (nil when detached).
// The invariant auditor's internal chaining is not visible here.
func (m *Machine) Recorder() *obs.Recorder { return m.rec }

// Auditor returns the machine's invariant auditor, or nil when checking
// is disabled.
func (m *Machine) Auditor() *check.Auditor { return m.aud }

// CheckInvariants verifies the auditor's online invariants and the
// end-of-run shadow/state agreement. It is a no-op (nil) when checking
// is disabled. Run calls it automatically at the end of every run;
// experiments that drive the controller directly call it themselves.
func (m *Machine) CheckInvariants() error {
	if m.aud == nil {
		return nil
	}
	if err := m.aud.Verify(m.DRAM, m.MC); err != nil {
		return fmt.Errorf("core: invariant check: %w", err)
	}
	return nil
}

// onFlip attributes every bit flip to aggressor and victim domains. The
// aggressor domain is known exactly: the memory controller tags each
// activation with the requesting domain (ASID).
func (m *Machine) onFlip(ev dram.FlipEvent) {
	m.flips++
	if ev.ActorDomain < 0 {
		// Caused by an internal mitigation activation (e.g. an
		// ACT-based TRR cure) — the Half-Double relay (E10).
		m.mitigationFlips++
	}
	aggressor := ev.ActorDomain
	victim, cross := m.Kernel.ReportFlip(ev, aggressor)
	if victim < 0 {
		m.unattributed++
		return
	}
	m.byVictim[victim]++
	if aggressor >= 0 {
		m.byAggressor[aggressor]++
	}
	if cross && aggressor >= 0 {
		m.crossFlips++
	}
}

// Flips returns total observed bit flips.
func (m *Machine) Flips() uint64 { return m.flips }

// CrossDomainFlips returns flips whose victim domain differed from the
// (unique) aggressor domain — the cloud-provider disaster metric.
func (m *Machine) CrossDomainFlips() uint64 { return m.crossFlips }

// MitigationFlips returns flips caused by mitigation-internal
// activations rather than any domain's accesses (the Half-Double relay).
func (m *Machine) MitigationFlips() uint64 { return m.mitigationFlips }

// FlipsByVictim returns per-victim-domain flip counts.
func (m *Machine) FlipsByVictim() map[int]uint64 { return m.byVictim }

// AddDaemon registers a defense daemon agent included in every Run.
func (m *Machine) AddDaemon(a Agent) { m.daemons = append(m.daemons, a) }

// Daemons returns the registered daemon agents.
func (m *Machine) Daemons() []Agent { return m.daemons }

// Defense is a pluggable mitigation. Configure adjusts the hardware spec
// before the machine is built (BIOS options, in-MC/in-DRAM features);
// Attach installs software hooks (interrupt handlers, daemons) afterward.
type Defense interface {
	Name() string
	Class() Class
	Configure(spec *MachineSpec) error
	Attach(m *Machine) error
}

// BuildWithDefense constructs a machine with the defense applied
// (nil defense builds the spec unchanged).
func BuildWithDefense(spec MachineSpec, d Defense) (*Machine, error) {
	if d != nil {
		if err := d.Configure(&spec); err != nil {
			return nil, fmt.Errorf("core: configure defense %s: %w", d.Name(), err)
		}
	}
	m, err := NewMachine(spec)
	if err != nil {
		return nil, err
	}
	if d != nil {
		if err := d.Attach(m); err != nil {
			return nil, fmt.Errorf("core: attach defense %s: %w", d.Name(), err)
		}
	}
	return m, nil
}
