package core

import (
	"testing"

	"hammertime/internal/dram"
	"hammertime/internal/memctrl"
	"hammertime/internal/sim"
)

// stepRec is one scheduling decision: which agent stepped at which cycle.
type stepRec struct {
	idx int
	now uint64
}

// diffAgent is a scripted agent for the scheduler differential test: it
// performs a fixed number of steps, optionally issuing a memory request
// each step, and advances by a seeded-random stride (including stride 0,
// which exercises the scheduler's forward-progress clamp). Every Step
// call is appended to the shared log, so two runs can be compared
// decision by decision.
type diffAgent struct {
	idx       int
	mc        *memctrl.Controller
	rng       *sim.RNG
	remaining int
	line      uint64
	lineSpace uint64
	touchMC   bool
	log       *[]stepRec
}

func (a *diffAgent) Done() bool { return a.remaining == 0 }

func (a *diffAgent) Step(now uint64) (uint64, bool, error) {
	*a.log = append(*a.log, stepRec{a.idx, now})
	if a.remaining == 0 {
		return 0, false, nil
	}
	a.remaining--
	next := now
	if a.touchMC {
		res, err := a.mc.ServeRequest(memctrl.Request{Line: a.line % a.lineSpace, Domain: 0}, now)
		if err != nil {
			return 0, false, err
		}
		a.line = a.line*2654435761 + 12345
		next = res.Completion
	}
	next += uint64(a.rng.Intn(3000)) // 0 is possible: forward-progress clamp
	return next, true, nil
}

// schedVariant is one scheduler configuration under test.
type schedVariant struct {
	name    string
	linear  bool // retired linear-scan oracle vs the event heap
	burst   bool // controller refresh fast-forward enabled
	audited bool // invariant auditor attached (forces the per-REF path)
}

func runSchedVariant(t *testing.T, spec MachineSpec, v schedVariant, horizon uint64) ([]stepRec, RunResult) {
	t.Helper()
	if !v.audited {
		SetCheckingOff()
		defer SetChecking(false)
	}
	linearSchedulerForTest = v.linear
	defer func() { linearSchedulerForTest = false }()

	m, err := NewMachine(spec)
	if err != nil {
		t.Fatalf("%s: NewMachine: %v", v.name, err)
	}
	if v.audited && m.Auditor() == nil {
		t.Fatalf("%s: expected an auditor", v.name)
	}
	if !v.audited && m.Auditor() != nil {
		t.Fatalf("%s: expected no auditor", v.name)
	}
	m.MC.SetRefreshBurst(v.burst)

	g := spec.Geometry
	lineSpace := uint64(g.Banks) * uint64(g.RowsPerBank()) * uint64(g.ColumnsPerRow)
	var log []stepRec
	scriptRNG := sim.NewRNG(spec.Seed ^ 0x9e3779b97f4a7c15)
	var agents []Agent
	for i := 0; i < 8; i++ {
		agents = append(agents, &diffAgent{
			idx:       i,
			mc:        m.MC,
			rng:       sim.NewRNG(uint64(i)*0x2545f4914f6cdd1d + spec.Seed),
			remaining: 50 + scriptRNG.Intn(300),
			line:      scriptRNG.Uint64(),
			lineSpace: lineSpace,
			touchMC:   i%3 != 2, // two of every three agents hit memory
			log:       &log,
		})
	}
	res, err := m.Run(agents, horizon)
	if err != nil {
		t.Fatalf("%s: Run: %v", v.name, err)
	}
	return log, res
}

// TestHeapSchedulerMatchesLinear pins the event-heap scheduler and the
// controller's refresh fast-forward against the retired linear scan:
// across machine configurations (plain, in-DRAM TRR, BlockHammer rate
// limiting) every scheduler variant must make the identical sequence of
// (agent, cycle) scheduling decisions and produce an identical RunResult
// — heap vs linear, burst vs per-REF refresh, audited vs unobserved.
func TestHeapSchedulerMatchesLinear(t *testing.T) {
	trr := dram.DefaultTRR()
	specs := []struct {
		name string
		spec func() MachineSpec
	}{
		{"plain", func() MachineSpec {
			s := DefaultSpec()
			s.Seed = 7
			return s
		}},
		{"trr", func() MachineSpec {
			s := DefaultSpec()
			s.Seed = 11
			s.TRR = &trr
			return s
		}},
		{"ratelimit", func() MachineSpec {
			s := DefaultSpec()
			s.Seed = 13
			s.RateLimit = &RateLimitSpec{MaxActsPerWindow: 2048}
			return s
		}},
	}
	variants := []schedVariant{
		{name: "linear/per-ref/audited", linear: true, burst: false, audited: true},
		{name: "linear/burst/audited", linear: true, burst: true, audited: true},
		{name: "heap/per-ref/audited", linear: false, burst: false, audited: true},
		{name: "heap/burst/audited", linear: false, burst: true, audited: true},
		{name: "linear/burst/unobserved", linear: true, burst: true, audited: false},
		{name: "heap/burst/unobserved", linear: false, burst: true, audited: false},
	}
	const horizon = 2_000_000

	for _, sc := range specs {
		t.Run(sc.name, func(t *testing.T) {
			refLog, refRes := runSchedVariant(t, sc.spec(), variants[0], horizon)
			if len(refLog) == 0 {
				t.Fatal("oracle made no scheduling decisions")
			}
			refStats := refRes.Stats.String()
			for _, v := range variants[1:] {
				log, res := runSchedVariant(t, sc.spec(), v, horizon)
				if len(log) != len(refLog) {
					t.Fatalf("%s: %d scheduling decisions, oracle made %d", v.name, len(log), len(refLog))
				}
				for i := range log {
					if log[i] != refLog[i] {
						t.Fatalf("%s: decision %d = %+v, oracle %+v", v.name, i, log[i], refLog[i])
					}
				}
				if res.Flips != refRes.Flips || res.CrossFlips != refRes.CrossFlips {
					t.Fatalf("%s: flips %d/%d, oracle %d/%d", v.name, res.Flips, res.CrossFlips, refRes.Flips, refRes.CrossFlips)
				}
				for i := range res.Steps {
					if res.Steps[i] != refRes.Steps[i] {
						t.Fatalf("%s: agent %d steps %d, oracle %d", v.name, i, res.Steps[i], refRes.Steps[i])
					}
				}
				if s := res.Stats.String(); s != refStats {
					t.Fatalf("%s: stats diverge from oracle:\n--- variant\n%s\n--- oracle\n%s", v.name, s, refStats)
				}
			}
		})
	}
}

// TestHeapRemoveInitiallyDone pins that agents that are already done at
// run start never step and are reported with zero steps, matching the
// linear scheduler's active[] gating.
func TestHeapRemoveInitiallyDone(t *testing.T) {
	m, err := NewMachine(DefaultSpec())
	if err != nil {
		t.Fatal(err)
	}
	var log []stepRec
	done := &diffAgent{idx: 0, remaining: 0, log: &log}
	live := &diffAgent{idx: 1, remaining: 3, rng: sim.NewRNG(1), log: &log}
	res, err := m.Run([]Agent{done, live}, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps[0] != 0 || res.Steps[1] != 3 {
		t.Fatalf("steps = %v, want [0 3]", res.Steps)
	}
	for _, r := range log {
		if r.idx == 0 {
			t.Fatalf("initially-done agent stepped at cycle %d", r.now)
		}
	}
}
