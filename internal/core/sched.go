package core

// agentHeap is an indexed binary min-heap over agent readiness times,
// ordered by (next, index): among agents ready at the same cycle the
// lowest index wins, which makes the heap's minimum byte-identical to the
// linear scan it replaced ("earliest-ready agent steps next, index order
// breaks ties"). The heap holds agent indices; pos maps each agent index
// back to its slot so update/remove are O(log n) without a search.
type agentHeap struct {
	next []uint64 // per agent: readiness cycle (indexed by agent index)
	heap []int32  // heap slots -> agent index
	pos  []int32  // agent index -> heap slot, -1 when not in the heap
}

// newAgentHeap builds a heap over n agents, all ready at cycle 0. The
// initial layout heap[i] = i is already valid: every key is (0, index)
// and parents hold lower indices than their children.
func newAgentHeap(n int) *agentHeap {
	h := &agentHeap{
		next: make([]uint64, n),
		heap: make([]int32, n),
		pos:  make([]int32, n),
	}
	for i := 0; i < n; i++ {
		h.heap[i] = int32(i)
		h.pos[i] = int32(i)
	}
	return h
}

// less orders agents a and b by (next, index).
func (h *agentHeap) less(a, b int32) bool {
	if h.next[a] != h.next[b] {
		return h.next[a] < h.next[b]
	}
	return a < b
}

// empty reports whether any agent remains scheduled.
func (h *agentHeap) empty() bool { return len(h.heap) == 0 }

// min returns the index of the earliest-ready agent (lowest index among
// ties). Callers must check empty() first.
func (h *agentHeap) min() int { return int(h.heap[0]) }

// minNext returns the readiness cycle of the minimum agent.
func (h *agentHeap) minNext() uint64 { return h.next[h.heap[0]] }

// update moves agent idx to readiness cycle next and restores heap order.
func (h *agentHeap) update(idx int, next uint64) {
	h.next[idx] = next
	h.fix(h.pos[idx])
}

// remove deschedules agent idx (it finished).
func (h *agentHeap) remove(idx int) {
	slot := h.pos[idx]
	last := int32(len(h.heap) - 1)
	moved := h.heap[last]
	h.heap[slot] = moved
	h.pos[moved] = slot
	h.heap = h.heap[:last]
	h.pos[idx] = -1
	if slot < last {
		h.fix(slot)
	}
}

// fix restores the heap property for the agent at slot, sifting whichever
// direction is needed.
func (h *agentHeap) fix(slot int32) {
	if !h.up(slot) {
		h.down(slot)
	}
}

func (h *agentHeap) up(slot int32) bool {
	moved := false
	for slot > 0 {
		parent := (slot - 1) / 2
		if !h.less(h.heap[slot], h.heap[parent]) {
			break
		}
		h.swap(slot, parent)
		slot = parent
		moved = true
	}
	return moved
}

func (h *agentHeap) down(slot int32) {
	n := int32(len(h.heap))
	for {
		kid := 2*slot + 1
		if kid >= n {
			return
		}
		if r := kid + 1; r < n && h.less(h.heap[r], h.heap[kid]) {
			kid = r
		}
		if !h.less(h.heap[kid], h.heap[slot]) {
			return
		}
		h.swap(slot, kid)
		slot = kid
	}
}

func (h *agentHeap) swap(a, b int32) {
	h.heap[a], h.heap[b] = h.heap[b], h.heap[a]
	h.pos[h.heap[a]] = a
	h.pos[h.heap[b]] = b
}
