package core

import (
	"sync/atomic"
	"testing"
)

var checking atomic.Bool

// SetChecking enables or disables the online invariant auditor
// (internal/check) for machines built afterwards — the -check CLI flag.
// Machines already built are unaffected.
func SetChecking(on bool) { checking.Store(on) }

// CheckingEnabled reports whether newly-built machines get an auditor
// attached: enabled explicitly via SetChecking, and always under
// `go test` so every test run audits itself.
func CheckingEnabled() bool { return checking.Load() || testing.Testing() }
