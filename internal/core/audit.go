package core

import (
	"sync/atomic"
	"testing"
)

// Checking is tri-state: forced on (the -check CLI flag), forced off
// (benchmarks measuring the unaudited fast paths), or automatic — on
// under `go test`, off otherwise.
const (
	checkAuto int32 = iota
	checkOn
	checkOff
)

var checkMode atomic.Int32

// SetChecking enables (true) the online invariant auditor
// (internal/check) for machines built afterwards — the -check CLI flag.
// SetChecking(false) restores the automatic default: on under `go test`,
// off otherwise. Machines already built are unaffected.
func SetChecking(on bool) {
	if on {
		checkMode.Store(checkOn)
	} else {
		checkMode.Store(checkAuto)
	}
}

// SetCheckingOff forces the auditor off for machines built afterwards,
// even under `go test`. Benchmarks that measure the unaudited fast paths
// (the refresh fast-forward, the zero-allocation ACT path) use it, since
// an attached auditor both costs time and disables the bulk refresh
// path by design. Restore the default with SetChecking(false).
func SetCheckingOff() { checkMode.Store(checkOff) }

// CheckingEnabled reports whether newly-built machines get an auditor
// attached: forced via SetChecking/SetCheckingOff, otherwise on exactly
// under `go test` so every test run audits itself.
func CheckingEnabled() bool {
	switch checkMode.Load() {
	case checkOn:
		return true
	case checkOff:
		return false
	default:
		return testing.Testing()
	}
}
