package core

import (
	"fmt"

	"hammertime/internal/sim"
)

// RunResult summarizes one simulation run.
type RunResult struct {
	// Horizon is the requested simulation length in cycles.
	Horizon uint64
	// Steps counts completed actions per agent (same order as passed,
	// daemons appended).
	Steps []uint64
	// Flips and CrossFlips are the machine's cumulative counts at the end
	// of the run.
	Flips      uint64
	CrossFlips uint64
	// Stats merges the DRAM, controller and kernel stats registries.
	Stats sim.Stats
}

// Throughput returns agent i's completed steps per kilocycle.
func (r RunResult) Throughput(i int) float64 {
	if r.Horizon == 0 {
		return 0
	}
	return float64(r.Steps[i]) * 1000 / float64(r.Horizon)
}

// Run simulates the agents (plus the machine's daemons) until every agent
// finishes or the horizon is reached. Scheduling is deterministic:
// the earliest-ready agent steps next, with index order breaking ties.
func (m *Machine) Run(agents []Agent, horizon uint64) (RunResult, error) {
	if horizon == 0 {
		return RunResult{}, fmt.Errorf("core: run needs a horizon > 0")
	}
	all := append(append([]Agent(nil), agents...), m.daemons...)
	next := make([]uint64, len(all))
	active := make([]bool, len(all))
	steps := make([]uint64, len(all))
	for i := range all {
		active[i] = !all[i].Done()
	}
	for {
		// Pick the earliest-ready active agent.
		idx := -1
		for i := range all {
			if active[i] && (idx < 0 || next[i] < next[idx]) {
				idx = i
			}
		}
		if idx < 0 || next[idx] >= horizon {
			break
		}
		n, ok, err := all[idx].Step(next[idx])
		if err != nil {
			return RunResult{}, fmt.Errorf("core: agent %d: %w", idx, err)
		}
		if !ok {
			active[idx] = false
			continue
		}
		steps[idx]++
		if n <= next[idx] {
			n = next[idx] + 1 // guarantee forward progress
		}
		next[idx] = n
	}
	m.MC.AdvanceTo(horizon)
	if err := m.CheckInvariants(); err != nil {
		return RunResult{}, err
	}

	res := RunResult{
		Horizon:    horizon,
		Steps:      steps,
		Flips:      m.Flips(),
		CrossFlips: m.CrossDomainFlips(),
	}
	res.Stats.Merge(m.DRAM.Stats())
	res.Stats.Merge(m.MC.Stats())
	res.Stats.Merge(m.Kernel.Stats())
	return res, nil
}
