package core

import (
	"context"
	"errors"
	"fmt"

	"hammertime/internal/sim"
	"hammertime/internal/telemetry"
)

// ErrCancelled marks a run stopped by its context rather than by reaching
// the horizon or an agent error. Callers match it with errors.Is; the
// wrapped chain also carries the context's cause (context.Canceled or
// context.DeadlineExceeded), so errors.Is(err, context.Canceled) works
// too.
var ErrCancelled = errors.New("core: run cancelled")

// RunResult summarizes one simulation run.
type RunResult struct {
	// Horizon is the requested simulation length in cycles.
	Horizon uint64
	// Steps counts completed actions per agent (same order as passed,
	// daemons appended).
	Steps []uint64
	// Flips and CrossFlips are the machine's cumulative counts at the end
	// of the run.
	Flips      uint64
	CrossFlips uint64
	// Stats merges the DRAM, controller and kernel stats registries.
	Stats sim.Stats
}

// Throughput returns agent i's completed steps per kilocycle.
func (r RunResult) Throughput(i int) float64 {
	if r.Horizon == 0 {
		return 0
	}
	return float64(r.Steps[i]) * 1000 / float64(r.Horizon)
}

// linearSchedulerForTest routes RunCtx through the retired linear-scan
// scheduler instead of the event heap. It exists solely as the oracle for
// the differential test (TestHeapSchedulerMatchesLinear): the two
// schedulers must produce identical step sequences and results.
var linearSchedulerForTest bool

// Run simulates the agents (plus the machine's daemons) until every agent
// finishes or the horizon is reached. Scheduling is deterministic:
// the earliest-ready agent steps next, with index order breaking ties.
func (m *Machine) Run(agents []Agent, horizon uint64) (RunResult, error) {
	return m.RunCtx(context.Background(), agents, horizon)
}

// RunCtx is Run under cooperative cancellation: the scheduler polls ctx
// at a bounded interval (sim.DefaultCancelInterval steps; the controller's
// refresh catch-up polls it too) and, when the context is cancelled,
// tears the run down instead of abandoning it — the partial result is
// returned, observability sinks are flushed, and the machine is left in
// an auditor-consistent state (every issued command is fully applied;
// CheckInvariants passes on the cancelled machine). The returned error
// wraps both ErrCancelled and the context's cause.
//
// With a never-cancellable context (context.Background) the gate is free
// and the run is byte-identical to Run.
func (m *Machine) RunCtx(ctx context.Context, agents []Agent, horizon uint64) (RunResult, error) {
	if horizon == 0 {
		return RunResult{}, fmt.Errorf("core: run needs a horizon > 0")
	}
	gate := sim.NewCanceler(ctx, 0)
	if gate != nil {
		// Long idle jumps (the final AdvanceTo, a refresh catch-up across
		// many tREFI epochs) honor the same gate inside the controller.
		m.MC.SetCanceler(gate)
		defer m.MC.SetCanceler(nil)
	}
	// One span per run (per-step spans would swamp the tracer and the
	// scheduler); without a telemetry scope in ctx this is a nil span and
	// the run path is untouched.
	ctx, span := telemetry.StartSpan(ctx, "machine.run")
	span.SetAttrs(telemetry.Int("agents", int64(len(agents))), telemetry.Uint("horizon", horizon))
	all := append(append([]Agent(nil), agents...), m.daemons...)
	steps := make([]uint64, len(all))
	var res RunResult
	var err error
	if linearSchedulerForTest {
		res, err = m.runLinear(ctx, gate, all, steps, horizon)
	} else {
		res, err = m.runHeap(ctx, gate, all, steps, horizon)
	}
	span.SetCycles(0, m.MC.Now())
	span.EndErr(err)
	return res, err
}

// runHeap is the event-driven scheduler: agents sit in an indexed
// min-heap keyed (next, index), so picking the next agent is O(log n)
// instead of a linear rescan, and the (next, index) order reproduces the
// linear scan's tie-break (lowest index among the earliest) exactly.
//
// Between agent steps the scheduler consults the controller's event
// horizon: when nothing observes the machine (no recorder, no auditor)
// and the next agent wakes beyond pending controller events, the idle gap
// is fast-forwarded in one AdvanceTo — the controller collapses the
// refresh schedule in closed form. With an observer attached the advance
// is skipped; time then only moves through the agents' own requests, so
// every recorded event keeps the exact cycle stamp the step-by-step
// schedule would give it.
func (m *Machine) runHeap(ctx context.Context, gate *sim.Canceler, all []Agent, steps []uint64, horizon uint64) (RunResult, error) {
	h := newAgentHeap(len(all))
	for i := range all {
		if all[i].Done() {
			h.remove(i)
		}
	}
	unobserved := m.rec == nil && m.aud == nil
	for !h.empty() {
		if err := gate.Check(); err != nil {
			return m.cancelRun(horizon, steps, err)
		}
		idx := h.min()
		t := h.minNext()
		if t >= horizon {
			break
		}
		if unobserved && t > m.MC.Now() && m.MC.NextEvent() < t {
			m.MC.AdvanceTo(t)
		}
		n, ok, err := all[idx].Step(t)
		if err != nil {
			return m.failAgent(idx, err)
		}
		if !ok {
			h.remove(idx)
			continue
		}
		steps[idx]++
		if n <= t {
			n = t + 1 // guarantee forward progress
		}
		h.update(idx, n)
	}
	return m.finishRun(ctx, gate, horizon, steps)
}

// runLinear is the retired per-step linear-scan scheduler, kept verbatim
// as the differential-test oracle (see linearSchedulerForTest).
func (m *Machine) runLinear(ctx context.Context, gate *sim.Canceler, all []Agent, steps []uint64, horizon uint64) (RunResult, error) {
	next := make([]uint64, len(all))
	active := make([]bool, len(all))
	for i := range all {
		active[i] = !all[i].Done()
	}
	for {
		if err := gate.Check(); err != nil {
			return m.cancelRun(horizon, steps, err)
		}
		// Pick the earliest-ready active agent.
		idx := -1
		for i := range all {
			if active[i] && (idx < 0 || next[i] < next[idx]) {
				idx = i
			}
		}
		if idx < 0 || next[idx] >= horizon {
			break
		}
		n, ok, err := all[idx].Step(next[idx])
		if err != nil {
			return m.failAgent(idx, err)
		}
		if !ok {
			active[idx] = false
			continue
		}
		steps[idx]++
		if n <= next[idx] {
			n = next[idx] + 1 // guarantee forward progress
		}
		next[idx] = n
	}
	return m.finishRun(ctx, gate, horizon, steps)
}

// finishRun is the common run tail: burn the remaining idle time to the
// horizon, detect a cancellation that cut that advance short, and verify
// invariants before collecting the result.
func (m *Machine) finishRun(ctx context.Context, gate *sim.Canceler, horizon uint64, steps []uint64) (RunResult, error) {
	_, dspan := telemetry.StartSpan(ctx, "machine.drain")
	dspan.SetCycles(m.MC.Now(), horizon)
	m.MC.AdvanceTo(horizon)
	dspan.End()
	if gate.Tripped() {
		// The final idle catch-up was cut short; report the cancellation
		// rather than an apparently-complete run whose refresh schedule
		// stops early.
		return m.cancelRun(horizon, steps, context.Cause(ctx))
	}
	if err := m.CheckInvariants(); err != nil {
		return RunResult{}, err
	}
	return m.collectResult(horizon, steps), nil
}

// failAgent wraps an agent step error, flushing observability sinks first
// so a trace of the failing run ends cleanly at the failure point instead
// of being torn mid-buffer (mirroring cancelRun's teardown).
func (m *Machine) failAgent(idx int, stepErr error) (RunResult, error) {
	err := fmt.Errorf("core: agent %d: %w", idx, stepErr)
	if ferr := m.rec.Flush(); ferr != nil {
		err = fmt.Errorf("%w (flush on failure: %v)", err, ferr)
	}
	return RunResult{}, err
}

// cancelRun is the cooperative-cancellation teardown: the machine stops
// where it is (agent boundaries and chunked refresh catch-up are the only
// cancellation points, so every issued command is fully applied), the
// invariant auditor must still accept the state, observability sinks are
// flushed so traces end cleanly, and the partial result rides along with
// the error.
func (m *Machine) cancelRun(horizon uint64, steps []uint64, cause error) (RunResult, error) {
	if err := m.CheckInvariants(); err != nil {
		return RunResult{}, fmt.Errorf("core: cancelled run left inconsistent state: %w", err)
	}
	res := m.collectResult(horizon, steps)
	if err := m.rec.Flush(); err != nil {
		return res, fmt.Errorf("%w (flush on cancel: %v): %v", ErrCancelled, err, cause)
	}
	if cause == nil {
		cause = context.Canceled
	}
	return res, fmt.Errorf("%w at cycle %d: %w", ErrCancelled, m.MC.Now(), cause)
}

func (m *Machine) collectResult(horizon uint64, steps []uint64) RunResult {
	res := RunResult{
		Horizon:    horizon,
		Steps:      steps,
		Flips:      m.Flips(),
		CrossFlips: m.CrossDomainFlips(),
	}
	res.Stats.Merge(m.DRAM.Stats())
	res.Stats.Merge(m.MC.Stats())
	res.Stats.Merge(m.Kernel.Stats())
	return res
}
