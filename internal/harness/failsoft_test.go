package harness

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"hammertime/internal/obs"
	"hammertime/internal/report"
)

// resetRobustness restores the package-wide policy/observer/checkpoint
// state after a test that installs any of them.
func resetRobustness(t *testing.T) {
	t.Helper()
	t.Cleanup(func() {
		SetPolicy(Policy{})
		SetGridObserver(nil)
		SetCheckpoint(nil)
	})
}

func TestRunGridContainsPanics(t *testing.T) {
	resetRobustness(t)
	for _, workers := range []int{1, 4} {
		run := runGrid(context.Background(), GridSpec{ID: "t-panic", Workers: workers}, 8, func(_ context.Context, i int) (int, error) {
			if i == 3 {
				panic("boom")
			}
			return i * i, nil
		})
		err := run.Err()
		if err == nil {
			t.Fatalf("workers=%d: panic did not surface as an error", workers)
		}
		var ce *CellError
		if !errors.As(err, &ce) {
			t.Fatalf("workers=%d: error %T is not a *CellError", workers, err)
		}
		if !ce.Panicked || ce.Index != 3 || ce.Grid != "t-panic" {
			t.Errorf("workers=%d: cell error = %+v", workers, ce)
		}
		if !strings.Contains(ce.Stack, "failsoft_test") {
			t.Errorf("workers=%d: stack trace misses the panicking frame:\n%s", workers, ce.Stack)
		}
		if !strings.Contains(err.Error(), "panicked") {
			t.Errorf("workers=%d: error text %q does not say panicked", workers, err)
		}
	}
}

func TestRunGridStrictReportsLowestIndexFailure(t *testing.T) {
	resetRobustness(t)
	for _, workers := range []int{1, 4} {
		run := runGrid(context.Background(), GridSpec{ID: "t-low", Workers: workers}, 16, func(_ context.Context, i int) (int, error) {
			if i == 5 || i == 11 {
				return 0, fmt.Errorf("cell %d broke", i)
			}
			return i, nil
		})
		var ce *CellError
		if err := run.Err(); !errors.As(err, &ce) {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		// Serial strict runs stop at the first failure; parallel ones
		// report the lowest-index failure among the attempted cells.
		if workers == 1 && ce.Index != 5 {
			t.Errorf("serial run reported cell %d, want 5", ce.Index)
		}
		if ce.Index != 5 && ce.Index != 11 {
			t.Errorf("workers=%d: reported cell %d, want a failing cell", workers, ce.Index)
		}
	}
}

func TestRunGridFailSoftCompletesGrid(t *testing.T) {
	resetRobustness(t)
	SetPolicy(Policy{FailSoft: true})
	for _, workers := range []int{1, 4} {
		var calls atomic.Int64
		run := runGrid(context.Background(), GridSpec{ID: "t-soft", Workers: workers}, 6, func(_ context.Context, i int) (int, error) {
			calls.Add(1)
			switch i {
			case 2:
				return 0, errors.New("flaky dependency")
			case 5:
				panic("late crash")
			}
			return 10 * i, nil
		})
		if err := run.Err(); err != nil {
			t.Fatalf("workers=%d: fail-soft run reported %v", workers, err)
		}
		if got := calls.Load(); got != 6 {
			t.Errorf("workers=%d: %d cells ran, want all 6", workers, got)
		}
		fails := run.Failures()
		if len(fails) != 2 || fails[0].Index != 2 || fails[1].Index != 5 {
			t.Fatalf("workers=%d: failures = %+v", workers, fails)
		}
		if !fails[1].Panicked {
			t.Errorf("workers=%d: cell 5 not marked panicked", workers)
		}
		for i := 0; i < 6; i++ {
			cell := run.Cell(i, func(v int) string { return fmt.Sprint(v) })
			switch i {
			case 2, 5:
				if !report.IsErrCell(cell) {
					t.Errorf("workers=%d: failed cell %d rendered %q", workers, i, cell)
				}
			default:
				if cell != fmt.Sprint(10*i) {
					t.Errorf("workers=%d: cell %d rendered %q", workers, i, cell)
				}
			}
		}
		if got := run.Cell(2, func(v int) string { return "x" }); got != report.ErrCell("flaky dependency") {
			t.Errorf("workers=%d: ERR cell = %q", workers, got)
		}
	}
}

func TestRunGridRetriesFlakyCell(t *testing.T) {
	resetRobustness(t)
	SetPolicy(Policy{Retries: 2})
	ring := obs.NewRing(64)
	SetGridObserver(obs.NewRecorder(ring))
	var attempts atomic.Int64
	run := runGrid(context.Background(), GridSpec{ID: "t-retry", Workers: 1}, 3, func(_ context.Context, i int) (int, error) {
		if i == 1 {
			if attempts.Add(1) < 3 {
				return 0, errors.New("transient")
			}
		}
		return i + 100, nil
	})
	if err := run.Err(); err != nil {
		t.Fatalf("flaky cell did not recover under retries: %v", err)
	}
	if got := attempts.Load(); got != 3 {
		t.Errorf("cell 1 ran %d times, want 3 (1 + 2 retries)", got)
	}
	if run.Results[1] != 101 {
		t.Errorf("recovered result = %d, want 101", run.Results[1])
	}
	if got := ring.Count(obs.KindCellRetry); got != 2 {
		t.Errorf("recorded %d cell-retry events, want 2", got)
	}
	if got := ring.Count(obs.KindCellFail); got != 0 {
		t.Errorf("recorded %d cell-fail events for a recovered cell, want 0", got)
	}
}

func TestRunGridRetryExhaustionEmitsFailure(t *testing.T) {
	resetRobustness(t)
	SetPolicy(Policy{Retries: 1})
	ring := obs.NewRing(64)
	SetGridObserver(obs.NewRecorder(ring))
	run := runGrid(context.Background(), GridSpec{ID: "t-exhaust", Workers: 1}, 2, func(_ context.Context, i int) (int, error) {
		if i == 0 {
			return 0, errors.New("permanent")
		}
		return i, nil
	})
	var ce *CellError
	if err := run.Err(); !errors.As(err, &ce) {
		t.Fatalf("%v", err)
	}
	if ce.Attempts != 2 {
		t.Errorf("attempts = %d, want 2", ce.Attempts)
	}
	if got := ring.Count(obs.KindCellRetry); got != 1 {
		t.Errorf("cell-retry events = %d, want 1", got)
	}
	if got := ring.Count(obs.KindCellFail); got != 1 {
		t.Errorf("cell-fail events = %d, want 1", got)
	}
}

func TestRunGridCellTimeout(t *testing.T) {
	resetRobustness(t)
	// Retries must not apply to a timed-out cell: its abandoned attempt
	// may still be running and a re-run could race with it.
	SetPolicy(Policy{FailSoft: true, Retries: 3, CellTimeout: 10 * time.Millisecond})
	var attempts atomic.Int64
	run := runGrid(context.Background(), GridSpec{ID: "t-slow", Workers: 1}, 2, func(_ context.Context, i int) (int, error) {
		if i == 0 {
			attempts.Add(1)
			time.Sleep(200 * time.Millisecond)
		}
		return i + 1, nil
	})
	if err := run.Err(); err != nil {
		t.Fatalf("fail-soft timeout run reported %v", err)
	}
	ce := run.Failed(0)
	if ce == nil || !ce.TimedOut {
		t.Fatalf("slow cell not reported as timed out: %+v", ce)
	}
	if ce.Attempts != 1 {
		t.Errorf("timed-out cell was retried (%d attempts)", ce.Attempts)
	}
	if got := attempts.Load(); got != 1 {
		t.Errorf("slow cell ran %d times, want 1", got)
	}
	if ce.Reason() != "timeout" {
		t.Errorf("reason = %q, want timeout", ce.Reason())
	}
	if run.Failed(1) != nil || run.Results[1] != 2 {
		t.Errorf("healthy cell affected: failed=%v result=%d", run.Failed(1), run.Results[1])
	}
}

func TestRunGridFailpointInjection(t *testing.T) {
	resetRobustness(t)
	t.Setenv(failCellEnv, "t-inj:1:panic")
	run := runGrid(context.Background(), GridSpec{ID: "t-inj", Workers: 1}, 3, func(_ context.Context, i int) (int, error) { return i, nil })
	var ce *CellError
	if err := run.Err(); !errors.As(err, &ce) || !ce.Panicked || ce.Index != 1 {
		t.Fatalf("injected panic not reported: %v", run.Err())
	}
	// Other grids are untouched by the failpoint.
	other := runGrid(context.Background(), GridSpec{ID: "t-other", Workers: 1}, 3, func(_ context.Context, i int) (int, error) { return i, nil })
	if err := other.Err(); err != nil {
		t.Fatalf("failpoint leaked into another grid: %v", err)
	}
	// "once" mode fails only the first attempt, so one retry recovers.
	SetPolicy(Policy{Retries: 1})
	t.Setenv(failCellEnv, "t-inj:0:once")
	again := runGrid(context.Background(), GridSpec{ID: "t-inj", Workers: 1}, 2, func(_ context.Context, i int) (int, error) { return i + 7, nil })
	if err := again.Err(); err != nil {
		t.Fatalf("transient injected failure did not recover: %v", err)
	}
	if again.Results[0] != 7 {
		t.Errorf("recovered result = %d, want 7", again.Results[0])
	}
}

func TestCellErrorReason(t *testing.T) {
	long := strings.Repeat("x", 80)
	cases := []struct {
		ce   CellError
		want string
	}{
		{CellError{Panicked: true, Err: errors.New("panic: boom")}, "panic"},
		{CellError{TimedOut: true, Err: errors.New("deadline")}, "timeout"},
		{CellError{Err: errors.New("multi\n  line\tmessage")}, "multi line message"},
		{CellError{Err: errors.New(long)}, long[:47] + "…"},
	}
	for _, c := range cases {
		if got := c.ce.Reason(); got != c.want {
			t.Errorf("Reason(%+v) = %q, want %q", c.ce, got, c.want)
		}
	}
}

func TestGuardedSingleRun(t *testing.T) {
	resetRobustness(t)
	v, ce := Guarded("t-one", func() (int, error) { return 42, nil })
	if ce != nil || v != 42 {
		t.Fatalf("Guarded success = (%d, %v)", v, ce)
	}
	_, ce = Guarded("t-one", func() (int, error) { panic("solo crash") })
	if ce == nil || !ce.Panicked {
		t.Fatalf("Guarded did not contain the panic: %+v", ce)
	}
	var err error = ce
	if !strings.Contains(err.Error(), "solo crash") {
		t.Errorf("cause lost: %v", err)
	}
}
