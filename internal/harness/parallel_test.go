package harness

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
)

// TestRunCellsCoversAllIndices checks every cell runs exactly once and the
// pool never exceeds its worker bound.
func TestRunCellsCoversAllIndices(t *testing.T) {
	const n, workers = 97, 4
	var ran [n]int32
	var inFlight, peak int32
	err := runCells(workers, n, func(i int) error {
		cur := atomic.AddInt32(&inFlight, 1)
		for {
			p := atomic.LoadInt32(&peak)
			if cur <= p || atomic.CompareAndSwapInt32(&peak, p, cur) {
				break
			}
		}
		atomic.AddInt32(&ran[i], 1)
		atomic.AddInt32(&inFlight, -1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range ran {
		if ran[i] != 1 {
			t.Fatalf("cell %d ran %d times", i, ran[i])
		}
	}
	if peak > workers {
		t.Fatalf("concurrency peak %d exceeds %d workers", peak, workers)
	}
}

// TestRunCellsPropagatesError checks an error stops the pool and the
// lowest-index error among the attempted cells is returned.
func TestRunCellsPropagatesError(t *testing.T) {
	boom := errors.New("boom")
	for _, workers := range []int{1, 3} {
		var attempted int32
		err := runCells(workers, 50, func(i int) error {
			atomic.AddInt32(&attempted, 1)
			if i >= 5 {
				return boom
			}
			return nil
		})
		if !errors.Is(err, boom) {
			t.Fatalf("workers=%d: err = %v, want %v", workers, err, boom)
		}
		if attempted == 50 {
			t.Errorf("workers=%d: pool did not stop early", workers)
		}
	}
}

// TestRunCellsResolvesWorkers pins the worker-count resolution order:
// per-call request beats the package default beats GOMAXPROCS.
func TestRunCellsResolvesWorkers(t *testing.T) {
	SetParallelism(3)
	defer SetParallelism(0)
	if got := Parallelism(); got != 3 {
		t.Fatalf("Parallelism() = %d after SetParallelism(3)", got)
	}
	if got := resolveWorkers(7); got != 7 {
		t.Fatalf("resolveWorkers(7) = %d, want the per-call request", got)
	}
	SetParallelism(0)
	if got := Parallelism(); got < 1 {
		t.Fatalf("default Parallelism() = %d, want >= 1", got)
	}
}

// TestE1MatrixParallelDeterminism is the RNG-forking contract guard: the
// E1 grid must render byte-identically no matter how many workers execute
// it, because every cell's randomness is a pure function of the cell, not
// of scheduling order.
func TestE1MatrixParallelDeterminism(t *testing.T) {
	defenses := []string{"none", "trr", "swrefresh", "anvil"}
	run := func(workers int) string {
		tb, err := E1Matrix(context.Background(), defenses, 8, AttackOpts{Horizon: 600_000, Parallelism: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return tb.String()
	}
	serial := run(1)
	for _, workers := range []int{2, 4, 7} {
		if got := run(workers); got != serial {
			t.Errorf("workers=%d table differs from serial:\n--- serial ---\n%s\n--- parallel ---\n%s",
				workers, serial, got)
		}
	}
}

// TestE2ParallelDeterminism covers a grid whose cells draw per-machine
// forked RNG streams (the random workload) and whose table has a
// cross-cell baseline column computed after assembly.
func TestE2ParallelDeterminism(t *testing.T) {
	run := func(workers int) string {
		SetParallelism(workers)
		defer SetParallelism(0)
		tb, _, err := E2Interleaving(context.Background(), 300_000)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return tb.String()
	}
	serial := run(1)
	for _, workers := range []int{3, 8} {
		if got := run(workers); got != serial {
			t.Errorf("workers=%d table differs from serial:\n--- serial ---\n%s\n--- parallel ---\n%s",
				workers, serial, got)
		}
	}
}
