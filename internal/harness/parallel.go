package harness

import (
	"context"
	"runtime"
	"sync/atomic"
)

// The experiment grids of E1-E10 are embarrassingly parallel: every
// (defense, attack, sweep-point) cell builds its own machine from a fixed
// seed, runs it, and yields one result. The pool below fans cells out
// across a bounded set of worker goroutines while keeping the output
// byte-identical to a serial run:
//
//   - each cell constructs everything it mutates (machine, defense,
//     workloads) inside the cell function — no state is shared between
//     in-flight cells;
//   - per-cell randomness comes from RNGs that are a pure function of the
//     cell's seed (sim.RNG.Fork / ForkAt), never from a stream consumed in
//     scheduling order;
//   - results land in a slice indexed by cell, and tables are assembled
//     from that slice in cell order after the pool drains.
//
// Fault containment, retry/deadline policy, fail-soft error recording and
// checkpoint/resume live in failsoft.go and checkpoint.go; the pool here
// only resolves worker counts.

// defaultWorkers is the package-wide worker count used when a caller does
// not override it: 0 means runtime.GOMAXPROCS(0).
var defaultWorkers atomic.Int64

// SetParallelism sets the package-wide worker count for experiment grids:
// n <= 0 restores the default (runtime.GOMAXPROCS(0)), 1 forces serial
// execution. cmd/hammerbench wires its -parallel flag here.
func SetParallelism(n int) {
	if n < 0 {
		n = 0
	}
	defaultWorkers.Store(int64(n))
}

// Parallelism returns the package-wide worker count (resolved, >= 1).
func Parallelism() int { return resolveWorkers(0) }

// resolveWorkers maps a per-call request to a concrete worker count:
// requested > 0 wins, then the package default, then GOMAXPROCS.
func resolveWorkers(requested int) int {
	if requested > 0 {
		return requested
	}
	if n := int(defaultWorkers.Load()); n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// runCells executes fn(0..n-1), each call exactly once, on at most
// `workers` goroutines (resolved via resolveWorkers). Cell functions must
// be independent: they may only write state they own plus their own index
// of a pre-sized results slice. Execution follows the installed Policy
// (see failsoft.go): panics are contained into *CellError, and in the
// default strict mode an error stops the pool and the lowest-index error
// among the attempted cells is returned — the same error a serial run
// would hit first among those attempted. Grids whose cells produce
// results (and that want checkpointing and ERR() annotation) use runGrid
// directly; runCells remains for side-effect-only grids.
func runCells(workers, n int, fn func(i int) error) error {
	run := runGrid(context.Background(), GridSpec{Workers: workers}, n, func(_ context.Context, i int) (struct{}, error) {
		return struct{}{}, fn(i)
	})
	return run.Err()
}
