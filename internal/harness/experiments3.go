package harness

import (
	"context"
	"fmt"

	"hammertime/internal/core"
	"hammertime/internal/cpu"
	"hammertime/internal/memctrl"
	"hammertime/internal/report"
)

// E7Method names one way software can try to refresh a victim row (§4.3).
type E7Method string

const (
	// E7RefreshInstr is the paper's proposed host-privileged instruction.
	E7RefreshInstr E7Method = "refresh-instruction"
	// E7RefNeighbors is the optional DRAM-side REF_NEIGHBORS command.
	E7RefNeighbors E7Method = "ref-neighbors-cmd"
	// E7LoadPath is today's convoluted path: CLFLUSH + fence + load and
	// hope the load activates (and thereby recharges) the row.
	E7LoadPath E7Method = "clflush+load"
)

// E7Result is one measured cell of the refresh-path comparison.
type E7Result struct {
	Method E7Method
	// BankState describes the row buffer when the refresh was attempted.
	BankState string
	// Cycles is the end-to-end latency of the refresh attempt.
	Cycles uint64
	// ACTs and BusTransfers are the DRAM command/bus cost.
	ACTs         uint64
	BusTransfers uint64
	// Refreshed reports whether the victim row's disturbance was in fact
	// cleared — the precision half of the §4.3 argument.
	Refreshed bool
}

// E7RefreshPath compares the three refresh mechanisms in both bank states.
// The load path silently fails when the victim row is already open (a
// row-buffer hit recharges nothing the software can rely on and issues no
// ACT), and always costs a bus transfer and cache fill; the refresh
// instruction is unconditional and data-free.
func E7RefreshPath(ctx context.Context) (*report.Table, []E7Result, error) {
	tb := report.NewTable("E7: targeted-refresh mechanisms (§4.3)",
		"method", "bank state", "cycles", "ACT cmds", "bus transfers", "victim refreshed")
	methods := []E7Method{E7RefreshInstr, E7RefNeighbors, E7LoadPath}
	run := runGrid(ctx, GridSpec{ID: "e7", Config: "v1"},
		2*len(methods), func(ctx context.Context, i int) (E7Result, error) {
			_ = ctx // E7 drives the controller directly; cells are short
			method, victimOpen := methods[i/2], i%2 == 1
			r, err := runE7(method, victimOpen)
			if err != nil {
				return E7Result{}, fmt.Errorf("harness: E7 %s: %w", method, err)
			}
			return r, nil
		})
	if err := run.Err(); err != nil {
		return nil, nil, err
	}
	results := run.Results
	for i, r := range results {
		if ce := run.Failed(i); ce != nil {
			state := "other row open"
			if i%2 == 1 {
				state = "victim row open"
			}
			errCell := report.ErrCellN(ce.Reason(), ce.Attempts)
			tb.AddRow(string(methods[i/2]), state, errCell, errCell, errCell, "-")
			continue
		}
		tb.AddRow(string(r.Method), r.BankState, fmt.Sprint(r.Cycles),
			fmt.Sprint(r.ACTs), fmt.Sprint(r.BusTransfers), fmt.Sprint(r.Refreshed))
	}
	return tb, results, nil
}

func runE7(method E7Method, victimOpen bool) (E7Result, error) {
	spec := core.DefaultSpec()
	m, err := core.NewMachine(spec)
	if err != nil {
		return E7Result{}, err
	}
	tenants, err := SetupTenants(m, 1, 32)
	if err != nil {
		return E7Result{}, err
	}
	domain := tenants[0].Domain.ID
	g := m.Mapper.Geometry()
	stripe := uint64(g.Banks * g.ColumnsPerRow)

	// Disturb victim row 1 of bank 0 by alternating aggressor rows 0 and
	// 2 (lines 0 and 2*stripe) below the MAC.
	aggA, aggB := uint64(0), 2*stripe
	victimLine := stripe // row 1, bank 0, column 0
	now := uint64(0)
	for i := 0; i < 400; i++ {
		line := aggA
		if i%2 == 1 {
			line = aggB
		}
		res, err := m.MC.ServeRequest(memctrl.Request{Line: line, Domain: domain}, now)
		if err != nil {
			return E7Result{}, err
		}
		now = res.Completion
	}
	victimDDR := m.Mapper.Map(victimLine)
	if m.DRAM.Disturbance(victimDDR.Bank, victimDDR.Row) == 0 {
		return E7Result{}, fmt.Errorf("harness: E7 setup produced no disturbance")
	}

	// Arrange the bank state: open the victim row itself, or leave the
	// last aggressor row open.
	state := "other row open"
	if victimOpen {
		// Read the victim line once; this activates (and recharges) row 1,
		// so re-disturb it afterwards while keeping it open... impossible —
		// activating another row would close it. Instead: open the victim
		// row first, then disturb cannot run. So emulate the §4.3 hazard
		// directly: open the victim row, then re-charge its disturbance via
		// neighbor ACTs in a DIFFERENT subarray? Disturbance only comes from
		// neighbors in the same bank, which would steal the row buffer.
		//
		// The physically consistent scenario: the victim row was opened by
		// a third party AFTER accumulating disturbance — which is exactly an
		// ACT and recharges it. The dangerous case on real hardware is a
		// row buffer hit on a row whose restore was interrupted; our model
		// conservatively represents it by re-seeding disturbance while the
		// row is open (the memory controller does not expose buffer state
		// to software, so software cannot tell the difference — §4.3).
		res, err := m.MC.ServeRequest(memctrl.Request{Line: victimLine, Domain: domain}, now)
		if err != nil {
			return E7Result{}, err
		}
		now = res.Completion
		m.DRAM.SeedDisturbance(victimDDR.Bank, victimDDR.Row, 400)
		state = "victim row open"
	}

	actsBefore := m.MC.Stats().Counter("mc.acts")
	reqBefore := m.MC.Stats().Counter("mc.requests")
	var start, completion uint64
	switch method {
	case E7RefreshInstr:
		res, err := m.MC.RefreshInstruction(victimLine, true, 0, now)
		if err != nil {
			return E7Result{}, err
		}
		start, completion = now, res.Completion
	case E7RefNeighbors:
		// Issued against the aggressor row; DRAM refreshes its victims.
		res, err := m.MC.RefreshNeighborsCmd(aggA, spec.Profile.BlastRadius, 0, now)
		if err != nil {
			return E7Result{}, err
		}
		start, completion = now, res.Completion
	case E7LoadPath:
		prog := cpu.ProgramFunc(func() (cpu.Access, bool) {
			return cpu.Access{Line: victimLine, Flush: true}, true
		})
		c, err := cpu.NewCore(0, 0, prog, m.Cache, m.MC)
		if err != nil {
			return E7Result{}, err
		}
		next, _, err := c.Step(now)
		if err != nil {
			return E7Result{}, err
		}
		start, completion = now, next
	default:
		return E7Result{}, fmt.Errorf("harness: unknown E7 method %q", method)
	}

	// E7 drives the controller directly (no m.Run), so verify the
	// invariant auditor's shadow state explicitly before reporting.
	if err := m.CheckInvariants(); err != nil {
		return E7Result{}, err
	}
	return E7Result{
		Method:       method,
		BankState:    state,
		Cycles:       completion - start,
		ACTs:         uint64(m.MC.Stats().Counter("mc.acts") - actsBefore),
		BusTransfers: uint64(m.MC.Stats().Counter("mc.requests") - reqBefore),
		Refreshed:    m.DRAM.Disturbance(victimDDR.Bank, victimDDR.Row) == 0,
	}, nil
}
