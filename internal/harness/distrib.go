package harness

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"sync"

	"hammertime/internal/telemetry"
)

// Distribution hooks: the two halves of the coordinator/worker split
// (internal/cluster) hang off the grid runner through a context, so the
// experiment code itself — E1Matrix and friends — never knows whether
// its cells were computed in-process, fetched from a content-addressed
// cache, or simulated on another node.
//
//   - A GridDelegate (coordinator side) intercepts a whole grid: runGrid
//     hands it (spec, n) and restores every cell from the JSON the
//     delegate returns, exactly the way checkpoint resume restores cells
//     — so a distributed run is byte-identical to a serial one for the
//     same reason a resumed run is.
//
//   - A CellCapture (worker side) narrows a grid to an assigned subset
//     of cells and records each computed result as JSON keyed by
//     CellKey. Grids other than the capture's target are skipped
//     entirely: the worker simulates only what it was assigned.

// GridDelegate computes a whole grid out-of-process. RunGrid must return
// one JSON-encoded result per cell index in [0, n) — each the exact
// marshal of the cell value the local cell function would have produced
// — or an error; partial maps fail the grid. Implementations live in
// internal/cluster (the coordinator); the harness only restores.
type GridDelegate interface {
	RunGrid(ctx context.Context, spec GridSpec, n int) (map[int]json.RawMessage, error)
}

type gridDelegateKey struct{}

// WithGridDelegate returns ctx carrying the delegate consulted by
// identified grids (anonymous grids always run locally). A nil delegate
// returns ctx unchanged.
func WithGridDelegate(ctx context.Context, d GridDelegate) context.Context {
	if d == nil {
		return ctx
	}
	return context.WithValue(ctx, gridDelegateKey{}, d)
}

func gridDelegateFrom(ctx context.Context) GridDelegate {
	d, _ := ctx.Value(gridDelegateKey{}).(GridDelegate)
	return d
}

// WithoutGridDelegate shadows any delegate carried by ctx, forcing grids
// back to in-process execution. The coordinator's local fallback runs
// cells under this so it never re-enters itself.
func WithoutGridDelegate(ctx context.Context) context.Context {
	return context.WithValue(ctx, gridDelegateKey{}, GridDelegate(nil))
}

// CellCapture restricts a run to one grid's assigned cells and collects
// their results as (CellKey, JSON) pairs — the worker half of the
// coordinator/worker protocol. Construct with NewCellCapture, install
// with WithCellCapture, run the experiment, then read Results.
type CellCapture struct {
	grid  string
	cells map[int]struct{}

	mu      sync.Mutex
	out     map[int]CapturedCell
	config  string
	reached bool
	err     error
}

// CapturedCell is one captured result: its content-address key and the
// exact JSON the cell value marshalled to.
type CapturedCell struct {
	Key    string
	Result json.RawMessage
}

// NewCellCapture builds a capture for the given cells of grid.
func NewCellCapture(grid string, cells []int) *CellCapture {
	c := &CellCapture{
		grid:  grid,
		cells: make(map[int]struct{}, len(cells)),
		out:   make(map[int]CapturedCell, len(cells)),
	}
	for _, i := range cells {
		c.cells[i] = struct{}{}
	}
	return c
}

type cellCaptureKey struct{}

// WithCellCapture returns ctx carrying the capture. A nil capture
// returns ctx unchanged.
func WithCellCapture(ctx context.Context, c *CellCapture) context.Context {
	if c == nil {
		return ctx
	}
	return context.WithValue(ctx, cellCaptureKey{}, c)
}

func cellCaptureFrom(ctx context.Context) *CellCapture {
	c, _ := ctx.Value(cellCaptureKey{}).(*CellCapture)
	return c
}

// indices returns the capture's assigned cells that exist in a grid of
// n cells, sorted ascending.
func (c *CellCapture) indices(n int) []int {
	out := make([]int, 0, len(c.cells))
	for i := range c.cells {
		if i >= 0 && i < n {
			out = append(out, i)
		}
	}
	sort.Ints(out)
	return out
}

// arm records that the target grid was reached and its config string —
// the worker compares it against the coordinator's to detect skew.
func (c *CellCapture) arm(config string) {
	c.mu.Lock()
	c.reached = true
	c.config = config
	c.mu.Unlock()
}

// record captures one computed cell.
func (c *CellCapture) record(spec GridSpec, i int, v any) {
	raw, err := json.Marshal(v)
	if err != nil {
		c.mu.Lock()
		if c.err == nil {
			c.err = fmt.Errorf("harness: capture %s cell %d: %w", spec.ID, i, err)
		}
		c.mu.Unlock()
		return
	}
	c.mu.Lock()
	c.out[i] = CapturedCell{Key: CellKey(spec, i), Result: raw}
	c.mu.Unlock()
}

// Reached reports whether the target grid ran at all.
func (c *CellCapture) Reached() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.reached
}

// Config returns the target grid's config string as observed locally.
func (c *CellCapture) Config() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.config
}

// Err returns the first capture failure (a cell value that would not
// marshal), if any.
func (c *CellCapture) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// Results returns the captured cells. The map is a copy.
func (c *CellCapture) Results() map[int]CapturedCell {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[int]CapturedCell, len(c.out))
	for i, v := range c.out {
		out[i] = v
	}
	return out
}

// runGridDelegated is the coordinator path of runGrid: the delegate
// produces every cell's JSON (from its cache or from workers) and the
// run restores them the way checkpoint resume does. Strict by
// construction: a delegate error fails the grid — partial distributed
// grids are re-dispatched inside the delegate, never surfaced as
// half-filled tables.
func runGridDelegated[T any](ctx context.Context, spec GridSpec, n int, del GridDelegate) *GridRun[T] {
	run := &GridRun[T]{
		spec:     spec,
		Results:  make([]T, n),
		strict:   true,
		failures: make(map[int]*CellError),
	}
	gname := gridName(spec.ID)
	ctx, gspan := telemetry.StartSpan(ctx, "grid:"+gname)
	gspan.SetAttrs(
		telemetry.String("grid", gname),
		telemetry.Int("cells", int64(n)),
		telemetry.String("mode", "distributed"),
	)
	defer func() { gspan.EndErr(run.Err()) }()
	prog := newGridProgress(telemetry.HubFrom(ctx), gname, n)

	fail := func(err error) *GridRun[T] {
		run.cancelled = fmt.Errorf("harness: %s distributed: %w", gname, err)
		return run
	}
	results, err := del.RunGrid(ctx, spec, n)
	if err != nil {
		return fail(err)
	}
	for i := 0; i < n; i++ {
		raw, ok := results[i]
		if !ok {
			return fail(fmt.Errorf("delegate returned no result for cell %d", i))
		}
		if err := json.Unmarshal(raw, &run.Results[i]); err != nil {
			return fail(fmt.Errorf("cell %d result: %w", i, err))
		}
		prog.cellDone(i, 0, 0, true, "")
	}
	run.Restored = n
	return run
}
