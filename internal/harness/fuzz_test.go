package harness

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzCheckpointDecode feeds arbitrary bytes to the checkpoint loader:
// it must never panic, must trim any garbage tail, and a second open of
// what it left behind must load exactly the same records.
func FuzzCheckpointDecode(f *testing.F) {
	f.Add([]byte(`{"key":"9f86d081deadbeef","grid":"e1","cell":0,"result":3}` + "\n"))
	f.Add([]byte(`{"key":"a","grid":"e1","cell":1,"result":{"x":1}}` + "\n" + `{"key":"b","gr`))
	f.Add([]byte("not json at all\n"))
	f.Add([]byte{0xff, 0xfe, 0x00, '\n'})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "ck.jsonl")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		ck, err := OpenCheckpoint(path)
		if err != nil {
			t.Fatalf("open must tolerate arbitrary bytes, got: %v", err)
		}
		n := ck.Loaded()
		if err := ck.Close(); err != nil {
			t.Fatalf("close after load: %v", err)
		}
		ck2, err := OpenCheckpoint(path)
		if err != nil {
			t.Fatalf("reopen of trimmed file: %v", err)
		}
		if got := ck2.Loaded(); got != n {
			t.Fatalf("reopen loaded %d records, first open loaded %d", got, n)
		}
		ck2.Close()
	})
}
