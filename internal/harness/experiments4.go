package harness

import (
	"context"
	"fmt"

	"hammertime/internal/addr"
	"hammertime/internal/attack"
	"hammertime/internal/core"
	"hammertime/internal/cpu"
	"hammertime/internal/defense"
	"hammertime/internal/dram"
	"hammertime/internal/ecc"
	"hammertime/internal/report"
)

// ECCOutcome classifies the cross-domain damage of one attack run on an
// ECC-protected module: every word of every victim-owned line that
// absorbed flips, bucketed by what the SECDED decode would deliver.
type ECCOutcome struct {
	RawFlips uint64
	// Word-level outcomes over cross-domain victim lines:
	Corrected uint64 // single flips repaired on read
	Detected  uint64 // uncorrectable: machine check (DoS)
	Silent    uint64 // multi-flip words that decode wrong — the bypass
}

// scanECC classifies flipped lines belonging to domains other than the
// attacker.
func scanECC(m *core.Machine, attacker int) (ECCOutcome, error) {
	out := ECCOutcome{RawFlips: m.Flips()}
	for _, la := range m.DRAM.FlippedLines() {
		line := m.Mapper.Unmap(addr.DDR{Bank: la.Bank, Row: la.Row, Column: la.Column})
		owner, ok := m.Kernel.OwnerOfLine(line)
		if !ok || owner == attacker {
			continue
		}
		classes, err := m.DRAM.ClassifyLine(la)
		if err != nil {
			return ECCOutcome{}, err
		}
		for _, c := range classes {
			switch c {
			case ecc.CorrectedOK:
				out.Corrected++
			case ecc.DetectedError:
				out.Detected++
			case ecc.SilentCorruption:
				out.Silent++
			}
		}
	}
	return out, nil
}

// E9ECC runs double-sided attacks of increasing intensity against an
// ECC-protected LPDDR4 module and tabulates the Cojocar et al. outcome
// hierarchy: light attacks are fully corrected, heavier ones trip
// machine checks (DoS), and sustained hammering produces words whose
// multi-bit flips silently bypass SECDED.
func E9ECC(ctx context.Context, horizons []uint64) (*report.Table, []ECCOutcome, error) {
	if len(horizons) == 0 {
		horizons = []uint64{2_000_000, 6_000_000, 16_000_000}
	}
	tb := report.NewTable("E9: SECDED ECC outcomes under double-sided attack (LPDDR4)",
		"config", "horizon (cycles)", "raw flips", "words corrected", "words detected (DoS)", "words silent-corrupt")
	run := runGrid(ctx, GridSpec{ID: "e9", Config: fmt.Sprintf("horizons=%v", horizons)},
		2*len(horizons), func(ctx context.Context, i int) (ECCOutcome, error) {
			return runE9(ctx, horizons[i/2], i%2 == 1)
		})
	if err := run.Err(); err != nil {
		return nil, nil, err
	}
	outs := run.Results
	for i, out := range outs {
		label := "ecc"
		if i%2 == 1 {
			label = "ecc+scrub"
		}
		if ce := run.Failed(i); ce != nil {
			errCell := report.ErrCellN(ce.Reason(), ce.Attempts)
			tb.AddRowf(label, horizons[i/2], errCell, errCell, errCell, errCell)
			continue
		}
		tb.AddRowf(label, horizons[i/2], out.RawFlips, out.Corrected, out.Detected, out.Silent)
	}
	return tb, outs, nil
}

func runE9(ctx context.Context, h uint64, scrub bool) (ECCOutcome, error) {
	{
		spec := E1Spec()
		var d core.Defense = defense.ECC{}
		if scrub {
			// A fast patrol (full pass ~8M cycles) so the scrubber gets
			// several passes within the attack window.
			d = &defense.ECCScrub{Interval: 25_000, LinesPerPass: 100}
		}
		m, err := core.BuildWithDefense(spec, d)
		if err != nil {
			return ECCOutcome{}, err
		}
		tenants, err := SetupTenants(m, 3, 170)
		if err != nil {
			return ECCOutcome{}, err
		}
		// Victims fill their memory with real data so corruption is
		// measured against known ground truth.
		if err := fillTenantData(m, tenants[1:]); err != nil {
			return ECCOutcome{}, err
		}
		attacker := tenants[0].Domain.ID
		plan, err := attack.PlanDoubleSided(m.Kernel, m.Mapper, attacker, 1, spec.Profile.BlastRadius)
		if err != nil {
			return ECCOutcome{}, err
		}
		prog, err := attack.HammerVA(m.Kernel, attacker, plan, 1<<30, true)
		if err != nil {
			return ECCOutcome{}, err
		}
		c, err := cpu.NewCore(0, attacker, prog, m.Cache, m.MC)
		if err != nil {
			return ECCOutcome{}, err
		}
		if _, err := m.RunCtx(ctx, []core.Agent{c}, h); err != nil {
			return ECCOutcome{}, err
		}
		return scanECC(m, attacker)
	}
}

// fillTenantData writes a recognizable pattern into every line of the
// given tenants (ground truth for ECC classification).
func fillTenantData(m *core.Machine, tenants []Tenant) error {
	g := m.Mapper.Geometry()
	buf := make([]byte, g.LineBytes)
	for i := range buf {
		buf[i] = byte(0x5a ^ i)
	}
	for _, t := range tenants {
		for _, line := range t.Lines {
			d := m.Mapper.Map(line)
			if err := m.DRAM.WriteLine(dram.LineAddr{Bank: d.Bank, Row: d.Row, Column: d.Column}, buf); err != nil {
				return err
			}
		}
	}
	return nil
}

// E10HalfDouble contrasts the two ways an in-DRAM mitigation can refresh
// victims — internal recharge vs. real activations — on a radius-1
// module. Activate-based cures relay the attacker's pressure one row
// further: flips appear beyond the module's native blast radius, caused
// by the mitigation itself (Google's Half-Double). The experiment uses a
// hypothetical dense radius-1 part so the relay converges in simulation
// time; the mechanism, not the MAC, is the subject.
func E10HalfDouble(ctx context.Context, horizon uint64) (*report.Table, error) {
	if horizon == 0 {
		horizon = 24_000_000
	}
	prof := dram.DisturbanceProfile{
		Name: "dense-r1", MAC: 1000, BlastRadius: 1, DistanceDecay: 0.5, FlipProb: 0.01,
	}
	tb := report.NewTable("E10: Half-Double relay through mitigation activations (radius-1 module)",
		"TRR cure mechanism", "mitigations", "flips within radius", "flips beyond radius (relayed)")
	type e10Row struct {
		Mitigations uint64 `json:"mitigations"`
		Within      uint64 `json:"within"`
		Relayed     uint64 `json:"relayed"`
	}
	run := runGrid(ctx, GridSpec{ID: "e10", Config: fmt.Sprintf("horizon=%d", horizon)},
		2, func(ctx context.Context, i int) (e10Row, error) {
			cureACT := i == 1
			spec := core.DefaultSpec()
			spec.Profile = prof
			trr := dram.DefaultTRR()
			trr.CureWithACT = cureACT
			spec.TRR = &trr
			m, err := core.NewMachine(spec)
			if err != nil {
				return e10Row{}, err
			}
			tenants, err := SetupTenants(m, 3, 170)
			if err != nil {
				return e10Row{}, err
			}
			attacker := tenants[0].Domain.ID
			plan, err := attack.PlanSingleSided(m.Kernel, m.Mapper, attacker, 1, 1)
			if err != nil {
				return e10Row{}, err
			}
			prog, err := attack.HammerVA(m.Kernel, attacker, plan, 1<<30, true)
			if err != nil {
				return e10Row{}, err
			}
			c, err := cpu.NewCore(0, attacker, prog, m.Cache, m.MC)
			if err != nil {
				return e10Row{}, err
			}
			if _, err := m.RunCtx(ctx, []core.Agent{c}, horizon); err != nil {
				return e10Row{}, err
			}
			return e10Row{
				Mitigations: m.DRAM.TRRStats(),
				Within:      m.Flips() - m.MitigationFlips(),
				Relayed:     m.MitigationFlips(),
			}, nil
		})
	if err := run.Err(); err != nil {
		return nil, err
	}
	for i, r := range run.Results {
		mode := "internal recharge"
		if i == 1 {
			mode = "activate-based"
		}
		if ce := run.Failed(i); ce != nil {
			errCell := report.ErrCellN(ce.Reason(), ce.Attempts)
			tb.AddRow(mode, errCell, errCell, errCell)
			continue
		}
		tb.AddRowf(mode, r.Mitigations, r.Within, r.Relayed)
	}
	return tb, nil
}
