package harness

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"sync"
	"sync/atomic"

	"hammertime/internal/core"
	"hammertime/internal/sim"
)

// Checkpoint persists completed grid cells as JSON lines so an
// interrupted run resumes instead of recomputing. One record per cell:
//
//	{"key":"9f86d081deadbeef","grid":"e1","cell":17,"result":<json>}
//
// key is an FNV-64a hash of (grid ID, grid config, DeterminismEpoch,
// machine seed, cell index): a run with a different horizon, sweep, seed
// or RNG epoch never restores a stale cell. Records are appended and
// flushed as cells complete, so a SIGKILL loses at most the in-flight
// cells; the loader tolerates (and trims) a torn final line. Results are
// exact JSON round trips of the cell values, so a resumed run's tables
// are byte-identical to an uninterrupted run's.
type Checkpoint struct {
	mu     sync.Mutex
	f      *os.File
	done   map[string]json.RawMessage
	err    error // sticky: first write/flush failure
	loaded int
	added  int
}

// ckRecord is the wire form of one checkpointed cell. Grid and Cell are
// informational (debugging a checkpoint by eye); lookups go by Key.
type ckRecord struct {
	Key    string          `json:"key"`
	Grid   string          `json:"grid"`
	Cell   int             `json:"cell"`
	Result json.RawMessage `json:"result"`
}

// OpenCheckpoint opens (creating if needed) a checkpoint file, loads its
// valid records, and positions it for appending. A torn or corrupt tail
// — the signature of a killed run — is truncated away so subsequent
// appends produce a clean file.
func OpenCheckpoint(path string) (*Checkpoint, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	ck := &Checkpoint{f: f, done: make(map[string]json.RawMessage)}
	r := bufio.NewReader(f)
	var offset int64
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			// EOF with a leftover fragment means a write died mid-line
			// (a record's line and '\n' are written in one call): the
			// fragment is debris of the interrupted run, trimmed below.
			break
		}
		var rec ckRecord
		if json.Unmarshal([]byte(line), &rec) != nil || rec.Key == "" {
			// First corrupt line: stop loading and truncate it away so
			// appends produce a clean file.
			break
		}
		offset += int64(len(line))
		ck.done[rec.Key] = rec.Result
		ck.loaded++
	}
	if err := f.Truncate(offset); err != nil {
		f.Close()
		return nil, fmt.Errorf("checkpoint: trim torn tail: %w", err)
	}
	if _, err := f.Seek(offset, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	return ck, nil
}

// Loaded returns how many completed cells the file held at open.
func (c *Checkpoint) Loaded() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.loaded
}

// Added returns how many cells this run appended.
func (c *Checkpoint) Added() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.added
}

// Err returns the first write error encountered while recording cells.
// A checkpoint that cannot be written must fail the run loudly — a
// silently truncated checkpoint would resume wrong.
func (c *Checkpoint) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// Close closes the file, reporting the sticky write error first.
func (c *Checkpoint) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	first := c.err
	if c.f != nil {
		if err := c.f.Close(); err != nil && first == nil {
			first = err
		}
		c.f = nil
	}
	return first
}

// lookup returns the recorded result for key, if any.
func (c *Checkpoint) lookup(key string) (json.RawMessage, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	raw, ok := c.done[key]
	return raw, ok
}

// record appends one completed cell. Write errors are sticky and
// surfaced by Err/Close; the in-memory map is updated regardless so the
// current run stays consistent.
func (c *Checkpoint) record(grid string, cell int, key string, result any) {
	raw, err := json.Marshal(result)
	if err != nil {
		c.fail(fmt.Errorf("checkpoint: %s cell %d: %w", grid, cell, err))
		return
	}
	line, err := json.Marshal(ckRecord{Key: key, Grid: grid, Cell: cell, Result: raw})
	if err != nil {
		c.fail(fmt.Errorf("checkpoint: %s cell %d: %w", grid, cell, err))
		return
	}
	line = append(line, '\n')
	c.mu.Lock()
	defer c.mu.Unlock()
	c.done[key] = raw
	c.added++
	if c.f == nil || c.err != nil {
		return
	}
	if _, err := c.f.Write(line); err != nil {
		c.err = fmt.Errorf("checkpoint: %s cell %d: %w", grid, cell, err)
	}
}

func (c *Checkpoint) fail(err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err == nil {
		c.err = err
	}
}

// activeCk holds the checkpoint consulted by runGrid (nil = none).
var activeCk atomic.Pointer[Checkpoint]

// ckContextKey carries a per-run checkpoint through a context.
type ckContextKey struct{}

// WithCheckpoint returns ctx carrying a checkpoint that identified grids
// consult and append to, taking precedence over the package-wide one
// installed with SetCheckpoint. The package-wide slot is per-process —
// right for a CLI run, wrong for a daemon simulating many jobs at once —
// so hammerd threads each job's own checkpoint here and concurrent jobs
// never share (or clobber) resume state. A nil checkpoint returns ctx
// unchanged.
func WithCheckpoint(ctx context.Context, ck *Checkpoint) context.Context {
	if ck == nil {
		return ctx
	}
	return context.WithValue(ctx, ckContextKey{}, ck)
}

// checkpointFrom returns the context-scoped checkpoint, or nil.
func checkpointFrom(ctx context.Context) *Checkpoint {
	ck, _ := ctx.Value(ckContextKey{}).(*Checkpoint)
	return ck
}

// SetCheckpoint installs (or, with nil, removes) the checkpoint that
// identified grids consult and append to. cmd/hammerbench wires its
// -resume flag here.
func SetCheckpoint(ck *Checkpoint) {
	if ck == nil {
		activeCk.Store(nil)
		return
	}
	activeCk.Store(ck)
}

func activeCheckpoint() *Checkpoint { return activeCk.Load() }

// CellKey hashes everything that determines a cell's result — the FNV-64a
// of (grid ID, grid config, DeterminismEpoch, machine seed, cell index),
// rendered as 16 lowercase hex digits. The machine seed enters via
// core.DefaultSpec (experiments build their machines from it); grids that
// vary the seed must fold it into Config.
//
// The key is a public contract: besides checkpoint resume it is the
// shard and content-address of the distributed cluster (internal/cluster)
// — the coordinator partitions cells by it, the result cache stores
// under it, and workers echo it back so a config/epoch/seed skew between
// nodes is detected instead of silently merging mismatched results.
// TestCellKeyGolden pins the exact hash; changing the format or any
// input invalidates every checkpoint and cache on disk.
func CellKey(spec GridSpec, cell int) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%s|epoch=%d|seed=%d|cell=%d",
		spec.ID, spec.Config, sim.DeterminismEpoch, core.DefaultSpec().Seed, cell)
	return fmt.Sprintf("%016x", h.Sum64())
}
