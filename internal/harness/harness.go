// Package harness builds and runs the canonical experiment scenarios
// (E1-E8 in DESIGN.md) shared by cmd/hammerbench, the benchmark suite and
// the examples: multi-tenant machines under attack, benign performance
// runs, and the primitive micro-comparisons of §4.2/§4.3.
package harness

import (
	"context"
	"fmt"
	"io"

	"hammertime/internal/attack"
	"hammertime/internal/core"
	"hammertime/internal/cpu"
	"hammertime/internal/dma"
	"hammertime/internal/hostos"
	"hammertime/internal/obs"
	"hammertime/internal/telemetry"
	"hammertime/internal/trace"
	"hammertime/internal/workload"
)

// Tenant is one trust domain with its allocated memory.
type Tenant struct {
	Domain *hostos.Domain
	// Lines are the physical line indices of the tenant's pages at
	// allocation time (migration may move them later).
	Lines []uint64
}

// SetupTenants creates n tenant domains and allocates pagesEach pages to
// each, interleaving allocations round-robin across tenants — the
// allocation churn of a real multi-tenant host, which is what gives
// attackers cross-domain row adjacency under a policy-free allocator.
func SetupTenants(m *core.Machine, n, pagesEach int) ([]Tenant, error) {
	if n <= 0 || pagesEach <= 0 {
		return nil, fmt.Errorf("harness: need positive tenants (%d) and pages (%d)", n, pagesEach)
	}
	tenants := make([]Tenant, n)
	for i := range tenants {
		tenants[i].Domain = m.Kernel.CreateDomain(fmt.Sprintf("tenant-%d", i+1), false, false)
	}
	lpp := hostos.LinesPerPage(m.Mapper.Geometry())
	for p := 0; p < pagesEach; p++ {
		for i := range tenants {
			frames, err := m.Kernel.AllocPages(tenants[i].Domain.ID, uint64(p), 1)
			if err != nil {
				return nil, fmt.Errorf("harness: tenant %d page %d: %w", i+1, p, err)
			}
			for l := uint64(0); l < lpp; l++ {
				tenants[i].Lines = append(tenants[i].Lines, frames[0]*lpp+l)
			}
		}
	}
	return tenants, nil
}

// AttackOpts parametrizes RunAttack.
type AttackOpts struct {
	// Horizon is the simulation length in cycles (0 means 4_000_000).
	Horizon uint64
	// Tenants is the number of domains (0 means 3); tenant 1 attacks.
	Tenants int
	// PagesPerTenant is each domain's allocation (0 means 170; enough
	// rows for well-spaced many-sided patterns).
	PagesPerTenant int
	// BenignThink is the benign cores' inter-access think time
	// (0 means 200 cycles).
	BenignThink uint64
	// VictimIntegrity marks non-attacker tenants as integrity-checked
	// enclaves (§4.4): flips lock the machine up instead of silently
	// corrupting.
	VictimIntegrity bool
	// AttackTrace, when non-nil, records the attacker's access stream as
	// JSON lines for later replay or offline analysis.
	AttackTrace io.Writer
	// ReplayAttack, when non-nil, replaces attack planning entirely: the
	// recorded events are replayed verbatim as the attacker's stream.
	ReplayAttack []trace.Event
	// Parallelism is the worker count used by grid experiments that fan
	// independent cells out over these opts (E1): 0 uses the package
	// default (SetParallelism / GOMAXPROCS), 1 forces serial. Parallel
	// and serial runs produce byte-identical tables.
	Parallelism int
	// Defenses narrows the defense lineup of the experiments that take
	// one (E1 via the dispatcher): nil means the full E1Defenses lineup.
	// Part of the wire protocol of the distributed cluster — a worker
	// rebuilds the exact grid from (experiment, horizon, opts), so only
	// serializable, result-determining fields may shape a grid.
	Defenses []string
	// ManySided is the N of E1's many-sided attack column (0 means 12).
	ManySided int
	// Observer, when non-nil, is attached to each machine before the run
	// and receives the full simulator event stream (ACTs, refreshes,
	// defense triggers, flips — see internal/obs). Observer-only:
	// simulation results are byte-identical with or without it. When the
	// same recorder serves parallel grid cells, wrap its sinks in
	// obs.NewSyncSink.
	Observer *obs.Recorder
}

// configString folds the result-determining options into a stable string
// for checkpoint keys. Observer-only fields (Observer, AttackTrace,
// Parallelism) are excluded: they never change simulation results.
func (o AttackOpts) configString() string {
	return fmt.Sprintf("horizon=%d;tenants=%d;pages=%d;think=%d;integrity=%t;replay=%t",
		o.Horizon, o.Tenants, o.PagesPerTenant, o.BenignThink, o.VictimIntegrity, o.ReplayAttack != nil)
}

func (o *AttackOpts) applyDefaults() {
	if o.Horizon == 0 {
		o.Horizon = 4_000_000
	}
	if o.Tenants == 0 {
		o.Tenants = 3
	}
	if o.PagesPerTenant == 0 {
		o.PagesPerTenant = 170
	}
	if o.BenignThink == 0 {
		o.BenignThink = 200
	}
}

// AttackOutcome reports one attack-vs-defense run.
type AttackOutcome struct {
	Defense  string
	Attack   string
	PlanKind string
	// PlannedCross is whether the attacker even found cross-domain
	// victims to aim at (isolation defenses make this false).
	PlannedCross bool
	Flips        uint64
	CrossFlips   uint64
	// LockedUp reports an integrity-check machine halt (§4.4).
	LockedUp bool
	// BenignSteps is the total completed accesses of the benign tenants.
	BenignSteps uint64
	Result      core.RunResult
}

// Succeeded reports whether the attack corrupted another domain's data.
func (o AttackOutcome) Succeeded() bool { return o.CrossFlips > 0 }

// RunAttack builds a machine with the defense, sets up tenants, plans and
// executes the attack from tenant 1 while the other tenants run benign
// workloads, and reports the outcome.
func RunAttack(spec core.MachineSpec, d core.Defense, kind attack.Kind, opts AttackOpts) (AttackOutcome, error) {
	return RunAttackCtx(context.Background(), spec, d, kind, opts)
}

// RunAttackCtx is RunAttack under cooperative cancellation: the context
// reaches core.Machine.RunCtx, so cancelling it (a cell deadline, a CLI
// SIGTERM, a hammerd job cancel) tears the simulation down at the next
// cancellation point instead of abandoning it. The returned error wraps
// core.ErrCancelled and the context's cause.
func RunAttackCtx(ctx context.Context, spec core.MachineSpec, d core.Defense, kind attack.Kind, opts AttackOpts) (AttackOutcome, error) {
	opts.applyDefaults()
	m, err := core.BuildWithDefense(spec, d)
	if err != nil {
		return AttackOutcome{}, err
	}
	if opts.Observer != nil {
		m.SetRecorder(opts.Observer)
	} else if rec := telemetry.ObserverFrom(ctx); rec != nil {
		// A hammerd job that requested event streaming carries its
		// recorder in the telemetry scope; explicit Observer opts win.
		m.SetRecorder(rec)
	}
	tenants, err := SetupTenants(m, opts.Tenants, opts.PagesPerTenant)
	if err != nil {
		return AttackOutcome{}, err
	}
	if opts.VictimIntegrity {
		for _, t := range tenants[1:] {
			t.Domain.Enclave = true
			t.Domain.IntegrityChecked = true
		}
	}
	attacker := tenants[0].Domain.ID
	radius := m.Spec.Profile.BlastRadius

	var plan attack.Plan
	var prog cpu.Program
	if opts.ReplayAttack != nil {
		plan = attack.Plan{Kind: "replayed-trace"}
		prog = trace.Replay(opts.ReplayAttack)
	} else {
		switch {
		case kind.Sided <= 1:
			// Concentrate the ACT budget: hammer a single aggressor row.
			plan, err = attack.PlanSingleSided(m.Kernel, m.Mapper, attacker, 1, radius)
		case kind.Sided == 2:
			plan, err = attack.PlanDoubleSided(m.Kernel, m.Mapper, attacker, 1, radius)
		default:
			plan, err = attack.PlanManySided(m.Kernel, m.Mapper, attacker, kind.Sided, radius)
		}
		if err != nil {
			return AttackOutcome{}, fmt.Errorf("harness: plan %s: %w", kind.Name, err)
		}
		prog, err = attack.HammerVA(m.Kernel, attacker, plan, 1<<30, !kind.DMA)
		if err != nil {
			return AttackOutcome{}, err
		}
	}
	if opts.AttackTrace != nil {
		prog = trace.Record(prog, trace.NewWriter(opts.AttackTrace))
	}

	var agents []core.Agent
	var cores []*cpu.Core
	if kind.DMA {
		dev, err := dma.NewDevice(0, attacker, prog, m.MC)
		if err != nil {
			return AttackOutcome{}, err
		}
		agents = append(agents, dev)
	} else {
		c, err := cpu.NewCore(0, attacker, prog, m.Cache, m.MC)
		if err != nil {
			return AttackOutcome{}, err
		}
		agents = append(agents, c)
		cores = append(cores, c)
	}
	for i, t := range tenants[1:] {
		wl, err := workload.Stream(t.Lines, 1<<30, opts.BenignThink)
		if err != nil {
			return AttackOutcome{}, err
		}
		c, err := cpu.NewCore(1+i, t.Domain.ID, wl, m.Cache, m.MC)
		if err != nil {
			return AttackOutcome{}, err
		}
		agents = append(agents, c)
		cores = append(cores, c)
	}
	// Defenses that sample CPU performance counters get the core list.
	if oc, ok := d.(interface{ ObserveCores([]*cpu.Core) }); ok {
		oc.ObserveCores(cores)
	}

	res, err := m.RunCtx(ctx, agents, opts.Horizon)
	if err != nil {
		return AttackOutcome{}, err
	}
	events := uint64(res.Stats.Counter("mc.requests") +
		res.Stats.Counter("dram.act") + res.Stats.Counter("dram.ref"))
	if c := benchCollector(); c != nil {
		// Simulated-event throughput for the performance report: memory
		// requests plus DRAM commands this run processed.
		c.addEvents(events)
	}
	telemetry.CountEvents(ctx, events)
	out := AttackOutcome{
		Attack:       kind.Name,
		PlanKind:     plan.Kind,
		PlannedCross: plan.CrossDomain,
		Flips:        res.Flips,
		CrossFlips:   res.CrossFlips,
		LockedUp:     m.Kernel.LockedUp(),
		Result:       res,
	}
	if d != nil {
		out.Defense = d.Name()
	} else {
		out.Defense = "none"
	}
	for i := 1; i < 1+len(tenants)-1; i++ {
		out.BenignSteps += res.Steps[i]
	}
	return out, nil
}
