package harness

import (
	"testing"

	"hammertime/internal/addr"
	"hammertime/internal/core"
	"hammertime/internal/memctrl"
)

// TestFigure1Anatomy walks the paper's Fig. 1: the memory controller
// activates row R0 in a bank, connecting it to the bank's row buffer for
// read/write commands; a later activation of another row displaces it.
func TestFigure1Anatomy(t *testing.T) {
	m, err := core.NewMachine(core.DefaultSpec())
	if err != nil {
		t.Fatal(err)
	}
	g := m.Spec.Geometry
	stripe := uint64(g.Banks * g.ColumnsPerRow)

	// ACT R0: MC converts the physical address and activates the row.
	res, err := m.MC.ServeRequest(memctrl.Request{Line: 0}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Activated {
		t.Fatal("first access did not activate")
	}
	if m.DRAM.OpenRow(0) != 0 {
		t.Fatalf("row buffer holds row %d, want R0", m.DRAM.OpenRow(0))
	}

	// RD/WR against the open row are row-buffer hits (faster than ACT).
	hit, err := m.MC.ServeRequest(memctrl.Request{Line: uint64(g.Banks), Write: true}, res.Completion)
	if err != nil {
		t.Fatal(err)
	}
	if !hit.RowHit {
		t.Fatal("access to the open row was not a buffer hit")
	}
	if hit.Completion-hit.Start >= res.Completion-res.Start {
		t.Fatal("row-buffer hit was not faster than the activating access")
	}

	// Accessing another row in the same bank precharges and re-activates.
	conflict, err := m.MC.ServeRequest(memctrl.Request{Line: stripe}, hit.Completion)
	if err != nil {
		t.Fatal(err)
	}
	if !conflict.Activated || conflict.RowHit {
		t.Fatal("row conflict did not re-activate")
	}
	if m.DRAM.OpenRow(0) != 1 {
		t.Fatalf("row buffer holds row %d after conflict, want R1", m.DRAM.OpenRow(0))
	}
}

// TestFigure2SubarrayIsolation builds the paper's Fig. 2 scenario: three
// VMs under subarray-isolated interleaving. Each VM's consecutive cache
// lines CL0..CL5 spread across banks (performance), while each VM's lines
// stay confined to its own subarray group (security).
func TestFigure2SubarrayIsolation(t *testing.T) {
	spec := core.DefaultSpec()
	spec.SubarrayGroups = 4
	spec.Alloc = core.AllocSubarrayAware
	spec.EnforceDomains = true
	m, err := core.NewMachine(spec)
	if err != nil {
		t.Fatal(err)
	}
	iso, ok := m.Mapper.(*addr.SubarrayIsolated)
	if !ok {
		t.Fatalf("mapper is %T, want subarray-isolated", m.Mapper)
	}

	vms := make([]int, 3) // VMs x, y, z
	for i, name := range []string{"x", "y", "z"} {
		vms[i] = m.Kernel.CreateDomain("vm-"+name, false, false).ID
		if _, err := m.Kernel.AllocPages(vms[i], 0, 4); err != nil {
			t.Fatal(err)
		}
	}

	groups := make(map[int]int)
	for _, vm := range vms {
		// CL0..CL5: six consecutive lines of the VM's first page.
		banks := make(map[int]bool)
		grp := -1
		for cl := uint64(0); cl < 6; cl++ {
			line, err := m.Kernel.Translate(vm, cl*uint64(m.Spec.Geometry.LineBytes))
			if err != nil {
				t.Fatal(err)
			}
			d := m.Mapper.Map(line)
			banks[d.Bank] = true
			g := iso.Partition().GroupOfRow(d.Row)
			if grp == -1 {
				grp = g
			} else if g != grp {
				t.Fatalf("vm %d line CL%d in group %d, earlier lines in %d", vm, cl, g, grp)
			}
		}
		if len(banks) < 3 {
			t.Fatalf("vm %d lines CL0-CL5 touch only %d banks — interleaving lost", vm, len(banks))
		}
		groups[vm] = grp
	}
	// x -> A, y -> B, z -> C: all three groups distinct.
	seen := make(map[int]bool)
	for vm, g := range groups {
		if seen[g] {
			t.Fatalf("vm %d shares subarray group %d with another VM", vm, g)
		}
		seen[g] = true
	}

	// The MC enforces the assignment: an access by x into y's group is
	// flagged.
	lineY, err := m.Kernel.Translate(vms[1], 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.MC.ServeRequest(memctrl.Request{Line: lineY, Domain: vms[0]}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Violation {
		t.Fatal("MC did not flag a cross-group access (§4.1 enforcement)")
	}
}
