package harness

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"runtime/debug"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hammertime/internal/obs"
	"hammertime/internal/report"
	"hammertime/internal/sim"
	"hammertime/internal/telemetry"
)

// The robustness layer of the experiment harness. Long sweeps (the
// BlockHammer- and Kim-style grids of E1-E10) are embarrassingly parallel
// and all-or-nothing by default: one failing cell aborts the whole run.
// The policy below turns that into fail-soft semantics: panics are
// contained into typed CellErrors, failed cells may be retried (with
// deterministic exponential backoff) a bounded number of times or cut off
// by a per-cell wall-clock deadline, and in fail-soft mode the grid
// finishes with the failure recorded per cell so tables render
// ERR(reason) placeholders instead of dropping the run.
//
// Every grid also runs under a context: the per-cell deadline and the
// caller's cancellation (a CLI SIGTERM, a hammerd job cancel) propagate
// into the cell function and from there into core.Machine.RunCtx, so a
// cut-off cell actually stops simulating instead of being abandoned to
// burn CPU in the background.

// Policy configures how experiment grids treat failing cells. The zero
// value is the historical strict behavior: no retries, no backoff, no
// deadline, and the lowest-index error among the attempted cells aborts
// the grid.
type Policy struct {
	// FailSoft records per-cell failures and finishes the grid instead of
	// stopping at the first error; experiments annotate the failed cells.
	FailSoft bool
	// Retries re-runs a failed cell up to this many extra times before
	// recording the failure. Timed-out cells are never retried: their
	// deadline is final.
	Retries int
	// Backoff is the base delay of the exponential backoff slept between
	// retry attempts (0 = retry immediately, the historical behavior).
	// The actual delay for retry k is base·2^(k-1) capped at 64·base,
	// jittered into [d/2, d) by the deterministic sim RNG — a pure
	// function of (grid, cell, attempt), so retried grids sleep the same
	// schedule on every run and stay reproducible.
	Backoff time.Duration
	// CellTimeout is a per-cell wall-clock deadline (0 = none). The
	// deadline cancels the cell's context; context-aware cells (anything
	// driving core.Machine.RunCtx) unwind within the cancellation poll
	// interval and are reaped. A cell that ignores its context is, as a
	// last resort, abandoned to finish in the background after a grace
	// period; its result is discarded either way.
	CellTimeout time.Duration
}

// currentPolicy holds the package-wide grid policy (nil = zero Policy).
var currentPolicy atomic.Pointer[Policy]

// SetPolicy installs the package-wide grid policy. The CLIs wire their
// -fail-soft/-retries/-retry-backoff/-cell-timeout flags here.
func SetPolicy(p Policy) { currentPolicy.Store(&p) }

// GridPolicy returns the installed policy (zero value when unset).
func GridPolicy() Policy {
	if p := currentPolicy.Load(); p != nil {
		return *p
	}
	return Policy{}
}

// gridObs holds the recorder that receives cell retry/failure events
// (KindCellRetry/KindCellFail), so traces show where a grid degraded.
var gridObs atomic.Pointer[obs.Recorder]

// SetGridObserver installs (or, with nil, removes) the recorder that
// receives harness cell-retry and cell-failure events.
func SetGridObserver(rec *obs.Recorder) {
	if rec == nil {
		gridObs.Store(nil)
		return
	}
	gridObs.Store(rec)
}

func gridObserver() *obs.Recorder { return gridObs.Load() }

// CellError is the typed failure of one experiment-grid cell: which grid
// and cell, how many attempts were made, and whether the final attempt
// errored, panicked, was cancelled, or exceeded its deadline.
type CellError struct {
	// Grid is the grid's identifier ("e1", ...; empty for anonymous grids).
	Grid string
	// Index is the failing cell's grid index.
	Index int
	// Attempts is how many times the cell was run (1 + retries used).
	Attempts int
	// Panicked marks a contained panic; Stack holds its stack trace.
	Panicked bool
	// TimedOut marks a cell that exceeded Policy.CellTimeout.
	TimedOut bool
	// Cancelled marks a cell stopped by the grid's context (shutdown or
	// job cancellation), as opposed to its own deadline or failure.
	Cancelled bool
	// Stack is the panic stack trace (empty otherwise).
	Stack string
	// Err is the underlying cause (the cell's error, the wrapped panic
	// value, the cancellation cause, or the deadline error).
	Err error
}

// Error implements error.
func (e *CellError) Error() string {
	grid := e.Grid
	if grid == "" {
		grid = "grid"
	}
	what := "failed"
	switch {
	case e.Panicked:
		what = "panicked"
	case e.TimedOut:
		what = "timed out"
	case e.Cancelled:
		what = "was cancelled"
	}
	if e.Attempts > 1 {
		return fmt.Sprintf("harness: %s cell %d %s after %d attempts: %v", grid, e.Index, what, e.Attempts, e.Err)
	}
	return fmt.Sprintf("harness: %s cell %d %s: %v", grid, e.Index, what, e.Err)
}

// Unwrap exposes the underlying cause to errors.Is/As.
func (e *CellError) Unwrap() error { return e.Err }

// Reason is the short, deterministic tag rendered into ERR(...) table
// cells: "panic", "timeout" and "cancelled" for contained crashes,
// deadlines and shutdowns, otherwise the root cause's message, flattened
// and truncated.
func (e *CellError) Reason() string {
	switch {
	case e.Panicked:
		return "panic"
	case e.TimedOut:
		return "timeout"
	case e.Cancelled:
		return "cancelled"
	}
	msg := "error"
	if e.Err != nil {
		msg = e.Err.Error()
	}
	msg = strings.Join(strings.Fields(msg), " ")
	const maxReason = 48
	if len(msg) > maxReason {
		msg = msg[:maxReason-1] + "…"
	}
	return msg
}

// GridSpec identifies one experiment grid for checkpointing and
// observability. ID and Config together must determine the grid's results
// (experiment name, horizon, sweep parameters, ...): checkpoint keys are
// a hash of (ID, Config, DeterminismEpoch, machine seed, cell index), so
// a run with different parameters never restores a stale cell. Grids with
// an empty ID are anonymous: policy still applies, checkpointing does not.
type GridSpec struct {
	ID      string
	Config  string
	Workers int
}

// GridRun is the outcome of one grid execution: the per-cell results plus
// any recorded failures.
type GridRun[T any] struct {
	spec GridSpec
	// Results holds one entry per cell; entries of failed cells are the
	// zero value and must be guarded with Failed.
	Results []T
	// Restored counts cells whose results came from the checkpoint
	// instead of being computed.
	Restored int

	strict    bool
	mu        sync.Mutex
	failures  map[int]*CellError
	cancelled error
}

// Failed returns the failure of cell i, or nil if it succeeded.
func (g *GridRun[T]) Failed(i int) *CellError {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.failures[i]
}

// Failures returns every recorded cell failure, ordered by cell index.
func (g *GridRun[T]) Failures() []*CellError {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]*CellError, 0, len(g.failures))
	for _, ce := range g.failures {
		out = append(out, ce)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Index < out[j].Index })
	return out
}

// Err resolves the run per the active policy: a cancelled grid always
// reports its cancellation (a partial table must never pass for a
// complete one, fail-soft or not); otherwise nil when every cell
// succeeded; under fail-soft nil regardless (callers annotate via
// Failed); otherwise the lowest-index failure — the same error a serial
// strict run would hit first among the attempted cells.
func (g *GridRun[T]) Err() error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.cancelled != nil {
		return g.cancelled
	}
	if len(g.failures) == 0 || !g.strict {
		return nil
	}
	var first *CellError
	for _, ce := range g.failures {
		if first == nil || ce.Index < first.Index {
			first = ce
		}
	}
	return first
}

// Cell renders cell i: render(result) on success, the ERR(reason)
// placeholder — annotated with the attempt count when the cell was
// retried — on failure.
func (g *GridRun[T]) Cell(i int, render func(T) string) string {
	if ce := g.Failed(i); ce != nil {
		return report.ErrCellN(ce.Reason(), ce.Attempts)
	}
	return render(g.Results[i])
}

// failCellEnv is the fault-injection hook used by the end-to-end tests
// (and handy for poking a live binary): "grid:index" fails that cell,
// with an optional ":panic" (crash instead of error) or ":once" (fail
// only the first attempt, so retries succeed) suffix.
const failCellEnv = "HAMMERTIME_FAIL_CELL"

type failpoint struct {
	index int
	mode  string // "error", "panic", "once"
}

func parseFailpoint(grid string) *failpoint {
	v := os.Getenv(failCellEnv)
	if v == "" || grid == "" {
		return nil
	}
	parts := strings.Split(v, ":")
	if len(parts) < 2 || parts[0] != grid {
		return nil
	}
	idx, err := strconv.Atoi(parts[1])
	if err != nil {
		return nil
	}
	fp := &failpoint{index: idx, mode: "error"}
	if len(parts) > 2 {
		fp.mode = parts[2]
	}
	return fp
}

// runGrid executes fn(ctx, 0..n-1) on the worker pool under the current
// Policy and checkpoint. Cells must be independent and return their
// result instead of writing shared state: the runner assigns
// Results[i] only when an attempt completes within its deadline, which
// is what keeps late (timed-out) attempts from racing with table
// assembly. The context a cell receives carries the grid context plus
// the per-cell deadline; cells thread it into core.Machine.RunCtx so a
// deadline or a caller's cancellation actually stops the simulation.
// Parallel and serial runs produce byte-identical results; so do
// checkpointed and uncheckpointed ones, because restored cells are exact
// JSON round trips of values the same code computed.
func runGrid[T any](ctx context.Context, spec GridSpec, n int, fn func(ctx context.Context, i int) (T, error)) *GridRun[T] {
	if ctx == nil {
		ctx = context.Background()
	}
	if del := gridDelegateFrom(ctx); del != nil && spec.ID != "" {
		// Coordinator path: the delegate computes the grid (cache +
		// workers) and every cell restores from its JSON.
		return runGridDelegated[T](ctx, spec, n, del)
	}
	pol := GridPolicy()
	run := &GridRun[T]{
		spec:     spec,
		Results:  make([]T, n),
		strict:   !pol.FailSoft,
		failures: make(map[int]*CellError),
	}
	// Worker path: a capture narrows the run to its assigned cells of
	// its target grid; other grids of the same experiment are skipped
	// entirely (their tables are discarded by the worker anyway).
	capture := cellCaptureFrom(ctx)
	if capture != nil && capture.grid != spec.ID {
		return run
	}
	order := make([]int, 0, n)
	if capture != nil {
		capture.arm(spec.Config)
		order = append(order, capture.indices(n)...)
	} else {
		for i := 0; i < n; i++ {
			order = append(order, i)
		}
	}
	ck := checkpointFrom(ctx)
	if ck == nil {
		ck = activeCheckpoint()
	}
	if spec.ID == "" {
		ck = nil
	}
	fp := parseFailpoint(spec.ID)
	var restored atomic.Int64

	// Telemetry: the grid gets a span (the parent of every cell span)
	// and publishes per-cell completions plus progress records to the
	// run's hub. All of it hangs off the context: no scope, no cost.
	gname := gridName(spec.ID)
	ctx, gspan := telemetry.StartSpan(ctx, "grid:"+gname)
	gspan.SetAttrs(telemetry.String("grid", gname), telemetry.Int("cells", int64(n)))
	defer func() { gspan.EndErr(run.Err()) }()
	prog := newGridProgress(telemetry.HubFrom(ctx), gname, n)

	bc := benchCollector()
	cell := func(i int) *CellError {
		var key string
		if ck != nil {
			key = CellKey(spec, i)
			if raw, ok := ck.lookup(key); ok {
				if jerr := json.Unmarshal(raw, &run.Results[i]); jerr == nil {
					restored.Add(1)
					prog.cellDone(i, 0, 0, true, "")
					return nil
				}
				// Undecodable record (e.g. the cell type changed):
				// recompute and overwrite below.
			}
		}
		cctx, span := telemetry.StartLane(ctx, "cell")
		span.SetAttrs(telemetry.String("grid", gname), telemetry.Int("cell", int64(i)))
		unwatch := slowCellWatchdog(gname, i)
		start := time.Now()
		ce := runCellGuarded(cctx, spec.ID, i, pol, fp, fn, &run.Results[i])
		wall := time.Since(start)
		unwatch()
		attempts, errMsg := 1, ""
		if ce != nil {
			attempts, errMsg = ce.Attempts, ce.Reason()
			span.Fail(ce)
			if log := logger(); log != nil {
				log.Warn("grid cell failed",
					"grid", gname, "cell", i, "attempts", ce.Attempts, "reason", ce.Reason())
			}
		}
		span.End()
		if bc != nil {
			bc.recordCell(i, wall)
		}
		if ce == nil && ck != nil {
			ck.record(spec.ID, i, key, run.Results[i])
		}
		if ce == nil && capture != nil {
			capture.record(spec, i, run.Results[i])
		}
		prog.cellDone(i, wall, attempts, false, errMsg)
		return ce
	}
	// noteCancel records the grid's cancellation once; later cells are
	// simply not started (their Results stay zero, no failure recorded —
	// the run as a whole reports the cancellation).
	noteCancel := func() {
		run.mu.Lock()
		if run.cancelled == nil {
			id := spec.ID
			if id == "" {
				id = "grid"
			}
			run.cancelled = fmt.Errorf("harness: %s cancelled: %w", id, context.Cause(ctx))
		}
		run.mu.Unlock()
	}

	workers := resolveWorkers(spec.Workers)
	if workers > len(order) {
		workers = len(order)
	}
	if workers <= 1 {
		for _, i := range order {
			if ctx.Err() != nil {
				noteCancel()
				break
			}
			if ce := cell(i); ce != nil {
				if ce.Cancelled {
					noteCancel()
					break
				}
				run.failures[i] = ce
				if !pol.FailSoft {
					break
				}
			}
		}
		run.Restored = int(restored.Load())
		return run
	}

	var (
		next atomic.Int64
		stop atomic.Bool
		wg   sync.WaitGroup
	)
	next.Store(-1)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if ctx.Err() != nil {
					noteCancel()
					return
				}
				idx := int(next.Add(1))
				if idx >= len(order) || stop.Load() {
					return
				}
				i := order[idx]
				if ce := cell(i); ce != nil {
					if ce.Cancelled {
						noteCancel()
						stop.Store(true)
						return
					}
					run.mu.Lock()
					run.failures[i] = ce
					run.mu.Unlock()
					if !pol.FailSoft {
						stop.Store(true)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	run.Restored = int(restored.Load())
	return run
}

// runCellGuarded runs one cell under the policy: contained panics,
// optional deadline, bounded retries with deterministic backoff, and obs
// events on retry/failure. On success the result is stored into *out; on
// timeout *out is left untouched so a late attempt cannot race with
// readers.
func runCellGuarded[T any](ctx context.Context, grid string, i int, pol Policy, fp *failpoint, fn func(ctx context.Context, i int) (T, error), out *T) *CellError {
	attempts := 1 + pol.Retries
	if attempts < 1 {
		attempts = 1
	}
	var last *CellError
	for a := 1; a <= attempts; a++ {
		wrapped := func(cctx context.Context) (T, error) {
			if fp != nil && fp.index == i {
				switch fp.mode {
				case "panic":
					panic(fmt.Sprintf("injected panic (%s=%s)", failCellEnv, os.Getenv(failCellEnv)))
				case "once":
					if a == 1 {
						var zero T
						return zero, fmt.Errorf("injected transient failure (%s)", failCellEnv)
					}
				default:
					var zero T
					return zero, fmt.Errorf("injected failure (%s)", failCellEnv)
				}
			}
			return fn(cctx, i)
		}
		v, err, panicked, timedOut, cancelled, stack := attemptCell(ctx, wrapped, pol.CellTimeout)
		if err == nil {
			*out = v
			return nil
		}
		last = &CellError{
			Grid: grid, Index: i, Attempts: a,
			Panicked: panicked, TimedOut: timedOut, Cancelled: cancelled,
			Stack: stack, Err: err,
		}
		if timedOut || cancelled {
			// The deadline is final, and a cancelled grid must stop, not
			// retry.
			break
		}
		if a < attempts {
			gridObserver().Emit(obs.Event{
				Kind: obs.KindCellRetry, Bank: -1, Row: -1, Domain: -1,
				Line: uint64(i), Arg: uint64(a),
			})
			if pol.Backoff > 0 && !sleepBackoff(ctx, pol.Backoff, grid, i, a) {
				last.Cancelled = true
				break
			}
		}
	}
	gridObserver().Emit(obs.Event{
		Kind: obs.KindCellFail, Bank: -1, Row: -1, Domain: -1,
		Line: uint64(i), Arg: uint64(last.Attempts),
	})
	return last
}

// RetryBackoff returns the delay slept before retry `attempt` (the
// 1-based count of failed attempts so far) of the given grid cell:
// base·2^(attempt-1), capped at 64·base, jittered into [d/2, d). The
// jitter comes from the deterministic sim RNG, forked from an FNV hash of
// (grid, cell) at the attempt index — a pure function of its arguments,
// never of wall clock or scheduling, so a retried grid sleeps the same
// schedule on every run.
func RetryBackoff(base time.Duration, grid string, cell, attempt int) time.Duration {
	return Backoff(base, fmt.Sprintf("%s|%d", grid, cell), attempt)
}

// Backoff is the keyed core of RetryBackoff, exported for other layers
// that need the same deterministic schedule under their own identity —
// the cluster coordinator keys batch-RPC retries by (grid, worker,
// batch). Same shape: base·2^(attempt-1), capped at 64·base, jittered
// into [d/2, d) by the sim RNG forked from an FNV-64a hash of key at the
// attempt index.
func Backoff(base time.Duration, key string, attempt int) time.Duration {
	if base <= 0 {
		return 0
	}
	d := base
	for k := 1; k < attempt && d < 64*base; k++ {
		d *= 2
	}
	if d > 64*base {
		d = 64 * base
	}
	h := fnv.New64a()
	h.Write([]byte(key))
	rng := sim.NewRNG(h.Sum64()).ForkAt(uint64(attempt))
	half := d / 2
	return half + time.Duration(rng.Float64()*float64(half))
}

// sleepBackoff sleeps the deterministic retry backoff, aborting early if
// the grid is cancelled. Reports whether the retry should proceed.
func sleepBackoff(ctx context.Context, base time.Duration, grid string, cell, attempt int) bool {
	d := RetryBackoff(base, grid, cell, attempt)
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// cellCancelGrace is how long a timed-out or cancelled attempt is given
// to observe its context and unwind before the harness falls back to
// abandoning its goroutine. Context-aware cells (everything built on
// core.Machine.RunCtx) unwind within the cancellation poll interval —
// well under a millisecond of simulation — so in practice the grace
// window is never exhausted; it exists so a cell that ignores its
// context cannot wedge the grid.
var cellCancelGrace = 10 * time.Second

// attemptCell runs fn once with panic containment under a context that
// carries the grid's cancellation plus, when timeout > 0, the per-cell
// deadline. The deadline path runs fn on its own goroutine; on expiry
// the attempt's context is cancelled and the goroutine is reaped within
// cellCancelGrace (true cancellation — see the goroutine-leak regression
// test). Only if the cell ignores its context is it abandoned to finish
// in the background, its result discarded.
func attemptCell[T any](ctx context.Context, fn func(ctx context.Context) (T, error), timeout time.Duration) (v T, err error, panicked, timedOut, cancelled bool, stack string) {
	if timeout <= 0 {
		v, err, panicked, stack = callContained(ctx, fn)
		cancelled = err != nil && !panicked && ctx.Err() != nil
		return v, err, panicked, false, cancelled, stack
	}
	cctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	type outcome struct {
		v        T
		err      error
		panicked bool
		stack    string
	}
	ch := make(chan outcome, 1)
	go func() {
		var o outcome
		o.v, o.err, o.panicked, o.stack = callContained(cctx, fn)
		ch <- o
	}()
	select {
	case o := <-ch:
		if o.err != nil && !o.panicked {
			// Classify errors surfacing exactly as the context dies: the
			// deadline marks a timeout, the parent context a cancellation.
			timedOut = errors.Is(cctx.Err(), context.DeadlineExceeded) && ctx.Err() == nil
			cancelled = ctx.Err() != nil
		}
		return o.v, o.err, o.panicked, timedOut, cancelled, o.stack
	case <-cctx.Done():
	}
	// Deadline or grid cancellation fired before the attempt finished.
	// cancel() has implicitly happened via cctx; give the (context-aware)
	// cell the grace window to unwind, then fall back to abandonment.
	reaped := false
	grace := time.NewTimer(cellCancelGrace)
	defer grace.Stop()
	select {
	case <-ch:
		reaped = true // result discarded: the attempt missed its deadline
	case <-grace.C:
	}
	var zero T
	if ctx.Err() != nil {
		return zero, fmt.Errorf("cell cancelled: %w", context.Cause(ctx)), false, false, true, ""
	}
	if reaped {
		return zero, fmt.Errorf("cell exceeded %v deadline (attempt cancelled)", timeout), false, true, false, ""
	}
	return zero, fmt.Errorf("cell exceeded %v deadline (attempt ignored cancellation, abandoned)", timeout), false, true, false, ""
}

// callContained invokes fn, converting a panic into an error plus its
// stack trace.
func callContained[T any](ctx context.Context, fn func(ctx context.Context) (T, error)) (v T, err error, panicked bool, stack string) {
	defer func() {
		if r := recover(); r != nil {
			panicked = true
			stack = string(debug.Stack())
			err = fmt.Errorf("panic: %v", r)
		}
	}()
	v, err = fn(ctx)
	return v, err, false, ""
}

// Guarded applies the current Policy to a single non-grid run (panic
// containment, retries with backoff, deadline): cmd/hammersim routes its
// one scenario through it so a crash or hang degrades into a reportable
// *CellError. The result is assigned only when an attempt completes in
// time.
func Guarded[T any](label string, fn func() (T, error)) (T, *CellError) {
	return GuardedCtx(context.Background(), label, func(context.Context) (T, error) { return fn() })
}

// GuardedCtx is Guarded under a caller context: the context (plus the
// policy's deadline) reaches fn, so cancelling it actually stops the
// scenario.
func GuardedCtx[T any](ctx context.Context, label string, fn func(ctx context.Context) (T, error)) (T, *CellError) {
	if ctx == nil {
		ctx = context.Background()
	}
	var v T
	ce := runCellGuarded(ctx, label, 0, GridPolicy(), parseFailpoint(label),
		func(cctx context.Context, _ int) (T, error) { return fn(cctx) }, &v)
	return v, ce
}
