package harness

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime/debug"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hammertime/internal/obs"
	"hammertime/internal/report"
)

// The robustness layer of the experiment harness. Long sweeps (the
// BlockHammer- and Kim-style grids of E1-E10) are embarrassingly parallel
// and all-or-nothing by default: one failing cell aborts the whole run.
// The policy below turns that into fail-soft semantics: panics are
// contained into typed CellErrors, failed cells may be retried a bounded
// number of times or cut off by a per-cell wall-clock deadline, and in
// fail-soft mode the grid finishes with the failure recorded per cell so
// tables render ERR(reason) placeholders instead of dropping the run.

// Policy configures how experiment grids treat failing cells. The zero
// value is the historical strict behavior: no retries, no deadline, and
// the lowest-index error among the attempted cells aborts the grid.
type Policy struct {
	// FailSoft records per-cell failures and finishes the grid instead of
	// stopping at the first error; experiments annotate the failed cells.
	FailSoft bool
	// Retries re-runs a failed cell up to this many extra times before
	// recording the failure. Timed-out cells are never retried: their
	// abandoned attempt may still be running, and a concurrent re-run
	// could race with it.
	Retries int
	// CellTimeout is a per-cell wall-clock deadline (0 = none). The
	// harness cannot forcibly stop a cell, so a timed-out cell's goroutine
	// runs to completion in the background; its result is discarded.
	CellTimeout time.Duration
}

// currentPolicy holds the package-wide grid policy (nil = zero Policy).
var currentPolicy atomic.Pointer[Policy]

// SetPolicy installs the package-wide grid policy. The CLIs wire their
// -fail-soft/-retries/-cell-timeout flags here.
func SetPolicy(p Policy) { currentPolicy.Store(&p) }

// GridPolicy returns the installed policy (zero value when unset).
func GridPolicy() Policy {
	if p := currentPolicy.Load(); p != nil {
		return *p
	}
	return Policy{}
}

// gridObs holds the recorder that receives cell retry/failure events
// (KindCellRetry/KindCellFail), so traces show where a grid degraded.
var gridObs atomic.Pointer[obs.Recorder]

// SetGridObserver installs (or, with nil, removes) the recorder that
// receives harness cell-retry and cell-failure events.
func SetGridObserver(rec *obs.Recorder) {
	if rec == nil {
		gridObs.Store(nil)
		return
	}
	gridObs.Store(rec)
}

func gridObserver() *obs.Recorder { return gridObs.Load() }

// CellError is the typed failure of one experiment-grid cell: which grid
// and cell, how many attempts were made, and whether the final attempt
// errored, panicked, or exceeded its deadline.
type CellError struct {
	// Grid is the grid's identifier ("e1", ...; empty for anonymous grids).
	Grid string
	// Index is the failing cell's grid index.
	Index int
	// Attempts is how many times the cell was run (1 + retries used).
	Attempts int
	// Panicked marks a contained panic; Stack holds its stack trace.
	Panicked bool
	// TimedOut marks a cell that exceeded Policy.CellTimeout.
	TimedOut bool
	// Stack is the panic stack trace (empty otherwise).
	Stack string
	// Err is the underlying cause (the cell's error, the wrapped panic
	// value, or the deadline error).
	Err error
}

// Error implements error.
func (e *CellError) Error() string {
	grid := e.Grid
	if grid == "" {
		grid = "grid"
	}
	what := "failed"
	switch {
	case e.Panicked:
		what = "panicked"
	case e.TimedOut:
		what = "timed out"
	}
	if e.Attempts > 1 {
		return fmt.Sprintf("harness: %s cell %d %s after %d attempts: %v", grid, e.Index, what, e.Attempts, e.Err)
	}
	return fmt.Sprintf("harness: %s cell %d %s: %v", grid, e.Index, what, e.Err)
}

// Unwrap exposes the underlying cause to errors.Is/As.
func (e *CellError) Unwrap() error { return e.Err }

// Reason is the short, deterministic tag rendered into ERR(...) table
// cells: "panic" and "timeout" for contained crashes and deadlines,
// otherwise the root cause's message, flattened and truncated.
func (e *CellError) Reason() string {
	switch {
	case e.Panicked:
		return "panic"
	case e.TimedOut:
		return "timeout"
	}
	msg := "error"
	if e.Err != nil {
		msg = e.Err.Error()
	}
	msg = strings.Join(strings.Fields(msg), " ")
	const maxReason = 48
	if len(msg) > maxReason {
		msg = msg[:maxReason-1] + "…"
	}
	return msg
}

// GridSpec identifies one experiment grid for checkpointing and
// observability. ID and Config together must determine the grid's results
// (experiment name, horizon, sweep parameters, ...): checkpoint keys are
// a hash of (ID, Config, DeterminismEpoch, machine seed, cell index), so
// a run with different parameters never restores a stale cell. Grids with
// an empty ID are anonymous: policy still applies, checkpointing does not.
type GridSpec struct {
	ID      string
	Config  string
	Workers int
}

// GridRun is the outcome of one grid execution: the per-cell results plus
// any recorded failures.
type GridRun[T any] struct {
	spec GridSpec
	// Results holds one entry per cell; entries of failed cells are the
	// zero value and must be guarded with Failed.
	Results []T
	// Restored counts cells whose results came from the checkpoint
	// instead of being computed.
	Restored int

	strict   bool
	mu       sync.Mutex
	failures map[int]*CellError
}

// Failed returns the failure of cell i, or nil if it succeeded.
func (g *GridRun[T]) Failed(i int) *CellError {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.failures[i]
}

// Failures returns every recorded cell failure, ordered by cell index.
func (g *GridRun[T]) Failures() []*CellError {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]*CellError, 0, len(g.failures))
	for _, ce := range g.failures {
		out = append(out, ce)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Index < out[j].Index })
	return out
}

// Err resolves the run per the active policy: nil when every cell
// succeeded; under fail-soft nil regardless (callers annotate via Failed);
// otherwise the lowest-index failure — the same error a serial strict run
// would hit first among the attempted cells.
func (g *GridRun[T]) Err() error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if len(g.failures) == 0 || !g.strict {
		return nil
	}
	var first *CellError
	for _, ce := range g.failures {
		if first == nil || ce.Index < first.Index {
			first = ce
		}
	}
	return first
}

// Cell renders cell i: render(result) on success, the ERR(reason)
// placeholder on failure.
func (g *GridRun[T]) Cell(i int, render func(T) string) string {
	if ce := g.Failed(i); ce != nil {
		return report.ErrCell(ce.Reason())
	}
	return render(g.Results[i])
}

// failCellEnv is the fault-injection hook used by the end-to-end tests
// (and handy for poking a live binary): "grid:index" fails that cell,
// with an optional ":panic" (crash instead of error) or ":once" (fail
// only the first attempt, so retries succeed) suffix.
const failCellEnv = "HAMMERTIME_FAIL_CELL"

type failpoint struct {
	index int
	mode  string // "error", "panic", "once"
}

func parseFailpoint(grid string) *failpoint {
	v := os.Getenv(failCellEnv)
	if v == "" || grid == "" {
		return nil
	}
	parts := strings.Split(v, ":")
	if len(parts) < 2 || parts[0] != grid {
		return nil
	}
	idx, err := strconv.Atoi(parts[1])
	if err != nil {
		return nil
	}
	fp := &failpoint{index: idx, mode: "error"}
	if len(parts) > 2 {
		fp.mode = parts[2]
	}
	return fp
}

// runGrid executes fn(0..n-1) on the worker pool under the current
// Policy and checkpoint. Cells must be independent and return their
// result instead of writing shared state: the runner assigns
// Results[i] only when an attempt completes within its deadline, which
// is what keeps abandoned (timed-out) attempts from racing with table
// assembly. Parallel and serial runs produce byte-identical results;
// so do checkpointed and uncheckpointed ones, because restored cells
// are exact JSON round trips of values the same code computed.
func runGrid[T any](spec GridSpec, n int, fn func(i int) (T, error)) *GridRun[T] {
	pol := GridPolicy()
	run := &GridRun[T]{
		spec:     spec,
		Results:  make([]T, n),
		strict:   !pol.FailSoft,
		failures: make(map[int]*CellError),
	}
	ck := activeCheckpoint()
	if spec.ID == "" {
		ck = nil
	}
	fp := parseFailpoint(spec.ID)
	var restored atomic.Int64

	bc := benchCollector()
	cell := func(i int) *CellError {
		var key string
		if ck != nil {
			key = cellKey(spec, i)
			if raw, ok := ck.lookup(key); ok {
				if jerr := json.Unmarshal(raw, &run.Results[i]); jerr == nil {
					restored.Add(1)
					return nil
				}
				// Undecodable record (e.g. the cell type changed):
				// recompute and overwrite below.
			}
		}
		start := time.Now()
		ce := runCellGuarded(spec.ID, i, pol, fp, fn, &run.Results[i])
		if bc != nil {
			bc.recordCell(i, time.Since(start))
		}
		if ce == nil && ck != nil {
			ck.record(spec.ID, i, key, run.Results[i])
		}
		return ce
	}

	workers := resolveWorkers(spec.Workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if ce := cell(i); ce != nil {
				run.failures[i] = ce
				if !pol.FailSoft {
					break
				}
			}
		}
		run.Restored = int(restored.Load())
		return run
	}

	var (
		next atomic.Int64
		stop atomic.Bool
		wg   sync.WaitGroup
	)
	next.Store(-1)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= n || stop.Load() {
					return
				}
				if ce := cell(i); ce != nil {
					run.mu.Lock()
					run.failures[i] = ce
					run.mu.Unlock()
					if !pol.FailSoft {
						stop.Store(true)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	run.Restored = int(restored.Load())
	return run
}

// runCellGuarded runs one cell under the policy: contained panics,
// optional deadline, bounded retries, and obs events on retry/failure.
// On success the result is stored into *out; on timeout *out is left
// untouched so the abandoned attempt cannot race with readers.
func runCellGuarded[T any](grid string, i int, pol Policy, fp *failpoint, fn func(i int) (T, error), out *T) *CellError {
	attempts := 1 + pol.Retries
	if attempts < 1 {
		attempts = 1
	}
	var last *CellError
	for a := 1; a <= attempts; a++ {
		wrapped := func() (T, error) {
			if fp != nil && fp.index == i {
				switch fp.mode {
				case "panic":
					panic(fmt.Sprintf("injected panic (%s=%s)", failCellEnv, os.Getenv(failCellEnv)))
				case "once":
					if a == 1 {
						var zero T
						return zero, fmt.Errorf("injected transient failure (%s)", failCellEnv)
					}
				default:
					var zero T
					return zero, fmt.Errorf("injected failure (%s)", failCellEnv)
				}
			}
			return fn(i)
		}
		v, err, panicked, timedOut, stack := attemptCell(wrapped, pol.CellTimeout)
		if err == nil {
			*out = v
			return nil
		}
		last = &CellError{
			Grid: grid, Index: i, Attempts: a,
			Panicked: panicked, TimedOut: timedOut, Stack: stack, Err: err,
		}
		if timedOut {
			// The abandoned goroutine may still be running; a retry
			// would race with it. The deadline is final.
			break
		}
		if a < attempts {
			gridObserver().Emit(obs.Event{
				Kind: obs.KindCellRetry, Bank: -1, Row: -1, Domain: -1,
				Line: uint64(i), Arg: uint64(a),
			})
		}
	}
	gridObserver().Emit(obs.Event{
		Kind: obs.KindCellFail, Bank: -1, Row: -1, Domain: -1,
		Line: uint64(i), Arg: uint64(last.Attempts),
	})
	return last
}

// attemptCell runs fn once with panic containment and, when timeout > 0,
// a wall-clock deadline. The deadline path runs fn on its own goroutine;
// on expiry the attempt is abandoned (the goroutine finishes in the
// background, its result discarded) and the cell reports TimedOut.
func attemptCell[T any](fn func() (T, error), timeout time.Duration) (v T, err error, panicked, timedOut bool, stack string) {
	if timeout <= 0 {
		v, err, panicked, stack = callContained(fn)
		return v, err, panicked, false, stack
	}
	type outcome struct {
		v        T
		err      error
		panicked bool
		stack    string
	}
	ch := make(chan outcome, 1)
	go func() {
		var o outcome
		o.v, o.err, o.panicked, o.stack = callContained(fn)
		ch <- o
	}()
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case o := <-ch:
		return o.v, o.err, o.panicked, false, o.stack
	case <-timer.C:
		var zero T
		return zero, fmt.Errorf("cell exceeded %v deadline", timeout), false, true, ""
	}
}

// callContained invokes fn, converting a panic into an error plus its
// stack trace.
func callContained[T any](fn func() (T, error)) (v T, err error, panicked bool, stack string) {
	defer func() {
		if r := recover(); r != nil {
			panicked = true
			stack = string(debug.Stack())
			err = fmt.Errorf("panic: %v", r)
		}
	}()
	v, err = fn()
	return v, err, false, ""
}

// Guarded applies the current Policy to a single non-grid run (panic
// containment, retries, deadline): cmd/hammersim routes its one scenario
// through it so a crash or hang degrades into a reportable *CellError.
// The result is assigned only when an attempt completes in time.
func Guarded[T any](label string, fn func() (T, error)) (T, *CellError) {
	var v T
	ce := runCellGuarded(label, 0, GridPolicy(), parseFailpoint(label), func(int) (T, error) { return fn() }, &v)
	return v, ce
}
