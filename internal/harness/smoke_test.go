package harness

import (
	"testing"

	"hammertime/internal/attack"
	"hammertime/internal/core"
	"hammertime/internal/defense"
)

// TestSmokeUndefendedDoubleSided is the end-to-end sanity check: on an
// undefended machine, a double-sided attack must corrupt another tenant.
func TestSmokeUndefendedDoubleSided(t *testing.T) {
	spec := core.DefaultSpec()
	out, err := RunAttack(spec, defense.None{}, attack.Kind{Name: "double-sided", Sided: 2}, AttackOpts{})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("plan=%s plannedCross=%v flips=%d cross=%d acts=%d benign=%d",
		out.PlanKind, out.PlannedCross, out.Flips, out.CrossFlips,
		out.Result.Stats.Counter("mc.acts"), out.BenignSteps)
	if !out.PlannedCross {
		t.Fatalf("planner found no cross-domain victims on undefended machine")
	}
	if out.CrossFlips == 0 {
		t.Fatalf("expected cross-domain flips on undefended machine, got none\n%s", out.Result.Stats.String())
	}
}
