package harness

import (
	"context"
	"fmt"

	"hammertime/internal/core"
	"hammertime/internal/defense"
	"hammertime/internal/memctrl"
	"hammertime/internal/report"
	"hammertime/internal/telemetry"
)

// IdleDefenses is the defense grid of the idle fast-forward experiment:
// the undefended baseline plus one representative of each defense shape
// that contributes to the controller event horizon (admission throttle,
// sampling daemon, in-DRAM tracker, counter table with window resets).
var IdleDefenses = []string{"none", "blockhammer", "anvil", "trr", "graphene"}

// idleCell is one defense's outcome on the idle-heavy workload.
type idleCell struct {
	Steps uint64
	Acts  int64
	Refs  int64
	Flips uint64
}

// idleBurstAgent hammers a double-sided pair for a fixed number of
// accesses, then goes idle for the remainder of the horizon. The long
// quiet tail is the point: almost all simulated time passes with no
// agent scheduled, which is what the controller's refresh fast-forward
// and the next-event scheduler accelerate.
type idleBurstAgent struct {
	mc        *memctrl.Controller
	line      uint64
	stripe    uint64
	remaining int
	i         int
}

func (a *idleBurstAgent) Done() bool { return a.remaining == 0 }

func (a *idleBurstAgent) Step(now uint64) (uint64, bool, error) {
	if a.remaining == 0 {
		return 0, false, nil
	}
	a.remaining--
	line := a.line + uint64(a.i%2)*2*a.stripe
	a.i++
	res, err := a.mc.ServeRequest(memctrl.Request{Line: line, Domain: 0}, now)
	if err != nil {
		return 0, false, err
	}
	return res.Completion, true, nil
}

// IdleFastForward runs the idle-heavy grid: per defense, a short hammer
// burst followed by a long quiet tail to the horizon. The table reports
// the deterministic simulation outcomes (identical with the fast-forward
// on or off — see TestDefendedIdleFastForwardEquivalence); wall-clock
// throughput lands in the BENCH_harness.json report via the installed
// BenchCollector, which records simulated events/sec per cell. horizon 0
// means 400_000_000 cycles (~5 refresh windows of idle tail).
func IdleFastForward(ctx context.Context, horizon uint64) (*report.Table, error) {
	if horizon == 0 {
		horizon = 400_000_000
	}
	tb := report.NewTable("IDLE: idle-heavy runs through the event-driven core",
		"defense", "steps", "acts", "refs", "flips")
	run := runGrid(ctx, GridSpec{
		ID:     "idle",
		Config: fmt.Sprintf("horizon=%d;defenses=%v", horizon, IdleDefenses),
	}, len(IdleDefenses), func(ctx context.Context, i int) (idleCell, error) {
		d, err := defense.New(IdleDefenses[i])
		if err != nil {
			return idleCell{}, err
		}
		m, err := core.BuildWithDefense(core.DefaultSpec(), d)
		if err != nil {
			return idleCell{}, err
		}
		geom := m.Spec.Geometry
		stripe := uint64(geom.ColumnsPerRow) * uint64(geom.Banks)
		agent := &idleBurstAgent{mc: m.MC, line: 512 * stripe, stripe: stripe, remaining: 4000}
		res, err := m.RunCtx(ctx, []core.Agent{agent}, horizon)
		if err != nil {
			return idleCell{}, fmt.Errorf("harness: idle %s: %w", IdleDefenses[i], err)
		}
		events := uint64(res.Stats.Counter("mc.requests") +
			res.Stats.Counter("dram.act") + res.Stats.Counter("dram.ref"))
		if c := benchCollector(); c != nil {
			c.addEvents(events)
		}
		telemetry.CountEvents(ctx, events)
		return idleCell{
			Steps: res.Steps[0],
			Acts:  res.Stats.Counter("dram.act"),
			Refs:  res.Stats.Counter("mc.ref"),
			Flips: res.Flips,
		}, nil
	})
	if err := run.Err(); err != nil {
		return nil, err
	}
	for i, name := range IdleDefenses {
		if ce := run.Failed(i); ce != nil {
			tb.AddRow(name, report.ErrCellN(ce.Reason(), ce.Attempts), "-", "-", "-")
			continue
		}
		c := run.Results[i]
		tb.AddRow(name,
			fmt.Sprintf("%d", c.Steps),
			fmt.Sprintf("%d", c.Acts),
			fmt.Sprintf("%d", c.Refs),
			fmt.Sprintf("%d", c.Flips))
	}
	return tb, nil
}
