package harness

import (
	"context"
	"fmt"
	"sort"

	"hammertime/internal/report"
)

// The experiment dispatcher: one name-indexed entry point over E1-E10 so
// callers that receive an experiment id at runtime — cmd/hammerbench's
// -experiment flag is compiled in, but hammerd accepts ids over HTTP —
// share a single switch instead of each growing their own. Every
// experiment runs under the caller's context; cancelling it tears the
// grid down at the next cancellation point (core.ErrCancelled).

// experimentRunners maps experiment ids to their table generators. The
// multi-value experiments (E2, E6, E7, E9) discard their secondary
// results here; callers that need them use the E-functions directly.
var experimentRunners = map[string]func(ctx context.Context, horizon uint64, opts AttackOpts) (*report.Table, error){
	"e1": func(ctx context.Context, horizon uint64, opts AttackOpts) (*report.Table, error) {
		opts.Horizon = horizon
		sided := opts.ManySided
		if sided == 0 {
			sided = 12
		}
		return E1Matrix(ctx, opts.Defenses, sided, opts)
	},
	"e2": func(ctx context.Context, horizon uint64, _ AttackOpts) (*report.Table, error) {
		tb, _, err := E2Interleaving(ctx, horizon)
		return tb, err
	},
	"e3": func(ctx context.Context, horizon uint64, _ AttackOpts) (*report.Table, error) {
		return E3DensityScaling(ctx, horizon)
	},
	"e4": func(ctx context.Context, horizon uint64, _ AttackOpts) (*report.Table, error) {
		return E4Overhead(ctx, horizon, nil)
	},
	"e5": func(ctx context.Context, horizon uint64, _ AttackOpts) (*report.Table, error) {
		return E5TRRBypass(ctx, horizon, nil, nil)
	},
	"e6": func(ctx context.Context, horizon uint64, _ AttackOpts) (*report.Table, error) {
		tb, _, err := E6ActInterrupt(ctx, horizon)
		return tb, err
	},
	"e7": func(ctx context.Context, _ uint64, _ AttackOpts) (*report.Table, error) {
		tb, _, err := E7RefreshPath(ctx)
		return tb, err
	},
	"e8": func(ctx context.Context, horizon uint64, _ AttackOpts) (*report.Table, error) {
		return E8Enclave(ctx, horizon)
	},
	"e9": func(ctx context.Context, _ uint64, _ AttackOpts) (*report.Table, error) {
		tb, _, err := E9ECC(ctx, nil)
		return tb, err
	},
	"e10": func(ctx context.Context, horizon uint64, _ AttackOpts) (*report.Table, error) {
		return E10HalfDouble(ctx, horizon)
	},
	"idle": func(ctx context.Context, horizon uint64, _ AttackOpts) (*report.Table, error) {
		return IdleFastForward(ctx, horizon)
	},
}

// ExperimentIDs returns the dispatchable experiment ids, sorted.
func ExperimentIDs() []string {
	ids := make([]string, 0, len(experimentRunners))
	for id := range experimentRunners {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// ValidExperiment reports whether id names a dispatchable experiment.
func ValidExperiment(id string) bool {
	_, ok := experimentRunners[id]
	return ok
}

// Experiment runs the named experiment (e1..e10) under ctx and returns
// its rendered table. horizon 0 uses the experiment's default; opts
// carries the E1 knobs (tenants, observer, parallelism) and is ignored
// by experiments that don't take them.
func Experiment(ctx context.Context, id string, horizon uint64, opts AttackOpts) (*report.Table, error) {
	fn, ok := experimentRunners[id]
	if !ok {
		return nil, fmt.Errorf("harness: unknown experiment %q (want one of %v)", id, ExperimentIDs())
	}
	return fn(ctx, horizon, opts)
}
