package harness

import (
	"context"
	"fmt"
	"strings"

	"hammertime/internal/attack"
	"hammertime/internal/core"
	"hammertime/internal/cpu"
	"hammertime/internal/defense"
	"hammertime/internal/dram"
	"hammertime/internal/memctrl"
	"hammertime/internal/report"
	"hammertime/internal/workload"
)

// E1Defenses is the defense lineup of the protection matrix.
var E1Defenses = []string{
	"none", "trr", "para", "graphene", "blockhammer",
	"zebram", "bankpart", "subarray",
	"actremap", "actlock", "swrefresh", "anvil",
}

// E1Spec returns the machine configuration of the protection matrix: an
// LPDDR4-class module, the emerging-DRAM regime §3 is worried about.
func E1Spec() core.MachineSpec {
	spec := core.DefaultSpec()
	spec.Profile = dram.LPDDR4()
	return spec
}

// E1Matrix runs every attack in the catalog against every named defense
// and tabulates cross-domain flips — the reproduction of Table 1's claim
// that each primitive enables a working defense of its class. The
// (defense, attack) cells are independent simulations and run on the
// worker pool (opts.Parallelism); each cell constructs its own defense
// instance because several defenses are stateful software daemons.
func E1Matrix(ctx context.Context, defenses []string, manySided int, opts AttackOpts) (*report.Table, error) {
	if len(defenses) == 0 {
		defenses = E1Defenses
	}
	attacks := attack.Catalog(manySided)
	headers := []string{"defense", "class"}
	for _, a := range attacks {
		headers = append(headers, a.Name)
	}
	tb := report.NewTable("E1: cross-domain flips, attack x defense (LPDDR4)", headers...)
	nA := len(attacks)
	spec := GridSpec{
		ID:      "e1",
		Config:  fmt.Sprintf("defenses=%s;sided=%d;%s", strings.Join(defenses, ","), manySided, opts.configString()),
		Workers: opts.Parallelism,
	}
	run := runGrid(ctx, spec, len(defenses)*nA, func(ctx context.Context, i int) (string, error) {
		name, kind := defenses[i/nA], attacks[i%nA]
		d, err := defense.New(name)
		if err != nil {
			return "", err
		}
		out, err := RunAttackCtx(ctx, E1Spec(), d, kind, opts)
		if err != nil {
			return "", fmt.Errorf("harness: E1 %s vs %s: %w", name, kind.Name, err)
		}
		cell := fmt.Sprintf("%d", out.CrossFlips)
		if !out.PlannedCross {
			cell += " (no targets)"
		}
		return cell, nil
	})
	if err := run.Err(); err != nil {
		return nil, err
	}
	for di, name := range defenses {
		d, err := defense.New(name)
		if err != nil {
			return nil, err
		}
		row := []string{d.Name(), d.Class().String()}
		for ai := range attacks {
			row = append(row, run.Cell(di*nA+ai, func(s string) string { return s }))
		}
		tb.AddRow(row...)
	}
	return tb, nil
}

// E2Scheme is one interleaving configuration of experiment E2.
type E2Scheme struct {
	Name string
	Spec core.MachineSpec
}

// E2Schemes returns the three §4.1 contenders plus the no-interleaving
// strawman.
func E2Schemes() []E2Scheme {
	full := core.DefaultSpec()

	noInter := core.DefaultSpec()
	noInter.Interleave = core.InterleaveRowRegion

	bankPart := core.DefaultSpec()
	bankPart.Interleave = core.InterleaveRowRegion
	bankPart.Alloc = core.AllocBankAware
	bankPart.BankPartitions = 4

	sub := core.DefaultSpec()
	sub.SubarrayGroups = 4
	sub.Alloc = core.AllocSubarrayAware
	sub.EnforceDomains = true

	return []E2Scheme{
		{Name: "line-interleave", Spec: full},
		{Name: "no-interleave", Spec: noInter},
		{Name: "bank-partition(4)", Spec: bankPart},
		{Name: "subarray-isolated(4)", Spec: sub},
	}
}

// E2Result is one measured cell of the interleaving experiment.
type E2Result struct {
	Scheme   string
	Workload string
	Accesses uint64
	// LossVsInterleave is the throughput loss relative to full
	// line interleaving, in percent.
	LossVsInterleave float64
}

// E2Interleaving measures single-tenant memory throughput (an MLP-8 core,
// the case where bank-level parallelism matters) under each interleaving
// scheme. The paper's §4.1 claim: disabling interleaving for bank-aware
// isolation costs double-digit percent (Tang et al. measured >18%), while
// subarray-isolated interleaving keeps the full-interleave throughput.
func E2Interleaving(ctx context.Context, horizon uint64) (*report.Table, []E2Result, error) {
	if horizon == 0 {
		horizon = 2_000_000
	}
	workloads := []string{"stream", "random"}
	tb := report.NewTable("E2: single-tenant throughput by interleaving scheme (MLP-8 core)",
		"scheme", "workload", "accesses", "loss-vs-interleave%")
	schemes := E2Schemes()
	nW := len(workloads)
	run := runGrid(ctx, GridSpec{ID: "e2", Config: fmt.Sprintf("horizon=%d", horizon)},
		len(schemes)*nW, func(ctx context.Context, i int) (uint64, error) {
			scheme, wl := schemes[i/nW], workloads[i%nW]
			m, err := core.NewMachine(scheme.Spec)
			if err != nil {
				return 0, fmt.Errorf("harness: E2 %s: %w", scheme.Name, err)
			}
			// The working set must exceed the LLC (2 MiB) or the cache
			// absorbs the stream and no scheme differs.
			tenants, err := SetupTenants(m, 1, 768)
			if err != nil {
				return 0, err
			}
			var prog cpu.Program
			switch wl {
			case "stream":
				prog, err = workload.Stream(tenants[0].Lines, 1<<30, 0)
			case "random":
				prog, err = workload.Random(tenants[0].Lines, 1<<30, 0, 0.2, m.RNG.Fork())
			}
			if err != nil {
				return 0, err
			}
			c, err := cpu.NewCore(0, tenants[0].Domain.ID, prog, m.Cache, m.MC)
			if err != nil {
				return 0, err
			}
			c.MLP = 8
			if _, err := m.RunCtx(ctx, []core.Agent{c}, horizon); err != nil {
				return 0, err
			}
			return c.Counters().Accesses, nil
		})
	if err := run.Err(); err != nil {
		return nil, nil, err
	}
	// Loss is relative to the line-interleave scheme, which is cell row 0.
	// A failed cell degrades to an ERR() placeholder; a failed baseline
	// additionally blanks the loss column of its workload.
	var results []E2Result
	for si, scheme := range schemes {
		for wi, wl := range workloads {
			i := si*nW + wi
			if ce := run.Failed(i); ce != nil {
				tb.AddRow(scheme.Name, wl, report.ErrCellN(ce.Reason(), ce.Attempts), "-")
				continue
			}
			acc := run.Results[i]
			if scheme.Name != "line-interleave" && run.Failed(wi) != nil {
				tb.AddRowf(scheme.Name, wl, acc, "-")
				continue
			}
			loss := 0.0
			if base := run.Results[wi]; scheme.Name != "line-interleave" && base > 0 {
				loss = 100 * (1 - float64(acc)/float64(base))
			}
			results = append(results, E2Result{
				Scheme: scheme.Name, Workload: wl, Accesses: acc, LossVsInterleave: loss,
			})
			tb.AddRowf(scheme.Name, wl, acc, loss)
		}
	}
	return tb, results, nil
}

// E3DensityScaling reproduces the §3 trend across DRAM generations: the
// undefended flip count explodes as the MAC shrinks and the blast radius
// grows, vendor-style TRR keeps losing ground, the SRAM a Graphene-class
// tracker needs keeps growing — while the software defense built on the
// paper's primitives holds at constant hardware cost.
func E3DensityScaling(ctx context.Context, horizon uint64) (*report.Table, error) {
	if horizon == 0 {
		horizon = 16_000_000
	}
	tb := report.NewTable("E3: density scaling across DRAM generations",
		"generation", "MAC", "blast", "flips(none)", "flips(trr)", "flips(swrefresh)",
		"graphene-entries/bank")
	opts := AttackOpts{Horizon: horizon}
	kind := attack.Kind{Name: "double-sided", Sided: 2}
	gens := dram.Generations()
	names := []string{"none", "trr", "swrefresh"}
	run := runGrid(ctx, GridSpec{ID: "e3", Config: fmt.Sprintf("horizon=%d", horizon)},
		len(gens)*len(names), func(ctx context.Context, i int) (uint64, error) {
			prof, name := gens[i/len(names)], names[i%len(names)]
			spec := core.DefaultSpec()
			spec.Profile = prof
			d, err := defense.New(name)
			if err != nil {
				return 0, err
			}
			out, err := RunAttackCtx(ctx, spec, d, kind, opts)
			if err != nil {
				return 0, fmt.Errorf("harness: E3 %s/%s: %w", prof.Name, name, err)
			}
			return out.CrossFlips, nil
		})
	if err := run.Err(); err != nil {
		return nil, err
	}
	flipCell := func(i int) string { return run.Cell(i, func(v uint64) string { return fmt.Sprint(v) }) }
	for gi, prof := range gens {
		spec := core.DefaultSpec()
		spec.Profile = prof
		entries := memctrl.RequiredEntries(spec.Timing.MaxActsPerWindowPerBank(), prof.MAC/4)
		base := gi * len(names)
		tb.AddRowf(prof.Name, prof.MAC, prof.BlastRadius,
			flipCell(base), flipCell(base+1), flipCell(base+2), entries)
	}
	return tb, nil
}

// E4Defenses is the overhead lineup: the PARA probability sweep shows the
// §3 scaling pain (protection at small MACs costs throughput), the rest
// are the E1 defenses under purely benign load.
var E4Defenses = []string{
	"none", "para", "graphene", "blockhammer", "zebram", "bankpart",
	"subarray", "actremap", "actlock", "swrefresh", "anvil", "trr",
	"refreshx2", "refreshx4", "ecc-scrub",
}

// E4Overhead measures benign multi-tenant slowdown per defense: three
// tenants run a stream+random mix with no attacker; the metric is total
// completed accesses relative to the undefended machine.
func E4Overhead(ctx context.Context, horizon uint64, paraProbs []float64) (*report.Table, error) {
	if horizon == 0 {
		horizon = 2_000_000
	}
	if len(paraProbs) == 0 {
		paraProbs = []float64{0.0005, 0.001, 0.005, 0.02}
	}
	// Each cell builds a fresh defense instance (several are stateful
	// daemons), so entries carry factories rather than shared instances.
	type entry struct {
		name string
		mk   func() (core.Defense, error)
	}
	var entries []entry
	for _, name := range E4Defenses {
		if name == "para" {
			for _, p := range paraProbs {
				p := p
				entries = append(entries, entry{
					name: fmt.Sprintf("para(p=%g)", p),
					mk:   func() (core.Defense, error) { return defense.PARA{Prob: p}, nil },
				})
			}
			continue
		}
		name := name
		d, err := defense.New(name)
		if err != nil {
			return nil, err
		}
		entries = append(entries, entry{name: d.Name(), mk: func() (core.Defense, error) { return defense.New(name) }})
	}

	tb := report.NewTable("E4: benign multi-tenant overhead by defense",
		"defense", "accesses", "slowdown%", "DRAM nJ/access")
	names := make([]string, len(entries))
	for i, e := range entries {
		names[i] = e.name
	}
	run := runGrid(ctx, GridSpec{
		ID:     "e4",
		Config: fmt.Sprintf("horizon=%d;defenses=%s;probs=%v", horizon, strings.Join(names, ","), paraProbs),
	}, len(entries), func(ctx context.Context, i int) (e4Cell, error) {
		d, err := entries[i].mk()
		if err != nil {
			return e4Cell{}, err
		}
		acc, energy, err := runBenign(ctx, d, horizon)
		if err != nil {
			return e4Cell{}, fmt.Errorf("harness: E4 %s: %w", entries[i].name, err)
		}
		return e4Cell{Accesses: acc, Energy: energy}, nil
	})
	if err := run.Err(); err != nil {
		return nil, err
	}
	// Slowdown is relative to the undefended "none" entry, always first;
	// if that baseline cell failed, the slowdown column degrades too.
	var baseline uint64
	for i, e := range entries {
		if ce := run.Failed(i); ce != nil {
			tb.AddRow(e.name, report.ErrCellN(ce.Reason(), ce.Attempts), "-", "-")
			continue
		}
		acc := run.Results[i].Accesses
		slowdown := 0.0
		if e.name == "none" {
			baseline = acc
		}
		perAccess := 0.0
		if acc > 0 {
			perAccess = run.Results[i].Energy / 1e3 / float64(acc)
		}
		if e.name != "none" && baseline == 0 {
			tb.AddRowf(e.name, acc, "-", perAccess)
			continue
		}
		if e.name != "none" {
			slowdown = 100 * (1 - float64(acc)/float64(baseline))
		}
		tb.AddRowf(e.name, acc, slowdown, perAccess)
	}
	return tb, nil
}

// e4Cell is E4's checkpointable cell result.
type e4Cell struct {
	Accesses uint64  `json:"accesses"`
	Energy   float64 `json:"energy"`
}

// runBenign runs three benign tenants (stream + random mix, MLP 4) under
// the defense and returns their total completed accesses. The combined
// working set (3 x 2 MiB) exceeds the LLC so the memory system — where
// every defense lives — is actually exercised.
func runBenign(ctx context.Context, d core.Defense, horizon uint64) (uint64, float64, error) {
	m, err := core.BuildWithDefense(core.DefaultSpec(), d)
	if err != nil {
		return 0, 0, err
	}
	tenants, err := SetupTenants(m, 3, 512)
	if err != nil {
		return 0, 0, err
	}
	var agents []core.Agent
	var cores []*cpu.Core
	for i, t := range tenants {
		st, err := workload.Stream(t.Lines, 1<<30, 0)
		if err != nil {
			return 0, 0, err
		}
		rd, err := workload.Random(t.Lines, 1<<30, 0, 0.3, m.RNG.Fork())
		if err != nil {
			return 0, 0, err
		}
		c, err := cpu.NewCore(i, t.Domain.ID, workload.Mix(st, rd), m.Cache, m.MC)
		if err != nil {
			return 0, 0, err
		}
		c.MLP = 4
		agents = append(agents, c)
		cores = append(cores, c)
	}
	if oc, ok := d.(interface{ ObserveCores([]*cpu.Core) }); ok {
		oc.ObserveCores(cores)
	}
	res, err := m.RunCtx(ctx, agents, horizon)
	if err != nil {
		return 0, 0, err
	}
	var total uint64
	for _, c := range cores {
		total += c.Counters().Accesses
	}
	energy := dram.DDR4Energy().EstimateWithIO(m.DRAM, res.Stats.Counter("mc.requests"))
	return total, energy, nil
}
