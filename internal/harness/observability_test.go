package harness

import (
	"bytes"
	"encoding/json"
	"testing"

	"hammertime/internal/attack"
	"hammertime/internal/core"
	"hammertime/internal/defense"
	"hammertime/internal/obs"
)

func obsTestOpts(rec *obs.Recorder) AttackOpts {
	return AttackOpts{Horizon: 600_000, Tenants: 2, PagesPerTenant: 32, Observer: rec}
}

// TestObserverByteIdentical is the core observability contract: attaching
// a recorder must not change simulation results at all.
func TestObserverByteIdentical(t *testing.T) {
	d1, err := defense.New("swrefresh")
	if err != nil {
		t.Fatal(err)
	}
	d2, err := defense.New("swrefresh")
	if err != nil {
		t.Fatal(err)
	}
	kind := attack.Kind{Name: "double-sided", Sided: 2}

	plain, err := RunAttack(core.DefaultSpec(), d1, kind, obsTestOpts(nil))
	if err != nil {
		t.Fatal(err)
	}
	ring := obs.NewRing(1 << 16)
	observed, err := RunAttack(core.DefaultSpec(), d2, kind, obsTestOpts(obs.NewRecorder(ring)))
	if err != nil {
		t.Fatal(err)
	}

	if plain.Flips != observed.Flips || plain.CrossFlips != observed.CrossFlips ||
		plain.BenignSteps != observed.BenignSteps {
		t.Fatalf("observer changed the outcome: plain=%+v observed=%+v", plain, observed)
	}
	if got, want := observed.Result.Stats.String(), plain.Result.Stats.String(); got != want {
		t.Errorf("observer changed the stats:\n--- plain ---\n%s--- observed ---\n%s", want, got)
	}
	if ring.Total() == 0 {
		t.Error("recorder attached but saw no events")
	}
	if ring.Count(obs.KindACT) == 0 || ring.Count(obs.KindREF) == 0 {
		t.Errorf("expected ACT and REF events, got %d/%d", ring.Count(obs.KindACT), ring.Count(obs.KindREF))
	}
}

// chromeEvent mirrors the fields of a Chrome trace-event record that the
// test asserts on.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args"`
}

// TestChromeTraceEndToEnd runs an attack under a triggering defense with
// a Chrome-trace sink attached and checks the acceptance criterion: the
// output is valid trace-event JSON containing ACT, REF and
// defense-trigger events spanning at least two banks.
func TestChromeTraceEndToEnd(t *testing.T) {
	d, err := defense.New("swrefresh")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	sink := obs.NewChromeTrace(&buf)
	rec := obs.NewRecorder(sink)
	// The detector needs a few refresh windows of evidence before it
	// flags an aggressor, so run longer than the byte-identical test.
	opts := obsTestOpts(rec)
	opts.Horizon = 2_000_000
	if _, err := RunAttack(core.DefaultSpec(), d, attack.Kind{Name: "double-sided", Sided: 2}, opts); err != nil {
		t.Fatal(err)
	}
	if err := rec.Flush(); err != nil {
		t.Fatal(err)
	}

	var file struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatalf("not valid Chrome trace JSON: %v", err)
	}
	actBanks := map[int]bool{}
	var refs, triggers int
	for _, ev := range file.TraceEvents {
		switch ev.Name {
		case "act":
			actBanks[ev.Tid] = true
		case "ref":
			refs++
		case "defense-trigger":
			triggers++
		}
	}
	if len(actBanks) < 2 {
		t.Errorf("ACT events cover %d banks, want >= 2", len(actBanks))
	}
	if refs == 0 {
		t.Error("no REF events in trace")
	}
	if triggers == 0 {
		t.Error("no defense-trigger events in trace")
	}
}

// TestBenchCollectorReport checks the BENCH_harness.json shape: per-cell
// wall-clock recorded by runCells and per-experiment events/sec.
func TestBenchCollectorReport(t *testing.T) {
	c := NewBenchCollector("harness-test")
	SetBenchCollector(c)
	defer SetBenchCollector(nil)

	c.Begin("grid")
	if err := runCells(2, 4, func(i int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	c.addEvents(1000)
	c.End()

	rep := c.Report()
	if rep.Name != "harness-test" || rep.CPUs <= 0 || rep.Parallelism <= 0 {
		t.Fatalf("report header = %+v", rep)
	}
	if len(rep.Experiments) != 1 {
		t.Fatalf("experiments = %+v", rep.Experiments)
	}
	e := rep.Experiments[0]
	if e.ID != "grid" || len(e.Cells) != 4 || e.Events != 1000 || e.EventsPerSec <= 0 {
		t.Fatalf("experiment = %+v", e)
	}
	seen := map[int]bool{}
	for _, cell := range e.Cells {
		seen[cell.Index] = true
	}
	if len(seen) != 4 {
		t.Fatalf("cell indices = %+v", e.Cells)
	}

	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"name"`, `"experiments"`, `"wall_ns"`, `"events_per_sec"`, `"cells"`, `"index"`} {
		if !bytes.Contains(data, []byte(key)) {
			t.Errorf("report JSON missing %s: %s", key, data)
		}
	}
}
