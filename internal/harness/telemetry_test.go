package harness

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"strings"
	"sync"
	"testing"
	"time"

	"hammertime/internal/attack"
	"hammertime/internal/core"
	"hammertime/internal/obs"
	"hammertime/internal/telemetry"
)

func TestGridTelemetrySpansAndRecords(t *testing.T) {
	tr := telemetry.NewTracerWithID(0x1234)
	hub := telemetry.NewHub()
	sub := hub.Subscribe(64)
	ctx := telemetry.NewContext(context.Background(), &telemetry.Scope{Tracer: tr, Hub: hub})

	SetPolicy(Policy{FailSoft: true})
	defer SetPolicy(Policy{})
	run := runGrid(ctx, GridSpec{ID: "tgrid", Workers: 2}, 4, func(ctx context.Context, i int) (int, error) {
		if i == 2 {
			return 0, fmt.Errorf("synthetic cell error")
		}
		return i * 10, nil
	})
	if run.Err() != nil {
		t.Fatalf("fail-soft grid errored: %v", run.Err())
	}

	spans := tr.Snapshot()
	var grid *telemetry.SpanSnap
	cells := 0
	for i := range spans {
		switch spans[i].Name {
		case "grid:tgrid":
			grid = &spans[i]
		case "cell":
			cells++
		}
	}
	if grid == nil || cells != 4 {
		t.Fatalf("got grid=%v cells=%d, want grid span and 4 cell spans", grid, cells)
	}
	lanes := map[telemetry.SpanID]bool{}
	for _, s := range spans {
		if s.Name != "cell" {
			continue
		}
		if s.Parent != grid.ID {
			t.Fatalf("cell span parent %d, want grid %d", s.Parent, grid.ID)
		}
		if lanes[s.Lane] {
			t.Fatal("two cell spans share a lane")
		}
		lanes[s.Lane] = true
		if s.End.IsZero() {
			t.Fatal("cell span left open")
		}
	}
	if grid.End.IsZero() {
		t.Fatal("grid span left open")
	}

	msgs, dropped := sub.Take()
	if dropped != 0 {
		t.Fatalf("dropped %d records with a roomy ring", dropped)
	}
	var cellRecs []telemetry.CellDone
	var lastProg telemetry.Progress
	progs := 0
	for _, m := range msgs {
		switch m.Type {
		case "cell":
			var cd telemetry.CellDone
			if err := json.Unmarshal(m.Data, &cd); err != nil {
				t.Fatal(err)
			}
			cellRecs = append(cellRecs, cd)
		case "progress":
			progs++
			if err := json.Unmarshal(m.Data, &lastProg); err != nil {
				t.Fatal(err)
			}
		}
	}
	if len(cellRecs) != 4 || progs != 4 {
		t.Fatalf("got %d cell records, %d progress records; want 4 and 4", len(cellRecs), progs)
	}
	failed := 0
	for _, cd := range cellRecs {
		if cd.Grid != "tgrid" {
			t.Fatalf("cell record grid %q", cd.Grid)
		}
		if cd.Err != "" {
			failed++
			if cd.Index != 2 {
				t.Fatalf("failure recorded for cell %d, want 2", cd.Index)
			}
		}
	}
	if failed != 1 {
		t.Fatalf("%d failed cell records, want 1", failed)
	}
	if lastProg.Done != 4 || lastProg.Total != 4 || lastProg.Failed != 1 {
		t.Fatalf("final progress %+v, want done=4 total=4 failed=1", lastProg)
	}
}

func TestGridWithoutScopeHasNoTelemetry(t *testing.T) {
	run := runGrid(context.Background(), GridSpec{ID: "plain"}, 2, func(ctx context.Context, i int) (int, error) {
		if telemetry.SpanFrom(ctx) != nil {
			t.Error("cell received a span without a scope")
		}
		return i, nil
	})
	if run.Err() != nil {
		t.Fatal(run.Err())
	}
}

// lockedBuf makes a bytes.Buffer safe to read while the slow-cell
// watchdog goroutine is still writing warnings into it.
type lockedBuf struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuf) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuf) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func (b *lockedBuf) Reset() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.buf.Reset()
}

func TestSlowCellWatchdog(t *testing.T) {
	var buf lockedBuf
	SetLogger(slog.New(slog.NewTextHandler(&buf, nil)))
	SetSlowCellWarn(10 * time.Millisecond)
	defer func() {
		SetLogger(nil)
		SetSlowCellWarn(time.Minute)
	}()

	runGrid(context.Background(), GridSpec{ID: "slow"}, 1, func(ctx context.Context, i int) (int, error) {
		time.Sleep(60 * time.Millisecond)
		return 0, nil
	})
	if !strings.Contains(buf.String(), "slow cell still running") {
		t.Fatalf("no watchdog warning logged:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "grid=slow") {
		t.Fatalf("warning missing grid attribute:\n%s", buf.String())
	}

	// A fast cell must not warn.
	buf.Reset()
	runGrid(context.Background(), GridSpec{ID: "fast"}, 1, func(ctx context.Context, i int) (int, error) {
		return 0, nil
	})
	time.Sleep(30 * time.Millisecond)
	if strings.Contains(buf.String(), "slow cell") {
		t.Fatalf("fast cell tripped the watchdog:\n%s", buf.String())
	}
}

// TestE1ByteIdenticalWithTelemetry pins the observer-only contract for
// the whole telemetry stack: the same E1 grid renders byte-identical
// tables with no scope and with the full scope a hammerd job carries
// (tracer + hub + event-streaming observer).
func TestE1ByteIdenticalWithTelemetry(t *testing.T) {
	defenses := []string{"none", "trr", "anvil"}
	opts := AttackOpts{Horizon: 200_000}
	plain, err := E1Matrix(context.Background(), defenses, 12, opts)
	if err != nil {
		t.Fatal(err)
	}

	hub := telemetry.NewHub()
	sub := hub.Subscribe(1024)
	defer hub.Unsubscribe(sub)
	ctx := telemetry.NewContext(context.Background(), &telemetry.Scope{
		Tracer:   telemetry.NewTracer(),
		Hub:      hub,
		Observer: obs.NewRecorder(obs.NewSyncSink(hub.ObsSink())),
	})
	traced, err := E1Matrix(ctx, defenses, 12, opts)
	if err != nil {
		t.Fatal(err)
	}
	if plain.String() != traced.String() {
		t.Fatalf("telemetry changed the E1 table:\n--- plain ---\n%s\n--- traced ---\n%s",
			plain.String(), traced.String())
	}
	if msgs, _ := sub.Take(); len(msgs) == 0 {
		t.Fatal("traced run published nothing to the hub")
	}
}

func TestRunAttackCtxScopeObserverAndSpans(t *testing.T) {
	tr := telemetry.NewTracerWithID(0x77)
	ring := obs.NewRing(1 << 16)
	rec := obs.NewRecorder(ring)
	ctx := telemetry.NewContext(context.Background(), &telemetry.Scope{
		Tracer:   tr,
		Hub:      telemetry.NewHub(),
		Observer: rec,
	})

	out, err := RunAttackCtx(ctx, core.DefaultSpec(), nil, attack.Catalog(8)[0], AttackOpts{Horizon: 200_000})
	if err != nil {
		t.Fatal(err)
	}
	if out.Result.Horizon != 200_000 {
		t.Fatalf("horizon %d", out.Result.Horizon)
	}
	if ring.Total() == 0 {
		t.Fatal("scope observer received no events: recorder not attached from context")
	}

	names := map[string]int{}
	var runSpan telemetry.SpanSnap
	for _, s := range tr.Snapshot() {
		names[s.Name]++
		if s.Name == "machine.run" {
			runSpan = s
		}
	}
	if names["machine.run"] != 1 || names["machine.drain"] != 1 {
		t.Fatalf("span names %v, want one machine.run and one machine.drain", names)
	}
	if !runSpan.HasCycles || runSpan.EndCycle < 200_000 {
		t.Fatalf("machine.run cycles %d..%d, want end >= horizon", runSpan.StartCycle, runSpan.EndCycle)
	}
}
