package harness

import (
	"log/slog"
	"sync/atomic"
	"time"

	"hammertime/internal/telemetry"
)

// Structured logging and the slow-cell watchdog. Like the bench
// collector and the grid observer, the logger is a package-level
// install (the harness is driven through package-level experiment
// functions): nil means silent, and the grid only arms per-cell
// watchdog timers when a logger is present.

var pkgLogger atomic.Pointer[slog.Logger]

// SetLogger installs (or, with nil, removes) the logger that receives
// harness progress: slow-cell warnings, grid completions, cell
// failures. hammerd and the CLIs wire their slog here.
func SetLogger(l *slog.Logger) {
	if l == nil {
		pkgLogger.Store(nil)
		return
	}
	pkgLogger.Store(l)
}

// logger returns the installed logger, or nil when logging is off.
func logger() *slog.Logger { return pkgLogger.Load() }

// slowCellWarnNS is the wall-clock threshold after which a still-running
// cell logs a watchdog warning. Nanoseconds in an atomic so tests can
// lower it without racing running grids.
var slowCellWarnNS atomic.Int64

func init() { slowCellWarnNS.Store(int64(time.Minute)) }

// SetSlowCellWarn sets the slow-cell watchdog threshold (0 disables).
func SetSlowCellWarn(d time.Duration) { slowCellWarnNS.Store(int64(d)) }

// slowCellWatchdog arms a warning timer for cell i of grid. The returned
// stop function disarms it (and is safe to call after firing). When no
// logger is installed or the threshold is 0, nothing is armed.
func slowCellWatchdog(grid string, i int) (stop func()) {
	log := logger()
	threshold := time.Duration(slowCellWarnNS.Load())
	if log == nil || threshold <= 0 {
		return func() {}
	}
	start := time.Now()
	var t *time.Timer
	t = time.AfterFunc(threshold, func() {
		log.Warn("slow cell still running",
			"grid", grid, "cell", i, "elapsed", time.Since(start).Round(time.Second).String())
	})
	return func() { t.Stop() }
}

// gridName renders a grid id for records and logs ("grid" when anonymous).
func gridName(id string) string {
	if id == "" {
		return "grid"
	}
	return id
}

// gridProgress tracks one running grid's completion counters and
// publishes progress records to the run's hub after every cell.
type gridProgress struct {
	hub      *telemetry.Hub
	grid     string
	total    int
	start    time.Time
	done     atomic.Int64
	failed   atomic.Int64
	restored atomic.Int64
}

func newGridProgress(hub *telemetry.Hub, grid string, total int) *gridProgress {
	return &gridProgress{hub: hub, grid: grid, total: total, start: time.Now()}
}

// cellDone records one finished cell (computed or restored) and
// publishes its completion plus a fresh progress record. Free (two
// atomic adds) when the run has no hub.
func (p *gridProgress) cellDone(i int, wall time.Duration, attempts int, restored bool, errMsg string) {
	d := p.done.Add(1)
	if errMsg != "" {
		p.failed.Add(1)
	}
	if restored {
		p.restored.Add(1)
	}
	if p.hub == nil {
		return
	}
	p.hub.Publish("cell", telemetry.CellDone{
		Grid:     p.grid,
		Index:    i,
		WallMS:   float64(wall) / float64(time.Millisecond),
		Attempts: attempts,
		Restored: restored,
		Err:      errMsg,
	})
	var eta float64
	if d > 0 && int(d) < p.total {
		eta = time.Since(p.start).Seconds() / float64(d) * float64(p.total-int(d))
	}
	p.hub.Publish("progress", telemetry.Progress{
		Grid:         p.grid,
		Done:         int(d),
		Total:        p.total,
		Restored:     int(p.restored.Load()),
		Failed:       int(p.failed.Load()),
		EventsPerSec: p.hub.EventsPerSec(),
		ETASeconds:   eta,
	})
}
