package harness

import (
	"testing"

	"hammertime/internal/attack"
	"hammertime/internal/core"
	"hammertime/internal/cpu"
	"hammertime/internal/defense"
	"hammertime/internal/dram"
	"hammertime/internal/hostos"
	"hammertime/internal/memctrl"
)

// TestRunAttackDeterministic: the full pipeline — planning, hammering,
// defense reactions, flip attribution — must reproduce bit-for-bit.
func TestRunAttackDeterministic(t *testing.T) {
	run := func() AttackOutcome {
		d, err := defense.New("actremap")
		if err != nil {
			t.Fatal(err)
		}
		out, err := RunAttack(matrixSpec(), d, attack.Kind{Name: "double-sided", Sided: 2},
			AttackOpts{Horizon: 2_000_000})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := run(), run()
	if a.Flips != b.Flips || a.CrossFlips != b.CrossFlips || a.BenignSteps != b.BenignSteps {
		t.Fatalf("two identical attack runs diverged: %+v vs %+v", a, b)
	}
}

// TestActremapUnderMemoryPressure: when the allocator cannot supply fresh
// frames, wear-leveling migration fails — the defense must degrade
// gracefully (count failures, keep simulating) rather than error out.
func TestActremapUnderMemoryPressure(t *testing.T) {
	spec := matrixSpec()
	d := &defense.ACTRemap{}
	m, err := core.BuildWithDefense(spec, d)
	if err != nil {
		t.Fatal(err)
	}
	// Exhaust physical memory: three tenants absorb every frame.
	total := int(hostos.TotalFrames(spec.Geometry))
	per := total / 3
	tenants, err := SetupTenants(m, 3, per)
	if err != nil {
		t.Fatal(err)
	}
	// Mop up the remainder so literally no frame is free: migration's
	// allocate-before-free must now fail.
	for i := 0; i < total%3; i++ {
		if _, err := m.Kernel.AllocPages(tenants[1].Domain.ID, uint64(per+i), 1); err != nil {
			t.Fatal(err)
		}
	}
	attacker := tenants[0].Domain.ID
	plan, err := attack.PlanDoubleSided(m.Kernel, m.Mapper, attacker, 1, spec.Profile.BlastRadius)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := attack.HammerVA(m.Kernel, attacker, plan, 1<<30, true)
	if err != nil {
		t.Fatal(err)
	}
	c, err := cpu.NewCore(0, attacker, prog, m.Cache, m.MC)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run([]core.Agent{c}, 2_000_000); err != nil {
		t.Fatalf("simulation failed under memory pressure: %v", err)
	}
	_, failed := d.Migrations()
	if failed == 0 {
		t.Fatal("expected failed migrations with memory exhausted")
	}
}

// TestSubarrayAllocatorAloneIsolates: the allocator-driven (indirect)
// mode of §4.1 must already prevent cross-domain attacks; MC enforcement
// is belt and braces for buggy/hostile allocators, not the mechanism.
func TestSubarrayAllocatorAloneIsolates(t *testing.T) {
	d, err := defense.New("subarray-noenforce")
	if err != nil {
		t.Fatal(err)
	}
	out, err := RunAttack(matrixSpec(), d, attack.Kind{Name: "double-sided", Sided: 2},
		AttackOpts{Horizon: 2_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if out.CrossFlips != 0 {
		t.Fatalf("allocator-only subarray isolation leaked %d cross flips", out.CrossFlips)
	}
	if out.PlannedCross {
		t.Fatal("planner found cross-domain targets under subarray allocation")
	}
}

// TestEnforcerFlagsCrossGroupTraffic: with enforcement on, kernel-driven
// cross-group accesses (page migration touches every group) never trip
// it, while a tenant's own out-of-group access does.
func TestEnforcerFlagsCrossGroupTraffic(t *testing.T) {
	spec := matrixSpec()
	spec.SubarrayGroups = 4
	spec.Alloc = core.AllocSubarrayAware
	spec.EnforceDomains = true
	m, err := core.NewMachine(spec)
	if err != nil {
		t.Fatal(err)
	}
	tenants, err := SetupTenants(m, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Tenant 1 reaches into tenant 2's line.
	res, err := m.MC.ServeRequest(reqFor(tenants[1].Lines[0], tenants[0].Domain.ID), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Violation {
		t.Fatal("cross-group access not flagged")
	}
	// Tenant 1 touching its own line is clean.
	res, err = m.MC.ServeRequest(reqFor(tenants[0].Lines[0], tenants[0].Domain.ID), 1000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation {
		t.Fatal("in-group access flagged")
	}
}

// TestDefenseInDepthStack: an isolation layer plus a refresh layer
// composed must stop every cataloged attack (§5's "work in tandem").
func TestDefenseInDepthStack(t *testing.T) {
	for _, kind := range attack.Catalog(12) {
		sub, err := defense.New("subarray")
		if err != nil {
			t.Fatal(err)
		}
		swr, err := defense.New("swrefresh")
		if err != nil {
			t.Fatal(err)
		}
		stack, err := defense.NewStack(sub, swr)
		if err != nil {
			t.Fatal(err)
		}
		out, err := RunAttack(matrixSpec(), stack, kind, AttackOpts{Horizon: 2_000_000})
		if err != nil {
			t.Fatalf("%s: %v", kind.Name, err)
		}
		if out.CrossFlips != 0 {
			t.Errorf("%s defeated the defense-in-depth stack (%d cross flips)", kind.Name, out.CrossFlips)
		}
	}
}

// TestGuardRowCapacityExhaustion: ZebRAM's cost is capacity; allocating
// past 1/(b+1) of memory must fail with ErrOutOfMemory, not misplace.
func TestGuardRowCapacityExhaustion(t *testing.T) {
	spec := core.DefaultSpec()
	spec.Profile = dram.LPDDR4() // radius 4: only 1/5 of rows usable
	spec.Alloc = core.AllocGuardRow
	m, err := core.NewMachine(spec)
	if err != nil {
		t.Fatal(err)
	}
	d := m.Kernel.CreateDomain("big", false, false)
	total := int(hostos.TotalFrames(spec.Geometry))
	_, err = m.Kernel.AllocPages(d.ID, 0, total/4)
	if err == nil {
		t.Fatal("guard-row allocator served beyond its capacity fraction")
	}
}

// reqFor builds a read request for a line by a domain.
func reqFor(line uint64, domain int) memctrl.Request {
	return memctrl.Request{Line: line, Domain: domain}
}

// TestRefreshRateScalingInsufficient verifies the E4 commentary: even 4x
// refresh cannot stop a modern-MAC attack — the per-window ACT budget an
// attacker needs is reached in a fraction of a quartered window.
func TestRefreshRateScalingInsufficient(t *testing.T) {
	d, err := defense.New("refreshx4")
	if err != nil {
		t.Fatal(err)
	}
	out, err := RunAttack(matrixSpec(), d, attack.Kind{Name: "double-sided", Sided: 2},
		AttackOpts{Horizon: 4_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if out.CrossFlips == 0 {
		t.Fatal("4x refresh stopped a modern-MAC double-sided attack — the §3 scaling story is lost")
	}
}

// TestUncoreMoveMigrationEquivalence: the uncore-move path must preserve
// migration semantics (mapping moves, data follows) while being cheaper.
func TestUncoreMoveMigrationEquivalence(t *testing.T) {
	spec := core.DefaultSpec()
	run := func(uncore bool) (uint64, uint64) {
		m, err := core.NewMachine(spec)
		if err != nil {
			t.Fatal(err)
		}
		if uncore {
			m.Kernel.EnableUncoreMove()
		}
		d := m.Kernel.CreateDomain("d", false, false)
		if _, err := m.Kernel.AllocPages(d.ID, 0, 2); err != nil {
			t.Fatal(err)
		}
		res, err := m.Kernel.MigratePage(d.ID, 0, 1000)
		if err != nil {
			t.Fatal(err)
		}
		after, err := m.Kernel.Translate(d.ID, 0)
		if err != nil {
			t.Fatal(err)
		}
		lpp := hostos.LinesPerPage(spec.Geometry)
		if after != res.NewFrame*lpp {
			t.Fatal("migration mapping wrong")
		}
		return res.Completion - 1000, uint64(m.MC.Stats().Counter("mc.uncore_moves"))
	}
	serialCost, moves := run(false)
	uncoreCost, uncoreMoves := run(true)
	if moves != 0 || uncoreMoves == 0 {
		t.Fatalf("uncore move accounting wrong: %d/%d", moves, uncoreMoves)
	}
	if uncoreCost >= serialCost {
		t.Fatalf("uncore move (%d cycles) not cheaper than serial copy (%d)", uncoreCost, serialCost)
	}
}
