package harness

import (
	"encoding/json"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// BenchCell is the measured wall-clock of one experiment-grid cell. Cells
// are recorded in completion order under parallel execution; Index is the
// cell's grid index, so reports stay comparable across worker counts.
type BenchCell struct {
	Index  int   `json:"index"`
	WallNS int64 `json:"wall_ns"`
}

// BenchExperiment aggregates one experiment's run: total wall-clock,
// per-cell timings, and the simulated event count (memory requests, ACTs
// and REFs) with the resulting events-per-second throughput.
type BenchExperiment struct {
	ID           string      `json:"id"`
	WallNS       int64       `json:"wall_ns"`
	Cells        []BenchCell `json:"cells,omitempty"`
	Events       uint64      `json:"events"`
	EventsPerSec float64     `json:"events_per_sec"`
}

// BenchReport is the machine-readable performance report the harness
// emits (the BENCH_harness.json shape): environment, worker count, and
// one entry per experiment run.
type BenchReport struct {
	Name        string            `json:"name"`
	GoOS        string            `json:"goos"`
	GoArch      string            `json:"goarch"`
	CPUs        int               `json:"cpus"`
	Parallelism int               `json:"parallelism"`
	Experiments []BenchExperiment `json:"experiments"`
	TotalWallNS int64             `json:"total_wall_ns"`
}

// BenchCollector accumulates per-cell and per-experiment performance
// samples. It is safe for concurrent use (cells complete on pool
// workers). Install it with SetBenchCollector, bracket each experiment
// with Begin/End, then serialize Report.
type BenchCollector struct {
	mu     sync.Mutex
	report BenchReport
	cur    *BenchExperiment
	start  time.Time
}

// NewBenchCollector returns a collector for a named report.
func NewBenchCollector(name string) *BenchCollector {
	return &BenchCollector{report: BenchReport{
		Name:        name,
		GoOS:        runtime.GOOS,
		GoArch:      runtime.GOARCH,
		CPUs:        runtime.NumCPU(),
		Parallelism: Parallelism(),
	}}
}

// Begin opens a new experiment section; subsequent cell and event samples
// are attributed to it until End.
func (b *BenchCollector) Begin(id string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.cur = &BenchExperiment{ID: id}
	b.start = time.Now()
}

// End closes the current experiment section, fixing its wall-clock and
// derived events/sec.
func (b *BenchCollector) End() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.cur == nil {
		return
	}
	b.cur.WallNS = time.Since(b.start).Nanoseconds()
	if b.cur.WallNS > 0 {
		b.cur.EventsPerSec = float64(b.cur.Events) / (float64(b.cur.WallNS) / 1e9)
	}
	b.report.Experiments = append(b.report.Experiments, *b.cur)
	b.report.TotalWallNS += b.cur.WallNS
	b.cur = nil
}

func (b *BenchCollector) recordCell(index int, wall time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.cur == nil {
		return
	}
	b.cur.Cells = append(b.cur.Cells, BenchCell{Index: index, WallNS: wall.Nanoseconds()})
}

func (b *BenchCollector) addEvents(n uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.cur == nil {
		return
	}
	b.cur.Events += n
}

// Report returns the accumulated report. Call after the final End.
func (b *BenchCollector) Report() BenchReport {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.report
}

// WriteJSON serializes the report as indented JSON.
func (b *BenchCollector) WriteJSON(w io.Writer) error {
	rep := b.Report()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// benchActive is the installed collector (nil when benchmarking is off).
// Collection is observer-only: it times cells and counts simulated
// events, never touching simulation state.
var benchActive atomic.Pointer[BenchCollector]

// SetBenchCollector installs (or, with nil, removes) the package-wide
// performance collector sampled by runCells and RunAttack.
func SetBenchCollector(c *BenchCollector) { benchActive.Store(c) }

// benchCollector returns the installed collector, or nil.
func benchCollector() *BenchCollector { return benchActive.Load() }
