package harness

import (
	"context"
	"fmt"
	"sort"

	"hammertime/internal/addr"
	"hammertime/internal/attack"
	"hammertime/internal/core"
	"hammertime/internal/cpu"
	"hammertime/internal/defense"
	"hammertime/internal/dram"
	"hammertime/internal/memctrl"
	"hammertime/internal/report"
)

// E5TRRBypass sweeps the aggressor count of a many-sided attack against
// in-DRAM TRR trackers of different sizes — the TRRespass reproduction.
// Expected shape: a tracker with n entries stops attacks up to roughly n
// aggressors and is bypassed beyond; very large counts starve themselves
// of per-row ACT budget and stop flipping even undefended.
func E5TRRBypass(ctx context.Context, horizon uint64, sides []int, trackers []int) (*report.Table, error) {
	if horizon == 0 {
		horizon = 16_000_000
	}
	if len(sides) == 0 {
		sides = []int{1, 2, 4, 8, 12, 16, 24}
	}
	if len(trackers) == 0 {
		trackers = []int{4, 8, 16}
	}
	headers := []string{"aggressors", "flips(none)"}
	for _, n := range trackers {
		headers = append(headers, fmt.Sprintf("flips(trr n=%d)", n))
	}
	tb := report.NewTable("E5: TRRespass sweep, cross-domain flips vs aggressor count (DDR4-old)", headers...)
	spec := core.DefaultSpec()
	spec.Profile = dram.DDR4Old()
	opts := AttackOpts{Horizon: horizon}
	nC := 1 + len(trackers) // columns per row: undefended + one per tracker size
	run := runGrid(ctx, GridSpec{
		ID:     "e5",
		Config: fmt.Sprintf("horizon=%d;sides=%v;trackers=%v", horizon, sides, trackers),
	}, len(sides)*nC, func(ctx context.Context, i int) (string, error) {
		k, ci := sides[i/nC], i%nC
		kind := attack.Kind{Name: fmt.Sprintf("many-sided(%d)", k), Sided: k}
		var d core.Defense = defense.None{}
		if ci > 0 {
			cfg := dram.DefaultTRR()
			cfg.TrackerEntries = trackers[ci-1]
			d = defense.TRR{Config: cfg}
		}
		out, err := RunAttackCtx(ctx, spec, d, kind, opts)
		if err != nil {
			return "", fmt.Errorf("harness: E5 %s/%d: %w", d.Name(), k, err)
		}
		return fmt.Sprint(out.CrossFlips), nil
	})
	if err := run.Err(); err != nil {
		return nil, err
	}
	for si, k := range sides {
		row := []string{fmt.Sprint(k)}
		for ci := 0; ci < nC; ci++ {
			row = append(row, run.Cell(si*nC+ci, func(s string) string { return s }))
		}
		tb.AddRow(row...)
	}
	return tb, nil
}

// E6Mode is one configuration of the ACT-interrupt experiment.
type E6Mode struct {
	Name string
	// Precise reports the triggering address (the §4.2 primitive);
	// legacy mode reproduces today's address-less ACT_COUNT event.
	Precise bool
	// RandomReset jitters the counter reset value (§4.2 anti-evasion).
	RandomReset bool
}

// E6Result is one row of the ACT-interrupt experiment.
type E6Result struct {
	Mode           string
	Overflows      uint64
	AggressorFlags uint64
	FirstFlagCycle uint64
	CrossFlips     uint64
}

// E6ActInterrupt pits an evasive double-sided attacker against the three
// counter designs of §4.2. The attacker knows the overflow threshold and
// schedules a decoy activation on exactly every N-th ACT:
//
//   - legacy (no address): nothing to act on; the attack wins;
//   - precise + fixed reset: every overflow reports the decoy; the
//     attack wins;
//   - precise + randomized reset: overflow points are unpredictable, the
//     aggressor rows get reported and refreshed; the attack loses.
func E6ActInterrupt(ctx context.Context, horizon uint64) (*report.Table, []E6Result, error) {
	if horizon == 0 {
		horizon = 4_000_000
	}
	modes := []E6Mode{
		{Name: "legacy(no-addr)", Precise: false},
		{Name: "precise+fixed-reset", Precise: true},
		{Name: "precise+random-reset", Precise: true, RandomReset: true},
	}
	tb := report.NewTable("E6: precise ACT interrupt vs evasive attacker (LPDDR4)",
		"counter mode", "overflows", "aggressor flags", "first flag cycle", "cross flips", "attack")
	run := runGrid(ctx, GridSpec{ID: "e6", Config: fmt.Sprintf("horizon=%d", horizon)},
		len(modes), func(ctx context.Context, i int) (E6Result, error) {
			res, err := runE6(ctx, modes[i], horizon)
			if err != nil {
				return E6Result{}, fmt.Errorf("harness: E6 %s: %w", modes[i].Name, err)
			}
			return res, nil
		})
	if err := run.Err(); err != nil {
		return nil, nil, err
	}
	results := run.Results
	for i, res := range results {
		if ce := run.Failed(i); ce != nil {
			errCell := report.ErrCellN(ce.Reason(), ce.Attempts)
			tb.AddRow(modes[i].Name, errCell, errCell, "-", errCell, "-")
			continue
		}
		outcome := "DEFEATED"
		if res.CrossFlips > 0 {
			outcome = "SUCCEEDS"
		}
		first := "-"
		if res.FirstFlagCycle > 0 {
			first = fmt.Sprint(res.FirstFlagCycle)
		}
		tb.AddRow(res.Mode, fmt.Sprint(res.Overflows), fmt.Sprint(res.AggressorFlags),
			first, fmt.Sprint(res.CrossFlips), outcome)
	}
	return tb, results, nil
}

func runE6(ctx context.Context, mode E6Mode, horizon uint64) (E6Result, error) {
	spec := E1Spec()
	m, err := core.NewMachine(spec)
	if err != nil {
		return E6Result{}, err
	}
	tenants, err := SetupTenants(m, 3, 170)
	if err != nil {
		return E6Result{}, err
	}
	attacker := tenants[0].Domain.ID
	radius := spec.Profile.BlastRadius
	plan, err := attack.PlanDoubleSided(m.Kernel, m.Mapper, attacker, 1, radius)
	if err != nil {
		return E6Result{}, err
	}

	// The defense: a detector-driven neighbor refresh via the refresh
	// instruction, wired to the configured counter mode.
	threshold := spec.Profile.MAC / 16
	aggressorRows := make(map[[2]int]bool)
	for _, a := range plan.Aggressors {
		aggressorRows[[2]int{a.Bank, a.Row}] = true
	}
	res := E6Result{Mode: mode.Name}
	hits := make(map[[2]int]uint64)
	rng := m.RNG.Fork()
	geom := m.Mapper.Geometry()
	handler := func(ev memctrl.ACTEvent) uint64 {
		res.Overflows++
		reset := uint64(0)
		if mode.RandomReset {
			reset = rng.Uint64n(threshold / 2)
		}
		if !ev.HasAddr {
			return reset
		}
		key := [2]int{ev.Bank, ev.Row}
		hits[key]++
		if hits[key] < 4 {
			return reset
		}
		delete(hits, key)
		if aggressorRows[key] {
			res.AggressorFlags++
			if res.FirstFlagCycle == 0 {
				res.FirstFlagCycle = ev.Cycle
			}
		}
		for dist := 1; dist <= radius; dist++ {
			for _, victim := range [2]int{ev.Row - dist, ev.Row + dist} {
				if !geom.ValidRow(victim) || !geom.SameSubarray(ev.Row, victim) {
					continue
				}
				line := m.Mapper.Unmap(addrDDR(ev.Bank, victim))
				if _, err := m.Kernel.RefreshLine(line, true, ev.Cycle); err != nil {
					// Refresh failures here are simulator bugs.
					panic(err)
				}
			}
		}
		return reset
	}
	if err := m.MC.EnableACTCounter(mode.Precise, threshold, handler); err != nil {
		return E6Result{}, err
	}

	prog, err := evasiveHammer(m, attacker, plan, int(threshold))
	if err != nil {
		return E6Result{}, err
	}
	c, err := cpu.NewCore(0, attacker, prog, m.Cache, m.MC)
	if err != nil {
		return E6Result{}, err
	}
	if _, err := m.RunCtx(ctx, []core.Agent{c}, horizon); err != nil {
		return E6Result{}, err
	}
	res.CrossFlips = m.CrossDomainFlips()
	return res, nil
}

// evasiveHammer hammers the plan's aggressors but schedules a decoy
// activation on exactly every period-th access, so a fixed-threshold
// counter always overflows on a decoy. The decoys rotate over a large
// pool of rows in a bank the attack does not otherwise touch, so no
// decoy row ever accumulates enough evidence to be flagged (which would
// trigger defender refreshes and de-align the counter).
func evasiveHammer(m *core.Machine, domain int, plan attack.Plan, period int) (cpu.Program, error) {
	if period < 2 {
		return nil, fmt.Errorf("harness: evasive hammer needs period >= 2")
	}
	decoys, err := decoyLines(m, domain, plan, 64)
	if err != nil {
		return nil, err
	}
	i := 0
	di := 0
	ai := 0
	return cpu.ProgramFunc(func() (cpu.Access, bool) {
		i++
		if i%period == 0 {
			line := decoys[di%len(decoys)]
			di++
			return cpu.Access{Line: line, Flush: true}, true
		}
		// A dedicated aggressor index keeps strict row alternation across
		// decoy insertions: repeating a row would produce a row-buffer hit
		// (no ACT) and silently desynchronize the attacker's counter model.
		va := plan.AggressorVAs[ai%len(plan.AggressorVAs)]
		ai++
		line, err := m.Kernel.Translate(domain, va)
		if err != nil {
			return cpu.Access{}, false
		}
		return cpu.Access{Line: line, Flush: true}, true
	}), nil
}

// decoyLines picks up to n attacker-owned lines in distinct rows of one
// bank the plan does not hammer, so consecutive decoy accesses conflict
// in the row buffer and always activate.
func decoyLines(m *core.Machine, domain int, plan attack.Plan, n int) ([]uint64, error) {
	avoid := make(map[int]bool)
	for _, a := range plan.Aggressors {
		avoid[a.Bank] = true
	}
	g := m.Mapper.Geometry()
	rows := make(map[[2]int]uint64)
	lpp := uint64(4096 / g.LineBytes)
	totalFrames := g.TotalBytes() / 4096
	for frame := uint64(0); frame < totalFrames; frame++ {
		owner, ok := m.Kernel.OwnerOfLine(frame * lpp)
		if !ok || owner != domain {
			continue
		}
		for l := uint64(0); l < lpp; l++ {
			line := frame*lpp + l
			d := m.Mapper.Map(line)
			if avoid[d.Bank] {
				continue
			}
			key := [2]int{d.Bank, d.Row}
			if _, have := rows[key]; !have {
				rows[key] = line
			}
		}
	}
	// Pick the bank with the most candidate rows, deterministically.
	byBank := make(map[int][]uint64)
	for key, line := range rows {
		byBank[key[0]] = append(byBank[key[0]], line)
	}
	bestBank, best := -1, 0
	for b, lines := range byBank {
		if len(lines) > best || (len(lines) == best && (bestBank == -1 || b < bestBank)) {
			bestBank, best = b, len(lines)
		}
	}
	if best < 2 {
		return nil, fmt.Errorf("harness: no decoy rows available")
	}
	lines := byBank[bestBank]
	sort.Slice(lines, func(i, j int) bool { return lines[i] < lines[j] })
	if len(lines) > n {
		lines = lines[:n]
	}
	return lines, nil
}

// addrDDR builds a column-0 DDR address for a bank-local row.
func addrDDR(bank, row int) addr.DDR { return addr.DDR{Bank: bank, Row: row} }

// E8Enclave contrasts the §4.4 enclave outcomes: the same double-sided
// attack silently corrupts a normal victim, but merely denies service
// (machine lockup) when the victim's memory is integrity-checked.
func E8Enclave(ctx context.Context, horizon uint64) (*report.Table, error) {
	if horizon == 0 {
		horizon = 4_000_000
	}
	tb := report.NewTable("E8: enclave integrity semantics under attack (LPDDR4, no defense)",
		"victim memory", "cross flips", "machine locked up", "outcome")
	run := runGrid(ctx, GridSpec{ID: "e8", Config: fmt.Sprintf("horizon=%d", horizon)},
		2, func(ctx context.Context, i int) (e8Cell, error) {
			out, err := RunAttackCtx(ctx, E1Spec(), defense.None{}, attack.Kind{Name: "double-sided", Sided: 2},
				AttackOpts{Horizon: horizon, VictimIntegrity: i == 1})
			if err != nil {
				return e8Cell{}, fmt.Errorf("harness: E8 integrity=%v: %w", i == 1, err)
			}
			return e8Cell{CrossFlips: out.CrossFlips, LockedUp: out.LockedUp}, nil
		})
	if err := run.Err(); err != nil {
		return nil, err
	}
	for i, integrity := range []bool{false, true} {
		label := "plain"
		if integrity {
			label = "integrity-checked enclave"
		}
		if ce := run.Failed(i); ce != nil {
			errCell := report.ErrCellN(ce.Reason(), ce.Attempts)
			tb.AddRow(label, errCell, errCell, "-")
			continue
		}
		out := run.Results[i]
		outcome := "silent cross-domain corruption"
		if integrity {
			outcome = "detected: denial of service only"
			if !out.LockedUp {
				outcome = "UNEXPECTED: no lockup"
			}
		}
		tb.AddRow(label, fmt.Sprint(out.CrossFlips), fmt.Sprint(out.LockedUp), outcome)
	}
	return tb, nil
}

// e8Cell is E8's checkpointable cell result.
type e8Cell struct {
	CrossFlips uint64 `json:"cross_flips"`
	LockedUp   bool   `json:"locked_up"`
}
