package harness

import (
	"context"
	"strings"
	"testing"
)

func TestE2InterleavingShape(t *testing.T) {
	tb, results, err := E2Interleaving(context.Background(), 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", tb)
	get := func(scheme, wl string) E2Result {
		for _, r := range results {
			if r.Scheme == scheme && r.Workload == wl {
				return r
			}
		}
		t.Fatalf("missing cell %s/%s", scheme, wl)
		return E2Result{}
	}
	for _, wl := range []string{"stream", "random"} {
		full := get("line-interleave", wl)
		bank := get("bank-partition(4)", wl)
		sub := get("subarray-isolated(4)", wl)
		// The §4.1 claim: bank partitioning costs double-digit percent
		// (Tang et al. measured >18%), subarray isolation stays close to
		// full interleaving.
		if bank.LossVsInterleave < 15 {
			t.Errorf("%s: bank partitioning lost only %.1f%%, expected substantial BLP loss",
				wl, bank.LossVsInterleave)
		}
		if sub.LossVsInterleave > 5 {
			t.Errorf("%s: subarray isolation lost %.1f%%, expected near-zero",
				wl, sub.LossVsInterleave)
		}
		if full.Accesses == 0 {
			t.Errorf("%s: no baseline throughput", wl)
		}
	}
}

func TestE6ActInterruptShape(t *testing.T) {
	tb, results, err := E6ActInterrupt(context.Background(), 3_000_000)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", tb)
	byMode := make(map[string]E6Result)
	for _, r := range results {
		byMode[r.Mode] = r
	}
	if r := byMode["legacy(no-addr)"]; r.CrossFlips == 0 {
		t.Error("legacy counter defeated the attack — it has no address to act on (§4.2)")
	}
	if r := byMode["precise+fixed-reset"]; r.CrossFlips == 0 {
		t.Error("evasive attacker should beat a fixed-reset counter")
	} else if r.AggressorFlags != 0 {
		t.Errorf("fixed reset flagged aggressors %d times despite perfect evasion", r.AggressorFlags)
	}
	if r := byMode["precise+random-reset"]; r.CrossFlips != 0 {
		t.Errorf("randomized reset failed: %d cross flips", r.CrossFlips)
	} else if r.AggressorFlags == 0 {
		t.Error("randomized reset never identified an aggressor")
	}
}

func TestE7RefreshPathShape(t *testing.T) {
	tb, results, err := E7RefreshPath(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", tb)
	for _, r := range results {
		switch r.Method {
		case E7RefreshInstr, E7RefNeighbors:
			if !r.Refreshed {
				t.Errorf("%s (%s): failed to refresh", r.Method, r.BankState)
			}
			if r.BusTransfers != 0 {
				t.Errorf("%s: used %d bus transfers, want 0 (no data movement)", r.Method, r.BusTransfers)
			}
		case E7LoadPath:
			if r.BusTransfers == 0 {
				t.Errorf("load path reported no bus transfer")
			}
			if r.BankState == "victim row open" && r.Refreshed {
				t.Error("load path claimed success on an open row (no ACT was issued)")
			}
			if r.BankState == "other row open" && !r.Refreshed {
				t.Error("load path failed even in its favorable case")
			}
		}
	}
}

func TestE8EnclaveShape(t *testing.T) {
	tb, err := E8Enclave(context.Background(), 2_000_000)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", tb)
	s := tb.String()
	if !strings.Contains(s, "denial of service") {
		t.Fatalf("integrity-checked run missing DoS outcome:\n%s", s)
	}
	if strings.Contains(s, "UNEXPECTED") {
		t.Fatalf("enclave run unexpected outcome:\n%s", s)
	}
}

func TestE1MatrixSmall(t *testing.T) {
	// A two-defense slice keeps the full pipeline covered without
	// repeating the exhaustive matrix test.
	tb, err := E1Matrix(context.Background(), []string{"none", "subarray"}, 12, AttackOpts{Horizon: 2_000_000})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", tb)
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
}

func TestE5TRRBypassSmall(t *testing.T) {
	tb, err := E5TRRBypass(context.Background(), 16_000_000, []int{2, 12}, []int{4})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", tb)
	// Row order: k=2 then k=12. TRR(4) must hold at k=2 and leak at k=12.
	if tb.Rows[0][2] != "0" {
		t.Errorf("trr(4) leaked at 2 aggressors: %v", tb.Rows[0])
	}
	if tb.Rows[1][2] == "0" {
		t.Errorf("trr(4) held at 12 aggressors (TRRespass shape lost): %v", tb.Rows[1])
	}
}

func TestE3DensityScalingSmall(t *testing.T) {
	tb, err := E3DensityScaling(context.Background(), 6_000_000)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", tb)
	if len(tb.Rows) != 5 {
		t.Fatalf("rows = %d, want 5 generations", len(tb.Rows))
	}
}

func TestE4OverheadSmall(t *testing.T) {
	tb, err := E4Overhead(context.Background(), 600_000, []float64{0.001})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", tb)
	if len(tb.Rows) < 10 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
}

func TestE9ECCShape(t *testing.T) {
	tb, outs, err := E9ECC(context.Background(), []uint64{2_000_000, 16_000_000})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", tb)
	// Order: light/plain, light/scrub, heavy/plain, heavy/scrub.
	light, heavy, heavyScrub := outs[0], outs[2], outs[3]
	if light.RawFlips == 0 {
		t.Fatal("light attack produced no raw flips (dead experiment)")
	}
	if light.Corrected == 0 {
		t.Error("ECC corrected nothing under the light attack")
	}
	if heavy.Detected == 0 {
		t.Error("sustained attack never tripped a machine check")
	}
	if heavy.Silent == 0 {
		t.Error("sustained attack never bypassed SECDED (Cojocar shape lost)")
	}
	if heavy.RawFlips <= light.RawFlips {
		t.Error("heavier attack produced no more flips")
	}
	// Patrol scrubbing must reduce the uncorrectable+silent residue: it
	// repairs singles before they pair up.
	if heavyScrub.Detected+heavyScrub.Silent >= heavy.Detected+heavy.Silent {
		t.Errorf("scrubbing did not reduce uncorrectable damage: %d+%d vs %d+%d",
			heavyScrub.Detected, heavyScrub.Silent, heavy.Detected, heavy.Silent)
	}
}

func TestE10HalfDoubleShape(t *testing.T) {
	tb, err := E10HalfDouble(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", tb)
	// Row 0: internal recharge — no relayed flips. Row 1: activate-based
	// cures relay beyond the radius.
	if tb.Rows[0][3] != "0" {
		t.Errorf("internal recharge relayed flips: %v", tb.Rows[0])
	}
	if tb.Rows[1][3] == "0" {
		t.Errorf("activate-based cures relayed nothing (Half-Double shape lost): %v", tb.Rows[1])
	}
}
