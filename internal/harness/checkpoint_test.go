package harness

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"

	"hammertime/internal/report"
)

func TestCheckpointResumeSkipsCompletedCells(t *testing.T) {
	resetRobustness(t)
	path := filepath.Join(t.TempDir(), "grid.ckpt")
	spec := GridSpec{ID: "t-ck", Config: "c1", Workers: 1}

	ck, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	SetCheckpoint(ck)
	var calls atomic.Int64
	fn := func(_ context.Context, i int) (int, error) {
		calls.Add(1)
		return 3 * i, nil
	}
	run := runGrid(context.Background(), spec, 5, fn)
	if err := run.Err(); err != nil {
		t.Fatal(err)
	}
	if run.Restored != 0 || calls.Load() != 5 || ck.Added() != 5 {
		t.Fatalf("first run: restored=%d calls=%d added=%d", run.Restored, calls.Load(), ck.Added())
	}
	if err := ck.Close(); err != nil {
		t.Fatal(err)
	}

	ck2, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	defer ck2.Close()
	if ck2.Loaded() != 5 {
		t.Fatalf("reopened checkpoint holds %d cells, want 5", ck2.Loaded())
	}
	SetCheckpoint(ck2)
	calls.Store(0)
	again := runGrid(context.Background(), spec, 5, fn)
	if err := again.Err(); err != nil {
		t.Fatal(err)
	}
	if again.Restored != 5 || calls.Load() != 0 {
		t.Fatalf("resume: restored=%d calls=%d, want 5 and 0", again.Restored, calls.Load())
	}
	for i := range again.Results {
		if again.Results[i] != run.Results[i] {
			t.Fatalf("cell %d: restored %d, computed %d", i, again.Results[i], run.Results[i])
		}
	}

	// A different config must never restore the stale cells.
	other := runGrid(context.Background(), GridSpec{ID: "t-ck", Config: "c2", Workers: 1}, 5, fn)
	if err := other.Err(); err != nil {
		t.Fatal(err)
	}
	if other.Restored != 0 || calls.Load() != 5 {
		t.Fatalf("config change: restored=%d calls=%d, want 0 and 5", other.Restored, calls.Load())
	}

	// Anonymous grids (empty ID) never touch the checkpoint.
	calls.Store(0)
	anon := runGrid(context.Background(), GridSpec{Workers: 1}, 3, fn)
	if err := anon.Err(); err != nil {
		t.Fatal(err)
	}
	if anon.Restored != 0 || calls.Load() != 3 {
		t.Fatalf("anonymous grid: restored=%d calls=%d", anon.Restored, calls.Load())
	}
}

// TestContextCheckpointScoped pins the per-job checkpoint path used by
// hammerd's durable job store: a checkpoint carried by the context is
// the one a grid consults and appends to, taking precedence over the
// process-wide SetCheckpoint slot — so concurrent daemon jobs each
// resume from their own file instead of sharing (and clobbering) one
// global checkpoint.
func TestContextCheckpointScoped(t *testing.T) {
	resetRobustness(t)
	dir := t.TempDir()
	spec := GridSpec{ID: "t-ctxck", Config: "c1", Workers: 1}

	global, err := OpenCheckpoint(filepath.Join(dir, "global.ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	defer global.Close()
	SetCheckpoint(global)

	jobPath := filepath.Join(dir, "job-1.ckpt")
	jobCk, err := OpenCheckpoint(jobPath)
	if err != nil {
		t.Fatal(err)
	}
	ctx := WithCheckpoint(context.Background(), jobCk)
	var calls atomic.Int64
	fn := func(_ context.Context, i int) (int, error) {
		calls.Add(1)
		return 7 * i, nil
	}
	if err := runGrid(ctx, spec, 4, fn).Err(); err != nil {
		t.Fatal(err)
	}
	if jobCk.Added() != 4 {
		t.Fatalf("context checkpoint recorded %d cells, want 4", jobCk.Added())
	}
	if global.Added() != 0 {
		t.Fatalf("global checkpoint received %d cells despite the context override", global.Added())
	}
	if err := jobCk.Close(); err != nil {
		t.Fatal(err)
	}

	// A restarted job reopens its own file and resumes without
	// recomputing; the global slot is still untouched.
	jobCk2, err := OpenCheckpoint(jobPath)
	if err != nil {
		t.Fatal(err)
	}
	defer jobCk2.Close()
	calls.Store(0)
	again := runGrid(WithCheckpoint(context.Background(), jobCk2), spec, 4, fn)
	if err := again.Err(); err != nil {
		t.Fatal(err)
	}
	if again.Restored != 4 || calls.Load() != 0 {
		t.Fatalf("resume via context: restored=%d calls=%d, want 4 and 0", again.Restored, calls.Load())
	}
	if global.Added() != 0 {
		t.Fatalf("global checkpoint gained %d cells on resume", global.Added())
	}
	// WithCheckpoint(nil) is a no-op: the global slot applies again.
	if noop := WithCheckpoint(context.Background(), nil); checkpointFrom(noop) != nil {
		t.Fatal("nil checkpoint must not be carried")
	}
}

func TestCheckpointTrimsTornTail(t *testing.T) {
	resetRobustness(t)
	path := filepath.Join(t.TempDir(), "grid.ckpt")
	spec := GridSpec{ID: "t-torn", Config: "v1", Workers: 1}

	ck, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	SetCheckpoint(ck)
	if err := runGrid(context.Background(), spec, 4, func(_ context.Context, i int) (int, error) { return i, nil }).Err(); err != nil {
		t.Fatal(err)
	}
	if err := ck.Close(); err != nil {
		t.Fatal(err)
	}
	clean, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Simulate a SIGKILL mid-append: a record fragment without newline.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"key":"deadbeef","grid":"t-torn","ce`); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	ck2, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if ck2.Loaded() != 4 {
		t.Fatalf("loaded %d cells from torn file, want 4", ck2.Loaded())
	}
	if err := ck2.Close(); err != nil {
		t.Fatal(err)
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(after, clean) {
		t.Fatalf("torn tail not trimmed:\n%q\nwant\n%q", after, clean)
	}

	// A corrupt full line likewise stops the load without failing it.
	if err := os.WriteFile(path, append(append([]byte{}, clean...), []byte("not json\n")...), 0o644); err != nil {
		t.Fatal(err)
	}
	ck3, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	defer ck3.Close()
	if ck3.Loaded() != 4 {
		t.Fatalf("loaded %d cells past a corrupt line, want 4", ck3.Loaded())
	}
}

// TestE1ResumeByteIdentical is the acceptance test of the checkpoint
// design: an E1 run killed mid-grid (here: aborted by an injected cell
// failure) and restarted with -resume must produce a table byte-identical
// to an uninterrupted run's.
func TestE1ResumeByteIdentical(t *testing.T) {
	resetRobustness(t)
	defenses := []string{"none", "trr"}
	opts := AttackOpts{Horizon: 300_000, PagesPerTenant: 48, Parallelism: 1}

	render := func(tb *report.Table) []byte {
		var buf bytes.Buffer
		if err := tb.Render(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	// Baseline: uninterrupted, uncheckpointed.
	tb, err := E1Matrix(context.Background(), defenses, 4, opts)
	if err != nil {
		t.Fatal(err)
	}
	want := render(tb)

	// Interrupted run: cell 5 fails (strict mode aborts the grid), but
	// cells completed before it are already checkpointed.
	path := filepath.Join(t.TempDir(), "e1.ckpt")
	ck, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	SetCheckpoint(ck)
	t.Setenv(failCellEnv, "e1:5:error")
	if _, err := E1Matrix(context.Background(), defenses, 4, opts); err == nil {
		t.Fatal("injected failure did not abort the strict run")
	}
	if err := ck.Close(); err != nil {
		t.Fatal(err)
	}
	if ck.Added() == 0 {
		t.Fatal("interrupted run checkpointed no cells")
	}

	// Restart: the failpoint is gone, completed cells restore from the
	// checkpoint, the rest compute fresh.
	t.Setenv(failCellEnv, "")
	ck2, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	defer ck2.Close()
	if ck2.Loaded() != ck.Added() {
		t.Fatalf("restart loaded %d cells, interrupted run wrote %d", ck2.Loaded(), ck.Added())
	}
	SetCheckpoint(ck2)
	tb2, err := E1Matrix(context.Background(), defenses, 4, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := render(tb2); !bytes.Equal(got, want) {
		t.Errorf("resumed table differs from uninterrupted run:\n--- resumed ---\n%s\n--- baseline ---\n%s", got, want)
	}
}
