package harness

import (
	"testing"

	"hammertime/internal/attack"
	"hammertime/internal/core"
	"hammertime/internal/defense"
	"hammertime/internal/dram"
)

// matrixSpec is the E1 configuration: a susceptible LPDDR4-class module
// (the emerging-DRAM regime §3 worries about).
func matrixSpec() core.MachineSpec {
	spec := core.DefaultSpec()
	spec.Profile = dram.LPDDR4()
	return spec
}

// TestProtectionMatrix verifies the E1 "who wins" shape: every attack
// corrupts the undefended machine; each defense class stops the attacks
// its mechanism covers and fails exactly where the paper says it fails
// (TRR vs many-sided, ANVIL vs DMA).
func TestProtectionMatrix(t *testing.T) {
	attacks := attack.Catalog(12)
	// expect[defense][attack] = true if cross-domain corruption expected.
	cases := []struct {
		defense string
		expect  map[string]bool
	}{
		{"none", map[string]bool{
			"single-sided": true, "double-sided": true,
			"many-sided(12)": true, "dma-double-sided": true,
		}},
		// In-DRAM TRR: beats few-sided (CPU or DMA), bypassed by >n sides.
		{"trr", map[string]bool{
			"single-sided": false, "double-sided": false,
			"many-sided(12)": true, "dma-double-sided": false,
		}},
		// Isolation class: no cross-domain pairs exist at all.
		{"zebram", allFalse(attacks)},
		{"bankpart", allFalse(attacks)},
		{"subarray", allFalse(attacks)},
		// Frequency class: per-row rates bounded at the controller.
		{"blockhammer", allFalse(attacks)},
		{"actremap", allFalse(attacks)},
		{"actlock", allFalse(attacks)},
		// Refresh class over the new primitives: victims refreshed in time.
		{"swrefresh", allFalse(attacks)},
		{"swrefresh-refneighbors", allFalse(attacks)},
		{"graphene", allFalse(attacks)},
		// ANVIL samples CPU counters only: DMA hammering is invisible.
		{"anvil", map[string]bool{
			"single-sided": false, "double-sided": false,
			"many-sided(12)": false, "dma-double-sided": true,
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.defense, func(t *testing.T) {
			d, err := defense.New(tc.defense)
			if err != nil {
				t.Fatal(err)
			}
			for _, kind := range attacks {
				out, err := RunAttack(matrixSpec(), d, kind, AttackOpts{})
				if err != nil {
					t.Fatalf("%s vs %s: %v", tc.defense, kind.Name, err)
				}
				want := tc.expect[kind.Name]
				got := out.Succeeded()
				t.Logf("%s vs %s: plan=%s cross-flips=%d total=%d",
					tc.defense, kind.Name, out.PlanKind, out.CrossFlips, out.Flips)
				if got != want {
					t.Errorf("%s vs %s: cross-domain corruption = %v, want %v (plan %s, %d cross flips)",
						tc.defense, kind.Name, got, want, out.PlanKind, out.CrossFlips)
				}
			}
		})
	}
}

func allFalse(attacks []attack.Kind) map[string]bool {
	m := make(map[string]bool, len(attacks))
	for _, a := range attacks {
		m[a.Name] = false
	}
	return m
}
