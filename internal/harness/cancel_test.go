package harness

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"hammertime/internal/attack"
	"hammertime/internal/core"
	"hammertime/internal/defense"
	"hammertime/internal/obs"
	"hammertime/internal/report"
)

// cancelOnKind is an obs sink that cancels a context when it has seen
// the configured event kind `after` times — the instrument for
// cancelling a simulation at a precisely chosen internal moment (mid
// refresh window, during an admission throttle, on a TRR cure).
type cancelOnKind struct {
	kind   obs.Kind
	after  int
	cancel context.CancelCauseFunc
	seen   atomic.Int64
}

func (s *cancelOnKind) Record(ev obs.Event) {
	if ev.Kind == s.kind && s.seen.Add(1) == int64(s.after) {
		s.cancel(fmt.Errorf("test: cancelled on %s #%d", ev.Kind, s.after))
	}
}

func (s *cancelOnKind) Flush() error { return nil }

// cancelDuring runs a double-sided attack against the named defense and
// cancels it the moment the simulator emits the given event kind. Under
// `go test` every machine carries the invariant auditor, and RunCtx's
// teardown re-verifies the full shadow state — so this asserts the
// paper-critical property that cancellation at an arbitrary internal
// event leaves a consistent machine, never a torn one.
func cancelDuring(t *testing.T, defenseName string, kind obs.Kind, after int) {
	t.Helper()
	ctx, cancel := context.WithCancelCause(context.Background())
	defer cancel(nil)
	d, err := defense.New(defenseName)
	if err != nil {
		t.Fatal(err)
	}
	sink := &cancelOnKind{kind: kind, after: after, cancel: cancel}
	_, err = RunAttackCtx(ctx, matrixSpec(), d, attack.Kind{Name: "double-sided", Sided: 2},
		AttackOpts{Horizon: 2_000_000, Observer: obs.NewRecorder(sink)})
	if sink.seen.Load() < int64(after) {
		t.Fatalf("simulation finished before emitting %d %v events (saw %d); pick a longer horizon",
			after, kind, sink.seen.Load())
	}
	if !errors.Is(err, core.ErrCancelled) {
		t.Fatalf("want core.ErrCancelled, got %v", err)
	}
	// A violation detected during teardown is wrapped into the
	// cancellation error by core.cancelRun; its absence is the auditor
	// reporting zero violations at the cancellation boundary.
	if strings.Contains(err.Error(), "inconsistent") {
		t.Fatalf("cancellation left auditor-inconsistent state: %v", err)
	}
}

func TestCancelDuringRefreshWindow(t *testing.T) {
	// Cancel on the 40th periodic REF: mid refresh window, where a torn
	// catch-up would break the auditor's exact-tREFI-cadence invariant.
	cancelDuring(t, "none", obs.KindREF, 40)
}

func TestCancelDuringAdmissionThrottle(t *testing.T) {
	// Cancel while BlockHammer is actively delaying the attacker.
	cancelDuring(t, "blockhammer", obs.KindThrottle, 3)
}

func TestCancelDuringTRRCure(t *testing.T) {
	// Cancel on an in-DRAM TRR mitigation curing a victim row.
	cancelDuring(t, "trr", obs.KindTRRCure, 3)
}

// TestCancelledRunReportsCause pins the error shape: the cause passed
// to the context is preserved through the cancellation chain.
func TestCancelledRunReportsCause(t *testing.T) {
	ctx, cancel := context.WithCancelCause(context.Background())
	rootCause := errors.New("test: operator abort")
	sink := &cancelOnKind{kind: obs.KindREF, after: 5, cancel: func(error) { cancel(rootCause) }}
	_, err := RunAttackCtx(ctx, matrixSpec(), defense.None{}, attack.Kind{Name: "double-sided", Sided: 2},
		AttackOpts{Horizon: 2_000_000, Observer: obs.NewRecorder(sink)})
	if !errors.Is(err, rootCause) {
		t.Fatalf("cancellation cause lost: %v", err)
	}
}

// TestCellTimeoutReapsGoroutine is the goroutine-leak regression test:
// before true cancellation, a timed-out cell's goroutine was abandoned
// to run to completion in the background — a grid of slow cells under a
// deadline leaked one goroutine (and one full simulation's CPU) per
// cell. Now the deadline cancels the cell's context and the harness
// reaps the goroutine; the count must return to baseline.
func TestCellTimeoutReapsGoroutine(t *testing.T) {
	resetRobustness(t)
	SetPolicy(Policy{FailSoft: true, CellTimeout: 30 * time.Millisecond})

	baseline := runtime.NumGoroutine()
	const cells = 8
	run := runGrid(context.Background(), GridSpec{ID: "t-reap", Workers: 4}, cells,
		func(ctx context.Context, i int) (int, error) {
			// A context-aware cell that would run for minutes: it must be
			// cut off by the deadline, not abandoned.
			select {
			case <-ctx.Done():
				return 0, context.Cause(ctx)
			case <-time.After(5 * time.Minute):
				return 1, nil
			}
		})
	for i := 0; i < cells; i++ {
		ce := run.Failed(i)
		if ce == nil || !ce.TimedOut {
			t.Fatalf("cell %d: want timeout failure, got %v", i, ce)
		}
		if strings.Contains(ce.Err.Error(), "abandoned") {
			t.Fatalf("cell %d fell back to abandonment instead of reaping: %v", i, ce.Err)
		}
	}
	// The reap is synchronous (attemptCell waits for the cell goroutine
	// before returning), so only scheduler noise remains.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline+1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: baseline %d, now %d", baseline, runtime.NumGoroutine())
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
}

// TestCellTimeoutCancelsSimulation asserts the deadline reaches an
// actual machine: a long-horizon cell under a short deadline reports a
// timeout whose cause is the simulator's cooperative cancellation, and
// the wall-clock cost is the deadline, not the full simulation.
func TestCellTimeoutCancelsSimulation(t *testing.T) {
	resetRobustness(t)
	SetPolicy(Policy{FailSoft: true, CellTimeout: 50 * time.Millisecond})
	start := time.Now()
	run := runGrid(context.Background(), GridSpec{ID: "t-simreap", Workers: 1}, 1,
		func(ctx context.Context, i int) (uint64, error) {
			out, err := RunAttackCtx(ctx, matrixSpec(), defense.None{},
				attack.Kind{Name: "double-sided", Sided: 2},
				AttackOpts{Horizon: 4_000_000_000}) // hours of simulation
			return out.Flips, err
		})
	ce := run.Failed(0)
	if ce == nil || !ce.TimedOut {
		t.Fatalf("want timeout failure, got %v", ce)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("timed-out cell blocked the grid for %v; cancellation did not reach the machine", elapsed)
	}
}

// TestGridCancellationStopsEarly asserts a cancelled grid stops
// scheduling cells and reports the cancellation even under fail-soft
// (a partial table must never pass for a complete one).
func TestGridCancellationStopsEarly(t *testing.T) {
	resetRobustness(t)
	SetPolicy(Policy{FailSoft: true})
	ctx, cancel := context.WithCancelCause(context.Background())
	var started atomic.Int64
	run := runGrid(ctx, GridSpec{ID: "t-gcancel", Workers: 2}, 64,
		func(ctx context.Context, i int) (int, error) {
			if started.Add(1) == 4 {
				cancel(errors.New("test: stop the grid"))
			}
			select {
			case <-ctx.Done():
				return 0, context.Cause(ctx)
			case <-time.After(50 * time.Millisecond):
				return i, nil
			}
		})
	if err := run.Err(); err == nil || !strings.Contains(err.Error(), "stop the grid") {
		t.Fatalf("cancelled fail-soft grid must surface the cancellation, got %v", err)
	}
	if n := started.Load(); n >= 64 {
		t.Fatalf("grid kept scheduling after cancellation: %d cells started", n)
	}
}

// TestRetryBackoffDeterministic pins the backoff schedule: a pure
// function of (base, grid, cell, attempt) — same values on every call —
// doubling per attempt, capped, and jittered into [d/2, d).
func TestRetryBackoffDeterministic(t *testing.T) {
	base := 10 * time.Millisecond
	for attempt := 1; attempt <= 10; attempt++ {
		d1 := RetryBackoff(base, "e1", 7, attempt)
		d2 := RetryBackoff(base, "e1", 7, attempt)
		if d1 != d2 {
			t.Fatalf("attempt %d: backoff not deterministic: %v vs %v", attempt, d1, d2)
		}
		exp := base
		for k := 1; k < attempt && exp < 64*base; k++ {
			exp *= 2
		}
		if exp > 64*base {
			exp = 64 * base
		}
		if d1 < exp/2 || d1 >= exp {
			t.Fatalf("attempt %d: backoff %v outside [%v, %v)", attempt, d1, exp/2, exp)
		}
	}
	if a, b := RetryBackoff(base, "e1", 1, 1), RetryBackoff(base, "e1", 2, 1); a == b {
		t.Fatalf("different cells produced identical jitter %v; RNG not keyed by cell", a)
	}
	if d := RetryBackoff(0, "e1", 1, 1); d != 0 {
		t.Fatalf("zero base must mean no delay, got %v", d)
	}
}

// TestRetriesSleepBackoffAndAnnotateAttempts asserts the retry loop
// actually sleeps the deterministic schedule between attempts and that
// the exhausted cell renders its attempt count in the table placeholder.
func TestRetriesSleepBackoffAndAnnotateAttempts(t *testing.T) {
	resetRobustness(t)
	base := 20 * time.Millisecond
	SetPolicy(Policy{FailSoft: true, Retries: 2, Backoff: base})
	start := time.Now()
	run := runGrid(context.Background(), GridSpec{ID: "t-backoff", Workers: 1}, 1,
		func(_ context.Context, i int) (int, error) {
			return 0, errors.New("always fails")
		})
	elapsed := time.Since(start)
	// Two retries sleep RetryBackoff(base, grid, 0, 1) + (.., 2); the
	// jitter floor is half of each doubled base.
	min := RetryBackoff(base, "t-backoff", 0, 1)/2 + RetryBackoff(base, "t-backoff", 0, 2)/2
	if elapsed < min {
		t.Fatalf("retries did not back off: %v elapsed, want >= %v", elapsed, min)
	}
	ce := run.Failed(0)
	if ce == nil || ce.Attempts != 3 {
		t.Fatalf("want 3 attempts recorded, got %+v", ce)
	}
	got := run.Cell(0, func(int) string { return "ok" })
	if got != report.ErrCellN("always fails", 3) {
		t.Fatalf("cell rendering lost the attempt count: %q", got)
	}
	if !strings.HasSuffix(got, "x3)") {
		t.Fatalf("ERR cell must carry the attempt count: %q", got)
	}
}

// TestBackoffAbortsOnCancel asserts a grid cancelled during a backoff
// sleep stops immediately instead of finishing the retry schedule.
func TestBackoffAbortsOnCancel(t *testing.T) {
	resetRobustness(t)
	SetPolicy(Policy{FailSoft: true, Retries: 10, Backoff: time.Hour})
	ctx, cancel := context.WithCancelCause(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel(errors.New("test: abort backoff"))
	}()
	start := time.Now()
	run := runGrid(ctx, GridSpec{ID: "t-abort", Workers: 1}, 1,
		func(_ context.Context, i int) (int, error) {
			return 0, errors.New("fails fast")
		})
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("cancelled backoff slept %v", elapsed)
	}
	if err := run.Err(); err == nil {
		t.Fatal("cancelled grid must report an error")
	}
}
