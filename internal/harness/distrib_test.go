package harness

import (
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

// TestCellKeyGolden pins the exact content-address format. These hashes
// are a public contract: checkpoints, the cluster result cache and the
// coordinator/worker protocol all key by them. If this test breaks, you
// changed the key's inputs or format — every checkpoint and cache file
// on disk is now invalid, and mixed-version clusters will refuse each
// other's cells. That may be intended (bump sim.DeterminismEpoch for
// result-changing fixes), but it must be deliberate: update the golden
// values only alongside the epoch bump or format change that explains
// them.
//
// Pinned inputs: DeterminismEpoch 2, the core.DefaultSpec seed, and the
// "<id>|<config>|epoch=E|seed=S|cell=N" FNV-64a layout.
func TestCellKeyGolden(t *testing.T) {
	spec := GridSpec{ID: "golden-grid", Config: "config-v1"}
	if got, want := CellKey(spec, 7), "049934eb27ea3468"; got != want {
		t.Fatalf("CellKey(golden-grid, config-v1, 7) = %s, want %s — key format or inputs changed; see test comment", got, want)
	}
	// Every input must move the hash.
	base := CellKey(spec, 7)
	if CellKey(spec, 8) == base {
		t.Fatal("cell index does not enter the key")
	}
	if CellKey(GridSpec{ID: "other-grid", Config: "config-v1"}, 7) == base {
		t.Fatal("grid id does not enter the key")
	}
	if CellKey(GridSpec{ID: "golden-grid", Config: "config-v2"}, 7) == base {
		t.Fatal("grid config does not enter the key")
	}
	if len(base) != 16 || strings.ToLower(base) != base {
		t.Fatalf("key %q is not 16 lowercase hex digits", base)
	}
}

// fastE1 is a small real E1 slice: 2 defenses x 4 kinds = 8 cells.
func fastE1() ([]string, int, AttackOpts) {
	return []string{"none", "para"}, 4, AttackOpts{Horizon: 200_000, Tenants: 2, PagesPerTenant: 60}
}

func TestCellCaptureNarrowsGrid(t *testing.T) {
	defenses, sided, opts := fastE1()
	capture := NewCellCapture("e1", []int{1, 3, 99})
	ctx := WithCellCapture(context.Background(), capture)
	if _, err := E1Matrix(ctx, defenses, sided, opts); err != nil {
		t.Fatal(err)
	}
	if err := capture.Err(); err != nil {
		t.Fatal(err)
	}
	if !capture.Reached() {
		t.Fatal("target grid not reached")
	}
	if capture.Config() == "" {
		t.Fatal("config string not captured")
	}
	got := capture.Results()
	if len(got) != 2 {
		t.Fatalf("captured %d cells, want 2 (out-of-range 99 dropped)", len(got))
	}
	spec := GridSpec{ID: "e1", Config: capture.Config()}
	for _, i := range []int{1, 3} {
		cell, ok := got[i]
		if !ok {
			t.Fatalf("cell %d missing", i)
		}
		if cell.Key != CellKey(spec, i) {
			t.Fatalf("cell %d key %s, want %s", i, cell.Key, CellKey(spec, i))
		}
		if !json.Valid(cell.Result) || len(cell.Result) == 0 {
			t.Fatalf("cell %d result is not JSON: %s", i, cell.Result)
		}
	}
}

func TestCellCaptureSkipsOtherGrids(t *testing.T) {
	defenses, sided, opts := fastE1()
	capture := NewCellCapture("some-other-grid", []int{0})
	ctx := WithCellCapture(context.Background(), capture)
	// The run must neither error nor simulate: a worker assigned grid X
	// skips experiment phases that build other grids.
	if _, err := E1Matrix(ctx, defenses, sided, opts); err != nil {
		t.Fatal(err)
	}
	if capture.Reached() {
		t.Fatal("capture for a different grid claims the target ran")
	}
	if len(capture.Results()) != 0 {
		t.Fatal("cells captured for the wrong grid")
	}
}

// captureDelegate computes cells in-process through a CellCapture — the
// local-fallback shape — so the delegate restore path can be tested
// against the serial path without HTTP.
type captureDelegate struct {
	t       *testing.T
	calls   int
	partial bool // return one cell short, to test strictness
	fail    error
}

func (d *captureDelegate) RunGrid(ctx context.Context, spec GridSpec, n int) (map[int]json.RawMessage, error) {
	d.calls++
	if d.fail != nil {
		return nil, d.fail
	}
	cells := make([]int, n)
	for i := range cells {
		cells[i] = i
	}
	capture := NewCellCapture(spec.ID, cells)
	ctx = WithCellCapture(WithoutGridDelegate(ctx), capture)
	defenses, sided, opts := fastE1()
	if _, err := E1Matrix(ctx, defenses, sided, opts); err != nil {
		return nil, err
	}
	if err := capture.Err(); err != nil {
		return nil, err
	}
	out := make(map[int]json.RawMessage, n)
	for i, cell := range capture.Results() {
		out[i] = cell.Result
	}
	if d.partial {
		delete(out, n-1)
	}
	return out, nil
}

func TestGridDelegateByteIdentical(t *testing.T) {
	defenses, sided, opts := fastE1()
	serial, err := E1Matrix(context.Background(), defenses, sided, opts)
	if err != nil {
		t.Fatal(err)
	}
	del := &captureDelegate{t: t}
	ctx := WithGridDelegate(context.Background(), del)
	delegated, err := E1Matrix(ctx, defenses, sided, opts)
	if err != nil {
		t.Fatal(err)
	}
	if del.calls != 1 {
		t.Fatalf("delegate called %d times, want 1", del.calls)
	}
	if s, d := serial.String(), delegated.String(); s != d {
		t.Fatalf("delegated run differs from serial:\n--- serial ---\n%s\n--- delegated ---\n%s", s, d)
	}
}

func TestGridDelegatePartialResultFailsGrid(t *testing.T) {
	defenses, sided, opts := fastE1()
	ctx := WithGridDelegate(context.Background(), &captureDelegate{t: t, partial: true})
	if _, err := E1Matrix(ctx, defenses, sided, opts); err == nil || !strings.Contains(err.Error(), "no result for cell") {
		t.Fatalf("partial delegate result did not fail the grid: %v", err)
	}
}

func TestGridDelegateErrorFailsGrid(t *testing.T) {
	defenses, sided, opts := fastE1()
	boom := errors.New("fleet on fire")
	ctx := WithGridDelegate(context.Background(), &captureDelegate{t: t, fail: boom})
	if _, err := E1Matrix(ctx, defenses, sided, opts); err == nil || !errors.Is(err, boom) {
		t.Fatalf("delegate error not surfaced: %v", err)
	}
}

func TestWithoutGridDelegateShadows(t *testing.T) {
	del := &captureDelegate{t: t}
	ctx := WithGridDelegate(context.Background(), del)
	if gridDelegateFrom(ctx) == nil {
		t.Fatal("delegate not installed")
	}
	if gridDelegateFrom(WithoutGridDelegate(ctx)) != nil {
		t.Fatal("WithoutGridDelegate did not shadow the delegate")
	}
	// Anonymous grids must ignore delegates entirely.
	run := runGrid[int](ctx, GridSpec{}, 2, func(ctx context.Context, i int) (int, error) { return i, nil })
	if run.Err() != nil || del.calls != 0 {
		t.Fatalf("anonymous grid consulted the delegate (calls=%d, err=%v)", del.calls, run.Err())
	}
}
