// Package cache models a set-associative last-level cache with LRU
// replacement, explicit flush (CLFLUSH), and cache-line locking — the
// way-pinning mechanism §4.2 of "Stop! Hammer Time" proposes as a first
// line of defense against identified aggressor lines (available today on
// many ARM parts).
//
// Rowhammer attacks must reach DRAM, so real attacks flush or evict their
// aggressor lines between accesses; the cache is what makes a locked line
// stop generating ACTs.
package cache

import (
	"errors"
	"fmt"

	"hammertime/internal/obs"
)

// Common cache errors.
var (
	// ErrLockBudget is returned when locking a line would exceed the
	// set's locked-way budget.
	ErrLockBudget = errors.New("cache: locked-way budget exhausted for set")
)

// Config describes cache organization.
type Config struct {
	// Sets and Ways give the organization; capacity = Sets*Ways lines.
	Sets int
	Ways int
	// MaxLockedWays bounds how many ways of each set may be locked
	// (0 disables locking).
	MaxLockedWays int
}

// DefaultConfig returns a 2 MiB-like LLC: 2048 sets x 16 ways of 64 B
// lines, with up to 4 lockable ways per set.
func DefaultConfig() Config {
	return Config{Sets: 2048, Ways: 16, MaxLockedWays: 4}
}

type way struct {
	line   uint64
	valid  bool
	dirty  bool
	locked bool
	lru    uint64 // last-touch tick; larger = more recent
}

// Result describes the outcome of one cache access.
type Result struct {
	// Hit is true when the line was present.
	Hit bool
	// Filled is true when the line was inserted (miss path).
	Filled bool
	// WritebackLine holds the evicted dirty line when Writeback is true.
	Writeback     bool
	WritebackLine uint64
	// Bypassed is true when the set's unlocked ways were exhausted and
	// the access had to go straight to memory without allocation.
	Bypassed bool
}

// Cache is a set-associative LLC model. Not safe for concurrent use.
type Cache struct {
	cfg  Config
	sets [][]way
	tick uint64

	hits, misses, flushes, writebacks uint64
	lockedLines                       map[uint64]bool

	rec   *obs.Recorder
	clock func() uint64 // event timestamps; nil means cycle 0
}

// New validates cfg and builds a cache.
func New(cfg Config) (*Cache, error) {
	if cfg.Sets <= 0 || cfg.Ways <= 0 {
		return nil, fmt.Errorf("cache: need positive sets/ways, got %d/%d", cfg.Sets, cfg.Ways)
	}
	if cfg.MaxLockedWays < 0 || cfg.MaxLockedWays > cfg.Ways {
		return nil, fmt.Errorf("cache: locked-way budget %d out of [0,%d]", cfg.MaxLockedWays, cfg.Ways)
	}
	c := &Cache{cfg: cfg, sets: make([][]way, cfg.Sets), lockedLines: make(map[uint64]bool)}
	for i := range c.sets {
		c.sets[i] = make([]way, cfg.Ways)
	}
	return c, nil
}

// SetRecorder attaches an event recorder and a clock supplying event
// timestamps (the cache model itself is untimed; the machine passes the
// memory controller's current cycle). Pure observer: recording changes no
// cache behavior. nil recorder disables recording.
func (c *Cache) SetRecorder(r *obs.Recorder, clock func() uint64) {
	c.rec = r
	c.clock = clock
}

func (c *Cache) nowCycle() uint64 {
	if c.clock == nil {
		return 0
	}
	return c.clock()
}

// Config returns the cache configuration.
func (c *Cache) Config() Config { return c.cfg }

func (c *Cache) setOf(line uint64) []way { return c.sets[line%uint64(c.cfg.Sets)] }

// Access looks up line, updating LRU state; on miss it allocates, evicting
// the LRU unlocked way. write marks the line dirty.
func (c *Cache) Access(line uint64, write bool) Result {
	c.tick++
	set := c.setOf(line)
	for i := range set {
		if set[i].valid && set[i].line == line {
			set[i].lru = c.tick
			if write {
				set[i].dirty = true
			}
			c.hits++
			return Result{Hit: true}
		}
	}
	c.misses++
	// Miss: pick an invalid way, else LRU among unlocked ways.
	victim := -1
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
	}
	if victim < 0 {
		var oldest uint64 = ^uint64(0)
		for i := range set {
			if !set[i].locked && set[i].lru < oldest {
				oldest = set[i].lru
				victim = i
			}
		}
	}
	if victim < 0 {
		// Every way locked: serve from memory without allocating.
		return Result{Bypassed: true}
	}
	res := Result{Filled: true}
	if set[victim].valid && set[victim].dirty {
		res.Writeback = true
		res.WritebackLine = set[victim].line
		c.writebacks++
	}
	set[victim] = way{line: line, valid: true, dirty: write, lru: c.tick}
	return res
}

// Contains reports whether line is currently cached.
func (c *Cache) Contains(line uint64) bool {
	set := c.setOf(line)
	for i := range set {
		if set[i].valid && set[i].line == line {
			return true
		}
	}
	return false
}

// Flush invalidates line (CLFLUSH). It returns true with the dirty flag
// when a writeback is required. Locked lines are not invalidated — the
// lockdown mechanism (§4.2) exists precisely so an attacker's own flushes
// cannot force the line back to DRAM; the flush is absorbed.
func (c *Cache) Flush(line uint64) (present, dirty bool) {
	set := c.setOf(line)
	for i := range set {
		if set[i].valid && set[i].line == line {
			if set[i].locked {
				return false, false
			}
			present, dirty = true, set[i].dirty
			set[i] = way{}
			c.flushes++
			if dirty {
				c.writebacks++
			}
			return present, dirty
		}
	}
	return false, false
}

// Lock pins line into its set (inserting it if absent) so it can never be
// evicted — the §4.2 "first line of defense": a locked aggressor line
// stops generating row activations. Fails with ErrLockBudget when the
// set's budget is exhausted.
func (c *Cache) Lock(line uint64) error {
	if c.cfg.MaxLockedWays == 0 {
		return fmt.Errorf("cache: locking disabled: %w", ErrLockBudget)
	}
	set := c.setOf(line)
	locked := 0
	idx := -1
	for i := range set {
		if set[i].locked {
			locked++
		}
		if set[i].valid && set[i].line == line {
			idx = i
		}
	}
	if idx >= 0 {
		if set[idx].locked {
			return nil
		}
		if locked >= c.cfg.MaxLockedWays {
			return fmt.Errorf("cache: line %#x: %w", line, ErrLockBudget)
		}
		set[idx].locked = true
		c.lockedLines[line] = true
		c.emitLock(obs.KindLineLock, line)
		return nil
	}
	if locked >= c.cfg.MaxLockedWays {
		return fmt.Errorf("cache: line %#x: %w", line, ErrLockBudget)
	}
	// Insert-and-lock: reuse the normal fill path, then pin.
	c.tick++
	victim := -1
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
	}
	if victim < 0 {
		var oldest uint64 = ^uint64(0)
		for i := range set {
			if !set[i].locked && set[i].lru < oldest {
				oldest = set[i].lru
				victim = i
			}
		}
	}
	if victim < 0 {
		return fmt.Errorf("cache: line %#x: %w", line, ErrLockBudget)
	}
	set[victim] = way{line: line, valid: true, locked: true, lru: c.tick}
	c.lockedLines[line] = true
	c.emitLock(obs.KindLineLock, line)
	return nil
}

func (c *Cache) emitLock(kind obs.Kind, line uint64) {
	if !c.rec.Wants(kind) {
		return
	}
	c.rec.Emit(obs.Event{Kind: kind, Cycle: c.nowCycle(), Bank: -1, Row: -1, Domain: -1, Line: line})
}

// Unlock releases a previously locked line (it stays cached).
func (c *Cache) Unlock(line uint64) {
	set := c.setOf(line)
	for i := range set {
		if set[i].valid && set[i].line == line {
			set[i].locked = false
		}
	}
	if c.lockedLines[line] {
		c.emitLock(obs.KindLineUnlock, line)
	}
	delete(c.lockedLines, line)
}

// LockedCount returns how many lines are currently locked.
func (c *Cache) LockedCount() int { return len(c.lockedLines) }

// Stats returns cumulative hits, misses, flushes and writebacks.
func (c *Cache) Stats() (hits, misses, flushes, writebacks uint64) {
	return c.hits, c.misses, c.flushes, c.writebacks
}
