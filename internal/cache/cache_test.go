package cache

import (
	"errors"
	"testing"
	"testing/quick"
)

func small(t *testing.T, sets, ways, locked int) *Cache {
	t.Helper()
	c, err := New(Config{Sets: sets, Ways: ways, MaxLockedWays: locked})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewValidates(t *testing.T) {
	if _, err := New(Config{Sets: 0, Ways: 1}); err == nil {
		t.Fatal("zero sets accepted")
	}
	if _, err := New(Config{Sets: 1, Ways: 0}); err == nil {
		t.Fatal("zero ways accepted")
	}
	if _, err := New(Config{Sets: 1, Ways: 2, MaxLockedWays: 3}); err == nil {
		t.Fatal("lock budget above ways accepted")
	}
}

func TestMissThenHit(t *testing.T) {
	c := small(t, 4, 2, 0)
	if r := c.Access(100, false); r.Hit {
		t.Fatal("cold access hit")
	}
	if r := c.Access(100, false); !r.Hit {
		t.Fatal("second access missed")
	}
	hits, misses, _, _ := c.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("hits=%d misses=%d", hits, misses)
	}
}

func TestLRUEviction(t *testing.T) {
	c := small(t, 1, 2, 0)
	c.Access(0, false)
	c.Access(1, false)
	c.Access(0, false) // 1 is now LRU
	c.Access(2, false) // evicts 1
	if !c.Contains(0) || c.Contains(1) || !c.Contains(2) {
		t.Fatal("LRU eviction picked the wrong victim")
	}
}

func TestDirtyEvictionProducesWriteback(t *testing.T) {
	c := small(t, 1, 1, 0)
	c.Access(7, true)
	r := c.Access(8, false)
	if !r.Writeback || r.WritebackLine != 7 {
		t.Fatalf("expected writeback of line 7, got %+v", r)
	}
}

func TestCleanEvictionNoWriteback(t *testing.T) {
	c := small(t, 1, 1, 0)
	c.Access(7, false)
	if r := c.Access(8, false); r.Writeback {
		t.Fatal("clean eviction produced a writeback")
	}
}

func TestFlushRemovesLine(t *testing.T) {
	c := small(t, 4, 2, 0)
	c.Access(5, true)
	present, dirty := c.Flush(5)
	if !present || !dirty {
		t.Fatalf("flush of dirty line: present=%v dirty=%v", present, dirty)
	}
	if c.Contains(5) {
		t.Fatal("line survived flush")
	}
	if present, _ := c.Flush(5); present {
		t.Fatal("double flush found the line")
	}
}

func TestLockPinsAgainstEviction(t *testing.T) {
	c := small(t, 1, 2, 1)
	if err := c.Lock(10); err != nil {
		t.Fatal(err)
	}
	// Fill the set far beyond capacity; the locked line must survive.
	for i := uint64(0); i < 20; i++ {
		c.Access(100+i, false)
	}
	if !c.Contains(10) {
		t.Fatal("locked line was evicted")
	}
}

func TestLockedLineAbsorbsFlush(t *testing.T) {
	c := small(t, 1, 2, 1)
	if err := c.Lock(10); err != nil {
		t.Fatal(err)
	}
	// The §4.2 defense depends on this: the attacker's CLFLUSH cannot
	// push a locked aggressor line back to DRAM.
	if present, _ := c.Flush(10); present {
		t.Fatal("flush reported the locked line as removable")
	}
	if !c.Contains(10) {
		t.Fatal("flush removed a locked line")
	}
}

func TestLockBudgetEnforced(t *testing.T) {
	c := small(t, 1, 4, 2)
	if err := c.Lock(1); err != nil {
		t.Fatal(err)
	}
	if err := c.Lock(2); err != nil {
		t.Fatal(err)
	}
	err := c.Lock(3)
	if !errors.Is(err, ErrLockBudget) {
		t.Fatalf("third lock error = %v, want ErrLockBudget", err)
	}
	if c.LockedCount() != 2 {
		t.Fatalf("locked count = %d", c.LockedCount())
	}
}

func TestLockDisabled(t *testing.T) {
	c := small(t, 1, 2, 0)
	if err := c.Lock(1); !errors.Is(err, ErrLockBudget) {
		t.Fatalf("lock with budget 0: %v", err)
	}
}

func TestUnlockRestoresEvictability(t *testing.T) {
	c := small(t, 1, 1, 1)
	if err := c.Lock(10); err != nil {
		t.Fatal(err)
	}
	c.Unlock(10)
	c.Access(11, false)
	if c.Contains(10) {
		t.Fatal("unlocked line survived full-set pressure")
	}
	if c.LockedCount() != 0 {
		t.Fatal("locked count not decremented")
	}
}

func TestLockExistingLine(t *testing.T) {
	c := small(t, 1, 2, 1)
	c.Access(10, false)
	if err := c.Lock(10); err != nil {
		t.Fatal(err)
	}
	if err := c.Lock(10); err != nil {
		t.Fatalf("re-locking a locked line failed: %v", err)
	}
	if c.LockedCount() != 1 {
		t.Fatalf("locked count = %d after double lock", c.LockedCount())
	}
}

func TestFullyLockedSetBypasses(t *testing.T) {
	c := small(t, 1, 1, 1)
	if err := c.Lock(10); err != nil {
		t.Fatal(err)
	}
	r := c.Access(11, false)
	if !r.Bypassed || r.Filled {
		t.Fatalf("access to fully-locked set: %+v, want bypass", r)
	}
	if c.Contains(11) {
		t.Fatal("bypassed line was cached")
	}
}

// TestContainsMatchesAccessHistory is a property test: after any sequence
// of accesses confined to one set, the cache contains exactly the most
// recent min(ways, distinct) lines.
func TestContainsMatchesAccessHistory(t *testing.T) {
	const ways = 4
	f := func(pattern []uint8) bool {
		c, err := New(Config{Sets: 1, Ways: ways})
		if err != nil {
			return false
		}
		var history []uint64
		for _, p := range pattern {
			line := uint64(p % 16)
			c.Access(line, false)
			// Maintain LRU order of distinct lines.
			for i, h := range history {
				if h == line {
					history = append(history[:i], history[i+1:]...)
					break
				}
			}
			history = append(history, line)
		}
		start := 0
		if len(history) > ways {
			start = len(history) - ways
		}
		for i, h := range history {
			if got := c.Contains(h); got != (i >= start) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
