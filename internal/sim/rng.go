// Package sim provides deterministic simulation primitives shared by the
// rest of the hammertime simulator: a seeded pseudo-random number generator
// and a stats counter registry.
//
// Everything in the simulator that needs randomness draws it from an RNG
// seeded at experiment construction, so every run is reproducible
// bit-for-bit regardless of host or scheduling.
package sim

// DeterminismEpoch versions the simulator's deterministic bit-streams.
// Any change to how the RNG maps its state to values (or to which values
// a consumer draws for a given seed) must bump this constant: persisted
// artifacts keyed on determinism — harness checkpoints, recorded golden
// tables — embed the epoch so stale results are recomputed instead of
// silently mixed with new-stream ones. Epoch 2: Intn/Uint64n switched
// from plain modulo to unbiased rejection sampling.
const DeterminismEpoch = 2

// RNG is a small, fast, deterministic pseudo-random number generator based
// on splitmix64. It is not cryptographically secure; it exists so that
// simulations are reproducible across runs and platforms.
//
// The zero value is a valid generator seeded with 0. RNG is not safe for
// concurrent use; give each goroutine its own (forked) generator.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Seed resets the generator to the given seed.
func (r *RNG) Seed(seed uint64) { r.state = seed }

// Uint64 returns the next pseudo-random 64-bit value.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a pseudo-random int in [0, n). It panics if n <= 0, matching
// math/rand semantics.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn called with non-positive n")
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64n returns an unbiased pseudo-random uint64 in [0, n). It panics
// if n == 0.
//
// Power-of-two n masks a single draw. Otherwise values above the largest
// multiple of n are rejected and redrawn, so every residue is equally
// likely — plain modulo over-weights the low residues by (2^64 mod n)
// draws, a bias that matters for n near 2^64 and, more importantly, makes
// the stream's correctness depend on the modulus. Rejection redraws are
// deterministic (a pure function of the generator state), so runs remain
// reproducible; the switch from modulo is DeterminismEpoch 2.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("sim: Uint64n called with zero n")
	}
	if n&(n-1) == 0 {
		return r.Uint64() & (n - 1)
	}
	// max is the largest k*n - 1 that fits in 64 bits; values beyond it
	// would alias low residues.
	max := ^uint64(0) - (^uint64(0)%n+1)%n
	v := r.Uint64()
	for v > max {
		v = r.Uint64()
	}
	return v % n
}

// Float64 returns a pseudo-random float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns a pseudo-random boolean that is true with probability p.
func (r *RNG) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle pseudo-randomly permutes s in place.
func (r *RNG) Shuffle(s []int) {
	for i := len(s) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		s[i], s[j] = s[j], s[i]
	}
}

// Fork returns a new generator whose stream is decorrelated from r's but
// still a pure function of r's current state. Use it to hand independent
// streams to sub-components without sharing a generator.
func (r *RNG) Fork() *RNG {
	return &RNG{state: r.Uint64() ^ 0xa5a5a5a5deadbeef}
}

// ForkAt returns the i'th member of a family of decorrelated generators
// derived from r's current state, without advancing r. This is the
// parallel-harness contract: cell i's stream is a pure function of
// (r.state, i), never of scheduling order, so experiment cells fanned out
// across goroutines draw exactly the bits they would have drawn serially.
func (r *RNG) ForkAt(i uint64) *RNG {
	z := r.state + 0x9e3779b97f4a7c15*(i+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return &RNG{state: z ^ 0xa5a5a5a5deadbeef}
}
