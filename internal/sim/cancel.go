package sim

import (
	"context"
)

// Canceler is a bounded-interval cooperative cancellation gate. Hot loops
// (the core scheduler, the controller's refresh catch-up, the prober's
// hammer loop) call Check once per iteration; the context is only polled
// every `every` calls, so the common path is one nil test plus a counter
// increment — no channel operation, no allocation, and byte-identical
// simulation results when the context is never cancelled.
//
// A nil *Canceler is the disabled gate: Check and Tripped are free and
// always report "keep going". NewCanceler returns nil for contexts that
// can never be cancelled (context.Background, context.TODO), so callers
// pay nothing unless cancellation is actually in play.
//
// Canceler is single-goroutine state, like the RNG: give each simulation
// its own. Once a cancellation is observed it is sticky — every later
// Check returns the same cause.
type Canceler struct {
	done  <-chan struct{}
	ctx   context.Context
	err   error
	every uint32
	n     uint32
}

// DefaultCancelInterval is the poll granularity used when a caller passes
// every <= 0: cancellation is observed within this many Check calls. At
// simulator speeds (hundreds of ns per scheduler step) this bounds
// cancellation latency well under a millisecond while keeping the poll
// off the per-step profile.
const DefaultCancelInterval = 1024

// NewCanceler builds a gate over ctx polling every `every` Check calls
// (every <= 0 uses DefaultCancelInterval). Returns nil — the free,
// never-cancelled gate — when ctx is nil or cannot be cancelled.
func NewCanceler(ctx context.Context, every int) *Canceler {
	if ctx == nil || ctx.Done() == nil {
		return nil
	}
	if every <= 0 {
		every = DefaultCancelInterval
	}
	return &Canceler{done: ctx.Done(), ctx: ctx, every: uint32(every)}
}

// Check counts one hot-loop iteration and, at the poll interval, observes
// the context. It returns nil while the simulation may continue and the
// cancellation cause once it must stop. Free on a nil receiver.
func (c *Canceler) Check() error {
	if c == nil {
		return nil
	}
	if c.err != nil {
		return c.err
	}
	if c.n++; c.n < c.every {
		return nil
	}
	c.n = 0
	return c.poll()
}

// Tripped observes the context immediately (no interval counting) and
// reports whether cancellation has been requested. Loops whose iterations
// are already coarse (the controller's chunked refresh catch-up) use it
// directly. Free on a nil receiver.
func (c *Canceler) Tripped() bool {
	if c == nil {
		return false
	}
	if c.err != nil {
		return true
	}
	return c.poll() != nil
}

func (c *Canceler) poll() error {
	select {
	case <-c.done:
		c.err = context.Cause(c.ctx)
		if c.err == nil {
			c.err = context.Canceled
		}
		return c.err
	default:
		return nil
	}
}
