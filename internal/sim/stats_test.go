package sim

import (
	"encoding/json"
	"sync"
	"testing"
)

func TestStatsVectors(t *testing.T) {
	var s Stats
	s.AddVec("dram.act.bank", 3, 5)
	s.AddVec("dram.act.bank", 0, 1)
	s.AddVec("dram.act.bank", 3, 2)
	v := s.Vec("dram.act.bank")
	if len(v) != 4 || v[0] != 1 || v[3] != 7 {
		t.Fatalf("vec = %v", v)
	}
	if s.Vec("missing") != nil {
		t.Fatal("missing vector should be nil")
	}
	s.AddVec("dram.act.bank", -1, 9) // negative index ignored
	if got := s.Vec("dram.act.bank"); len(got) != 4 {
		t.Fatalf("negative index grew vector: %v", got)
	}
}

func TestStatsEnsureVecHotPath(t *testing.T) {
	var s Stats
	v := s.EnsureVec("per-bank", 8)
	if len(v) != 8 {
		t.Fatalf("len %d", len(v))
	}
	v[5]++ // direct indexing, as hot paths do
	if s.Vec("per-bank")[5] != 1 {
		t.Fatal("EnsureVec must return the live slice")
	}
	allocs := testing.AllocsPerRun(1000, func() { v[5]++ })
	if allocs != 0 {
		t.Fatalf("direct vector increment allocates %.1f", allocs)
	}
}

func TestHistogramObserve(t *testing.T) {
	var s Stats
	h := s.NewHistogram("spacing", []float64{10, 100, 1000})
	for _, v := range []float64{5, 10, 11, 500, 5000} {
		h.Observe(v)
	}
	counts := h.Counts()
	// ≤10 → bucket 0 (5, 10); ≤100 → bucket 1 (11); ≤1000 → bucket 2
	// (500); overflow (5000).
	want := []uint64{2, 1, 1, 1}
	for i, c := range counts {
		if c != want[i] {
			t.Fatalf("counts = %v, want %v", counts, want)
		}
	}
	if h.Count() != 5 || h.Sum() != 5526 {
		t.Fatalf("count=%d sum=%g", h.Count(), h.Sum())
	}
	if again := s.NewHistogram("spacing", []float64{1}); again != h {
		t.Fatal("re-registering must return the existing histogram")
	}
	allocs := testing.AllocsPerRun(1000, func() { h.Observe(50) })
	if allocs != 0 {
		t.Fatalf("Observe allocates %.1f", allocs)
	}
}

func TestStatsObserveDefaultBuckets(t *testing.T) {
	var s Stats
	s.Observe("x", 3)
	s.Observe("x", 1<<30) // far past the last default bucket
	h := s.Hist("x")
	if h == nil || h.Count() != 2 {
		t.Fatal("default-bucket histogram not created")
	}
	if h.Counts()[len(h.Counts())-1] != 1 {
		t.Fatal("large sample should land in the overflow bucket")
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("buckets = %v", b)
		}
	}
}

// TestStatsMergeGaugeOverwrite pins Merge's documented gauge semantics:
// gauges are point-in-time readings, so the merged-in value REPLACES the
// receiver's — it is not summed or averaged.
func TestStatsMergeGaugeOverwrite(t *testing.T) {
	var a, b Stats
	a.SetGauge("rate", 1.5)
	b.SetGauge("rate", 9.0)
	b.SetGauge("only-b", 2.0)
	a.Merge(&b)
	if g := a.Gauge("rate"); g != 9.0 {
		t.Fatalf("gauge after merge = %g, want other's value 9.0 (overwrite, not sum)", g)
	}
	if g := a.Gauge("only-b"); g != 2.0 {
		t.Fatalf("only-b = %g", g)
	}
	// Merge order matters for gauges: merging a zero-gauge Stats back
	// does not resurrect a's original value.
	var c Stats
	c.SetGauge("rate", 0)
	a.Merge(&c)
	if g := a.Gauge("rate"); g != 0 {
		t.Fatalf("last writer must win, got %g", g)
	}
}

func TestStatsMergeVectorsAndHists(t *testing.T) {
	var a, b Stats
	a.AddVec("v", 0, 1)
	b.AddVec("v", 2, 5)
	ah := a.NewHistogram("h", []float64{10, 20})
	bh := b.NewHistogram("h", []float64{10, 20})
	ah.Observe(5)
	bh.Observe(15)
	bh.Observe(100)
	a.Merge(&b)
	if v := a.Vec("v"); len(v) != 3 || v[0] != 1 || v[2] != 5 {
		t.Fatalf("merged vec = %v", v)
	}
	h := a.Hist("h")
	if h.Count() != 3 || h.Counts()[0] != 1 || h.Counts()[1] != 1 || h.Counts()[2] != 1 {
		t.Fatalf("merged hist counts = %v", h.Counts())
	}
	// Mismatched bounds: other's histogram replaces, as a copy.
	var c Stats
	ch := c.NewHistogram("h", []float64{1})
	ch.Observe(0.5)
	a.Merge(&c)
	h = a.Hist("h")
	if len(h.Bounds()) != 1 || h.Count() != 1 {
		t.Fatalf("bounds mismatch should replace: %v count=%d", h.Bounds(), h.Count())
	}
	ch.Observe(0.25)
	if h.Count() != 1 {
		t.Fatal("replacement must be a copy, not share storage")
	}
}

func TestStatsSnapshotSortedAndDeep(t *testing.T) {
	var s Stats
	s.Add("z", 1)
	s.Add("a", 2)
	s.SetGauge("g", 0.5)
	s.AddVec("vec", 1, 3)
	s.NewHistogram("h", []float64{1, 2}).Observe(1.5)
	snap := s.Snapshot()
	if len(snap.Counters) != 2 || snap.Counters[0].Name != "a" || snap.Counters[1].Name != "z" {
		t.Fatalf("counters not sorted: %v", snap.Counters)
	}
	if len(snap.Gauges) != 1 || len(snap.Vectors) != 1 || len(snap.Histograms) != 1 {
		t.Fatalf("snapshot incomplete: %+v", snap)
	}
	// Deep copy: mutating the source must not change the snapshot.
	s.Add("a", 10)
	s.AddVec("vec", 1, 10)
	s.Hist("h").Observe(3)
	if snap.Counters[0].Value != 2 {
		t.Fatal("counter snapshot not isolated")
	}
	if snap.Vectors[0].Values[1] != 3 {
		t.Fatal("vector snapshot not isolated")
	}
	if snap.Histograms[0].Count != 1 {
		t.Fatal("histogram snapshot not isolated")
	}
	// The snapshot must serialize cleanly (the -metrics-out path).
	raw, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var back StatsSnapshot
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Histograms) != 1 || back.Histograms[0].Count != 1 {
		t.Fatalf("round-trip lost histograms: %s", raw)
	}
}

func TestStatsSnapshotEmpty(t *testing.T) {
	var s Stats
	snap := s.Snapshot()
	if len(snap.Counters) != 0 {
		t.Fatal("empty stats should snapshot empty")
	}
	if _, err := json.Marshal(snap); err != nil {
		t.Fatal(err)
	}
}

func TestStatsStringIncludesNewSections(t *testing.T) {
	var s Stats
	s.Add("c", 1)
	s.SetGauge("g", 2)
	s.AddVec("v", 1, 3)
	s.NewHistogram("h", []float64{1}).Observe(0.5)
	got := s.String()
	want := "c=1\ng=2\nv=[0 3]\nh=count:1 sum:0.5\n"
	if got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}

// TestHistogramObserveOutOfRange pins the edge buckets: a sample below
// the first ExpBuckets bound lands in bucket 0 (bounds are inclusive
// upper edges), a sample exactly on a bound lands in that bound's
// bucket, and a sample above the last bound lands in the overflow
// bucket — never dropped.
func TestHistogramObserveOutOfRange(t *testing.T) {
	var s Stats
	h := s.NewHistogram("lat", ExpBuckets(0.001, 10, 3)) // 0.001, 0.01, 0.1
	h.Observe(0.0000001)                                 // far below the first bound
	h.Observe(0.001)                                     // exactly on the first bound: inclusive
	h.Observe(0.01)                                      // exactly on a middle bound
	h.Observe(42)                                        // far above the last bound
	want := []uint64{2, 1, 0, 1}
	got := h.Counts()
	if len(got) != len(want) {
		t.Fatalf("counts length %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("counts = %v, want %v", got, want)
		}
	}
	if h.Count() != 4 {
		t.Fatalf("count = %d, want 4", h.Count())
	}
	if sum := h.Sum(); sum < 42.011 || sum > 42.0111 {
		t.Fatalf("sum = %g", sum)
	}
}

// TestStatsMergeDisjointKeys merges two registries with no key overlap:
// every metric of both must survive, values unchanged.
func TestStatsMergeDisjointKeys(t *testing.T) {
	var a, b Stats
	a.Add("left.counter", 3)
	a.SetGauge("left.gauge", 1.5)
	a.AddVec("left.vec", 1, 7)
	a.NewHistogram("left.hist", ExpBuckets(1, 2, 4)).Observe(3)

	b.Add("right.counter", 5)
	b.SetGauge("right.gauge", 2.5)
	b.AddVec("right.vec", 0, 9)
	b.NewHistogram("right.hist", ExpBuckets(1, 10, 2)).Observe(100)

	a.Merge(&b)
	if a.Counter("left.counter") != 3 || a.Counter("right.counter") != 5 {
		t.Fatalf("counters: left=%d right=%d", a.Counter("left.counter"), a.Counter("right.counter"))
	}
	if a.Gauge("left.gauge") != 1.5 || a.Gauge("right.gauge") != 2.5 {
		t.Fatal("gauges lost in disjoint merge")
	}
	if v := a.Vec("left.vec"); len(v) != 2 || v[1] != 7 {
		t.Fatalf("left.vec = %v", v)
	}
	if v := a.Vec("right.vec"); len(v) != 1 || v[0] != 9 {
		t.Fatalf("right.vec = %v", v)
	}
	lh, rh := a.Hist("left.hist"), a.Hist("right.hist")
	if lh == nil || rh == nil {
		t.Fatal("histograms lost in disjoint merge")
	}
	if lh.Count() != 1 || rh.Count() != 1 || rh.Sum() != 100 {
		t.Fatalf("hist counts: left=%d right=%d sum=%g", lh.Count(), rh.Count(), rh.Sum())
	}
	// The merged-in histogram must be a copy: observing into b afterwards
	// must not move a's view.
	b.Observe("right.hist", 100)
	if rh.Count() != 1 {
		t.Fatal("merged histogram aliases the source registry")
	}
}

// TestStatsConcurrentSnapshotVsInc exercises the supported concurrent
// pattern (a Stats shared across goroutines behind a mutex, as
// serve.Manager does) under the race detector: writers Inc/Observe
// while readers Snapshot, all holding the lock; every snapshot must be
// internally consistent and safe to read after release.
func TestStatsConcurrentSnapshotVsInc(t *testing.T) {
	var (
		mu sync.Mutex
		s  Stats
	)
	s.NewHistogram("h", ExpBuckets(1, 2, 8))
	const (
		writers = 4
		perG    = 500
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				mu.Lock()
				s.Inc("c")
				s.Observe("h", float64(i%32))
				mu.Unlock()
			}
		}()
	}
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				mu.Lock()
				snap := s.Snapshot()
				mu.Unlock()
				// The deep copy is read outside the lock, racing the
				// writers only if Snapshot aliased live state.
				for _, h := range snap.Histograms {
					var n uint64
					for _, c := range h.Counts {
						n += c
					}
					if n != h.Count {
						t.Errorf("snapshot histogram internally inconsistent: buckets %d, count %d", n, h.Count)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	if got := s.Counter("c"); got != writers*perG {
		t.Fatalf("final counter %d, want %d", got, writers*perG)
	}
	if got := s.Hist("h").Count(); got != writers*perG {
		t.Fatalf("final histogram count %d, want %d", got, writers*perG)
	}
}
