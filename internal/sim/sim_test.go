package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed generators diverged at step %d", i)
		}
	}
}

func TestRNGSeedReset(t *testing.T) {
	r := NewRNG(7)
	first := make([]uint64, 16)
	for i := range first {
		first[i] = r.Uint64()
	}
	r.Seed(7)
	for i := range first {
		if got := r.Uint64(); got != first[i] {
			t.Fatalf("after reseed, value %d = %d, want %d", i, got, first[i])
		}
	}
}

func TestRNGDifferentSeedsDiverge(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 identical values", same)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 returned %g, want [0, 1)", f)
		}
	}
}

func TestRNGFloat64Mean(t *testing.T) {
	r := NewRNG(4)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean = %g, want ~0.5", mean)
	}
}

func TestRNGIntnBounds(t *testing.T) {
	r := NewRNG(5)
	for n := 1; n <= 64; n++ {
		for i := 0; i < 100; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d", n, v)
			}
		}
	}
}

func TestRNGIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestRNGUint64nPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Uint64n(0) did not panic")
		}
	}()
	NewRNG(1).Uint64n(0)
}

func TestRNGBoolEdges(t *testing.T) {
	r := NewRNG(6)
	for i := 0; i < 100; i++ {
		if r.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !r.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
	}
}

func TestRNGBoolProbability(t *testing.T) {
	r := NewRNG(7)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bool(0.25) {
			hits++
		}
	}
	got := float64(hits) / n
	if math.Abs(got-0.25) > 0.01 {
		t.Fatalf("Bool(0.25) rate = %g", got)
	}
}

// TestRNGPermIsPermutation is the property test: Perm(n) always returns a
// permutation of [0, n).
func TestRNGPermIsPermutation(t *testing.T) {
	r := NewRNG(8)
	f := func(nRaw uint8) bool {
		n := int(nRaw%200) + 1
		p := r.Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGShufflePreservesElements(t *testing.T) {
	r := NewRNG(9)
	s := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, v := range s {
		sum += v
	}
	r.Shuffle(s)
	got := 0
	for _, v := range s {
		got += v
	}
	if got != sum {
		t.Fatalf("shuffle changed element sum: %d != %d", got, sum)
	}
}

func TestRNGForkDecorrelates(t *testing.T) {
	r := NewRNG(10)
	f := r.Fork()
	same := 0
	for i := 0; i < 100; i++ {
		if r.Uint64() == f.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("forked stream tracks parent: %d/100 identical", same)
	}
}

func TestStatsCounters(t *testing.T) {
	var s Stats
	s.Inc("a")
	s.Add("a", 2)
	s.Add("b", -1)
	if got := s.Counter("a"); got != 3 {
		t.Fatalf("counter a = %d, want 3", got)
	}
	if got := s.Counter("b"); got != -1 {
		t.Fatalf("counter b = %d, want -1", got)
	}
	if got := s.Counter("missing"); got != 0 {
		t.Fatalf("missing counter = %d, want 0", got)
	}
}

func TestStatsGauges(t *testing.T) {
	var s Stats
	s.SetGauge("x", 1.5)
	s.SetGauge("x", 2.5)
	if got := s.Gauge("x"); got != 2.5 {
		t.Fatalf("gauge x = %g, want 2.5", got)
	}
}

func TestStatsNamesSorted(t *testing.T) {
	var s Stats
	s.Inc("zeta")
	s.Inc("alpha")
	s.Inc("mid")
	names := s.CounterNames()
	want := []string{"alpha", "mid", "zeta"}
	for i, n := range want {
		if names[i] != n {
			t.Fatalf("names = %v, want %v", names, want)
		}
	}
}

func TestStatsMerge(t *testing.T) {
	var a, b Stats
	a.Add("x", 1)
	b.Add("x", 2)
	b.Add("y", 3)
	b.SetGauge("g", 9)
	a.Merge(&b)
	if a.Counter("x") != 3 || a.Counter("y") != 3 || a.Gauge("g") != 9 {
		t.Fatalf("merge result wrong: %s", a.String())
	}
}

func TestStatsReset(t *testing.T) {
	var s Stats
	s.Inc("a")
	s.SetGauge("g", 1)
	s.Reset()
	if s.Counter("a") != 0 || s.Gauge("g") != 0 {
		t.Fatal("reset did not clear state")
	}
	// Reset stats must be reusable.
	s.Inc("a")
	if s.Counter("a") != 1 {
		t.Fatal("stats unusable after reset")
	}
}

func TestStatsString(t *testing.T) {
	var s Stats
	s.Add("n", 5)
	s.SetGauge("g", 0.5)
	got := s.String()
	if got != "n=5\ng=0.5\n" {
		t.Fatalf("String() = %q", got)
	}
}

func TestForkAtDeterministic(t *testing.T) {
	a := NewRNG(42).ForkAt(3)
	b := NewRNG(42).ForkAt(3)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("ForkAt(3) streams diverge at draw %d", i)
		}
	}
}

func TestForkAtDoesNotAdvanceParent(t *testing.T) {
	r := NewRNG(7)
	want := NewRNG(7).Uint64()
	r.ForkAt(0)
	r.ForkAt(99)
	if got := r.Uint64(); got != want {
		t.Fatalf("ForkAt advanced the parent: next draw %#x, want %#x", got, want)
	}
}

func TestForkAtStreamsDecorrelated(t *testing.T) {
	r := NewRNG(1)
	seen := make(map[uint64]uint64)
	for i := uint64(0); i < 64; i++ {
		v := r.ForkAt(i).Uint64()
		if j, dup := seen[v]; dup {
			t.Fatalf("ForkAt(%d) and ForkAt(%d) start with the same draw %#x", i, j, v)
		}
		seen[v] = i
	}
	// A forked stream must also differ from the parent's own sequence.
	fork := r.ForkAt(0)
	parent := NewRNG(1)
	same := 0
	for i := 0; i < 64; i++ {
		if fork.Uint64() == parent.Uint64() {
			same++
		}
	}
	if same > 1 {
		t.Fatalf("ForkAt(0) tracks the parent stream (%d/64 equal draws)", same)
	}
}

func TestRNGUint64nPowerOfTwoMasks(t *testing.T) {
	// Power-of-two bounds consume exactly one draw and equal a masked
	// Uint64, so power-of-two consumers kept their epoch-1 streams.
	for _, shift := range []uint{0, 1, 5, 32, 63} {
		n := uint64(1) << shift
		a, b := NewRNG(99), NewRNG(99)
		for i := 0; i < 100; i++ {
			got := a.Uint64n(n)
			want := b.Uint64() & (n - 1)
			if got != want {
				t.Fatalf("n=%d draw %d: Uint64n = %d, masked Uint64 = %d", n, i, got, want)
			}
		}
	}
}

func TestRNGUint64nMatchesRejectionReference(t *testing.T) {
	// Reference implementation of the unbiased sampler, kept independent
	// of the production code: reject draws above the largest multiple of
	// n. A huge non-power-of-two bound makes rejection near-certain to
	// occur within a few thousand draws (acceptance ~= 50% per draw).
	for _, n := range []uint64{3, 1000, 1<<63 + 1, ^uint64(0)} {
		a, b := NewRNG(7), NewRNG(7)
		rejected := false
		for i := 0; i < 4000; i++ {
			got := a.Uint64n(n)
			limit := ^uint64(0) - (^uint64(0)%n+1)%n
			v := b.Uint64()
			for v > limit {
				rejected = true
				v = b.Uint64()
			}
			if want := v % n; got != want {
				t.Fatalf("n=%d draw %d: Uint64n = %d, reference = %d", n, i, got, want)
			}
		}
		if n == 1<<63+1 && !rejected {
			t.Error("reference sampler never rejected for n=2^63+1; test is vacuous")
		}
	}
}

func TestRNGUint64nBoundsNonPowerOfTwo(t *testing.T) {
	r := NewRNG(123)
	for _, n := range []uint64{1, 2, 3, 7, 100, 1<<40 + 3, 1<<63 + 5} {
		for i := 0; i < 200; i++ {
			if v := r.Uint64n(n); v >= n {
				t.Fatalf("Uint64n(%d) = %d", n, v)
			}
		}
	}
}

func TestRNGIntnRoughlyUniform(t *testing.T) {
	// 30k draws over 3 buckets: each residue should land near 10k. Plain
	// modulo bias for small n is far below this tolerance; the check
	// guards the rejection loop's bookkeeping, not statistics.
	r := NewRNG(42)
	const draws = 30000
	var buckets [3]int
	for i := 0; i < draws; i++ {
		buckets[r.Intn(3)]++
	}
	for i, c := range buckets {
		if c < draws/3-draws/30 || c > draws/3+draws/30 {
			t.Errorf("bucket %d holds %d of %d draws", i, c, draws)
		}
	}
}
