package sim

import (
	"fmt"
	"sort"
	"strings"
)

// Stats is an ordered registry of named integer counters and float gauges.
// Components of the simulator record events into a shared Stats so that
// experiments can report them uniformly.
//
// The zero value is ready to use. Stats is not safe for concurrent use;
// the simulator is single-threaded by design (determinism).
type Stats struct {
	counters map[string]int64
	gauges   map[string]float64
}

// Add increments the named counter by delta, creating it if needed.
func (s *Stats) Add(name string, delta int64) {
	if s.counters == nil {
		s.counters = make(map[string]int64)
	}
	s.counters[name] += delta
}

// Inc increments the named counter by one.
func (s *Stats) Inc(name string) { s.Add(name, 1) }

// Counter returns the value of the named counter (zero if never written).
func (s *Stats) Counter(name string) int64 { return s.counters[name] }

// SetGauge records a float gauge value, overwriting any previous value.
func (s *Stats) SetGauge(name string, v float64) {
	if s.gauges == nil {
		s.gauges = make(map[string]float64)
	}
	s.gauges[name] = v
}

// Gauge returns the value of the named gauge (zero if never written).
func (s *Stats) Gauge(name string) float64 { return s.gauges[name] }

// CounterNames returns all counter names in sorted order.
func (s *Stats) CounterNames() []string {
	names := make([]string, 0, len(s.counters))
	for n := range s.counters {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// GaugeNames returns all gauge names in sorted order.
func (s *Stats) GaugeNames() []string {
	names := make([]string, 0, len(s.gauges))
	for n := range s.gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Reset clears all counters and gauges.
func (s *Stats) Reset() {
	s.counters = nil
	s.gauges = nil
}

// Merge adds every counter from other into s and copies other's gauges
// (overwriting same-named gauges in s).
func (s *Stats) Merge(other *Stats) {
	for n, v := range other.counters {
		s.Add(n, v)
	}
	for n, v := range other.gauges {
		s.SetGauge(n, v)
	}
}

// String renders the stats as "name=value" lines in sorted order, counters
// first. It is intended for debugging and test failure messages.
func (s *Stats) String() string {
	var b strings.Builder
	for _, n := range s.CounterNames() {
		fmt.Fprintf(&b, "%s=%d\n", n, s.counters[n])
	}
	for _, n := range s.GaugeNames() {
		fmt.Fprintf(&b, "%s=%g\n", n, s.gauges[n])
	}
	return b.String()
}
