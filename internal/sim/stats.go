package sim

import (
	"fmt"
	"sort"
	"strings"
)

// Stats is an ordered registry of named integer counters, float gauges,
// indexed vector counters (e.g. per-bank), and fixed-bucket histograms.
// Components of the simulator record events into a shared Stats so that
// experiments can report them uniformly.
//
// The zero value is ready to use. Stats is not safe for concurrent use;
// the simulator is single-threaded by design (determinism).
type Stats struct {
	counters map[string]*int64
	gauges   map[string]float64
	vectors  map[string][]int64
	hists    map[string]*Histogram
}

// CounterRef returns a live pointer to the named counter, creating it
// (at zero) if needed. Hot paths that increment the same counter per
// event (the DRAM command stream, the controller's refresh schedule)
// hold the pointer and increment through it, skipping the map lookup per
// event — the same pattern EnsureVec and NewHistogram establish for
// vectors and histograms. The pointer stays live until Reset.
func (s *Stats) CounterRef(name string) *int64 {
	if s.counters == nil {
		s.counters = make(map[string]*int64)
	}
	p := s.counters[name]
	if p == nil {
		p = new(int64)
		s.counters[name] = p
	}
	return p
}

// Add increments the named counter by delta, creating it if needed.
func (s *Stats) Add(name string, delta int64) {
	*s.CounterRef(name) += delta
}

// Inc increments the named counter by one.
func (s *Stats) Inc(name string) { s.Add(name, 1) }

// Counter returns the value of the named counter (zero if never written).
func (s *Stats) Counter(name string) int64 {
	if p := s.counters[name]; p != nil {
		return *p
	}
	return 0
}

// SetGauge records a float gauge value, overwriting any previous value.
func (s *Stats) SetGauge(name string, v float64) {
	if s.gauges == nil {
		s.gauges = make(map[string]float64)
	}
	s.gauges[name] = v
}

// Gauge returns the value of the named gauge (zero if never written).
func (s *Stats) Gauge(name string) float64 { return s.gauges[name] }

// AddVec increments element idx of the named vector counter, growing the
// vector as needed. Vectors are labeled counters indexed by a small dense
// dimension (bank number, domain id).
func (s *Stats) AddVec(name string, idx int, delta int64) {
	if idx < 0 {
		return
	}
	v := s.EnsureVec(name, idx+1)
	v[idx] += delta
}

// EnsureVec returns the named vector, grown to at least n elements. Hot
// paths that know their dimension up front (e.g. per-bank counters sized
// to the geometry) call this once and index the returned slice directly,
// skipping the map lookup per event.
func (s *Stats) EnsureVec(name string, n int) []int64 {
	if s.vectors == nil {
		s.vectors = make(map[string][]int64)
	}
	v := s.vectors[name]
	if len(v) < n {
		grown := make([]int64, n)
		copy(grown, v)
		v = grown
		s.vectors[name] = v
	}
	return v
}

// Vec returns the named vector counter (nil if never written). The
// returned slice is live; callers must not modify it.
func (s *Stats) Vec(name string) []int64 { return s.vectors[name] }

// VecNames returns all vector names in sorted order.
func (s *Stats) VecNames() []string { return sortedKeys(s.vectors) }

// Histogram is a fixed-bucket distribution: Bounds are the inclusive
// upper edges of the first len(Bounds) buckets, and one final overflow
// bucket catches everything larger, so len(counts) == len(Bounds)+1.
// Observing is allocation-free; components hold the *Histogram returned
// by Stats.NewHistogram to skip the map lookup on hot paths.
type Histogram struct {
	bounds []float64
	counts []uint64
	count  uint64
	sum    float64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	idx := len(h.bounds)
	for i, b := range h.bounds {
		if v <= b {
			idx = i
			break
		}
	}
	h.counts[idx]++
	h.count++
	h.sum += v
}

// Count returns how many samples were observed.
func (h *Histogram) Count() uint64 { return h.count }

// Sum returns the sum of all observed samples.
func (h *Histogram) Sum() float64 { return h.sum }

// Bounds returns the bucket upper edges (callers must not modify).
func (h *Histogram) Bounds() []float64 { return h.bounds }

// Counts returns the per-bucket sample counts, the last entry being the
// overflow bucket (callers must not modify).
func (h *Histogram) Counts() []uint64 { return h.counts }

// ExpBuckets returns n exponentially growing bucket bounds starting at
// start and multiplying by factor — the usual shape for cycle-valued
// distributions (inter-ACT spacing, service latency).
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// NewHistogram registers (or fetches) the named histogram. If the name is
// new, it is created with the given bucket bounds (which must be sorted
// ascending); if it already exists, the existing histogram is returned
// unchanged and bounds are ignored.
func (s *Stats) NewHistogram(name string, bounds []float64) *Histogram {
	if s.hists == nil {
		s.hists = make(map[string]*Histogram)
	}
	if h, ok := s.hists[name]; ok {
		return h
	}
	h := &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]uint64, len(bounds)+1),
	}
	s.hists[name] = h
	return h
}

// Observe records a sample into the named histogram, creating it with
// default exponential buckets (1, 2, 4, … 2^19) if needed. Hot paths
// should prefer holding the *Histogram from NewHistogram.
func (s *Stats) Observe(name string, v float64) {
	h := s.hists[name]
	if h == nil {
		h = s.NewHistogram(name, ExpBuckets(1, 2, 20))
	}
	h.Observe(v)
}

// Hist returns the named histogram (nil if never created).
func (s *Stats) Hist(name string) *Histogram { return s.hists[name] }

// HistNames returns all histogram names in sorted order.
func (s *Stats) HistNames() []string { return sortedKeys(s.hists) }

// CounterNames returns all counter names in sorted order.
func (s *Stats) CounterNames() []string { return sortedKeys(s.counters) }

// GaugeNames returns all gauge names in sorted order.
func (s *Stats) GaugeNames() []string { return sortedKeys(s.gauges) }

func sortedKeys[V any](m map[string]V) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Reset clears all counters, gauges, vectors and histograms. Histogram
// pointers handed out earlier are orphaned, not zeroed.
func (s *Stats) Reset() {
	s.counters = nil
	s.gauges = nil
	s.vectors = nil
	s.hists = nil
}

// Merge folds other into s:
//
//   - counters and vectors are summed (vectors element-wise, growing s's
//     vector to the longer length);
//   - histograms with identical bounds are summed bucket-wise; on a
//     bounds mismatch, other's histogram replaces s's (as a copy) — the
//     caller re-registered the metric with a new shape and the old
//     samples are not comparable;
//   - gauges are OVERWRITTEN by other's value, not combined. Gauges are
//     point-in-time readings (a rate, a ratio, a final level), for which
//     addition is meaningless; last writer wins, so merge order matters.
//     Callers needing combinable values must use counters or histograms.
func (s *Stats) Merge(other *Stats) {
	for n, v := range other.counters {
		s.Add(n, *v)
	}
	for n, v := range other.gauges {
		s.SetGauge(n, v)
	}
	for n, v := range other.vectors {
		dst := s.EnsureVec(n, len(v))
		for i, x := range v {
			dst[i] += x
		}
	}
	for n, oh := range other.hists {
		sh := s.Hist(n)
		if sh != nil && boundsEqual(sh.bounds, oh.bounds) {
			for i, c := range oh.counts {
				sh.counts[i] += c
			}
			sh.count += oh.count
			sh.sum += oh.sum
			continue
		}
		if s.hists == nil {
			s.hists = make(map[string]*Histogram)
		}
		s.hists[n] = &Histogram{
			bounds: append([]float64(nil), oh.bounds...),
			counts: append([]uint64(nil), oh.counts...),
			count:  oh.count,
			sum:    oh.sum,
		}
	}
}

func boundsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// CounterValue is one counter in a Snapshot.
type CounterValue struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// GaugeValue is one gauge in a Snapshot.
type GaugeValue struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// VectorValue is one vector counter in a Snapshot.
type VectorValue struct {
	Name   string  `json:"name"`
	Values []int64 `json:"values"`
}

// HistogramValue is one histogram in a Snapshot. Counts has one more
// entry than Bounds (the overflow bucket).
type HistogramValue struct {
	Name   string    `json:"name"`
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"`
	Count  uint64    `json:"count"`
	Sum    float64   `json:"sum"`
}

// StatsSnapshot is a stable, sorted, deep-copied view of a Stats — safe
// to serialize, hand across goroutines, or diff, long after the source
// Stats has moved on.
type StatsSnapshot struct {
	Counters   []CounterValue   `json:"counters"`
	Gauges     []GaugeValue     `json:"gauges,omitempty"`
	Vectors    []VectorValue    `json:"vectors,omitempty"`
	Histograms []HistogramValue `json:"histograms,omitempty"`
}

// Snapshot returns a sorted, deep-copied view of every metric. Report
// call sites iterate the slices directly instead of re-sorting map keys.
func (s *Stats) Snapshot() StatsSnapshot {
	var snap StatsSnapshot
	snap.Counters = make([]CounterValue, 0, len(s.counters))
	for _, n := range s.CounterNames() {
		snap.Counters = append(snap.Counters, CounterValue{Name: n, Value: *s.counters[n]})
	}
	for _, n := range s.GaugeNames() {
		snap.Gauges = append(snap.Gauges, GaugeValue{Name: n, Value: s.gauges[n]})
	}
	for _, n := range s.VecNames() {
		snap.Vectors = append(snap.Vectors, VectorValue{
			Name:   n,
			Values: append([]int64(nil), s.vectors[n]...),
		})
	}
	for _, n := range s.HistNames() {
		h := s.hists[n]
		snap.Histograms = append(snap.Histograms, HistogramValue{
			Name:   n,
			Bounds: append([]float64(nil), h.bounds...),
			Counts: append([]uint64(nil), h.counts...),
			Count:  h.count,
			Sum:    h.sum,
		})
	}
	return snap
}

// String renders the stats as "name=value" lines in sorted order:
// counters, then gauges (the historical format), then vectors and
// histogram summaries. It is intended for debugging and test failures.
func (s *Stats) String() string {
	var b strings.Builder
	for _, n := range s.CounterNames() {
		fmt.Fprintf(&b, "%s=%d\n", n, *s.counters[n])
	}
	for _, n := range s.GaugeNames() {
		fmt.Fprintf(&b, "%s=%g\n", n, s.gauges[n])
	}
	for _, n := range s.VecNames() {
		fmt.Fprintf(&b, "%s=%v\n", n, s.vectors[n])
	}
	for _, n := range s.HistNames() {
		h := s.hists[n]
		fmt.Fprintf(&b, "%s=count:%d sum:%g\n", n, h.count, h.sum)
	}
	return b.String()
}
