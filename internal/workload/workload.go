// Package workload generates benign memory access streams — the
// multi-tenant cloud traffic whose performance Rowhammer defenses must
// not ruin. The generators work over a tenant's allocated physical lines
// (translated up front by the host OS) and implement cpu.Program.
//
// The mixes matter for experiment E2: bank-partitioning isolation kills
// bank-level parallelism for streaming tenants (>18% measured by Tang et
// al. [49]), while subarray-isolated interleaving preserves it.
package workload

import (
	"fmt"
	"math"

	"hammertime/internal/cpu"
	"hammertime/internal/sim"
)

// Stream returns a program that walks lines sequentially (wrapping) for
// count accesses — the bank-level-parallelism-friendly pattern.
// Every access carries the given think time.
func Stream(lines []uint64, count int, think uint64) (cpu.Program, error) {
	if len(lines) == 0 {
		return nil, fmt.Errorf("workload: stream needs lines")
	}
	i := 0
	remaining := count
	return cpu.ProgramFunc(func() (cpu.Access, bool) {
		if remaining <= 0 {
			return cpu.Access{}, false
		}
		remaining--
		line := lines[i%len(lines)]
		i++
		return cpu.Access{Line: line, Think: think}, true
	}), nil
}

// Random returns a program that touches uniformly random lines for count
// accesses, with the given write fraction.
func Random(lines []uint64, count int, think uint64, writeFrac float64, rng *sim.RNG) (cpu.Program, error) {
	if len(lines) == 0 {
		return nil, fmt.Errorf("workload: random needs lines")
	}
	if rng == nil {
		return nil, fmt.Errorf("workload: random needs an RNG")
	}
	remaining := count
	return cpu.ProgramFunc(func() (cpu.Access, bool) {
		if remaining <= 0 {
			return cpu.Access{}, false
		}
		remaining--
		return cpu.Access{
			Line:  lines[rng.Intn(len(lines))],
			Write: rng.Bool(writeFrac),
			Think: think,
		}, true
	}), nil
}

// PointerChase returns a program that follows a fixed random permutation
// of the lines — dependent accesses with no spatial locality, the
// row-buffer-hostile pattern.
func PointerChase(lines []uint64, count int, think uint64, rng *sim.RNG) (cpu.Program, error) {
	if len(lines) == 0 {
		return nil, fmt.Errorf("workload: pointer chase needs lines")
	}
	if rng == nil {
		return nil, fmt.Errorf("workload: pointer chase needs an RNG")
	}
	order := rng.Perm(len(lines))
	i := 0
	remaining := count
	return cpu.ProgramFunc(func() (cpu.Access, bool) {
		if remaining <= 0 {
			return cpu.Access{}, false
		}
		remaining--
		line := lines[order[i%len(order)]]
		i++
		return cpu.Access{Line: line, Think: think}, true
	}), nil
}

// Zipfian returns a program whose accesses follow an approximate Zipf
// distribution over the lines (hot-head skew, the realistic shape for
// key-value and page-cache traffic). skew > 0 controls concentration;
// 0.99 is the YCSB default. Implemented by rejection-free inverse-power
// sampling over ranks, which matches Zipf closely for the head — the part
// that matters for row-buffer locality and ACT-counter behaviour.
func Zipfian(lines []uint64, count int, think uint64, skew float64, rng *sim.RNG) (cpu.Program, error) {
	if len(lines) == 0 {
		return nil, fmt.Errorf("workload: zipfian needs lines")
	}
	if rng == nil {
		return nil, fmt.Errorf("workload: zipfian needs an RNG")
	}
	if skew <= 0 || skew >= 2 {
		return nil, fmt.Errorf("workload: zipfian skew %g out of (0, 2)", skew)
	}
	n := float64(len(lines))
	inv := 1 / (1 - skew)
	remaining := count
	return cpu.ProgramFunc(func() (cpu.Access, bool) {
		if remaining <= 0 {
			return cpu.Access{}, false
		}
		remaining--
		// Inverse-CDF of the continuous power-law approximation of Zipf:
		// rank = n * u^{1/(1-skew)} spans [0, n) with the right head mass.
		u := rng.Float64()
		rank := int(n * math.Pow(u, inv))
		if rank >= len(lines) {
			rank = len(lines) - 1
		}
		return cpu.Access{Line: lines[rank], Think: think}, true
	}), nil
}

// Mix interleaves the given programs round-robin into one stream,
// finishing when all of them finish.
func Mix(progs ...cpu.Program) cpu.Program {
	active := append([]cpu.Program(nil), progs...)
	i := 0
	return cpu.ProgramFunc(func() (cpu.Access, bool) {
		for len(active) > 0 {
			i %= len(active)
			acc, ok := active[i].Next()
			if ok {
				i++
				return acc, true
			}
			active = append(active[:i], active[i+1:]...)
		}
		return cpu.Access{}, false
	})
}

// Limit truncates a program to at most count accesses.
func Limit(p cpu.Program, count int) cpu.Program {
	remaining := count
	return cpu.ProgramFunc(func() (cpu.Access, bool) {
		if remaining <= 0 {
			return cpu.Access{}, false
		}
		remaining--
		return p.Next()
	})
}
