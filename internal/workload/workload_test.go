package workload

import (
	"testing"

	"hammertime/internal/cpu"
	"hammertime/internal/sim"
)

func drain(t *testing.T, p cpu.Program, max int) []cpu.Access {
	t.Helper()
	var out []cpu.Access
	for i := 0; i < max; i++ {
		a, ok := p.Next()
		if !ok {
			return out
		}
		out = append(out, a)
	}
	t.Fatalf("program did not finish within %d accesses", max)
	return nil
}

func TestStreamSequentialWrap(t *testing.T) {
	p, err := Stream([]uint64{10, 11, 12}, 7, 5)
	if err != nil {
		t.Fatal(err)
	}
	accs := drain(t, p, 100)
	if len(accs) != 7 {
		t.Fatalf("accesses = %d", len(accs))
	}
	want := []uint64{10, 11, 12, 10, 11, 12, 10}
	for i, a := range accs {
		if a.Line != want[i] {
			t.Fatalf("access %d line = %d, want %d", i, a.Line, want[i])
		}
		if a.Think != 5 {
			t.Fatalf("think = %d", a.Think)
		}
	}
}

func TestStreamValidates(t *testing.T) {
	if _, err := Stream(nil, 10, 0); err == nil {
		t.Fatal("empty lines accepted")
	}
}

func TestRandomStaysInRangeAndWrites(t *testing.T) {
	lines := []uint64{1, 2, 3, 4}
	rng := sim.NewRNG(9)
	p, err := Random(lines, 1000, 0, 0.5, rng)
	if err != nil {
		t.Fatal(err)
	}
	writes := 0
	valid := map[uint64]bool{1: true, 2: true, 3: true, 4: true}
	for _, a := range drain(t, p, 2000) {
		if !valid[a.Line] {
			t.Fatalf("line %d outside the working set", a.Line)
		}
		if a.Write {
			writes++
		}
	}
	if writes < 350 || writes > 650 {
		t.Fatalf("writes = %d/1000, want ~500", writes)
	}
}

func TestRandomValidates(t *testing.T) {
	if _, err := Random([]uint64{1}, 1, 0, 0, nil); err == nil {
		t.Fatal("nil rng accepted")
	}
	if _, err := Random(nil, 1, 0, 0, sim.NewRNG(1)); err == nil {
		t.Fatal("empty lines accepted")
	}
}

func TestPointerChaseVisitsAllLines(t *testing.T) {
	lines := []uint64{10, 20, 30, 40, 50}
	p, err := PointerChase(lines, 5, 0, sim.NewRNG(2))
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[uint64]bool)
	for _, a := range drain(t, p, 10) {
		seen[a.Line] = true
	}
	if len(seen) != 5 {
		t.Fatalf("one period visited %d distinct lines, want 5", len(seen))
	}
}

func TestMixInterleavesAndFinishes(t *testing.T) {
	a, err := Stream([]uint64{1}, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Stream([]uint64{2}, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	accs := drain(t, Mix(a, b), 100)
	if len(accs) != 6 {
		t.Fatalf("mixed accesses = %d, want 6", len(accs))
	}
	if accs[0].Line != 1 || accs[1].Line != 2 || accs[2].Line != 1 || accs[3].Line != 2 {
		t.Fatalf("mix order wrong: %+v", accs[:4])
	}
	// After a finishes, the rest must come from b.
	if accs[4].Line != 2 || accs[5].Line != 2 {
		t.Fatal("mix did not drain the surviving program")
	}
}

func TestLimitTruncates(t *testing.T) {
	s, err := Stream([]uint64{1}, 100, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(drain(t, Limit(s, 3), 10)); got != 3 {
		t.Fatalf("limited to %d accesses, want 3", got)
	}
}

func TestZipfianSkewConcentratesHead(t *testing.T) {
	lines := make([]uint64, 1000)
	for i := range lines {
		lines[i] = uint64(i)
	}
	p, err := Zipfian(lines, 20000, 0, 0.99, sim.NewRNG(11))
	if err != nil {
		t.Fatal(err)
	}
	headHits := 0
	total := 0
	for {
		a, ok := p.Next()
		if !ok {
			break
		}
		total++
		if a.Line < 100 { // hottest 10% of the working set
			headHits++
		}
	}
	if total != 20000 {
		t.Fatalf("total = %d", total)
	}
	frac := float64(headHits) / float64(total)
	if frac < 0.5 {
		t.Fatalf("head fraction = %.2f, want > 0.5 under zipf(0.99)", frac)
	}
}

func TestZipfianValidates(t *testing.T) {
	rng := sim.NewRNG(1)
	if _, err := Zipfian(nil, 1, 0, 0.99, rng); err == nil {
		t.Fatal("empty lines accepted")
	}
	if _, err := Zipfian([]uint64{1}, 1, 0, 0, rng); err == nil {
		t.Fatal("zero skew accepted")
	}
	if _, err := Zipfian([]uint64{1}, 1, 0, 0.99, nil); err == nil {
		t.Fatal("nil rng accepted")
	}
}
