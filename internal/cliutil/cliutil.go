// Package cliutil holds the observability and robustness surface shared
// by the CLI tools: event-trace flags (-trace-events/-trace-format),
// machine-readable metrics output (-metrics-out), opt-in pprof profiling
// (-pprof-cpu/-pprof-http), the online invariant auditor (-check), and
// the fail-soft/resume flags (-fail-soft/-retries/-cell-timeout/-resume).
package cliutil

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof handlers on -pprof-http
	"os"
	"os/signal"
	"runtime/pprof"
	"syscall"
	"time"

	"hammertime/internal/core"
	"hammertime/internal/harness"
	"hammertime/internal/obs"
	"hammertime/internal/telemetry"
)

// ObsFlags collects the observability command-line options.
type ObsFlags struct {
	TraceEvents string
	TraceFormat string
	MetricsOut  string
	PprofCPU    string
	PprofHTTP   string
}

// Register installs the flags on the default flag set.
func (f *ObsFlags) Register() {
	flag.StringVar(&f.TraceEvents, "trace-events", "", "write the simulator event stream to this file (see -trace-format)")
	flag.StringVar(&f.TraceFormat, "trace-format", "jsonl", "event trace format: jsonl, or chrome (open in Perfetto / chrome://tracing)")
	flag.StringVar(&f.MetricsOut, "metrics-out", "", "write machine-readable metrics JSON to this file")
	flag.StringVar(&f.PprofCPU, "pprof-cpu", "", "write a CPU profile of the run to this file")
	flag.StringVar(&f.PprofHTTP, "pprof-http", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
}

// RobustFlags collects the fail-soft/resume/correctness command-line
// options.
type RobustFlags struct {
	FailSoft    bool
	Retries     int
	Backoff     time.Duration
	CellTimeout time.Duration
	Resume      string
	Check       bool
	SlowCell    time.Duration
}

// Register installs the flags on the default flag set.
func (f *RobustFlags) Register() {
	flag.BoolVar(&f.FailSoft, "fail-soft", false, "record per-cell failures and finish the run; failed cells render as ERR(reason)")
	flag.IntVar(&f.Retries, "retries", 0, "re-run a failed experiment cell up to this many extra times")
	flag.DurationVar(&f.Backoff, "retry-backoff", 50*time.Millisecond, "base delay before a cell retry; doubles per attempt with deterministic jitter (0 = retry immediately)")
	flag.DurationVar(&f.CellTimeout, "cell-timeout", 0, "per-cell wall-clock deadline, e.g. 30s (0 = none)")
	flag.StringVar(&f.Resume, "resume", "", "checkpoint file: completed cells are appended there and restored on rerun")
	flag.BoolVar(&f.Check, "check", false, "enable the online invariant auditor: every machine verifies row-buffer/refresh/charge invariants as it runs (observer-only; a violation fails the cell)")
	flag.DurationVar(&f.SlowCell, "slow-cell", time.Minute, "warn on stderr when a grid cell runs longer than this without finishing (0 = off)")
}

// Apply installs the flags' policy, cell-event observer, and checkpoint
// in the harness. The returned cleanup restores the package-wide state
// and closes the checkpoint; its error (e.g. a checkpoint write that
// failed mid-run) must reach the CLI exit code — a silently truncated
// checkpoint would resume wrong.
func (f *RobustFlags) Apply(rec *obs.Recorder) (cleanup func() error, err error) {
	if f.Retries < 0 {
		return nil, fmt.Errorf("retries: must be >= 0 (got %d)", f.Retries)
	}
	if f.Backoff < 0 {
		return nil, fmt.Errorf("retry-backoff: must be >= 0 (got %v)", f.Backoff)
	}
	if f.CellTimeout < 0 {
		return nil, fmt.Errorf("cell-timeout: must be >= 0 (got %v)", f.CellTimeout)
	}
	harness.SetPolicy(harness.Policy{
		FailSoft:    f.FailSoft,
		Retries:     f.Retries,
		Backoff:     f.Backoff,
		CellTimeout: f.CellTimeout,
	})
	harness.SetGridObserver(rec)
	core.SetChecking(f.Check)
	// The harness's warnings (slow-cell watchdog, failed cells under
	// fail-soft) go to stderr; tables and results own stdout.
	harness.SetLogger(slog.New(slog.NewTextHandler(os.Stderr,
		&slog.HandlerOptions{Level: slog.LevelWarn})))
	harness.SetSlowCellWarn(f.SlowCell)
	var ck *harness.Checkpoint
	restore := func() error {
		harness.SetPolicy(harness.Policy{})
		harness.SetGridObserver(nil)
		harness.SetCheckpoint(nil)
		core.SetChecking(false)
		harness.SetLogger(nil)
		harness.SetSlowCellWarn(time.Minute)
		if ck != nil {
			closeErr := ck.Close()
			ck = nil
			if closeErr != nil {
				return fmt.Errorf("resume: %w", closeErr)
			}
		}
		return nil
	}
	if f.Resume != "" {
		ck, err = harness.OpenCheckpoint(f.Resume)
		if err != nil {
			restore()
			return nil, fmt.Errorf("resume: %w", err)
		}
		harness.SetCheckpoint(ck)
		if n := ck.Loaded(); n > 0 {
			fmt.Fprintf(os.Stderr, "resume: restored %d completed cells from %s\n", n, f.Resume)
		}
	}
	return restore, nil
}

// ShutdownContext returns a context cancelled on SIGINT/SIGTERM, for
// threading into experiment grids and machine runs: the first signal
// cancels the context so in-flight simulations tear down at their next
// cancellation point (core.ErrCancelled) and the CLI's deferred teardown
// — trace flush, checkpoint close, metrics write — still runs before the
// process exits nonzero. A second signal falls back to the Go runtime's
// default handling (immediate kill), so a hung run stays interruptible.
func ShutdownContext() (context.Context, context.CancelFunc) {
	return signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
}

// Session is the started observability state. Close flushes and releases
// everything; it is safe to call on a zero Session.
type Session struct {
	// Recorder is non-nil iff -trace-events was given. Attach it to the
	// machines under test (e.g. via AttackOpts.Observer).
	Recorder *obs.Recorder

	// scope carries the CLI run's tracer; spans started by the harness
	// (grid, cells) and the core (machine.run/drain) land in the trace
	// file next to the simulator events at Close.
	scope      *telemetry.Scope
	chromeSink *obs.ChromeTrace
	jsonlSink  *obs.JSONL

	traceFile   *os.File
	profFile    *os.File
	metricsPath string
	synced      bool
}

// Context threads the session's telemetry scope into ctx: with
// -trace-events set, experiment grids and machine runs started under
// the returned context record spans into the trace file. Without a
// scope it returns ctx unchanged.
func (s *Session) Context(ctx context.Context) context.Context {
	return telemetry.NewContext(ctx, s.scope)
}

// Start opens files, builds the event recorder, and begins profiling
// according to the flags. syncSinks wraps the trace sink in a mutex —
// required when the recorder will be shared across parallel harness
// cells.
func (f *ObsFlags) Start(syncSinks bool) (*Session, error) {
	s := &Session{metricsPath: f.MetricsOut, synced: syncSinks}
	if f.TraceEvents != "" {
		file, err := os.Create(f.TraceEvents)
		if err != nil {
			return nil, fmt.Errorf("trace-events: %w", err)
		}
		var sink obs.Sink
		switch f.TraceFormat {
		case "jsonl":
			j := obs.NewJSONL(file)
			s.jsonlSink = j
			sink = j
		case "chrome":
			ct := obs.NewChromeTrace(file)
			s.chromeSink = ct
			sink = ct
		default:
			file.Close()
			return nil, fmt.Errorf("trace-format: unknown format %q (want jsonl or chrome)", f.TraceFormat)
		}
		if syncSinks {
			sink = obs.NewSyncSink(sink)
		}
		s.traceFile = file
		s.Recorder = obs.NewRecorder(sink)
		s.scope = &telemetry.Scope{Tracer: telemetry.NewTracer()}
	}
	if f.PprofCPU != "" {
		file, err := os.Create(f.PprofCPU)
		if err != nil {
			s.Close()
			return nil, fmt.Errorf("pprof-cpu: %w", err)
		}
		if err := pprof.StartCPUProfile(file); err != nil {
			file.Close()
			s.Close()
			return nil, fmt.Errorf("pprof-cpu: %w", err)
		}
		s.profFile = file
	}
	if f.PprofHTTP != "" {
		addr := f.PprofHTTP
		go func() {
			if err := http.ListenAndServe(addr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "pprof-http:", err)
			}
		}()
	}
	return s, nil
}

// WriteMetrics serializes v (a sim.StatsSnapshot, a harness.BenchReport,
// or any other JSON-ready report) to the -metrics-out file. No-op when
// the flag was not given.
func (s *Session) WriteMetrics(v interface{}) error {
	if s.metricsPath == "" {
		return nil
	}
	file, err := os.Create(s.metricsPath)
	if err != nil {
		return fmt.Errorf("metrics-out: %w", err)
	}
	enc := json.NewEncoder(file)
	enc.SetIndent("", "  ")
	err = enc.Encode(v)
	if cerr := file.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("metrics-out: %w", err)
	}
	return nil
}

// Close exports the run's spans into the trace, flushes it, and stops
// CPU profiling.
func (s *Session) Close() error {
	var first error
	// Span export happens after the run, single-threaded, so it writes
	// the underlying sink directly even when the recorder was synced.
	if s.scope != nil && s.scope.Tracer != nil {
		if spans := s.scope.Tracer.Snapshot(); len(spans) > 0 {
			switch {
			case s.chromeSink != nil:
				telemetry.ExportChrome(s.chromeSink, spans)
			case s.jsonlSink != nil:
				telemetry.ExportJSONL(s.jsonlSink, spans)
			}
		}
		s.scope = nil
	}
	if s.Recorder != nil {
		if err := s.Recorder.Flush(); err != nil {
			first = err
		}
	}
	if s.traceFile != nil {
		if err := s.traceFile.Close(); err != nil && first == nil {
			first = err
		}
		s.traceFile = nil
	}
	if s.profFile != nil {
		pprof.StopCPUProfile()
		if err := s.profFile.Close(); err != nil && first == nil {
			first = err
		}
		s.profFile = nil
	}
	return first
}
