package defense

import (
	"errors"
	"fmt"

	"hammertime/internal/addr"
	"hammertime/internal/cache"
	"hammertime/internal/core"
	"hammertime/internal/memctrl"
)

// ACTRemap is the paper's §4.2 "ACT wear-leveling" software defense on
// top of the precise ACT interrupt: when the interrupt identifies a
// probable aggressor row, the host migrates the backing page to a new
// physical location. The aggressor's virtual address now maps elsewhere,
// so no physical row ever absorbs MAC activations. Because the memory
// controller sees DMA activations too, this also stops DMA hammering —
// unlike counter-sampling defenses.
type ACTRemap struct {
	// Randomize jitters the counter reset value (§4.2 anti-evasion).
	// Enabled by default via New; zero value keeps it off for ablation.
	Randomize bool
	// UncoreMove uses the §4.2 proposed uncore move instruction for the
	// page copy: the controller moves lines through its internal buffers,
	// overlapping the read and write instead of round-tripping each line.
	UncoreMove bool

	migrations, failures uint64
}

// Name implements core.Defense.
func (d *ACTRemap) Name() string {
	if d.UncoreMove {
		return "actremap(uncore-move)"
	}
	return "actremap"
}

// Class implements core.Defense.
func (*ACTRemap) Class() core.Class { return core.ClassFrequency }

// Configure implements core.Defense.
func (d *ACTRemap) Configure(*core.MachineSpec) error {
	d.Randomize = true
	return nil
}

// Attach implements core.Defense.
func (d *ACTRemap) Attach(m *core.Machine) error {
	m.Kernel.EnableRandomizedMigration(m.RNG.Fork())
	if d.UncoreMove {
		m.Kernel.EnableUncoreMove()
	}
	det := newDetector(m, d.Randomize)
	handler := func(ev memctrl.ACTEvent) uint64 {
		flagged, reset := det.observe(ev)
		if flagged {
			domain, vpn, ok := m.Kernel.VPNOfLine(ev.Line)
			if ok {
				if _, err := m.Kernel.MigratePage(domain, vpn, ev.Cycle); err != nil {
					d.failures++
				} else {
					d.migrations++
				}
			}
		}
		return reset
	}
	return m.MC.EnableACTCounter(true, det.threshold(), handler)
}

// Migrations returns successful and failed wear-leveling migrations.
func (d *ACTRemap) Migrations() (ok, failed uint64) { return d.migrations, d.failures }

// ACTLock is the paper's §4.2 cache-line-locking defense: a flagged
// aggressor line is pinned into the LLC for the rest of the refresh
// window, so the attacker's accesses hit cache and generate no further
// activations. When the per-set lock budget is exhausted the defense
// falls back to page migration, exactly as the paper prescribes.
//
// Known limitation (inherent to the mechanism, not the model): locking
// pins the reported line; an attacker rotating across many lines of the
// same row dilutes it toward the migration fallback.
type ACTLock struct {
	Randomize bool

	locks, fallbacks uint64
	locked           []lockedLine
	// rowFlags counts detector flags per (bank,row): a row that stays
	// hot after a line was locked is being hammered through other lines
	// (line rotation), so the defense escalates to data movement.
	rowFlags map[[2]int]int
	machine  *core.Machine
}

type lockedLine struct {
	line  uint64
	cycle uint64
}

// Name implements core.Defense.
func (d *ACTLock) Name() string { return "actlock" }

// Class implements core.Defense.
func (*ACTLock) Class() core.Class { return core.ClassFrequency }

// Configure implements core.Defense.
func (d *ACTLock) Configure(*core.MachineSpec) error {
	d.Randomize = true
	return nil
}

// Attach implements core.Defense.
func (d *ACTLock) Attach(m *core.Machine) error {
	d.machine = m
	d.rowFlags = make(map[[2]int]int)
	m.Kernel.EnableRandomizedMigration(m.RNG.Fork())
	det := newDetector(m, d.Randomize)
	window := m.Spec.Timing.RefreshWindow
	handler := func(ev memctrl.ACTEvent) uint64 {
		flagged, reset := det.observe(ev)
		if flagged {
			d.rowFlags[[2]int{ev.Bank, ev.Row}]++
			if d.rowFlags[[2]int{ev.Bank, ev.Row}] > 1 {
				// The row stayed hot after locking: the attacker is
				// rotating lines, and per-line responses cannot win that
				// race. Evacuate every page with data in the row — the
				// decisive form of the paper's movement fallback.
				d.fallbacks += evacuateRow(m, ev.Bank, ev.Row, ev.Cycle)
				return reset
			}
			if ev.Source.Kind == memctrl.SourceDMA {
				// Cache locking cannot stop uncached DMA traffic; the
				// interrupt's source field says so, and the defense
				// adapts by moving the data instead — the software
				// flexibility §4 argues for.
				domain, vpn, ok := m.Kernel.VPNOfLine(ev.Line)
				if ok {
					if _, merr := m.Kernel.MigratePage(domain, vpn, ev.Cycle); merr == nil {
						d.fallbacks++
					}
				}
				return reset
			}
			err := m.Cache.Lock(ev.Line)
			switch {
			case err == nil:
				d.locks++
				d.locked = append(d.locked, lockedLine{line: ev.Line, cycle: ev.Cycle})
			case errors.Is(err, cache.ErrLockBudget):
				// Way budget full: fall back to data movement (§4.2).
				domain, vpn, ok := m.Kernel.VPNOfLine(ev.Line)
				if ok {
					if _, merr := m.Kernel.MigratePage(domain, vpn, ev.Cycle); merr == nil {
						d.fallbacks++
					}
				}
			default:
				// Locking failed for an unexpected reason; surface it as
				// a defense misconfiguration.
				panic(fmt.Sprintf("defense: actlock: %v", err))
			}
		}
		return reset
	}
	if err := m.MC.EnableACTCounter(true, det.threshold(), handler); err != nil {
		return err
	}
	// Locks are held "for the duration of a refresh interval" (§4.2):
	// a daemon releases expired locks.
	m.AddDaemon(&unlockDaemon{defense: d, interval: window / 8, window: window})
	return nil
}

// Locks returns lock responses and migration fallbacks so far.
func (d *ACTLock) Locks() (locks, fallbacks uint64) { return d.locks, d.fallbacks }

// evacuateRow migrates every page owning data in (bank, row) to fresh
// frames, returning how many pages moved. Allocation failures are
// tolerated — partial evacuation still drains most of the row.
func evacuateRow(m *core.Machine, bank, row int, cycle uint64) uint64 {
	g := m.Mapper.Geometry()
	seen := make(map[[2]uint64]bool) // (domain, vpn)
	var moved uint64
	for col := 0; col < g.ColumnsPerRow; col++ {
		line := m.Mapper.Unmap(addr.DDR{Bank: bank, Row: row, Column: col})
		domain, vpn, ok := m.Kernel.VPNOfLine(line)
		if !ok {
			continue
		}
		key := [2]uint64{uint64(domain), vpn}
		if seen[key] {
			continue
		}
		seen[key] = true
		if _, err := m.Kernel.MigratePage(domain, vpn, cycle); err == nil {
			moved++
		}
	}
	return moved
}

// unlockDaemon periodically releases locks older than one refresh window.
type unlockDaemon struct {
	defense  *ACTLock
	interval uint64
	window   uint64
}

// Done implements core.Agent; the daemon runs for the whole simulation.
func (u *unlockDaemon) Done() bool { return false }

// Step implements core.Agent.
func (u *unlockDaemon) Step(now uint64) (uint64, bool, error) {
	d := u.defense
	keep := d.locked[:0]
	for _, l := range d.locked {
		if now >= l.cycle+u.window {
			d.machine.Cache.Unlock(l.line)
		} else {
			keep = append(keep, l)
		}
	}
	d.locked = keep
	return now + u.interval, true, nil
}
