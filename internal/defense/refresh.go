package defense

import (
	"sort"

	"hammertime/internal/addr"
	"hammertime/internal/core"
	"hammertime/internal/cpu"
	"hammertime/internal/memctrl"
)

// SWRefresh is the paper's §4.3 refresh-centric software defense: the
// precise ACT interrupt identifies probable aggressors, and the host
// refreshes their potential victims with the proposed host-privileged
// refresh instruction — no loads, no cache manipulation, no bus data.
// With UseRefNeighbors it instead issues the optional REF_NEIGHBORS DDR
// command, letting DRAM refresh all victims in one shot.
type SWRefresh struct {
	Randomize       bool
	UseRefNeighbors bool

	refreshes uint64
}

// Name implements core.Defense.
func (d *SWRefresh) Name() string {
	if d.UseRefNeighbors {
		return "swrefresh(ref-neighbors)"
	}
	return "swrefresh"
}

// Class implements core.Defense.
func (*SWRefresh) Class() core.Class { return core.ClassRefresh }

// Configure implements core.Defense.
func (d *SWRefresh) Configure(*core.MachineSpec) error {
	d.Randomize = true
	return nil
}

// Attach implements core.Defense.
func (d *SWRefresh) Attach(m *core.Machine) error {
	det := newDetector(m, d.Randomize)
	radius := m.Spec.Profile.BlastRadius
	geom := m.Mapper.Geometry()
	handler := func(ev memctrl.ACTEvent) uint64 {
		flagged, reset := det.observe(ev)
		if !flagged {
			return reset
		}
		if d.UseRefNeighbors {
			if _, err := m.MC.RefreshNeighborsCmd(ev.Line, radius, 0, ev.Cycle); err == nil {
				d.refreshes++
			}
			return reset
		}
		// Refresh every potential victim row with one refresh
		// instruction each (row adjacency known per §2.1).
		for dist := 1; dist <= radius; dist++ {
			for _, victim := range [2]int{ev.Row - dist, ev.Row + dist} {
				if !geom.ValidRow(victim) || !geom.SameSubarray(ev.Row, victim) {
					continue
				}
				line := m.Mapper.Unmap(addr.DDR{Bank: ev.Bank, Row: victim, Column: 0})
				if _, err := m.Kernel.RefreshLine(line, true, ev.Cycle); err == nil {
					d.refreshes++
				}
			}
		}
		return reset
	}
	return m.MC.EnableACTCounter(true, det.threshold(), handler)
}

// Refreshes returns how many targeted refreshes the defense issued.
func (d *SWRefresh) Refreshes() uint64 { return d.refreshes }

// ANVIL approximates Aweke et al.'s ASPLOS'16 defense on today's
// hardware: a daemon samples per-core LLC-miss counters and PEBS-style
// miss addresses, flags hot rows, and "refreshes" their neighbors the
// only way current machines allow — by issuing loads and hoping they
// activate the victim rows (§4.3's convoluted path).
//
// Its structural blind spot (§1): DMA traffic never appears in core
// performance counters, so DMA hammering sails through.
type ANVIL struct {
	// Interval is the sampling period in cycles (0 means 50_000).
	Interval uint64
	// HotSamples flags a row seen this many times in one sampling period.
	HotSamples int

	cores     []*cpu.Core
	refreshes uint64
	triggers  uint64
}

// Name implements core.Defense.
func (d *ANVIL) Name() string { return "anvil" }

// Class implements core.Defense.
func (*ANVIL) Class() core.Class { return core.ClassRefresh }

// Configure implements core.Defense.
func (d *ANVIL) Configure(*core.MachineSpec) error {
	if d.Interval == 0 {
		d.Interval = 50_000
	}
	if d.HotSamples == 0 {
		d.HotSamples = 8
	}
	return nil
}

// Attach implements core.Defense.
func (d *ANVIL) Attach(m *core.Machine) error {
	m.AddDaemon(&anvilDaemon{defense: d, machine: m})
	return nil
}

// ObserveCores registers the cores whose PMUs the daemon samples. The
// harness calls this after creating the cores (the real ANVIL equally
// only sees CPU cores).
func (d *ANVIL) ObserveCores(cores []*cpu.Core) { d.cores = cores }

// Refreshes returns issued neighbor-row loads; Triggers returns how many
// sampling periods flagged at least one hot row.
func (d *ANVIL) Refreshes() uint64 { return d.refreshes }

// Triggers returns how many hot rows the daemon reacted to.
func (d *ANVIL) Triggers() uint64 { return d.triggers }

type anvilDaemon struct {
	defense *ANVIL
	machine *core.Machine
}

// Done implements core.Agent.
func (a *anvilDaemon) Done() bool { return false }

// Step implements core.Agent.
func (a *anvilDaemon) Step(now uint64) (uint64, bool, error) {
	d := a.defense
	m := a.machine
	geom := m.Mapper.Geometry()
	radius := m.Spec.Profile.BlastRadius
	// Most sampling periods are quiet (no PEBS samples at all on an idle
	// or cache-friendly machine); allocate the aggregation map and key
	// slice only once a sample actually shows up.
	var hot map[[2]int]int
	for _, c := range d.cores {
		for _, line := range c.Samples() {
			if hot == nil {
				hot = make(map[[2]int]int)
			}
			dd := m.Mapper.Map(line)
			hot[[2]int{dd.Bank, dd.Row}]++
		}
	}
	// The refresh loads below advance the bank clocks, so the order the
	// hot rows are serviced in is simulation-visible: iterate them in a
	// fixed (bank, row) order, not randomized map order.
	var keys [][2]int
	if len(hot) > 0 {
		keys = make([][2]int, 0, len(hot))
	}
	for key := range hot {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	t := now
	for _, key := range keys {
		if hot[key] < d.HotSamples {
			continue
		}
		d.triggers++
		bank, row := key[0], key[1]
		for dist := 1; dist <= radius; dist++ {
			for _, victim := range [2]int{row - dist, row + dist} {
				if !geom.ValidRow(victim) || !geom.SameSubarray(row, victim) {
					continue
				}
				// Legacy refresh path: a plain read that (if the row is
				// closed) activates — and thereby recharges — the victim.
				line := m.Mapper.Unmap(addr.DDR{Bank: bank, Row: victim, Column: 0})
				res, err := m.MC.ServeRequest(memctrl.Request{
					Line:   line,
					Domain: 0,
					Source: memctrl.Source{Kind: memctrl.SourceKernel},
				}, t)
				if err != nil {
					return now, false, err
				}
				t = res.Completion
				d.refreshes++
			}
		}
	}
	next := now + d.Interval
	if t > next {
		next = t
	}
	return next, true, nil
}
