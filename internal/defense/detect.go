package defense

import (
	"hammertime/internal/core"
	"hammertime/internal/memctrl"
	"hammertime/internal/obs"
	"hammertime/internal/sim"
)

// detector is the shared software-side aggressor identifier built on the
// precise ACT interrupt (§4.2): the channel-wide ACT counter overflows
// every ~SampleEvery activations and reports the physical address of the
// latest ACT-triggering access. Rows that appear in Hits consecutive-ish
// events within a refresh window are flagged as probable aggressors.
//
// The counter reset value is randomized around SampleEvery so an attacker
// cannot phase-lock its accesses to dodge sampling (§4.2).
type detector struct {
	sampleEvery uint64
	hits        uint64
	window      uint64
	randomize   bool
	rng         *sim.RNG

	// machine is retained for the event recorder, which is read lazily at
	// observe time: the recorder is usually attached after BuildWithDefense
	// (and therefore after Attach built this detector).
	machine *core.Machine

	counts    map[[2]int]uint64
	windowEnd uint64
	events    uint64
	flagged   uint64
}

// detectorParams derives sampling parameters from the machine: sample
// every MAC/16 ACTs, flag after 4 hits — so a row responsible for even a
// quarter of channel traffic is flagged well before its neighbors absorb
// MAC activations.
func newDetector(m *core.Machine, randomize bool) *detector {
	se := m.Spec.Profile.MAC / 16
	if se == 0 {
		se = 1
	}
	return &detector{
		sampleEvery: se,
		hits:        4,
		window:      m.Spec.Timing.RefreshWindow,
		randomize:   randomize,
		rng:         m.RNG.Fork(),
		machine:     m,
		counts:      make(map[[2]int]uint64),
	}
}

// threshold returns the initial ACT-counter threshold.
func (d *detector) threshold() uint64 { return d.sampleEvery }

// observe consumes one precise ACT event. It returns flagged=true when the
// event's row has crossed the hit threshold (the caller then responds and
// the row's count resets), plus the counter reset value to install.
func (d *detector) observe(ev memctrl.ACTEvent) (flagged bool, resetTo uint64) {
	d.events++
	if d.windowEnd == 0 {
		d.windowEnd = d.window
	}
	for ev.Cycle >= d.windowEnd {
		// New refresh window: all rows were (or will soon be) refreshed
		// by the sweep; restart the evidence.
		d.counts = make(map[[2]int]uint64)
		d.windowEnd += d.window
	}
	resetTo = 0
	if d.randomize {
		// Reset to a random fraction of the threshold: the next overflow
		// comes after a jittered number of ACTs.
		resetTo = d.rng.Uint64n(d.sampleEvery / 2)
	}
	if !ev.HasAddr {
		// Legacy event: no address, nothing to attribute (§4.2 problem).
		return false, resetTo
	}
	key := [2]int{ev.Bank, ev.Row}
	d.counts[key]++
	if d.counts[key] >= d.hits {
		delete(d.counts, key)
		d.flagged++
		d.machine.Recorder().Emit(obs.Event{
			Kind:   obs.KindDefenseTrigger,
			Cycle:  ev.Cycle,
			Bank:   ev.Bank,
			Row:    ev.Row,
			Domain: ev.Domain,
			Line:   ev.Line,
		})
		return true, resetTo
	}
	return false, resetTo
}
