package defense

import (
	"hammertime/internal/core"
	"hammertime/internal/dram"
	"hammertime/internal/hostos"
	"hammertime/internal/memctrl"
)

// ECCScrub combines SECDED ECC with a patrol scrubber: a daemon that
// cycles through physical memory, reading each line so ECC can repair
// single-bit flips before a second flip in the same word makes them
// uncorrectable. It narrows — but cannot close — the Rowhammer window:
// words that collect two flips between patrol visits still machine-check,
// and multi-flip aliases still launder silent corruption (E9 measures
// both). This is the strongest deployed in-DRAM-adjacent baseline short
// of real mitigations.
type ECCScrub struct {
	// Interval is the daemon's wake period in cycles (0 means 100_000).
	Interval uint64
	// LinesPerPass is how many lines one wake scrubs (0 means 64).
	LinesPerPass int

	corrected uint64
	detected  uint64
}

// Name implements core.Defense.
func (d *ECCScrub) Name() string { return "ecc+scrub" }

// Class implements core.Defense.
func (*ECCScrub) Class() core.Class { return core.ClassInDRAM }

// Configure implements core.Defense.
func (d *ECCScrub) Configure(spec *core.MachineSpec) error {
	spec.ECC = true
	if d.Interval == 0 {
		d.Interval = 100_000
	}
	if d.LinesPerPass == 0 {
		d.LinesPerPass = 64
	}
	return nil
}

// Attach implements core.Defense.
func (d *ECCScrub) Attach(m *core.Machine) error {
	m.AddDaemon(&scrubDaemon{defense: d, machine: m})
	return nil
}

// Counts returns the cumulative scrub outcomes.
func (d *ECCScrub) Counts() (corrected, detected uint64) { return d.corrected, d.detected }

type scrubDaemon struct {
	defense *ECCScrub
	machine *core.Machine
	next    uint64 // next physical line in the patrol cycle
}

// Done implements core.Agent.
func (s *scrubDaemon) Done() bool { return false }

// Step implements core.Agent: scrub the next batch of lines. Each scrub
// is a real read (memory traffic and row activations are paid), followed
// by the ECC repair.
func (s *scrubDaemon) Step(now uint64) (uint64, bool, error) {
	d := s.defense
	m := s.machine
	total := m.Spec.Geometry.TotalLines()
	t := now
	for i := 0; i < d.LinesPerPass; i++ {
		line := s.next % total
		s.next++
		// Patrol scrubs only visit allocated memory (the host knows its
		// own frame map); untouched frames hold no data to protect.
		if _, owned := m.Kernel.OwnerOfLine(line); !owned {
			continue
		}
		res, err := m.MC.ServeRequest(memctrl.Request{
			Line:   line,
			Domain: hostos.HostDomain,
			Source: memctrl.Source{Kind: memctrl.SourceKernel},
		}, t)
		if err != nil {
			return now, false, err
		}
		t = res.Completion
		dd := m.Mapper.Map(line)
		corr, det, err := m.DRAM.ScrubLine(dram.LineAddr{Bank: dd.Bank, Row: dd.Row, Column: dd.Column})
		if err != nil {
			return now, false, err
		}
		d.corrected += uint64(corr)
		d.detected += uint64(det)
	}
	next := now + d.Interval
	if t > next {
		next = t
	}
	return next, true, nil
}
