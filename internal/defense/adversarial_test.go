package defense

import (
	"testing"

	"hammertime/internal/attack"
	"hammertime/internal/core"
	"hammertime/internal/cpu"
	"hammertime/internal/dram"
	"hammertime/internal/memctrl"
)

// buildAttackBed creates a machine with the defense applied and two
// domains with interleaved pages; returns machine and the attacker id.
func buildAttackBed(t *testing.T, d core.Defense) (*core.Machine, int) {
	t.Helper()
	spec := core.DefaultSpec()
	spec.Profile = dram.LPDDR4()
	m, err := core.BuildWithDefense(spec, d)
	if err != nil {
		t.Fatal(err)
	}
	a := m.Kernel.CreateDomain("attacker", false, false)
	v := m.Kernel.CreateDomain("victim", false, false)
	for p := 0; p < 170; p++ {
		if _, err := m.Kernel.AllocPages(a.ID, uint64(p), 1); err != nil {
			t.Fatal(err)
		}
		if _, err := m.Kernel.AllocPages(v.ID, uint64(p), 1); err != nil {
			t.Fatal(err)
		}
	}
	return m, a.ID
}

// TestACTLockAgainstLineRotation is the adversarial test for the
// documented actlock limitation: an attacker that rotates across many
// lines of the same aggressor row dilutes per-line locking. The defense
// must still win — via its migration fallback — just less elegantly.
func TestACTLockAgainstLineRotation(t *testing.T) {
	d := &ACTLock{}
	spec := core.DefaultSpec()
	spec.Profile = dram.LPDDR4()
	if err := d.Configure(&spec); err != nil {
		t.Fatal(err)
	}
	m, err := core.NewMachine(spec)
	if err != nil {
		t.Fatal(err)
	}
	a := m.Kernel.CreateDomain("attacker", false, false)
	v := m.Kernel.CreateDomain("victim", false, false)
	for p := 0; p < 170; p++ {
		if _, err := m.Kernel.AllocPages(a.ID, uint64(p), 1); err != nil {
			t.Fatal(err)
		}
		if _, err := m.Kernel.AllocPages(v.ID, uint64(p), 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Attach(m); err != nil {
		t.Fatal(err)
	}

	plan, err := attack.PlanDoubleSided(m.Kernel, m.Mapper, a.ID, 1, spec.Profile.BlastRadius)
	if err != nil {
		t.Fatal(err)
	}
	// Rotate over every line the attacker owns in each aggressor row
	// instead of hammering one line per row. Like a real attacker, the
	// program addresses virtual memory — if the host migrates a page,
	// subsequent accesses follow it.
	g := m.Mapper.Geometry()
	var rotationVAs [2][]uint64
	for idx, agg := range plan.Aggressors[:2] {
		for col := 0; col < g.ColumnsPerRow; col++ {
			line := m.Mapper.Unmap(addrDDR(agg.Bank, agg.Row, col))
			if owner, ok := m.Kernel.OwnerOfLine(line); ok && owner == a.ID {
				_, vpn, ok := m.Kernel.VPNOfLine(line)
				if !ok {
					continue
				}
				offset := line * uint64(g.LineBytes) % 4096
				rotationVAs[idx] = append(rotationVAs[idx], vpn*4096+offset)
			}
		}
	}
	if len(rotationVAs[0]) < 2 || len(rotationVAs[1]) < 2 {
		t.Fatalf("rotation sets too small: %d/%d", len(rotationVAs[0]), len(rotationVAs[1]))
	}
	// Interleave the two rows while rotating columns so every access
	// still causes a row conflict.
	i := 0
	prog := cpu.ProgramFunc(func() (cpu.Access, bool) {
		set := rotationVAs[i%2]
		va := set[(i/2)%len(set)]
		i++
		line, err := m.Kernel.Translate(a.ID, va)
		if err != nil {
			return cpu.Access{}, false
		}
		return cpu.Access{Line: line, Flush: true}, true
	})
	c, err := cpu.NewCore(0, a.ID, prog, m.Cache, m.MC)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run([]core.Agent{c}, 4_000_000); err != nil {
		t.Fatal(err)
	}
	if m.CrossDomainFlips() != 0 {
		t.Fatalf("line-rotating attacker beat actlock: %d cross flips", m.CrossDomainFlips())
	}
	_, fallbacks := d.Locks()
	if fallbacks == 0 {
		t.Log("note: no migration fallback was needed (locks alone held)")
	}
}

// TestSWRefreshAgainstBankSpraying: an attacker spreading aggressors over
// every bank divides the channel-wide counter's attention; the detector
// must still flag and refresh in time because per-row hammer rates (and
// thus victim accumulation) drop by the same factor.
func TestSWRefreshAgainstBankSpraying(t *testing.T) {
	d := &SWRefresh{}
	spec := core.DefaultSpec()
	spec.Profile = dram.LPDDR4()
	if err := d.Configure(&spec); err != nil {
		t.Fatal(err)
	}
	m, err := core.NewMachine(spec)
	if err != nil {
		t.Fatal(err)
	}
	a := m.Kernel.CreateDomain("attacker", false, false)
	v := m.Kernel.CreateDomain("victim", false, false)
	for p := 0; p < 170; p++ {
		if _, err := m.Kernel.AllocPages(a.ID, uint64(p), 1); err != nil {
			t.Fatal(err)
		}
		if _, err := m.Kernel.AllocPages(v.ID, uint64(p), 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Attach(m); err != nil {
		t.Fatal(err)
	}
	// One double-sided pair in every bank, hammered round-robin.
	g := m.Mapper.Geometry()
	var lines []uint64
	for bank := 0; bank < g.Banks; bank++ {
		for _, row := range []int{8, 10} {
			line := m.Mapper.Unmap(addrDDR(bank, row, 0))
			if owner, ok := m.Kernel.OwnerOfLine(line); ok && owner == a.ID {
				lines = append(lines, line)
			}
		}
	}
	if len(lines) < 8 {
		t.Skipf("ownership layout gave only %d hammer lines", len(lines))
	}
	i := 0
	prog := cpu.ProgramFunc(func() (cpu.Access, bool) {
		line := lines[i%len(lines)]
		i++
		return cpu.Access{Line: line, Flush: true}, true
	})
	c, err := cpu.NewCore(0, a.ID, prog, m.Cache, m.MC)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run([]core.Agent{c}, 8_000_000); err != nil {
		t.Fatal(err)
	}
	if m.CrossDomainFlips() != 0 {
		t.Fatalf("bank-spraying attacker beat swrefresh: %d cross flips", m.CrossDomainFlips())
	}
	if d.Refreshes() == 0 {
		t.Fatal("defense never reacted to the sprayed attack")
	}
}

// addrDDR builds a DDR address (local helper mirroring harness's).
func addrDDR(bank, row, col int) (d struct {
	Bank   int
	Row    int
	Column int
}) {
	d.Bank, d.Row, d.Column = bank, row, col
	return
}

// Silence unused import when tests skip.
var _ = memctrl.Request{}
