package defense

import (
	"fmt"
	"strings"

	"hammertime/internal/core"
)

// Stack composes several defenses into one — the defense-in-depth
// deployment §5 points toward, where software, CPU and in-DRAM
// mitigations "work in tandem". Configure and Attach run in order; layers
// must not claim the same exclusive hardware resource (the ACT-counter
// handler is the one such resource, so at most one interrupt-driven layer
// may be stacked).
type Stack struct {
	layers []core.Defense
}

// NewStack composes the given layers.
func NewStack(layers ...core.Defense) (*Stack, error) {
	if len(layers) == 0 {
		return nil, fmt.Errorf("defense: stack needs at least one layer")
	}
	interruptDriven := 0
	for _, l := range layers {
		switch l.(type) {
		case *ACTRemap, *ACTLock, *SWRefresh:
			interruptDriven++
		}
	}
	if interruptDriven > 1 {
		return nil, fmt.Errorf("defense: stack has %d interrupt-driven layers, the ACT counter supports one", interruptDriven)
	}
	return &Stack{layers: append([]core.Defense(nil), layers...)}, nil
}

// Name implements core.Defense.
func (s *Stack) Name() string {
	names := make([]string, len(s.layers))
	for i, l := range s.layers {
		names[i] = l.Name()
	}
	return strings.Join(names, "+")
}

// Class implements core.Defense: a stack spans classes; it reports the
// first layer's class (the primary mechanism).
func (s *Stack) Class() core.Class { return s.layers[0].Class() }

// Configure implements core.Defense.
func (s *Stack) Configure(spec *core.MachineSpec) error {
	for _, l := range s.layers {
		if err := l.Configure(spec); err != nil {
			return fmt.Errorf("defense: stack layer %s: %w", l.Name(), err)
		}
	}
	return nil
}

// Attach implements core.Defense.
func (s *Stack) Attach(m *core.Machine) error {
	for _, l := range s.layers {
		if err := l.Attach(m); err != nil {
			return fmt.Errorf("defense: stack layer %s: %w", l.Name(), err)
		}
	}
	return nil
}
