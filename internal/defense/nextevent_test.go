package defense

import (
	"fmt"
	"math"
	"testing"

	"hammertime/internal/core"
	"hammertime/internal/memctrl"
)

// hammerAgent drives a short hammer burst and then goes idle for the rest
// of the horizon — the idle-heavy shape the event-driven scheduler
// fast-forwards through.
type hammerAgent struct {
	mc        *memctrl.Controller
	line      uint64
	stripe    uint64
	remaining int
	i         int
}

func (a *hammerAgent) Done() bool { return a.remaining == 0 }

func (a *hammerAgent) Step(now uint64) (uint64, bool, error) {
	if a.remaining == 0 {
		return 0, false, nil
	}
	a.remaining--
	line := a.line + uint64(a.i%2)*2*a.stripe
	a.i++
	res, err := a.mc.ServeRequest(memctrl.Request{Line: line, Domain: 0}, now)
	if err != nil {
		return 0, false, err
	}
	return res.Completion, true, nil
}

// TestBlockHammerNextEvent pins the throttle layer's contribution to the
// controller event horizon: a BlockHammer machine exposes the rate
// limiter's next epoch boundary through NextEvent, alongside the refresh
// deadline.
func TestBlockHammerNextEvent(t *testing.T) {
	d, err := New("blockhammer")
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.BuildWithDefense(core.DefaultSpec(), d)
	if err != nil {
		t.Fatal(err)
	}
	trefi := m.Spec.Timing.TREFI
	half := m.Spec.Timing.RefreshWindow / 2
	want := trefi
	if half < want {
		want = half
	}
	if got := m.MC.NextEvent(); got != want {
		t.Fatalf("NextEvent = %d, want min(TREFI=%d, half-window=%d)", got, trefi, half)
	}

	// An undefended machine has no admission hook: only the refresh
	// schedule (and, never at cycle 0, bank-ready horizons) contributes.
	plain, err := core.NewMachine(core.DefaultSpec())
	if err != nil {
		t.Fatal(err)
	}
	if got := plain.MC.NextEvent(); got != trefi {
		t.Fatalf("undefended NextEvent = %d, want TREFI %d", got, trefi)
	}
	if got := plain.MC.NextEvent(); got == math.MaxUint64 {
		t.Fatal("live machine reported an empty event horizon")
	}
}

// TestDefendedIdleFastForwardEquivalence runs an idle-heavy defended
// workload — hammer burst, then a long quiet tail with only defense
// daemons scheduled — through the refresh fast-forward and the per-REF
// reference path, on unobserved machines where the fast path is actually
// reachable. Results must match exactly for every defense that installs
// daemons or admission hooks.
func TestDefendedIdleFastForwardEquivalence(t *testing.T) {
	core.SetCheckingOff()
	defer core.SetChecking(false)

	for _, name := range []string{"none", "blockhammer", "anvil", "trr", "graphene"} {
		t.Run(name, func(t *testing.T) {
			run := func(burst bool) core.RunResult {
				t.Helper()
				d, err := New(name)
				if err != nil {
					t.Fatal(err)
				}
				m, err := core.BuildWithDefense(core.DefaultSpec(), d)
				if err != nil {
					t.Fatal(err)
				}
				if m.Auditor() != nil {
					t.Fatal("auditor attached despite SetCheckingOff")
				}
				m.MC.SetRefreshBurst(burst)
				geom := m.Spec.Geometry
				stripe := uint64(geom.ColumnsPerRow) * uint64(geom.Banks)
				agent := &hammerAgent{mc: m.MC, line: 512 * stripe, stripe: stripe, remaining: 4000}
				res, err := m.Run([]core.Agent{agent}, 40_000_000)
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			fast := run(true)
			slow := run(false)
			if fast.Flips != slow.Flips || fast.CrossFlips != slow.CrossFlips {
				t.Fatalf("flips %d/%d with fast-forward, %d/%d without",
					fast.Flips, fast.CrossFlips, slow.Flips, slow.CrossFlips)
			}
			if fmt.Sprint(fast.Steps) != fmt.Sprint(slow.Steps) {
				t.Fatalf("steps %v with fast-forward, %v without", fast.Steps, slow.Steps)
			}
			if f, s := fast.Stats.String(), slow.Stats.String(); f != s {
				t.Fatalf("stats diverge:\n--- fast-forward\n%s\n--- per-REF\n%s", f, s)
			}
		})
	}
}
