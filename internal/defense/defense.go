// Package defense implements Rowhammer mitigations over the machine model
// of internal/core, organized by the taxonomy of "Stop! Hammer Time"
// (HotOS '21) §2.2:
//
//   - isolation-centric: ZebRAM guard rows, PALLOC bank partitioning, and
//     the paper's subarray-isolated interleaving (§4.1);
//   - frequency-centric: BlockHammer-style in-MC rate limiting, and the
//     paper's precise-ACT-interrupt software responses — page remapping
//     (wear-leveling) and cache-line locking (§4.2);
//   - refresh-centric: in-DRAM TRR, in-MC PARA and Graphene baselines,
//     ANVIL-style counter sampling on legacy hardware, and software
//     targeted refresh over the paper's refresh instruction (§4.3).
//
// Each defense either reconfigures the machine spec (hardware features,
// BIOS options, allocator policy) or attaches software hooks (interrupt
// handlers, daemons), or both.
package defense

import (
	"fmt"
	"sort"

	"hammertime/internal/core"
	"hammertime/internal/dram"
)

// New returns the named defense with canonical parameters. Names:
//
//	none, trr, trr16, para, graphene, blockhammer, zebram, bankpart,
//	subarray, subarray-noenforce, actremap, actlock, swrefresh,
//	swrefresh-refneighbors, anvil
func New(name string) (core.Defense, error) {
	switch name {
	case "none":
		return None{}, nil
	case "trr":
		return TRR{Config: dram.DefaultTRR()}, nil
	case "trr16":
		cfg := dram.DefaultTRR()
		cfg.TrackerEntries = 16
		return TRR{Config: cfg}, nil
	case "para":
		return PARA{Prob: 0.001}, nil
	case "graphene":
		return Graphene{}, nil
	case "blockhammer":
		return BlockHammer{}, nil
	case "zebram":
		return ZebRAM{}, nil
	case "bankpart":
		return BankPartition{Partitions: 4}, nil
	case "subarray":
		return SubarrayIsolation{Groups: 4, Enforce: true}, nil
	case "subarray-noenforce":
		return SubarrayIsolation{Groups: 4}, nil
	case "actremap":
		return &ACTRemap{}, nil
	case "actlock":
		return &ACTLock{}, nil
	case "swrefresh":
		return &SWRefresh{}, nil
	case "swrefresh-refneighbors":
		return &SWRefresh{UseRefNeighbors: true}, nil
	case "anvil":
		return &ANVIL{}, nil
	case "ecc":
		return ECC{}, nil
	case "ecc-scrub":
		return &ECCScrub{}, nil
	case "refreshx2":
		return RefreshRate{Factor: 2}, nil
	case "refreshx4":
		return RefreshRate{Factor: 4}, nil
	case "actremap-uncore":
		return &ACTRemap{UncoreMove: true}, nil
	default:
		return nil, fmt.Errorf("defense: unknown defense %q (have %v)", name, Names())
	}
}

// Names returns every registered defense name, sorted.
func Names() []string {
	names := []string{
		"none", "trr", "trr16", "para", "graphene", "blockhammer",
		"zebram", "bankpart", "subarray", "subarray-noenforce",
		"actremap", "actlock", "swrefresh", "swrefresh-refneighbors", "anvil",
		"ecc", "ecc-scrub", "refreshx2", "refreshx4", "actremap-uncore",
	}
	sort.Strings(names)
	return names
}

// None is the undefended baseline.
type None struct{}

// Name implements core.Defense.
func (None) Name() string { return "none" }

// Class implements core.Defense.
func (None) Class() core.Class { return core.ClassNone }

// Configure implements core.Defense.
func (None) Configure(*core.MachineSpec) error { return nil }

// Attach implements core.Defense.
func (None) Attach(*core.Machine) error { return nil }

// ECC enables SECDED (72,64) protection. It is not a Rowhammer defense
// proper — Cojocar et al. [12] showed multi-flip words bypass it — but it
// reshapes outcomes: single flips per word are corrected, double flips
// crash the machine (DoS), triples can silently corrupt. Experiment E9
// measures exactly that hierarchy.
type ECC struct{}

// Name implements core.Defense.
func (ECC) Name() string { return "ecc(secded)" }

// Class implements core.Defense.
func (ECC) Class() core.Class { return core.ClassInDRAM }

// Configure implements core.Defense.
func (ECC) Configure(spec *core.MachineSpec) error {
	spec.ECC = true
	return nil
}

// Attach implements core.Defense.
func (ECC) Attach(*core.Machine) error { return nil }

// RefreshRate multiplies the baseline refresh rate — the first mitigation
// vendors deployed after Kim et al. ISCA'14. Halving/quartering the
// refresh window halves/quarters the attacker's per-window ACT budget,
// but the budget needed at modern MACs is reached in well under even a
// 16 ms window, so the mitigation stopped scaling generations ago (§3) —
// while its REF overhead (tRFC stalls, refresh energy) scales linearly.
type RefreshRate struct {
	Factor int
}

// Name implements core.Defense.
func (d RefreshRate) Name() string { return fmt.Sprintf("refresh-x%d", d.Factor) }

// Class implements core.Defense.
func (RefreshRate) Class() core.Class { return core.ClassRefresh }

// Configure implements core.Defense.
func (d RefreshRate) Configure(spec *core.MachineSpec) error {
	if d.Factor < 2 {
		return fmt.Errorf("defense: refresh rate factor %d, need >= 2", d.Factor)
	}
	f := uint64(d.Factor)
	spec.Timing.TREFI /= f
	spec.Timing.RefreshWindow /= f
	if err := spec.Timing.Validate(); err != nil {
		return fmt.Errorf("defense: refresh-x%d: %w", d.Factor, err)
	}
	return nil
}

// Attach implements core.Defense.
func (RefreshRate) Attach(*core.Machine) error { return nil }

// TRR enables the vendor-style in-DRAM blackbox tracker (§3): it defeats
// attacks with at most TrackerEntries aggressors and is bypassed by
// many-sided attacks — the TRRespass result.
type TRR struct {
	Config dram.TRRConfig
}

// Name implements core.Defense.
func (d TRR) Name() string { return fmt.Sprintf("trr(n=%d)", d.Config.TrackerEntries) }

// Class implements core.Defense.
func (TRR) Class() core.Class { return core.ClassInDRAM }

// Configure implements core.Defense.
func (d TRR) Configure(spec *core.MachineSpec) error {
	cfg := d.Config
	if cfg.RefreshRadius < spec.Profile.BlastRadius {
		// The vendor knows its own technology's blast radius and cures
		// that far (the tracker capacity, not the radius, is the flaw).
		cfg.RefreshRadius = spec.Profile.BlastRadius
	}
	spec.TRR = &cfg
	return nil
}

// Attach implements core.Defense.
func (TRR) Attach(*core.Machine) error { return nil }

// PARA enables probabilistic adjacent-row activation in the controller
// (Kim et al., ISCA'14): each ACT refreshes a random neighbor with
// probability Prob. Stateless, but its protection weakens as the MAC
// shrinks unless Prob (and thus overhead) rises.
type PARA struct {
	// Prob is the per-ACT refresh probability (0 means 0.001).
	Prob float64
	// Radius is the neighbor radius (0 means the profile's blast radius).
	Radius int
}

// Name implements core.Defense.
func (d PARA) Name() string { return fmt.Sprintf("para(p=%g)", d.prob()) }

func (d PARA) prob() float64 {
	if d.Prob == 0 {
		return 0.001
	}
	return d.Prob
}

// Class implements core.Defense.
func (PARA) Class() core.Class { return core.ClassInMC }

// Configure implements core.Defense.
func (d PARA) Configure(spec *core.MachineSpec) error {
	spec.PARAProb = d.prob()
	spec.PARARadius = d.Radius
	if d.Radius == 0 {
		spec.PARARadius = spec.Profile.BlastRadius
	}
	return nil
}

// Attach implements core.Defense.
func (PARA) Attach(*core.Machine) error { return nil }

// Graphene enables the in-MC Misra-Gries tracker baseline (Park et al.,
// MICRO'20). Entries=0 sizes the table for complete protection at the
// spec's MAC — the SRAM cost that scales badly with density (§3).
type Graphene struct {
	Entries   int
	Threshold uint64
}

// Name implements core.Defense.
func (d Graphene) Name() string { return "graphene" }

// Class implements core.Defense.
func (Graphene) Class() core.Class { return core.ClassInMC }

// Configure implements core.Defense.
func (d Graphene) Configure(spec *core.MachineSpec) error {
	th := d.Threshold
	if th == 0 {
		th = spec.Profile.MAC / 4
		if th == 0 {
			return fmt.Errorf("defense: graphene threshold underflow (MAC %d)", spec.Profile.MAC)
		}
	}
	entries := d.Entries
	if entries == 0 {
		budget := spec.Timing.MaxActsPerWindowPerBank()
		entries = int((budget + th - 1) / th)
	}
	spec.Graphene = &core.GrapheneSpec{Entries: entries, Threshold: th, Radius: spec.Profile.BlastRadius}
	return nil
}

// Attach implements core.Defense.
func (Graphene) Attach(*core.Machine) error { return nil }

// BlockHammer enables the in-MC admission-control rate limiter
// (Yağlıkçı et al., HPCA'21): no row may be activated more than the
// budget within a refresh window; suspects are delayed, benign traffic
// mostly unaffected.
type BlockHammer struct {
	// MaxActsPerWindow is the per-row budget (0 means MAC/2).
	MaxActsPerWindow uint64
	// WatchThreshold starts throttling after this count (0 means budget/2).
	WatchThreshold uint64
}

// Name implements core.Defense.
func (BlockHammer) Name() string { return "blockhammer" }

// Class implements core.Defense.
func (BlockHammer) Class() core.Class { return core.ClassFrequency }

// Configure implements core.Defense.
func (d BlockHammer) Configure(spec *core.MachineSpec) error {
	spec.RateLimit = &core.RateLimitSpec{
		MaxActsPerWindow: d.MaxActsPerWindow,
		WatchThreshold:   d.WatchThreshold,
	}
	return nil
}

// Attach implements core.Defense.
func (BlockHammer) Attach(*core.Machine) error { return nil }

// ZebRAM applies guard-row allocation (Konoth et al., OSDI'18): every
// allocated row is separated from every other by blast-radius guard rows.
// Complete — including intra-domain — but sacrifices 1-1/(b+1) of
// capacity and all row-level locality between pages.
type ZebRAM struct {
	// Radius overrides the guard spacing (0 means the profile's blast
	// radius).
	Radius int
}

// Name implements core.Defense.
func (ZebRAM) Name() string { return "zebram" }

// Class implements core.Defense.
func (ZebRAM) Class() core.Class { return core.ClassIsolation }

// Configure implements core.Defense.
func (d ZebRAM) Configure(spec *core.MachineSpec) error {
	spec.Alloc = core.AllocGuardRow
	spec.GuardRadius = d.Radius
	return nil
}

// Attach implements core.Defense.
func (ZebRAM) Attach(*core.Machine) error { return nil }

// BankPartition applies PALLOC-style bank-aware allocation: the BIOS
// disables bank interleaving and each domain gets private banks. No
// cross-domain pairs — but the §4.1 objection applies: every domain loses
// bank-level parallelism (measured in experiment E2).
type BankPartition struct {
	Partitions int
}

// Name implements core.Defense.
func (d BankPartition) Name() string { return fmt.Sprintf("bankpart(%d)", d.Partitions) }

// Class implements core.Defense.
func (BankPartition) Class() core.Class { return core.ClassIsolation }

// Configure implements core.Defense.
func (d BankPartition) Configure(spec *core.MachineSpec) error {
	if d.Partitions <= 0 {
		return fmt.Errorf("defense: bank partition needs > 0 partitions")
	}
	spec.Interleave = core.InterleaveRowRegion
	spec.Alloc = core.AllocBankAware
	spec.BankPartitions = d.Partitions
	return nil
}

// Attach implements core.Defense.
func (BankPartition) Attach(*core.Machine) error { return nil }

// SubarrayIsolation applies the paper's §4.1 primitive: subarray-isolated
// interleaving plus subarray-aware allocation, with optional MC-side
// domain enforcement. Domains keep full bank-level parallelism while
// being electromagnetically isolated from each other.
type SubarrayIsolation struct {
	Groups  int
	Enforce bool
}

// Name implements core.Defense.
func (d SubarrayIsolation) Name() string {
	if d.Enforce {
		return fmt.Sprintf("subarray(%d,enforced)", d.Groups)
	}
	return fmt.Sprintf("subarray(%d)", d.Groups)
}

// Class implements core.Defense.
func (SubarrayIsolation) Class() core.Class { return core.ClassIsolation }

// Configure implements core.Defense.
func (d SubarrayIsolation) Configure(spec *core.MachineSpec) error {
	if d.Groups <= 0 {
		return fmt.Errorf("defense: subarray isolation needs > 0 groups")
	}
	spec.SubarrayGroups = d.Groups
	spec.Alloc = core.AllocSubarrayAware
	spec.EnforceDomains = d.Enforce
	return nil
}

// Attach implements core.Defense.
func (SubarrayIsolation) Attach(*core.Machine) error { return nil }
