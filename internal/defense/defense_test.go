package defense

import (
	"testing"

	"hammertime/internal/core"
	"hammertime/internal/dram"
	"hammertime/internal/memctrl"
)

func TestRegistryRoundTrip(t *testing.T) {
	for _, name := range Names() {
		d, err := New(name)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if d.Name() == "" {
			t.Fatalf("%q has empty display name", name)
		}
		spec := core.DefaultSpec()
		if err := d.Configure(&spec); err != nil {
			t.Fatalf("%q configure: %v", name, err)
		}
		if _, err := core.BuildWithDefense(core.DefaultSpec(), d); err != nil {
			t.Fatalf("%q build: %v", name, err)
		}
	}
	if _, err := New("bogus"); err == nil {
		t.Fatal("unknown defense accepted")
	}
}

func TestTaxonomyAssignments(t *testing.T) {
	want := map[string]core.Class{
		"none":        core.ClassNone,
		"trr":         core.ClassInDRAM,
		"para":        core.ClassInMC,
		"graphene":    core.ClassInMC,
		"blockhammer": core.ClassFrequency,
		"zebram":      core.ClassIsolation,
		"bankpart":    core.ClassIsolation,
		"subarray":    core.ClassIsolation,
		"actremap":    core.ClassFrequency,
		"actlock":     core.ClassFrequency,
		"swrefresh":   core.ClassRefresh,
		"anvil":       core.ClassRefresh,
	}
	for name, cls := range want {
		d, err := New(name)
		if err != nil {
			t.Fatal(err)
		}
		if d.Class() != cls {
			t.Errorf("%s class = %s, want %s", name, d.Class(), cls)
		}
	}
}

func TestConfigureMutations(t *testing.T) {
	spec := core.DefaultSpec()
	if err := (TRR{Config: dram.DefaultTRR()}).Configure(&spec); err != nil {
		t.Fatal(err)
	}
	if spec.TRR == nil || spec.TRR.RefreshRadius != spec.Profile.BlastRadius {
		t.Fatalf("TRR config: %+v", spec.TRR)
	}

	spec = core.DefaultSpec()
	if err := (PARA{Prob: 0.01}).Configure(&spec); err != nil {
		t.Fatal(err)
	}
	if spec.PARAProb != 0.01 || spec.PARARadius != spec.Profile.BlastRadius {
		t.Fatalf("PARA spec: p=%g r=%d", spec.PARAProb, spec.PARARadius)
	}

	spec = core.DefaultSpec()
	if err := (Graphene{}).Configure(&spec); err != nil {
		t.Fatal(err)
	}
	wantEntries := int((spec.Timing.MaxActsPerWindowPerBank() + spec.Profile.MAC/4 - 1) / (spec.Profile.MAC / 4))
	if spec.Graphene == nil || spec.Graphene.Entries != wantEntries {
		t.Fatalf("graphene spec: %+v, want %d entries", spec.Graphene, wantEntries)
	}

	spec = core.DefaultSpec()
	if err := (BankPartition{Partitions: 4}).Configure(&spec); err != nil {
		t.Fatal(err)
	}
	if spec.Interleave != core.InterleaveRowRegion || spec.Alloc != core.AllocBankAware {
		t.Fatal("bank partition did not disable interleaving")
	}

	spec = core.DefaultSpec()
	if err := (SubarrayIsolation{Groups: 4, Enforce: true}).Configure(&spec); err != nil {
		t.Fatal(err)
	}
	if spec.SubarrayGroups != 4 || spec.Alloc != core.AllocSubarrayAware || !spec.EnforceDomains {
		t.Fatal("subarray isolation spec wrong")
	}

	if err := (SubarrayIsolation{Groups: 0}).Configure(&spec); err == nil {
		t.Fatal("0 groups accepted")
	}
	if err := (BankPartition{}).Configure(&spec); err == nil {
		t.Fatal("0 partitions accepted")
	}
}

func TestGrapheneSRAMCostGrowsAsMACShrinks(t *testing.T) {
	// The §3 scaling story: table size ~ ACT budget / (MAC/4).
	var prev int
	for i, prof := range dram.Generations() {
		spec := core.DefaultSpec()
		spec.Profile = prof
		if err := (Graphene{}).Configure(&spec); err != nil {
			t.Fatal(err)
		}
		if i > 0 && spec.Graphene.Entries <= prev {
			t.Fatalf("%s entries %d not above previous %d", prof.Name, spec.Graphene.Entries, prev)
		}
		prev = spec.Graphene.Entries
	}
}

func TestDetectorFlagsDominantRow(t *testing.T) {
	m, err := core.NewMachine(core.DefaultSpec())
	if err != nil {
		t.Fatal(err)
	}
	det := newDetector(m, false)
	flagged := 0
	for i := 0; i < 10; i++ {
		f, _ := det.observe(memctrl.ACTEvent{Cycle: uint64(i), HasAddr: true, Bank: 0, Row: 5})
		if f {
			flagged++
		}
	}
	if flagged != 2 { // 10 events / 4-hit threshold, count resets on flag
		t.Fatalf("flagged %d times, want 2", flagged)
	}
}

func TestDetectorIgnoresLegacyEvents(t *testing.T) {
	m, err := core.NewMachine(core.DefaultSpec())
	if err != nil {
		t.Fatal(err)
	}
	det := newDetector(m, false)
	for i := 0; i < 100; i++ {
		if f, _ := det.observe(memctrl.ACTEvent{Cycle: uint64(i), HasAddr: false}); f {
			t.Fatal("legacy (address-less) event flagged a row — §4.2 says it cannot")
		}
	}
}

func TestDetectorWindowReset(t *testing.T) {
	m, err := core.NewMachine(core.DefaultSpec())
	if err != nil {
		t.Fatal(err)
	}
	det := newDetector(m, false)
	w := m.Spec.Timing.RefreshWindow
	// Three hits, then a window boundary, then three hits: never flagged.
	for i := 0; i < 3; i++ {
		if f, _ := det.observe(memctrl.ACTEvent{Cycle: uint64(i), HasAddr: true, Row: 5}); f {
			t.Fatal("flagged too early")
		}
	}
	for i := 0; i < 3; i++ {
		if f, _ := det.observe(memctrl.ACTEvent{Cycle: w + uint64(i), HasAddr: true, Row: 5}); f {
			t.Fatal("evidence survived the refresh-window boundary")
		}
	}
}

func TestDetectorRandomizedReset(t *testing.T) {
	m, err := core.NewMachine(core.DefaultSpec())
	if err != nil {
		t.Fatal(err)
	}
	det := newDetector(m, true)
	distinct := make(map[uint64]bool)
	for i := 0; i < 50; i++ {
		_, reset := det.observe(memctrl.ACTEvent{Cycle: uint64(i), HasAddr: true, Row: i})
		if reset >= det.sampleEvery {
			t.Fatalf("reset %d not below threshold %d", reset, det.sampleEvery)
		}
		distinct[reset] = true
	}
	if len(distinct) < 10 {
		t.Fatalf("randomized resets produced only %d distinct values", len(distinct))
	}
}

func TestACTLockAccounting(t *testing.T) {
	d := &ACTLock{}
	spec := core.DefaultSpec()
	if err := d.Configure(&spec); err != nil {
		t.Fatal(err)
	}
	if !d.Randomize {
		t.Fatal("randomization not defaulted on")
	}
	m, err := core.NewMachine(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Attach(m); err != nil {
		t.Fatal(err)
	}
	if len(m.Daemons()) != 1 {
		t.Fatal("unlock daemon not registered")
	}
}

func TestStackComposesLayers(t *testing.T) {
	sub, err := New("subarray")
	if err != nil {
		t.Fatal(err)
	}
	swr, err := New("swrefresh")
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewStack(sub, swr)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != "subarray(4,enforced)+swrefresh" {
		t.Fatalf("stack name = %s", s.Name())
	}
	if s.Class() != core.ClassIsolation {
		t.Fatalf("stack class = %s", s.Class())
	}
	m, err := core.BuildWithDefense(core.DefaultSpec(), s)
	if err != nil {
		t.Fatal(err)
	}
	// Both layers took effect: subarray allocation policy and the ACT
	// counter handler.
	if m.Spec.SubarrayGroups != 4 || m.Spec.Alloc != core.AllocSubarrayAware {
		t.Fatal("isolation layer not configured")
	}
	if m.MC.ACTOverflows() != 0 {
		t.Fatal("unexpected overflows before any traffic")
	}
}

func TestStackRejectsConflictingLayers(t *testing.T) {
	if _, err := NewStack(); err == nil {
		t.Fatal("empty stack accepted")
	}
	a, _ := New("actremap")
	b, _ := New("swrefresh")
	if _, err := NewStack(a, b); err == nil {
		t.Fatal("two interrupt-driven layers accepted")
	}
}
