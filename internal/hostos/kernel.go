package hostos

import (
	"fmt"

	"hammertime/internal/addr"
	"hammertime/internal/dram"
	"hammertime/internal/memctrl"
	"hammertime/internal/obs"
	"hammertime/internal/sim"
)

// Kernel is the trusted host OS: it owns the domains, the physical page
// allocator, per-domain page tables, and the privileged interfaces to the
// memory controller (refresh instruction, domain registration, page
// migration). Software defenses act through the kernel.
type Kernel struct {
	mc     *memctrl.Controller
	mapper addr.Mapper
	geom   dram.Geometry
	alloc  Allocator

	domains map[int]*Domain
	tables  map[int]*PageTable
	nextID  int

	frameOwner map[uint64]int // frame -> domain

	// lockedUp is set when an integrity-checked domain's memory is
	// corrupted: the machine detects the flip and halts (§4.4 DoS).
	lockedUp bool

	// migrateRNG, when set, makes MigratePage place pages at uniformly
	// random free frames (wear-leveling placement, §4.2).
	migrateRNG *sim.RNG
	// uncoreMove, when set, copies migrated pages with the controller's
	// uncore move instruction instead of per-line read+write round trips.
	uncoreMove bool

	stats *sim.Stats
	rec   *obs.Recorder
}

// NewKernel builds a kernel over the controller and allocator. Domain 0
// (the host itself) is created implicitly.
func NewKernel(mc *memctrl.Controller, alloc Allocator) (*Kernel, error) {
	if mc == nil {
		return nil, fmt.Errorf("hostos: kernel needs a memory controller")
	}
	if alloc == nil {
		return nil, fmt.Errorf("hostos: kernel needs an allocator")
	}
	k := &Kernel{
		mc:         mc,
		mapper:     mc.Mapper(),
		geom:       mc.Mapper().Geometry(),
		alloc:      alloc,
		domains:    make(map[int]*Domain),
		tables:     make(map[int]*PageTable),
		nextID:     HostDomain + 1,
		frameOwner: make(map[uint64]int),
		stats:      &sim.Stats{},
	}
	k.domains[HostDomain] = &Domain{ID: HostDomain, Name: "host"}
	k.tables[HostDomain] = NewPageTable()
	// If the allocator is subarray-aware and the MC enforces groups,
	// register assignments as they happen.
	if sa, ok := alloc.(*SubarrayAware); ok {
		if enf := mc.Enforcer(); enf != nil {
			sa.OnAssign = func(domain, group int) {
				// Registration failures are programming errors
				// (group out of range) surfaced at assign time.
				if err := enf.AssignDomain(domain, group); err != nil {
					panic(fmt.Sprintf("hostos: enforcer registration: %v", err))
				}
			}
		}
	}
	return k, nil
}

// Stats returns the kernel's stats registry.
func (k *Kernel) Stats() *sim.Stats { return k.stats }

// SetRecorder attaches an event recorder (nil disables recording). Pure
// observer: recording changes no kernel behavior.
func (k *Kernel) SetRecorder(r *obs.Recorder) { k.rec = r }

// Allocator returns the kernel's page allocator.
func (k *Kernel) Allocator() Allocator { return k.alloc }

// CreateDomain registers a new trust domain and returns it.
func (k *Kernel) CreateDomain(name string, enclave, integrityChecked bool) *Domain {
	d := &Domain{ID: k.nextID, Name: name, Enclave: enclave, IntegrityChecked: integrityChecked}
	k.nextID++
	k.domains[d.ID] = d
	k.tables[d.ID] = NewPageTable()
	return d
}

// Domain returns the domain with the given ID.
func (k *Kernel) Domain(id int) (*Domain, bool) {
	d, ok := k.domains[id]
	return d, ok
}

// PageTable returns the domain's page table.
func (k *Kernel) PageTable(domain int) (*PageTable, error) {
	pt, ok := k.tables[domain]
	if !ok {
		return nil, fmt.Errorf("hostos: unknown domain %d", domain)
	}
	return pt, nil
}

// AllocPages allocates and maps n pages at consecutive VPNs starting at
// startVPN for the domain, returning the allocated frames.
func (k *Kernel) AllocPages(domain int, startVPN uint64, n int) ([]uint64, error) {
	pt, err := k.PageTable(domain)
	if err != nil {
		return nil, err
	}
	frames := make([]uint64, 0, n)
	for i := 0; i < n; i++ {
		f, err := k.alloc.Alloc(domain)
		if err != nil {
			return frames, fmt.Errorf("hostos: alloc page %d for domain %d: %w", i, domain, err)
		}
		pt.Map(startVPN+uint64(i), f)
		k.frameOwner[f] = domain
		frames = append(frames, f)
		k.stats.Inc("os.pages_allocated")
	}
	return frames, nil
}

// FreePage unmaps and frees the domain's page at vpn.
func (k *Kernel) FreePage(domain int, vpn uint64) error {
	pt, err := k.PageTable(domain)
	if err != nil {
		return err
	}
	frame, ok := pt.Frame(vpn)
	if !ok {
		return fmt.Errorf("hostos: domain %d vpn %d not mapped", domain, vpn)
	}
	pt.Unmap(vpn)
	delete(k.frameOwner, frame)
	return k.alloc.Free(frame)
}

// Translate converts a domain-virtual byte address to a physical line
// index (the unit the memory system works in).
func (k *Kernel) Translate(domain int, va uint64) (uint64, error) {
	pt, err := k.PageTable(domain)
	if err != nil {
		return 0, err
	}
	pa, err := pt.Translate(va)
	if err != nil {
		return 0, err
	}
	return pa / uint64(k.geom.LineBytes), nil
}

// OwnerOfLine returns the domain owning the physical line, if allocated.
func (k *Kernel) OwnerOfLine(line uint64) (int, bool) {
	frame := line * uint64(k.geom.LineBytes) / PageSize
	d, ok := k.frameOwner[frame]
	return d, ok
}

// OwnerOfRow returns the set of domains owning lines in the given DDR row.
func (k *Kernel) OwnerOfRow(d addr.DDR) map[int]bool {
	owners := make(map[int]bool)
	for col := 0; col < k.geom.ColumnsPerRow; col++ {
		line := k.mapper.Unmap(addr.DDR{Bank: d.Bank, Row: d.Row, Column: col})
		if owner, ok := k.OwnerOfLine(line); ok {
			owners[owner] = true
		}
	}
	return owners
}

// RefreshVA executes the privileged refresh instruction on the row backing
// the domain-virtual address (§4.3). The kernel runs it as the host.
func (k *Kernel) RefreshVA(domain int, va uint64, autoPrecharge bool, now uint64) (memctrl.ServiceResult, error) {
	line, err := k.Translate(domain, va)
	if err != nil {
		return memctrl.ServiceResult{}, err
	}
	k.stats.Inc("os.refresh_instr")
	return k.mc.RefreshInstruction(line, autoPrecharge, HostDomain, now)
}

// RefreshLine executes the refresh instruction directly on a physical line.
func (k *Kernel) RefreshLine(line uint64, autoPrecharge bool, now uint64) (memctrl.ServiceResult, error) {
	k.stats.Inc("os.refresh_instr")
	return k.mc.RefreshInstruction(line, autoPrecharge, HostDomain, now)
}

// MigrationResult reports the cost of a page migration.
type MigrationResult struct {
	OldFrame, NewFrame uint64
	// Completion is when the copy finished.
	Completion uint64
}

// MigratePage moves the physical page backing (domain, vpn) to a fresh
// frame — the "ACT wear-leveling" response to a precise ACT interrupt
// (§4.2). The copy is issued as kernel read+write traffic so its cost and
// its own activations are modeled faithfully.
func (k *Kernel) MigratePage(domain int, vpn uint64, now uint64) (MigrationResult, error) {
	pt, err := k.PageTable(domain)
	if err != nil {
		return MigrationResult{}, err
	}
	oldFrame, ok := pt.Frame(vpn)
	if !ok {
		return MigrationResult{}, fmt.Errorf("hostos: migrate: domain %d vpn %d not mapped", domain, vpn)
	}
	var newFrame uint64
	if ra, ok := k.alloc.(RandomAllocator); ok && k.migrateRNG != nil {
		newFrame, err = ra.AllocRandom(domain, k.migrateRNG)
	} else {
		newFrame, err = k.alloc.Alloc(domain)
	}
	if err != nil {
		return MigrationResult{}, fmt.Errorf("hostos: migrate: %w", err)
	}
	lpp := LinesPerPage(k.geom)
	t := now
	for l := uint64(0); l < lpp; l++ {
		srcLine := oldFrame*lpp + l
		dstLine := newFrame*lpp + l
		if k.uncoreMove {
			res, err := k.mc.UncoreMove(srcLine, dstLine, HostDomain, t)
			if err != nil {
				return MigrationResult{}, fmt.Errorf("hostos: migrate move: %w", err)
			}
			t = res.Completion
			continue
		}
		src := memctrl.Request{
			Line:   srcLine,
			Domain: HostDomain,
			Source: memctrl.Source{Kind: memctrl.SourceKernel},
		}
		res, err := k.mc.ServeRequest(src, t)
		if err != nil {
			return MigrationResult{}, fmt.Errorf("hostos: migrate read: %w", err)
		}
		dst := src
		dst.Line = dstLine
		dst.Write = true
		res, err = k.mc.ServeRequest(dst, res.Completion)
		if err != nil {
			return MigrationResult{}, fmt.Errorf("hostos: migrate write: %w", err)
		}
		t = res.Completion
	}
	pt.Map(vpn, newFrame)
	delete(k.frameOwner, oldFrame)
	k.frameOwner[newFrame] = domain
	if err := k.alloc.Free(oldFrame); err != nil {
		return MigrationResult{}, err
	}
	k.stats.Inc("os.pages_migrated")
	k.rec.Emit(obs.Event{
		Kind:   obs.KindPageMigration,
		Cycle:  t,
		Bank:   -1,
		Row:    -1,
		Domain: domain,
		Line:   newFrame,
		Arg:    oldFrame,
	})
	return MigrationResult{OldFrame: oldFrame, NewFrame: newFrame, Completion: t}, nil
}

// EnableUncoreMove makes MigratePage copy pages with the controller's
// uncore move instruction (§4.2) instead of per-line round trips.
func (k *Kernel) EnableUncoreMove() { k.uncoreMove = true }

// EnableRandomizedMigration makes MigratePage draw the destination frame
// uniformly at random from the allocator's free pool (when the allocator
// supports it), so successive wear-leveling relocations land in disjoint
// neighborhoods and their disturbance cannot accumulate on one victim.
func (k *Kernel) EnableRandomizedMigration(rng *sim.RNG) { k.migrateRNG = rng }

// VPNOfLine finds which (domain, vpn) maps the physical line. Linear in
// the owning domain's page count; used by defenses reacting to interrupts.
func (k *Kernel) VPNOfLine(line uint64) (domain int, vpn uint64, ok bool) {
	frame := line * uint64(k.geom.LineBytes) / PageSize
	domain, ok = k.frameOwner[frame]
	if !ok {
		return 0, 0, false
	}
	pt := k.tables[domain]
	for _, v := range pt.VPNs() {
		if f, _ := pt.Frame(v); f == frame {
			return domain, v, true
		}
	}
	return 0, 0, false
}

// ReportFlip attributes a DRAM flip event to its victim domain and applies
// enclave semantics: corrupting an integrity-checked domain locks up the
// machine (detected DoS); other domains suffer silent corruption.
// It returns the victim domain (or -1 for unallocated memory) and whether
// the flip crossed trust domains relative to aggressorDomain.
func (k *Kernel) ReportFlip(ev dram.FlipEvent, aggressorDomain int) (victimDomain int, cross bool) {
	line := k.mapper.Unmap(addr.DDR{Bank: ev.Bank, Row: ev.Row, Column: ev.Column})
	victim, ok := k.OwnerOfLine(line)
	if !ok {
		return -1, false
	}
	if d := k.domains[victim]; d != nil && d.IntegrityChecked {
		k.lockedUp = true
		k.stats.Inc("os.integrity_lockups")
	}
	return victim, victim != aggressorDomain
}

// LockedUp reports whether an integrity failure halted the machine.
func (k *Kernel) LockedUp() bool { return k.lockedUp }
