// Package hostos models the host operating system (hypervisor) of a
// multi-tenant machine: trust domains (VMs/processes), page allocation
// policies — including the isolation-centric ones of §2.2/§4.1 of "Stop!
// Hammer Time" — page tables, page migration, and enclave integrity
// semantics (§4.4).
package hostos

import (
	"fmt"
	"sort"
)

// PageSize is the host page size in bytes.
const PageSize = 4096

// HostDomain is the ASID of the trusted host OS itself (never enforced
// against a subarray group, always allowed the refresh instruction).
const HostDomain = 0

// Domain is a trust domain: a VM, process or enclave.
type Domain struct {
	ID   int
	Name string
	// Enclave marks domains whose memory the host is not trusted with
	// (SGX/TDX/SEV-style, §4.4).
	Enclave bool
	// IntegrityChecked marks enclave memory that is integrity-verified on
	// access: Rowhammer flips cause a detectable failure (machine lockup,
	// i.e., denial of service) instead of silent corruption.
	IntegrityChecked bool
}

// PageTable maps a domain's virtual page numbers to physical frames.
type PageTable struct {
	entries map[uint64]uint64
}

// NewPageTable returns an empty page table.
func NewPageTable() *PageTable { return &PageTable{entries: make(map[uint64]uint64)} }

// Map installs vpn -> frame, replacing any existing mapping.
func (pt *PageTable) Map(vpn, frame uint64) { pt.entries[vpn] = frame }

// Unmap removes vpn's mapping.
func (pt *PageTable) Unmap(vpn uint64) { delete(pt.entries, vpn) }

// Frame returns the frame mapped at vpn.
func (pt *PageTable) Frame(vpn uint64) (uint64, bool) {
	f, ok := pt.entries[vpn]
	return f, ok
}

// Translate converts a virtual byte address to a physical byte address.
func (pt *PageTable) Translate(va uint64) (uint64, error) {
	frame, ok := pt.entries[va/PageSize]
	if !ok {
		return 0, fmt.Errorf("hostos: page fault at va %#x (vpn %d unmapped)", va, va/PageSize)
	}
	return frame*PageSize + va%PageSize, nil
}

// VPNs returns the mapped virtual page numbers in ascending order.
func (pt *PageTable) VPNs() []uint64 {
	out := make([]uint64, 0, len(pt.entries))
	for v := range pt.entries {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Size returns the number of mapped pages.
func (pt *PageTable) Size() int { return len(pt.entries) }
