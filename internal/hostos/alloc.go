package hostos

import (
	"errors"
	"fmt"

	"hammertime/internal/addr"
	"hammertime/internal/dram"
	"hammertime/internal/sim"
)

// ErrOutOfMemory is returned when an allocator cannot satisfy a request
// under its placement policy.
var ErrOutOfMemory = errors.New("hostos: out of memory under placement policy")

// Allocator hands out physical page frames under a placement policy.
// Frame numbers index PageSize-sized units of the physical space.
type Allocator interface {
	// Name identifies the policy in reports.
	Name() string
	// Alloc returns a frame for the given domain.
	Alloc(domain int) (uint64, error)
	// Free returns a frame to the pool.
	Free(frame uint64) error
}

// RandomAllocator is implemented by allocators that can hand out a
// uniformly random free frame for a domain — what wear-leveling page
// migration (§4.2) wants, so relocated pages land in fresh, unpredictable
// neighborhoods.
type RandomAllocator interface {
	AllocRandom(domain int, rng *sim.RNG) (uint64, error)
}

// LinesPerPage returns how many cache lines one page spans.
func LinesPerPage(g dram.Geometry) uint64 { return PageSize / uint64(g.LineBytes) }

// TotalFrames returns how many page frames the module provides.
func TotalFrames(g dram.Geometry) uint64 { return g.TotalBytes() / PageSize }

// freePool is a simple ordered free list shared by the policies.
type freePool struct {
	free  []uint64 // stack; allocated from the end
	inUse map[uint64]bool
}

func newFreePool(frames []uint64) *freePool {
	// Reverse so Alloc hands out ascending frame numbers.
	rev := make([]uint64, len(frames))
	for i, f := range frames {
		rev[len(frames)-1-i] = f
	}
	return &freePool{free: rev, inUse: make(map[uint64]bool)}
}

func (p *freePool) alloc() (uint64, error) {
	if len(p.free) == 0 {
		return 0, ErrOutOfMemory
	}
	f := p.free[len(p.free)-1]
	p.free = p.free[:len(p.free)-1]
	p.inUse[f] = true
	return f, nil
}

// allocRandom takes a uniformly random free frame — used by wear-leveling
// migration so relocated pages land in fresh neighborhoods (and attackers
// cannot predict the new location).
func (p *freePool) allocRandom(rng *sim.RNG) (uint64, error) {
	if len(p.free) == 0 {
		return 0, ErrOutOfMemory
	}
	i := rng.Intn(len(p.free))
	last := len(p.free) - 1
	p.free[i], p.free[last] = p.free[last], p.free[i]
	return p.alloc()
}

func (p *freePool) release(frame uint64) error {
	if !p.inUse[frame] {
		return fmt.Errorf("hostos: free of frame %d not allocated from this pool", frame)
	}
	delete(p.inUse, frame)
	p.free = append(p.free, frame)
	return nil
}

// Linear allocates frames in ascending order with no placement policy —
// the Rowhammer-oblivious default against which defenses are compared.
type Linear struct {
	pool *freePool
}

// NewLinear returns a policy-free allocator over the whole module.
func NewLinear(g dram.Geometry) *Linear {
	n := TotalFrames(g)
	frames := make([]uint64, n)
	for i := range frames {
		frames[i] = uint64(i)
	}
	return &Linear{pool: newFreePool(frames)}
}

// Name implements Allocator.
func (a *Linear) Name() string { return "linear" }

// Alloc implements Allocator.
func (a *Linear) Alloc(int) (uint64, error) { return a.pool.alloc() }

// Free implements Allocator.
func (a *Linear) Free(frame uint64) error { return a.pool.release(frame) }

// AllocRandom implements RandomAllocator.
func (a *Linear) AllocRandom(_ int, rng *sim.RNG) (uint64, error) {
	return a.pool.allocRandom(rng)
}

// BankAware is a PALLOC-style allocator: each domain is confined to its
// own set of banks, so no two domains share a bank and no cross-domain
// aggressor-victim pair exists. It requires a row-region mapping (bank
// interleaving disabled), which is exactly why §4.1 criticizes it: the
// domain loses bank-level parallelism.
type BankAware struct {
	mapper  addr.Mapper
	geom    dram.Geometry
	domains int
	pools   []*freePool // per bank-partition
	assign  map[int]int // domain -> partition
	nextPar int
	owner   map[uint64]int // frame -> partition (for Free)
}

// NewBankAware partitions the mapper's banks into `domains` equal groups.
func NewBankAware(mapper addr.Mapper, domains int) (*BankAware, error) {
	g := mapper.Geometry()
	if domains <= 0 || domains > g.Banks {
		return nil, fmt.Errorf("hostos: bank-aware allocator: %d domains for %d banks", domains, g.Banks)
	}
	a := &BankAware{
		mapper:  mapper,
		geom:    g,
		domains: domains,
		pools:   make([]*freePool, domains),
		assign:  make(map[int]int),
		owner:   make(map[uint64]int),
	}
	lpp := LinesPerPage(g)
	buckets := make([][]uint64, domains)
	for f := uint64(0); f < TotalFrames(g); f++ {
		// A frame belongs to a partition only if every line of the page
		// falls in the partition's banks.
		par := -1
		uniform := true
		for l := uint64(0); l < lpp; l++ {
			b := mapper.Map(f*lpp + l).Bank
			p := b * domains / g.Banks
			if par == -1 {
				par = p
			} else if par != p {
				uniform = false
				break
			}
		}
		if uniform && par >= 0 {
			buckets[par] = append(buckets[par], f)
		}
	}
	for i := range a.pools {
		if len(buckets[i]) == 0 {
			return nil, fmt.Errorf("hostos: bank-aware allocator: partition %d has no uniform frames under mapper %q (bank interleaving must be disabled)", i, mapper.Name())
		}
		a.pools[i] = newFreePool(buckets[i])
	}
	return a, nil
}

// Name implements Allocator.
func (a *BankAware) Name() string { return "bank-aware" }

// Alloc implements Allocator.
func (a *BankAware) Alloc(domain int) (uint64, error) {
	par, ok := a.assign[domain]
	if !ok {
		par = a.nextPar % a.domains
		a.assign[domain] = par
		a.nextPar++
	}
	f, err := a.pools[par].alloc()
	if err != nil {
		return 0, fmt.Errorf("hostos: bank-aware: domain %d (partition %d): %w", domain, par, err)
	}
	a.owner[f] = par
	return f, nil
}

// Free implements Allocator.
func (a *BankAware) Free(frame uint64) error {
	par, ok := a.owner[frame]
	if !ok {
		return fmt.Errorf("hostos: bank-aware: free of unallocated frame %d", frame)
	}
	delete(a.owner, frame)
	return a.pools[par].release(frame)
}

// PartitionOf returns the bank partition assigned to domain, if any.
func (a *BankAware) PartitionOf(domain int) (int, bool) {
	p, ok := a.assign[domain]
	return p, ok
}

// GuardRow is a ZebRAM-style allocator: only frames whose rows are
// separated from every other usable row by at least `radius` guard rows
// are usable. No aggressor can reach any allocated victim, across or
// within domains — at the cost of 1 - 1/(radius+1) of capacity.
type GuardRow struct {
	pool   *freePool
	radius int
}

// NewGuardRow returns a guard-row allocator for the mapper with the given
// blast radius. It only admits frames every one of whose rows lies in a
// "data stripe": row indices r with (r % (radius+1)) == 0.
func NewGuardRow(mapper addr.Mapper, radius int) (*GuardRow, error) {
	if radius <= 0 {
		return nil, fmt.Errorf("hostos: guard-row allocator: radius %d, need > 0", radius)
	}
	g := mapper.Geometry()
	lpp := LinesPerPage(g)
	var frames []uint64
	stride := radius + 1
	for f := uint64(0); f < TotalFrames(g); f++ {
		usable := true
		for l := uint64(0); l < lpp; l++ {
			if mapper.Map(f*lpp+l).Row%stride != 0 {
				usable = false
				break
			}
		}
		if usable {
			frames = append(frames, f)
		}
	}
	if len(frames) == 0 {
		return nil, fmt.Errorf("hostos: guard-row allocator: no usable frames under mapper %q with radius %d", mapper.Name(), radius)
	}
	return &GuardRow{pool: newFreePool(frames), radius: radius}, nil
}

// Name implements Allocator.
func (a *GuardRow) Name() string { return "zebram-guard" }

// Alloc implements Allocator.
func (a *GuardRow) Alloc(int) (uint64, error) { return a.pool.alloc() }

// Free implements Allocator.
func (a *GuardRow) Free(frame uint64) error { return a.pool.release(frame) }

// UsableFraction returns the fraction of capacity the policy can serve.
func (a *GuardRow) UsableFraction() float64 { return 1 / float64(a.radius+1) }

// SubarrayAware implements the paper's §4.1 software half: each domain
// allocates only frames from its subarray group's region, so domains are
// electromagnetically isolated while keeping full bank interleaving.
type SubarrayAware struct {
	mapper *addr.SubarrayIsolated
	pools  []*freePool
	assign map[int]int
	next   int
	owner  map[uint64]int
	// OnAssign, if set, is called when a domain is bound to a group —
	// the kernel uses it to register the pair with the MC enforcer.
	OnAssign func(domain, group int)
}

// NewSubarrayAware returns an allocator over the mapper's group regions.
func NewSubarrayAware(mapper *addr.SubarrayIsolated) (*SubarrayAware, error) {
	g := mapper.Geometry()
	lpp := LinesPerPage(g)
	part := mapper.Partition()
	a := &SubarrayAware{
		mapper: mapper,
		pools:  make([]*freePool, part.Groups()),
		assign: make(map[int]int),
		owner:  make(map[uint64]int),
	}
	for grp := 0; grp < part.Groups(); grp++ {
		lo, hi, err := mapper.RegionBounds(grp)
		if err != nil {
			return nil, err
		}
		var frames []uint64
		for f := lo / lpp; f*lpp+lpp <= hi; f++ {
			frames = append(frames, f)
		}
		if len(frames) == 0 {
			return nil, fmt.Errorf("hostos: subarray-aware allocator: group %d region is empty", grp)
		}
		a.pools[grp] = newFreePool(frames)
	}
	return a, nil
}

// Name implements Allocator.
func (a *SubarrayAware) Name() string { return "subarray-aware" }

// Alloc implements Allocator.
func (a *SubarrayAware) Alloc(domain int) (uint64, error) {
	grp, ok := a.assign[domain]
	if !ok {
		grp = a.next % len(a.pools)
		a.assign[domain] = grp
		a.next++
		if a.OnAssign != nil {
			a.OnAssign(domain, grp)
		}
	}
	f, err := a.pools[grp].alloc()
	if err != nil {
		return 0, fmt.Errorf("hostos: subarray-aware: domain %d (group %d): %w", domain, grp, err)
	}
	a.owner[f] = grp
	return f, nil
}

// Free implements Allocator.
func (a *SubarrayAware) Free(frame uint64) error {
	grp, ok := a.owner[frame]
	if !ok {
		return fmt.Errorf("hostos: subarray-aware: free of unallocated frame %d", frame)
	}
	delete(a.owner, frame)
	return a.pools[grp].release(frame)
}

// GroupOf returns the subarray group assigned to domain, if any.
func (a *SubarrayAware) GroupOf(domain int) (int, bool) {
	g, ok := a.assign[domain]
	return g, ok
}

// AllocRandom implements RandomAllocator within the domain's group.
func (a *SubarrayAware) AllocRandom(domain int, rng *sim.RNG) (uint64, error) {
	grp, ok := a.assign[domain]
	if !ok {
		return a.Alloc(domain) // first allocation also assigns the group
	}
	f, err := a.pools[grp].allocRandom(rng)
	if err != nil {
		return 0, fmt.Errorf("hostos: subarray-aware: domain %d (group %d): %w", domain, grp, err)
	}
	a.owner[f] = grp
	return f, nil
}
