package hostos

import (
	"errors"
	"testing"
	"testing/quick"

	"hammertime/internal/addr"
	"hammertime/internal/dram"
	"hammertime/internal/memctrl"
	"hammertime/internal/sim"
)

func buildKernel(t *testing.T, mapper addr.Mapper, alloc func(addr.Mapper) (Allocator, error)) *Kernel {
	t.Helper()
	mod, err := dram.NewModule(dram.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if mapper == nil {
		mapper = addr.NewLineInterleave(mod.Geometry())
	}
	mc, err := memctrl.NewController(memctrl.Config{Mapper: mapper, DRAM: mod, OpenPage: true})
	if err != nil {
		t.Fatal(err)
	}
	a, err := alloc(mapper)
	if err != nil {
		t.Fatal(err)
	}
	k, err := NewKernel(mc, a)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func linearAlloc(m addr.Mapper) (Allocator, error) { return NewLinear(m.Geometry()), nil }

func TestPageTableTranslate(t *testing.T) {
	pt := NewPageTable()
	pt.Map(3, 17)
	pa, err := pt.Translate(3*PageSize + 100)
	if err != nil {
		t.Fatal(err)
	}
	if pa != 17*PageSize+100 {
		t.Fatalf("pa = %d", pa)
	}
	if _, err := pt.Translate(99 * PageSize); err == nil {
		t.Fatal("unmapped VA translated")
	}
	pt.Unmap(3)
	if _, err := pt.Translate(3 * PageSize); err == nil {
		t.Fatal("unmapped after Unmap but still translated")
	}
}

func TestKernelAllocAndOwnership(t *testing.T) {
	k := buildKernel(t, nil, linearAlloc)
	d := k.CreateDomain("vm", false, false)
	frames, err := k.AllocPages(d.ID, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 4 {
		t.Fatalf("got %d frames", len(frames))
	}
	lpp := LinesPerPage(dram.DefaultGeometry())
	owner, ok := k.OwnerOfLine(frames[2] * lpp)
	if !ok || owner != d.ID {
		t.Fatalf("owner = %d/%v", owner, ok)
	}
	line, err := k.Translate(d.ID, 2*PageSize)
	if err != nil {
		t.Fatal(err)
	}
	if line != frames[2]*lpp {
		t.Fatalf("translate: line %d, want %d", line, frames[2]*lpp)
	}
}

func TestKernelFreePage(t *testing.T) {
	k := buildKernel(t, nil, linearAlloc)
	d := k.CreateDomain("vm", false, false)
	frames, err := k.AllocPages(d.ID, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := k.FreePage(d.ID, 0); err != nil {
		t.Fatal(err)
	}
	lpp := LinesPerPage(dram.DefaultGeometry())
	if _, ok := k.OwnerOfLine(frames[0] * lpp); ok {
		t.Fatal("freed frame still owned")
	}
	if err := k.FreePage(d.ID, 0); err == nil {
		t.Fatal("double free accepted")
	}
}

func TestKernelMigratePreservesMappingAndOwnership(t *testing.T) {
	k := buildKernel(t, nil, linearAlloc)
	d := k.CreateDomain("vm", false, false)
	if _, err := k.AllocPages(d.ID, 0, 2); err != nil {
		t.Fatal(err)
	}
	before, err := k.Translate(d.ID, PageSize+64)
	if err != nil {
		t.Fatal(err)
	}
	res, err := k.MigratePage(d.ID, 1, 1000)
	if err != nil {
		t.Fatal(err)
	}
	after, err := k.Translate(d.ID, PageSize+64)
	if err != nil {
		t.Fatal(err)
	}
	if after == before {
		t.Fatal("migration did not change the physical mapping")
	}
	if res.Completion <= 1000 {
		t.Fatal("migration reported no cost")
	}
	lpp := LinesPerPage(dram.DefaultGeometry())
	if owner, ok := k.OwnerOfLine(res.NewFrame * lpp); !ok || owner != d.ID {
		t.Fatal("new frame not owned by the domain")
	}
	if _, ok := k.OwnerOfLine(res.OldFrame * lpp); ok {
		t.Fatal("old frame still owned")
	}
}

func TestVPNOfLine(t *testing.T) {
	k := buildKernel(t, nil, linearAlloc)
	d := k.CreateDomain("vm", false, false)
	frames, err := k.AllocPages(d.ID, 7, 1)
	if err != nil {
		t.Fatal(err)
	}
	lpp := LinesPerPage(dram.DefaultGeometry())
	dom, vpn, ok := k.VPNOfLine(frames[0]*lpp + 3)
	if !ok || dom != d.ID || vpn != 7 {
		t.Fatalf("VPNOfLine = %d/%d/%v", dom, vpn, ok)
	}
	if _, _, ok := k.VPNOfLine(1 << 19); ok {
		t.Fatal("unallocated line resolved")
	}
}

func TestReportFlipIntegrityLockup(t *testing.T) {
	k := buildKernel(t, nil, linearAlloc)
	victim := k.CreateDomain("enclave", true, true)
	attacker := k.CreateDomain("attacker", false, false)
	vf, err := k.AllocPages(victim.ID, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	lpp := LinesPerPage(dram.DefaultGeometry())
	mapper := addr.NewLineInterleave(dram.DefaultGeometry())
	d := mapper.Map(vf[0] * lpp)
	ev := dram.FlipEvent{Bank: d.Bank, Row: d.Row, Column: d.Column, ActorDomain: attacker.ID}
	vd, cross := k.ReportFlip(ev, attacker.ID)
	if vd != victim.ID || !cross {
		t.Fatalf("flip attribution: victim=%d cross=%v", vd, cross)
	}
	if !k.LockedUp() {
		t.Fatal("integrity-checked corruption did not lock up the machine (§4.4)")
	}
	if k.Stats().Counter("os.integrity_lockups") != 1 {
		t.Fatal("lockup not counted")
	}
}

func TestReportFlipUnallocated(t *testing.T) {
	k := buildKernel(t, nil, linearAlloc)
	vd, cross := k.ReportFlip(dram.FlipEvent{Bank: 0, Row: 500, Column: 0}, 1)
	if vd != -1 || cross {
		t.Fatalf("unallocated flip: victim=%d cross=%v", vd, cross)
	}
}

func TestLinearAllocatorExhaustion(t *testing.T) {
	g := dram.Geometry{Banks: 1, SubarraysPerBank: 1, RowsPerSubarray: 2, ColumnsPerRow: 128, LineBytes: 64}
	a := NewLinear(g) // 16 KB = 4 frames
	for i := 0; i < 4; i++ {
		if _, err := a.Alloc(0); err != nil {
			t.Fatalf("alloc %d: %v", i, err)
		}
	}
	if _, err := a.Alloc(0); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("exhaustion error = %v", err)
	}
}

func TestLinearAllocRandomStaysInPool(t *testing.T) {
	g := dram.DefaultGeometry()
	a := NewLinear(g)
	rng := sim.NewRNG(5)
	seen := make(map[uint64]bool)
	for i := 0; i < 200; i++ {
		f, err := a.AllocRandom(0, rng)
		if err != nil {
			t.Fatal(err)
		}
		if seen[f] {
			t.Fatalf("frame %d allocated twice", f)
		}
		seen[f] = true
	}
	// Random allocation should not be (fully) sequential.
	sequential := true
	prev := uint64(0)
	first := true
	for f := range seen {
		if !first && f != prev+1 {
			sequential = false
		}
		prev, first = f, false
	}
	if sequential {
		t.Fatal("AllocRandom returned a purely sequential run")
	}
}

func TestBankAwareIsolatesBanks(t *testing.T) {
	g := dram.DefaultGeometry()
	mapper := addr.NewRowRegion(g)
	a, err := NewBankAware(mapper, 4)
	if err != nil {
		t.Fatal(err)
	}
	lpp := LinesPerPage(g)
	banksOf := func(frame uint64) map[int]bool {
		out := make(map[int]bool)
		for l := uint64(0); l < lpp; l++ {
			out[mapper.Map(frame*lpp+l).Bank] = true
		}
		return out
	}
	// Two different domains must never share a bank.
	f1, err := a.Alloc(1)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := a.Alloc(2)
	if err != nil {
		t.Fatal(err)
	}
	for b := range banksOf(f1) {
		if banksOf(f2)[b] {
			t.Fatalf("domains 1 and 2 share bank %d", b)
		}
	}
	// Same domain stays in its partition.
	f3, err := a.Alloc(1)
	if err != nil {
		t.Fatal(err)
	}
	p1, _ := a.PartitionOf(1)
	for b := range banksOf(f3) {
		if b*4/g.Banks != p1 {
			t.Fatalf("domain 1 frame in bank %d outside partition %d", b, p1)
		}
	}
}

func TestBankAwareRejectsInterleavedMapper(t *testing.T) {
	g := dram.DefaultGeometry()
	if _, err := NewBankAware(addr.NewLineInterleave(g), 4); err == nil {
		t.Fatal("bank-aware allocator accepted an interleaved mapping (pages span banks)")
	}
}

func TestGuardRowSpacing(t *testing.T) {
	g := dram.DefaultGeometry()
	mapper := addr.NewLineInterleave(g)
	const radius = 2
	a, err := NewGuardRow(mapper, radius)
	if err != nil {
		t.Fatal(err)
	}
	lpp := LinesPerPage(g)
	var rows []int
	for i := 0; i < 20; i++ {
		f, err := a.Alloc(i % 3)
		if err != nil {
			t.Fatal(err)
		}
		for l := uint64(0); l < lpp; l++ {
			rows = append(rows, mapper.Map(f*lpp+l).Row)
		}
	}
	for _, r := range rows {
		if r%(radius+1) != 0 {
			t.Fatalf("allocated row %d is not on a guard-row stripe", r)
		}
	}
	if frac := a.UsableFraction(); frac != 1.0/3 {
		t.Fatalf("usable fraction = %g, want 1/3", frac)
	}
}

func TestGuardRowValidation(t *testing.T) {
	g := dram.DefaultGeometry()
	if _, err := NewGuardRow(addr.NewLineInterleave(g), 0); err == nil {
		t.Fatal("radius 0 accepted")
	}
}

func TestSubarrayAwareConfinesDomains(t *testing.T) {
	g := dram.DefaultGeometry()
	part, err := addr.NewPartition(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	iso, err := addr.NewSubarrayIsolated(addr.NewLineInterleave(g), part)
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewSubarrayAware(iso)
	if err != nil {
		t.Fatal(err)
	}
	var assigned []int
	a.OnAssign = func(domain, group int) { assigned = append(assigned, group) }
	lpp := LinesPerPage(g)
	// Property: every line of every page of a domain maps into the
	// domain's assigned group.
	f := func(domainRaw, pageRaw uint8) bool {
		domain := int(domainRaw%4) + 1
		frame, err := a.Alloc(domain)
		if err != nil {
			return false
		}
		grp, ok := a.GroupOf(domain)
		if !ok {
			return false
		}
		for l := uint64(0); l < lpp; l++ {
			if iso.GroupOfLine(frame*lpp+l) != grp {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
	if len(assigned) == 0 {
		t.Fatal("OnAssign never fired")
	}
}

func TestSubarrayAwareDistinctGroups(t *testing.T) {
	g := dram.DefaultGeometry()
	part, err := addr.NewPartition(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	iso, err := addr.NewSubarrayIsolated(addr.NewLineInterleave(g), part)
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewSubarrayAware(iso)
	if err != nil {
		t.Fatal(err)
	}
	groups := make(map[int]bool)
	for d := 1; d <= 4; d++ {
		if _, err := a.Alloc(d); err != nil {
			t.Fatal(err)
		}
		grp, _ := a.GroupOf(d)
		if groups[grp] {
			t.Fatalf("group %d assigned twice among 4 domains", grp)
		}
		groups[grp] = true
	}
}

func TestRefreshVAUsesHostPrivilege(t *testing.T) {
	k := buildKernel(t, nil, linearAlloc)
	d := k.CreateDomain("vm", false, false)
	if _, err := k.AllocPages(d.ID, 0, 1); err != nil {
		t.Fatal(err)
	}
	// The kernel refreshes on behalf of the domain: must succeed even
	// though the domain itself is unprivileged.
	if _, err := k.RefreshVA(d.ID, 0, true, 0); err != nil {
		t.Fatal(err)
	}
	if k.Stats().Counter("os.refresh_instr") != 1 {
		t.Fatal("refresh not counted")
	}
}

func TestBankAwareFreeReturnsToPartition(t *testing.T) {
	g := dram.DefaultGeometry()
	a, err := NewBankAware(addr.NewRowRegion(g), 4)
	if err != nil {
		t.Fatal(err)
	}
	f, err := a.Alloc(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Free(f); err != nil {
		t.Fatal(err)
	}
	if err := a.Free(f); err == nil {
		t.Fatal("double free accepted")
	}
	// The freed frame is reusable by the same partition.
	f2, err := a.Alloc(1)
	if err != nil {
		t.Fatal(err)
	}
	_ = f2
}

func TestOwnerOfRowSeesAllOwners(t *testing.T) {
	k := buildKernel(t, nil, linearAlloc)
	a := k.CreateDomain("a", false, false)
	b := k.CreateDomain("b", false, false)
	// Interleave allocations: a row stripe holds 16 frames, so both
	// domains appear in row 0 of every bank.
	for p := 0; p < 8; p++ {
		if _, err := k.AllocPages(a.ID, uint64(p), 1); err != nil {
			t.Fatal(err)
		}
		if _, err := k.AllocPages(b.ID, uint64(p), 1); err != nil {
			t.Fatal(err)
		}
	}
	owners := k.OwnerOfRow(addr.DDR{Bank: 0, Row: 0})
	if !owners[a.ID] || !owners[b.ID] {
		t.Fatalf("row owners = %v, want both domains", owners)
	}
}

func TestMigratePreservesData(t *testing.T) {
	mod, err := dram.NewModule(dram.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	mapper := addr.NewLineInterleave(mod.Geometry())
	mc, err := memctrl.NewController(memctrl.Config{Mapper: mapper, DRAM: mod, OpenPage: true})
	if err != nil {
		t.Fatal(err)
	}
	k, err := NewKernel(mc, NewLinear(mod.Geometry()))
	if err != nil {
		t.Fatal(err)
	}
	d := k.CreateDomain("vm", false, false)
	frames, err := k.AllocPages(d.ID, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	// NOTE: the simulator copies page contents as requests, not bytes —
	// data is modeled in the DRAM module; migration re-maps. Verify the
	// mapping moved and the old frame was released for reuse.
	_ = frames
	res, err := k.MigratePage(d.ID, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.NewFrame == res.OldFrame {
		t.Fatal("migration did not move")
	}
	// Old frame must be allocatable again.
	d2 := k.CreateDomain("vm2", false, false)
	seen := false
	for i := 0; i < 8; i++ {
		f, err := k.alloc.Alloc(d2.ID)
		if err != nil {
			break
		}
		if f == res.OldFrame {
			seen = true
			break
		}
	}
	if !seen {
		t.Fatal("old frame never returned to the pool")
	}
}
