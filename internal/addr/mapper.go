// Package addr implements the mapping between CPU physical addresses and
// DDR logical addresses (bank, row, column), including the conventional
// interleaving schemes of §2.1/§4.1 of "Stop! Hammer Time" and the
// paper's proposed subarray-isolated interleaving primitive.
//
// Addresses are handled at cache-line granularity: a "line index" is the
// physical address divided by the line size. Every scheme is a bijection
// between line indices and (bank, row, column) triples so allocation
// policies can reason in either space.
package addr

import (
	"fmt"

	"hammertime/internal/dram"
)

// DDR is a DDR logical address at cache-line granularity.
type DDR struct {
	Bank   int
	Row    int // bank-local row index
	Column int
}

// Subarray returns the subarray the address falls in, given the geometry.
func (d DDR) Subarray(g dram.Geometry) int { return g.SubarrayOf(d.Row) }

// Mapper converts between physical line indices and DDR addresses.
// Implementations must be bijections over [0, Geometry().TotalLines()).
type Mapper interface {
	// Name identifies the scheme in reports.
	Name() string
	// Geometry returns the geometry the mapper was built for.
	Geometry() dram.Geometry
	// Map converts a physical line index to a DDR address.
	Map(line uint64) DDR
	// Unmap converts a DDR address back to a physical line index.
	Unmap(d DDR) uint64
}

// checkLine panics if line is outside the module; mapping an address that
// does not exist is a simulator bug, not a runtime condition.
func checkLine(g dram.Geometry, line uint64) {
	if line >= g.TotalLines() {
		panic(fmt.Sprintf("addr: line %d out of range [0,%d)", line, g.TotalLines()))
	}
}

// RowRegion maps consecutive physical lines into the same row of the same
// bank until the row is exhausted (bank interleaving disabled, as when the
// BIOS option of §4.1's strawman is turned off). Layout, low to high bits:
// column, then row, then bank — one bank holds a contiguous 1/Banks slice
// of the physical space? No: column, bank-region. Concretely:
//
//	column = line % C
//	row    = (line / C) % R
//	bank   = line / (C * R)
//
// so each bank owns one contiguous region of physical memory. This is the
// layout a bank-aware page allocator (PALLOC-style) wants: a page's bank
// is a pure function of its frame number and domains can be confined to
// disjoint banks — at the cost of bank-level parallelism for streams.
type RowRegion struct {
	geom dram.Geometry
}

// NewRowRegion returns a RowRegion mapper for g.
func NewRowRegion(g dram.Geometry) *RowRegion { return &RowRegion{geom: g} }

// Name implements Mapper.
func (m *RowRegion) Name() string { return "row-region" }

// Geometry implements Mapper.
func (m *RowRegion) Geometry() dram.Geometry { return m.geom }

// Map implements Mapper.
func (m *RowRegion) Map(line uint64) DDR {
	checkLine(m.geom, line)
	c := uint64(m.geom.ColumnsPerRow)
	r := uint64(m.geom.RowsPerBank())
	return DDR{
		Column: int(line % c),
		Row:    int((line / c) % r),
		Bank:   int(line / (c * r)),
	}
}

// Unmap implements Mapper.
func (m *RowRegion) Unmap(d DDR) uint64 {
	c := uint64(m.geom.ColumnsPerRow)
	r := uint64(m.geom.RowsPerBank())
	return uint64(d.Bank)*c*r + uint64(d.Row)*c + uint64(d.Column)
}

// LineInterleave spreads consecutive physical lines across banks — the
// performance-critical interleaving of modern systems (§4.1): consecutive
// lines can be accessed in parallel in different banks.
//
//	bank   = line % B
//	column = (line / B) % C
//	row    = line / (B * C)
//
// A "row stripe" of B*C consecutive lines shares one row index across all
// banks, so physical frame number determines the row (and therefore the
// subarray) — the property subarray-aware allocation relies on.
type LineInterleave struct {
	geom dram.Geometry
}

// NewLineInterleave returns a LineInterleave mapper for g.
func NewLineInterleave(g dram.Geometry) *LineInterleave { return &LineInterleave{geom: g} }

// Name implements Mapper.
func (m *LineInterleave) Name() string { return "line-interleave" }

// Geometry implements Mapper.
func (m *LineInterleave) Geometry() dram.Geometry { return m.geom }

// Map implements Mapper.
func (m *LineInterleave) Map(line uint64) DDR {
	checkLine(m.geom, line)
	b := uint64(m.geom.Banks)
	c := uint64(m.geom.ColumnsPerRow)
	return DDR{
		Bank:   int(line % b),
		Column: int((line / b) % c),
		Row:    int(line / (b * c)),
	}
}

// Unmap implements Mapper.
func (m *LineInterleave) Unmap(d DDR) uint64 {
	b := uint64(m.geom.Banks)
	c := uint64(m.geom.ColumnsPerRow)
	return uint64(d.Row)*b*c + uint64(d.Column)*b + uint64(d.Bank)
}

// XORInterleave is LineInterleave with the bank index permuted by XOR with
// low row bits (Zhang et al., MICRO'00), reducing row-buffer conflicts for
// strided traffic. Because XOR with the row is an involution at fixed row,
// the scheme stays a bijection.
type XORInterleave struct {
	geom dram.Geometry
}

// NewXORInterleave returns an XORInterleave mapper for g. The bank count
// must be a power of two for the XOR permutation to stay within range.
func NewXORInterleave(g dram.Geometry) (*XORInterleave, error) {
	if g.Banks&(g.Banks-1) != 0 {
		return nil, fmt.Errorf("addr: xor-interleave needs power-of-two banks, got %d", g.Banks)
	}
	return &XORInterleave{geom: g}, nil
}

// Name implements Mapper.
func (m *XORInterleave) Name() string { return "xor-interleave" }

// Geometry implements Mapper.
func (m *XORInterleave) Geometry() dram.Geometry { return m.geom }

// Map implements Mapper.
func (m *XORInterleave) Map(line uint64) DDR {
	checkLine(m.geom, line)
	b := uint64(m.geom.Banks)
	c := uint64(m.geom.ColumnsPerRow)
	d := DDR{
		Bank:   int(line % b),
		Column: int((line / b) % c),
		Row:    int(line / (b * c)),
	}
	d.Bank ^= d.Row % m.geom.Banks
	return d
}

// Unmap implements Mapper.
func (m *XORInterleave) Unmap(d DDR) uint64 {
	b := uint64(m.geom.Banks)
	c := uint64(m.geom.ColumnsPerRow)
	bank := d.Bank ^ (d.Row % m.geom.Banks)
	return uint64(d.Row)*b*c + uint64(d.Column)*b + uint64(bank)
}
