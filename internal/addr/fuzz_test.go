package addr

import (
	"testing"

	"hammertime/internal/dram"
)

// FuzzMapperRoundTrip checks that every mapping scheme stays a bijection
// over the full line range for arbitrary — including non-power-of-two —
// geometries: Map stays in range, Unmap inverts Map, and no two lines
// collide on one DDR address.
func FuzzMapperRoundTrip(f *testing.F) {
	f.Add(uint8(8), uint8(16), uint8(4), uint8(8))
	f.Add(uint8(3), uint8(5), uint8(7), uint8(9)) // nothing a power of two
	f.Add(uint8(1), uint8(1), uint8(1), uint8(1))
	f.Add(uint8(12), uint8(6), uint8(13), uint8(10))
	f.Fuzz(func(t *testing.T, banks, subs, rows, cols uint8) {
		g := dram.Geometry{
			Banks:            1 + int(banks%12),
			SubarraysPerBank: 1 + int(subs%9),
			RowsPerSubarray:  1 + int(rows%13),
			ColumnsPerRow:    1 + int(cols%10),
			LineBytes:        64,
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("derived geometry invalid: %v", err)
		}
		mappers := []Mapper{NewRowRegion(g), NewLineInterleave(g)}
		if x, err := NewXORInterleave(g); err == nil {
			mappers = append(mappers, x)
		}
		for _, groups := range []int{2, 3, 4} {
			part, err := NewPartition(g, groups)
			if err != nil {
				continue
			}
			iso, err := NewSubarrayIsolated(NewLineInterleave(g), part)
			if err != nil {
				t.Fatalf("subarray-isolated(%d): %v", groups, err)
			}
			mappers = append(mappers, iso)
		}

		total := g.TotalLines()
		for _, m := range mappers {
			seen := make(map[DDR]uint64, total)
			for line := uint64(0); line < total; line++ {
				d := m.Map(line)
				if !g.ValidBank(d.Bank) || !g.ValidRow(d.Row) ||
					d.Column < 0 || d.Column >= g.ColumnsPerRow {
					t.Fatalf("%s: line %d maps out of range: %+v (geometry %+v)", m.Name(), line, d, g)
				}
				if prev, dup := seen[d]; dup {
					t.Fatalf("%s: lines %d and %d collide on %+v (geometry %+v)", m.Name(), prev, line, d, g)
				}
				seen[d] = line
				if back := m.Unmap(d); back != line {
					t.Fatalf("%s: Unmap(Map(%d)) = %d (ddr %+v, geometry %+v)", m.Name(), line, back, d, g)
				}
			}
		}
	})
}
