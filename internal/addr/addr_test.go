package addr

import (
	"testing"
	"testing/quick"

	"hammertime/internal/dram"
)

func geom() dram.Geometry { return dram.DefaultGeometry() }

// mappers returns every scheme under test.
func mappers(t *testing.T) []Mapper {
	t.Helper()
	g := geom()
	xor, err := NewXORInterleave(g)
	if err != nil {
		t.Fatal(err)
	}
	part, err := NewPartition(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	iso, err := NewSubarrayIsolated(NewLineInterleave(g), part)
	if err != nil {
		t.Fatal(err)
	}
	return []Mapper{NewRowRegion(g), NewLineInterleave(g), xor, iso}
}

// TestMapperBijection is the core property: Unmap(Map(x)) == x for every
// scheme, and Map never produces out-of-range coordinates.
func TestMapperBijection(t *testing.T) {
	for _, m := range mappers(t) {
		m := m
		t.Run(m.Name(), func(t *testing.T) {
			g := m.Geometry()
			total := g.TotalLines()
			f := func(raw uint64) bool {
				line := raw % total
				d := m.Map(line)
				if !g.ValidBank(d.Bank) || !g.ValidRow(d.Row) ||
					d.Column < 0 || d.Column >= g.ColumnsPerRow {
					return false
				}
				return m.Unmap(d) == line
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestMapperExhaustiveBijection walks every line of a small module and
// verifies the mapping is a bijection onto the full DDR coordinate space.
func TestMapperExhaustiveBijection(t *testing.T) {
	small := dram.Geometry{Banks: 4, SubarraysPerBank: 4, RowsPerSubarray: 8, ColumnsPerRow: 16, LineBytes: 64}
	part, err := NewPartition(small, 2)
	if err != nil {
		t.Fatal(err)
	}
	xor, err := NewXORInterleave(small)
	if err != nil {
		t.Fatal(err)
	}
	iso, err := NewSubarrayIsolated(NewLineInterleave(small), part)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []Mapper{NewRowRegion(small), NewLineInterleave(small), xor, iso} {
		seen := make(map[DDR]bool)
		for line := uint64(0); line < small.TotalLines(); line++ {
			d := m.Map(line)
			if seen[d] {
				t.Fatalf("%s: duplicate DDR address %+v", m.Name(), d)
			}
			seen[d] = true
			if back := m.Unmap(d); back != line {
				t.Fatalf("%s: unmap(map(%d)) = %d", m.Name(), line, back)
			}
		}
		if uint64(len(seen)) != small.TotalLines() {
			t.Fatalf("%s: %d distinct DDR addresses, want %d", m.Name(), len(seen), small.TotalLines())
		}
	}
}

func TestLineInterleaveSpreadsAcrossBanks(t *testing.T) {
	m := NewLineInterleave(geom())
	for i := uint64(0); i < 16; i++ {
		want := int(i) % geom().Banks
		if got := m.Map(i).Bank; got != want {
			t.Fatalf("line %d bank = %d, want %d (consecutive lines must interleave)", i, got, want)
		}
	}
}

func TestRowRegionKeepsBankContiguous(t *testing.T) {
	m := NewRowRegion(geom())
	g := geom()
	linesPerBank := g.TotalLines() / uint64(g.Banks)
	if m.Map(0).Bank != 0 || m.Map(linesPerBank-1).Bank != 0 || m.Map(linesPerBank).Bank != 1 {
		t.Fatal("row-region mapping does not keep banks contiguous")
	}
}

func TestXORInterleaveRequiresPow2Banks(t *testing.T) {
	g := geom()
	g.Banks = 6
	if _, err := NewXORInterleave(g); err == nil {
		t.Fatal("non-power-of-two banks accepted")
	}
}

func TestXORInterleavePermutesBanksByRow(t *testing.T) {
	m, err := NewXORInterleave(geom())
	if err != nil {
		t.Fatal(err)
	}
	g := geom()
	stripe := uint64(g.Banks * g.ColumnsPerRow)
	// Same line offset in two consecutive row stripes should (usually)
	// land in different banks thanks to the XOR permutation.
	d0 := m.Map(0)
	d1 := m.Map(stripe)
	if d0.Bank == d1.Bank {
		t.Fatal("XOR permutation did not rotate banks across rows")
	}
}

func TestPartitionValidation(t *testing.T) {
	g := geom()
	if _, err := NewPartition(g, 0); err == nil {
		t.Fatal("0 groups accepted")
	}
	if _, err := NewPartition(g, g.SubarraysPerBank+1); err == nil {
		t.Fatal("too many groups accepted")
	}
	if _, err := NewPartition(g, 3); err == nil {
		t.Fatal("non-divisor group count accepted")
	}
}

func TestPartitionRoundRobin(t *testing.T) {
	p, err := NewPartition(geom(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if p.GroupOfSubarray(0) != 0 || p.GroupOfSubarray(5) != 1 || p.GroupOfSubarray(7) != 3 {
		t.Fatal("round-robin group assignment wrong")
	}
	subs := p.SubarraysInGroup(1)
	if len(subs) != 4 {
		t.Fatalf("group 1 has %d subarrays, want 4", len(subs))
	}
	for _, s := range subs {
		if s%4 != 1 {
			t.Fatalf("subarray %d not in group 1", s)
		}
	}
}

// TestSubarrayIsolatedGroupRegions is the §4.1 property: each contiguous
// physical region maps entirely into its own subarray group, while lines
// within a page still spread across all banks.
func TestSubarrayIsolatedGroupRegions(t *testing.T) {
	g := geom()
	part, err := NewPartition(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	iso, err := NewSubarrayIsolated(NewLineInterleave(g), part)
	if err != nil {
		t.Fatal(err)
	}
	for grp := 0; grp < 4; grp++ {
		lo, hi, err := iso.RegionBounds(grp)
		if err != nil {
			t.Fatal(err)
		}
		for _, line := range []uint64{lo, lo + 1, (lo + hi) / 2, hi - 1} {
			if got := iso.GroupOfLine(line); got != grp {
				t.Fatalf("line %d of region %d maps to group %d", line, grp, got)
			}
		}
	}
	if _, _, err := iso.RegionBounds(99); err == nil {
		t.Fatal("bad group accepted")
	}
}

func TestSubarrayIsolatedKeepsBankInterleaving(t *testing.T) {
	g := geom()
	part, err := NewPartition(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	iso, err := NewSubarrayIsolated(NewLineInterleave(g), part)
	if err != nil {
		t.Fatal(err)
	}
	banks := make(map[int]bool)
	// One page (64 lines) must still hit every bank.
	for i := uint64(0); i < 64; i++ {
		banks[iso.Map(i).Bank] = true
	}
	if len(banks) != g.Banks {
		t.Fatalf("page touches %d banks under subarray isolation, want %d (Fig. 2 property)",
			len(banks), g.Banks)
	}
}

func TestSubarrayIsolatedPageStaysInOneGroup(t *testing.T) {
	g := geom()
	part, err := NewPartition(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	iso, err := NewSubarrayIsolated(NewLineInterleave(g), part)
	if err != nil {
		t.Fatal(err)
	}
	linesPerPage := uint64(4096 / g.LineBytes)
	f := func(raw uint64) bool {
		page := raw % (g.TotalLines() / linesPerPage)
		grp := iso.GroupOfLine(page * linesPerPage)
		for i := uint64(1); i < linesPerPage; i++ {
			if iso.GroupOfLine(page*linesPerPage+i) != grp {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatalf("page split across subarray groups: %v", err)
	}
}

func TestSubarrayIsolatedGeometryMismatch(t *testing.T) {
	g := geom()
	small := g
	small.RowsPerSubarray = 32
	part, err := NewPartition(small, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewSubarrayIsolated(NewLineInterleave(g), part); err == nil {
		t.Fatal("geometry mismatch accepted")
	}
}

func TestRowsTouched(t *testing.T) {
	g := geom()
	m := NewLineInterleave(g)
	// One page spans 64 lines: 8 lines in each of 8 banks, all with the
	// same row index.
	rows := RowsTouched(m, 0, 64)
	if len(rows) != g.Banks {
		t.Fatalf("page touches %d (bank,row) pairs, want %d", len(rows), g.Banks)
	}
	for _, r := range rows {
		if r.Row != 0 {
			t.Fatalf("page 0 touches row %d, want 0", r.Row)
		}
	}
}

func TestMapPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range line did not panic")
		}
	}()
	NewLineInterleave(geom()).Map(geom().TotalLines())
}
