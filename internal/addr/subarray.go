package addr

import (
	"fmt"

	"hammertime/internal/dram"
)

// Partition assigns every subarray index to a subarray group — Fig. 2's
// groups A, B, C. A group is the same set of subarray indices in every
// bank, so a domain confined to one group still interleaves its lines
// across all banks (full bank-level parallelism) while staying
// electromagnetically isolated from other groups.
type Partition struct {
	geom   dram.Geometry
	groups int
}

// NewPartition divides g's subarrays round-robin into n groups: subarray s
// belongs to group s % n. SubarraysPerBank must be divisible by n so every
// group gets equal capacity.
func NewPartition(g dram.Geometry, n int) (*Partition, error) {
	if n <= 0 {
		return nil, fmt.Errorf("addr: partition needs > 0 groups, got %d", n)
	}
	if n > g.SubarraysPerBank {
		return nil, fmt.Errorf("addr: partition of %d groups exceeds %d subarrays per bank",
			n, g.SubarraysPerBank)
	}
	if g.SubarraysPerBank%n != 0 {
		return nil, fmt.Errorf("addr: %d subarrays per bank not divisible by %d groups",
			g.SubarraysPerBank, n)
	}
	return &Partition{geom: g, groups: n}, nil
}

// Groups returns the number of subarray groups.
func (p *Partition) Groups() int { return p.groups }

// Geometry returns the geometry the partition was built for.
func (p *Partition) Geometry() dram.Geometry { return p.geom }

// GroupOfSubarray returns the group owning the given subarray index.
func (p *Partition) GroupOfSubarray(sub int) int { return sub % p.groups }

// GroupOfRow returns the group owning the given bank-local row.
func (p *Partition) GroupOfRow(row int) int {
	return p.GroupOfSubarray(p.geom.SubarrayOf(row))
}

// SubarraysPerGroup returns how many subarrays of each bank one group owns.
func (p *Partition) SubarraysPerGroup() int { return p.geom.SubarraysPerBank / p.groups }

// SubarraysInGroup returns the subarray indices belonging to group.
func (p *Partition) SubarraysInGroup(group int) []int {
	var subs []int
	for s := group; s < p.geom.SubarraysPerBank; s += p.groups {
		subs = append(subs, s)
	}
	return subs
}

// SubarrayIsolated wraps a base interleaving scheme with the paper's §4.1
// primitive: full cache-line interleaving across banks, with the subarray
// bits of the row permuted so that each contiguous 1/groups slice of the
// physical address space (a "region") lands entirely in one subarray
// group. The host allocator's job becomes trivial — give trust domain d
// frames from region g(d) — while every domain still spreads consecutive
// lines across all banks. The memory controller additionally enforces
// domain/group ownership on every request (see memctrl.DomainEnforcer).
type SubarrayIsolated struct {
	base       Mapper
	part       *Partition
	geom       dram.Geometry
	rowsPerSA  int
	subsPerGrp int
}

// NewSubarrayIsolated wraps base with the region-to-group row permutation.
func NewSubarrayIsolated(base Mapper, part *Partition) (*SubarrayIsolated, error) {
	g := base.Geometry()
	if part.geom != g {
		return nil, fmt.Errorf("addr: partition geometry does not match mapper geometry")
	}
	return &SubarrayIsolated{
		base:       base,
		part:       part,
		geom:       g,
		rowsPerSA:  g.RowsPerSubarray,
		subsPerGrp: part.SubarraysPerGroup(),
	}, nil
}

// Name implements Mapper.
func (m *SubarrayIsolated) Name() string {
	return fmt.Sprintf("subarray-isolated(%s,%d)", m.base.Name(), m.part.groups)
}

// Geometry implements Mapper.
func (m *SubarrayIsolated) Geometry() dram.Geometry { return m.geom }

// permuteRow maps a dense "logical" row index to a physical row such that
// logical region r (a contiguous run of subsPerGrp logical subarrays)
// occupies exactly the subarrays of group r: logical subarray
// ls = region*subsPerGrp + k goes to physical subarray k*groups + region.
func (m *SubarrayIsolated) permuteRow(row int) int {
	ls := row / m.rowsPerSA
	within := row % m.rowsPerSA
	region := ls / m.subsPerGrp
	k := ls % m.subsPerGrp
	physSub := k*m.part.groups + region
	return physSub*m.rowsPerSA + within
}

// unpermuteRow inverts permuteRow.
func (m *SubarrayIsolated) unpermuteRow(row int) int {
	physSub := row / m.rowsPerSA
	within := row % m.rowsPerSA
	region := physSub % m.part.groups
	k := physSub / m.part.groups
	ls := region*m.subsPerGrp + k
	return ls*m.rowsPerSA + within
}

// Map implements Mapper.
func (m *SubarrayIsolated) Map(line uint64) DDR {
	d := m.base.Map(line)
	d.Row = m.permuteRow(d.Row)
	return d
}

// Unmap implements Mapper.
func (m *SubarrayIsolated) Unmap(d DDR) uint64 {
	d.Row = m.unpermuteRow(d.Row)
	return m.base.Unmap(d)
}

// Partition returns the subarray partition the mapper isolates by.
func (m *SubarrayIsolated) Partition() *Partition { return m.part }

// GroupOfLine returns the subarray group a physical line maps into.
func (m *SubarrayIsolated) GroupOfLine(line uint64) int {
	return m.part.GroupOfRow(m.Map(line).Row)
}

// RegionBounds returns the half-open physical line range [lo, hi) whose
// lines map into the given subarray group — the region a host allocator
// assigns to the domains of that group.
func (m *SubarrayIsolated) RegionBounds(group int) (lo, hi uint64, err error) {
	if group < 0 || group >= m.part.groups {
		return 0, 0, fmt.Errorf("addr: group %d out of range [0,%d)", group, m.part.groups)
	}
	linesPerRegion := m.geom.TotalLines() / uint64(m.part.groups)
	return uint64(group) * linesPerRegion, uint64(group+1) * linesPerRegion, nil
}

// RowsTouched returns the distinct (bank, row) pairs a contiguous range of
// physical lines maps onto — what a page allocator needs to know to place
// a page entirely within one subarray group.
func RowsTouched(m Mapper, startLine, n uint64) []DDR {
	seen := make(map[[2]int]bool)
	var rows []DDR
	for i := uint64(0); i < n; i++ {
		d := m.Map(startLine + i)
		key := [2]int{d.Bank, d.Row}
		if !seen[key] {
			seen[key] = true
			rows = append(rows, DDR{Bank: d.Bank, Row: d.Row})
		}
	}
	return rows
}
