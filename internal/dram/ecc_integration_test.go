package dram

import (
	"testing"

	"hammertime/internal/ecc"
)

func eccModule(t *testing.T) *Module {
	t.Helper()
	m, err := NewModule(Config{Profile: smallMAC(), Seed: 2, ECC: true})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestECCRequiresAlignedLines(t *testing.T) {
	g := DefaultGeometry()
	g.LineBytes = 60
	if _, err := NewModule(Config{Geometry: g, ECC: true}); err == nil {
		t.Fatal("unaligned line size accepted with ECC")
	}
}

func TestECCCleanLineClassifiesClean(t *testing.T) {
	m := eccModule(t)
	a := LineAddr{Bank: 0, Row: 5, Column: 3}
	data := make([]byte, m.Geometry().LineBytes)
	for i := range data {
		data[i] = byte(i)
	}
	if err := m.WriteLine(a, data); err != nil {
		t.Fatal(err)
	}
	classes, err := m.ClassifyLine(a)
	if err != nil {
		t.Fatal(err)
	}
	for w, c := range classes {
		if c != ecc.Clean {
			t.Fatalf("word %d = %v, want clean", w, c)
		}
	}
}

func TestECCFlipsClassified(t *testing.T) {
	m := eccModule(t)
	// Hammer rows 10/12 so row 11 flips; every flipped victim line must
	// classify as something other than clean, and the flipped-line list
	// must cover it.
	for i := 0; i < 5000; i++ {
		if _, err := m.Activate(0, 10, uint64(i), -1); err != nil {
			t.Fatal(err)
		}
		if _, err := m.Activate(0, 12, uint64(i), -1); err != nil {
			t.Fatal(err)
		}
	}
	if m.FlipCount() == 0 {
		t.Fatal("setup: no flips")
	}
	lines := m.FlippedLines()
	if len(lines) == 0 {
		t.Fatal("no flipped lines recorded")
	}
	nonClean := 0
	for _, la := range lines {
		classes, err := m.ClassifyLine(la)
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range classes {
			if c != ecc.Clean {
				nonClean++
			}
		}
	}
	if nonClean == 0 {
		t.Fatal("flips never visible through classification")
	}
}

func TestECCCheckBitFlipsAreModeled(t *testing.T) {
	m := eccModule(t)
	dataBits := m.Geometry().LineBytes * 8
	seen := false
	for i := 0; i < 8000 && !seen; i++ {
		if _, err := m.Activate(0, 10, uint64(i), -1); err != nil {
			t.Fatal(err)
		}
		for _, f := range m.Flips() {
			if f.Bit >= dataBits {
				seen = true
			}
		}
	}
	if !seen {
		t.Fatal("no flip ever landed in check bits (they are cells too)")
	}
}

func TestWriteLineHealsFlippedState(t *testing.T) {
	m := eccModule(t)
	for i := 0; i < 5000; i++ {
		if _, err := m.Activate(0, 10, uint64(i), -1); err != nil {
			t.Fatal(err)
		}
	}
	lines := m.FlippedLines()
	if len(lines) == 0 {
		t.Skip("no flips this seed")
	}
	target := lines[0]
	fresh := make([]byte, m.Geometry().LineBytes)
	if err := m.WriteLine(target, fresh); err != nil {
		t.Fatal(err)
	}
	classes, err := m.ClassifyLine(target)
	if err != nil {
		t.Fatal(err)
	}
	for w, c := range classes {
		if c != ecc.Clean {
			t.Fatalf("word %d still %v after rewrite", w, c)
		}
	}
	for _, la := range m.FlippedLines() {
		if la == target {
			t.Fatal("rewritten line still in flipped set")
		}
	}
}

func TestScrubRepairsSingleFlips(t *testing.T) {
	m := eccModule(t)
	a := LineAddr{Bank: 0, Row: 11, Column: 7}
	want := make([]byte, m.Geometry().LineBytes)
	for i := range want {
		want[i] = 0xC3
	}
	if err := m.WriteLine(a, want); err != nil {
		t.Fatal(err)
	}
	// Inject exactly one flip by hand through the disturbance machinery:
	// hammer lightly until this specific line shows a single-bit change.
	// Deterministic alternative: flip via the module's own path is
	// random, so emulate the state directly instead.
	key := m.lineKey(a)
	m.data[key][0] ^= 0x01

	corr, det, err := m.ScrubLine(a)
	if err != nil {
		t.Fatal(err)
	}
	if corr != 1 || det != 0 {
		t.Fatalf("scrub: corrected=%d detected=%d, want 1/0", corr, det)
	}
	got, err := m.ReadLine(a)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("byte %d = %#x after scrub, want %#x", i, got[i], want[i])
		}
	}
}

func TestScrubDetectsDoubleFlips(t *testing.T) {
	m := eccModule(t)
	a := LineAddr{Bank: 0, Row: 11, Column: 7}
	if err := m.WriteLine(a, make([]byte, m.Geometry().LineBytes)); err != nil {
		t.Fatal(err)
	}
	key := m.lineKey(a)
	m.data[key][0] ^= 0x03 // two flips in word 0

	corr, det, err := m.ScrubLine(a)
	if err != nil {
		t.Fatal(err)
	}
	if det != 1 || corr != 0 {
		t.Fatalf("scrub: corrected=%d detected=%d, want 0/1", corr, det)
	}
}

func TestScrubRequiresECC(t *testing.T) {
	m := testModule(t, smallMAC())
	if _, _, err := m.ScrubLine(LineAddr{}); err == nil {
		t.Fatal("scrub without ECC accepted")
	}
	if _, err := m.ClassifyLine(LineAddr{}); err == nil {
		t.Fatal("classify without ECC accepted")
	}
}
