package dram

import (
	"fmt"

	"hammertime/internal/obs"
)

// TRRConfig configures the in-DRAM blackbox Target Row Refresh baseline.
//
// Real vendors track a small number n of aggressor candidates per bank
// with counter tables and cure a candidate's neighbors at REF time once
// its count crosses a threshold. TRRespass (Frigo et al., S&P'20) showed
// the bypass: with more than n uniformly-hammered aggressors the tracker's
// eviction policy thrashes — no candidate ever accumulates enough count to
// trigger a cure — and victims flip exactly as if TRR were absent. This
// engine reproduces that mechanism: a Misra-Gries-style table whose
// decrement churn under > n distinct hot rows keeps every count below the
// cure threshold.
type TRRConfig struct {
	// TrackerEntries is n: aggressor candidates tracked per bank.
	TrackerEntries int
	// MitigationsPerREF is how many over-threshold candidates get their
	// neighbors refreshed on each REF command (vendors cure 1-2).
	MitigationsPerREF int
	// RefreshRadius is how far around a cured aggressor the engine
	// refreshes (vendor blast-radius assumption, often just 1).
	RefreshRadius int
	// CureThreshold is the tracked count a candidate must reach before a
	// REF cures it. Zero means 8.
	CureThreshold uint64
	// DecayEvery controls eviction pressure: every DecayEvery'th ACT of
	// an untracked row (with the table full) decrements all candidates.
	// Zero means 4. Larger values bias the tracker toward genuinely hot
	// rows amid benign noise, at the cost of slower adaptation.
	DecayEvery int
	// CureWithACT makes the mitigation refresh victims by *activating*
	// them (how several real implementations work) instead of an internal
	// recharge. Those activations disturb their own neighbors — the
	// relay that the Half-Double attack (Google, 2021/22) exploits to
	// reach victims beyond the module's native blast radius. Off by
	// default; experiment E10 measures the difference.
	CureWithACT bool
}

// DefaultTRR returns a vendor-typical configuration: 4 tracker entries,
// one mitigation per REF, radius 1.
func DefaultTRR() TRRConfig {
	return TRRConfig{TrackerEntries: 4, MitigationsPerREF: 1, RefreshRadius: 1}
}

func (c *TRRConfig) applyDefaults() {
	if c.CureThreshold == 0 {
		c.CureThreshold = 8
	}
	if c.DecayEvery == 0 {
		c.DecayEvery = 4
	}
}

func (c TRRConfig) validate() error {
	switch {
	case c.TrackerEntries <= 0:
		return fmt.Errorf("dram: TRR tracker entries %d, need > 0", c.TrackerEntries)
	case c.MitigationsPerREF <= 0:
		return fmt.Errorf("dram: TRR mitigations per REF %d, need > 0", c.MitigationsPerREF)
	case c.RefreshRadius <= 0:
		return fmt.Errorf("dram: TRR refresh radius %d, need > 0", c.RefreshRadius)
	}
	return nil
}

// trrCandidate is one tracked aggressor candidate. The tracker holds a
// small fixed number of these per bank in a flat slice — a CAM, like the
// silicon it models — so the per-ACT path is a short linear scan with no
// map hashing and no allocation.
type trrCandidate struct {
	row   int
	count uint64
}

// trrEngine is the per-bank tracker.
type trrEngine struct {
	cfg       TRRConfig
	tables    [][]trrCandidate // per bank, capacity TrackerEntries
	missRuns  []int            // per bank: untracked-ACT run length
	refreshes uint64
}

func newTRREngine(cfg TRRConfig, geom Geometry, prof DisturbanceProfile) (*trrEngine, error) {
	cfg.applyDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	t := &trrEngine{
		cfg:      cfg,
		tables:   make([][]trrCandidate, geom.Banks),
		missRuns: make([]int, geom.Banks),
	}
	for i := range t.tables {
		t.tables[i] = make([]trrCandidate, 0, cfg.TrackerEntries)
	}
	return t, nil
}

// onActivate feeds one ACT into the bank's tracker.
func (t *trrEngine) onActivate(bankIdx, row int) {
	table := t.tables[bankIdx]
	for i := range table {
		if table[i].row == row {
			table[i].count++
			return
		}
	}
	if len(table) < t.cfg.TrackerEntries {
		t.tables[bankIdx] = append(table, trrCandidate{row: row, count: 1})
		return
	}
	// Table full and row untracked: apply decay pressure. This is what
	// > n-sided attacks exploit — their own insert misses churn every
	// candidate's count back down before it can reach the cure threshold.
	t.missRuns[bankIdx]++
	if t.missRuns[bankIdx] < t.cfg.DecayEvery {
		return
	}
	t.missRuns[bankIdx] = 0
	w := 0
	for _, e := range table {
		if e.count > 1 {
			e.count--
			table[w] = e
			w++
		}
	}
	t.tables[bankIdx] = table[:w]
}

// quiescent reports whether a REF would be a no-op for the tracker: no
// candidate in any bank has reached the cure threshold. Candidate counts
// only change on ACTs, so a quiescent tracker stays quiescent across any
// ACT-free span — the property the controller's refresh fast-forward
// relies on to skip onRefresh calls.
func (t *trrEngine) quiescent() bool {
	for _, table := range t.tables {
		for _, e := range table {
			if e.count >= t.cfg.CureThreshold {
				return false
			}
		}
	}
	return true
}

// onRefresh runs at REF time: cure up to MitigationsPerREF candidates that
// crossed the threshold, refreshing their neighbors and forgetting them.
func (t *trrEngine) onRefresh(m *Module, cycle uint64) {
	for bankIdx := range t.tables {
		for i := 0; i < t.cfg.MitigationsPerREF; i++ {
			table := t.tables[bankIdx]
			top, topIdx, topCount := -1, -1, uint64(0)
			for j, e := range table {
				if e.count > topCount || (e.count == topCount && e.count > 0 && (top == -1 || e.row < top)) {
					top, topIdx, topCount = e.row, j, e.count
				}
			}
			if top < 0 || topCount < t.cfg.CureThreshold {
				break
			}
			m.rec.Emit(obs.Event{Kind: obs.KindTRRCure, Cycle: cycle, Bank: bankIdx, Row: top, Domain: -1})
			if t.cfg.CureWithACT {
				// Activate-based cure: recharges the victims but lets
				// their own neighbors absorb disturbance (Half-Double).
				sub := m.geom.SubarrayOf(top)
				for dist := 1; dist <= t.cfg.RefreshRadius; dist++ {
					for _, victim := range [2]int{top - dist, top + dist} {
						if !m.geom.ValidRow(victim) || m.geom.SubarrayOf(victim) != sub {
							continue
						}
						// Internal ACT: unattributed actor. The cure must
						// not feed the tracker or it would chase itself.
						if _, err := m.activateInternal(bankIdx, victim, cycle); err == nil {
							t.refreshes++
							m.stats.Inc("dram.trr_mitigations")
						}
					}
				}
			} else {
				// The neighbor refresh is internal to DRAM: no MC command.
				if err := m.RefreshNeighbors(bankIdx, top, t.cfg.RefreshRadius, cycle); err == nil {
					t.refreshes++
					m.stats.Inc("dram.trr_mitigations")
				}
			}
			table[topIdx] = table[len(table)-1]
			t.tables[bankIdx] = table[:len(table)-1]
		}
	}
}
