// Package dram models a DRAM module at the granularity the Rowhammer
// problem lives at: banks of row-column subarrays with per-bank row
// buffers, DDR-style command timing, periodic refresh, and a
// charge-disturbance model in which frequent activations of aggressor rows
// corrupt physically-proximate victim rows (Kim et al., ISCA'14).
//
// The model follows §2 of "Stop! Hammer Time" (HotOS '21): a row can
// safely withstand a per-module maximum activation count (MAC) of ACTs
// within a refresh window; victims lie up to BlastRadius rows from an
// aggressor; subarrays are electromagnetically isolated from one another,
// so disturbance never crosses a subarray boundary.
package dram

import "fmt"

// Geometry describes the physical organization of a module. The module is
// modeled as a single rank of Banks banks; each bank holds
// SubarraysPerBank subarrays of RowsPerSubarray rows; each row holds
// ColumnsPerRow cache-line-sized columns of LineBytes bytes.
type Geometry struct {
	Banks            int
	SubarraysPerBank int
	RowsPerSubarray  int
	ColumnsPerRow    int
	LineBytes        int
}

// DefaultGeometry returns a small but structurally faithful module:
// 8 banks x 16 subarrays x 64 rows of 8 KB (128 x 64 B lines), 64 MiB
// total. Small enough to sweep in tests, large enough that interleaving,
// subarray grouping and refresh sweeps all behave like the real thing.
func DefaultGeometry() Geometry {
	return Geometry{
		Banks:            8,
		SubarraysPerBank: 16,
		RowsPerSubarray:  64,
		ColumnsPerRow:    128,
		LineBytes:        64,
	}
}

// Validate reports an error describing the first invalid field, if any.
func (g Geometry) Validate() error {
	switch {
	case g.Banks <= 0:
		return fmt.Errorf("dram: geometry has %d banks, need > 0", g.Banks)
	case g.SubarraysPerBank <= 0:
		return fmt.Errorf("dram: geometry has %d subarrays per bank, need > 0", g.SubarraysPerBank)
	case g.RowsPerSubarray <= 0:
		return fmt.Errorf("dram: geometry has %d rows per subarray, need > 0", g.RowsPerSubarray)
	case g.ColumnsPerRow <= 0:
		return fmt.Errorf("dram: geometry has %d columns per row, need > 0", g.ColumnsPerRow)
	case g.LineBytes <= 0:
		return fmt.Errorf("dram: geometry has %d bytes per line, need > 0", g.LineBytes)
	}
	return nil
}

// RowsPerBank returns the number of rows in one bank.
func (g Geometry) RowsPerBank() int { return g.SubarraysPerBank * g.RowsPerSubarray }

// TotalRows returns the number of rows in the module.
func (g Geometry) TotalRows() int { return g.Banks * g.RowsPerBank() }

// TotalLines returns the number of cache lines the module stores.
func (g Geometry) TotalLines() uint64 {
	return uint64(g.Banks) * uint64(g.RowsPerBank()) * uint64(g.ColumnsPerRow)
}

// TotalBytes returns the module capacity in bytes.
func (g Geometry) TotalBytes() uint64 { return g.TotalLines() * uint64(g.LineBytes) }

// RowBytes returns the size of one row in bytes.
func (g Geometry) RowBytes() int { return g.ColumnsPerRow * g.LineBytes }

// SubarrayOf returns the subarray index containing the bank-local row.
func (g Geometry) SubarrayOf(row int) int { return row / g.RowsPerSubarray }

// SameSubarray reports whether two bank-local rows share a subarray and
// therefore share bit lines (disturbance can propagate between them).
func (g Geometry) SameSubarray(a, b int) bool { return g.SubarrayOf(a) == g.SubarrayOf(b) }

// ValidRow reports whether row is a valid bank-local row index.
func (g Geometry) ValidRow(row int) bool { return row >= 0 && row < g.RowsPerBank() }

// ValidBank reports whether bank is a valid bank index.
func (g Geometry) ValidBank(bank int) bool { return bank >= 0 && bank < g.Banks }
