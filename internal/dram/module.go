package dram

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"hammertime/internal/ecc"
	"hammertime/internal/obs"
	"hammertime/internal/sim"
)

// FlipEvent records one Rowhammer bit flip: which bit of which line of
// which victim row flipped, when, and which aggressor row's activation
// pushed it over.
type FlipEvent struct {
	Bank      int
	Row       int // victim, bank-local
	Subarray  int
	Column    int
	Bit       int // bit offset within the line
	Cycle     uint64
	Aggressor int // aggressor row, bank-local
	// ActorDomain is the trust domain whose access triggered the
	// aggressor activation (-1 when unknown/internal).
	ActorDomain int
}

// LineAddr identifies one cache-line-sized column in the module.
type LineAddr struct {
	Bank   int
	Row    int // bank-local
	Column int
}

// Config assembles everything a Module needs. Zero-valued fields fall back
// to defaults (DefaultGeometry, DDR4Timing, DDR4Old profile).
type Config struct {
	Geometry Geometry
	Timing   Timing
	Profile  DisturbanceProfile
	// TRR, if non-nil, enables the in-DRAM blackbox Target Row Refresh
	// baseline (§3): an n-entry aggressor tracker serviced at REF time.
	TRR *TRRConfig
	// ECC enables SECDED (72,64) protection: every 64-bit word carries 8
	// check bits, flips may also land in check bits, and ReadLine/
	// ClassifyLine report corrected/detected/silent outcomes (the
	// Cojocar et al. hierarchy).
	ECC bool
	// MaxFlipRecords bounds the retained FlipEvent list (flip *counts* are
	// always exact). 0 means DefaultMaxFlipRecords.
	MaxFlipRecords int
	// Seed seeds the module's private RNG (victim bit selection).
	Seed uint64
}

// DefaultMaxFlipRecords is the default bound on retained flip events.
const DefaultMaxFlipRecords = 4096

// Module is a simulated DRAM module. It is passive: the memory controller
// drives it by calling command methods with the current cycle. Module is
// not safe for concurrent use.
type Module struct {
	geom   Geometry
	timing Timing
	prof   DisturbanceProfile

	// Per-bank dynamic state in struct-of-arrays layout: open holds each
	// bank's open row (-1 when precharged); disturb and acts are flat
	// bank-major arrays indexed [bank*rows + row]. disturb accumulates
	// distance-weighted aggressor ACTs per victim row since the victim's
	// last refresh (0 = fully charged); acts counts ACTs per row since the
	// row's last refresh (stats, TRR). The ACT hot path touches a small
	// neighborhood of rows around the aggressor, which in this layout is
	// one contiguous run of float64s/uint64s — pure indexing, zero
	// allocations, no per-bank pointer chase.
	open    []int
	disturb []float64
	acts    []uint64
	rows    int // cached Geometry.RowsPerBank()

	trr *trrEngine

	rng   *sim.RNG
	stats *sim.Stats
	rec   *obs.Recorder

	// actVec is the live "dram.act.bank" per-bank counter slice (held to
	// skip the stats map lookup on the ACT hot path); actCtr, preCtr,
	// refCtr and flipCtr are the matching live scalar counter pointers
	// (sim.Stats.CounterRef). actsPerRow is the ACTs-per-row-per-refresh-
	// window histogram, fed when a row's counter is reset by refresh.
	// lastCycle remembers the most recent command cycle for events on
	// commands that carry no cycle (PRE, RefreshRow).
	actVec     []int64
	actCtr     *int64
	preCtr     *int64
	refCtr     *int64
	flipCtr    *int64
	actsPerRow *sim.Histogram
	lastCycle  uint64

	// Refresh sweep state: refreshPtr is the next bank-local row the sweep
	// will recharge (same row index in every bank). The sweep advances
	// fractionally — refAccum accumulates RowsPerBank per REF and a row is
	// recharged each time it crosses refDenom (= REF commands per window) —
	// so one full sweep takes exactly one refresh window regardless of the
	// module's row count.
	refreshPtr  int
	refAccum    int
	refDenom    int
	flipRecords []FlipEvent
	maxRecords  int
	flipCount   uint64
	crossFlips  func(FlipEvent) // optional observer

	data map[uint64][]byte // sparse line store, key = lineKey

	// ECC state (nil maps when disabled): stored check bytes, the
	// originally-written ground truth, and the set of flipped lines.
	eccOn     bool
	checks    map[uint64][8]uint8
	originals map[uint64][]byte
	flipped   map[uint64]bool
}

// NewModule constructs a module from cfg, applying defaults for zero
// fields and validating the result.
func NewModule(cfg Config) (*Module, error) {
	if cfg.Geometry == (Geometry{}) {
		cfg.Geometry = DefaultGeometry()
	}
	if cfg.Timing == (Timing{}) {
		cfg.Timing = DDR4Timing()
	}
	if cfg.Profile == (DisturbanceProfile{}) {
		cfg.Profile = DDR4Old()
	}
	if err := cfg.Geometry.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Timing.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Profile.Validate(); err != nil {
		return nil, err
	}
	if cfg.MaxFlipRecords == 0 {
		cfg.MaxFlipRecords = DefaultMaxFlipRecords
	}
	m := &Module{
		geom:       cfg.Geometry,
		timing:     cfg.Timing,
		prof:       cfg.Profile,
		rng:        sim.NewRNG(cfg.Seed ^ 0xd2a57d4d11b2c9f3),
		stats:      &sim.Stats{},
		maxRecords: cfg.MaxFlipRecords,
		data:       make(map[uint64][]byte),
		eccOn:      cfg.ECC,
		flipped:    make(map[uint64]bool),
	}
	if cfg.ECC {
		if cfg.Geometry.LineBytes%8 != 0 {
			return nil, fmt.Errorf("dram: ECC requires 8-byte-aligned lines, got %d bytes", cfg.Geometry.LineBytes)
		}
		m.checks = make(map[uint64][8]uint8)
		m.originals = make(map[uint64][]byte)
	}
	m.actVec = m.stats.EnsureVec("dram.act.bank", cfg.Geometry.Banks)
	m.actCtr = m.stats.CounterRef("dram.act")
	m.preCtr = m.stats.CounterRef("dram.pre")
	m.refCtr = m.stats.CounterRef("dram.ref")
	m.flipCtr = m.stats.CounterRef("dram.flips")
	m.actsPerRow = m.stats.NewHistogram("dram.acts_per_row", sim.ExpBuckets(1, 2, 17))
	m.rows = cfg.Geometry.RowsPerBank()
	m.open = make([]int, cfg.Geometry.Banks)
	for i := range m.open {
		m.open[i] = -1
	}
	m.disturb = make([]float64, cfg.Geometry.Banks*m.rows)
	m.acts = make([]uint64, cfg.Geometry.Banks*m.rows)
	m.refDenom = cfg.Timing.RefreshCommandsPerWindow()
	if m.refDenom <= 0 {
		m.refDenom = 1
	}
	if cfg.TRR != nil {
		t, err := newTRREngine(*cfg.TRR, cfg.Geometry, cfg.Profile)
		if err != nil {
			return nil, err
		}
		m.trr = t
	}
	return m, nil
}

// Geometry returns the module's geometry.
func (m *Module) Geometry() Geometry { return m.geom }

// Timing returns the module's timing parameters.
func (m *Module) Timing() Timing { return m.timing }

// Profile returns the module's disturbance profile.
func (m *Module) Profile() DisturbanceProfile { return m.prof }

// Stats returns the module's stats registry.
func (m *Module) Stats() *sim.Stats { return m.stats }

// SetRecorder attaches an event recorder (nil disables recording). The
// recorder is a pure observer: it never changes command behavior, timing
// or RNG consumption.
func (m *Module) SetRecorder(r *obs.Recorder) { m.rec = r }

// SetFlipObserver registers fn to be called synchronously on every bit
// flip (in addition to recording). Pass nil to remove.
func (m *Module) SetFlipObserver(fn func(FlipEvent)) { m.crossFlips = fn }

// OpenRow returns the bank's open row, or -1 if the bank is precharged.
func (m *Module) OpenRow(bankIdx int) int {
	return m.open[bankIdx]
}

// Activate issues an ACT command: it connects row to the bank's row buffer,
// recharges the row itself, and disturbs neighbors within the blast radius
// in the same subarray. Any bit flips caused by this activation are
// recorded and returned. actorDomain tags the trust domain whose access
// caused the ACT (-1 for internal/unattributed activity) so flips can be
// attributed exactly.
func (m *Module) Activate(bankIdx, row int, cycle uint64, actorDomain int) ([]FlipEvent, error) {
	if !m.geom.ValidBank(bankIdx) {
		return nil, fmt.Errorf("dram: activate: bank %d out of range [0,%d)", bankIdx, m.geom.Banks)
	}
	if !m.geom.ValidRow(row) {
		return nil, fmt.Errorf("dram: activate: row %d out of range [0,%d)", row, m.geom.RowsPerBank())
	}
	m.open[bankIdx] = row
	*m.actCtr++
	m.actVec[bankIdx]++
	m.lastCycle = cycle
	// Arg=1 marks a counted, controller-issued ACT (as opposed to a
	// mitigation-internal cure, which carries Arg=0 and Domain=-1).
	m.rec.Emit(obs.Event{Kind: obs.KindACT, Cycle: cycle, Bank: bankIdx, Row: row, Domain: actorDomain, Arg: 1})
	idx := bankIdx*m.rows + row
	m.acts[idx]++
	// An ACT recharges the activated row as a side effect (§2.1).
	m.disturb[idx] = 0

	var flips []FlipEvent
	sub := m.geom.SubarrayOf(row)
	for dist := 1; dist <= m.prof.BlastRadius; dist++ {
		amount := m.prof.DisturbanceAt(dist)
		for _, victim := range [2]int{row - dist, row + dist} {
			if !m.geom.ValidRow(victim) || m.geom.SubarrayOf(victim) != sub {
				continue // subarrays are electromagnetically isolated
			}
			flips = append(flips, m.disturbRow(bankIdx, victim, row, amount, cycle, actorDomain)...)
		}
	}
	if m.trr != nil {
		m.trr.onActivate(bankIdx, row)
	}
	return flips, nil
}

// activateInternal performs the electrical effects of an ACT (open row,
// self-refresh, neighbor disturbance) without feeding the TRR tracker —
// used by mitigation engines whose cures are themselves activations.
func (m *Module) activateInternal(bankIdx, row int, cycle uint64) ([]FlipEvent, error) {
	if !m.geom.ValidBank(bankIdx) || !m.geom.ValidRow(row) {
		return nil, fmt.Errorf("dram: internal activate: bank %d row %d out of range", bankIdx, row)
	}
	// A cure ACT cannot land on a bank with an open row — the engine
	// precharges first, and again after the cure, so the row buffer is
	// left as the controller expects (closed) rather than silently
	// holding the cure victim.
	if m.open[bankIdx] >= 0 {
		m.Precharge(bankIdx, cycle)
	}
	m.open[bankIdx] = row
	*m.actCtr++
	m.actVec[bankIdx]++
	m.lastCycle = cycle
	m.rec.Emit(obs.Event{Kind: obs.KindACT, Cycle: cycle, Bank: bankIdx, Row: row, Domain: -1})
	m.disturb[bankIdx*m.rows+row] = 0
	var flips []FlipEvent
	sub := m.geom.SubarrayOf(row)
	for dist := 1; dist <= m.prof.BlastRadius; dist++ {
		amount := m.prof.DisturbanceAt(dist)
		for _, victim := range [2]int{row - dist, row + dist} {
			if !m.geom.ValidRow(victim) || m.geom.SubarrayOf(victim) != sub {
				continue
			}
			flips = append(flips, m.disturbRow(bankIdx, victim, row, amount, cycle, -1)...)
		}
	}
	m.Precharge(bankIdx, cycle)
	return flips, nil
}

// disturbRow adds disturbance to one victim row and generates flips for
// any excess beyond the MAC.
func (m *Module) disturbRow(bankIdx, victim, aggressor int, amount float64, cycle uint64, actorDomain int) []FlipEvent {
	idx := bankIdx*m.rows + victim
	old := m.disturb[idx]
	now := old + amount
	m.disturb[idx] = now

	mac := float64(m.prof.MAC)
	if now <= mac {
		return nil
	}
	excessDelta := now - mac
	if old > mac {
		excessDelta = now - old
	}
	expect := excessDelta * m.prof.FlipProb
	n := int(expect)
	if m.rng.Bool(expect - float64(n)) {
		n++
	}
	if n == 0 {
		return nil
	}
	bitSpace := m.geom.LineBytes * 8
	if m.eccOn {
		// Check bits are cells too: one check byte per 64-bit word, but
		// the check store holds at most 8 words' worth (applyFlip and
		// WriteLine only protect the first 8 words of wide lines).
		checkBytes := m.geom.LineBytes / 8
		if checkBytes > 8 {
			checkBytes = 8
		}
		bitSpace += checkBytes * 8
	}
	flips := make([]FlipEvent, 0, n)
	for i := 0; i < n; i++ {
		ev := FlipEvent{
			Bank:        bankIdx,
			Row:         victim,
			Subarray:    m.geom.SubarrayOf(victim),
			Column:      m.rng.Intn(m.geom.ColumnsPerRow),
			Bit:         m.rng.Intn(bitSpace),
			Cycle:       cycle,
			Aggressor:   aggressor,
			ActorDomain: actorDomain,
		}
		m.applyFlip(ev)
		flips = append(flips, ev)
	}
	return flips
}

// applyFlip records ev and corrupts the stored data, materializing the
// line if it was never written (unwritten cells still flip on hardware).
func (m *Module) applyFlip(ev FlipEvent) {
	m.flipCount++
	*m.flipCtr++
	if len(m.flipRecords) < m.maxRecords {
		m.flipRecords = append(m.flipRecords, ev)
	}
	key := m.lineKey(LineAddr{Bank: ev.Bank, Row: ev.Row, Column: ev.Column})
	m.flipped[key] = true
	m.materialize(key)
	dataBits := m.geom.LineBytes * 8
	if ev.Bit < dataBits {
		m.data[key][ev.Bit/8] ^= 1 << (ev.Bit % 8)
	} else {
		// ECC check-bit flip: word w's check byte.
		cb := ev.Bit - dataBits
		checks := m.checks[key]
		checks[cb/8] ^= 1 << (cb % 8)
		m.checks[key] = checks
	}
	m.rec.Emit(obs.Event{
		Kind:   obs.KindBitFlip,
		Cycle:  ev.Cycle,
		Bank:   ev.Bank,
		Row:    ev.Row,
		Domain: ev.ActorDomain,
		Arg:    uint64(ev.Bit),
	})
	if m.crossFlips != nil {
		m.crossFlips(ev)
	}
}

// materialize ensures the sparse stores hold state for key (zero data,
// matching check bits and ground truth when ECC is on).
func (m *Module) materialize(key uint64) {
	if _, ok := m.data[key]; !ok {
		m.data[key] = make([]byte, m.geom.LineBytes)
	}
	if !m.eccOn {
		return
	}
	if _, ok := m.checks[key]; !ok {
		var cs [8]uint8
		zero := ecc.Encode(0)
		for i := range cs {
			cs[i] = zero.Check
		}
		m.checks[key] = cs
	}
	if _, ok := m.originals[key]; !ok {
		m.originals[key] = make([]byte, m.geom.LineBytes)
	}
}

// Precharge issues a PRE command at the given cycle, closing the bank's
// open row.
func (m *Module) Precharge(bankIdx int, cycle uint64) error {
	if !m.geom.ValidBank(bankIdx) {
		return fmt.Errorf("dram: precharge: bank %d out of range [0,%d)", bankIdx, m.geom.Banks)
	}
	m.open[bankIdx] = -1
	*m.preCtr++
	m.lastCycle = cycle
	m.rec.Emit(obs.Event{Kind: obs.KindPRE, Cycle: cycle, Bank: bankIdx, Row: -1, Domain: -1})
	return nil
}

// Refresh issues one REF command (the periodic sweep): the next batch of
// rows is recharged in every bank, and — if TRR is enabled — the in-DRAM
// mitigation gets its chance to issue targeted neighbor refreshes.
// The memory controller is responsible for issuing Refresh every TREFI.
func (m *Module) Refresh(cycle uint64) {
	*m.refCtr++
	m.lastCycle = cycle
	m.rec.Emit(obs.Event{Kind: obs.KindREF, Cycle: cycle, Bank: -1, Row: -1, Domain: -1})
	m.refAccum += m.rows
	for m.refAccum >= m.refDenom {
		m.refAccum -= m.refDenom
		for b := 0; b < m.geom.Banks; b++ {
			m.refreshRowInternal(b, m.refreshPtr)
		}
		m.refreshPtr = (m.refreshPtr + 1) % m.rows
	}
	if m.trr != nil {
		m.trr.onRefresh(m, cycle)
	}
}

// RefreshBurst applies n consecutive REF commands (the last at cycle
// lastCycle) in one step, in closed form, and reports whether it did.
// It refuses — returning false with NO state change, so the caller must
// fall back to issuing single Refresh commands — when the burst would be
// observable: a recorder is attached (per-REF events must be emitted at
// their own cycles) or a TRR engine is armed with an over-threshold
// candidate (cures fire at specific REF commands).
//
// When it runs, the final state is byte-identical to n single Refresh
// calls: the fractional sweep advances refreshPtr/refAccum by exactly the
// same amounts, and because a row recharge is idempotent (disturb drops
// to 0; the acts histogram observes only the first recharge of a row with
// acts > 0) the sweep only needs min(steps, rows) physical recharges —
// beyond one full rotation, extra passes touch already-clean rows.
// A quiescent TRR tracker is untouched by onRefresh, so skipping those
// calls changes nothing either.
func (m *Module) RefreshBurst(n uint64, lastCycle uint64) bool {
	if n == 0 {
		return true
	}
	if m.rec != nil || (m.trr != nil && !m.trr.quiescent()) {
		return false
	}
	*m.refCtr += int64(n)
	m.lastCycle = lastCycle
	// Advance the fractional sweep in closed form, chunked so the
	// rows-per-REF accumulation never overflows uint64.
	rows := uint64(m.rows)
	denom := uint64(m.refDenom)
	for n > 0 {
		chunk := n
		if maxChunk := (math.MaxUint64 - uint64(m.refAccum)) / rows; chunk > maxChunk {
			chunk = maxChunk
		}
		total := uint64(m.refAccum) + chunk*rows
		m.applySweepSteps(total / denom)
		m.refAccum = int(total % denom)
		n -= chunk
	}
	return true
}

// applySweepSteps advances the refresh sweep by steps whole rows,
// recharging min(steps, rows) rows starting at refreshPtr — in sweep
// order, all banks per row, exactly as the per-REF loop would.
func (m *Module) applySweepSteps(steps uint64) {
	if steps == 0 {
		return
	}
	eff := steps
	if eff > uint64(m.rows) {
		eff = uint64(m.rows)
	}
	row := m.refreshPtr
	for i := uint64(0); i < eff; i++ {
		for b := 0; b < m.geom.Banks; b++ {
			m.refreshRowInternal(b, row)
		}
		row++
		if row == m.rows {
			row = 0
		}
	}
	m.refreshPtr = int((uint64(m.refreshPtr) + steps%uint64(m.rows)) % uint64(m.rows))
}

// refreshRowInternal recharges one row without command-timing side
// effects (used by the REF sweep and targeted refreshes).
func (m *Module) refreshRowInternal(bankIdx, row int) {
	idx := bankIdx*m.rows + row
	m.disturb[idx] = 0
	if acts := m.acts[idx]; acts > 0 {
		m.actsPerRow.Observe(float64(acts))
		m.acts[idx] = 0
	}
}

// RefreshRow performs a targeted refresh of one row, as issued by the
// proposed host refresh instruction (§4.3) after its PRE+ACT sequence, or
// by in-MC mitigations (PARA, Graphene). It recharges the row without
// disturbing neighbors — the neighbor disturbance of the instruction's ACT
// is modeled by the memory controller issuing a real Activate first.
func (m *Module) RefreshRow(bankIdx, row int) error {
	if !m.geom.ValidBank(bankIdx) {
		return fmt.Errorf("dram: refresh row: bank %d out of range [0,%d)", bankIdx, m.geom.Banks)
	}
	if !m.geom.ValidRow(row) {
		return fmt.Errorf("dram: refresh row: row %d out of range [0,%d)", row, m.geom.RowsPerBank())
	}
	m.stats.Inc("dram.targeted_refresh")
	m.rec.Emit(obs.Event{Kind: obs.KindTargetedRefresh, Cycle: m.lastCycle, Bank: bankIdx, Row: row, Domain: -1})
	m.refreshRowInternal(bankIdx, row)
	return nil
}

// RefreshNeighbors implements the optional REF_NEIGHBORS DDR command the
// paper proposes (§4.3): DRAM refreshes all potential victims of the given
// aggressor row up to radius rows away, within the aggressor's subarray.
func (m *Module) RefreshNeighbors(bankIdx, row, radius int, cycle uint64) error {
	if !m.geom.ValidBank(bankIdx) {
		return fmt.Errorf("dram: refresh neighbors: bank %d out of range [0,%d)", bankIdx, m.geom.Banks)
	}
	if !m.geom.ValidRow(row) {
		return fmt.Errorf("dram: refresh neighbors: row %d out of range [0,%d)", row, m.geom.RowsPerBank())
	}
	if radius <= 0 {
		return fmt.Errorf("dram: refresh neighbors: radius %d, need > 0", radius)
	}
	m.stats.Inc("dram.ref_neighbors")
	m.lastCycle = cycle
	m.rec.Emit(obs.Event{Kind: obs.KindRefNeighbors, Cycle: cycle, Bank: bankIdx, Row: row, Domain: -1, Arg: uint64(radius)})
	sub := m.geom.SubarrayOf(row)
	for dist := 1; dist <= radius; dist++ {
		for _, victim := range [2]int{row - dist, row + dist} {
			if m.geom.ValidRow(victim) && m.geom.SubarrayOf(victim) == sub {
				m.refreshRowInternal(bankIdx, victim)
			}
		}
	}
	return nil
}

// FlipCount returns the total number of bit flips so far.
func (m *Module) FlipCount() uint64 { return m.flipCount }

// Flips returns the recorded flip events (bounded by MaxFlipRecords).
// The returned slice is owned by the module; callers must not modify it.
func (m *Module) Flips() []FlipEvent { return m.flipRecords }

// Disturbance returns the accumulated disturbance of a row since its last
// refresh. Exposed for tests and for modeling idealized hardware oracles.
func (m *Module) Disturbance(bankIdx, row int) float64 {
	if !m.geom.ValidBank(bankIdx) || !m.geom.ValidRow(row) {
		return 0
	}
	return m.disturb[bankIdx*m.rows+row]
}

// SeedDisturbance sets a row's accumulated disturbance directly. It
// exists for experiments that need a specific charge state (e.g. E7's
// "victim row open while disturbed" hazard) without replaying the access
// history; it is not part of the hardware model and generates no flips.
// The injection is emitted as a KindSeedDisturb event so shadow models
// (the invariant auditor) see it.
func (m *Module) SeedDisturbance(bankIdx, row int, amount float64) {
	if !m.geom.ValidBank(bankIdx) || !m.geom.ValidRow(row) {
		return
	}
	m.disturb[bankIdx*m.rows+row] = amount
	m.rec.Emit(obs.Event{
		Kind:   obs.KindSeedDisturb,
		Cycle:  m.lastCycle,
		Bank:   bankIdx,
		Row:    row,
		Domain: -1,
		Arg:    math.Float64bits(amount),
	})
}

// ActCount returns the number of ACTs of a row since its last refresh.
func (m *Module) ActCount(bankIdx, row int) uint64 {
	if !m.geom.ValidBank(bankIdx) || !m.geom.ValidRow(row) {
		return 0
	}
	return m.acts[bankIdx*m.rows+row]
}

// lineKey packs a line address into a map key.
func (m *Module) lineKey(a LineAddr) uint64 {
	return (uint64(a.Bank)*uint64(m.geom.RowsPerBank())+uint64(a.Row))*uint64(m.geom.ColumnsPerRow) + uint64(a.Column)
}

// WriteLine stores data (copied, exactly LineBytes long) at the line.
// With ECC enabled it also computes and stores the check bits and records
// the written data as ground truth for later classification.
func (m *Module) WriteLine(a LineAddr, data []byte) error {
	if err := m.checkLine(a); err != nil {
		return err
	}
	if len(data) != m.geom.LineBytes {
		return fmt.Errorf("dram: write line: got %d bytes, want %d", len(data), m.geom.LineBytes)
	}
	key := m.lineKey(a)
	line, ok := m.data[key]
	if !ok {
		line = make([]byte, m.geom.LineBytes)
		m.data[key] = line
	}
	copy(line, data)
	delete(m.flipped, key) // a full write lays down fresh, clean cells
	if m.eccOn {
		var cs [8]uint8
		for w := 0; w < m.geom.LineBytes/8 && w < 8; w++ {
			cs[w] = ecc.Encode(binary.LittleEndian.Uint64(data[w*8:])).Check
		}
		m.checks[key] = cs
		orig, ok := m.originals[key]
		if !ok {
			orig = make([]byte, m.geom.LineBytes)
			m.originals[key] = orig
		}
		copy(orig, data)
	}
	return nil
}

// ReadLine returns a copy of the line's current contents (zeroes if never
// written, with any Rowhammer corruption applied).
func (m *Module) ReadLine(a LineAddr) ([]byte, error) {
	if err := m.checkLine(a); err != nil {
		return nil, err
	}
	out := make([]byte, m.geom.LineBytes)
	if line, ok := m.data[m.lineKey(a)]; ok {
		copy(out, line)
	}
	return out, nil
}

func (m *Module) checkLine(a LineAddr) error {
	switch {
	case !m.geom.ValidBank(a.Bank):
		return fmt.Errorf("dram: bank %d out of range [0,%d)", a.Bank, m.geom.Banks)
	case !m.geom.ValidRow(a.Row):
		return fmt.Errorf("dram: row %d out of range [0,%d)", a.Row, m.geom.RowsPerBank())
	case a.Column < 0 || a.Column >= m.geom.ColumnsPerRow:
		return fmt.Errorf("dram: column %d out of range [0,%d)", a.Column, m.geom.ColumnsPerRow)
	}
	return nil
}

// ECCEnabled reports whether the module stores check bits.
func (m *Module) ECCEnabled() bool { return m.eccOn }

// ClassifyLine decodes every 64-bit word of the line against its stored
// check bits and the originally-written ground truth, classifying each as
// clean / corrected / detected / silent corruption. Only meaningful with
// ECC enabled.
func (m *Module) ClassifyLine(a LineAddr) ([]ecc.Classification, error) {
	if !m.eccOn {
		return nil, fmt.Errorf("dram: ClassifyLine requires ECC")
	}
	if err := m.checkLine(a); err != nil {
		return nil, err
	}
	key := m.lineKey(a)
	words := m.geom.LineBytes / 8
	if words > 8 {
		words = 8
	}
	out := make([]ecc.Classification, words)
	stored, ok := m.data[key]
	if !ok {
		return out, nil // never written, never flipped: all clean
	}
	m.materialize(key)
	checks := m.checks[key]
	orig := m.originals[key]
	for w := 0; w < words; w++ {
		out[w] = ecc.Classify(
			binary.LittleEndian.Uint64(orig[w*8:]),
			ecc.Word{Data: binary.LittleEndian.Uint64(stored[w*8:]), Check: checks[w]},
		)
	}
	return out, nil
}

// ScrubLine performs one patrol-scrub pass over the line: every word is
// decoded; correctable words are rewritten with corrected data and fresh
// check bits, uncorrectable words are reported. Like real hardware the
// scrubber has no ground truth — a multi-bit word that aliases to a
// correctable pattern gets "corrected" to the wrong value and laundered
// with clean check bits (still classified as silent corruption later).
// Returns (corrected, detected) word counts.
func (m *Module) ScrubLine(a LineAddr) (corrected, detected int, err error) {
	if !m.eccOn {
		return 0, 0, fmt.Errorf("dram: ScrubLine requires ECC")
	}
	if err := m.checkLine(a); err != nil {
		return 0, 0, err
	}
	key := m.lineKey(a)
	stored, ok := m.data[key]
	if !ok {
		return 0, 0, nil // untouched line: nothing to scrub
	}
	m.materialize(key)
	checks := m.checks[key]
	words := m.geom.LineBytes / 8
	if words > 8 {
		words = 8
	}
	for w := 0; w < words; w++ {
		word := ecc.Word{Data: binary.LittleEndian.Uint64(stored[w*8:]), Check: checks[w]}
		decoded, res := ecc.Decode(word)
		switch res {
		case ecc.Corrected:
			binary.LittleEndian.PutUint64(stored[w*8:], decoded)
			checks[w] = ecc.Encode(decoded).Check
			corrected++
			m.stats.Inc("dram.scrub_corrected")
		case ecc.Detected:
			detected++
			m.stats.Inc("dram.scrub_detected")
		}
	}
	m.checks[key] = checks
	return corrected, detected, nil
}

// FlippedLines returns the addresses of every line that has absorbed at
// least one Rowhammer flip since its last full write.
func (m *Module) FlippedLines() []LineAddr {
	out := make([]LineAddr, 0, len(m.flipped))
	cols := uint64(m.geom.ColumnsPerRow)
	rows := uint64(m.geom.RowsPerBank())
	for key := range m.flipped {
		col := key % cols
		row := (key / cols) % rows
		bank := key / (cols * rows)
		out = append(out, LineAddr{Bank: int(bank), Row: int(row), Column: int(col)})
	}
	// The flipped set is a map; return a fixed order, not map order.
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Bank != b.Bank {
			return a.Bank < b.Bank
		}
		if a.Row != b.Row {
			return a.Row < b.Row
		}
		return a.Column < b.Column
	})
	return out
}

// TRRStats returns the TRR engine's cumulative targeted-refresh count, or
// 0 if TRR is disabled.
func (m *Module) TRRStats() uint64 {
	if m.trr == nil {
		return 0
	}
	return m.trr.refreshes
}
