package dram

import (
	"fmt"
	"testing"

	"hammertime/internal/obs"
)

// primeModule gives a module a distinctive pre-burst state: scattered
// ACTs across banks/rows (disturbance, per-row counters, histogram
// samples) and a partially-advanced refresh sweep.
func primeModule(t *testing.T, m *Module) {
	t.Helper()
	cycle := uint64(1)
	for i := 0; i < 400; i++ {
		bank := i % m.geom.Banks
		row := (i * 37) % m.rows
		if _, err := m.Activate(bank, row, cycle, 0); err != nil {
			t.Fatal(err)
		}
		if err := m.Precharge(bank, cycle); err != nil {
			t.Fatal(err)
		}
		cycle += 7
	}
	for i := 0; i < 13; i++ {
		m.Refresh(cycle)
		cycle += 9360
	}
}

// moduleFingerprint captures every piece of state the refresh sweep can
// touch.
func moduleFingerprint(m *Module) string {
	return fmt.Sprintf("open=%v ptr=%d accum=%d disturb=%v acts=%v stats:\n%s",
		m.open, m.refreshPtr, m.refAccum, m.disturb, m.acts, m.stats.String())
}

// TestRefreshBurstMatchesSingleRefreshes pins the closed-form sweep: for
// a range of burst lengths (shorter than, equal to, and far beyond one
// full sweep rotation) RefreshBurst(n, last) must leave a module in
// byte-identical state to n individual Refresh commands.
func TestRefreshBurstMatchesSingleRefreshes(t *testing.T) {
	for _, n := range []uint64{1, 3, 8, 100, 8205, 8206, 100_000, 9_000_000} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			slow, err := NewModule(Config{Seed: 42})
			if err != nil {
				t.Fatal(err)
			}
			fast, err := NewModule(Config{Seed: 42})
			if err != nil {
				t.Fatal(err)
			}
			primeModule(t, slow)
			primeModule(t, fast)

			const trefi = 9360
			base := uint64(10_000_000)
			last := base + (n-1)*trefi
			for c := base; ; c += trefi {
				slow.Refresh(c)
				if c == last {
					break
				}
			}
			if !fast.RefreshBurst(n, last) {
				t.Fatal("RefreshBurst refused on an unobserved TRR-less module")
			}

			if got, want := moduleFingerprint(fast), moduleFingerprint(slow); got != want {
				t.Errorf("burst state diverges from %d single refreshes:\n--- burst\n%.2000s\n--- single\n%.2000s", n, got, want)
			}
			if fast.lastCycle != slow.lastCycle {
				t.Errorf("lastCycle = %d, want %d", fast.lastCycle, slow.lastCycle)
			}
		})
	}
}

// TestRefreshBurstRefusals pins the cases where the burst must fall back
// to per-REF refreshes: an attached recorder (events must carry per-REF
// cycles) and a TRR tracker with a pending cure. A quiescent tracker is
// no obstacle.
func TestRefreshBurstRefusals(t *testing.T) {
	trr := DefaultTRR()

	t.Run("armed-trr", func(t *testing.T) {
		m, err := NewModule(Config{Seed: 1, TRR: &trr})
		if err != nil {
			t.Fatal(err)
		}
		// Hammer one row past the cure threshold so the tracker is armed.
		for i := uint64(0); i < m.trr.cfg.CureThreshold+2; i++ {
			if _, err := m.Activate(0, 100, i+1, 0); err != nil {
				t.Fatal(err)
			}
		}
		if m.trr.quiescent() {
			t.Fatal("tracker should be armed")
		}
		before := m.stats.Counter("dram.ref")
		if m.RefreshBurst(50, 1_000_000) {
			t.Fatal("burst must refuse while a cure is pending")
		}
		if got := m.stats.Counter("dram.ref"); got != before {
			t.Fatalf("refused burst changed dram.ref: %d -> %d", before, got)
		}
		// One real REF cures the candidate; the tracker goes quiescent and
		// the burst is allowed again.
		m.Refresh(1_000_000)
		if !m.trr.quiescent() {
			t.Fatal("tracker should be quiescent after the cure")
		}
		if !m.RefreshBurst(50, 2_000_000) {
			t.Fatal("burst must run once the tracker is quiescent")
		}
	})

	t.Run("recorder", func(t *testing.T) {
		m, err := NewModule(Config{Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		m.SetRecorder(obs.NewRecorder(obs.NewRing(16)))
		if m.RefreshBurst(50, 1_000_000) {
			t.Fatal("burst must refuse while a recorder is attached")
		}
		m.SetRecorder(nil)
		if !m.RefreshBurst(50, 1_000_000) {
			t.Fatal("burst must run once the recorder is detached")
		}
	})
}
