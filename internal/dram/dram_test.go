package dram

import (
	"testing"
	"testing/quick"
)

func testModule(t *testing.T, prof DisturbanceProfile) *Module {
	t.Helper()
	m, err := NewModule(Config{Profile: prof, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// smallMAC is a profile with a tiny MAC so tests can cross it quickly.
func smallMAC() DisturbanceProfile {
	return DisturbanceProfile{Name: "test", MAC: 100, BlastRadius: 2, DistanceDecay: 0.5, FlipProb: 1}
}

func TestGeometryDerivedSizes(t *testing.T) {
	g := DefaultGeometry()
	if g.RowsPerBank() != 16*64 {
		t.Fatalf("rows per bank = %d", g.RowsPerBank())
	}
	if g.TotalRows() != 8*16*64 {
		t.Fatalf("total rows = %d", g.TotalRows())
	}
	if g.RowBytes() != 8192 {
		t.Fatalf("row bytes = %d, want 8192 (the 8KB row of §2.1)", g.RowBytes())
	}
	if g.TotalBytes() != 64<<20 {
		t.Fatalf("total bytes = %d, want 64 MiB", g.TotalBytes())
	}
}

func TestGeometryValidate(t *testing.T) {
	cases := []Geometry{
		{Banks: 0, SubarraysPerBank: 1, RowsPerSubarray: 1, ColumnsPerRow: 1, LineBytes: 1},
		{Banks: 1, SubarraysPerBank: 0, RowsPerSubarray: 1, ColumnsPerRow: 1, LineBytes: 1},
		{Banks: 1, SubarraysPerBank: 1, RowsPerSubarray: 0, ColumnsPerRow: 1, LineBytes: 1},
		{Banks: 1, SubarraysPerBank: 1, RowsPerSubarray: 1, ColumnsPerRow: 0, LineBytes: 1},
		{Banks: 1, SubarraysPerBank: 1, RowsPerSubarray: 1, ColumnsPerRow: 1, LineBytes: 0},
	}
	for i, g := range cases {
		if g.Validate() == nil {
			t.Errorf("case %d: invalid geometry accepted: %+v", i, g)
		}
	}
	if err := DefaultGeometry().Validate(); err != nil {
		t.Errorf("default geometry rejected: %v", err)
	}
}

func TestSubarrayBoundaries(t *testing.T) {
	g := DefaultGeometry()
	if g.SubarrayOf(0) != 0 || g.SubarrayOf(63) != 0 || g.SubarrayOf(64) != 1 {
		t.Fatal("subarray boundaries wrong")
	}
	if g.SameSubarray(63, 64) {
		t.Fatal("rows 63 and 64 must be in different subarrays")
	}
	if !g.SameSubarray(0, 63) {
		t.Fatal("rows 0 and 63 must share a subarray")
	}
}

func TestTimingValidate(t *testing.T) {
	if err := DDR4Timing().Validate(); err != nil {
		t.Fatalf("default timing rejected: %v", err)
	}
	bad := DDR4Timing()
	bad.TRC = 0
	if bad.Validate() == nil {
		t.Fatal("zero TRC accepted")
	}
	bad = DDR4Timing()
	bad.TREFI = bad.RefreshWindow
	if bad.Validate() == nil {
		t.Fatal("TREFI >= window accepted")
	}
}

func TestTimingBudgets(t *testing.T) {
	tm := DDR4Timing()
	if got := tm.RefreshCommandsPerWindow(); got < 8000 || got > 8400 {
		t.Fatalf("REFs per window = %d, want ~8192", got)
	}
	if got := tm.MaxActsPerWindowPerBank(); got != tm.RefreshWindow/tm.TRC {
		t.Fatalf("ACT budget = %d", got)
	}
}

func TestProfilesOrderedBySusceptibility(t *testing.T) {
	gens := Generations()
	for i := 1; i < len(gens); i++ {
		if gens[i].MAC >= gens[i-1].MAC {
			t.Errorf("%s MAC %d not below %s MAC %d (the §3 density trend)",
				gens[i].Name, gens[i].MAC, gens[i-1].Name, gens[i-1].MAC)
		}
		if gens[i].BlastRadius < gens[i-1].BlastRadius {
			t.Errorf("%s blast radius shrank", gens[i].Name)
		}
	}
}

func TestDisturbanceAtDecay(t *testing.T) {
	p := DisturbanceProfile{MAC: 1, BlastRadius: 3, DistanceDecay: 0.5, FlipProb: 0}
	cases := map[int]float64{0: 0, 1: 1, -1: 1, 2: 0.5, 3: 0.25, 4: 0, -4: 0}
	for dist, want := range cases {
		if got := p.DisturbanceAt(dist); got != want {
			t.Errorf("DisturbanceAt(%d) = %g, want %g", dist, got, want)
		}
	}
}

func TestActivateOpensRow(t *testing.T) {
	m := testModule(t, smallMAC())
	if m.OpenRow(0) != -1 {
		t.Fatal("bank 0 should start precharged")
	}
	if _, err := m.Activate(0, 5, 0, -1); err != nil {
		t.Fatal(err)
	}
	if m.OpenRow(0) != 5 {
		t.Fatalf("open row = %d, want 5", m.OpenRow(0))
	}
	if err := m.Precharge(0, 1); err != nil {
		t.Fatal(err)
	}
	if m.OpenRow(0) != -1 {
		t.Fatal("precharge did not close the row")
	}
}

func TestActivateBoundsChecked(t *testing.T) {
	m := testModule(t, smallMAC())
	if _, err := m.Activate(99, 0, 0, -1); err == nil {
		t.Fatal("bad bank accepted")
	}
	if _, err := m.Activate(0, 1<<20, 0, -1); err == nil {
		t.Fatal("bad row accepted")
	}
}

func TestHammerCrossesMACAndFlips(t *testing.T) {
	m := testModule(t, smallMAC())
	// Hammer row 10; victim row 11 must accumulate and flip past MAC=100.
	for i := 0; i < 150; i++ {
		if _, err := m.Activate(0, 10, uint64(i), 7); err != nil {
			t.Fatal(err)
		}
	}
	if m.FlipCount() == 0 {
		t.Fatalf("no flips after 150 ACTs with MAC 100 and FlipProb 1 (disturb=%g)",
			m.Disturbance(0, 11))
	}
	for _, f := range m.Flips() {
		if f.Aggressor != 10 {
			t.Errorf("flip attributes aggressor %d, want 10", f.Aggressor)
		}
		if f.ActorDomain != 7 {
			t.Errorf("flip attributes actor %d, want 7", f.ActorDomain)
		}
		d := f.Row - 10
		if d < 0 {
			d = -d
		}
		if d == 0 || d > 2 {
			t.Errorf("flip at row %d outside blast radius of row 10", f.Row)
		}
	}
}

func TestHammerBelowMACNeverFlips(t *testing.T) {
	m := testModule(t, smallMAC())
	for i := 0; i < 99; i++ {
		if _, err := m.Activate(0, 10, uint64(i), -1); err != nil {
			t.Fatal(err)
		}
	}
	if m.FlipCount() != 0 {
		t.Fatalf("flips below MAC: %d", m.FlipCount())
	}
}

func TestActivateRefreshesOwnRow(t *testing.T) {
	m := testModule(t, smallMAC())
	for i := 0; i < 50; i++ {
		if _, err := m.Activate(0, 10, uint64(i), -1); err != nil {
			t.Fatal(err)
		}
	}
	if m.Disturbance(0, 11) != 50 {
		t.Fatalf("victim disturbance = %g, want 50", m.Disturbance(0, 11))
	}
	// Activating the victim itself clears its accumulated disturbance.
	if _, err := m.Activate(0, 11, 50, -1); err != nil {
		t.Fatal(err)
	}
	if m.Disturbance(0, 11) != 0 {
		t.Fatalf("victim ACT did not self-refresh: %g", m.Disturbance(0, 11))
	}
}

func TestSubarrayIsolationStopsDisturbance(t *testing.T) {
	m := testModule(t, smallMAC())
	// Row 63 is the last row of subarray 0; row 64 starts subarray 1.
	for i := 0; i < 500; i++ {
		if _, err := m.Activate(0, 63, uint64(i), -1); err != nil {
			t.Fatal(err)
		}
	}
	if got := m.Disturbance(0, 64); got != 0 {
		t.Fatalf("disturbance crossed subarray boundary: %g (§4.1 isolation violated)", got)
	}
	if got := m.Disturbance(0, 62); got == 0 {
		t.Fatal("no disturbance within the subarray")
	}
}

func TestDisturbanceDoesNotCrossBanks(t *testing.T) {
	m := testModule(t, smallMAC())
	for i := 0; i < 500; i++ {
		if _, err := m.Activate(0, 10, uint64(i), -1); err != nil {
			t.Fatal(err)
		}
	}
	if got := m.Disturbance(1, 11); got != 0 {
		t.Fatalf("disturbance crossed banks: %g", got)
	}
}

func TestTargetedRefreshClearsDisturbance(t *testing.T) {
	m := testModule(t, smallMAC())
	for i := 0; i < 90; i++ {
		if _, err := m.Activate(0, 10, uint64(i), -1); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.RefreshRow(0, 11); err != nil {
		t.Fatal(err)
	}
	if err := m.RefreshRow(0, 9); err != nil {
		t.Fatal(err)
	}
	if m.Disturbance(0, 11) != 0 {
		t.Fatal("targeted refresh did not clear disturbance")
	}
	// Continuing the hammer must re-accumulate from zero: 90 more ACTs
	// keeps both distance-1 victims below MAC (distance-2 victims only
	// ever see half weight).
	for i := 0; i < 90; i++ {
		if _, err := m.Activate(0, 10, uint64(90+i), -1); err != nil {
			t.Fatal(err)
		}
	}
	if m.FlipCount() != 0 {
		t.Fatal("refresh did not reset the victim's accumulation")
	}
}

func TestRefreshNeighborsCoversRadius(t *testing.T) {
	m := testModule(t, smallMAC())
	for i := 0; i < 90; i++ {
		if _, err := m.Activate(0, 10, uint64(i), -1); err != nil {
			t.Fatal(err)
		}
	}
	// Victims at distance 1 and 2 are charged; REF_NEIGHBORS(10, 2)
	// must clear both sides.
	if err := m.RefreshNeighbors(0, 10, 2, 90); err != nil {
		t.Fatal(err)
	}
	for _, r := range []int{8, 9, 11, 12} {
		if m.Disturbance(0, r) != 0 {
			t.Errorf("row %d not cleared by REF_NEIGHBORS", r)
		}
	}
}

func TestRefreshNeighborsValidatesArgs(t *testing.T) {
	m := testModule(t, smallMAC())
	if err := m.RefreshNeighbors(0, 10, 0, 0); err == nil {
		t.Fatal("radius 0 accepted")
	}
	if err := m.RefreshNeighbors(0, -1, 1, 0); err == nil {
		t.Fatal("negative row accepted")
	}
}

func TestRefreshSweepCoversAllRowsInOneWindow(t *testing.T) {
	m := testModule(t, smallMAC())
	// Disturb a victim, then issue a full window of REF commands: the
	// sweep must have recharged every row exactly once.
	for i := 0; i < 90; i++ {
		if _, err := m.Activate(0, 10, uint64(i), -1); err != nil {
			t.Fatal(err)
		}
	}
	refs := m.Timing().RefreshCommandsPerWindow()
	for i := 0; i < refs; i++ {
		m.Refresh(uint64(1000 + i))
	}
	if m.Disturbance(0, 11) != 0 {
		t.Fatal("window-long REF sweep left the victim disturbed")
	}
}

func TestRefreshSweepIsGradual(t *testing.T) {
	m := testModule(t, smallMAC())
	for i := 0; i < 90; i++ {
		if _, err := m.Activate(0, 500, uint64(i), -1); err != nil {
			t.Fatal(err)
		}
	}
	// A few REFs only sweep the first rows; row 501 stays disturbed.
	for i := 0; i < 10; i++ {
		m.Refresh(uint64(1000 + i))
	}
	if m.Disturbance(0, 501) == 0 {
		t.Fatal("10 REFs should not yet have refreshed row 501")
	}
}

func TestDataReadWriteAndCorruption(t *testing.T) {
	m := testModule(t, smallMAC())
	a := LineAddr{Bank: 0, Row: 11, Column: 3}
	data := make([]byte, m.Geometry().LineBytes)
	for i := range data {
		data[i] = 0xA5
	}
	if err := m.WriteLine(a, data); err != nil {
		t.Fatal(err)
	}
	got, err := m.ReadLine(a)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != 0xA5 {
			t.Fatalf("byte %d = %#x before hammering", i, got[i])
		}
	}
	// Hammer until flips, then verify stored data actually changed
	// somewhere in row 11.
	for i := 0; i < 4000; i++ {
		if _, err := m.Activate(0, 10, uint64(i), -1); err != nil {
			t.Fatal(err)
		}
		if _, err := m.Activate(0, 12, uint64(i), -1); err != nil {
			t.Fatal(err)
		}
	}
	corrupted := false
	for _, f := range m.Flips() {
		if f.Row == 11 {
			line, err := m.ReadLine(LineAddr{Bank: 0, Row: 11, Column: f.Column})
			if err != nil {
				t.Fatal(err)
			}
			if line[f.Bit/8]&(1<<(f.Bit%8)) != 0 || f.Column == a.Column {
				corrupted = true
			}
		}
	}
	if !corrupted {
		t.Fatal("flips recorded but no stored data changed")
	}
}

func TestWriteLineValidates(t *testing.T) {
	m := testModule(t, smallMAC())
	if err := m.WriteLine(LineAddr{Bank: 0, Row: 0, Column: 0}, []byte{1}); err == nil {
		t.Fatal("short write accepted")
	}
	if err := m.WriteLine(LineAddr{Bank: 99, Row: 0, Column: 0}, make([]byte, 64)); err == nil {
		t.Fatal("bad bank accepted")
	}
	if _, err := m.ReadLine(LineAddr{Bank: 0, Row: 0, Column: 999}); err == nil {
		t.Fatal("bad column accepted")
	}
}

func TestFlipRecordsBounded(t *testing.T) {
	m, err := NewModule(Config{Profile: smallMAC(), Seed: 1, MaxFlipRecords: 10})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5000; i++ {
		if _, err := m.Activate(0, 10, uint64(i), -1); err != nil {
			t.Fatal(err)
		}
	}
	if len(m.Flips()) > 10 {
		t.Fatalf("flip records = %d, want <= 10", len(m.Flips()))
	}
	if m.FlipCount() <= 10 {
		t.Fatalf("flip count = %d, want > bound (counts stay exact)", m.FlipCount())
	}
}

// TestDisturbanceConservation is a property test: for any hammer pattern,
// a victim's disturbance equals the distance-weighted sum of aggressor
// ACTs since the victim's last refresh.
func TestDisturbanceConservation(t *testing.T) {
	prof := DisturbanceProfile{MAC: 1 << 40, BlastRadius: 2, DistanceDecay: 0.5, FlipProb: 0}
	f := func(pattern []uint8) bool {
		m, err := NewModule(Config{Profile: prof, Seed: 2})
		if err != nil {
			return false
		}
		const victim = 70 // interior row of subarray 1
		want := 0.0
		for i, p := range pattern {
			row := 64 + int(p%12) // rows 64..75, same subarray as victim
			if _, err := m.Activate(0, row, uint64(i), -1); err != nil {
				return false
			}
			if row == victim {
				want = 0 // self-refresh
			} else {
				want += prof.DisturbanceAt(row - victim)
			}
		}
		got := m.Disturbance(0, victim)
		diff := got - want
		if diff < 0 {
			diff = -diff
		}
		return diff < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// trrMAC is large enough that victims survive one tREFI of full-rate
// hammering, so REF-time mitigation gets its chance (with a tiny MAC the
// victim dies before the first REF — the §3 scaling failure, tested in
// the density-scaling experiment instead).
func trrMAC() DisturbanceProfile {
	p := smallMAC()
	p.MAC = 1000
	return p
}

func TestTRRCuresFewSidedAttack(t *testing.T) {
	cfg := DefaultTRR()
	cfg.RefreshRadius = 2
	m, err := NewModule(Config{Profile: trrMAC(), Seed: 1, TRR: &cfg})
	if err != nil {
		t.Fatal(err)
	}
	// Double-sided hammer with REFs interleaved at the real REF cadence.
	cycle := uint64(0)
	trefi := m.Timing().TREFI
	nextRef := trefi
	for i := 0; i < 5000; i++ {
		if _, err := m.Activate(0, 10, cycle, -1); err != nil {
			t.Fatal(err)
		}
		if _, err := m.Activate(0, 12, cycle+55, -1); err != nil {
			t.Fatal(err)
		}
		cycle += 110
		for cycle >= nextRef {
			m.Refresh(nextRef)
			nextRef += trefi
		}
	}
	if m.FlipCount() != 0 {
		t.Fatalf("TRR failed to cure a 2-sided attack: %d flips", m.FlipCount())
	}
	if m.TRRStats() == 0 {
		t.Fatal("TRR issued no mitigations")
	}
}

func TestTRRBypassedByManySided(t *testing.T) {
	cfg := DefaultTRR()
	cfg.RefreshRadius = 2
	m, err := NewModule(Config{Profile: trrMAC(), Seed: 1, TRR: &cfg})
	if err != nil {
		t.Fatal(err)
	}
	// 12 aggressors spaced 2 apart thrash the 4-entry tracker (the
	// TRRespass bypass): counts never reach the cure threshold.
	aggressors := make([]int, 12)
	for i := range aggressors {
		aggressors[i] = 10 + 2*i
	}
	cycle := uint64(0)
	trefi := m.Timing().TREFI
	nextRef := trefi
	for i := 0; i < 2000; i++ {
		for _, r := range aggressors {
			if _, err := m.Activate(0, r, cycle, -1); err != nil {
				t.Fatal(err)
			}
			cycle += 55
			for cycle >= nextRef {
				m.Refresh(nextRef)
				nextRef += trefi
			}
		}
	}
	if m.FlipCount() == 0 {
		t.Fatal("many-sided attack failed to bypass TRR (TRRespass shape lost)")
	}
}

func TestTRRConfigValidation(t *testing.T) {
	bad := TRRConfig{TrackerEntries: 0, MitigationsPerREF: 1, RefreshRadius: 1}
	if _, err := NewModule(Config{TRR: &bad}); err == nil {
		t.Fatal("zero tracker entries accepted")
	}
}

func TestModuleConfigDefaults(t *testing.T) {
	m, err := NewModule(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Geometry() != DefaultGeometry() {
		t.Fatal("geometry default not applied")
	}
	if m.Profile().Name != DDR4Old().Name {
		t.Fatal("profile default not applied")
	}
}

func TestHalfDoubleRelayThroughACTCures(t *testing.T) {
	// Radius-1 module: the attacker's own disturbance cannot reach
	// distance 2. With activate-based cures, the TRR mitigation itself
	// relays disturbance there (the Half-Double phenomenon).
	prof := DisturbanceProfile{Name: "hd", MAC: 100, BlastRadius: 1, DistanceDecay: 0.5, FlipProb: 1}
	for _, cureACT := range []bool{false, true} {
		cfg := TRRConfig{TrackerEntries: 4, MitigationsPerREF: 1, RefreshRadius: 1, CureWithACT: cureACT}
		m, err := NewModule(Config{Profile: prof, Seed: 1, TRR: &cfg})
		if err != nil {
			t.Fatal(err)
		}
		const aggressor = 10
		cycle := uint64(0)
		for ref := 0; ref < 150; ref++ {
			for i := 0; i < 20; i++ {
				if _, err := m.Activate(0, aggressor, cycle, 5); err != nil {
					t.Fatal(err)
				}
				cycle += 60
			}
			m.Refresh(cycle)
		}
		beyond := uint64(0)
		for _, f := range m.Flips() {
			d := f.Row - aggressor
			if d < 0 {
				d = -d
			}
			if d > prof.BlastRadius {
				beyond++
				if f.ActorDomain != -1 {
					t.Errorf("beyond-radius flip attributed to domain %d, want internal (-1)", f.ActorDomain)
				}
			}
		}
		if cureACT && beyond == 0 {
			t.Error("activate-based cures never relayed disturbance beyond the blast radius")
		}
		if !cureACT && beyond != 0 {
			t.Errorf("internal-recharge cures produced %d beyond-radius flips", beyond)
		}
	}
}

func TestEnergyEstimateTracksCommands(t *testing.T) {
	m := testModule(t, smallMAC())
	e := DDR4Energy()
	if got := e.Estimate(m); got != 0 {
		t.Fatalf("idle module energy = %g", got)
	}
	for i := 0; i < 100; i++ {
		if _, err := m.Activate(0, 10, uint64(i), -1); err != nil {
			t.Fatal(err)
		}
	}
	actOnly := e.Estimate(m)
	if want := 100 * e.ACTPre; actOnly != want {
		t.Fatalf("ACT energy = %g, want %g", actOnly, want)
	}
	m.Refresh(1000)
	if got := e.Estimate(m); got <= actOnly {
		t.Fatal("refresh added no energy")
	}
	if got := e.EstimateWithIO(m, 10); got != e.Estimate(m)+10*e.ReadWrite {
		t.Fatal("IO energy wrong")
	}
}
