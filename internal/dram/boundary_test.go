package dram

import "testing"

// boundaryModule builds a module with a wide blast radius and a MAC high
// enough that boundary tests never flip bits.
func boundaryModule(t *testing.T) *Module {
	t.Helper()
	m, err := NewModule(Config{
		Profile: DisturbanceProfile{Name: "boundary", MAC: 1 << 30, BlastRadius: 3, DistanceDecay: 0.5, FlipProb: 0.001},
		Seed:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestBlastRadiusClampedAtBankEdges pins the disturbance clamp at the
// module's physical edges: an aggressor at row 0 (or the last row) only
// disturbs the neighbors that exist, and no out-of-range row leaks
// charge (audited for the invariant-auditor work; the clamping was
// found correct, this pins it).
func TestBlastRadiusClampedAtBankEdges(t *testing.T) {
	m := boundaryModule(t)
	g := m.Geometry()
	last := g.RowsPerBank() - 1

	if _, err := m.Activate(0, 0, 10, 0); err != nil {
		t.Fatal(err)
	}
	for dist := 1; dist <= 3; dist++ {
		want := m.Profile().DisturbanceAt(dist)
		if got := m.Disturbance(0, dist); got != want {
			t.Errorf("row %d after ACT on row 0: disturbance %g, want %g", dist, got, want)
		}
	}
	if got := m.Disturbance(0, 0); got != 0 {
		t.Errorf("aggressor row 0 should be recharged by its own ACT, has %g", got)
	}
	// Negative rows don't exist; the accessor reports 0 for them and the
	// total disturbed charge must equal the one-sided sum.
	if got := m.Disturbance(0, -1); got != 0 {
		t.Errorf("out-of-range row reports disturbance %g", got)
	}

	if err := m.Precharge(0, 20); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Activate(0, last, 30, 0); err != nil {
		t.Fatal(err)
	}
	for dist := 1; dist <= 3; dist++ {
		want := m.Profile().DisturbanceAt(dist)
		if got := m.Disturbance(0, last-dist); got != want {
			t.Errorf("row %d after ACT on last row: disturbance %g, want %g", last-dist, got, want)
		}
	}
	if got := m.Disturbance(0, last); got != 0 {
		t.Errorf("aggressor last row should be recharged, has %g", got)
	}
}

// TestBlastRadiusClampedAtSubarrayBoundary pins subarray isolation: an
// aggressor on the last row of a subarray disturbs nothing across the
// boundary, for both the ACT path and the REF_NEIGHBORS command.
func TestBlastRadiusClampedAtSubarrayBoundary(t *testing.T) {
	m := boundaryModule(t)
	g := m.Geometry()
	edge := g.RowsPerSubarray - 1 // last row of subarray 0

	if _, err := m.Activate(2, edge, 10, 0); err != nil {
		t.Fatal(err)
	}
	for dist := 1; dist <= 3; dist++ {
		want := m.Profile().DisturbanceAt(dist)
		if got := m.Disturbance(2, edge-dist); got != want {
			t.Errorf("same-subarray victim %d: disturbance %g, want %g", edge-dist, got, want)
		}
		if got := m.Disturbance(2, edge+dist); got != 0 {
			t.Errorf("cross-subarray row %d disturbed by %g; isolation must clamp", edge+dist, got)
		}
	}

	// REF_NEIGHBORS on the edge row must likewise only refresh within the
	// subarray: charge seeded across the boundary survives.
	m.SeedDisturbance(2, edge-1, 17)
	m.SeedDisturbance(2, edge+1, 23)
	if err := m.RefreshNeighbors(2, edge, 3, 100); err != nil {
		t.Fatal(err)
	}
	if got := m.Disturbance(2, edge-1); got != 0 {
		t.Errorf("same-subarray victim not refreshed: %g", got)
	}
	if got := m.Disturbance(2, edge+1); got != 23 {
		t.Errorf("cross-subarray row %d was refreshed across the boundary (disturbance %g, want 23)", edge+1, got)
	}
}

// TestECCWideLineFlips is the regression test for the ECC check-bit
// panic on wide lines: with LineBytes > 64 the flip bit space must clamp
// the check-byte range to the 8 words the ECC store actually protects
// instead of indexing past it.
func TestECCWideLineFlips(t *testing.T) {
	g := DefaultGeometry()
	g.LineBytes = 128
	m, err := NewModule(Config{
		Geometry: g,
		Profile:  DisturbanceProfile{Name: "ecc-wide", MAC: 16, BlastRadius: 1, DistanceDecay: 0.5, FlipProb: 1},
		ECC:      true,
		Seed:     3,
	})
	if err != nil {
		t.Fatal(err)
	}
	cycle := uint64(0)
	for i := 0; i < 200; i++ {
		row := 6 + (i % 2 * 2) // alternate rows 6 and 8; row 7 is the victim
		if _, err := m.Activate(0, row, cycle, 0); err != nil {
			t.Fatal(err)
		}
		if err := m.Precharge(0, cycle+2); err != nil {
			t.Fatal(err)
		}
		cycle += m.Timing().TRC
	}
	if m.FlipCount() == 0 {
		t.Fatal("wide-line ECC run produced no flips; the regression is not exercised")
	}
	dataBits := g.LineBytes * 8
	checkBits := 64 // at most 8 protected words' check bytes
	for _, f := range m.Flips() {
		if f.Bit < 0 || f.Bit >= dataBits+checkBits {
			t.Fatalf("flip bit %d outside the protected space [0,%d)", f.Bit, dataBits+checkBits)
		}
	}
}

// TestTRRCureClosesBank is the regression test for the cure-ACT leak:
// a CureWithACT TRR mitigation activates victims at REF time and must
// leave the bank precharged afterwards — it must never adopt a row the
// controller believes is closed (or silently close a row the controller
// believes is open without a PRE in the event stream).
func TestTRRCureClosesBank(t *testing.T) {
	m, err := NewModule(Config{
		Profile: DDR4Old(),
		TRR:     &TRRConfig{TrackerEntries: 4, MitigationsPerREF: 2, RefreshRadius: 1, CureThreshold: 4, CureWithACT: true},
		Seed:    5,
	})
	if err != nil {
		t.Fatal(err)
	}
	cycle := uint64(0)
	for i := 0; i < 16; i++ {
		if _, err := m.Activate(0, 10, cycle, 0); err != nil {
			t.Fatal(err)
		}
		if err := m.Precharge(0, cycle+2); err != nil {
			t.Fatal(err)
		}
		cycle += m.Timing().TRC
	}
	// Leave a row open across the REF so the cure path must PRE it first.
	if _, err := m.Activate(0, 40, cycle, 0); err != nil {
		t.Fatal(err)
	}
	m.Refresh(cycle + m.Timing().TRC)
	if m.TRRStats() == 0 {
		t.Fatal("TRR never cured; the regression is not exercised")
	}
	if got := m.OpenRow(0); got != -1 {
		t.Fatalf("bank 0 open row is %d after a cure-with-ACT REF; cures must leave the bank precharged", got)
	}
}
