package dram

import "fmt"

// Timing holds DDR command timing in memory-controller clock cycles.
// The simulator is not cycle-accurate at the command-bus level; these
// parameters drive an analytic latency model (row hit = TCL, row miss =
// TRP + TRCD + TCL, refresh occupies the rank for TRFC) that captures the
// bank-level-parallelism and row-locality effects the evaluation needs.
type Timing struct {
	// TRCD is the ACT-to-RD/WR delay.
	TRCD uint64
	// TRP is the PRE-to-ACT delay.
	TRP uint64
	// TCL is the RD/WR-to-data delay (CAS latency).
	TCL uint64
	// TRAS is the minimum ACT-to-PRE delay.
	TRAS uint64
	// TRC is the minimum ACT-to-ACT delay for one bank; it bounds the
	// maximum hammer rate an attacker can achieve.
	TRC uint64
	// TRFC is the duration of one REF command, during which the rank is
	// unavailable.
	TRFC uint64
	// TREFI is the interval between REF commands issued by the memory
	// controller.
	TREFI uint64
	// RefreshWindow (tREFW) is the interval within which every row is
	// refreshed once by the REF sweep; the MAC is defined over this window.
	RefreshWindow uint64
}

// DDR4Timing returns DDR4-2400-like timing at a 1.2 GHz controller clock:
// tRCD/tRP/tCL ~13.5 ns, tRC ~45 ns, tREFI 7.8 us, tRFC 350 ns, tREFW 64 ms.
func DDR4Timing() Timing {
	return Timing{
		TRCD:          16,
		TRP:           16,
		TCL:           16,
		TRAS:          39,
		TRC:           55,
		TRFC:          420,
		TREFI:         9360,
		RefreshWindow: 76_800_000,
	}
}

// Validate reports an error describing the first invalid field, if any.
func (t Timing) Validate() error {
	switch {
	case t.TRCD == 0 || t.TRP == 0 || t.TCL == 0:
		return fmt.Errorf("dram: timing has zero TRCD/TRP/TCL (%d/%d/%d)", t.TRCD, t.TRP, t.TCL)
	case t.TRC == 0:
		return fmt.Errorf("dram: timing has zero TRC")
	case t.TREFI == 0 || t.RefreshWindow == 0:
		return fmt.Errorf("dram: timing has zero TREFI/RefreshWindow (%d/%d)", t.TREFI, t.RefreshWindow)
	case t.TREFI >= t.RefreshWindow:
		return fmt.Errorf("dram: TREFI %d must be far smaller than RefreshWindow %d", t.TREFI, t.RefreshWindow)
	}
	return nil
}

// RefreshCommandsPerWindow returns how many REF commands fit in one
// refresh window (nominally 8192 on real DDR4).
func (t Timing) RefreshCommandsPerWindow() int {
	return int(t.RefreshWindow / t.TREFI)
}

// MaxActsPerWindowPerBank returns the maximum number of ACTs a single bank
// can absorb within one refresh window, bounded by TRC. This is the ACT
// budget an attacker divides among its aggressor rows.
func (t Timing) MaxActsPerWindowPerBank() uint64 {
	return t.RefreshWindow / t.TRC
}

// RowMissLatency returns the service latency of a request that must close
// an open row and activate another (PRE + ACT + CAS).
func (t Timing) RowMissLatency() uint64 { return t.TRP + t.TRCD + t.TCL }

// RowEmptyLatency returns the service latency of a request to a bank with
// no open row (ACT + CAS).
func (t Timing) RowEmptyLatency() uint64 { return t.TRCD + t.TCL }

// RowHitLatency returns the service latency of a row-buffer hit (CAS only).
func (t Timing) RowHitLatency() uint64 { return t.TCL }
