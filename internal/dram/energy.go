package dram

// EnergyModel assigns per-command energies so experiments can report an
// energy proxy alongside throughput — mitigation refresh traffic (TRR
// cures, PARA refreshes, targeted refreshes, doubled REF rates) costs
// energy even when it does not cost latency. Values are
// DDR4-datasheet-order-of-magnitude picojoules; the experiments compare
// relative totals, not absolute joules.
type EnergyModel struct {
	// ACTPre is the energy of one activate/precharge pair.
	ACTPre float64
	// ReadWrite is the energy of one column read or write burst.
	ReadWrite float64
	// RefreshPerRow is the energy of recharging one row (sweep REF,
	// targeted refresh, TRR cure, PARA refresh alike).
	RefreshPerRow float64
}

// DDR4Energy returns typical DDR4 per-command energies in picojoules.
func DDR4Energy() EnergyModel {
	return EnergyModel{
		ACTPre:        2000,
		ReadWrite:     1300,
		RefreshPerRow: 500,
	}
}

// Estimate computes the module's cumulative command energy in picojoules
// from its statistics counters.
func (e EnergyModel) Estimate(m *Module) float64 {
	s := m.Stats()
	acts := float64(s.Counter("dram.act"))
	// Sweep REFs recharge RowsPerBank/refDenom rows in every bank; use
	// the exact recharge count: total refreshed rows = refs * rows/denom
	// (fractional accumulation makes this exact over a window).
	refs := float64(s.Counter("dram.ref"))
	rowsPerREF := float64(m.geom.RowsPerBank()) / float64(m.refDenom) * float64(m.geom.Banks)
	targeted := float64(s.Counter("dram.targeted_refresh"))
	// REF_NEIGHBORS recharges up to 2*radius rows; count them via the
	// targeted counter? They are tracked separately:
	refNeigh := float64(s.Counter("dram.ref_neighbors"))

	energy := acts * e.ACTPre
	energy += refs * rowsPerREF * e.RefreshPerRow
	energy += (targeted + refNeigh*2) * e.RefreshPerRow
	return energy
}

// EstimateWithIO adds read/write burst energy from controller-side
// counters (reads+writes), which the module itself does not track.
func (e EnergyModel) EstimateWithIO(m *Module, requests int64) float64 {
	return e.Estimate(m) + float64(requests)*e.ReadWrite
}
