package dram

import "fmt"

// DisturbanceProfile captures how susceptible a DRAM technology generation
// is to Rowhammer. The numbers track the measurements of Kim et al.
// (ISCA'20, [30] in the paper): as density grows across generations, the
// MAC drops by orders of magnitude and the blast radius widens.
type DisturbanceProfile struct {
	// Name identifies the generation (for reports).
	Name string
	// MAC is the maximum activation count a row can withstand within one
	// refresh window before neighbors within the blast radius may flip.
	MAC uint64
	// BlastRadius is the maximum distance (in rows, same subarray) at
	// which an aggressor can disturb a victim.
	BlastRadius int
	// DistanceDecay attenuates disturbance per row of distance: a victim
	// at distance d receives DistanceDecay^(d-1) units per aggressor ACT.
	DistanceDecay float64
	// FlipProb is the probability that one unit of disturbance beyond the
	// MAC flips one bit in the victim row.
	FlipProb float64
}

// Canonical generation profiles. MAC values follow the first-flip hammer
// counts reported by Kim et al. for 2014 DDR3, older DDR4, recent DDR4 and
// LPDDR4 parts; "FutureDense" extrapolates the paper's §3 trend.
func DDR3() DisturbanceProfile {
	return DisturbanceProfile{Name: "DDR3-2014", MAC: 139_000, BlastRadius: 1, DistanceDecay: 0.5, FlipProb: 0.002}
}

// DDR4Old returns the profile of early DDR4 parts.
func DDR4Old() DisturbanceProfile {
	return DisturbanceProfile{Name: "DDR4-old", MAC: 22_400, BlastRadius: 2, DistanceDecay: 0.5, FlipProb: 0.002}
}

// DDR4New returns the profile of recent, denser DDR4 parts.
func DDR4New() DisturbanceProfile {
	return DisturbanceProfile{Name: "DDR4-new", MAC: 9_600, BlastRadius: 2, DistanceDecay: 0.5, FlipProb: 0.002}
}

// LPDDR4 returns the profile of LPDDR4 parts, the most susceptible
// generation measured by Kim et al.
func LPDDR4() DisturbanceProfile {
	return DisturbanceProfile{Name: "LPDDR4", MAC: 4_800, BlastRadius: 4, DistanceDecay: 0.5, FlipProb: 0.002}
}

// FutureDense extrapolates the worsening trend of §3 to a hypothetical
// next-generation node.
func FutureDense() DisturbanceProfile {
	return DisturbanceProfile{Name: "future-dense", MAC: 1_024, BlastRadius: 6, DistanceDecay: 0.6, FlipProb: 0.002}
}

// Generations returns the canonical profiles ordered from least to most
// susceptible, for density-scaling sweeps (experiment E3).
func Generations() []DisturbanceProfile {
	return []DisturbanceProfile{DDR3(), DDR4Old(), DDR4New(), LPDDR4(), FutureDense()}
}

// Validate reports an error describing the first invalid field, if any.
func (p DisturbanceProfile) Validate() error {
	switch {
	case p.MAC == 0:
		return fmt.Errorf("dram: profile %q has zero MAC", p.Name)
	case p.BlastRadius <= 0:
		return fmt.Errorf("dram: profile %q has blast radius %d, need > 0", p.Name, p.BlastRadius)
	case p.DistanceDecay <= 0 || p.DistanceDecay > 1:
		return fmt.Errorf("dram: profile %q has distance decay %g, need (0, 1]", p.Name, p.DistanceDecay)
	case p.FlipProb < 0 || p.FlipProb > 1:
		return fmt.Errorf("dram: profile %q has flip probability %g, need [0, 1]", p.Name, p.FlipProb)
	}
	return nil
}

// DisturbanceAt returns the disturbance contribution of one aggressor ACT
// to a victim at the given row distance, or 0 if outside the blast radius.
func (p DisturbanceProfile) DisturbanceAt(distance int) float64 {
	if distance < 0 {
		distance = -distance
	}
	if distance == 0 || distance > p.BlastRadius {
		return 0
	}
	d := 1.0
	for i := 1; i < distance; i++ {
		d *= p.DistanceDecay
	}
	return d
}

// MinActsToFlip returns roughly how many ACTs of a single adjacent
// aggressor are needed before the first victim bit is expected to flip:
// the MAC plus the expected excess at FlipProb.
func (p DisturbanceProfile) MinActsToFlip() uint64 {
	if p.FlipProb <= 0 {
		return ^uint64(0)
	}
	return p.MAC + uint64(1/p.FlipProb)
}
