// Package ecc implements the SECDED (single-error-correct, double-error-
// detect) Hamming code used by server DRAM: a (72,64) code protecting
// each 64-bit word with 8 check bits.
//
// ECC is part of the Rowhammer threat landscape the paper builds on:
// Cojocar et al. (S&P'19, [12] in the paper) showed that ECC DRAM merely
// raises the bar — single flips per word are corrected, double flips are
// detected (crashing the machine, a DoS), and triple flips can slip
// through or miscorrect into silent corruption. This package provides the
// exact code so the simulator can classify every Rowhammer flip pattern
// into corrected / detected / silently-corrupting, reproducing that
// hierarchy (experiment E9).
package ecc

import "math/bits"

// CheckBits is the number of check bits per 64-bit word (7 Hamming bits
// plus 1 overall parity bit).
const CheckBits = 8

// DataBits is the number of protected data bits per word.
const DataBits = 64

// CodeBits is the total encoded width.
const CodeBits = DataBits + CheckBits

// Word is one ECC-protected 64-bit word: the data bits plus the stored
// check byte (Hamming bits in bits 0..6, overall parity in bit 7).
type Word struct {
	Data  uint64
	Check uint8
}

// Result classifies a decode.
type Result int

const (
	// OK means no error was present.
	OK Result = iota
	// Corrected means a single-bit error was corrected.
	Corrected
	// Detected means an uncorrectable (double-bit) error was detected;
	// on real hardware this raises a machine-check exception.
	Detected
	// Note: >=3-bit errors can alias to OK or Corrected — *silent*
	// corruption or miscorrection. The decoder cannot tell; callers
	// compare against ground truth to count those (see Classify).
)

// String returns the result name.
func (r Result) String() string {
	switch r {
	case OK:
		return "ok"
	case Corrected:
		return "corrected"
	case Detected:
		return "detected"
	default:
		return "unknown"
	}
}

// hammingPosition maps data-bit index (0..63) to its position in the
// classical Hamming layout (1-based positions with powers of two reserved
// for check bits). Positions 1,2,4,8,16,32,64 hold check bits; data fills
// the rest of 1..72.
var dataPos [DataBits]uint8

func init() {
	p := uint8(1)
	for i := 0; i < DataBits; i++ {
		for p&(p-1) == 0 { // skip power-of-two positions (check bits)
			p++
		}
		dataPos[i] = p
		p++
	}
}

// syndromeOf computes the 7-bit Hamming syndrome of the data bits alone.
func syndromeOf(data uint64) uint8 {
	var syn uint8
	for i := 0; i < DataBits; i++ {
		if data&(1<<uint(i)) != 0 {
			syn ^= dataPos[i]
		}
	}
	return syn
}

// Encode protects a 64-bit word.
func Encode(data uint64) Word {
	syn := syndromeOf(data)
	// Overall parity covers data bits and the 7 Hamming bits.
	parity := uint8(bits.OnesCount64(data)+bits.OnesCount8(syn)) & 1
	return Word{Data: data, Check: syn | parity<<7}
}

// Decode checks and (when possible) corrects w, returning the corrected
// data and the classification. Triple-bit (and worse) errors may return
// OK or Corrected with wrong data — exactly like hardware.
func Decode(w Word) (uint64, Result) {
	storedSyn := w.Check & 0x7f
	storedParity := w.Check >> 7
	syn := syndromeOf(w.Data) ^ storedSyn
	parity := uint8(bits.OnesCount64(w.Data)+bits.OnesCount8(storedSyn))&1 ^ storedParity

	if syn == 0 && parity == 0 {
		return w.Data, OK
	}
	if parity == 1 {
		// Single-bit error: either a data bit (syndrome names its
		// position) or a check bit (syndrome zero, or syndrome is a
		// power of two naming the check bit itself).
		if syn == 0 || syn&(syn-1) == 0 {
			// The flipped bit was a check/parity bit; data is intact.
			return w.Data, Corrected
		}
		for i := 0; i < DataBits; i++ {
			if dataPos[i] == syn {
				return w.Data ^ 1<<uint(i), Corrected
			}
		}
		// Syndrome names a position outside the layout: alias of a
		// multi-bit error. Report detected rather than corrupting.
		return w.Data, Detected
	}
	// parity == 0 but syndrome != 0: double-bit error.
	return w.Data, Detected
}

// Classification compares a decode against ground truth, distinguishing
// the silent failure modes a decoder alone cannot see.
type Classification int

const (
	// Clean: no flips were present.
	Clean Classification = iota
	// CorrectedOK: flips present, decode repaired them exactly.
	CorrectedOK
	// DetectedError: decode flagged an uncorrectable error (machine
	// check / DoS on real hardware).
	DetectedError
	// SilentCorruption: decode returned OK or Corrected but the data is
	// wrong — the Cojocar et al. ECC bypass.
	SilentCorruption
)

// String returns the classification name.
func (c Classification) String() string {
	switch c {
	case Clean:
		return "clean"
	case CorrectedOK:
		return "corrected"
	case DetectedError:
		return "detected"
	case SilentCorruption:
		return "silent-corruption"
	default:
		return "unknown"
	}
}

// Classify decodes a possibly-flipped word and compares against the
// original data to classify the outcome.
func Classify(original uint64, stored Word) Classification {
	decoded, res := Decode(stored)
	clean := stored.Data == original && res == OK
	switch {
	case clean:
		return Clean
	case res == Detected:
		return DetectedError
	case decoded == original:
		return CorrectedOK
	default:
		return SilentCorruption
	}
}
