package ecc

import (
	"testing"
	"testing/quick"

	"hammertime/internal/sim"
)

func TestDataPositionsDistinct(t *testing.T) {
	seen := make(map[uint8]bool)
	for i, p := range dataPos {
		if p == 0 || p&(p-1) == 0 {
			t.Fatalf("data bit %d mapped to check position %d", i, p)
		}
		if seen[p] {
			t.Fatalf("position %d used twice", p)
		}
		seen[p] = true
		if p > 72 {
			t.Fatalf("position %d exceeds the (72,64) layout", p)
		}
	}
}

// TestCleanRoundTrip is a property test: encode/decode of any word is the
// identity with result OK.
func TestCleanRoundTrip(t *testing.T) {
	f := func(data uint64) bool {
		got, res := Decode(Encode(data))
		return got == data && res == OK
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// flipBits flips the given encoded-bit indices (0..63 data, 64..71 check).
func flipBits(w Word, idx ...int) Word {
	for _, i := range idx {
		if i < DataBits {
			w.Data ^= 1 << uint(i)
		} else {
			w.Check ^= 1 << uint(i-DataBits)
		}
	}
	return w
}

// TestSingleBitAlwaysCorrected is the SEC property over every single
// position, data and check bits alike.
func TestSingleBitAlwaysCorrected(t *testing.T) {
	f := func(data uint64, posRaw uint8) bool {
		pos := int(posRaw) % CodeBits
		w := flipBits(Encode(data), pos)
		got, res := Decode(w)
		return res == Corrected && got == data
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestDoubleBitAlwaysDetected is the DED property over random pairs.
func TestDoubleBitAlwaysDetected(t *testing.T) {
	f := func(data uint64, aRaw, bRaw uint8) bool {
		a := int(aRaw) % CodeBits
		b := int(bRaw) % CodeBits
		if a == b {
			return true
		}
		_, res := Decode(flipBits(Encode(data), a, b))
		return res == Detected
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestTripleBitCanSlip verifies the Cojocar et al. observation the model
// depends on: some triple-bit patterns decode as OK/Corrected with wrong
// data (silent corruption), rather than always being detected.
func TestTripleBitCanSlip(t *testing.T) {
	rng := sim.NewRNG(7)
	silent := 0
	const trials = 5000
	for i := 0; i < trials; i++ {
		data := rng.Uint64()
		a := rng.Intn(CodeBits)
		b := rng.Intn(CodeBits)
		c := rng.Intn(CodeBits)
		if a == b || b == c || a == c {
			continue
		}
		if Classify(data, flipBits(Encode(data), a, b, c)) == SilentCorruption {
			silent++
		}
	}
	if silent == 0 {
		t.Fatal("no triple-flip pattern ever slipped past SECDED — bypass modeling impossible")
	}
	t.Logf("silent corruption in %d/%d random triple-flip trials", silent, trials)
}

func TestClassify(t *testing.T) {
	w := Encode(0xdeadbeef)
	if got := Classify(0xdeadbeef, w); got != Clean {
		t.Fatalf("clean word classified %v", got)
	}
	if got := Classify(0xdeadbeef, flipBits(w, 5)); got != CorrectedOK {
		t.Fatalf("single flip classified %v", got)
	}
	if got := Classify(0xdeadbeef, flipBits(w, 5, 9)); got != DetectedError {
		t.Fatalf("double flip classified %v", got)
	}
}

func TestResultStrings(t *testing.T) {
	if OK.String() != "ok" || Corrected.String() != "corrected" || Detected.String() != "detected" {
		t.Fatal("result names wrong")
	}
	if SilentCorruption.String() != "silent-corruption" || Clean.String() != "clean" {
		t.Fatal("classification names wrong")
	}
}
