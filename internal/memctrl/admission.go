package memctrl

import "hammertime/internal/dram"

// AdmissionController is the frequency-centric hardware hook: it may delay
// requests that would activate a row, bounding per-row ACT rates.
// BlockHammer (Yağlıkçı et al., HPCA'21) is the canonical implementation.
type AdmissionController interface {
	// Name identifies the policy in reports.
	Name() string
	// Admit returns how many extra cycles the request must wait before
	// service. wouldAct tells the policy whether service will activate
	// (bank, row); requests that hit the open row are typically free.
	Admit(req Request, bank, row int, wouldAct bool, now uint64) uint64
	// ObserveACT informs the policy that (bank, row) was activated at
	// start (after any delay it imposed).
	ObserveACT(bank, row int, start uint64)
	// NextRelease returns the next cycle > now at which the policy's
	// answer to Admit could change without any intervening request — its
	// contribution to the controller's event horizon (NextEvent). It may
	// be early (the scheduler just wakes and finds nothing) but never
	// late, and returns math.MaxUint64 when no spontaneous change is
	// pending. Per-row release times are request-gated (a delayed request
	// is simply delayed), so only autonomous state changes — epoch
	// rotations, window resets — count here.
	NextRelease(now uint64) uint64
}

// RateLimiter is a BlockHammer-style admission controller: it tracks ACTs
// per (bank, row) within the current refresh window and stretches the
// inter-ACT gap of rows that exceed a threshold so no row can surpass
// MaxActsPerWindow before its scheduled refresh.
//
// Real BlockHammer uses paired counting Bloom filters; this model tracks
// exact per-row counts with epoch halving, which reproduces the same
// admission behaviour without the (orthogonal) aliasing noise. The counts
// live in dense per-(bank,row) arrays sized from the module geometry, so
// the per-ACT path (Admit + ObserveACT) is pure indexing with zero
// allocations.
type RateLimiter struct {
	// MaxActsPerWindow is the per-row ACT budget per refresh window
	// (set below the module's MAC with safety margin).
	MaxActsPerWindow uint64
	// Window is the refresh window in cycles.
	Window uint64
	// WatchThreshold is the in-window ACT count after which a row is
	// considered a suspect and rate-limiting kicks in (BlockHammer's
	// blacklisting threshold, typically a fraction of the budget).
	WatchThreshold uint64

	rowsPerBank int
	counts      []uint64 // dense, indexed bank*rowsPerBank+row
	nextAllow   []uint64
	active      int // rows with a nonzero count (skip the rotate scan when 0)
	epochEnd    uint64
	delayed     uint64
	totalWait   uint64
}

// NewRateLimiter returns a limiter for a module of the given geometry
// enforcing maxActs per window cycles, beginning to throttle once a row
// passes watch (0 means maxActs/2).
func NewRateLimiter(geom dram.Geometry, maxActs, window, watch uint64) *RateLimiter {
	if maxActs == 0 {
		// A zero budget would divide by zero in ObserveACT's gap
		// computation; one ACT per window is the strictest meaningful
		// setting.
		maxActs = 1
	}
	if watch == 0 {
		watch = maxActs / 2
	}
	slots := geom.Banks * geom.RowsPerBank()
	return &RateLimiter{
		MaxActsPerWindow: maxActs,
		Window:           window,
		WatchThreshold:   watch,
		rowsPerBank:      geom.RowsPerBank(),
		counts:           make([]uint64, slots),
		nextAllow:        make([]uint64, slots),
	}
}

// Name implements AdmissionController.
func (l *RateLimiter) Name() string { return "blockhammer-ratelimit" }

// Admit implements AdmissionController.
func (l *RateLimiter) Admit(req Request, bank, row int, wouldAct bool, now uint64) uint64 {
	if !wouldAct {
		return 0
	}
	l.rotate(now)
	key := bank*l.rowsPerBank + row
	if l.counts[key] < l.WatchThreshold {
		return 0
	}
	// Suspect row: space remaining ACTs so the budget lasts the window.
	allowed := l.nextAllow[key]
	if allowed <= now {
		return 0
	}
	delay := allowed - now
	l.delayed++
	l.totalWait += delay
	return delay
}

// ObserveACT implements AdmissionController.
func (l *RateLimiter) ObserveACT(bank, row int, start uint64) {
	l.rotate(start)
	key := bank*l.rowsPerBank + row
	if l.counts[key] == 0 {
		l.active++
	}
	l.counts[key]++
	if l.counts[key] >= l.WatchThreshold {
		minGap := l.Window / l.MaxActsPerWindow
		l.nextAllow[key] = start + minGap
	}
}

// rotate ages counters at window boundaries: counts halve (epoch overlap,
// mirroring BlockHammer's dual-filter scheme) rather than reset, so an
// attacker cannot ride window edges.
func (l *RateLimiter) rotate(now uint64) {
	// A sub-cycle half-window (Window < 2) must still advance the epoch,
	// or the loop below never terminates.
	half := l.Window / 2
	if half == 0 {
		half = 1
	}
	if l.epochEnd == 0 {
		l.epochEnd = half
	}
	for now >= l.epochEnd {
		if l.active == 0 {
			// Nothing to halve: every remaining epoch boundary up to now
			// is an identity, so skip them all at once instead of
			// iterating O(idle-gap / half-window) times.
			l.epochEnd += ((now-l.epochEnd)/half + 1) * half
			return
		}
		for k, c := range l.counts {
			switch {
			case c == 0:
			case c <= 1:
				l.counts[k] = 0
				l.nextAllow[k] = 0
				l.active--
			default:
				l.counts[k] = c / 2
			}
		}
		l.epochEnd += half
	}
}

// NextRelease implements AdmissionController: the limiter's only
// autonomous transition is the epoch halving in rotate, so the next
// release is the next epoch boundary after now. O(1).
func (l *RateLimiter) NextRelease(now uint64) uint64 {
	half := l.Window / 2
	if half == 0 {
		half = 1
	}
	end := l.epochEnd
	if end == 0 {
		end = half
	}
	for end <= now {
		next := end + ((now-end)/half+1)*half
		if next <= end { // saturate on overflow
			return ^uint64(0)
		}
		end = next
	}
	return end
}

// Delayed returns how many requests were delayed and the total delay.
func (l *RateLimiter) Delayed() (count, totalCycles uint64) { return l.delayed, l.totalWait }
