package memctrl

import "hammertime/internal/obs"

// ACTEvent is delivered to the registered interrupt handler when the
// controller's ACT counter overflows its threshold.
//
// In legacy mode (what today's Intel uncore PMUs provide, §4.2) the event
// carries no address: HasAddr is false and system software cannot tell
// which row is being hammered. In precise mode — the paper's proposed
// primitive — the event reports the physical line address of the most
// recent read/write that triggered an activation, plus its decoded bank
// and row.
type ACTEvent struct {
	// Cycle is when the overflow occurred.
	Cycle uint64
	// HasAddr is true in precise mode.
	HasAddr bool
	// Line is the physical line address of the ACT-triggering access
	// (valid only when HasAddr).
	Line uint64
	// Bank and Row are the decoded DDR coordinates (valid only when
	// HasAddr).
	Bank int
	Row  int
	// Domain is the trust domain of the triggering access (valid only
	// when HasAddr; the MC knows it from the request's ASID tag).
	Domain int
	// Source is the agent whose access triggered the ACT. Unlike CPU
	// performance counters, the memory controller sees DMA traffic too.
	Source Source
}

// ACTHandler consumes ACT-counter overflow interrupts. It runs
// synchronously inside request service, like a (fast) interrupt handler;
// it may issue refresh instructions and reconfigure the counter, and must
// return the value to load into the counter next (the host OS resets it
// "to an arbitrary value", optionally randomized, §4.2).
type ACTHandler func(ev ACTEvent) (resetTo uint64)

// actCounter implements the per-channel activation counter with
// host-configurable overflow interrupts.
type actCounter struct {
	enabled   bool
	precise   bool
	threshold uint64
	count     uint64
	handler   ACTHandler
	// inHandler suppresses nested overflow delivery while the handler
	// itself causes activations (its ACTs still count).
	inHandler bool
	overflows uint64
}

// onACT records one activation and fires the handler on overflow. The
// recorder observes each delivered interrupt exactly as the handler sees
// it (legacy-mode deliveries carry no address).
func (c *actCounter) onACT(ev ACTEvent, rec *obs.Recorder) {
	if !c.enabled {
		return
	}
	c.count++
	if c.count < c.threshold || c.inHandler {
		return
	}
	// The hardware counter overflows whether or not software registered a
	// handler: count it and reset, so ACTOverflows and stats snapshots
	// reflect every overflow and count cannot grow without bound.
	c.overflows++
	if !c.precise {
		ev = ACTEvent{Cycle: ev.Cycle, Source: ev.Source}
	}
	if rec.Wants(obs.KindACTInterrupt) {
		out := obs.Event{Kind: obs.KindACTInterrupt, Cycle: ev.Cycle, Bank: -1, Row: -1, Domain: -1}
		if ev.HasAddr {
			out.Bank, out.Row, out.Domain, out.Line = ev.Bank, ev.Row, ev.Domain, ev.Line
		}
		rec.Emit(out)
	}
	if c.handler == nil {
		c.count = 0
		return
	}
	c.inHandler = true
	c.count = c.handler(ev)
	c.inHandler = false
}
