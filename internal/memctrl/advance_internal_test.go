package memctrl

import (
	"context"
	"math"
	"testing"
	"time"

	"hammertime/internal/addr"
	"hammertime/internal/dram"
	"hammertime/internal/sim"
)

func newTestController(t *testing.T, cfg Config) *Controller {
	t.Helper()
	if cfg.DRAM == nil {
		mod, err := dram.NewModule(dram.Config{})
		if err != nil {
			t.Fatal(err)
		}
		cfg.DRAM = mod
	}
	if cfg.Mapper == nil {
		cfg.Mapper = addr.NewLineInterleave(cfg.DRAM.Geometry())
	}
	c, err := NewController(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestAdvanceToNearMaxUint64 pins the overflow behavior of the refresh
// schedule at the end of representable time: advancing to cycles near
// math.MaxUint64 must terminate (the naive nextRef += TREFI wraps to a
// small value and re-arms an already-passed deadline forever), latch the
// saturation flag, and leave repeated advances idempotent.
func TestAdvanceToNearMaxUint64(t *testing.T) {
	for _, burst := range []bool{true, false} {
		name := "burst"
		if !burst {
			name = "per-ref"
		}
		t.Run(name, func(t *testing.T) {
			c := newTestController(t, Config{})
			c.SetRefreshBurst(burst)
			if !burst {
				// The per-REF path cannot walk ~2e15 epochs in test time;
				// park the schedule near the edge first (white box).
				c.nextRef = math.MaxUint64 - 3*c.timing.TREFI
			}
			c.AdvanceTo(math.MaxUint64)
			if !c.refSaturated {
				t.Fatalf("refresh schedule not saturated after advancing to MaxUint64 (nextRef=%d)", c.nextRef)
			}
			refs := c.stats.Counter("mc.ref")
			if refs == 0 {
				t.Fatal("no refreshes issued")
			}
			// Saturated schedule: further advances are terminating no-ops.
			c.AdvanceTo(math.MaxUint64)
			if got := c.stats.Counter("mc.ref"); got != refs {
				t.Fatalf("saturated advance issued %d more refreshes", got-refs)
			}
			if c.Now() != math.MaxUint64 {
				t.Fatalf("Now() = %d, want MaxUint64", c.Now())
			}
		})
	}
}

// TestAdvanceToChunkClampNearMax pins the chunked (gated) advance's limit
// clamp: with the next refresh deadline near MaxUint64 the per-chunk
// limit computation overflows and must clamp to the target cycle rather
// than wrap to a small value.
func TestAdvanceToChunkClampNearMax(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	c := newTestController(t, Config{})
	c.SetCanceler(sim.NewCanceler(ctx, 1))
	c.SetRefreshBurst(false)
	c.nextRef = math.MaxUint64 - 2*c.timing.TREFI
	c.AdvanceTo(math.MaxUint64)
	if !c.refSaturated {
		t.Fatalf("refresh schedule not saturated (nextRef=%d)", c.nextRef)
	}
	if got := c.stats.Counter("mc.ref"); got != 3 {
		t.Fatalf("issued %d refreshes, want 3", got)
	}
}

// TestCatchUpRefreshTREFIZero guards the degenerate TREFI == 0 timing
// (rejected by Timing.Validate, but reachable through direct struct use)
// against an infinite catch-up loop: the deadline cannot advance, so the
// schedule must saturate after at most one REF.
func TestCatchUpRefreshTREFIZero(t *testing.T) {
	c := newTestController(t, Config{})
	c.timing.TREFI = 0
	c.nextRef = 100
	done := make(chan struct{})
	go func() {
		defer close(done)
		c.catchUpRefresh(1_000_000)
	}()
	select {
	case <-done:
	case <-testDeadline(t):
		t.Fatal("catchUpRefresh with TREFI==0 did not terminate")
	}
	if !c.refSaturated {
		t.Fatal("TREFI==0 schedule did not saturate")
	}
	if got := c.stats.Counter("mc.ref"); got != 1 {
		t.Fatalf("issued %d refreshes, want 1", got)
	}
}

// TestRefreshWindowZeroSaturates is the same guard for the window reset
// schedule (nextWindow += 0 never advances).
func TestRefreshWindowZeroSaturates(t *testing.T) {
	c := newTestController(t, Config{})
	c.timing.RefreshWindow = 0
	c.nextWindow = 100
	done := make(chan struct{})
	go func() {
		defer close(done)
		c.catchUpRefresh(c.timing.TREFI * 4)
	}()
	select {
	case <-done:
	case <-testDeadline(t):
		t.Fatal("catchUpRefresh with RefreshWindow==0 did not terminate")
	}
	if !c.winSaturated {
		t.Fatal("RefreshWindow==0 schedule did not saturate")
	}
}

// TestNextEventSources checks each contributor to the controller's event
// horizon: the refresh deadline, pending bank/bus-ready transitions, and
// the admission policy's next autonomous release.
func TestNextEventSources(t *testing.T) {
	c := newTestController(t, Config{})
	if got, want := c.NextEvent(), c.timing.TREFI; got != want {
		t.Fatalf("fresh controller NextEvent = %d, want first refresh %d", got, want)
	}

	// A served request leaves bank/bus busy horizons in the near future.
	res, err := c.ServeRequest(Request{Line: 0, Domain: 0}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.NextEvent(); got > c.timing.TREFI {
		t.Fatalf("NextEvent = %d after request, want <= next refresh %d", got, c.timing.TREFI)
	}
	_ = res

	// With an admission policy attached, its epoch boundary joins the min.
	geom := c.dram.Geometry()
	rl := NewRateLimiter(geom, 64, c.timing.RefreshWindow, 0)
	c2 := newTestController(t, Config{Admission: rl})
	half := c2.timing.RefreshWindow / 2
	if got := c2.NextEvent(); got != min64(c2.timing.TREFI, half) {
		t.Fatalf("NextEvent = %d, want min(TREFI=%d, half-window=%d)", got, c2.timing.TREFI, half)
	}

	// Saturated schedules drop out of the horizon.
	c3 := newTestController(t, Config{})
	c3.refSaturated = true
	if got := c3.NextEvent(); got != math.MaxUint64 {
		t.Fatalf("saturated idle controller NextEvent = %d, want MaxUint64", got)
	}
}

// TestRateLimiterNextRelease pins the O(1) epoch-boundary computation
// against rotate's actual boundaries.
func TestRateLimiterNextRelease(t *testing.T) {
	geom := dram.DefaultGeometry()
	l := NewRateLimiter(geom, 64, 1000, 0)
	if got := l.NextRelease(0); got != 500 {
		t.Fatalf("NextRelease(0) = %d, want 500", got)
	}
	if got := l.NextRelease(499); got != 500 {
		t.Fatalf("NextRelease(499) = %d, want 500", got)
	}
	if got := l.NextRelease(500); got != 1000 {
		t.Fatalf("NextRelease(500) = %d, want 1000", got)
	}
	l.ObserveACT(0, 0, 1700) // rotate advances epochEnd past 1700
	if got := l.NextRelease(1700); got != 2000 {
		t.Fatalf("NextRelease(1700) = %d, want 2000", got)
	}
	if got := l.NextRelease(math.MaxUint64 - 1); got != math.MaxUint64 {
		t.Fatalf("NextRelease near MaxUint64 = %d, want saturation", got)
	}
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

// testDeadline returns a channel that fires well before the test binary's
// own timeout, so a hung loop fails with a message instead of a panic.
func testDeadline(t *testing.T) <-chan time.Time {
	t.Helper()
	return time.After(10 * time.Second)
}
