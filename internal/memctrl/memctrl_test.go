package memctrl

import (
	"errors"
	"testing"

	"hammertime/internal/addr"
	"hammertime/internal/dram"
)

// testProfile keeps MAC tiny so controller-level mitigation tests can
// trigger disturbance quickly.
func testProfile() dram.DisturbanceProfile {
	return dram.DisturbanceProfile{Name: "t", MAC: 200, BlastRadius: 2, DistanceDecay: 0.5, FlipProb: 1}
}

func build(t *testing.T, mutate func(*Config)) (*Controller, *dram.Module) {
	t.Helper()
	mod, err := dram.NewModule(dram.Config{Profile: testProfile(), Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Mapper:   addr.NewLineInterleave(mod.Geometry()),
		DRAM:     mod,
		OpenPage: true,
		Seed:     3,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	c, err := NewController(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c, mod
}

func TestConfigValidation(t *testing.T) {
	if _, err := NewController(Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
	mod, err := dram.NewModule(dram.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewController(Config{DRAM: mod}); err == nil {
		t.Fatal("missing mapper accepted")
	}
	if _, err := NewController(Config{
		Mapper:   addr.NewLineInterleave(mod.Geometry()),
		DRAM:     mod,
		PARAProb: 1.5,
	}); err == nil {
		t.Fatal("PARA probability > 1 accepted")
	}
}

func TestRowHitMissLatencies(t *testing.T) {
	c, mod := build(t, nil)
	tm := mod.Timing()
	g := mod.Geometry()
	stripe := uint64(g.Banks * g.ColumnsPerRow)

	// Cold access to a precharged bank: ACT + CAS.
	r1, err := c.ServeRequest(Request{Line: 0}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := r1.Completion - r1.Start; got != tm.RowEmptyLatency()+4 {
		t.Fatalf("cold latency = %d, want %d", got, tm.RowEmptyLatency()+4)
	}
	if r1.RowHit || !r1.Activated {
		t.Fatalf("cold access: %+v", r1)
	}

	// Same row, different column: row-buffer hit.
	r2, err := c.ServeRequest(Request{Line: 0 + uint64(g.Banks)}, r1.Completion)
	if err != nil {
		t.Fatal(err)
	}
	if !r2.RowHit || r2.Activated {
		t.Fatalf("expected row hit: %+v", r2)
	}

	// Different row, same bank: conflict (PRE+ACT+CAS) plus tRC spacing.
	r3, err := c.ServeRequest(Request{Line: stripe}, r2.Completion)
	if err != nil {
		t.Fatal(err)
	}
	if r3.RowHit || !r3.Activated {
		t.Fatalf("expected conflict: %+v", r3)
	}
	if c.Stats().Counter("mc.row_conflicts") != 1 {
		t.Fatalf("conflict not counted:\n%s", c.Stats().String())
	}
}

func TestClosedPagePolicyAlwaysActivates(t *testing.T) {
	c, _ := build(t, func(cfg *Config) { cfg.OpenPage = false })
	r1, err := c.ServeRequest(Request{Line: 0}, 0)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := c.ServeRequest(Request{Line: 0}, r1.Completion)
	if err != nil {
		t.Fatal(err)
	}
	if r2.RowHit {
		t.Fatal("closed-page policy produced a row hit")
	}
}

func TestTRCEnforcedBetweenActivations(t *testing.T) {
	c, mod := build(t, nil)
	g := mod.Geometry()
	stripe := uint64(g.Banks * g.ColumnsPerRow)
	r1, err := c.ServeRequest(Request{Line: 0}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Immediate conflict ACT on the same bank must wait out tRC.
	r2, err := c.ServeRequest(Request{Line: stripe}, r1.Completion)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Start < r1.Start+mod.Timing().TRC {
		t.Fatalf("second ACT at %d, violates tRC after ACT at %d", r2.Start, r1.Start)
	}
}

func TestRefreshScheduleIssued(t *testing.T) {
	c, mod := build(t, nil)
	horizon := mod.Timing().TREFI * 100
	c.AdvanceTo(horizon)
	if got := mod.Stats().Counter("dram.ref"); got != 100 {
		t.Fatalf("REFs issued = %d, want 100", got)
	}
}

func TestActCounterPreciseReportsAddress(t *testing.T) {
	c, mod := build(t, nil)
	g := mod.Geometry()
	stripe := uint64(g.Banks * g.ColumnsPerRow)
	var events []ACTEvent
	err := c.EnableACTCounter(true, 3, func(ev ACTEvent) uint64 {
		events = append(events, ev)
		return 0
	})
	if err != nil {
		t.Fatal(err)
	}
	// Alternate two rows of the same bank: every access activates.
	now := uint64(0)
	for i := 0; i < 8; i++ {
		line := uint64(i%2) * stripe
		res, err := c.ServeRequest(Request{Line: line, Domain: 9}, now)
		if err != nil {
			t.Fatal(err)
		}
		now = res.Completion
	}
	if len(events) != 2 {
		t.Fatalf("overflows = %d, want 2 (8 ACTs / threshold 3, reset 0)", len(events))
	}
	for _, ev := range events {
		if !ev.HasAddr {
			t.Fatal("precise event missing address")
		}
		if ev.Line != 0 && ev.Line != stripe {
			t.Fatalf("event line %d is not an aggressor", ev.Line)
		}
		if ev.Domain != 9 {
			t.Fatalf("event domain = %d, want 9", ev.Domain)
		}
	}
}

func TestActCounterLegacyHidesAddress(t *testing.T) {
	c, mod := build(t, nil)
	g := mod.Geometry()
	stripe := uint64(g.Banks * g.ColumnsPerRow)
	var events []ACTEvent
	if err := c.EnableACTCounter(false, 2, func(ev ACTEvent) uint64 {
		events = append(events, ev)
		return 0
	}); err != nil {
		t.Fatal(err)
	}
	now := uint64(0)
	for i := 0; i < 6; i++ {
		res, err := c.ServeRequest(Request{Line: uint64(i%2) * stripe}, now)
		if err != nil {
			t.Fatal(err)
		}
		now = res.Completion
	}
	if len(events) == 0 {
		t.Fatal("no overflow events")
	}
	for _, ev := range events {
		if ev.HasAddr || ev.Line != 0 && ev.Bank != 0 {
			t.Fatalf("legacy event leaked address info: %+v", ev)
		}
	}
}

func TestActCounterResetValueControlsNextOverflow(t *testing.T) {
	c, mod := build(t, nil)
	g := mod.Geometry()
	stripe := uint64(g.Banks * g.ColumnsPerRow)
	count := 0
	if err := c.EnableACTCounter(true, 4, func(ACTEvent) uint64 {
		count++
		return 3 // next overflow after only 1 more ACT
	}); err != nil {
		t.Fatal(err)
	}
	now := uint64(0)
	for i := 0; i < 8; i++ {
		res, err := c.ServeRequest(Request{Line: uint64(i%2) * stripe}, now)
		if err != nil {
			t.Fatal(err)
		}
		now = res.Completion
	}
	// 8 ACTs: first overflow at 4, then one per ACT => 5 total.
	if count != 5 {
		t.Fatalf("overflows = %d, want 5", count)
	}
}

func TestActCounterZeroThresholdRejected(t *testing.T) {
	c, _ := build(t, nil)
	if err := c.EnableACTCounter(true, 0, nil); err == nil {
		t.Fatal("zero threshold accepted")
	}
}

func TestRefreshInstructionPrivileged(t *testing.T) {
	c, _ := build(t, nil)
	if _, err := c.RefreshInstruction(0, true, 5, 0); !errors.Is(err, ErrPrivileged) {
		t.Fatalf("unprivileged refresh: %v, want ErrPrivileged", err)
	}
	if _, err := c.RefreshInstruction(0, true, 0, 0); err != nil {
		t.Fatalf("host refresh failed: %v", err)
	}
}

func TestRefreshInstructionPermissionHook(t *testing.T) {
	c, _ := build(t, nil)
	// §4.4: an enclave may refresh addresses in its own space.
	c.SetRefreshPermission(func(domain int, line uint64) bool {
		return domain == 0 || (domain == 7 && line < 100)
	})
	if _, err := c.RefreshInstruction(50, true, 7, 0); err != nil {
		t.Fatalf("permitted enclave refresh failed: %v", err)
	}
	if _, err := c.RefreshInstruction(500, true, 7, 0); !errors.Is(err, ErrPrivileged) {
		t.Fatal("out-of-space enclave refresh allowed")
	}
}

func TestRefreshInstructionClearsVictim(t *testing.T) {
	c, mod := build(t, nil)
	g := mod.Geometry()
	stripe := uint64(g.Banks * g.ColumnsPerRow)
	// Hammer rows 0 and 2 of bank 0 (lines 0 and 2*stripe) to charge row 1.
	now := uint64(0)
	for i := 0; i < 150; i++ {
		res, err := c.ServeRequest(Request{Line: uint64(i%2) * 2 * stripe}, now)
		if err != nil {
			t.Fatal(err)
		}
		now = res.Completion
	}
	if mod.Disturbance(0, 1) == 0 {
		t.Fatal("setup failed: victim not disturbed")
	}
	// The victim row 1 backs line stripe.
	res, err := c.RefreshInstruction(stripe, true, 0, now)
	if err != nil {
		t.Fatal(err)
	}
	if mod.Disturbance(0, 1) != 0 {
		t.Fatal("refresh instruction did not recharge the victim row")
	}
	if !res.Activated {
		t.Fatal("refresh instruction did not activate")
	}
	if mod.OpenRow(0) != -1 {
		t.Fatal("auto-precharge did not close the row")
	}
}

func TestRefreshInstructionActDisturbsNeighbors(t *testing.T) {
	// The ACT side effect is real — which is why the instruction is
	// privileged (§4.3).
	c, mod := build(t, nil)
	for i := 0; i < 50; i++ {
		if _, err := c.RefreshInstruction(0, true, 0, uint64(i*100)); err != nil {
			t.Fatal(err)
		}
	}
	if mod.Disturbance(0, 1) == 0 {
		t.Fatal("refresh-instruction ACTs did not disturb neighbors")
	}
}

func TestRefNeighborsCommand(t *testing.T) {
	c, mod := build(t, nil)
	g := mod.Geometry()
	stripe := uint64(g.Banks * g.ColumnsPerRow)
	now := uint64(0)
	for i := 0; i < 150; i++ {
		res, err := c.ServeRequest(Request{Line: uint64(i%2) * 2 * stripe}, now)
		if err != nil {
			t.Fatal(err)
		}
		now = res.Completion
	}
	// REF_NEIGHBORS around aggressor row 0 with radius 2 clears rows 1-2.
	if _, err := c.RefreshNeighborsCmd(0, 2, 0, now); err != nil {
		t.Fatal(err)
	}
	if mod.Disturbance(0, 1) != 0 || mod.Disturbance(0, 2) != 0 {
		t.Fatal("REF_NEIGHBORS left victims disturbed")
	}
	if _, err := c.RefreshNeighborsCmd(0, 2, 5, now); !errors.Is(err, ErrPrivileged) {
		t.Fatal("unprivileged REF_NEIGHBORS allowed")
	}
}

func TestPARARefreshesNeighbors(t *testing.T) {
	c, mod := build(t, func(cfg *Config) {
		cfg.PARAProb = 1 // always refresh a neighbor
		cfg.PARARadius = 1
	})
	g := mod.Geometry()
	stripe := uint64(g.Banks * g.ColumnsPerRow)
	now := uint64(0)
	for i := 0; i < 400; i++ {
		res, err := c.ServeRequest(Request{Line: uint64(i%2) * 2 * stripe}, now)
		if err != nil {
			t.Fatal(err)
		}
		now = res.Completion
	}
	// With p=1 every ACT of rows 0/2 refreshes one of their neighbors;
	// victim row 1 is hit half the time from each side, so it can never
	// accumulate anywhere near MAC=200.
	if mod.FlipCount() != 0 {
		t.Fatalf("PARA(p=1) failed: %d flips", mod.FlipCount())
	}
	if c.Stats().Counter("mc.para_refreshes") == 0 {
		t.Fatal("PARA issued no refreshes")
	}
}

func TestGrapheneTriggersNeighborRefresh(t *testing.T) {
	c, mod := build(t, func(cfg *Config) {
		cfg.Graphene = NewGraphene(cfg.DRAM.Geometry().Banks, 8, 50, 2)
	})
	g := mod.Geometry()
	stripe := uint64(g.Banks * g.ColumnsPerRow)
	now := uint64(0)
	for i := 0; i < 600; i++ {
		res, err := c.ServeRequest(Request{Line: uint64(i%2) * 2 * stripe}, now)
		if err != nil {
			t.Fatal(err)
		}
		now = res.Completion
	}
	if mod.FlipCount() != 0 {
		t.Fatalf("graphene failed: %d flips", mod.FlipCount())
	}
	if c.Stats().Counter("mc.graphene_refreshes") == 0 {
		t.Fatal("graphene never triggered")
	}
}

func TestGrapheneUnderProvisionedMisses(t *testing.T) {
	// With more hot rows than entries and a spill-based summary, an
	// under-provisioned table churns and never cures — the E3 cost story.
	gr := NewGraphene(1, 2, 50, 1)
	fired := 0
	for i := 0; i < 5000; i++ {
		if gr.onACT(0, i%8) >= 0 {
			fired++
		}
	}
	if fired != 0 {
		t.Fatalf("under-provisioned graphene fired %d times", fired)
	}
	if got := RequiredEntries(1<<20, 1<<10); got != 1<<10 {
		t.Fatalf("RequiredEntries = %d", got)
	}
}

func TestRateLimiterDelaysHotRow(t *testing.T) {
	rl := NewRateLimiter(dram.DefaultGeometry(), 100, 1_000_000, 10)
	req := Request{}
	now := uint64(0)
	var totalDelay uint64
	for i := 0; i < 200; i++ {
		d := rl.Admit(req, 0, 5, true, now)
		totalDelay += d
		rl.ObserveACT(0, 5, now+d)
		now += d + 55
	}
	if totalDelay == 0 {
		t.Fatal("rate limiter never delayed a hot row")
	}
	count, wait := rl.Delayed()
	if count == 0 || wait != totalDelay {
		t.Fatalf("delayed=%d wait=%d total=%d", count, wait, totalDelay)
	}
	// The imposed gap must keep the row under budget: 100 ACTs per 1M
	// cycles means ≥ 10k cycles between ACTs once throttled.
	if d := rl.Admit(req, 0, 5, true, now); d < 5000 {
		t.Fatalf("throttle gap too small: %d", d)
	}
}

func TestRateLimiterIgnoresRowHitsAndColdRows(t *testing.T) {
	rl := NewRateLimiter(dram.DefaultGeometry(), 100, 1_000_000, 10)
	if d := rl.Admit(Request{}, 0, 5, false, 0); d != 0 {
		t.Fatalf("row hit delayed by %d", d)
	}
	if d := rl.Admit(Request{}, 0, 6, true, 0); d != 0 {
		t.Fatalf("cold row delayed by %d", d)
	}
}

func TestDomainEnforcer(t *testing.T) {
	g := dram.DefaultGeometry()
	part, err := addr.NewPartition(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	e := NewDomainEnforcer(part)
	if err := e.AssignDomain(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := e.AssignDomain(1, 99); err == nil {
		t.Fatal("bad group accepted")
	}
	// Rows in subarray 2 belong to group 2 (64 rows per subarray).
	okRow := 2 * g.RowsPerSubarray
	badRow := 3 * g.RowsPerSubarray
	if !e.Check(1, okRow) {
		t.Fatal("in-group access rejected")
	}
	if e.Check(1, badRow) {
		t.Fatal("out-of-group access allowed")
	}
	if !e.Check(42, badRow) {
		t.Fatal("unregistered domain constrained")
	}
	if e.Violations() != 1 {
		t.Fatalf("violations = %d", e.Violations())
	}
}

func TestEnforcerWiredIntoController(t *testing.T) {
	g := dram.DefaultGeometry()
	part, err := addr.NewPartition(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	enf := NewDomainEnforcer(part)
	if err := enf.AssignDomain(1, 0); err != nil {
		t.Fatal(err)
	}
	c, _ := build(t, func(cfg *Config) { cfg.Enforcer = enf })
	// Line mapping to subarray 1 (row 64): line = row * banks * cols.
	badLine := uint64(64 * g.Banks * g.ColumnsPerRow)
	res, err := c.ServeRequest(Request{Line: badLine, Domain: 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Violation {
		t.Fatal("controller did not flag the violation")
	}
	if c.Stats().Counter("mc.domain_violations") != 1 {
		t.Fatal("violation not counted")
	}
}

func TestSourceKindString(t *testing.T) {
	if SourceCPU.String() != "cpu" || SourceDMA.String() != "dma" || SourceKernel.String() != "kernel" {
		t.Fatal("source kind names wrong")
	}
	if SourceKind(9).String() == "" {
		t.Fatal("unknown kind empty")
	}
}

func TestUncoreMovePrivilegedAndOverlapping(t *testing.T) {
	c, mod := build(t, nil)
	g := mod.Geometry()
	// src in bank 0, dst in bank 1: the move can overlap bank work.
	src, dst := uint64(0), uint64(1)
	if _, err := c.UncoreMove(src, dst, 5, 0); !errors.Is(err, ErrPrivileged) {
		t.Fatalf("unprivileged move: %v", err)
	}
	res, err := c.UncoreMove(src, dst, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if c.Stats().Counter("mc.uncore_moves") != 1 {
		t.Fatal("move not counted")
	}
	// Overlapped read+write across banks must beat the strictly serial
	// path (read completes, then write starts).
	serialC, serialMod := build(t, nil)
	_ = serialMod
	r1, err := serialC.ServeRequest(Request{Line: src}, 0)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := serialC.ServeRequest(Request{Line: dst, Write: true}, r1.Completion)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completion >= r2.Completion {
		t.Fatalf("uncore move (%d) not faster than serial copy (%d)", res.Completion, r2.Completion)
	}
	_ = g
}

func TestUncoreMovePermissionHook(t *testing.T) {
	c, _ := build(t, nil)
	c.SetRefreshPermission(func(domain int, line uint64) bool {
		return domain == 3 && line < 10
	})
	if _, err := c.UncoreMove(1, 2, 3, 0); err != nil {
		t.Fatalf("permitted move failed: %v", err)
	}
	if _, err := c.UncoreMove(1, 100, 3, 0); !errors.Is(err, ErrPrivileged) {
		t.Fatal("out-of-scope destination allowed")
	}
}

func TestActCounterNilHandlerStillCountsOverflows(t *testing.T) {
	c, mod := build(t, nil)
	g := mod.Geometry()
	stripe := uint64(g.Banks * g.ColumnsPerRow)
	// No handler registered: the hardware counter still overflows, is
	// still counted, and still resets (a handler-less counter must not
	// saturate and go silent).
	if err := c.EnableACTCounter(true, 3, nil); err != nil {
		t.Fatal(err)
	}
	now := uint64(0)
	for i := 0; i < 12; i++ {
		res, err := c.ServeRequest(Request{Line: uint64(i%2) * stripe}, now)
		if err != nil {
			t.Fatal(err)
		}
		now = res.Completion
	}
	// 12 ACTs at threshold 3, reset to 0 on each overflow => 4 overflows.
	if got := c.ACTOverflows(); got != 4 {
		t.Fatalf("ACTOverflows = %d, want 4", got)
	}
}
