// Controller regression tests that need the invariant auditor, so they
// live in the external test package (check imports memctrl).
package memctrl_test

import (
	"testing"

	"hammertime/internal/addr"
	"hammertime/internal/check"
	"hammertime/internal/dram"
	"hammertime/internal/memctrl"
	"hammertime/internal/obs"
)

// rig is a module + controller + auditor + event ring wired together.
type rig struct {
	mod    *dram.Module
	mc     *memctrl.Controller
	aud    *check.Auditor
	ring   *obs.Ring
	mapper addr.Mapper
}

func newRig(t *testing.T, mutate func(*memctrl.Config)) *rig {
	t.Helper()
	geom := dram.DefaultGeometry()
	mod, err := dram.NewModule(dram.Config{Geometry: geom, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	mapper := addr.NewLineInterleave(geom)
	cfg := memctrl.Config{Mapper: mapper, DRAM: mod, OpenPage: true, Seed: 12}
	if mutate != nil {
		mutate(&cfg)
	}
	mc, err := memctrl.NewController(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := &rig{
		mod:    mod,
		mc:     mc,
		aud:    check.New(check.Config{Geometry: geom, Timing: mod.Timing(), Profile: mod.Profile()}),
		ring:   obs.NewRing(4096),
		mapper: mapper,
	}
	rec := r.aud.Chain(obs.NewRecorder(r.ring))
	mod.SetRecorder(rec)
	mc.SetRecorder(rec)
	return r
}

// line returns the physical line of (bank, row, col 0).
func (r *rig) line(bank, row int) uint64 {
	return r.mapper.Unmap(addr.DDR{Bank: bank, Row: row})
}

func (r *rig) verify(t *testing.T) {
	t.Helper()
	if err := r.aud.Verify(r.mod, r.mc); err != nil {
		t.Fatal(err)
	}
}

// TestAdvanceToMultiWindowJump pins catchUpRefresh across idle jumps
// spanning several whole refresh windows: every skipped refresh epoch is
// issued, in order, at its scheduled cycle (the auditor's refresh-cadence
// and ref-issue-order invariants), and the sweep state stays consistent.
func TestAdvanceToMultiWindowJump(t *testing.T) {
	r := newRig(t, nil)
	tim := r.mod.Timing()
	now := uint64(0)
	for i := 0; i < 5; i++ {
		res, err := r.mc.ServeRequest(memctrl.Request{Line: r.line(0, 5+i)}, now)
		if err != nil {
			t.Fatal(err)
		}
		now = res.Completion
	}
	// Jump three whole refresh windows plus a fraction of an epoch.
	now += 3*tim.RefreshWindow + tim.TREFI/2
	r.mc.AdvanceTo(now)
	for i := 0; i < 5; i++ {
		res, err := r.mc.ServeRequest(memctrl.Request{Line: r.line(1, 9+i)}, now)
		if err != nil {
			t.Fatal(err)
		}
		now = res.Completion
	}
	r.mc.AdvanceTo(now + tim.TREFI)
	if refs := r.mc.Stats().Counter("mc.ref"); refs < 3*int64(tim.RefreshCommandsPerWindow()) {
		t.Fatalf("jump across 3 windows issued only %d REFs", refs)
	}
	r.verify(t)
}

// TestThrottleDelayAcrossRefreshEpochs is the regression test for
// back-dated REFs under admission throttling: a BlockHammer-style delay
// many tREFI long must not cause the refresh schedule to be applied
// after — and time-stamped behind — the delayed request.
func TestThrottleDelayAcrossRefreshEpochs(t *testing.T) {
	r := newRig(t, func(cfg *memctrl.Config) {
		// minGap = window/budget ~ 16 tREFI: one throttle spans many
		// refresh epochs.
		tim := dram.DDR4Timing()
		cfg.Admission = memctrl.NewRateLimiter(dram.DefaultGeometry(), 4, 64*tim.TREFI, 2)
	})
	now := uint64(0)
	for i := 0; i < 40; i++ {
		row := 5 + (i%2)*2 // alternate rows: every access conflicts and ACTs
		res, err := r.mc.ServeRequest(memctrl.Request{Line: r.line(0, row)}, now)
		if err != nil {
			t.Fatal(err)
		}
		now = res.Completion
	}
	if n := r.mc.Stats().Counter("mc.throttled"); n == 0 {
		t.Fatal("stream was never throttled; the regression is not exercised")
	}
	r.verify(t)
}

// TestConflictPathEmitsPRE is the regression test for the silent row
// switch: a row conflict charges PRE+ACT latency, so a real PRE command
// must reach the DRAM module and the event stream.
func TestConflictPathEmitsPRE(t *testing.T) {
	r := newRig(t, nil)
	if _, err := r.mc.ServeRequest(memctrl.Request{Line: r.line(0, 5)}, 0); err != nil {
		t.Fatal(err)
	}
	res, err := r.mc.ServeRequest(memctrl.Request{Line: r.line(0, 7)}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if res.RowHit || !res.Activated {
		t.Fatalf("second access should conflict and activate: %+v", res)
	}
	if n := r.ring.Count(obs.KindPRE); n != 1 {
		t.Fatalf("conflict path emitted %d PRE commands, want exactly 1", n)
	}
	r.verify(t)
}

// TestHammerGapIsExactlyTRC is the regression test for the double-counted
// tRC wait: a two-row hammer in one bank must settle into ACTs spaced
// exactly tRC apart — the spacing DDR mandates and every MAC/tREFW
// calculation in the paper assumes — not tRC plus the already-elapsed
// service latency.
func TestHammerGapIsExactlyTRC(t *testing.T) {
	r := newRig(t, nil)
	tim := r.mod.Timing()
	now := uint64(0)
	for i := 0; i < 60; i++ {
		res, err := r.mc.ServeRequest(memctrl.Request{Line: r.line(0, 5+(i%2)*2)}, now)
		if err != nil {
			t.Fatal(err)
		}
		now = res.Completion
	}
	var acts []uint64
	for _, ev := range r.ring.Events() {
		if ev.Kind == obs.KindACT {
			acts = append(acts, ev.Cycle)
		}
	}
	if len(acts) < 10 {
		t.Fatalf("hammer produced only %d ACTs", len(acts))
	}
	for i := 2; i < len(acts); i++ {
		if gap := acts[i] - acts[i-1]; gap != tim.TRC {
			t.Fatalf("steady-state ACT gap %d at ACT %d, want exactly tRC (%d)", gap, i, tim.TRC)
		}
	}
	r.verify(t)
}

// TestMitigationOccupancyPreserved is the regression test for the
// bank-ready overwrite: a PARA neighbor refresh occupies the bank for
// tRC, and the request's completion bookkeeping must merge with — not
// overwrite — that occupancy, or the next access starts while the bank
// is mid-refresh.
func TestMitigationOccupancyPreserved(t *testing.T) {
	r := newRig(t, func(cfg *memctrl.Config) {
		cfg.PARAProb = 1 // every ACT triggers a neighbor refresh
		cfg.PARARadius = 1
	})
	tim := r.mod.Timing()
	res1, err := r.mc.ServeRequest(memctrl.Request{Line: r.line(0, 5)}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n := r.mc.Stats().Counter("mc.para_refreshes"); n != 1 {
		t.Fatalf("PARA with probability 1 fired %d refreshes, want 1", n)
	}
	res2, err := r.mc.ServeRequest(memctrl.Request{Line: r.line(0, 5)}, res1.Completion)
	if err != nil {
		t.Fatal(err)
	}
	if !res2.RowHit {
		t.Fatalf("second access to the open row should hit: %+v", res2)
	}
	if want := res1.Start + tim.TRC; res2.Start != want {
		t.Fatalf("hit started at %d; the PARA refresh occupies the bank until %d", res2.Start, want)
	}
	r.verify(t)
}
