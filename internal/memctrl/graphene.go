package memctrl

// Graphene is the in-controller hardware baseline of Park et al.
// (MICRO'20): a Misra-Gries frequency summary over row activations that
// issues a targeted neighbor refresh whenever a row's estimated count
// crosses a threshold. Correct protection requires one table entry per
// threshold-quantum of the per-window ACT budget — SRAM/CAM area that
// grows as the MAC shrinks (the §3 scaling problem the paper highlights;
// experiment E3 reports this cost model).
type Graphene struct {
	// Entries is the Misra-Gries table size per bank.
	Entries int
	// Threshold is the estimated-count trigger for a neighbor refresh
	// (typically MAC/2 to tolerate estimation slack).
	Threshold uint64
	// Radius is the neighbor refresh radius.
	Radius int

	tables    [][]mgEntry
	spill     []uint64 // per-bank Misra-Gries decrement floor
	refreshes uint64
}

// mgEntry is one Misra-Gries table slot. The table is a flat slice of at
// most Entries slots per bank — a CAM, like the SRAM structure it models —
// so the per-ACT path is a short linear scan with no map hashing and no
// allocation in the steady state.
type mgEntry struct {
	row   int
	count uint64
}

// NewGraphene returns a tracker with the given per-bank table size,
// trigger threshold and refresh radius.
func NewGraphene(banks, entries int, threshold uint64, radius int) *Graphene {
	g := &Graphene{
		Entries:   entries,
		Threshold: threshold,
		Radius:    radius,
		tables:    make([][]mgEntry, banks),
		spill:     make([]uint64, banks),
	}
	for i := range g.tables {
		g.tables[i] = make([]mgEntry, 0, entries)
	}
	return g
}

// RequiredEntries returns the table size Graphene needs per bank for
// complete protection: the per-window per-bank ACT budget divided by the
// threshold. This is the SRAM-cost model of experiment E3.
func RequiredEntries(actBudgetPerWindow, threshold uint64) int {
	if threshold == 0 {
		return 0
	}
	return int((actBudgetPerWindow + threshold - 1) / threshold)
}

// onACT feeds one activation; it returns the row to neighbor-refresh
// (>= 0) when the threshold fires, or -1.
func (g *Graphene) onACT(bank, row int) int {
	t := g.tables[bank]
	idx := -1
	for i := range t {
		if t[i].row == row {
			idx = i
			break
		}
	}
	switch {
	case idx >= 0:
		t[idx].count++
	case len(t) < g.Entries:
		idx = len(t)
		t = append(t, mgEntry{row: row, count: g.spill[bank] + 1})
		g.tables[bank] = t
	default:
		// Misra-Gries: raise the floor instead of decrementing every
		// entry; evict entries at the floor.
		g.spill[bank]++
		w := 0
		for _, e := range t {
			if e.count > g.spill[bank] {
				t[w] = e
				w++
			}
		}
		g.tables[bank] = t[:w]
		return -1
	}
	if t[idx].count-g.spill[bank] >= g.Threshold {
		// Trigger: refresh neighbors and rearm the entry.
		t[idx].count = g.spill[bank]
		g.refreshes++
		return row
	}
	return -1
}

// Refreshes returns how many neighbor refreshes the tracker triggered.
func (g *Graphene) Refreshes() uint64 { return g.refreshes }

// windowReset clears the tables at refresh-window boundaries, keeping the
// allocated slots for reuse.
func (g *Graphene) windowReset() {
	for i := range g.tables {
		g.tables[i] = g.tables[i][:0]
		g.spill[i] = 0
	}
}
