package memctrl

import (
	"errors"
	"fmt"

	"hammertime/internal/addr"
	"hammertime/internal/dram"
	"hammertime/internal/obs"
	"hammertime/internal/sim"
)

// Config assembles a Controller.
type Config struct {
	// Mapper translates physical line indices to DDR addresses (required).
	Mapper addr.Mapper
	// DRAM is the module behind the controller (required).
	DRAM *dram.Module

	// OpenPage selects the row-buffer policy: true leaves rows open
	// (default); false auto-precharges after every access.
	OpenPage bool
	// BurstCycles is the data-bus occupancy per line transfer (default 4).
	BurstCycles uint64

	// PARAProb, when > 0, enables PARA-style probabilistic neighbor
	// refresh: each ACT refreshes one neighbor within PARARadius with
	// this probability.
	PARAProb   float64
	PARARadius int

	// Graphene, when non-nil, enables the in-controller Misra-Gries
	// tracker baseline.
	Graphene *Graphene

	// Admission, when non-nil, can delay activating requests
	// (BlockHammer-style rate limiting).
	Admission AdmissionController

	// Enforcer, when non-nil, checks each request's domain against the
	// subarray group it touches (§4.1 enforcement).
	Enforcer *DomainEnforcer

	// Seed seeds the controller's private RNG (PARA coin flips).
	Seed uint64
}

// Common controller errors.
var (
	// ErrPrivileged is returned when a non-permitted domain executes the
	// refresh instruction (§4.3: host-privileged).
	ErrPrivileged = errors.New("memctrl: refresh instruction requires host privilege")
)

// Controller is the integrated memory controller. It is single-threaded
// by design: the experiment runner presents requests in arrival order.
type Controller struct {
	mapper addr.Mapper
	dram   *dram.Module
	geom   dram.Geometry
	timing dram.Timing

	openPage bool
	burst    uint64

	bankReady []uint64 // cycle each bank becomes free
	lastACT   []uint64 // cycle+1 of each bank's last ACT (0 = never); tRC spacing
	busReady  uint64
	now       uint64

	nextRef    uint64
	nextWindow uint64
	// refSaturated / winSaturated latch when the corresponding deadline
	// can no longer advance without wrapping uint64 (or when the timing is
	// degenerate, TREFI == 0): the schedule has run off the end of
	// representable time and stops, instead of looping forever on a
	// wrapped deadline.
	refSaturated bool
	winSaturated bool
	// noBurst disables the refresh fast-forward (SetRefreshBurst).
	noBurst bool

	paraProb   float64
	paraRadius int

	counter   actCounter
	graphene  *Graphene
	admission AdmissionController
	enforcer  *DomainEnforcer

	// refreshPermitted gates the refresh instruction; nil means only
	// domain 0 (the host) may issue it.
	refreshPermitted func(domain int, line uint64) bool

	rng   *sim.RNG
	stats *sim.Stats
	rec   *obs.Recorder
	gate  *sim.Canceler

	// Hot-path histogram and counter handles (skip the stats map lookup
	// per request / per refresh epoch).
	interACT *sim.Histogram
	service  *sim.Histogram
	refCtr   *int64
}

// NewController validates cfg and builds a controller.
func NewController(cfg Config) (*Controller, error) {
	if cfg.Mapper == nil {
		return nil, fmt.Errorf("memctrl: config needs a Mapper")
	}
	if cfg.DRAM == nil {
		return nil, fmt.Errorf("memctrl: config needs a DRAM module")
	}
	if cfg.Mapper.Geometry() != cfg.DRAM.Geometry() {
		return nil, fmt.Errorf("memctrl: mapper geometry differs from DRAM geometry")
	}
	if cfg.PARAProb < 0 || cfg.PARAProb > 1 {
		return nil, fmt.Errorf("memctrl: PARA probability %g out of [0,1]", cfg.PARAProb)
	}
	if cfg.BurstCycles == 0 {
		cfg.BurstCycles = 4
	}
	if cfg.PARARadius == 0 {
		cfg.PARARadius = 1
	}
	g := cfg.DRAM.Geometry()
	t := cfg.DRAM.Timing()
	c := &Controller{
		mapper:     cfg.Mapper,
		dram:       cfg.DRAM,
		geom:       g,
		timing:     t,
		openPage:   cfg.OpenPage,
		burst:      cfg.BurstCycles,
		bankReady:  make([]uint64, g.Banks),
		lastACT:    make([]uint64, g.Banks),
		busReady:   0,
		nextRef:    t.TREFI,
		nextWindow: t.RefreshWindow,
		paraProb:   cfg.PARAProb,
		paraRadius: cfg.PARARadius,
		graphene:   cfg.Graphene,
		admission:  cfg.Admission,
		enforcer:   cfg.Enforcer,
		rng:        sim.NewRNG(cfg.Seed ^ 0x5bd1e995cafef00d),
		stats:      &sim.Stats{},
	}
	c.interACT = c.stats.NewHistogram("mc.inter_act_cycles", sim.ExpBuckets(8, 2, 16))
	c.service = c.stats.NewHistogram("mc.service_cycles", sim.ExpBuckets(8, 2, 16))
	c.refCtr = c.stats.CounterRef("mc.ref")
	return c, nil
}

// SetRecorder attaches an event recorder (nil disables recording). The
// recorder is a pure observer: it never changes scheduling, timing or RNG
// consumption.
func (c *Controller) SetRecorder(r *obs.Recorder) { c.rec = r }

// Stats returns the controller's stats registry.
func (c *Controller) Stats() *sim.Stats { return c.stats }

// Mapper returns the address mapper in use.
func (c *Controller) Mapper() addr.Mapper { return c.mapper }

// DRAM returns the module behind the controller.
func (c *Controller) DRAM() *dram.Module { return c.dram }

// Now returns the latest completion cycle the controller has seen.
func (c *Controller) Now() uint64 { return c.now }

// EnableACTCounter configures the per-channel activation counter: overflow
// after threshold ACTs delivers an ACTEvent to handler. precise selects
// the paper's proposed address-reporting mode; legacy mode (precise=false)
// reproduces today's ACT_COUNT PMU events, which carry no address.
func (c *Controller) EnableACTCounter(precise bool, threshold uint64, handler ACTHandler) error {
	if threshold == 0 {
		return fmt.Errorf("memctrl: ACT counter threshold must be > 0")
	}
	c.counter = actCounter{enabled: true, precise: precise, threshold: threshold, handler: handler}
	return nil
}

// DisableACTCounter turns the activation counter off.
func (c *Controller) DisableACTCounter() { c.counter = actCounter{} }

// ACTOverflows returns how many counter overflow interrupts fired.
func (c *Controller) ACTOverflows() uint64 { return c.counter.overflows }

// SetRefreshPermission installs the privilege check for the refresh
// instruction. nil restores the default (only domain 0, the host OS).
func (c *Controller) SetRefreshPermission(fn func(domain int, line uint64) bool) {
	c.refreshPermitted = fn
}

// Enforcer returns the domain enforcer, or nil.
func (c *Controller) Enforcer() *DomainEnforcer { return c.enforcer }

// advanceNextRef moves the refresh deadline one TREFI forward, latching
// refSaturated instead of wrapping: with TREFI == 0 the deadline cannot
// move at all, and near math.MaxUint64 the addition would wrap to a small
// value and re-arm an already-issued deadline — either way the schedule
// would loop forever.
func (c *Controller) advanceNextRef() {
	if n := c.nextRef + c.timing.TREFI; n > c.nextRef {
		c.nextRef = n
	} else {
		c.refSaturated = true
	}
}

// advanceNextWindow is advanceNextRef for the refresh-window boundary.
func (c *Controller) advanceNextWindow() {
	if n := c.nextWindow + c.timing.RefreshWindow; n > c.nextWindow {
		c.nextWindow = n
	} else {
		c.winSaturated = true
	}
}

// minBurstRefs is the span (in REF commands) below which catchUpRefresh
// doesn't bother with the bulk path. Any value is behavior-neutral — the
// bulk and per-REF paths produce identical state — this only keeps the
// bulk setup cost off the common one-REF-behind case during busy traffic.
const minBurstRefs = 4

// catchUpRefresh issues any REF commands scheduled at or before cycle, and
// resets window-scoped trackers at refresh-window boundaries.
//
// When nothing observes individual REF commands — no recorder attached,
// and the module's TRR tracker (if any) quiescent — the whole span is
// applied in closed form via dram.RefreshBurst: one counter addition, one
// sweep advance, and one bank-busy merge to the last REF's tRFC window,
// instead of span/tREFI loop iterations. The final controller and module
// state is byte-identical to the per-REF loop (see RefreshBurst); with a
// recorder or an armed tracker the per-REF path runs so every event is
// emitted at its own cycle and cures fire at their exact REF commands.
func (c *Controller) catchUpRefresh(cycle uint64) {
	for !c.refSaturated && c.nextRef <= cycle {
		if t := c.timing.TREFI; t > 0 && !c.noBurst && c.rec == nil {
			if n := (cycle-c.nextRef)/t + 1; n >= minBurstRefs {
				// last <= cycle: (n-1)*t <= cycle-nextRef by construction,
				// so this cannot overflow.
				last := c.nextRef + (n-1)*t
				if c.dram.RefreshBurst(n, last) {
					*c.refCtr += int64(n)
					busyUntil := last + c.timing.TRFC
					if busyUntil < last {
						busyUntil = ^uint64(0) // saturate
					}
					for b := range c.bankReady {
						if c.bankReady[b] < busyUntil {
							c.bankReady[b] = busyUntil
						}
					}
					if c.busReady < busyUntil {
						c.busReady = busyUntil
					}
					c.nextRef = last
					c.advanceNextRef()
					continue
				}
			}
		}
		c.dram.Refresh(c.nextRef)
		*c.refCtr++
		busyUntil := c.nextRef + c.timing.TRFC
		if busyUntil < c.nextRef {
			busyUntil = ^uint64(0) // saturate
		}
		for b := range c.bankReady {
			if c.bankReady[b] < busyUntil {
				c.bankReady[b] = busyUntil
			}
		}
		if c.busReady < busyUntil {
			c.busReady = busyUntil
		}
		c.advanceNextRef()
	}
	if !c.winSaturated && c.nextWindow <= cycle {
		if c.graphene != nil {
			// A window reset is a pure, idempotent table clear and no ACT
			// can land between two boundaries processed in one catch-up,
			// so k missed boundaries collapse to a single reset.
			c.graphene.windowReset()
		}
		if w := c.timing.RefreshWindow; w == 0 {
			c.winSaturated = true
		} else {
			// Jump to the last boundary at or before cycle, then advance
			// once (saturating) — closed form instead of one iteration
			// per missed window.
			c.nextWindow += ((cycle - c.nextWindow) / w) * w
			c.advanceNextWindow()
		}
	}
}

// Commands settle schedules either always activate (the refresh
// instruction), never activate (REF_NEIGHBORS), or activate exactly when
// the target row is not already open (ordinary requests, which pass the
// row itself).
const (
	settleACTAlways = -1
	settleNoACT     = -2
)

// settle advances start past every constraint gating a command on the
// bank, iterating to a fixpoint: REF commands scheduled at or before the
// issue cycle are issued first (so a throttle or bank-busy delay that
// crosses a tREFI boundary never causes the REF to be issued after — and
// back-dated behind — the delayed command), then the bank-busy window
// applies, then tRC spacing from the bank's last ACT when the command
// would activate. Each lift can push start across another refresh
// boundary, hence the loop; it terminates because tRFC < tREFI.
func (c *Controller) settle(bank, actRow int, start uint64) uint64 {
	for {
		prev := start
		c.catchUpRefresh(start)
		if br := c.bankReady[bank]; br > start {
			start = br
		}
		if actRow != settleNoACT && (actRow == settleACTAlways || c.dram.OpenRow(bank) != actRow) {
			if last := c.lastACT[bank]; last > 0 && start < last-1+c.timing.TRC {
				start = last - 1 + c.timing.TRC
			}
		}
		if start == prev {
			return start
		}
	}
}

// ServeRequest services one request arriving at the given cycle and
// returns scheduling details. Bit flips caused by any activation are
// visible through the DRAM module's flip observer and counters.
func (c *Controller) ServeRequest(req Request, arrival uint64) (ServiceResult, error) {
	c.catchUpRefresh(arrival)
	d := c.mapper.Map(req.Line)

	var res ServiceResult
	if c.enforcer != nil {
		res.Violation = !c.enforcer.Check(req.Domain, d.Row)
		if res.Violation {
			c.stats.Inc("mc.domain_violations")
		}
	}

	start := arrival
	if c.admission != nil {
		delay := c.admission.Admit(req, d.Bank, d.Row, c.dram.OpenRow(d.Bank) != d.Row, arrival)
		if delay > 0 {
			c.stats.Add("mc.throttle_cycles", int64(delay))
			c.stats.Inc("mc.throttled")
			res.ThrottleDelay = delay
			start += delay
		}
	}
	if res.ThrottleDelay > 0 {
		c.rec.Emit(obs.Event{Kind: obs.KindThrottle, Cycle: arrival, Bank: d.Bank, Row: d.Row, Domain: req.Domain, Arg: res.ThrottleDelay})
	}

	// Settle the issue cycle, then classify the row-buffer outcome
	// against the post-refresh state (a TRR cure during a caught-up REF
	// can close or change the open row).
	start = c.settle(d.Bank, d.Row, start)
	open := c.dram.OpenRow(d.Bank)
	wouldAct := open != d.Row

	var lat uint64
	switch {
	case !wouldAct:
		lat = c.timing.RowHitLatency()
		res.RowHit = true
		c.stats.Inc("mc.row_hits")
		c.rec.Emit(obs.Event{Kind: obs.KindRowHit, Cycle: start, Bank: d.Bank, Row: d.Row, Domain: req.Domain})
	case open < 0:
		lat = c.timing.RowEmptyLatency()
		c.stats.Inc("mc.row_empty")
		c.rec.Emit(obs.Event{Kind: obs.KindRowEmpty, Cycle: start, Bank: d.Bank, Row: d.Row, Domain: req.Domain})
	default:
		lat = c.timing.RowMissLatency()
		c.stats.Inc("mc.row_conflicts")
		c.rec.Emit(obs.Event{Kind: obs.KindRowConflict, Cycle: start, Bank: d.Bank, Row: d.Row, Domain: req.Domain})
	}

	if wouldAct {
		if open >= 0 {
			// The conflict path really closes the old row: issue the PRE
			// so DRAM row-buffer state and the event stream match the
			// RowMissLatency (PRE+ACT+CAS) the controller charges.
			if err := c.dram.Precharge(d.Bank, start); err != nil {
				return ServiceResult{}, err
			}
		}
		if err := c.activate(d.Bank, d.Row, start, req); err != nil {
			return ServiceResult{}, err
		}
		res.Activated = true
	}

	// Serialize data transfer on the shared channel bus.
	dataReady := start + lat
	if c.busReady > dataReady {
		dataReady = c.busReady
	}
	completion := dataReady + c.burst
	c.busReady = completion

	// Merge rather than overwrite: activate's mitigation hooks (PARA,
	// Graphene) may already have charged the bank busy past start+lat.
	if br := start + lat; br > c.bankReady[d.Bank] {
		c.bankReady[d.Bank] = br
	}
	if c.openPage {
		// Row stays open for locality.
	} else {
		if err := c.dram.Precharge(d.Bank, start+lat); err != nil {
			return ServiceResult{}, err
		}
		c.bankReady[d.Bank] += c.timing.TRP
	}

	if completion > c.now {
		c.now = completion
	}
	res.Start = start
	res.Completion = completion
	c.service.Observe(float64(completion - arrival))
	c.stats.Inc("mc.requests")
	if req.Write {
		c.stats.Inc("mc.writes")
	}
	if req.Source.Kind == SourceDMA {
		c.stats.Inc("mc.dma_requests")
	}
	return res, nil
}

// activate performs the ACT command plus all controller-side hooks:
// the activation counter, PARA, Graphene, and admission bookkeeping.
func (c *Controller) activate(bank, row int, start uint64, req Request) error {
	if _, err := c.dram.Activate(bank, row, start, req.Domain); err != nil {
		return err
	}
	if last := c.lastACT[bank]; last > 0 {
		c.interACT.Observe(float64(start - (last - 1)))
	}
	c.lastACT[bank] = start + 1
	c.stats.Inc("mc.acts")

	c.counter.onACT(ACTEvent{
		Cycle:   start,
		HasAddr: true,
		Line:    req.Line,
		Bank:    bank,
		Row:     row,
		Domain:  req.Domain,
		Source:  req.Source,
	}, c.rec)

	if c.paraProb > 0 && c.rng.Bool(c.paraProb) {
		// PARA: refresh one uniformly-chosen neighbor within the radius.
		off := 1 + c.rng.Intn(c.paraRadius)
		if c.rng.Bool(0.5) {
			off = -off
		}
		victim := row + off
		if c.geom.ValidRow(victim) && c.geom.SameSubarray(row, victim) {
			if err := c.dram.RefreshRow(bank, victim); err != nil {
				return err
			}
			c.stats.Inc("mc.para_refreshes")
			c.bankReady[bank] += c.timing.TRC // refresh occupies the bank
		}
	}

	if c.graphene != nil {
		if hot := c.graphene.onACT(bank, row); hot >= 0 {
			c.rec.Emit(obs.Event{Kind: obs.KindGrapheneTrigger, Cycle: start, Bank: bank, Row: hot, Domain: -1})
			radius := c.graphene.Radius
			if err := c.dram.RefreshNeighbors(bank, hot, radius, start); err != nil {
				return err
			}
			c.stats.Inc("mc.graphene_refreshes")
			c.bankReady[bank] += c.timing.TRC * uint64(2*radius)
		}
	}

	if c.admission != nil {
		c.admission.ObserveACT(bank, row, start)
	}
	return nil
}

// RefreshInstruction implements the proposed host-privileged refresh
// instruction (§4.3): translate line to its row, PRE the bank, ACT the row
// (which recharges it), and optionally PRE again. The ACT is a real
// activation — it disturbs the row's own neighbors, which is exactly why
// the instruction must be privileged.
func (c *Controller) RefreshInstruction(line uint64, autoPrecharge bool, domain int, now uint64) (ServiceResult, error) {
	permitted := domain == 0
	if c.refreshPermitted != nil {
		permitted = c.refreshPermitted(domain, line)
	}
	if !permitted {
		c.stats.Inc("mc.refresh_instr_denied")
		return ServiceResult{}, fmt.Errorf("%w (domain %d)", ErrPrivileged, domain)
	}
	c.catchUpRefresh(now)
	d := c.mapper.Map(line)
	start := c.settle(d.Bank, settleACTAlways, now)

	lat := c.timing.TRP + c.timing.TRCD // PRE + ACT settle
	if c.dram.OpenRow(d.Bank) >= 0 {
		// Only an actually-open bank gets the leading PRE command; the
		// charged latency stays the conservative PRE+ACT worst case
		// either way (software cannot see the buffer state, §4.3).
		if err := c.dram.Precharge(d.Bank, start); err != nil {
			return ServiceResult{}, err
		}
	}
	if err := c.activate(d.Bank, d.Row, start, Request{Line: line, Domain: domain, Source: Source{Kind: SourceKernel}}); err != nil {
		return ServiceResult{}, err
	}
	if autoPrecharge {
		if err := c.dram.Precharge(d.Bank, start+lat); err != nil {
			return ServiceResult{}, err
		}
		lat += c.timing.TRP
	}
	if br := start + lat; br > c.bankReady[d.Bank] {
		c.bankReady[d.Bank] = br
	}
	completion := start + lat
	if completion > c.now {
		c.now = completion
	}
	c.stats.Inc("mc.refresh_instr")
	return ServiceResult{Start: start, Completion: completion, Activated: true}, nil
}

// UncoreMove implements the §4.2 proposed uncore move instruction: the
// controller copies one line DRAM-to-DRAM through its internal buffers.
// Compared with a software copy the read and the write overlap (they
// are issued with the same arrival, so different banks proceed in
// parallel) and no data crosses to the core or pollutes the cache.
// Host-privileged like the refresh instruction.
func (c *Controller) UncoreMove(src, dst uint64, domain int, now uint64) (ServiceResult, error) {
	permitted := domain == 0
	if c.refreshPermitted != nil {
		permitted = c.refreshPermitted(domain, src) && c.refreshPermitted(domain, dst)
	}
	if !permitted {
		return ServiceResult{}, fmt.Errorf("%w (domain %d)", ErrPrivileged, domain)
	}
	rd, err := c.ServeRequest(Request{Line: src, Domain: domain, Source: Source{Kind: SourceKernel}}, now)
	if err != nil {
		return ServiceResult{}, fmt.Errorf("memctrl: uncore move read: %w", err)
	}
	wr, err := c.ServeRequest(Request{Line: dst, Write: true, Domain: domain, Source: Source{Kind: SourceKernel}}, now)
	if err != nil {
		return ServiceResult{}, fmt.Errorf("memctrl: uncore move write: %w", err)
	}
	completion := rd.Completion
	if wr.Completion > completion {
		completion = wr.Completion
	}
	c.stats.Inc("mc.uncore_moves")
	return ServiceResult{Start: now, Completion: completion, Activated: rd.Activated || wr.Activated}, nil
}

// RefreshNeighborsCmd issues the optional REF_NEIGHBORS DDR command
// (§4.3): DRAM internally refreshes the potential victims of the line's
// row up to radius rows away. Requires DRAM-side support; exposed so
// defenses can compare against the refresh-instruction path.
func (c *Controller) RefreshNeighborsCmd(line uint64, radius int, domain int, now uint64) (ServiceResult, error) {
	permitted := domain == 0
	if c.refreshPermitted != nil {
		permitted = c.refreshPermitted(domain, line)
	}
	if !permitted {
		return ServiceResult{}, fmt.Errorf("%w (domain %d)", ErrPrivileged, domain)
	}
	c.catchUpRefresh(now)
	d := c.mapper.Map(line)
	start := c.settle(d.Bank, settleNoACT, now)
	if err := c.dram.RefreshNeighbors(d.Bank, d.Row, radius, start); err != nil {
		return ServiceResult{}, err
	}
	lat := c.timing.TRC * uint64(2*radius)
	c.bankReady[d.Bank] = start + lat
	completion := start + lat
	if completion > c.now {
		c.now = completion
	}
	c.stats.Inc("mc.ref_neighbors_cmd")
	return ServiceResult{Start: start, Completion: completion}, nil
}

// SetCanceler installs (or, with nil, removes) the cooperative
// cancellation gate honored by long idle advances. The gate never alters
// which commands are issued at which cycles — a cancelled advance issues
// a prefix of the refreshes an uncancelled one would, all fully applied —
// so simulation results are byte-identical whenever the gate stays open.
func (c *Controller) SetCanceler(g *sim.Canceler) { c.gate = g }

// advanceChunkRefs bounds the REF commands issued between cancellation
// polls during an idle advance: a multi-second catch-up (a huge horizon
// jump) observes cancellation within ~1k refresh epochs instead of
// running to completion.
const advanceChunkRefs = 1024

// AdvanceTo runs the refresh schedule forward to cycle without serving any
// request (idle time). With a cancellation gate installed the advance is
// chunked so a cancelled run stops within advanceChunkRefs refresh epochs;
// every refresh issued before the stop is fully applied, leaving
// auditor-consistent state. Without a gate the whole span is handed to
// catchUpRefresh in one call, where the bulk fast path collapses it to a
// handful of operations.
func (c *Controller) AdvanceTo(cycle uint64) {
	if c.gate != nil {
		for !c.refSaturated && c.nextRef <= cycle {
			if c.gate.Tripped() {
				return
			}
			limit := c.nextRef + (advanceChunkRefs-1)*c.timing.TREFI
			if limit > cycle || limit < c.nextRef { // clamp (and guard overflow)
				limit = cycle
			}
			c.catchUpRefresh(limit)
		}
	}
	c.catchUpRefresh(cycle)
	if cycle > c.now {
		c.now = cycle
	}
}

// SetRefreshBurst enables (the default) or disables catchUpRefresh's bulk
// fast path. The two paths produce byte-identical state; the knob exists
// so differential tests and baseline benchmarks can force the per-REF
// reference path.
func (c *Controller) SetRefreshBurst(on bool) { c.noBurst = !on }

// NextEvent returns the next cycle at which the controller (or one of its
// hooks) will change state on its own, with no request arriving: the next
// refresh deadline, the next refresh-window reset (when a window-scoped
// tracker is attached), the admission policy's next autonomous release,
// and the nearest pending bank-ready / bus-ready transition. It returns
// math.MaxUint64 when nothing is pending. The value may be conservative
// (an event time at which nothing observable happens) but is never later
// than the next real event — the contract the event-driven scheduler in
// internal/core relies on to fast-forward idle spans.
func (c *Controller) NextEvent() uint64 {
	next := ^uint64(0)
	if !c.refSaturated && c.nextRef < next {
		next = c.nextRef
	}
	if c.graphene != nil && !c.winSaturated && c.nextWindow < next {
		next = c.nextWindow
	}
	if c.admission != nil {
		if r := c.admission.NextRelease(c.now); r < next {
			next = r
		}
	}
	for _, br := range c.bankReady {
		if br > c.now && br < next {
			next = br
		}
	}
	if c.busReady > c.now && c.busReady < next {
		next = c.busReady
	}
	return next
}
