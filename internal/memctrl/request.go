// Package memctrl models the CPU's integrated memory controller: address
// mapping, per-bank scheduling with an analytic latency model, periodic
// refresh, and — the contribution of "Stop! Hammer Time" (HotOS '21) —
// the three proposed Rowhammer-management primitives:
//
//   - domain enforcement for subarray-isolated interleaving (§4.1),
//   - precise ACT-counter overflow interrupts that report the physical
//     address triggering the latest activation (§4.2),
//   - a host-privileged targeted refresh instruction (§4.3).
//
// It also hosts the in-controller hardware baselines the paper compares
// against: PARA-style probabilistic neighbor refresh, Graphene-style
// Misra-Gries tracking, and a BlockHammer-style admission-control hook.
package memctrl

import "fmt"

// SourceKind distinguishes request originators. The distinction matters
// for defenses: CPU requests are visible to per-core performance counters
// (what ANVIL samples), DMA requests are not (§1) — DMA-based Rowhammer
// bypasses counter-based software defenses.
type SourceKind uint8

const (
	// SourceCPU marks requests from a CPU core (cache miss path).
	SourceCPU SourceKind = iota
	// SourceDMA marks direct memory accesses from devices.
	SourceDMA
	// SourceKernel marks host-OS maintenance traffic (page migration).
	SourceKernel
)

// String returns the kind's name.
func (k SourceKind) String() string {
	switch k {
	case SourceCPU:
		return "cpu"
	case SourceDMA:
		return "dma"
	case SourceKernel:
		return "kernel"
	default:
		return fmt.Sprintf("SourceKind(%d)", uint8(k))
	}
}

// Source identifies the agent issuing a request.
type Source struct {
	Kind SourceKind
	ID   int
}

// Request is one cache-line-sized memory access presented to the
// controller (a cache miss, writeback, or DMA transfer).
type Request struct {
	// Line is the physical address at cache-line granularity.
	Line uint64
	// Write marks stores/writebacks.
	Write bool
	// Domain is the trust-domain tag (ASID) of the issuing context.
	Domain int
	// Source identifies the issuing agent.
	Source Source
}

// ServiceResult reports how one request was served.
type ServiceResult struct {
	// Start is the cycle service began (after queuing and throttling).
	Start uint64
	// Completion is the cycle data transfer finished.
	Completion uint64
	// RowHit is true when the request hit the open row buffer.
	RowHit bool
	// Activated is true when service required an ACT command.
	Activated bool
	// ThrottleDelay is the extra delay imposed by admission control.
	ThrottleDelay uint64
	// Violation is true when domain enforcement flagged the request as
	// touching a subarray group not owned by the request's domain.
	Violation bool
}
