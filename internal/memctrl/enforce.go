package memctrl

import (
	"fmt"

	"hammertime/internal/addr"
)

// DomainEnforcer implements the memory-controller side of subarray-
// isolated interleaving (§4.1): the host OS registers each trust domain's
// subarray group (the "direct specification" via ASID the paper
// describes), and the controller verifies on every request that the
// touched row belongs to the issuing domain's group.
//
// A failed check is surfaced as ServiceResult.Violation and counted; a
// real implementation would raise a machine-check or fault. Domains with
// no registered group (e.g., the host itself) are unconstrained.
type DomainEnforcer struct {
	part       *addr.Partition
	groupOf    map[int]int
	violations uint64
}

// NewDomainEnforcer returns an enforcer over the given subarray partition.
func NewDomainEnforcer(part *addr.Partition) *DomainEnforcer {
	return &DomainEnforcer{part: part, groupOf: make(map[int]int)}
}

// Partition returns the partition the enforcer checks against.
func (e *DomainEnforcer) Partition() *addr.Partition { return e.part }

// AssignDomain registers domain as owning the given subarray group.
func (e *DomainEnforcer) AssignDomain(domain, group int) error {
	if group < 0 || group >= e.part.Groups() {
		return fmt.Errorf("memctrl: group %d out of range [0,%d)", group, e.part.Groups())
	}
	e.groupOf[domain] = group
	return nil
}

// ReleaseDomain removes a domain's group registration.
func (e *DomainEnforcer) ReleaseDomain(domain int) { delete(e.groupOf, domain) }

// GroupOf returns the group registered for domain.
func (e *DomainEnforcer) GroupOf(domain int) (int, bool) {
	g, ok := e.groupOf[domain]
	return g, ok
}

// Check reports whether a request by domain touching the bank-local row is
// within the domain's subarray group. Unregistered domains always pass.
func (e *DomainEnforcer) Check(domain, row int) bool {
	group, ok := e.groupOf[domain]
	if !ok {
		return true
	}
	if e.part.GroupOfRow(row) == group {
		return true
	}
	e.violations++
	return false
}

// Violations returns how many checks failed.
func (e *DomainEnforcer) Violations() uint64 { return e.violations }

// Allowed is the side-effect-free form of Check: it reports whether the
// access would pass without counting a violation. Shadow models (the
// invariant auditor) use it to re-derive the enforcer's verdicts.
func (e *DomainEnforcer) Allowed(domain, row int) bool {
	group, ok := e.groupOf[domain]
	return !ok || e.part.GroupOfRow(row) == group
}
