// The fuzz target lives in the external test package so it can import
// internal/check (which imports memctrl) without a cycle.
package memctrl_test

import (
	"testing"

	"hammertime/internal/addr"
	"hammertime/internal/check"
	"hammertime/internal/dram"
	"hammertime/internal/memctrl"
)

// FuzzControllerStream decodes arbitrary bytes into a controller command
// stream — requests, idle jumps across refresh epochs, targeted
// refreshes — over a fuzz-chosen mitigation mix, with the invariant
// auditor chained in. Any online invariant violation or end-of-run
// shadow/counter disagreement fails.
func FuzzControllerStream(f *testing.F) {
	f.Add(uint64(1), []byte{0, 1, 2, 3, 16, 200, 1, 0, 32, 9, 9, 9})
	f.Add(uint64(3), []byte{1, 0, 0, 0, 2, 0, 0, 0, 0, 255, 255, 255})
	f.Add(uint64(7), []byte{})
	f.Fuzz(func(t *testing.T, seed uint64, data []byte) {
		if len(data) > 512 {
			data = data[:512]
		}
		geom := dram.Geometry{Banks: 4, SubarraysPerBank: 4, RowsPerSubarray: 16, ColumnsPerRow: 16, LineBytes: 64}
		tim := dram.DDR4Timing()
		prof := dram.DisturbanceProfile{Name: "fuzz", MAC: 48, BlastRadius: 2, DistanceDecay: 0.5, FlipProb: 0.05}
		mod, err := dram.NewModule(dram.Config{Geometry: geom, Timing: tim, Profile: prof, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		cfg := memctrl.Config{
			Mapper:   addr.NewLineInterleave(geom),
			DRAM:     mod,
			OpenPage: seed&8 == 0,
			Seed:     seed >> 8,
		}
		if seed&1 != 0 {
			cfg.PARAProb = 0.25
			cfg.PARARadius = 2
		}
		if seed&2 != 0 {
			cfg.Graphene = memctrl.NewGraphene(geom.Banks, 32, 64, 2)
		}
		if seed&4 != 0 {
			cfg.Admission = memctrl.NewRateLimiter(geom, 64, 100_000, 32)
		}
		mc, err := memctrl.NewController(cfg)
		if err != nil {
			t.Fatal(err)
		}
		aud := check.New(check.Config{Geometry: geom, Timing: tim, Profile: prof})
		rec := aud.Chain(nil)
		mod.SetRecorder(rec)
		mc.SetRecorder(rec)

		now := uint64(0)
		total := geom.TotalLines()
		for i := 0; i+4 <= len(data); i += 4 {
			op := data[i]
			arg := uint64(data[i+1]) | uint64(data[i+2])<<8 | uint64(data[i+3])<<16
			switch op % 16 {
			case 0:
				now += tim.TREFI * (arg%64 + 1)
				mc.AdvanceTo(now)
			case 1:
				if res, err := mc.RefreshInstruction(arg%total, op&16 != 0, 0, now); err == nil {
					now = res.Completion
				}
			case 2:
				if res, err := mc.RefreshNeighborsCmd(arg%total, 1+int(op>>4)%3, 0, now); err == nil {
					now = res.Completion
				}
			default:
				res, err := mc.ServeRequest(memctrl.Request{Line: arg % total, Domain: int(op>>4) % 3}, now)
				if err != nil {
					t.Fatalf("op %d: %v", i/4, err)
				}
				if op&32 != 0 {
					now = res.Completion
				} else {
					now += uint64(op)
				}
			}
		}
		mc.AdvanceTo(now + tim.TREFI)
		if err := aud.Verify(mod, mc); err != nil {
			t.Fatalf("stream (seed %d, %d ops): %v", seed, len(data)/4, err)
		}
	})
}
