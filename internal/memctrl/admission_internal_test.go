package memctrl

import (
	"testing"

	"hammertime/internal/dram"
	"hammertime/internal/sim"
)

// TestRateLimiterDegenerateWindows is the regression test for the rotate
// hangs: Window = 1 (half-window rounds to zero) must still terminate,
// and a zero ACT budget must clamp instead of dividing by zero in
// ObserveACT's gap computation.
func TestRateLimiterDegenerateWindows(t *testing.T) {
	g := dram.DefaultGeometry()

	l := NewRateLimiter(g, 4, 1, 2)
	l.ObserveACT(0, 0, 5)
	l.ObserveACT(0, 0, 6)
	if d := l.Admit(Request{}, 0, 0, true, 1_000_000); d > 1 {
		t.Errorf("window-1 limiter still throttling after the window aged out (delay %d)", d)
	}

	z := NewRateLimiter(g, 0, 100, 0)
	if z.MaxActsPerWindow == 0 {
		t.Fatal("zero ACT budget must clamp to 1")
	}
	z.ObserveACT(0, 0, 10) // would divide by zero unclamped
}

// TestRateLimiterIdleSkipAheadMatchesStepped pins the O(1) idle
// skip-ahead in rotate against literal epoch-by-epoch stepping: after a
// long idle gap, a limiter rotated once at the far cycle must be in
// exactly the state of one rotated at every intermediate epoch boundary.
func TestRateLimiterIdleSkipAheadMatchesStepped(t *testing.T) {
	g := dram.DefaultGeometry()
	build := func() *RateLimiter {
		l := NewRateLimiter(g, 8, 1000, 4)
		for i := uint64(0); i < 6; i++ {
			l.ObserveACT(1, 7, 10+i)
			l.ObserveACT(2, 9, 15+i)
		}
		return l
	}
	jump, stepped := build(), build()

	const far = 1_000_000
	jump.rotate(far)
	for now := stepped.epochEnd; now <= far; now += stepped.Window / 2 {
		stepped.rotate(now)
	}
	stepped.rotate(far)

	if jump.active != stepped.active {
		t.Fatalf("active rows: jump %d, stepped %d", jump.active, stepped.active)
	}
	if jump.epochEnd != stepped.epochEnd {
		t.Fatalf("epochEnd: jump %d, stepped %d", jump.epochEnd, stepped.epochEnd)
	}
	for k := range jump.counts {
		if jump.counts[k] != stepped.counts[k] {
			t.Fatalf("counts[%d]: jump %d, stepped %d", k, jump.counts[k], stepped.counts[k])
		}
		if jump.nextAllow[k] != stepped.nextAllow[k] {
			t.Fatalf("nextAllow[%d]: jump %d, stepped %d", k, jump.nextAllow[k], stepped.nextAllow[k])
		}
	}
}

// TestRateLimiterAdversarialWindowEdges drives a seeded stream whose
// cycles cluster on half-window boundaries (the counter-carry edge an
// attacker would ride) through two identical limiters, one of which gets
// extra no-op rotates at every boundary in between. Admission decisions
// must be identical — aging must not depend on when rotate happens to
// run — and counts must never exceed what the epoch-halving scheme
// allows.
func TestRateLimiterAdversarialWindowEdges(t *testing.T) {
	g := dram.DefaultGeometry()
	const window = 512
	lazy := NewRateLimiter(g, 8, window, 4)
	eager := NewRateLimiter(g, 8, window, 4)

	rng := sim.NewRNG(42)
	now := uint64(1)
	lastRotated := uint64(0)
	for i := 0; i < 3000; i++ {
		// Hammer in tight bursts, periodically stepping right up to,
		// onto, or just past an epoch edge.
		switch rng.Intn(10) {
		case 0:
			next := (now/(window/2) + 1) * (window / 2)
			now = next - 1 + uint64(rng.Intn(3))
		default:
			now += uint64(rng.Intn(4))
		}
		for e := (lastRotated/(window/2) + 1) * (window / 2); e <= now; e += window / 2 {
			eager.rotate(e)
		}
		lastRotated = now
		bank, row := rng.Intn(2), 3+rng.Intn(2)
		wouldAct := rng.Intn(3) > 0
		dl := lazy.Admit(Request{}, bank, row, wouldAct, now)
		de := eager.Admit(Request{}, bank, row, wouldAct, now)
		if dl != de {
			t.Fatalf("op %d cycle %d: lazy limiter delays %d, eagerly-rotated limiter %d", i, now, dl, de)
		}
		if wouldAct {
			lazy.ObserveACT(bank, row, now+dl)
			eager.ObserveACT(bank, row, now+de)
		}
	}
	cl, _ := lazy.Delayed()
	ce, _ := eager.Delayed()
	if cl != ce || cl == 0 {
		t.Fatalf("delayed counts diverge or stream never throttled: lazy %d, eager %d", cl, ce)
	}
}

// TestGrapheneWindowResetPin pins windowReset semantics (audited for the
// invariant-auditor work and found correct): a reset tracker is
// indistinguishable from a brand-new one — same triggers on the same
// post-reset stream — with no count or spill floor carried across the
// window boundary.
func TestGrapheneWindowResetPin(t *testing.T) {
	const banks, entries, threshold, radius = 2, 4, 6, 1
	used := NewGraphene(banks, entries, threshold, radius)

	// Dirty every structure: near-threshold counts, a full table, and a
	// nonzero Misra-Gries spill floor from eviction churn.
	for row := 0; row < entries+3; row++ {
		for i := uint64(0); i < threshold-1; i++ {
			used.onACT(0, row)
		}
	}
	used.windowReset()

	fresh := NewGraphene(banks, entries, threshold, radius)
	base := used.Refreshes()
	rng := sim.NewRNG(7)
	for i := 0; i < 2000; i++ {
		bank, row := rng.Intn(banks), rng.Intn(6)
		if got, want := used.onACT(bank, row), fresh.onACT(bank, row); got != want {
			t.Fatalf("ACT %d (bank %d row %d): reset tracker fires %d, fresh tracker %d — state leaked across windowReset",
				i, bank, row, got, want)
		}
	}
	if got, want := used.Refreshes()-base, fresh.Refreshes(); got != want {
		t.Fatalf("post-reset refresh counts diverge: reset %d, fresh %d", got, want)
	}
	if want := fresh.Refreshes(); want == 0 {
		t.Fatal("post-reset stream never triggered; the pin is not exercised")
	}
}
