package dma

import (
	"testing"

	"hammertime/internal/addr"
	"hammertime/internal/cpu"
	"hammertime/internal/dram"
	"hammertime/internal/memctrl"
)

func controller(t *testing.T) *memctrl.Controller {
	t.Helper()
	mod, err := dram.NewModule(dram.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	mc, err := memctrl.NewController(memctrl.Config{
		Mapper:   addr.NewLineInterleave(mod.Geometry()),
		DRAM:     mod,
		OpenPage: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return mc
}

func prog(lines []uint64) cpu.Program {
	i := 0
	return cpu.ProgramFunc(func() (cpu.Access, bool) {
		if i >= len(lines) {
			return cpu.Access{}, false
		}
		l := lines[i]
		i++
		return cpu.Access{Line: l}, true
	})
}

func TestNewDeviceValidates(t *testing.T) {
	mc := controller(t)
	if _, err := NewDevice(0, 1, nil, mc); err == nil {
		t.Fatal("nil program accepted")
	}
	if _, err := NewDevice(0, 1, prog(nil), nil); err == nil {
		t.Fatal("nil controller accepted")
	}
}

func TestDeviceBypassesCache(t *testing.T) {
	mc := controller(t)
	// The same line twice: a cached path would hit; DMA must reach the
	// controller both times.
	dev, err := NewDevice(0, 2, prog([]uint64{5, 5}), mc)
	if err != nil {
		t.Fatal(err)
	}
	now := uint64(0)
	for {
		next, ok, err := dev.Step(now)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		now = next
	}
	if got := mc.Stats().Counter("mc.requests"); got != 2 {
		t.Fatalf("controller saw %d requests, want 2", got)
	}
	if got := mc.Stats().Counter("mc.dma_requests"); got != 2 {
		t.Fatalf("dma requests = %d, want 2", got)
	}
	if dev.Accesses() != 2 || !dev.Done() {
		t.Fatalf("device accesses=%d done=%v", dev.Accesses(), dev.Done())
	}
}

func TestDeviceTagsDomainAndSource(t *testing.T) {
	mc := controller(t)
	var seen []memctrl.ACTEvent
	if err := mc.EnableACTCounter(true, 1, func(ev memctrl.ACTEvent) uint64 {
		seen = append(seen, ev)
		return 0
	}); err != nil {
		t.Fatal(err)
	}
	dev, err := NewDevice(3, 9, prog([]uint64{0}), mc)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := dev.Step(0); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 1 {
		t.Fatalf("ACT events = %d", len(seen))
	}
	if seen[0].Domain != 9 || seen[0].Source.Kind != memctrl.SourceDMA || seen[0].Source.ID != 3 {
		t.Fatalf("event attribution wrong: %+v", seen[0])
	}
}
