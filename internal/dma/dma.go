// Package dma models DMA-capable devices (NICs, GPUs, storage) that issue
// memory traffic directly to the memory controller, bypassing both the CPU
// caches and the per-core performance counters. GuardION/Throwhammer-style
// DMA Rowhammer attacks (§1) exploit exactly this: counter-sampling
// defenses like ANVIL never see the traffic, while the memory controller —
// where the paper's primitives live — sees every activation.
package dma

import (
	"fmt"

	"hammertime/internal/cpu"
	"hammertime/internal/memctrl"
)

// Device executes a Program directly against the memory controller.
// It reuses cpu.Program as its stream type; Flush is meaningless for DMA
// (there is no cache on the path) and is ignored.
type Device struct {
	ID     int
	Domain int

	prog cpu.Program
	mc   *memctrl.Controller

	accesses uint64
	done     bool
}

// NewDevice builds a DMA device running prog in the given trust domain.
func NewDevice(id, domain int, prog cpu.Program, mc *memctrl.Controller) (*Device, error) {
	if prog == nil {
		return nil, fmt.Errorf("dma: device %d needs a program", id)
	}
	if mc == nil {
		return nil, fmt.Errorf("dma: device %d needs a memory controller", id)
	}
	return &Device{ID: id, Domain: domain, prog: prog, mc: mc}, nil
}

// Done reports whether the device's program has finished.
func (d *Device) Done() bool { return d.done }

// Accesses returns how many transfers the device has issued.
func (d *Device) Accesses() uint64 { return d.accesses }

// Step issues the program's next transfer starting at cycle now and
// returns when the device is ready for its next transfer.
func (d *Device) Step(now uint64) (next uint64, ok bool, err error) {
	if d.done {
		return now, false, nil
	}
	acc, more := d.prog.Next()
	if !more {
		d.done = true
		return now, false, nil
	}
	d.accesses++
	res, err := d.mc.ServeRequest(memctrl.Request{
		Line:   acc.Line,
		Write:  acc.Write,
		Domain: d.Domain,
		Source: memctrl.Source{Kind: memctrl.SourceDMA, ID: d.ID},
	}, now)
	if err != nil {
		return now, false, fmt.Errorf("dma: device %d transfer: %w", d.ID, err)
	}
	return res.Completion + acc.Think, true, nil
}
