package cluster

import (
	"sort"
	"sync"
	"time"
)

// Registry tracks the worker fleet by heartbeat. Workers self-register
// (POST /v1/cluster/register) and re-register on an interval; an entry
// whose heartbeat is older than the TTL is treated as dead and skipped
// by dispatch. A dispatch failure marks the worker failed immediately —
// its cells are stolen back without waiting out the TTL — and the next
// heartbeat clears the mark, so a worker that merely hiccuped rejoins on
// its own.
type Registry struct {
	ttl time.Duration
	now func() time.Time // test hook

	mu      sync.Mutex
	workers map[string]*regEntry
}

type regEntry struct {
	addr     string
	lastSeen time.Time
	failed   bool
}

// Worker is one live registry entry as dispatch sees it.
type Worker struct {
	Name string
	Addr string
}

// NewRegistry builds a registry with the given heartbeat TTL (0 = 15s).
func NewRegistry(ttl time.Duration) *Registry {
	if ttl <= 0 {
		ttl = 15 * time.Second
	}
	return &Registry{ttl: ttl, now: time.Now, workers: make(map[string]*regEntry)}
}

// Register adds or refreshes a worker and clears any failure mark: the
// heartbeat doubles as the worker's claim that it is serving again.
func (r *Registry) Register(name, addr string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e := r.workers[name]
	if e == nil {
		e = &regEntry{}
		r.workers[name] = e
	}
	e.addr = addr
	e.lastSeen = r.now()
	e.failed = false
}

// Fail marks a worker dead until its next heartbeat. Dispatch calls it
// on any RPC failure so the rest of the round skips the worker.
func (r *Registry) Fail(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.workers[name]; ok {
		e.failed = true
	}
}

// Live returns the dispatchable workers — heartbeat within TTL and not
// failure-marked — sorted by name so round partitioning is stable.
func (r *Registry) Live() []Worker {
	r.mu.Lock()
	defer r.mu.Unlock()
	cutoff := r.now().Add(-r.ttl)
	out := make([]Worker, 0, len(r.workers))
	for name, e := range r.workers {
		if !e.failed && !e.lastSeen.Before(cutoff) {
			out = append(out, Worker{Name: name, Addr: e.addr})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Views returns every registry entry (live or not) for the coordinator's
// /v1/cluster/workers listing, sorted by name.
func (r *Registry) Views() []WorkerView {
	r.mu.Lock()
	defer r.mu.Unlock()
	cutoff := r.now().Add(-r.ttl)
	out := make([]WorkerView, 0, len(r.workers))
	for name, e := range r.workers {
		out = append(out, WorkerView{
			Name:     name,
			Addr:     e.addr,
			LastSeen: e.lastSeen,
			Live:     !e.failed && !e.lastSeen.Before(cutoff),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
