package cluster

import (
	"sort"
	"sync"
	"time"

	"hammertime/internal/cluster/resilience"
)

// Registry tracks the worker fleet by heartbeat. Workers self-register
// (POST /v1/cluster/register) and re-register on an interval; an entry
// whose heartbeat is older than the TTL is treated as dead and skipped
// by dispatch.
//
// Health beyond liveness is a per-worker circuit breaker (the old binary
// fail mark's replacement): dispatch reports each batch outcome, a
// worker accumulating Threshold consecutive failures opens its breaker
// and leaves the live set, and after the cooldown it half-opens — the
// dispatcher routes it exactly one probe batch, whose outcome either
// closes the breaker or re-opens it. A heartbeat refreshes liveness but
// deliberately does NOT reset the breaker: a worker that keeps failing
// batches while heartbeating happily is precisely the failure mode the
// breaker exists for.
//
// Quarantine is the harshest state, reserved for workers caught
// returning corrupt bytes: their heartbeats are ignored outright for the
// penalty window (re-registering under the same name cannot shortcut
// it), and when the window ends the breaker requires a clean probe batch
// before real traffic resumes.
//
// The registry is bounded: entries silent for SweepAfter×TTL are swept
// on registration, so flapping workers re-registering under fresh names
// cannot grow the map forever. Quarantined entries survive the sweep
// until their penalty expires — eviction must not launder a quarantine.
type Registry struct {
	ttl        time.Duration
	breakerCfg resilience.BreakerConfig
	sweepAfter int
	now        func() time.Time // test hook

	mu      sync.Mutex
	workers map[string]*regEntry
	evicted int64
}

// RegistryConfig parametrizes a Registry; zero values get defaults.
type RegistryConfig struct {
	// TTL is the heartbeat time-to-live (0 = 15s).
	TTL time.Duration
	// Breaker configures every worker's circuit breaker.
	Breaker resilience.BreakerConfig
	// SweepAfter×TTL of silence deletes an entry (0 = 8; <0 disables
	// sweeping).
	SweepAfter int
}

type regEntry struct {
	addr             string
	lastSeen         time.Time
	breaker          *resilience.Breaker
	quarantinedUntil time.Time
}

// Worker is one live registry entry as dispatch sees it.
type Worker struct {
	Name string
	Addr string
	// Probe marks a half-open worker: the dispatcher routes it at most
	// one batch per round until its breaker closes again.
	Probe bool
}

// NewRegistry builds a registry with the given heartbeat TTL (0 = 15s)
// and default breaker/sweep settings.
func NewRegistry(ttl time.Duration) *Registry {
	return NewRegistryConfig(RegistryConfig{TTL: ttl})
}

// NewRegistryConfig builds a registry, filling config defaults.
func NewRegistryConfig(cfg RegistryConfig) *Registry {
	if cfg.TTL <= 0 {
		cfg.TTL = 15 * time.Second
	}
	if cfg.SweepAfter == 0 {
		cfg.SweepAfter = 8
	}
	return &Registry{
		ttl:        cfg.TTL,
		breakerCfg: cfg.Breaker,
		sweepAfter: cfg.SweepAfter,
		now:        time.Now,
		workers:    make(map[string]*regEntry),
	}
}

// Register adds or refreshes a worker. It reports whether the heartbeat
// was accepted: a quarantined worker's heartbeats are ignored (false)
// until its penalty window ends. Accepting a heartbeat refreshes
// liveness only — breaker state recovers through probe batches, not
// through the worker's own claim that it is fine.
func (r *Registry) Register(name, addr string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	now := r.now()
	r.sweepLocked(now)
	e := r.workers[name]
	if e == nil {
		e = &regEntry{breaker: resilience.NewBreaker(r.breakerCfg)}
		r.workers[name] = e
	}
	if now.Before(e.quarantinedUntil) {
		return false
	}
	e.addr = addr
	e.lastSeen = now
	return true
}

// Deregister removes a worker from dispatch immediately — the final
// heartbeat of a draining worker, so the coordinator stops routing to it
// without waiting out the TTL. The entry is aged out rather than deleted
// so an active quarantine survives a deregister/re-register cycle.
func (r *Registry) Deregister(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.workers[name]; ok {
		e.lastSeen = time.Time{}
	}
}

// ReportFailure records a failed batch exchange against the worker's
// breaker: consecutive failures open it and the worker leaves the live
// set until the cooldown's probe.
func (r *Registry) ReportFailure(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.workers[name]; ok {
		e.breaker.Failure(r.now())
	}
}

// ReportSuccess records a verified batch exchange: it closes a half-open
// breaker (the probe passed) and resets the failure streak.
func (r *Registry) ReportSuccess(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.workers[name]; ok {
		e.breaker.Success(r.now())
	}
}

// Quarantine bars the worker for the penalty window: it leaves the live
// set, its heartbeats are ignored until the window ends, and its breaker
// is forced open so rejoining requires a clean probe batch. Reports
// whether the worker was known.
func (r *Registry) Quarantine(name string, penalty time.Duration) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.workers[name]
	if !ok {
		return false
	}
	until := r.now().Add(penalty)
	e.quarantinedUntil = until
	e.breaker.ForceOpen(until)
	return true
}

// Live returns the dispatchable workers — heartbeat within TTL, breaker
// closed or half-open (Probe), not quarantined — sorted by name so round
// partitioning is stable.
func (r *Registry) Live() []Worker {
	r.mu.Lock()
	defer r.mu.Unlock()
	now := r.now()
	cutoff := now.Add(-r.ttl)
	out := make([]Worker, 0, len(r.workers))
	for name, e := range r.workers {
		if e.lastSeen.Before(cutoff) || now.Before(e.quarantinedUntil) {
			continue
		}
		switch e.breaker.State(now) {
		case resilience.Open:
			continue
		case resilience.HalfOpen:
			out = append(out, Worker{Name: name, Addr: e.addr, Probe: true})
		default:
			out = append(out, Worker{Name: name, Addr: e.addr})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Views returns every registry entry (live or not) for the coordinator's
// /v1/cluster/workers listing, sorted by name.
func (r *Registry) Views() []WorkerView {
	r.mu.Lock()
	defer r.mu.Unlock()
	now := r.now()
	cutoff := now.Add(-r.ttl)
	out := make([]WorkerView, 0, len(r.workers))
	for name, e := range r.workers {
		quarantined := now.Before(e.quarantinedUntil)
		state := e.breaker.State(now).String()
		if quarantined {
			state = "quarantined"
		}
		out = append(out, WorkerView{
			Name:        name,
			Addr:        e.addr,
			LastSeen:    e.lastSeen,
			Live:        !quarantined && !e.lastSeen.Before(cutoff) && e.breaker.State(now) != resilience.Open,
			Breaker:     state,
			Quarantined: quarantined,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// IsQuarantined reports whether one worker is currently serving a
// penalty — the merge path consults it so a response already in flight
// when its worker was quarantined is discarded, not trusted.
func (r *Registry) IsQuarantined(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.workers[name]
	return ok && r.now().Before(e.quarantinedUntil)
}

// Quarantined returns how many workers are currently serving a penalty.
func (r *Registry) Quarantined() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	now := r.now()
	n := 0
	for _, e := range r.workers {
		if now.Before(e.quarantinedUntil) {
			n++
		}
	}
	return n
}

// Evicted returns the lifetime count of entries removed by the sweep.
func (r *Registry) Evicted() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.evicted
}

// sweepLocked deletes entries silent for longer than SweepAfter×TTL.
// Silence served under quarantine does not count — the worker's
// heartbeats were being rejected, so the sweep clock starts at the
// penalty's end. That both spares active quarantines and keeps the
// probe-batch gate intact right after one expires. Caller holds r.mu.
func (r *Registry) sweepLocked(now time.Time) {
	if r.sweepAfter < 0 {
		return
	}
	cutoff := now.Add(-time.Duration(r.sweepAfter) * r.ttl)
	for name, e := range r.workers {
		seen := e.lastSeen
		if e.quarantinedUntil.After(seen) {
			seen = e.quarantinedUntil
		}
		if seen.Before(cutoff) {
			delete(r.workers, name)
			r.evicted++
		}
	}
}
