package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"log/slog"
	"net/http"
	"net/url"
	"sync"
	"time"

	"hammertime/internal/cluster/resilience"
	"hammertime/internal/harness"
	"hammertime/internal/sim"
	"hammertime/internal/telemetry"
)

// DispatcherConfig parametrizes a Dispatcher. The zero value works:
// memory-only cache, 15s worker TTL, 2m per-batch deadline, 2 RPC
// retries with 50ms-base backoff, hedging in the final 2 rounds, audit
// off.
type DispatcherConfig struct {
	// Cache fronts dispatch (nil = a fresh 64 MiB memory-only cache).
	Cache *ResultCache
	// Registry tracks the worker fleet (nil = a fresh 15s-TTL registry
	// configured with Breaker).
	Registry *Registry
	// Client performs worker RPCs (nil = http.DefaultClient). Wrap its
	// transport with resilience.NewTransport (and set Chaos) to run the
	// whole dispatch plane under an injected fault schedule.
	Client *http.Client
	// DispatchTimeout bounds one batch RPC attempt; a batch that misses
	// it is stolen back and re-dispatched (0 = 2m).
	DispatchTimeout time.Duration
	// BatchSize caps the cells per RPC (0 = 4). Smaller batches steal
	// back less work when a worker dies mid-run.
	BatchSize int
	// MaxRounds bounds the dispatch-steal-redispatch loop (0 = 8); the
	// local fallback makes the final round when workers keep dying.
	MaxRounds int
	// RPCRetries is how many extra attempts one batch gets against the
	// same worker before the batch counts as failed (0 = 2, <0 = none).
	// Retries absorb transient faults — a dropped packet no longer
	// steals a whole batch and burns a dispatch round.
	RPCRetries int
	// RetryBase is the base of the deterministic jittered backoff slept
	// between attempts, harness.Backoff-shaped (0 = 50ms).
	RetryBase time.Duration
	// Breaker configures per-worker circuit breakers (used when Registry
	// is nil; a supplied Registry carries its own).
	Breaker resilience.BreakerConfig
	// HedgeRounds: during the final N dispatch rounds each batch is also
	// dispatched to a second worker after HedgeDelay, first verified
	// response wins (0 = 2, <0 = never). Cells are idempotent, so the
	// losing response is simply discarded.
	HedgeRounds int
	// HedgeDelay is the head start the primary worker gets before the
	// hedge fires (0 = DispatchTimeout/8).
	HedgeDelay time.Duration
	// AuditFraction in [0,1] is the fraction of remotely computed cells
	// re-executed locally and byte-compared before the batch is trusted
	// (0 = audit off). The sample is deterministic per cell key and
	// AuditSeed. A mismatch quarantines the worker for QuarantineFor and
	// purges its unaudited cells from the run.
	AuditFraction float64
	// AuditSeed varies which cells the audit samples.
	AuditSeed uint64
	// QuarantineFor is the penalty window of a byte-corrupting worker
	// (0 = 10m): its heartbeats are ignored and its entry barred from
	// dispatch until the window ends, then a probe batch gates re-entry.
	QuarantineFor time.Duration
	// Chaos, when the Client's transport is fault-injecting, lets the
	// dispatcher merge the transport's fault counters onto /metrics as
	// cluster.chaos.* families.
	Chaos *resilience.Transport
	// Log receives dispatch logs (nil = silent).
	Log *slog.Logger
}

// Dispatcher is the coordinator's long-lived half: the result cache, the
// worker registry, and the counters. Per-job delegates from ForJob share
// them, so a cell computed for one job serves every later job that needs
// the same key.
type Dispatcher struct {
	cache  *ResultCache
	reg    *Registry
	client *http.Client
	cfg    DispatcherConfig
	log    *slog.Logger

	statsMu sync.Mutex
	stats   sim.Stats
}

// NewDispatcher builds a dispatcher, filling config defaults.
func NewDispatcher(cfg DispatcherConfig) *Dispatcher {
	d := &Dispatcher{cache: cfg.Cache, reg: cfg.Registry, client: cfg.Client, cfg: cfg}
	if d.cache == nil {
		d.cache = NewResultCache(0)
	}
	if d.reg == nil {
		d.reg = NewRegistryConfig(RegistryConfig{Breaker: cfg.Breaker})
	}
	if d.client == nil {
		d.client = http.DefaultClient
	}
	if d.cfg.DispatchTimeout <= 0 {
		d.cfg.DispatchTimeout = 2 * time.Minute
	}
	if d.cfg.BatchSize <= 0 {
		d.cfg.BatchSize = 4
	}
	if d.cfg.MaxRounds <= 0 {
		d.cfg.MaxRounds = 8
	}
	switch {
	case d.cfg.RPCRetries == 0:
		d.cfg.RPCRetries = 2
	case d.cfg.RPCRetries < 0:
		d.cfg.RPCRetries = 0
	}
	if d.cfg.RetryBase <= 0 {
		d.cfg.RetryBase = 50 * time.Millisecond
	}
	switch {
	case d.cfg.HedgeRounds == 0:
		d.cfg.HedgeRounds = 2
	case d.cfg.HedgeRounds < 0:
		d.cfg.HedgeRounds = 0
	}
	if d.cfg.HedgeDelay <= 0 {
		d.cfg.HedgeDelay = d.cfg.DispatchTimeout / 8
	}
	if d.cfg.QuarantineFor <= 0 {
		d.cfg.QuarantineFor = 10 * time.Minute
	}
	d.log = telemetry.OrNop(cfg.Log)
	return d
}

// Registry returns the worker registry (for HTTP registration wiring).
func (d *Dispatcher) Registry() *Registry { return d.reg }

// Cache returns the result cache.
func (d *Dispatcher) Cache() *ResultCache { return d.cache }

func (d *Dispatcher) count(name string, delta int64) {
	d.statsMu.Lock()
	d.stats.Add(name, delta)
	d.statsMu.Unlock()
}

// MergeInto folds the dispatcher's counters and point-in-time gauges
// into dst — the serve layer's ExtraMetrics hook, so cluster state rides
// the same /metrics exposition as the job counters. dst must be a fresh
// scratch Stats (the serve layer rebuilds one per snapshot): lifetime
// cache counters are added whole, not as deltas.
func (d *Dispatcher) MergeInto(dst *sim.Stats) {
	d.statsMu.Lock()
	dst.Merge(&d.stats)
	d.statsMu.Unlock()
	hits, misses, evicted := d.cache.Counters()
	dst.Add("cluster.cache.hits", hits)
	dst.Add("cluster.cache.misses", misses)
	dst.Add("cluster.cache.evicted", evicted)
	dst.Add("cluster.workers.evicted", d.reg.Evicted())
	dst.SetGauge("cluster.cache.bytes", float64(d.cache.Bytes()))
	dst.SetGauge("cluster.cache.entries", float64(d.cache.Len()))
	dst.SetGauge("cluster.workers.live", float64(len(d.reg.Live())))
	dst.SetGauge("cluster.workers.quarantined", float64(d.reg.Quarantined()))
	if d.cfg.Chaos != nil {
		for fault, n := range d.cfg.Chaos.Counters() {
			dst.Add("cluster.chaos."+fault, n)
		}
	}
}

// validateWorkerAddr rejects anything but an absolute http(s) URL — a
// garbage addr accepted here would otherwise surface rounds later as
// opaque dispatch failures against a dial string that never could work.
func validateWorkerAddr(addr string) error {
	u, err := url.Parse(addr)
	if err != nil {
		return fmt.Errorf("addr %q: %v", addr, err)
	}
	if (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
		return fmt.Errorf("addr %q: must be an absolute http(s) URL like http://host:port", addr)
	}
	return nil
}

// Mount registers the coordinator's cluster endpoints on mux:
//
//	POST /v1/cluster/register — worker registration/heartbeat/deregister
//	GET  /v1/cluster/workers  — fleet listing
func (d *Dispatcher) Mount(mux *http.ServeMux) {
	mux.HandleFunc("POST /v1/cluster/register", func(rw http.ResponseWriter, r *http.Request) {
		var req RegisterRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.Name == "" {
			writeJSON(rw, http.StatusBadRequest, errorBody{Error: "register needs {name, addr}"})
			return
		}
		if req.Deregister {
			d.reg.Deregister(req.Name)
			d.count("cluster.deregisters", 1)
			writeJSON(rw, http.StatusOK, map[string]string{"status": "deregistered"})
			return
		}
		if err := validateWorkerAddr(req.Addr); err != nil {
			writeJSON(rw, http.StatusBadRequest, errorBody{Error: "register: " + err.Error()})
			return
		}
		if !d.reg.Register(req.Name, req.Addr) {
			d.count("cluster.heartbeats.rejected", 1)
			writeJSON(rw, http.StatusForbidden, errorBody{Error: "worker quarantined; heartbeats ignored until the penalty window ends"})
			return
		}
		d.count("cluster.heartbeats", 1)
		writeJSON(rw, http.StatusOK, map[string]string{"status": "registered"})
	})
	mux.HandleFunc("GET /v1/cluster/workers", func(rw http.ResponseWriter, r *http.Request) {
		writeJSON(rw, http.StatusOK, d.reg.Views())
	})
}

// ForJob returns the grid delegate for one job, or nil when the job
// cannot be distributed (unknown experiment, replayed trace, attached
// observer) — a nil delegate means "run it locally like before".
func (d *Dispatcher) ForJob(experiment string, horizon uint64, opts harness.AttackOpts) harness.GridDelegate {
	if !harness.ValidExperiment(experiment) || !Distributable(opts) {
		return nil
	}
	return &jobDelegate{d: d, experiment: experiment, horizon: horizon, opts: OptsFrom(opts)}
}

// jobDelegate distributes one job's grids. It implements
// harness.GridDelegate: runGrid hands it (spec, n) and restores whatever
// JSON it returns.
type jobDelegate struct {
	d          *Dispatcher
	experiment string
	horizon    uint64
	opts       Opts
}

// batchOutcome is one dispatched batch's result, fed back to the round
// loop: either resp is set (worker names who answered), or err and the
// cells to steal back.
type batchOutcome struct {
	worker Worker
	cells  []int
	resp   *CellResponse
	err    error
}

// gridState is the mutable merge state of one RunGrid call.
type gridState struct {
	spec    harness.GridSpec
	keys    []string
	results map[int]json.RawMessage
	// origin tracks which worker produced each merged-but-unaudited
	// cell, so catching a worker corrupting bytes later purges every
	// cell it ever contributed to this run. Audited, local and cached
	// cells are not tracked — they are trusted. Allocated lazily: the
	// all-cache-hit path must not pay for it.
	origin map[int]string
}

// RunGrid computes every cell of the grid: cache first, then rounds of
// partitioned dispatch across live workers — each batch RPC retried with
// deterministic backoff, hedged to a second worker in the final rounds,
// byte-audited by sample, and stolen back from failed or corrupting
// workers — falling back to in-process execution when no workers are
// live. Results enter the shared cache only after the grid completes, so
// a corrupting worker's bytes never outlive the round that caught them.
// Strict: either all n cells merge, or an error.
func (j *jobDelegate) RunGrid(ctx context.Context, spec harness.GridSpec, n int) (map[int]json.RawMessage, error) {
	d := j.d
	st := &gridState{
		spec:    spec,
		keys:    make([]string, n),
		results: make(map[int]json.RawMessage, n),
	}
	var pending []int
	for i := 0; i < n; i++ {
		st.keys[i] = harness.CellKey(spec, i)
		if raw, ok := d.cache.Get(st.keys[i]); ok {
			st.results[i] = raw
			continue
		}
		pending = append(pending, i)
	}
	if len(pending) < n {
		d.log.Info("cells served from cache", "grid", spec.ID, "hits", n-len(pending), "total", n)
	}

	for round := 0; len(pending) > 0; round++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if round >= d.cfg.MaxRounds {
			return nil, fmt.Errorf("cluster: %d cells still pending after %d dispatch rounds", len(pending), round)
		}
		d.count("cluster.dispatch.rounds", 1)
		live := d.reg.Live()
		if len(live) == 0 {
			// No fleet (or the whole fleet died): the coordinator is
			// always its own worker of last resort.
			d.log.Warn("no live workers, computing locally", "grid", spec.ID, "cells", len(pending))
			if err := j.runLocal(ctx, st, pending); err != nil {
				return nil, err
			}
			pending = nil
			break
		}

		hedge := d.cfg.HedgeRounds > 0 && round >= d.cfg.MaxRounds-d.cfg.HedgeRounds && len(live) > 1
		batches := partition(pending, len(live), d.cfg.BatchSize)
		assignment := assignBatches(len(batches), live)
		outcomes := make(chan batchOutcome, len(batches))
		inflight := 0
		var requeue []int
		for bi, cells := range batches {
			wi := assignment[bi]
			if wi < 0 {
				// Every placeable worker is a probe already holding its
				// one batch; these cells wait for the next round.
				requeue = append(requeue, cells...)
				continue
			}
			w := live[wi]
			var second *Worker
			if hedge && !w.Probe {
				second = hedgeTarget(live, wi)
			}
			inflight++
			go func(w Worker, second *Worker, cells []int) {
				resp, by, err := j.dispatchResilient(ctx, w, second, spec, cells)
				outcomes <- batchOutcome{worker: by, cells: cells, resp: resp, err: err}
			}(w, second, cells)
		}
		for k := 0; k < inflight; k++ {
			out := <-outcomes
			if out.err != nil {
				// Steal the batch back: the breaker has recorded the
				// failure and the cells go into the next round, to
				// another worker or the local fallback.
				d.count("cluster.worker.failures", 1)
				d.count("cluster.cells.stolen", int64(len(out.cells)))
				d.log.Warn("batch failed, stealing cells back",
					"grid", spec.ID, "worker", out.worker.Name, "cells", len(out.cells), "err", out.err)
				requeue = append(requeue, out.cells...)
				continue
			}
			stolen, err := j.mergeBatch(ctx, st, out)
			requeue = append(requeue, stolen...)
			if err != nil {
				return nil, err
			}
		}
		pending = requeue
	}

	for i := 0; i < n; i++ {
		if _, ok := st.results[i]; !ok {
			return nil, fmt.Errorf("cluster: cell %d of %q never computed", i, spec.ID)
		}
	}
	// Commit to the shared cache only now: any worker caught corrupting
	// mid-run has had its cells purged and recomputed above, so nothing
	// unverified-and-suspect persists beyond this grid.
	for i := 0; i < n; i++ {
		d.cache.Put(st.keys[i], st.results[i])
	}
	return st.results, nil
}

// mergeBatch verifies, audits and commits one successful batch response.
// It returns the cells to steal back (a rejected or quarantined batch)
// and a hard error only when the grid itself cannot proceed (the local
// audit executor failed).
func (j *jobDelegate) mergeBatch(ctx context.Context, st *gridState, out batchOutcome) ([]int, error) {
	d := j.d
	if d.reg.IsQuarantined(out.worker.Name) {
		// The worker was quarantined while this response was in flight;
		// nothing it says is trusted anymore.
		d.count("cluster.cells.stolen", int64(len(out.cells)))
		return out.cells, nil
	}
	batch, err := j.verify(st.spec, st.keys, out)
	if err != nil {
		// A verification failure (key/config skew, missing cells) is not
		// retryable on this worker — but another worker or the local
		// fallback may still be healthy.
		d.reg.ReportFailure(out.worker.Name)
		d.count("cluster.worker.failures", 1)
		d.count("cluster.cells.stolen", int64(len(out.cells)))
		d.log.Warn("batch rejected, stealing cells back",
			"grid", st.spec.ID, "worker", out.worker.Name, "err", err)
		return out.cells, nil
	}

	stolen, quarantined, err := j.auditBatch(ctx, st, out, batch)
	if err != nil {
		return nil, err
	}
	if quarantined {
		return stolen, nil
	}

	for _, i := range out.cells {
		st.results[i] = batch[i]
		if !j.auditPick(st.keys[i]) {
			if st.origin == nil {
				st.origin = make(map[int]string)
			}
			st.origin[i] = out.worker.Name
		}
	}
	d.count("cluster.cells.dispatched", int64(len(out.cells)))
	return nil, nil
}

// auditBatch re-executes the batch's deterministic audit sample locally
// and byte-compares. On a mismatch the worker is quarantined, its
// unaudited contributions to this run are purged, and the cells still
// needing recomputation are returned with quarantined=true — the caller
// must NOT commit the batch. quarantined=false means the audit passed
// (or sampled nothing) and the batch is safe to commit.
func (j *jobDelegate) auditBatch(ctx context.Context, st *gridState, out batchOutcome, batch map[int]json.RawMessage) (_ []int, quarantined bool, _ error) {
	d := j.d
	if d.cfg.AuditFraction <= 0 {
		return nil, false, nil
	}
	var sample []int
	for _, i := range out.cells {
		if j.auditPick(st.keys[i]) {
			sample = append(sample, i)
		}
	}
	if len(sample) == 0 {
		return nil, false, nil
	}
	d.count("cluster.cells.audited", int64(len(sample)))
	local, err := j.computeLocal(ctx, st.spec, sample, st.keys)
	if err != nil {
		return nil, false, fmt.Errorf("cluster: audit of %q cells from %s: %w", st.spec.ID, out.worker.Name, err)
	}
	var mismatched []int
	for _, i := range sample {
		if !bytes.Equal(local[i], batch[i]) {
			mismatched = append(mismatched, i)
		}
	}
	if len(mismatched) == 0 {
		return nil, false, nil
	}

	// The worker returned wrong bytes for a cell it claimed to compute:
	// quarantine it (BreakHammer's throttle-the-suspect, applied to
	// nodes) and distrust everything it contributed to this run.
	d.count("cluster.cells.audit_mismatch", int64(len(mismatched)))
	d.count("cluster.worker.quarantined", 1)
	d.reg.Quarantine(out.worker.Name, d.cfg.QuarantineFor)
	d.log.Warn("byte audit failed, quarantining worker",
		"grid", st.spec.ID, "worker", out.worker.Name,
		"mismatched", len(mismatched), "audited", len(sample), "penalty", d.cfg.QuarantineFor)

	var stolen []int
	for _, i := range out.cells {
		if raw, ok := local[i]; ok {
			// The audit already computed the authoritative bytes.
			st.results[i] = raw
			continue
		}
		stolen = append(stolen, i)
	}
	for i, w := range st.origin {
		if w == out.worker.Name {
			delete(st.results, i)
			delete(st.origin, i)
			stolen = append(stolen, i)
		}
	}
	d.count("cluster.cells.stolen", int64(len(stolen)))
	return stolen, true, nil
}

// auditPick reports whether the audit samples this cell: an FNV-64a of
// (cell key, audit seed) mapped to [0,1) against AuditFraction — a
// deterministic per-cell coin that every round and every job flips the
// same way.
func (j *jobDelegate) auditPick(key string) bool {
	f := j.d.cfg.AuditFraction
	if f <= 0 {
		return false
	}
	if f >= 1 {
		return true
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|audit=%d", key, j.d.cfg.AuditSeed)
	return float64(h.Sum64()>>11)/(1<<53) < f
}

// dispatchResilient runs one batch against w with bounded retries, and —
// when hedging is on for the round — races a second attempt on another
// worker after a head start. The first verified transport-level success
// wins; cells are idempotent, so the losing response is discarded.
func (j *jobDelegate) dispatchResilient(ctx context.Context, w Worker, second *Worker, spec harness.GridSpec, cells []int) (*CellResponse, Worker, error) {
	d := j.d
	if second == nil {
		resp, err := j.dispatchRetry(ctx, w, spec, cells)
		return resp, w, err
	}
	type leg struct {
		resp *CellResponse
		w    Worker
		err  error
	}
	ch := make(chan leg, 2)
	launch := func(lw Worker) {
		go func() {
			resp, err := j.dispatchRetry(ctx, lw, spec, cells)
			ch <- leg{resp: resp, w: lw, err: err}
		}()
	}
	launch(w)
	timer := time.NewTimer(d.cfg.HedgeDelay)
	defer timer.Stop()
	hedged := false
	outstanding := 1
	var firstErr error
	for {
		select {
		case <-timer.C:
			if !hedged {
				hedged = true
				outstanding++
				d.count("cluster.batches.hedged", 1)
				d.log.Info("hedging straggler batch", "grid", spec.ID,
					"primary", w.Name, "hedge", second.Name, "cells", len(cells))
				launch(*second)
			}
		case l := <-ch:
			if l.err == nil {
				if hedged && l.w.Name == second.Name {
					d.count("cluster.hedge.wins", 1)
				}
				return l.resp, l.w, nil
			}
			if firstErr == nil {
				firstErr = l.err
			}
			outstanding--
			if !hedged {
				// The primary failed before the hedge delay: fire the
				// hedge immediately rather than waiting out the timer.
				hedged = true
				outstanding++
				d.count("cluster.batches.hedged", 1)
				launch(*second)
				continue
			}
			if outstanding == 0 {
				return nil, w, firstErr
			}
		case <-ctx.Done():
			return nil, w, ctx.Err()
		}
	}
}

// dispatchRetry attempts one batch RPC against one worker up to
// 1+RPCRetries times, sleeping the deterministic harness backoff keyed
// by (grid, worker, batch) between attempts. Breaker accounting is one
// signal per exhausted sequence, not per attempt — retries exist
// precisely so a transient hiccup is absorbed before the breaker hears
// about anything.
func (j *jobDelegate) dispatchRetry(ctx context.Context, w Worker, spec harness.GridSpec, cells []int) (*CellResponse, error) {
	d := j.d
	key := fmt.Sprintf("%s|%s|%d", spec.ID, w.Name, cells[0])
	var lastErr error
	for attempt := 1; ; attempt++ {
		resp, err := j.dispatch(ctx, w, spec, cells)
		if err == nil {
			d.reg.ReportSuccess(w.Name)
			return resp, nil
		}
		lastErr = err
		if !retryable(err) || attempt > d.cfg.RPCRetries {
			break
		}
		d.count("cluster.rpc.retries", 1)
		d.log.Info("batch RPC retrying", "grid", spec.ID, "worker", w.Name,
			"attempt", attempt, "err", err)
		if !sleepBackoff(ctx, harness.Backoff(d.cfg.RetryBase, key, attempt)) {
			break
		}
	}
	d.reg.ReportFailure(w.Name)
	return nil, lastErr
}

// sleepBackoff sleeps d, aborting early on cancellation; reports whether
// the retry should proceed.
func sleepBackoff(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// statusError is a non-2xx worker reply, kept typed so the retry loop
// can tell a transient server failure from a semantic rejection.
type statusError struct {
	status int
	msg    string
}

func (e *statusError) Error() string { return e.msg }

// retryable reports whether another attempt at the same worker could
// plausibly succeed: transport-level failures (drops, resets, truncated
// bodies, timeouts) and 5xx replies are transient; a 4xx is the worker
// telling us the request itself is wrong, and repeating it is noise.
func retryable(err error) bool {
	var se *statusError
	if errors.As(err, &se) {
		return se.status >= 500
	}
	return true
}

// hedgeTarget picks the hedge worker for a batch assigned to live[wi]:
// the next distinct non-probe worker in the stable round order, nil when
// none exists.
func hedgeTarget(live []Worker, wi int) *Worker {
	for off := 1; off < len(live); off++ {
		c := live[(wi+off)%len(live)]
		if c.Probe || c.Name == live[wi].Name {
			continue
		}
		return &c
	}
	return nil
}

// assignBatches maps each batch to a live-worker index round-robin, with
// half-open (probe) workers capped at one batch — the breaker's contract
// is that a probation worker proves itself on one batch, not a full
// share. A batch that cannot be placed gets -1 and waits for the next
// round.
func assignBatches(n int, live []Worker) []int {
	out := make([]int, n)
	used := make([]int, len(live))
	next := 0
	for b := 0; b < n; b++ {
		out[b] = -1
		for tries := 0; tries < len(live); tries++ {
			wi := next % len(live)
			next++
			if live[wi].Probe && used[wi] >= 1 {
				continue
			}
			used[wi]++
			out[b] = wi
			break
		}
	}
	return out
}

// dispatch sends one batch to one worker under the per-batch deadline,
// grafting the worker's spans into the job's trace on success.
func (j *jobDelegate) dispatch(ctx context.Context, w Worker, spec harness.GridSpec, cells []int) (*CellResponse, error) {
	d := j.d
	dctx, cancel := context.WithTimeout(ctx, d.cfg.DispatchTimeout)
	defer cancel()
	dctx, span := telemetry.StartSpan(dctx, "dispatch:"+w.Name)
	span.SetAttrs(
		telemetry.String("worker", w.Name),
		telemetry.Int("cells", int64(len(cells))),
	)
	req := CellRequest{
		Experiment: j.experiment,
		Horizon:    j.horizon,
		Opts:       j.opts,
		Grid:       spec.ID,
		Config:     spec.Config,
		Cells:      cells,
		Epoch:      sim.DeterminismEpoch,
	}
	if sc := telemetry.ScopeFrom(dctx); sc != nil && sc.Tracer != nil {
		req.TraceID = sc.Tracer.ID().String()
	}
	resp, err := j.call(dctx, w.Addr, req)
	if err != nil {
		span.EndErr(err)
		return nil, err
	}
	if sc := telemetry.ScopeFrom(dctx); sc != nil && sc.Tracer != nil {
		sc.Tracer.ImportRemote(span.ID(), resp.Spans)
	}
	span.End()
	return resp, nil
}

// call performs the HTTP RPC.
func (j *jobDelegate) call(ctx context.Context, addr string, req CellRequest) (*CellResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, addr+"/v1/cells", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	hresp, err := j.d.client.Do(hreq)
	if err != nil {
		return nil, err
	}
	defer hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		var eb errorBody
		msg, _ := io.ReadAll(io.LimitReader(hresp.Body, 4096))
		if json.Unmarshal(msg, &eb) == nil && eb.Error != "" {
			return nil, &statusError{status: hresp.StatusCode, msg: "cluster: worker: " + eb.Error}
		}
		return nil, &statusError{status: hresp.StatusCode,
			msg: fmt.Sprintf("cluster: worker status %d: %s", hresp.StatusCode, bytes.TrimSpace(msg))}
	}
	var resp CellResponse
	if err := json.NewDecoder(hresp.Body).Decode(&resp); err != nil {
		return nil, fmt.Errorf("cluster: worker response: %w", err)
	}
	return &resp, nil
}

// verify checks one batch response — every requested cell present, each
// echoed key matching the coordinator's content address, config string
// identical — and returns the per-cell raw results. A key mismatch means
// the nodes disagree about what the cell even is (epoch/config/seed
// drift) and the batch is rejected whole.
func (j *jobDelegate) verify(spec harness.GridSpec, keys []string, out batchOutcome) (map[int]json.RawMessage, error) {
	if out.resp.Config != "" && out.resp.Config != spec.Config {
		return nil, fmt.Errorf("config skew: coordinator %q, worker %q", spec.Config, out.resp.Config)
	}
	got := make(map[int]CellResult, len(out.resp.Cells))
	for _, c := range out.resp.Cells {
		got[c.Index] = c
	}
	batch := make(map[int]json.RawMessage, len(out.cells))
	for _, i := range out.cells {
		c, ok := got[i]
		if !ok {
			return nil, fmt.Errorf("cell %d missing from response", i)
		}
		if c.Key != keys[i] {
			return nil, fmt.Errorf("cell %d key mismatch: want %s, got %s (epoch/seed/config skew)", i, keys[i], c.Key)
		}
		if len(c.Result) == 0 {
			return nil, fmt.Errorf("cell %d has empty result", i)
		}
		batch[i] = c.Result
	}
	return batch, nil
}

// computeLocal runs the given cells in-process through the same capture
// mechanism a worker uses — identical code path, identical bytes — with
// the delegate shadowed so the run cannot recurse into dispatch. It is
// both the no-fleet fallback and the audit's authoritative executor.
func (j *jobDelegate) computeLocal(ctx context.Context, spec harness.GridSpec, cells []int, keys []string) (map[int]json.RawMessage, error) {
	capture := harness.NewCellCapture(spec.ID, cells)
	lctx := harness.WithCellCapture(harness.WithoutGridDelegate(ctx), capture)
	_, runErr := harness.Experiment(lctx, j.experiment, j.horizon, j.opts.Attack())
	if err := capture.Err(); err != nil {
		return nil, err
	}
	got := capture.Results()
	out := make(map[int]json.RawMessage, len(cells))
	for _, i := range cells {
		c, ok := got[i]
		if !ok {
			if runErr != nil {
				return nil, fmt.Errorf("cluster: local cell %d: %w", i, runErr)
			}
			return nil, fmt.Errorf("cluster: local cell %d never computed", i)
		}
		if c.Key != keys[i] {
			return nil, fmt.Errorf("cluster: local cell %d key mismatch: want %s, got %s", i, keys[i], c.Key)
		}
		out[i] = c.Result
	}
	return out, nil
}

// runLocal computes cells in-process and merges them as trusted results.
func (j *jobDelegate) runLocal(ctx context.Context, st *gridState, cells []int) error {
	local, err := j.computeLocal(ctx, st.spec, cells, st.keys)
	if err != nil {
		return err
	}
	for _, i := range cells {
		st.results[i] = local[i]
	}
	j.d.count("cluster.cells.local", int64(len(cells)))
	return nil
}

// partition splits cells into batches of at most batchSize, sized so one
// round spreads the work across all workers: ceil(len/workers) capped at
// batchSize.
func partition(cells []int, workers, batchSize int) [][]int {
	if len(cells) == 0 {
		return nil
	}
	size := (len(cells) + workers - 1) / workers
	if size > batchSize {
		size = batchSize
	}
	if size < 1 {
		size = 1
	}
	var out [][]int
	for start := 0; start < len(cells); start += size {
		end := start + size
		if end > len(cells) {
			end = len(cells)
		}
		out = append(out, cells[start:end])
	}
	return out
}
