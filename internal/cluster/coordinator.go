package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sync"
	"time"

	"hammertime/internal/harness"
	"hammertime/internal/sim"
	"hammertime/internal/telemetry"
)

// DispatcherConfig parametrizes a Dispatcher. The zero value works:
// memory-only cache, 15s worker TTL, 2m per-batch deadline.
type DispatcherConfig struct {
	// Cache fronts dispatch (nil = a fresh 64 MiB memory-only cache).
	Cache *ResultCache
	// Registry tracks the worker fleet (nil = a fresh 15s-TTL registry).
	Registry *Registry
	// Client performs worker RPCs (nil = http.DefaultClient).
	Client *http.Client
	// DispatchTimeout bounds one batch RPC; a batch that misses it is
	// stolen back and re-dispatched (0 = 2m).
	DispatchTimeout time.Duration
	// BatchSize caps the cells per RPC (0 = 4). Smaller batches steal
	// back less work when a worker dies mid-run.
	BatchSize int
	// MaxRounds bounds the dispatch-steal-redispatch loop (0 = 8); the
	// local fallback makes the final round when workers keep dying.
	MaxRounds int
	// Log receives dispatch logs (nil = silent).
	Log *slog.Logger
}

// Dispatcher is the coordinator's long-lived half: the result cache, the
// worker registry, and the counters. Per-job delegates from ForJob share
// them, so a cell computed for one job serves every later job that needs
// the same key.
type Dispatcher struct {
	cache  *ResultCache
	reg    *Registry
	client *http.Client
	cfg    DispatcherConfig
	log    *slog.Logger

	statsMu sync.Mutex
	stats   sim.Stats
}

// NewDispatcher builds a dispatcher, filling config defaults.
func NewDispatcher(cfg DispatcherConfig) *Dispatcher {
	d := &Dispatcher{cache: cfg.Cache, reg: cfg.Registry, client: cfg.Client, cfg: cfg}
	if d.cache == nil {
		d.cache = NewResultCache(0)
	}
	if d.reg == nil {
		d.reg = NewRegistry(0)
	}
	if d.client == nil {
		d.client = http.DefaultClient
	}
	if d.cfg.DispatchTimeout <= 0 {
		d.cfg.DispatchTimeout = 2 * time.Minute
	}
	if d.cfg.BatchSize <= 0 {
		d.cfg.BatchSize = 4
	}
	if d.cfg.MaxRounds <= 0 {
		d.cfg.MaxRounds = 8
	}
	d.log = telemetry.OrNop(cfg.Log)
	return d
}

// Registry returns the worker registry (for HTTP registration wiring).
func (d *Dispatcher) Registry() *Registry { return d.reg }

// Cache returns the result cache.
func (d *Dispatcher) Cache() *ResultCache { return d.cache }

func (d *Dispatcher) count(name string, delta int64) {
	d.statsMu.Lock()
	d.stats.Add(name, delta)
	d.statsMu.Unlock()
}

// MergeInto folds the dispatcher's counters and point-in-time gauges
// into dst — the serve layer's ExtraMetrics hook, so cluster state rides
// the same /metrics exposition as the job counters. dst must be a fresh
// scratch Stats (the serve layer rebuilds one per snapshot): lifetime
// cache counters are added whole, not as deltas.
func (d *Dispatcher) MergeInto(dst *sim.Stats) {
	d.statsMu.Lock()
	dst.Merge(&d.stats)
	d.statsMu.Unlock()
	hits, misses, evicted := d.cache.Counters()
	dst.Add("cluster.cache.hits", hits)
	dst.Add("cluster.cache.misses", misses)
	dst.Add("cluster.cache.evicted", evicted)
	dst.SetGauge("cluster.cache.bytes", float64(d.cache.Bytes()))
	dst.SetGauge("cluster.cache.entries", float64(d.cache.Len()))
	dst.SetGauge("cluster.workers.live", float64(len(d.reg.Live())))
}

// Mount registers the coordinator's cluster endpoints on mux:
//
//	POST /v1/cluster/register — worker registration/heartbeat
//	GET  /v1/cluster/workers  — fleet listing
func (d *Dispatcher) Mount(mux *http.ServeMux) {
	mux.HandleFunc("POST /v1/cluster/register", func(rw http.ResponseWriter, r *http.Request) {
		var req RegisterRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.Name == "" || req.Addr == "" {
			writeJSON(rw, http.StatusBadRequest, errorBody{Error: "register needs {name, addr}"})
			return
		}
		d.reg.Register(req.Name, req.Addr)
		d.count("cluster.heartbeats", 1)
		writeJSON(rw, http.StatusOK, map[string]string{"status": "registered"})
	})
	mux.HandleFunc("GET /v1/cluster/workers", func(rw http.ResponseWriter, r *http.Request) {
		writeJSON(rw, http.StatusOK, d.reg.Views())
	})
}

// ForJob returns the grid delegate for one job, or nil when the job
// cannot be distributed (unknown experiment, replayed trace, attached
// observer) — a nil delegate means "run it locally like before".
func (d *Dispatcher) ForJob(experiment string, horizon uint64, opts harness.AttackOpts) harness.GridDelegate {
	if !harness.ValidExperiment(experiment) || !Distributable(opts) {
		return nil
	}
	return &jobDelegate{d: d, experiment: experiment, horizon: horizon, opts: OptsFrom(opts)}
}

// jobDelegate distributes one job's grids. It implements
// harness.GridDelegate: runGrid hands it (spec, n) and restores whatever
// JSON it returns.
type jobDelegate struct {
	d          *Dispatcher
	experiment string
	horizon    uint64
	opts       Opts
}

// batchOutcome is one dispatched batch's result, fed back to the round
// loop: either resp is set, or err and the cells to steal back.
type batchOutcome struct {
	worker Worker
	cells  []int
	resp   *CellResponse
	err    error
}

// RunGrid computes every cell of the grid: cache first, then rounds of
// partitioned dispatch across live workers with failed batches stolen
// back and re-dispatched, falling back to in-process execution when no
// workers are live. Strict: either all n cells merge, or an error.
func (j *jobDelegate) RunGrid(ctx context.Context, spec harness.GridSpec, n int) (map[int]json.RawMessage, error) {
	d := j.d
	results := make(map[int]json.RawMessage, n)
	keys := make([]string, n)
	var pending []int
	for i := 0; i < n; i++ {
		keys[i] = harness.CellKey(spec, i)
		if raw, ok := d.cache.Get(keys[i]); ok {
			results[i] = raw
			continue
		}
		pending = append(pending, i)
	}
	if len(pending) < n {
		d.log.Info("cells served from cache", "grid", spec.ID, "hits", n-len(pending), "total", n)
	}

	for round := 0; len(pending) > 0; round++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if round >= d.cfg.MaxRounds {
			return nil, fmt.Errorf("cluster: %d cells still pending after %d dispatch rounds", len(pending), round)
		}
		live := d.reg.Live()
		if len(live) == 0 {
			// No fleet (or the whole fleet died): the coordinator is
			// always its own worker of last resort.
			d.log.Warn("no live workers, computing locally", "grid", spec.ID, "cells", len(pending))
			if err := j.runLocal(ctx, spec, pending, keys, results); err != nil {
				return nil, err
			}
			pending = nil
			break
		}

		batches := partition(pending, len(live), d.cfg.BatchSize)
		outcomes := make(chan batchOutcome, len(batches))
		var wg sync.WaitGroup
		for bi, cells := range batches {
			w := live[bi%len(live)]
			wg.Add(1)
			go func(w Worker, cells []int) {
				defer wg.Done()
				resp, err := j.dispatch(ctx, w, spec, cells)
				outcomes <- batchOutcome{worker: w, cells: cells, resp: resp, err: err}
			}(w, cells)
		}
		wg.Wait()
		close(outcomes)

		var requeue []int
		for out := range outcomes {
			if out.err != nil {
				// Steal the batch back: the worker is marked dead until
				// its next heartbeat and the cells go into the next
				// round, to another worker or the local fallback.
				d.reg.Fail(out.worker.Name)
				d.count("cluster.worker.failures", 1)
				d.count("cluster.cells.stolen", int64(len(out.cells)))
				d.log.Warn("batch failed, stealing cells back",
					"grid", spec.ID, "worker", out.worker.Name, "cells", len(out.cells), "err", out.err)
				requeue = append(requeue, out.cells...)
				continue
			}
			if err := j.merge(spec, keys, out, results); err != nil {
				// A verification failure (key/config skew) is not
				// retryable on this worker — but another worker or the
				// local fallback may still be healthy.
				d.reg.Fail(out.worker.Name)
				d.count("cluster.worker.failures", 1)
				d.count("cluster.cells.stolen", int64(len(out.cells)))
				d.log.Warn("batch rejected, stealing cells back",
					"grid", spec.ID, "worker", out.worker.Name, "err", err)
				requeue = append(requeue, out.cells...)
				continue
			}
			d.count("cluster.cells.dispatched", int64(len(out.cells)))
		}
		pending = requeue
	}

	for i := 0; i < n; i++ {
		if _, ok := results[i]; !ok {
			return nil, fmt.Errorf("cluster: cell %d of %q never computed", i, spec.ID)
		}
	}
	return results, nil
}

// dispatch sends one batch to one worker under the per-batch deadline,
// grafting the worker's spans into the job's trace on success.
func (j *jobDelegate) dispatch(ctx context.Context, w Worker, spec harness.GridSpec, cells []int) (*CellResponse, error) {
	d := j.d
	dctx, cancel := context.WithTimeout(ctx, d.cfg.DispatchTimeout)
	defer cancel()
	dctx, span := telemetry.StartSpan(dctx, "dispatch:"+w.Name)
	span.SetAttrs(
		telemetry.String("worker", w.Name),
		telemetry.Int("cells", int64(len(cells))),
	)
	req := CellRequest{
		Experiment: j.experiment,
		Horizon:    j.horizon,
		Opts:       j.opts,
		Grid:       spec.ID,
		Config:     spec.Config,
		Cells:      cells,
		Epoch:      sim.DeterminismEpoch,
	}
	if sc := telemetry.ScopeFrom(dctx); sc != nil && sc.Tracer != nil {
		req.TraceID = sc.Tracer.ID().String()
	}
	resp, err := j.call(dctx, w.Addr, req)
	if err != nil {
		span.EndErr(err)
		return nil, err
	}
	if sc := telemetry.ScopeFrom(dctx); sc != nil && sc.Tracer != nil {
		sc.Tracer.ImportRemote(span.ID(), resp.Spans)
	}
	span.End()
	return resp, nil
}

// call performs the HTTP RPC.
func (j *jobDelegate) call(ctx context.Context, addr string, req CellRequest) (*CellResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, addr+"/v1/cells", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	hresp, err := j.d.client.Do(hreq)
	if err != nil {
		return nil, err
	}
	defer hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		var eb errorBody
		msg, _ := io.ReadAll(io.LimitReader(hresp.Body, 4096))
		if json.Unmarshal(msg, &eb) == nil && eb.Error != "" {
			return nil, fmt.Errorf("cluster: worker: %s", eb.Error)
		}
		return nil, fmt.Errorf("cluster: worker status %d: %s", hresp.StatusCode, bytes.TrimSpace(msg))
	}
	var resp CellResponse
	if err := json.NewDecoder(hresp.Body).Decode(&resp); err != nil {
		return nil, fmt.Errorf("cluster: worker response: %w", err)
	}
	return &resp, nil
}

// merge verifies one batch response — every requested cell present, each
// echoed key matching the coordinator's content address, config string
// identical — and folds the cells into results and the cache. A key
// mismatch means the nodes disagree about what the cell even is
// (epoch/seed/config drift) and the batch is rejected whole.
func (j *jobDelegate) merge(spec harness.GridSpec, keys []string, out batchOutcome, results map[int]json.RawMessage) error {
	if out.resp.Config != "" && out.resp.Config != spec.Config {
		return fmt.Errorf("config skew: coordinator %q, worker %q", spec.Config, out.resp.Config)
	}
	got := make(map[int]CellResult, len(out.resp.Cells))
	for _, c := range out.resp.Cells {
		got[c.Index] = c
	}
	for _, i := range out.cells {
		c, ok := got[i]
		if !ok {
			return fmt.Errorf("cell %d missing from response", i)
		}
		if c.Key != keys[i] {
			return fmt.Errorf("cell %d key mismatch: want %s, got %s (epoch/seed/config skew)", i, keys[i], c.Key)
		}
		if len(c.Result) == 0 {
			return fmt.Errorf("cell %d has empty result", i)
		}
	}
	for _, i := range out.cells {
		results[i] = got[i].Result
		j.d.cache.Put(keys[i], got[i].Result)
	}
	return nil
}

// runLocal computes cells in-process through the same capture mechanism
// a worker uses — identical code path, identical bytes — with the
// delegate shadowed so the run cannot recurse into dispatch.
func (j *jobDelegate) runLocal(ctx context.Context, spec harness.GridSpec, cells []int, keys []string, results map[int]json.RawMessage) error {
	capture := harness.NewCellCapture(spec.ID, cells)
	lctx := harness.WithCellCapture(harness.WithoutGridDelegate(ctx), capture)
	_, runErr := harness.Experiment(lctx, j.experiment, j.horizon, j.opts.Attack())
	if err := capture.Err(); err != nil {
		return err
	}
	got := capture.Results()
	for _, i := range cells {
		c, ok := got[i]
		if !ok {
			if runErr != nil {
				return fmt.Errorf("cluster: local cell %d: %w", i, runErr)
			}
			return fmt.Errorf("cluster: local cell %d never computed", i)
		}
		if c.Key != keys[i] {
			return fmt.Errorf("cluster: local cell %d key mismatch: want %s, got %s", i, keys[i], c.Key)
		}
		results[i] = c.Result
		j.d.cache.Put(keys[i], c.Result)
	}
	j.d.count("cluster.cells.local", int64(len(cells)))
	return nil
}

// partition splits cells into batches of at most batchSize, sized so one
// round spreads the work across all workers: ceil(len/workers) capped at
// batchSize.
func partition(cells []int, workers, batchSize int) [][]int {
	if len(cells) == 0 {
		return nil
	}
	size := (len(cells) + workers - 1) / workers
	if size > batchSize {
		size = batchSize
	}
	if size < 1 {
		size = 1
	}
	var out [][]int
	for start := 0; start < len(cells); start += size {
		end := start + size
		if end > len(cells) {
			end = len(cells)
		}
		out = append(out, cells[start:end])
	}
	return out
}
