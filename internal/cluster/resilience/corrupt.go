package resilience

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strconv"
	"sync"

	"hammertime/internal/sim"
)

// CorruptCellResults wraps a worker's HTTP handler into a Byzantine
// worker: with probability p per computed cell it rewrites the cell's
// result bytes — first decimal digit bumped by one — while leaving the
// response shape, the echoed content keys and the config string intact.
// The corruption therefore passes every transport- and key-level check
// the coordinator runs; only a byte audit (re-executing the cell and
// comparing results) can catch it, which is exactly what the corrupt-
// result quarantine exists to do. Draws come from a seeded RNG under a
// mutex, so a given seed corrupts a reproducible subsequence of cells.
//
// Paths other than POST /v1/cells pass through untouched. This is a
// fault-injection device for soak tests and the CI chaos job (the
// -chaos-corrupt-results worker flag); it has no production use.
func CorruptCellResults(inner http.Handler, seed uint64, p float64) http.Handler {
	rng := sim.NewRNG(seed)
	var mu sync.Mutex
	return http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost || r.URL.Path != "/v1/cells" {
			inner.ServeHTTP(rw, r)
			return
		}
		buf := &bufferedResponse{header: make(http.Header), status: http.StatusOK}
		inner.ServeHTTP(buf, r)
		body := buf.body.Bytes()
		if buf.status == http.StatusOK {
			if mutated, changed := corruptResponse(body, rng, &mu, p); changed {
				body = mutated
			}
		}
		h := rw.Header()
		for k, v := range buf.header {
			h[k] = v
		}
		h.Set("Content-Length", strconv.Itoa(len(body)))
		rw.WriteHeader(buf.status)
		rw.Write(body)
	})
}

// corruptResponse rewrites a CellResponse body, bumping a digit in each
// rolled cell's result. Returns the mutated body and whether anything
// changed. Structurally generic — a map of raw JSON — so it tracks the
// wire format without importing it (the cluster package imports this
// one).
func corruptResponse(body []byte, rng *sim.RNG, mu *sync.Mutex, p float64) ([]byte, bool) {
	var resp map[string]json.RawMessage
	if json.Unmarshal(body, &resp) != nil {
		return body, false
	}
	var cells []map[string]json.RawMessage
	if json.Unmarshal(resp["cells"], &cells) != nil {
		return body, false
	}
	changed := false
	for _, cell := range cells {
		mu.Lock()
		roll := rng.Bool(p)
		mu.Unlock()
		if !roll {
			continue
		}
		if mutated, ok := bumpDigit(cell["result"]); ok {
			cell["result"] = mutated
			changed = true
		}
	}
	if !changed {
		return body, false
	}
	rawCells, err := json.Marshal(cells)
	if err != nil {
		return body, false
	}
	resp["cells"] = rawCells
	out, err := json.Marshal(resp)
	if err != nil {
		return body, false
	}
	return out, true
}

// bumpDigit replaces the first decimal digit in raw with (digit+1)%10 —
// a wrong number in an otherwise perfectly well-formed result.
func bumpDigit(raw json.RawMessage) (json.RawMessage, bool) {
	i := bytes.IndexFunc(raw, func(r rune) bool { return r >= '0' && r <= '9' })
	if i < 0 {
		return raw, false
	}
	out := append(json.RawMessage(nil), raw...)
	out[i] = '0' + (out[i]-'0'+1)%10
	return out, true
}

// bufferedResponse captures a handler's response for post-processing.
type bufferedResponse struct {
	header http.Header
	status int
	body   bytes.Buffer
}

func (b *bufferedResponse) Header() http.Header { return b.header }

func (b *bufferedResponse) WriteHeader(status int) { b.status = status }

func (b *bufferedResponse) Write(p []byte) (int, error) { return b.body.Write(p) }
