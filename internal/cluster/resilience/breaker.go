package resilience

import "time"

// BreakerConfig parametrizes a circuit breaker. The zero value works:
// trip after 3 consecutive failures, probe again after 10s.
type BreakerConfig struct {
	// Threshold is the consecutive-failure count that opens the breaker
	// (0 = 3).
	Threshold int
	// Cooldown is how long an open breaker waits before half-opening for
	// a probe (0 = 10s).
	Cooldown time.Duration
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Threshold <= 0 {
		c.Threshold = 3
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 10 * time.Second
	}
	return c
}

// State is a breaker's position.
type State int

const (
	// Closed: traffic flows; failures are counted.
	Closed State = iota
	// Open: no traffic; the cooldown is running.
	Open
	// HalfOpen: one probe batch may flow; its outcome decides.
	HalfOpen
)

func (s State) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	}
	return "unknown"
}

// Breaker is the classic closed → open → half-open circuit breaker, as a
// pure state machine over injected timestamps: every transition is a
// function of (current state, event, now), never of wall clock read
// internally — which keeps registry tests clock-free and deterministic.
//
// It is NOT internally synchronized; the owner (cluster.Registry holds
// one per worker) serializes calls under its own lock.
type Breaker struct {
	cfg      BreakerConfig
	state    State
	fails    int
	openedAt time.Time
}

// NewBreaker builds a closed breaker.
func NewBreaker(cfg BreakerConfig) *Breaker {
	return &Breaker{cfg: cfg.withDefaults()}
}

// State resolves and returns the breaker's state at now: an open breaker
// whose cooldown has elapsed becomes half-open.
func (b *Breaker) State(now time.Time) State {
	if b.state == Open && !now.Before(b.openedAt.Add(b.cfg.Cooldown)) {
		b.state = HalfOpen
	}
	return b.state
}

// Failure records a failed exchange: a closed breaker trips at the
// threshold; a half-open probe failure re-opens immediately (the
// cooldown restarts from now).
func (b *Breaker) Failure(now time.Time) {
	b.fails++
	switch b.State(now) {
	case HalfOpen:
		b.state = Open
		b.openedAt = now
	case Closed:
		if b.fails >= b.cfg.Threshold {
			b.state = Open
			b.openedAt = now
		}
	}
}

// Success records a verified exchange: a half-open probe success closes
// the breaker; any success resets the consecutive-failure count.
func (b *Breaker) Success(now time.Time) {
	if b.State(now) == HalfOpen {
		b.state = Closed
	}
	if b.state == Closed {
		b.fails = 0
	}
}

// ForceOpen opens the breaker so it stays open until reopenAt, then
// half-opens for a probe — the quarantine shape: a worker caught
// returning corrupt bytes serves its penalty, then must pass a probe
// batch before rejoining.
func (b *Breaker) ForceOpen(reopenAt time.Time) {
	b.state = Open
	b.fails = b.cfg.Threshold
	b.openedAt = reopenAt.Add(-b.cfg.Cooldown)
}
