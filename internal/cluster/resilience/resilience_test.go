package resilience

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// countingHandler echoes a fixed JSON body and counts hits.
type countingHandler struct {
	hits int
	body string
}

func (h *countingHandler) ServeHTTP(rw http.ResponseWriter, r *http.Request) {
	h.hits++
	io.Copy(io.Discard, r.Body)
	rw.Header().Set("Content-Type", "application/json")
	fmt.Fprint(rw, h.body)
}

// runSchedule drives n identical calls through a fresh transport with
// the given seed and returns the fault schedule.
func runSchedule(t *testing.T, spec Spec, seed uint64, n int) []FaultRecord {
	t.Helper()
	h := &countingHandler{body: `{"ok":true,"n":123456}`}
	srv := httptest.NewServer(h)
	defer srv.Close()
	client := &http.Client{Transport: NewTransport(nil, spec, seed)}
	for i := 0; i < n; i++ {
		resp, err := client.Post(srv.URL+"/v1/cells", "application/json", strings.NewReader(`{"x":1}`))
		if err != nil {
			continue // injected drop/partition
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	tr := client.Transport.(*Transport)
	if got := tr.Calls(); got < uint64(n) {
		t.Fatalf("transport saw %d calls, want >= %d", got, n)
	}
	return tr.Schedule()
}

func TestTransportScheduleDeterministic(t *testing.T) {
	spec, err := ParseSpec("drop:0.2,delay=1ms:0.3,dup:0.1,truncate:0.1,corrupt:0.1,spike=1ms@5-8")
	if err != nil {
		t.Fatal(err)
	}
	a := runSchedule(t, spec, 42, 40)
	b := runSchedule(t, spec, 42, 40)
	if len(a) == 0 {
		t.Fatal("no faults injected at these probabilities over 40 calls")
	}
	// The schedule is a pure function of (seed, call index): two runs
	// against different servers (different hosts/ports) agree on every
	// (call, fault) pair.
	if len(a) != len(b) {
		t.Fatalf("schedule lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Call != b[i].Call || a[i].Fault != b[i].Fault {
			t.Fatalf("schedule diverged at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	c := runSchedule(t, spec, 43, 40)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i].Call != c[i].Call || a[i].Fault != c[i].Fault {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced the identical fault schedule")
	}
}

func TestTransportPartitionWindow(t *testing.T) {
	h := &countingHandler{body: `{}`}
	srv := httptest.NewServer(h)
	defer srv.Close()
	host := strings.TrimPrefix(srv.URL, "http://")
	spec := Spec{Partitions: []Partition{{Host: host, From: 2, To: 4}}}
	client := &http.Client{Transport: NewTransport(nil, spec, 1)}
	var failures []int
	for i := 0; i < 6; i++ {
		resp, err := client.Get(srv.URL + "/x")
		if err != nil {
			failures = append(failures, i)
			continue
		}
		resp.Body.Close()
	}
	if len(failures) != 2 || failures[0] != 2 || failures[1] != 3 {
		t.Fatalf("partition hit calls %v, want [2 3]", failures)
	}
	tr := client.Transport.(*Transport)
	if got := tr.Counters()["partitioned"]; got != 2 {
		t.Fatalf("partitioned counter %d, want 2", got)
	}
}

func TestTransportDuplicateDelivers(t *testing.T) {
	h := &countingHandler{body: `{}`}
	srv := httptest.NewServer(h)
	defer srv.Close()
	client := &http.Client{Transport: NewTransport(nil, Spec{DupP: 1}, 1)}
	resp, err := client.Post(srv.URL+"/v1/cells", "application/json", strings.NewReader(`{"x":1}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if h.hits != 2 {
		t.Fatalf("server saw %d requests, want 2 (original + duplicate)", h.hits)
	}
}

func TestTransportTruncateBreaksDecode(t *testing.T) {
	h := &countingHandler{body: `{"payload":"` + strings.Repeat("x", 256) + `"}`}
	srv := httptest.NewServer(h)
	defer srv.Close()
	client := &http.Client{Transport: NewTransport(nil, Spec{TruncateP: 1}, 1)}
	resp, err := client.Get(srv.URL + "/x")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&v); err == nil {
		t.Fatal("truncated body decoded cleanly")
	}
}

func TestParseSpecRoundTripAndErrors(t *testing.T) {
	good := "drop:0.1,delay=20ms:0.3,dup:0.05,truncate:0.05,corrupt:0.05,spike=80ms@10-30,partition=w2@40-60"
	spec, err := ParseSpec(good)
	if err != nil {
		t.Fatal(err)
	}
	if !spec.Enabled() {
		t.Fatal("parsed spec reports disabled")
	}
	if spec.String() != good {
		t.Fatalf("round trip: %q -> %q", good, spec.String())
	}
	if s, err := ParseSpec(""); err != nil || s.Enabled() {
		t.Fatalf("empty spec: %v %v", s, err)
	}
	for _, bad := range []string{
		"drop:2",           // probability out of range
		"drop",             // missing probability
		"warp:0.5",         // unknown fault
		"delay=xx:0.5",     // bad duration
		"spike=80ms",       // missing window
		"spike=80ms@9-3",   // inverted window
		"partition=@10-20", // empty host
		"partition=w2@a-b", // non-numeric window
	} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted", bad)
		}
	}
}

func TestBreakerTransitions(t *testing.T) {
	t0 := time.Unix(1000, 0)
	b := NewBreaker(BreakerConfig{Threshold: 3, Cooldown: 10 * time.Second})

	// Failures below the threshold keep it closed; a success resets.
	b.Failure(t0)
	b.Failure(t0)
	if got := b.State(t0); got != Closed {
		t.Fatalf("state %v after 2 failures, want closed", got)
	}
	b.Success(t0)
	b.Failure(t0)
	b.Failure(t0)
	if got := b.State(t0); got != Closed {
		t.Fatalf("success did not reset the failure streak: %v", got)
	}

	// The third consecutive failure opens it.
	b.Failure(t0)
	if got := b.State(t0); got != Open {
		t.Fatalf("state %v at threshold, want open", got)
	}
	if got := b.State(t0.Add(9 * time.Second)); got != Open {
		t.Fatalf("state %v inside cooldown, want open", got)
	}

	// Cooldown elapses: half-open; a probe failure re-opens from now.
	t1 := t0.Add(10 * time.Second)
	if got := b.State(t1); got != HalfOpen {
		t.Fatalf("state %v after cooldown, want half-open", got)
	}
	b.Failure(t1)
	if got := b.State(t1.Add(9 * time.Second)); got != Open {
		t.Fatalf("state %v after failed probe, want open (cooldown restarted)", got)
	}

	// Second probe succeeds: closed, streak cleared.
	t2 := t1.Add(10 * time.Second)
	if got := b.State(t2); got != HalfOpen {
		t.Fatalf("state %v, want half-open again", got)
	}
	b.Success(t2)
	if got := b.State(t2); got != Closed {
		t.Fatalf("state %v after probe success, want closed", got)
	}
	b.Failure(t2)
	b.Failure(t2)
	if got := b.State(t2); got != Closed {
		t.Fatalf("failure streak not reset by probe success: %v", got)
	}
}

func TestBreakerForceOpen(t *testing.T) {
	t0 := time.Unix(1000, 0)
	b := NewBreaker(BreakerConfig{Threshold: 3, Cooldown: 10 * time.Second})
	reopen := t0.Add(5 * time.Minute)
	b.ForceOpen(reopen)
	if got := b.State(t0); got != Open {
		t.Fatalf("state %v after ForceOpen, want open", got)
	}
	if got := b.State(reopen.Add(-time.Second)); got != Open {
		t.Fatalf("state %v just before reopenAt, want open", got)
	}
	if got := b.State(reopen); got != HalfOpen {
		t.Fatalf("state %v at reopenAt, want half-open probe", got)
	}
}

func TestCorruptCellResultsKeepsShape(t *testing.T) {
	inner := http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		rw.Header().Set("Content-Type", "application/json")
		fmt.Fprint(rw, `{"worker":"w","config":"c","cells":[{"index":0,"key":"k0","result":{"v":111}},{"index":1,"key":"k1","result":{"v":222}}]}`)
	})
	srv := httptest.NewServer(CorruptCellResults(inner, 7, 1))
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/v1/cells", "application/json", strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var out struct {
		Worker string `json:"worker"`
		Config string `json:"config"`
		Cells  []struct {
			Index  int             `json:"index"`
			Key    string          `json:"key"`
			Result json.RawMessage `json:"result"`
		} `json:"cells"`
	}
	// The corruption must keep the response decodable with keys intact —
	// that is the whole point: only a byte audit can catch it.
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("corrupted response no longer decodes: %v\n%s", err, body)
	}
	if out.Worker != "w" || out.Config != "c" || len(out.Cells) != 2 ||
		out.Cells[0].Key != "k0" || out.Cells[1].Key != "k1" {
		t.Fatalf("corruption damaged the envelope: %s", body)
	}
	if bytes.Contains(out.Cells[0].Result, []byte("111")) && bytes.Contains(out.Cells[1].Result, []byte("222")) {
		t.Fatalf("p=1 corruption left every result untouched: %s", body)
	}

	// Non-cell paths pass through untouched.
	resp2, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
}
