// Package resilience is the cluster's fault layer: a deterministic
// fault-injecting HTTP transport for chaos-soaking the coordinator ↔
// worker RPC path, the per-worker circuit breaker that replaces the old
// binary failure mark in the registry, and a Byzantine worker wrapper
// that corrupts result bytes without tripping any transport- or
// key-level check (the fault only a byte audit catches).
//
// Everything here is reproducible on purpose. The transport draws every
// fault decision from a seeded sim.RNG in a fixed per-call order, so the
// fault schedule is a pure function of (seed, call index) — independent
// of goroutine interleaving, wall clock, or which host a call targets —
// and a failing chaos soak replays the identical schedule on the next
// run. The breaker is a pure state machine over injected timestamps.
package resilience

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"hammertime/internal/sim"
)

// Spec is a parsed fault-injection specification for the RPC transport.
// Probabilistic faults roll per call; windowed faults (spikes,
// partitions) key off the global call index, which is what makes a
// schedule like "partition worker w2 during calls 10–30" reproducible.
type Spec struct {
	// DropP is the probability a request is dropped before it is sent
	// (the connection-refused / packet-loss shape).
	DropP float64
	// Delay/DelayP inject latency before forwarding a request.
	Delay  time.Duration
	DelayP float64
	// DupP is the probability a request is delivered twice (the retry
	// amplification / at-least-once shape; cells are idempotent, so a
	// correct coordinator must not care).
	DupP float64
	// TruncateP is the probability a response body is cut short
	// (mid-transfer connection loss: the decoder sees unexpected EOF).
	TruncateP float64
	// CorruptP is the probability a response byte is flipped (bit rot on
	// the wire; JSON decoding or key verification must catch it).
	CorruptP float64
	// Spikes are windowed latency injections: every call with index in
	// [From, To) sleeps Delay before forwarding.
	Spikes []Spike
	// Partitions make a host unreachable for a call-index window: every
	// call whose target host contains Host and whose index falls in
	// [From, To) fails without being sent.
	Partitions []Partition
}

// Spike is one windowed latency injection.
type Spike struct {
	Delay    time.Duration
	From, To uint64
}

// Partition is one windowed unreachability injection, matched against
// the request's URL host by substring.
type Partition struct {
	Host     string
	From, To uint64
}

// Enabled reports whether the spec injects anything at all.
func (s Spec) Enabled() bool {
	return s.DropP > 0 || s.DelayP > 0 || s.DupP > 0 || s.TruncateP > 0 ||
		s.CorruptP > 0 || len(s.Spikes) > 0 || len(s.Partitions) > 0
}

// String renders the spec in its parseable form (for startup logs).
func (s Spec) String() string {
	var parts []string
	if s.DropP > 0 {
		parts = append(parts, fmt.Sprintf("drop:%g", s.DropP))
	}
	if s.DelayP > 0 {
		parts = append(parts, fmt.Sprintf("delay=%v:%g", s.Delay, s.DelayP))
	}
	if s.DupP > 0 {
		parts = append(parts, fmt.Sprintf("dup:%g", s.DupP))
	}
	if s.TruncateP > 0 {
		parts = append(parts, fmt.Sprintf("truncate:%g", s.TruncateP))
	}
	if s.CorruptP > 0 {
		parts = append(parts, fmt.Sprintf("corrupt:%g", s.CorruptP))
	}
	for _, sp := range s.Spikes {
		parts = append(parts, fmt.Sprintf("spike=%v@%d-%d", sp.Delay, sp.From, sp.To))
	}
	for _, p := range s.Partitions {
		parts = append(parts, fmt.Sprintf("partition=%s@%d-%d", p.Host, p.From, p.To))
	}
	if len(parts) == 0 {
		return "off"
	}
	return strings.Join(parts, ",")
}

// ParseSpec parses a comma-separated fault spec — the value of the
// -cluster-chaos flag / HAMMERTIME_CLUSTER_CHAOS env var:
//
//	drop:0.1                   drop 10% of requests unsent
//	delay=20ms:0.3             delay 30% of requests by 20ms
//	dup:0.05                   deliver 5% of requests twice
//	truncate:0.05              cut 5% of response bodies short
//	corrupt:0.05               flip a byte in 5% of response bodies
//	spike=80ms@10-30           calls 10..29 each sleep 80ms extra
//	partition=w2@40-60         calls 40..59 to hosts matching "w2" fail
//
// An empty spec parses to the zero Spec (chaos off).
func ParseSpec(spec string) (Spec, error) {
	var s Spec
	if spec == "" {
		return s, nil
	}
	parseWindow := func(part, tail string) (string, uint64, uint64, error) {
		head, window, ok := strings.Cut(tail, "@")
		if !ok {
			return "", 0, 0, fmt.Errorf("resilience: chaos %q: want %s@from-to", part, part[:strings.Index(part, "=")])
		}
		fromStr, toStr, ok := strings.Cut(window, "-")
		if !ok {
			return "", 0, 0, fmt.Errorf("resilience: chaos %q: window %q: want from-to", part, window)
		}
		from, err1 := strconv.ParseUint(fromStr, 10, 64)
		to, err2 := strconv.ParseUint(toStr, 10, 64)
		if err1 != nil || err2 != nil || to <= from {
			return "", 0, 0, fmt.Errorf("resilience: chaos %q: bad window %q", part, window)
		}
		return head, from, to, nil
	}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		switch {
		case strings.HasPrefix(part, "spike="):
			head, from, to, err := parseWindow(part, strings.TrimPrefix(part, "spike="))
			if err != nil {
				return s, err
			}
			d, err := time.ParseDuration(head)
			if err != nil || d <= 0 {
				return s, fmt.Errorf("resilience: chaos %q: bad spike duration %q", part, head)
			}
			s.Spikes = append(s.Spikes, Spike{Delay: d, From: from, To: to})
		case strings.HasPrefix(part, "partition="):
			head, from, to, err := parseWindow(part, strings.TrimPrefix(part, "partition="))
			if err != nil {
				return s, err
			}
			if head == "" {
				return s, fmt.Errorf("resilience: chaos %q: empty partition host", part)
			}
			s.Partitions = append(s.Partitions, Partition{Host: head, From: from, To: to})
		default:
			head, probStr, ok := strings.Cut(part, ":")
			if !ok {
				return s, fmt.Errorf("resilience: chaos %q: want fault:probability", part)
			}
			prob, err := strconv.ParseFloat(probStr, 64)
			if err != nil || prob < 0 || prob > 1 {
				return s, fmt.Errorf("resilience: chaos %q: bad probability %q", part, probStr)
			}
			switch {
			case strings.HasPrefix(head, "delay="):
				d, err := time.ParseDuration(strings.TrimPrefix(head, "delay="))
				if err != nil || d < 0 {
					return s, fmt.Errorf("resilience: chaos %q: bad delay duration", part)
				}
				s.Delay, s.DelayP = d, prob
			case head == "drop":
				s.DropP = prob
			case head == "dup":
				s.DupP = prob
			case head == "truncate":
				s.TruncateP = prob
			case head == "corrupt":
				s.CorruptP = prob
			default:
				return s, fmt.Errorf("resilience: chaos %q: unknown fault (want drop, delay=<dur>, dup, truncate, corrupt, spike=<dur>@a-b, partition=<host>@a-b)", part)
			}
		}
	}
	return s, nil
}

// FaultRecord is one injected fault in the transport's schedule log —
// the CI chaos job uploads these as the run's reproducibility artifact.
type FaultRecord struct {
	Call   uint64 `json:"call"`
	Host   string `json:"host"`
	Path   string `json:"path"`
	Fault  string `json:"fault"`
	Detail string `json:"detail,omitempty"`
}

// maxSchedule bounds the in-memory fault log; soaks inject far fewer.
const maxSchedule = 4096

// Transport is the deterministic fault-injecting http.RoundTripper. It
// wraps a base transport and, per call, rolls a fixed sequence of draws
// from a seeded RNG deciding whether to drop, delay, duplicate, truncate
// or corrupt the exchange, plus call-index-windowed latency spikes and
// host partitions. Counters and a bounded fault schedule are exposed for
// metrics and artifacts.
type Transport struct {
	base http.RoundTripper
	spec Spec

	mu       sync.Mutex
	rng      *sim.RNG
	calls    uint64
	counters map[string]int64
	schedule []FaultRecord
}

// NewTransport wraps base (nil = http.DefaultTransport) with the fault
// spec, seeded. A zero/disabled spec still works — it forwards untouched
// and counts nothing.
func NewTransport(base http.RoundTripper, spec Spec, seed uint64) *Transport {
	if base == nil {
		base = http.DefaultTransport
	}
	return &Transport{
		base:     base,
		spec:     spec,
		rng:      sim.NewRNG(seed),
		counters: make(map[string]int64),
	}
}

// decisions is one call's pre-drawn fault plan.
type decisions struct {
	call                             uint64
	drop, delay, dup, trunc, corrupt bool
	salt                             uint64
}

// plan draws the call's fault decisions under the lock, in fixed order —
// five uniform rolls and one salt per call, always, so the stream
// position (and therefore every later call's decisions) depends only on
// the seed and the call index.
func (t *Transport) plan() decisions {
	t.mu.Lock()
	defer t.mu.Unlock()
	d := decisions{call: t.calls}
	t.calls++
	d.drop = t.rng.Float64() < t.spec.DropP
	d.delay = t.rng.Float64() < t.spec.DelayP
	d.dup = t.rng.Float64() < t.spec.DupP
	d.trunc = t.rng.Float64() < t.spec.TruncateP
	d.corrupt = t.rng.Float64() < t.spec.CorruptP
	d.salt = t.rng.Uint64()
	return d
}

func (t *Transport) record(call uint64, req *http.Request, fault, detail string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.counters[fault]++
	if len(t.schedule) < maxSchedule {
		t.schedule = append(t.schedule, FaultRecord{
			Call: call, Host: req.URL.Host, Path: req.URL.Path, Fault: fault, Detail: detail,
		})
	}
}

// RoundTrip injects the call's planned faults around the base transport.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	d := t.plan()

	for _, p := range t.spec.Partitions {
		if d.call >= p.From && d.call < p.To && strings.Contains(req.URL.Host, p.Host) {
			t.record(d.call, req, "partitioned", p.Host)
			return nil, fmt.Errorf("resilience: chaos partition: %s unreachable (call %d)", req.URL.Host, d.call)
		}
	}
	if d.drop {
		t.record(d.call, req, "dropped", "")
		return nil, fmt.Errorf("resilience: chaos drop (call %d)", d.call)
	}
	if d.delay && t.spec.Delay > 0 {
		t.record(d.call, req, "delayed", t.spec.Delay.String())
		sleepCtx(req, t.spec.Delay)
	}
	for _, sp := range t.spec.Spikes {
		if d.call >= sp.From && d.call < sp.To {
			t.record(d.call, req, "spiked", sp.Delay.String())
			sleepCtx(req, sp.Delay)
		}
	}
	if d.dup && req.GetBody != nil {
		// Deliver the request once ahead of the real exchange: the server
		// sees it twice, and only idempotent handlers survive the soak.
		if dupBody, err := req.GetBody(); err == nil {
			dupReq := req.Clone(req.Context())
			dupReq.Body = dupBody
			if resp, err := t.base.RoundTrip(dupReq); err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
			t.record(d.call, req, "duplicated", "")
		}
	}

	resp, err := t.base.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	if !d.trunc && !d.corrupt {
		return resp, nil
	}
	body, rerr := io.ReadAll(resp.Body)
	resp.Body.Close()
	if rerr != nil {
		return nil, rerr
	}
	if d.trunc && len(body) > 1 {
		t.record(d.call, req, "truncated", fmt.Sprintf("%d->%d bytes", len(body), len(body)/2))
		body = body[:len(body)/2]
		// ContentLength stays as the header claimed: the reader sees the
		// same unexpected EOF a mid-transfer connection loss produces.
	}
	if d.corrupt && len(body) > 0 {
		off := int(d.salt % uint64(len(body)))
		t.record(d.call, req, "corrupted", fmt.Sprintf("byte %d", off))
		body[off] ^= 0x20
	}
	resp.Body = io.NopCloser(bytes.NewReader(body))
	return resp, nil
}

// sleepCtx sleeps d or until the request's context ends.
func sleepCtx(req *http.Request, d time.Duration) {
	tm := time.NewTimer(d)
	defer tm.Stop()
	select {
	case <-tm.C:
	case <-req.Context().Done():
	}
}

// Counters returns a copy of the lifetime fault counters, keyed by fault
// name (dropped, delayed, spiked, duplicated, truncated, corrupted,
// partitioned). The coordinator merges them onto /metrics as
// cluster.chaos.* families.
func (t *Transport) Counters() map[string]int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]int64, len(t.counters))
	for k, v := range t.counters {
		out[k] = v
	}
	return out
}

// Calls returns how many RPCs have passed through the transport.
func (t *Transport) Calls() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.calls
}

// Schedule returns a copy of the injected-fault log (bounded at 4096
// records).
func (t *Transport) Schedule() []FaultRecord {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]FaultRecord(nil), t.schedule...)
}

// WriteSchedule writes the fault log as JSONL — the chaos soak's
// reproducibility artifact.
func (t *Transport) WriteSchedule(w io.Writer) error {
	for _, rec := range t.Schedule() {
		if _, err := fmt.Fprintf(w, `{"call":%d,"host":%q,"path":%q,"fault":%q,"detail":%q}`+"\n",
			rec.Call, rec.Host, rec.Path, rec.Fault, rec.Detail); err != nil {
			return err
		}
	}
	return nil
}
