package cluster

import (
	"bufio"
	"container/list"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
)

// ResultCache is the content-addressed cell store in front of dispatch:
// an in-memory LRU bounded by result bytes, optionally backed by an
// append-only JSONL spill file. Keys are harness.CellKey hashes, so a
// hit is exact by construction — same grid, config, epoch, seed and
// cell, same bytes — and Put is idempotent: re-inserting a key (a cell
// computed twice after a steal) keeps the first entry.
//
// With a spill file attached, entries evicted from memory remain
// retrievable: Get falls back to the file by recorded offset and
// promotes the entry back into memory. The file is the same shape as a
// harness checkpoint — one {"key","result"} object per line — and
// survives restarts; OpenSpill indexes existing records without loading
// them.
type ResultCache struct {
	mu       sync.Mutex
	maxBytes int64
	bytes    int64
	ll       *list.List // front = most recently used
	items    map[string]*list.Element

	spill    *os.File
	spillOff int64
	spillIdx map[string]spillLoc
	spillErr error // sticky: first append failure, cache degrades to memory-only

	hits, misses, evicted int64
}

type cacheEntry struct {
	key string
	val json.RawMessage
}

type spillLoc struct {
	off int64
	len int64
}

// spillRecord is one spill-file line.
type spillRecord struct {
	Key    string          `json:"key"`
	Result json.RawMessage `json:"result"`
}

// NewResultCache builds a memory-only cache holding at most maxBytes of
// result JSON (0 = 64 MiB; entries are never rejected for size — a
// single oversized entry evicts everything else and lives alone).
func NewResultCache(maxBytes int64) *ResultCache {
	if maxBytes <= 0 {
		maxBytes = 64 << 20
	}
	return &ResultCache{
		maxBytes: maxBytes,
		ll:       list.New(),
		items:    make(map[string]*list.Element),
	}
}

// OpenSpill attaches (creating if needed) the JSONL spill file, indexing
// the records it already holds. A torn final line — a killed coordinator
// — is truncated away, mirroring harness checkpoint loading.
func (c *ResultCache) OpenSpill(path string) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("cluster: spill: %w", err)
	}
	idx := make(map[string]spillLoc)
	r := bufio.NewReader(f)
	var off int64
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			break // EOF fragment: debris of a killed run, trimmed below
		}
		var rec spillRecord
		if json.Unmarshal([]byte(line), &rec) != nil || rec.Key == "" {
			break
		}
		if _, dup := idx[rec.Key]; !dup {
			idx[rec.Key] = spillLoc{off: off, len: int64(len(line))}
		}
		off += int64(len(line))
	}
	if err := f.Truncate(off); err != nil {
		f.Close()
		return fmt.Errorf("cluster: spill: trim torn tail: %w", err)
	}
	if _, err := f.Seek(off, io.SeekStart); err != nil {
		f.Close()
		return fmt.Errorf("cluster: spill: %w", err)
	}
	c.mu.Lock()
	c.spill, c.spillOff, c.spillIdx = f, off, idx
	c.mu.Unlock()
	return nil
}

// Get returns the cached result for key. Disk-only entries are promoted
// back into memory.
func (c *ResultCache) Get(key string) (json.RawMessage, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		return el.Value.(*cacheEntry).val, true
	}
	if loc, ok := c.spillIdx[key]; ok && c.spill != nil {
		buf := make([]byte, loc.len)
		if _, err := c.spill.ReadAt(buf, loc.off); err == nil {
			var rec spillRecord
			if json.Unmarshal(buf, &rec) == nil && rec.Key == key {
				c.insert(key, rec.Result)
				c.hits++
				return rec.Result, true
			}
		}
	}
	c.misses++
	return nil, false
}

// Put stores a computed cell. Idempotent: a key already present (memory
// or spill) is left untouched, so racing workers or a re-dispatched
// steal never rewrite an entry.
func (c *ResultCache) Put(key string, val json.RawMessage) {
	if key == "" || val == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.items[key]; ok {
		return
	}
	if _, ok := c.spillIdx[key]; !ok && c.spill != nil && c.spillErr == nil {
		line, err := json.Marshal(spillRecord{Key: key, Result: val})
		if err == nil {
			line = append(line, '\n')
			if _, err := c.spill.Write(line); err != nil {
				c.spillErr = fmt.Errorf("cluster: spill append: %w", err)
			} else {
				c.spillIdx[key] = spillLoc{off: c.spillOff, len: int64(len(line))}
				c.spillOff += int64(len(line))
			}
		}
	}
	c.insert(key, val)
}

// insert adds the entry to the memory LRU, evicting from the back to
// stay under budget. Caller holds c.mu.
func (c *ResultCache) insert(key string, val json.RawMessage) {
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, val: val})
	c.bytes += int64(len(val))
	for c.bytes > c.maxBytes && c.ll.Len() > 1 {
		back := c.ll.Back()
		e := back.Value.(*cacheEntry)
		c.ll.Remove(back)
		delete(c.items, e.key)
		c.bytes -= int64(len(e.val))
		c.evicted++
	}
}

// Len returns the in-memory entry count.
func (c *ResultCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Bytes returns the in-memory result bytes.
func (c *ResultCache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// Counters returns lifetime (hits, misses, evictions).
func (c *ResultCache) Counters() (hits, misses, evicted int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.evicted
}

// SpillErr returns the sticky spill-append failure, if any. The cache
// keeps serving from memory after one; the caller decides whether a
// lossy spill matters.
func (c *ResultCache) SpillErr() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.spillErr
}

// Close releases the spill file.
func (c *ResultCache) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.spill == nil {
		return c.spillErr
	}
	err := c.spill.Close()
	c.spill = nil
	if c.spillErr != nil {
		return c.spillErr
	}
	return err
}
