package cluster

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"hammertime/internal/check/diff"
	"hammertime/internal/harness"
	"hammertime/internal/obs"
	"hammertime/internal/sim"
	"hammertime/internal/telemetry"
	"hammertime/internal/trace"
)

// fastOpts is a small-but-real E1 configuration: 2 defenses x 4 attack
// kinds = 8 cells, each a full simulation, sized to keep the suite
// quick. Mirrors the diff package's differential tests.
func fastOpts() harness.AttackOpts {
	return harness.AttackOpts{
		Horizon:        300_000,
		Tenants:        2,
		PagesPerTenant: 60,
		Defenses:       []string{"none", "para"},
		ManySided:      4,
	}
}

func startWorker(t *testing.T, name string) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer((&WorkerNode{Name: name}).Handler())
	t.Cleanup(srv.Close)
	return srv
}

func newTestDispatcher(t *testing.T, workers map[string]string) *Dispatcher {
	t.Helper()
	reg := NewRegistry(time.Minute)
	for name, addr := range workers {
		reg.Register(name, addr)
	}
	return NewDispatcher(DispatcherConfig{
		Registry:        reg,
		DispatchTimeout: time.Minute,
		BatchSize:       2,
	})
}

func counter(d *Dispatcher, name string) int64 {
	var st sim.Stats
	d.MergeInto(&st)
	return st.Counter(name)
}

func TestDistributedMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("full simulations; skipped in -short")
	}
	w1 := startWorker(t, "w1")
	w2 := startWorker(t, "w2")
	d := newTestDispatcher(t, map[string]string{"w1": w1.URL, "w2": w2.URL})
	opts := fastOpts()
	del := d.ForJob("e1", opts.Horizon, opts)
	if del == nil {
		t.Fatal("e1 should be distributable")
	}
	if err := diff.SerialVsDistributed(context.Background(), del, "e1", opts.Horizon, opts); err != nil {
		t.Fatal(err)
	}
	if got := counter(d, "cluster.cells.dispatched"); got != 8 {
		t.Fatalf("dispatched %d cells, want 8", got)
	}
	if got := counter(d, "cluster.cells.local"); got != 0 {
		t.Fatalf("computed %d cells locally with a live fleet", got)
	}
}

func TestWorkerDeathStealsCells(t *testing.T) {
	if testing.Short() {
		t.Skip("full simulations; skipped in -short")
	}
	healthy := startWorker(t, "healthy")
	// The doomed worker dies on first contact — its connection is torn
	// down mid-request, the SIGKILL shape — and never comes back.
	var killed atomic.Bool
	doomed := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		killed.Store(true)
		hj, ok := rw.(http.Hijacker)
		if !ok {
			t.Error("no hijacker")
			return
		}
		conn, _, err := hj.Hijack()
		if err == nil {
			conn.Close()
		}
	}))
	t.Cleanup(doomed.Close)

	d := newTestDispatcher(t, map[string]string{"healthy": healthy.URL, "doomed": doomed.URL})
	opts := fastOpts()
	del := d.ForJob("e1", opts.Horizon, opts)
	if err := diff.SerialVsDistributed(context.Background(), del, "e1", opts.Horizon, opts); err != nil {
		t.Fatal(err)
	}
	if !killed.Load() {
		t.Fatal("doomed worker was never dispatched to")
	}
	if got := counter(d, "cluster.cells.stolen"); got == 0 {
		t.Fatal("no cells stolen despite a dead worker")
	}
	if got := counter(d, "cluster.worker.failures"); got == 0 {
		t.Fatal("worker failure not counted")
	}
	// The dead worker must be failure-marked out of the live set.
	for _, w := range d.Registry().Live() {
		if w.Name == "doomed" {
			t.Fatal("dead worker still in live set")
		}
	}
}

func TestDuplicateRunServedFromCache(t *testing.T) {
	if testing.Short() {
		t.Skip("full simulations; skipped in -short")
	}
	w1 := startWorker(t, "w1")
	d := newTestDispatcher(t, map[string]string{"w1": w1.URL})
	opts := fastOpts()

	run := func() string {
		ctx := harness.WithGridDelegate(context.Background(), d.ForJob("e1", opts.Horizon, opts))
		tb, err := harness.Experiment(ctx, "e1", opts.Horizon, opts)
		if err != nil {
			t.Fatal(err)
		}
		return tb.String()
	}
	first := run()
	dispatchedAfterFirst := counter(d, "cluster.cells.dispatched")
	second := run()
	if first != second {
		t.Fatalf("cache-served run differs:\n--- first ---\n%s\n--- second ---\n%s", first, second)
	}
	if got := counter(d, "cluster.cells.dispatched"); got != dispatchedAfterFirst {
		t.Fatalf("duplicate run re-dispatched cells: %d -> %d", dispatchedAfterFirst, got)
	}
	hits, _, _ := d.Cache().Counters()
	if hits < 8 {
		t.Fatalf("cache hits %d, want >= 8 (every cell of the duplicate)", hits)
	}
}

func TestLocalFallbackWithoutWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("full simulations; skipped in -short")
	}
	d := newTestDispatcher(t, nil)
	opts := fastOpts()
	del := d.ForJob("e1", opts.Horizon, opts)
	if err := diff.SerialVsDistributed(context.Background(), del, "e1", opts.Horizon, opts); err != nil {
		t.Fatal(err)
	}
	if got := counter(d, "cluster.cells.local"); got != 8 {
		t.Fatalf("local cells %d, want 8", got)
	}
}

func TestForJobRejectsNonDistributable(t *testing.T) {
	d := newTestDispatcher(t, nil)
	if del := d.ForJob("nope", 0, fastOpts()); del != nil {
		t.Fatal("unknown experiment got a delegate")
	}
	replay := fastOpts()
	replay.ReplayAttack = []trace.Event{{}}
	if del := d.ForJob("e1", 0, replay); del != nil {
		t.Fatal("replayed-trace job got a delegate; replay state cannot cross nodes")
	}
	observed := fastOpts()
	observed.Observer = obs.NewRecorder()
	if del := d.ForJob("e1", 0, observed); del != nil {
		t.Fatal("observer-attached job got a delegate")
	}
}

func TestRegistryTTLAndFailure(t *testing.T) {
	reg := NewRegistry(10 * time.Second)
	now := time.Unix(1000, 0)
	reg.now = func() time.Time { return now }

	reg.Register("a", "http://a")
	reg.Register("b", "http://b")
	if got := len(reg.Live()); got != 2 {
		t.Fatalf("live %d, want 2", got)
	}

	// b goes silent past the TTL.
	now = now.Add(11 * time.Second)
	reg.Register("a", "http://a")
	live := reg.Live()
	if len(live) != 1 || live[0].Name != "a" {
		t.Fatalf("live %v, want just a", live)
	}

	// Consecutive failures open a's breaker and remove it from dispatch.
	// A heartbeat refreshes liveness but must NOT launder breaker state.
	reg.ReportFailure("a")
	reg.ReportFailure("a")
	if len(reg.Live()) != 1 {
		t.Fatal("worker dropped before reaching the failure threshold")
	}
	reg.ReportFailure("a")
	if len(reg.Live()) != 0 {
		t.Fatal("open-breaker worker still live")
	}
	reg.Register("a", "http://a")
	if len(reg.Live()) != 0 {
		t.Fatal("heartbeat closed an open breaker")
	}

	// After the cooldown the worker half-opens: back in the live set, but
	// only as a probe. A verified success closes it for real.
	now = now.Add(11 * time.Second) // past the default 10s cooldown
	reg.Register("a", "http://a")
	live = reg.Live()
	if len(live) != 1 || !live[0].Probe {
		t.Fatalf("live %+v, want a as half-open probe", live)
	}
	reg.ReportSuccess("a")
	live = reg.Live()
	if len(live) != 1 || live[0].Probe {
		t.Fatalf("live %+v, want a fully closed after probe success", live)
	}

	views := reg.Views()
	if len(views) != 2 {
		t.Fatalf("views %d, want 2 (dead workers still listed)", len(views))
	}
	if views[1].Name != "b" || views[1].Live {
		t.Fatalf("stale worker reported live: %+v", views[1])
	}
	if views[0].Breaker != "closed" {
		t.Fatalf("breaker state %q, want closed", views[0].Breaker)
	}
}

func TestWorkerRejectsSkew(t *testing.T) {
	w := &WorkerNode{Name: "w"}
	// Epoch skew: a version-mismatched coordinator.
	_, err := w.RunCells(context.Background(), CellRequest{
		Experiment: "e1", Grid: "g", Cells: []int{0}, Epoch: sim.DeterminismEpoch + 1,
	})
	if err == nil || !strings.Contains(err.Error(), "epoch skew") {
		t.Fatalf("epoch skew accepted: %v", err)
	}
	// Unknown experiment.
	if _, err := w.RunCells(context.Background(), CellRequest{Experiment: "bogus", Grid: "g", Cells: []int{0}}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	// Empty cell list.
	if _, err := w.RunCells(context.Background(), CellRequest{Experiment: "e1", Grid: "g"}); err == nil {
		t.Fatal("empty request accepted")
	}
}

func TestWorkerConfigSkewRejected(t *testing.T) {
	if testing.Short() {
		t.Skip("full simulation; skipped in -short")
	}
	w := &WorkerNode{Name: "w"}
	opts := fastOpts()
	req := CellRequest{
		Experiment: "e1",
		Horizon:    opts.Horizon,
		Opts:       OptsFrom(opts),
		Grid:       "e1",
		Config:     "horizon=999;something-else", // coordinator disagrees
		Cells:      []int{0},
		Epoch:      sim.DeterminismEpoch,
	}
	if _, err := w.RunCells(context.Background(), req); err == nil || !strings.Contains(err.Error(), "config skew") {
		t.Fatalf("config skew accepted: %v", err)
	}
}

func TestDispatchImportsWorkerSpans(t *testing.T) {
	if testing.Short() {
		t.Skip("full simulations; skipped in -short")
	}
	w1 := startWorker(t, "w1")
	d := newTestDispatcher(t, map[string]string{"w1": w1.URL})
	opts := fastOpts()
	tr := telemetry.NewTracer()
	ctx := telemetry.NewContext(context.Background(), &telemetry.Scope{Tracer: tr})
	ctx = harness.WithGridDelegate(ctx, d.ForJob("e1", opts.Horizon, opts))
	if _, err := harness.Experiment(ctx, "e1", opts.Horizon, opts); err != nil {
		t.Fatal(err)
	}
	var dispatches, workerGrids int
	for _, s := range tr.Snapshot() {
		if strings.HasPrefix(s.Name, "dispatch:") {
			dispatches++
		}
		if strings.HasPrefix(s.Name, "cell:") || s.Name == "machine.run" {
			workerGrids++
		}
	}
	if dispatches == 0 {
		t.Fatal("no dispatch spans recorded")
	}
	if workerGrids == 0 {
		t.Fatal("worker-side spans not imported into the job trace")
	}
}
