package cluster

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func raw(s string) json.RawMessage { return json.RawMessage(s) }

func TestCacheLRUBoundsBytes(t *testing.T) {
	c := NewResultCache(100)
	for i := 0; i < 10; i++ {
		c.Put(fmt.Sprintf("key-%d", i), raw(`{"v":"0123456789012345"}`)) // 24 bytes each
	}
	if c.Bytes() > 100 {
		t.Fatalf("cache holds %d bytes, budget 100", c.Bytes())
	}
	if c.Len() != 4 {
		t.Fatalf("cache holds %d entries, want 4 (100/24)", c.Len())
	}
	// Newest entries survive, oldest were evicted.
	if _, ok := c.Get("key-9"); !ok {
		t.Fatal("newest entry evicted")
	}
	if _, ok := c.Get("key-0"); ok {
		t.Fatal("oldest entry survived a full wrap")
	}
	if _, _, evicted := c.Counters(); evicted != 6 {
		t.Fatalf("evicted %d, want 6", evicted)
	}
}

func TestCacheGetPromotesRecency(t *testing.T) {
	c := NewResultCache(50) // room for exactly two 24-byte entries
	c.Put("a", raw(`{"v":"0123456789012345"}`))
	c.Put("b", raw(`{"v":"0123456789012345"}`))
	c.Get("a") // a is now most recent
	c.Put("c", raw(`{"v":"0123456789012345"}`))
	if _, ok := c.Get("a"); !ok {
		t.Fatal("recently used entry evicted")
	}
	if _, ok := c.Get("b"); ok {
		t.Fatal("least recently used entry survived")
	}
}

func TestCachePutIdempotent(t *testing.T) {
	c := NewResultCache(0)
	c.Put("k", raw(`{"first":true}`))
	c.Put("k", raw(`{"second":true}`))
	got, ok := c.Get("k")
	if !ok || string(got) != `{"first":true}` {
		t.Fatalf("got %s, want the first insert kept", got)
	}
	if c.Len() != 1 {
		t.Fatalf("duplicate Put grew the cache to %d entries", c.Len())
	}
}

func TestCacheCounters(t *testing.T) {
	c := NewResultCache(0)
	c.Put("k", raw(`1`))
	c.Get("k")
	c.Get("k")
	c.Get("absent")
	hits, misses, _ := c.Counters()
	if hits != 2 || misses != 1 {
		t.Fatalf("hits=%d misses=%d, want 2/1", hits, misses)
	}
}

func TestCacheSpillPersistsAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cells.jsonl")
	c := NewResultCache(0)
	if err := c.OpenSpill(path); err != nil {
		t.Fatal(err)
	}
	c.Put("aaaa", raw(`{"flips":3}`))
	c.Put("bbbb", raw(`{"flips":0}`))
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	c2 := NewResultCache(0)
	if err := c2.OpenSpill(path); err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	got, ok := c2.Get("aaaa")
	if !ok || string(got) != `{"flips":3}` {
		t.Fatalf("spilled entry not restored: %s ok=%v", got, ok)
	}
	if _, ok := c2.Get("cccc"); ok {
		t.Fatal("phantom entry after reload")
	}
}

func TestCacheSpillServesEvictedEntries(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cells.jsonl")
	c := NewResultCache(50) // two 24-byte entries max
	if err := c.OpenSpill(path); err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Put("a", raw(`{"v":"0123456789012345"}`))
	c.Put("b", raw(`{"v":"0123456789012345"}`))
	c.Put("c", raw(`{"v":"0123456789012345"}`)) // evicts a from memory
	got, ok := c.Get("a")
	if !ok {
		t.Fatal("evicted entry not served from spill")
	}
	if string(got) != `{"v":"0123456789012345"}` {
		t.Fatalf("spill returned %s", got)
	}
}

func TestCacheSpillTornTailTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cells.jsonl")
	line, _ := json.Marshal(spillRecord{Key: "good", Result: raw(`1`)})
	if err := os.WriteFile(path, append(append(line, '\n'), []byte(`{"key":"torn","resu`)...), 0o644); err != nil {
		t.Fatal(err)
	}
	c := NewResultCache(0)
	if err := c.OpenSpill(path); err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, ok := c.Get("good"); !ok {
		t.Fatal("intact record lost")
	}
	if _, ok := c.Get("torn"); ok {
		t.Fatal("torn record served")
	}
	// The torn tail must be gone so appends produce a clean file.
	c.Put("new", raw(`2`))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	c2 := NewResultCache(0)
	if err := c2.OpenSpill(path); err != nil {
		t.Fatalf("file corrupt after append over torn tail: %v\n%s", err, data)
	}
	defer c2.Close()
	if _, ok := c2.Get("new"); !ok {
		t.Fatal("appended record lost after torn-tail truncate")
	}
}
