package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"sort"
	"sync"
	"time"

	"hammertime/internal/harness"
	"hammertime/internal/sim"
	"hammertime/internal/telemetry"
)

// WorkerNode executes assigned cells: it rebuilds the requested grid
// from the wire options under a CellCapture narrowed to the assigned
// indices, so only those cells are simulated, and returns each result as
// the exact JSON the coordinator will merge. A worker keeps no job
// state — every request is self-contained, which is what makes killing
// a worker mid-run recoverable by re-dispatching elsewhere.
type WorkerNode struct {
	// Name identifies the worker in responses and registry entries.
	Name string
	// Log receives per-request structured logs (nil = silent).
	Log *slog.Logger

	mu       sync.Mutex
	draining bool
	inflight sync.WaitGroup
}

// StartDrain flips the worker into draining: new batch requests are
// refused with 503 + Retry-After (the coordinator's retry/steal machinery
// reroutes them), while in-flight batches run to completion. Part of the
// graceful-shutdown sequence: StartDrain → Deregister → WaitIdle →
// server shutdown.
func (w *WorkerNode) StartDrain() {
	w.mu.Lock()
	w.draining = true
	w.mu.Unlock()
}

// Draining reports whether StartDrain was called.
func (w *WorkerNode) Draining() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.draining
}

// WaitIdle blocks until every in-flight batch has completed or ctx ends.
func (w *WorkerNode) WaitIdle(ctx context.Context) error {
	done := make(chan struct{})
	go func() {
		w.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// beginBatch admits one batch unless the worker is draining. The caller
// must invoke the returned func when the batch ends.
func (w *WorkerNode) beginBatch() (func(), bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.draining {
		return nil, false
	}
	w.inflight.Add(1)
	return w.inflight.Done, true
}

// RunCells computes one CellRequest. The experiment may fail outside the
// target grid without failing the request — the capture's completeness
// is the contract, not the experiment's own result (whose table the
// worker discards anyway).
func (w *WorkerNode) RunCells(ctx context.Context, req CellRequest) (CellResponse, error) {
	resp := CellResponse{Worker: w.Name}
	if !harness.ValidExperiment(req.Experiment) {
		return resp, fmt.Errorf("cluster: unknown experiment %q", req.Experiment)
	}
	if req.Grid == "" || len(req.Cells) == 0 {
		return resp, fmt.Errorf("cluster: empty grid or cell list")
	}
	if req.Epoch != 0 && req.Epoch != sim.DeterminismEpoch {
		return resp, fmt.Errorf("cluster: determinism epoch skew: coordinator %d, worker %d — upgrade the older node",
			req.Epoch, sim.DeterminismEpoch)
	}

	// The worker's spans ride back in the response; the tracer reuses the
	// job's trace id so worker-local exports correlate, and the
	// coordinator remaps span ids when grafting them into its own tracer.
	tracer := telemetry.NewTracer()
	if id, ok := telemetry.ParseTraceID(req.TraceID); ok {
		tracer = telemetry.NewTracerWithID(id)
	}
	ctx = telemetry.NewContext(ctx, &telemetry.Scope{Tracer: tracer})

	capture := harness.NewCellCapture(req.Grid, req.Cells)
	ctx = harness.WithCellCapture(ctx, capture)
	start := time.Now()
	_, runErr := harness.Experiment(ctx, req.Experiment, req.Horizon, req.Opts.Attack())
	if err := capture.Err(); err != nil {
		return resp, err
	}
	if !capture.Reached() {
		if runErr != nil {
			return resp, fmt.Errorf("cluster: grid %q never ran: %w", req.Grid, runErr)
		}
		return resp, fmt.Errorf("cluster: experiment %q has no grid %q", req.Experiment, req.Grid)
	}
	if cfg := capture.Config(); req.Config != "" && cfg != req.Config {
		return resp, fmt.Errorf("cluster: grid config skew on %q: coordinator %q, worker %q — option or version drift",
			req.Grid, req.Config, cfg)
	}
	results := capture.Results()
	for _, i := range req.Cells {
		cell, ok := results[i]
		if !ok {
			if runErr != nil {
				return resp, fmt.Errorf("cluster: cell %d incomplete: %w", i, runErr)
			}
			return resp, fmt.Errorf("cluster: cell %d out of range for grid %q", i, req.Grid)
		}
		resp.Cells = append(resp.Cells, CellResult{Index: i, Key: cell.Key, Result: cell.Result})
	}
	sort.Slice(resp.Cells, func(a, b int) bool { return resp.Cells[a].Index < resp.Cells[b].Index })
	resp.Config = capture.Config()
	resp.Spans = tracer.Snapshot()
	telemetry.OrNop(w.Log).Info("cells computed",
		"grid", req.Grid, "cells", len(resp.Cells), "elapsed", time.Since(start))
	return resp, nil
}

// Handler returns the worker's HTTP surface:
//
//	POST /v1/cells   — compute a CellRequest
//	GET  /healthz    — liveness
func (w *WorkerNode) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/cells", func(rw http.ResponseWriter, r *http.Request) {
		done, ok := w.beginBatch()
		if !ok {
			// Draining: the coordinator should retry elsewhere. 503 is
			// retryable by the dispatch loop, and Retry-After hints at
			// the backoff scale.
			rw.Header().Set("Retry-After", "1")
			writeJSON(rw, http.StatusServiceUnavailable, errorBody{Error: "worker draining"})
			return
		}
		defer done()
		var req CellRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeJSON(rw, http.StatusBadRequest, errorBody{Error: "bad request: " + err.Error()})
			return
		}
		resp, err := w.RunCells(r.Context(), req)
		if err != nil {
			telemetry.OrNop(w.Log).Warn("cell request failed", "grid", req.Grid, "err", err)
			writeJSON(rw, http.StatusInternalServerError, errorBody{Error: err.Error()})
			return
		}
		writeJSON(rw, http.StatusOK, resp)
	})
	mux.HandleFunc("GET /healthz", func(rw http.ResponseWriter, r *http.Request) {
		rw.WriteHeader(http.StatusOK)
		fmt.Fprintln(rw, "ok")
	})
	return mux
}

// Heartbeat registers the worker with the coordinator now and then every
// interval until ctx ends. Registration doubles as the liveness beacon;
// failures are logged and retried on the next tick — a coordinator
// restart just loses one beat.
func Heartbeat(ctx context.Context, client *http.Client, coordinator, name, selfAddr string, every time.Duration, log *slog.Logger) {
	if client == nil {
		client = http.DefaultClient
	}
	if every <= 0 {
		every = 5 * time.Second
	}
	log = telemetry.OrNop(log)
	beat := func() {
		body, _ := json.Marshal(RegisterRequest{Name: name, Addr: selfAddr})
		req, err := http.NewRequestWithContext(ctx, http.MethodPost,
			coordinator+"/v1/cluster/register", bytes.NewReader(body))
		if err != nil {
			log.Warn("heartbeat request", "err", err)
			return
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := client.Do(req)
		if err != nil {
			log.Warn("heartbeat failed", "coordinator", coordinator, "err", err)
			return
		}
		resp.Body.Close()
		if resp.StatusCode/100 != 2 {
			log.Warn("heartbeat rejected", "coordinator", coordinator, "status", resp.StatusCode)
		}
	}
	beat()
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			beat()
		}
	}
}

// Deregister sends the final goodbye heartbeat: the coordinator drops
// the worker from dispatch immediately instead of waiting out the TTL.
// Best-effort — a coordinator that misses it just ages the entry out.
func Deregister(ctx context.Context, client *http.Client, coordinator, name string) error {
	if client == nil {
		client = http.DefaultClient
	}
	body, _ := json.Marshal(RegisterRequest{Name: name, Deregister: true})
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		coordinator+"/v1/cluster/register", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return fmt.Errorf("cluster: deregister status %d", resp.StatusCode)
	}
	return nil
}

func writeJSON(rw http.ResponseWriter, status int, v any) {
	rw.Header().Set("Content-Type", "application/json")
	rw.WriteHeader(status)
	json.NewEncoder(rw).Encode(v)
}
