package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"hammertime/internal/check/diff"
	"hammertime/internal/cluster/resilience"
	"hammertime/internal/harness"
	"hammertime/internal/sim"
)

func TestPartitionEdgeCases(t *testing.T) {
	seq := func(n int) []int {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	cases := []struct {
		name      string
		cells     []int
		workers   int
		batchSize int
		want      [][]int
	}{
		{"one cell many workers", seq(1), 8, 4, [][]int{{0}}},
		{"fewer cells than workers", seq(3), 5, 4, [][]int{{0}, {1}, {2}}},
		{"batch size one", seq(4), 2, 1, [][]int{{0}, {1}, {2}, {3}}},
		{"cap at batch size", seq(8), 2, 2, [][]int{{0, 1}, {2, 3}, {4, 5}, {6, 7}}},
		{"even split", seq(6), 3, 4, [][]int{{0, 1}, {2, 3}, {4, 5}}},
		{"uneven tail", seq(7), 3, 4, [][]int{{0, 1, 2}, {3, 4, 5}, {6}}},
		{"no cells", nil, 3, 4, nil},
		{"single worker", seq(5), 1, 2, [][]int{{0, 1}, {2, 3}, {4}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := partition(tc.cells, tc.workers, tc.batchSize)
			if len(got) != len(tc.want) {
				t.Fatalf("partition(%v, %d, %d) = %v, want %v", tc.cells, tc.workers, tc.batchSize, got, tc.want)
			}
			for i := range got {
				if len(got[i]) != len(tc.want[i]) {
					t.Fatalf("batch %d = %v, want %v", i, got[i], tc.want[i])
				}
				for k := range got[i] {
					if got[i][k] != tc.want[i][k] {
						t.Fatalf("batch %d = %v, want %v", i, got[i], tc.want[i])
					}
				}
			}
		})
	}
}

func TestRegistryTTLBoundary(t *testing.T) {
	reg := NewRegistry(10 * time.Second)
	now := time.Unix(1000, 0)
	reg.now = func() time.Time { return now }
	reg.Register("a", "http://a")

	// Exactly at the TTL boundary the worker is still live; one
	// nanosecond past it is not.
	now = now.Add(10 * time.Second)
	if len(reg.Live()) != 1 {
		t.Fatal("worker dead exactly at TTL")
	}
	now = now.Add(time.Nanosecond)
	if len(reg.Live()) != 0 {
		t.Fatal("worker live past TTL")
	}
}

func TestRegistryFlap(t *testing.T) {
	reg := NewRegistry(10 * time.Second)
	now := time.Unix(1000, 0)
	reg.now = func() time.Time { return now }

	// A flapping worker: registers, goes silent past TTL, comes back —
	// repeatedly. Each return restores liveness under the same entry.
	for i := 0; i < 5; i++ {
		reg.Register("flappy", "http://f")
		if len(reg.Live()) != 1 {
			t.Fatalf("cycle %d: flapping worker not live after heartbeat", i)
		}
		now = now.Add(11 * time.Second)
		if len(reg.Live()) != 0 {
			t.Fatalf("cycle %d: silent worker still live", i)
		}
	}
	if got := len(reg.Views()); got != 1 {
		t.Fatalf("flapping under one name left %d entries, want 1", got)
	}
}

func TestRegistryEvictsSilentWorkers(t *testing.T) {
	reg := NewRegistryConfig(RegistryConfig{TTL: 10 * time.Second, SweepAfter: 4})
	now := time.Unix(1000, 0)
	reg.now = func() time.Time { return now }

	// Flapping workers re-registering under fresh names must not grow
	// the map forever: entries silent for SweepAfter×TTL are removed.
	for i := 0; i < 20; i++ {
		reg.Register(fmt.Sprintf("ephemeral-%d", i), "http://e")
		now = now.Add(11 * time.Second)
	}
	// 4×10s of silence evicts; at 11s per cycle, only the last ~4 names
	// can still be within the sweep window.
	reg.Register("fresh", "http://f")
	if got := len(reg.Views()); got > 5 {
		t.Fatalf("registry holds %d entries after churn, want <= 5 (map must shrink)", got)
	}
	if got := reg.Evicted(); got < 15 {
		t.Fatalf("evicted counter %d, want >= 15", got)
	}

	// A quarantined entry survives the sweep: eviction must not launder
	// the penalty.
	reg.Register("corrupt", "http://c")
	reg.Quarantine("corrupt", time.Hour)
	now = now.Add(10 * time.Minute)
	reg.Register("poke", "http://p") // triggers a sweep
	if !reg.IsQuarantined("corrupt") {
		t.Fatal("sweep laundered an active quarantine")
	}
	if reg.Register("corrupt", "http://c") {
		t.Fatal("quarantined heartbeat accepted")
	}
}

func TestRegistryQuarantineLifecycle(t *testing.T) {
	reg := NewRegistryConfig(RegistryConfig{
		TTL:     time.Minute,
		Breaker: resilience.BreakerConfig{Threshold: 3, Cooldown: 5 * time.Second},
	})
	now := time.Unix(1000, 0)
	reg.now = func() time.Time { return now }

	reg.Register("w", "http://w")
	if !reg.Quarantine("w", 10*time.Minute) {
		t.Fatal("quarantine of a known worker failed")
	}
	if len(reg.Live()) != 0 {
		t.Fatal("quarantined worker still live")
	}
	if reg.Register("w", "http://w") {
		t.Fatal("heartbeat accepted during quarantine")
	}
	if reg.Quarantined() != 1 {
		t.Fatal("quarantined gauge != 1")
	}
	views := reg.Views()
	if len(views) != 1 || views[0].Breaker != "quarantined" || !views[0].Quarantined {
		t.Fatalf("views %+v, want quarantined state", views)
	}

	// Penalty ends: heartbeats resume, but the worker re-enters only as
	// a half-open probe — one clean batch gates real traffic.
	now = now.Add(10*time.Minute + time.Second)
	if !reg.Register("w", "http://w") {
		t.Fatal("heartbeat rejected after penalty ended")
	}
	live := reg.Live()
	if len(live) != 1 || !live[0].Probe {
		t.Fatalf("post-quarantine live %+v, want probe", live)
	}
	reg.ReportSuccess("w")
	live = reg.Live()
	if len(live) != 1 || live[0].Probe {
		t.Fatalf("post-probe live %+v, want closed", live)
	}
	if reg.Quarantine("ghost", time.Hour) {
		t.Fatal("quarantine of unknown worker reported true")
	}
}

func TestMountValidatesAddr(t *testing.T) {
	d := NewDispatcher(DispatcherConfig{})
	mux := http.NewServeMux()
	d.Mount(mux)
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)

	post := func(body string) int {
		t.Helper()
		resp, err := http.Post(srv.URL+"/v1/cluster/register", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	for _, bad := range []string{
		`{"name":"w","addr":"not a url"}`,
		`{"name":"w","addr":"10.0.0.7:9091"}`,       // no scheme
		`{"name":"w","addr":"ftp://10.0.0.7:9091"}`, // wrong scheme
		`{"name":"w","addr":"http://"}`,             // no host
		`{"name":"w","addr":""}`,                    // empty
		`{"addr":"http://10.0.0.7:9091"}`,           // no name
	} {
		if got := post(bad); got != http.StatusBadRequest {
			t.Errorf("register %s -> %d, want 400", bad, got)
		}
	}
	if got := post(`{"name":"w","addr":"http://10.0.0.7:9091"}`); got != http.StatusOK {
		t.Fatalf("valid register -> %d, want 200", got)
	}
	if got := len(d.Registry().Live()); got != 1 {
		t.Fatalf("live %d after register, want 1", got)
	}

	// Deregister drops the worker from dispatch immediately.
	if got := post(`{"name":"w","deregister":true}`); got != http.StatusOK {
		t.Fatalf("deregister -> %d, want 200", got)
	}
	if got := len(d.Registry().Live()); got != 0 {
		t.Fatalf("live %d after deregister, want 0", got)
	}

	// A quarantined worker's heartbeat is refused with 403.
	post(`{"name":"q","addr":"http://10.0.0.8:9091"}`)
	d.Registry().Quarantine("q", time.Hour)
	if got := post(`{"name":"q","addr":"http://10.0.0.8:9091"}`); got != http.StatusForbidden {
		t.Fatalf("quarantined heartbeat -> %d, want 403", got)
	}
}

func TestWorkerDrainRefusesNewBatches(t *testing.T) {
	node := &WorkerNode{Name: "w"}
	srv := httptest.NewServer(node.Handler())
	t.Cleanup(srv.Close)

	node.StartDrain()
	resp, err := http.Post(srv.URL+"/v1/cells", "application/json",
		strings.NewReader(`{"experiment":"e1","grid":"e1","cells":[0]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining worker answered %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
	// Liveness stays up during the drain (the server is still draining,
	// not dead).
	h, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	h.Body.Close()
	if h.StatusCode != http.StatusOK {
		t.Fatalf("healthz %d during drain, want 200", h.StatusCode)
	}
	if err := node.WaitIdle(context.Background()); err != nil {
		t.Fatalf("WaitIdle with nothing in flight: %v", err)
	}
}

func TestDispatchRetriesTransientFault(t *testing.T) {
	if testing.Short() {
		t.Skip("full simulations; skipped in -short")
	}
	// The first two batch attempts 500; their retries succeed. With
	// bounded retries the grid completes without stealing a single cell
	// or charging the breaker.
	inner := (&WorkerNode{Name: "w1"}).Handler()
	var calls atomic.Int64
	var failed atomic.Int64
	flaky := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/cells" && calls.Add(1) <= 2 {
			failed.Add(1)
			writeJSON(rw, http.StatusInternalServerError, errorBody{Error: "transient"})
			return
		}
		inner.ServeHTTP(rw, r)
	}))
	t.Cleanup(flaky.Close)

	reg := NewRegistry(time.Minute)
	reg.Register("w1", flaky.URL)
	d := NewDispatcher(DispatcherConfig{
		Registry:        reg,
		DispatchTimeout: time.Minute,
		BatchSize:       2,
		RetryBase:       time.Millisecond,
	})
	opts := fastOpts()
	del := d.ForJob("e1", opts.Horizon, opts)
	if err := diff.SerialVsDistributed(context.Background(), del, "e1", opts.Horizon, opts); err != nil {
		t.Fatal(err)
	}
	if failed.Load() == 0 {
		t.Fatal("fault injection never fired")
	}
	if got := counter(d, "cluster.rpc.retries"); got < failed.Load() {
		t.Fatalf("retries %d, want >= %d (one per injected 500)", got, failed.Load())
	}
	if got := counter(d, "cluster.cells.stolen"); got != 0 {
		t.Fatalf("%d cells stolen; retries should have absorbed every fault", got)
	}
	if got := counter(d, "cluster.worker.failures"); got != 0 {
		t.Fatalf("%d worker failures recorded; retries should have absorbed every fault", got)
	}
}

func TestBadRequestNotRetried(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		writeJSON(rw, http.StatusBadRequest, errorBody{Error: "no such grid"})
	}))
	t.Cleanup(srv.Close)

	reg := NewRegistry(time.Minute)
	reg.Register("w1", srv.URL)
	d := NewDispatcher(DispatcherConfig{Registry: reg, RetryBase: time.Millisecond})
	j := &jobDelegate{d: d, experiment: "e1", horizon: 1000}
	_, err := j.dispatchRetry(context.Background(), Worker{Name: "w1", Addr: srv.URL},
		harness.GridSpec{ID: "e1", Config: "c"}, []int{0})
	if err == nil {
		t.Fatal("4xx reply did not error")
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("4xx retried: %d calls, want 1", got)
	}
	if got := counter(d, "cluster.rpc.retries"); got != 0 {
		t.Fatalf("retry counter %d for a non-retryable error", got)
	}
}

func TestAuditQuarantinesCorruptingWorker(t *testing.T) {
	if testing.Short() {
		t.Skip("full simulations; skipped in -short")
	}
	// A Byzantine worker corrupts every result byte-level while echoing
	// perfect keys; a partial audit (half the cells) must still catch
	// it, purge everything it contributed, and converge byte-identical.
	healthy := startWorker(t, "w2-healthy")
	corrupt := httptest.NewServer(resilience.CorruptCellResults((&WorkerNode{Name: "w1-corrupt"}).Handler(), 7, 1))
	t.Cleanup(corrupt.Close)

	reg := NewRegistryConfig(RegistryConfig{
		TTL:     time.Minute,
		Breaker: resilience.BreakerConfig{Threshold: 2, Cooldown: 50 * time.Millisecond},
	})
	reg.Register("w1-corrupt", corrupt.URL)
	reg.Register("w2-healthy", healthy.URL)
	d := NewDispatcher(DispatcherConfig{
		Registry:        reg,
		DispatchTimeout: time.Minute,
		BatchSize:       2,
		RetryBase:       time.Millisecond,
		AuditFraction:   0.5,
		AuditSeed:       3,
		QuarantineFor:   time.Hour,
	})
	opts := fastOpts()
	del := d.ForJob("e1", opts.Horizon, opts)
	if err := diff.SerialVsDistributed(context.Background(), del, "e1", opts.Horizon, opts); err != nil {
		t.Fatal(err)
	}
	if got := counter(d, "cluster.cells.audited"); got == 0 {
		t.Fatal("audit sampled nothing")
	}
	if got := counter(d, "cluster.cells.audit_mismatch"); got == 0 {
		t.Fatal("audit never saw the corruption")
	}
	if got := counter(d, "cluster.worker.quarantined"); got != 1 {
		t.Fatalf("quarantined %d workers, want 1", got)
	}
	if !d.Registry().IsQuarantined("w1-corrupt") {
		t.Fatal("corrupting worker not quarantined")
	}
	if d.Registry().IsQuarantined("w2-healthy") {
		t.Fatal("healthy worker quarantined")
	}
}

// TestClusterChaosSoak is the capstone e2e: a coordinator and three
// in-process workers — one healthy, one flapping (partition-windowed off
// the network twice), one Byzantine (corrupting result bytes) — under a
// seeded RPC fault schedule of drops, delays and two latency spikes. The
// merged table must come out byte-identical to a serial run, within the
// dispatch-round bound, with the corrupting worker quarantined and every
// resilience counter accounted for. Set HAMMERTIME_CHAOS_ARTIFACTS to a
// directory to keep the fault schedule and merged-table artifacts.
func TestClusterChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("full simulations; skipped in -short")
	}
	healthy := startWorker(t, "w1-healthy")
	flappy := startWorker(t, "w2-flappy")
	corrupt := httptest.NewServer(resilience.CorruptCellResults((&WorkerNode{Name: "w3-corrupt"}).Handler(), 11, 1))
	t.Cleanup(corrupt.Close)

	// The flapping worker is implemented as two partition windows on its
	// host: reachable, gone, back, gone again — the repeated-crash shape,
	// deterministic in the transport's call index.
	flappyHost := strings.TrimPrefix(flappy.URL, "http://")
	spec, err := resilience.ParseSpec(fmt.Sprintf(
		"drop:0.1,delay=2ms:0.3,spike=10ms@6-9,spike=10ms@18-21,partition=%s@3-7,partition=%s@12-16", flappyHost, flappyHost))
	if err != nil {
		t.Fatal(err)
	}
	chaos := resilience.NewTransport(nil, spec, 42)

	reg := NewRegistryConfig(RegistryConfig{
		TTL:     time.Minute,
		Breaker: resilience.BreakerConfig{Threshold: 2, Cooldown: 10 * time.Millisecond},
	})
	reg.Register("w1-healthy", healthy.URL)
	reg.Register("w2-flappy", flappy.URL)
	reg.Register("w3-corrupt", corrupt.URL)
	d := NewDispatcher(DispatcherConfig{
		Registry:        reg,
		Client:          &http.Client{Transport: chaos},
		Chaos:           chaos,
		DispatchTimeout: time.Minute,
		BatchSize:       2,
		MaxRounds:       8,
		RPCRetries:      2,
		RetryBase:       time.Millisecond,
		HedgeRounds:     2,
		HedgeDelay:      5 * time.Millisecond,
		AuditFraction:   1, // soak audits everything: any corrupt byte is terminal
		QuarantineFor:   time.Hour,
	})

	opts := fastOpts()
	del := d.ForJob("e1", opts.Horizon, opts)

	// Byte identity under chaos: the fault layer may slow the run and
	// reroute cells, but never change a single byte of the result.
	ctx := harness.WithGridDelegate(context.Background(), del)
	tb, err := harness.Experiment(ctx, "e1", opts.Horizon, opts)
	if err != nil {
		t.Fatalf("chaos run failed: %v", err)
	}
	serial, err := harness.Experiment(context.Background(), "e1", opts.Horizon, opts)
	if err != nil {
		t.Fatal(err)
	}
	if tb.String() != serial.String() {
		t.Fatalf("chaos run diverged from serial:\n--- chaos ---\n%s\n--- serial ---\n%s", tb, serial)
	}

	var st sim.Stats
	d.MergeInto(&st)
	if got := st.Counter("cluster.dispatch.rounds"); got < 1 || got > 8 {
		t.Fatalf("dispatch rounds %d, want within [1, MaxRounds=8]", got)
	}
	if got := st.Counter("cluster.worker.quarantined"); got != 1 {
		t.Fatalf("quarantined %d workers, want exactly the Byzantine one", got)
	}
	if !reg.IsQuarantined("w3-corrupt") {
		t.Fatal("corrupting worker not quarantined")
	}
	if reg.IsQuarantined("w1-healthy") || reg.IsQuarantined("w2-flappy") {
		t.Fatal("an honest worker was quarantined")
	}
	if got := st.Counter("cluster.cells.audited"); got == 0 {
		t.Fatal("audit counter empty")
	}
	// The injected faults must actually have fired and been counted into
	// the metrics families the /metrics endpoint exposes.
	injected := int64(0)
	for _, fault := range []string{"dropped", "delayed", "spiked", "partitioned"} {
		injected += st.Counter("cluster.chaos." + fault)
	}
	if injected == 0 {
		t.Fatal("chaos transport injected nothing; the soak soaked nothing")
	}

	if dir := os.Getenv("HAMMERTIME_CHAOS_ARTIFACTS"); dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		var sched bytes.Buffer
		if err := chaos.WriteSchedule(&sched); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "fault-schedule.jsonl"), sched.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "merged-table.txt"), []byte(tb.String()), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "serial-table.txt"), []byte(serial.String()), 0o644); err != nil {
			t.Fatal(err)
		}
		counters, _ := json.MarshalIndent(chaos.Counters(), "", "  ")
		if err := os.WriteFile(filepath.Join(dir, "chaos-counters.json"), counters, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestCachedPathAllocs pins the cached-cell fast path: once every cell
// is in the result cache, RunGrid must stay allocation-lean — in
// particular the resilience layer's provenance map, audit sampling and
// hedging must cost nothing when no cell is dispatched.
func TestCachedPathAllocs(t *testing.T) {
	d := NewDispatcher(DispatcherConfig{AuditFraction: 0.5, HedgeRounds: 2})
	spec := harness.GridSpec{ID: "g", Config: "c"}
	const n = 16
	for i := 0; i < n; i++ {
		d.cache.Put(harness.CellKey(spec, i), json.RawMessage(`{"v":1}`))
	}
	j := &jobDelegate{d: d, experiment: "e1", horizon: 1000}
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := j.RunGrid(context.Background(), spec, n); err != nil {
			t.Fatal(err)
		}
	})
	// Baseline (~86 for 16 cells) is dominated by CellKey — the FNV
	// hasher, format args and hex string per cell — plus the keys slice
	// and results map, all predating the resilience layer. The bound
	// leaves modest headroom yet sits below baseline+n, so any new
	// per-cell cost (an eagerly allocated origin map entry, an audit
	// draw, hedge bookkeeping) trips it.
	if allocs > 94 {
		t.Fatalf("cached-path RunGrid costs %.0f allocs for %d cells, want <= 94", allocs, n)
	}
}
