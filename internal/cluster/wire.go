// Package cluster is the coordinator/worker split of hammerd: a
// coordinator partitions a job's experiment grid across registered
// worker nodes by content-addressed cell key, fronted by a result cache,
// and merges the returned cells into a table byte-identical to a serial
// run. The split rides the harness's distribution hooks — a GridDelegate
// on the coordinator, a CellCapture on each worker — so the experiment
// code itself never changes.
//
// The protocol is deliberately idempotent: cells are pure functions of
// (experiment, opts, epoch, seed, index), so a cell dispatched twice —
// after a worker death, a deadline miss, a duplicate job — merges to the
// same bytes. Stealing a straggler's cells back and re-dispatching them
// is therefore always safe, and the cache can serve any node's work to
// any later job.
package cluster

import (
	"encoding/json"
	"time"

	"hammertime/internal/harness"
	"hammertime/internal/telemetry"
)

// Opts is the serializable subset of harness.AttackOpts — exactly the
// fields that determine grid results, so a worker rebuilding a grid from
// an Opts produces the same GridSpec.Config (and therefore the same cell
// keys) as the coordinator. Observer-only fields (Parallelism, Observer,
// AttackTrace) never cross the wire: each node parallelizes for its own
// cores, and jobs carrying non-serializable state are not distributable.
type Opts struct {
	Horizon         uint64   `json:"horizon,omitempty"`
	Tenants         int      `json:"tenants,omitempty"`
	PagesPerTenant  int      `json:"pages_per_tenant,omitempty"`
	BenignThink     uint64   `json:"benign_think,omitempty"`
	VictimIntegrity bool     `json:"victim_integrity,omitempty"`
	Defenses        []string `json:"defenses,omitempty"`
	ManySided       int      `json:"many_sided,omitempty"`
}

// OptsFrom extracts the wire subset of o.
func OptsFrom(o harness.AttackOpts) Opts {
	return Opts{
		Horizon:         o.Horizon,
		Tenants:         o.Tenants,
		PagesPerTenant:  o.PagesPerTenant,
		BenignThink:     o.BenignThink,
		VictimIntegrity: o.VictimIntegrity,
		Defenses:        o.Defenses,
		ManySided:       o.ManySided,
	}
}

// Attack expands the wire form back into harness options.
func (o Opts) Attack() harness.AttackOpts {
	return harness.AttackOpts{
		Horizon:         o.Horizon,
		Tenants:         o.Tenants,
		PagesPerTenant:  o.PagesPerTenant,
		BenignThink:     o.BenignThink,
		VictimIntegrity: o.VictimIntegrity,
		Defenses:        o.Defenses,
		ManySided:       o.ManySided,
	}
}

// Distributable reports whether a job described by opts can be sharded
// across workers: replayed traces, trace recording and event observers
// are process-local state a remote worker cannot reproduce, so those
// jobs run where they were submitted.
func Distributable(o harness.AttackOpts) bool {
	return o.ReplayAttack == nil && o.AttackTrace == nil && o.Observer == nil
}

// CellRequest asks a worker to compute a subset of one grid's cells.
// The worker rebuilds the exact grid from (Experiment, Horizon, Opts),
// runs only Cells, and echoes each cell's content key so the coordinator
// can detect a config/epoch/seed skew between nodes before merging.
type CellRequest struct {
	Experiment string `json:"experiment"`
	Horizon    uint64 `json:"horizon,omitempty"`
	Opts       Opts   `json:"opts"`
	// Grid and Config identify the target grid (GridSpec.ID and .Config
	// as the coordinator computed them).
	Grid   string `json:"grid"`
	Config string `json:"config"`
	Cells  []int  `json:"cells"`
	// Epoch is the coordinator's sim.DeterminismEpoch: a version-skewed
	// worker rejects the request outright instead of computing cells
	// whose keys can never match.
	Epoch int `json:"epoch"`
	// TraceID propagates the submitting job's trace across the RPC; the
	// worker's spans come back in CellResponse.Spans and are grafted into
	// the job's trace.
	TraceID string `json:"trace_id,omitempty"`
}

// CellResult is one computed cell: its index in the grid, its content
// key, and the exact JSON its value marshalled to.
type CellResult struct {
	Index  int             `json:"index"`
	Key    string          `json:"key"`
	Result json.RawMessage `json:"result"`
}

// CellResponse is the worker's answer: every requested cell, the grid
// config as the worker computed it, and the worker-side trace spans.
type CellResponse struct {
	Worker string               `json:"worker"`
	Config string               `json:"config"`
	Cells  []CellResult         `json:"cells"`
	Spans  []telemetry.SpanSnap `json:"spans,omitempty"`
}

// RegisterRequest announces (and re-announces — registration doubles as
// the heartbeat) a worker to the coordinator.
type RegisterRequest struct {
	Name string `json:"name"`
	// Addr is the worker's base URL, e.g. "http://10.0.0.7:9091". Must be
	// an absolute http(s) URL; the coordinator rejects anything else with
	// a 400 at registration rather than failing dispatches later.
	Addr string `json:"addr"`
	// Deregister, when true, is a draining worker's goodbye: the
	// coordinator drops it from dispatch immediately instead of waiting
	// out the heartbeat TTL.
	Deregister bool `json:"deregister,omitempty"`
}

// WorkerView is one registry entry as reported by the coordinator's
// /v1/cluster/workers endpoint.
type WorkerView struct {
	Name     string    `json:"name"`
	Addr     string    `json:"addr"`
	LastSeen time.Time `json:"last_seen"`
	Live     bool      `json:"live"`
	// Breaker is the worker's circuit-breaker state: "closed", "open",
	// "half-open", or "quarantined".
	Breaker string `json:"breaker"`
	// Quarantined marks a worker serving a corrupt-result penalty.
	Quarantined bool `json:"quarantined,omitempty"`
}

// errorBody is the JSON error envelope of the worker and coordinator
// HTTP endpoints.
type errorBody struct {
	Error string `json:"error"`
}
