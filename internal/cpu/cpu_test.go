package cpu

import (
	"testing"

	"hammertime/internal/addr"
	"hammertime/internal/cache"
	"hammertime/internal/dram"
	"hammertime/internal/memctrl"
)

func buildParts(t *testing.T) (*cache.Cache, *memctrl.Controller) {
	t.Helper()
	mod, err := dram.NewModule(dram.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	mc, err := memctrl.NewController(memctrl.Config{
		Mapper:   addr.NewLineInterleave(mod.Geometry()),
		DRAM:     mod,
		OpenPage: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	llc, err := cache.New(cache.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return llc, mc
}

func fixedProgram(accs []Access) Program {
	i := 0
	return ProgramFunc(func() (Access, bool) {
		if i >= len(accs) {
			return Access{}, false
		}
		a := accs[i]
		i++
		return a, true
	})
}

func TestNewCoreValidates(t *testing.T) {
	llc, mc := buildParts(t)
	if _, err := NewCore(0, 1, nil, llc, mc); err == nil {
		t.Fatal("nil program accepted")
	}
	if _, err := NewCore(0, 1, fixedProgram(nil), nil, mc); err == nil {
		t.Fatal("nil cache accepted")
	}
}

func TestCoreCachesRepeatedAccess(t *testing.T) {
	llc, mc := buildParts(t)
	core, err := NewCore(0, 1, fixedProgram([]Access{{Line: 5}, {Line: 5}, {Line: 5}}), llc, mc)
	if err != nil {
		t.Fatal(err)
	}
	now := uint64(0)
	for {
		next, ok, err := core.Step(now)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		now = next
	}
	c := core.Counters()
	if c.Accesses != 3 || c.LLCMisses != 1 {
		t.Fatalf("accesses=%d misses=%d, want 3/1", c.Accesses, c.LLCMisses)
	}
	if !core.Done() {
		t.Fatal("core not done")
	}
}

func TestCoreFlushForcesDRAMAccess(t *testing.T) {
	llc, mc := buildParts(t)
	prog := fixedProgram([]Access{
		{Line: 5}, {Line: 5, Flush: true}, {Line: 5, Flush: true},
	})
	core, err := NewCore(0, 1, prog, llc, mc)
	if err != nil {
		t.Fatal(err)
	}
	now := uint64(0)
	for {
		next, ok, err := core.Step(now)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		now = next
	}
	c := core.Counters()
	if c.LLCMisses != 3 {
		t.Fatalf("misses = %d, want 3 (flush evicts every time)", c.LLCMisses)
	}
	if c.Flushes != 2 {
		t.Fatalf("flushes = %d", c.Flushes)
	}
}

func TestCoreDirtyFlushWritesBack(t *testing.T) {
	llc, mc := buildParts(t)
	prog := fixedProgram([]Access{
		{Line: 5, Write: true}, {Line: 5, Flush: true},
	})
	core, err := NewCore(0, 1, prog, llc, mc)
	if err != nil {
		t.Fatal(err)
	}
	now := uint64(0)
	for {
		next, ok, err := core.Step(now)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		now = next
	}
	if got := mc.Stats().Counter("mc.writes"); got != 1 {
		t.Fatalf("writebacks = %d, want 1", got)
	}
}

func TestCoreThinkTimeAdvancesClock(t *testing.T) {
	llc, mc := buildParts(t)
	core, err := NewCore(0, 1, fixedProgram([]Access{{Line: 1, Think: 5000}}), llc, mc)
	if err != nil {
		t.Fatal(err)
	}
	next, ok, err := core.Step(0)
	if err != nil || !ok {
		t.Fatal(err, ok)
	}
	if next < 5000 {
		t.Fatalf("next ready = %d, want >= think time", next)
	}
}

func TestCoreSamplesCaptureMisses(t *testing.T) {
	llc, mc := buildParts(t)
	var accs []Access
	for i := 0; i < 10; i++ {
		accs = append(accs, Access{Line: uint64(i * 1000)})
	}
	core, err := NewCore(0, 1, fixedProgram(accs), llc, mc)
	if err != nil {
		t.Fatal(err)
	}
	now := uint64(0)
	for {
		next, ok, err := core.Step(now)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		now = next
	}
	s := core.Samples()
	if len(s) != 10 {
		t.Fatalf("samples = %d, want 10", len(s))
	}
	if got := core.Samples(); len(got) != 0 {
		t.Fatal("Samples did not drain the ring")
	}
}

func TestCoreStepAfterDone(t *testing.T) {
	llc, mc := buildParts(t)
	core, err := NewCore(0, 1, fixedProgram(nil), llc, mc)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := core.Step(0); ok {
		t.Fatal("empty program stepped")
	}
	if _, ok, _ := core.Step(0); ok {
		t.Fatal("done core stepped again")
	}
}
