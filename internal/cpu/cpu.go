// Package cpu models CPU cores as sequential streams of memory accesses
// driven through the cache hierarchy into the memory controller, plus the
// per-core performance counters that existing software defenses (ANVIL)
// sample. Crucially, those counters see only CPU cache misses — DMA
// traffic never shows up in them, which is the §1 blind spot the paper's
// precise ACT interrupt closes.
package cpu

import (
	"fmt"

	"hammertime/internal/cache"
	"hammertime/internal/memctrl"
)

// Access is one step of a program: optionally flush the line first
// (CLFLUSH + fence, the standard hammering idiom), then load or store it.
type Access struct {
	Line  uint64
	Write bool
	// Flush evicts the line before the access so it must reach DRAM.
	Flush bool
	// Think is extra cycles the core spends before its next access
	// (models computation between memory operations).
	Think uint64
}

// Program generates a core's access stream. Next returns ok=false when the
// program has finished.
type Program interface {
	Next() (Access, bool)
}

// ProgramFunc adapts a function to the Program interface.
type ProgramFunc func() (Access, bool)

// Next implements Program.
func (f ProgramFunc) Next() (Access, bool) { return f() }

// PerfCounters is the per-core PMU state visible to system software.
// ANVIL-style defenses poll LLCMisses; note there is no DMA counter.
type PerfCounters struct {
	Accesses  uint64
	LLCMisses uint64
	Flushes   uint64
}

// Core executes a Program against the shared cache and memory controller.
type Core struct {
	ID     int
	Domain int

	prog  Program
	cache *cache.Cache
	mc    *memctrl.Controller

	// HitLatency is the cycle cost of an LLC hit (default 20).
	HitLatency uint64
	// FlushLatency is the cycle cost of a CLFLUSH (default 40).
	FlushLatency uint64
	// MLP is the number of independent outstanding misses the core can
	// sustain (default 1, an in-order core). An out-of-order core with
	// MLP > 1 issues up to MLP program accesses with the same arrival
	// time, so their DRAM latencies overlap when they hit different
	// banks — the bank-level parallelism §4.1's interleaving argument is
	// about.
	MLP int

	counters PerfCounters

	// samples is a PEBS-like ring of recent LLC-miss line addresses —
	// what ANVIL-style defenses sample. Only CPU misses land here; DMA
	// traffic is invisible to core PMUs.
	samples   []uint64
	sampleCap int
	done      bool
}

// NewCore builds a core running prog in the given trust domain.
func NewCore(id, domain int, prog Program, c *cache.Cache, mc *memctrl.Controller) (*Core, error) {
	if prog == nil {
		return nil, fmt.Errorf("cpu: core %d needs a program", id)
	}
	if c == nil || mc == nil {
		return nil, fmt.Errorf("cpu: core %d needs a cache and a memory controller", id)
	}
	return &Core{ID: id, Domain: domain, prog: prog, cache: c, mc: mc,
		HitLatency: 20, FlushLatency: 40, sampleCap: 256}, nil
}

// Samples returns the recent LLC-miss line addresses captured by the
// core's PEBS-like sampling buffer (most recent last) and clears it.
func (c *Core) Samples() []uint64 {
	out := c.samples
	c.samples = nil
	return out
}

// Done reports whether the core's program has finished.
func (c *Core) Done() bool { return c.done }

// Counters returns the core's performance counters.
func (c *Core) Counters() PerfCounters { return c.counters }

// Step executes the program's next access (or, with MLP > 1, the next
// batch of accesses issued in parallel) starting at cycle now and returns
// the cycle at which the core is ready for its next step. ok=false means
// the program ended (and the returned cycle is now).
func (c *Core) Step(now uint64) (next uint64, ok bool, err error) {
	if c.done {
		return now, false, nil
	}
	width := c.MLP
	if width <= 1 {
		width = 1
	}
	latest := now
	issued := 0
	var think uint64
	for i := 0; i < width; i++ {
		acc, more := c.prog.Next()
		if !more {
			if issued == 0 {
				c.done = true
				return now, false, nil
			}
			break
		}
		done, err := c.access(acc, now)
		if err != nil {
			return now, false, err
		}
		if done > latest {
			latest = done
		}
		think = acc.Think
		issued++
	}
	return latest + think, true, nil
}

// access executes one program access beginning at cycle now and returns
// its completion cycle.
func (c *Core) access(acc Access, now uint64) (uint64, error) {
	t := now
	if acc.Flush {
		if present, dirty := c.cache.Flush(acc.Line); present && dirty {
			// Writeback of the dirty line to memory.
			res, err := c.mc.ServeRequest(memctrl.Request{
				Line:   acc.Line,
				Write:  true,
				Domain: c.Domain,
				Source: memctrl.Source{Kind: memctrl.SourceCPU, ID: c.ID},
			}, t)
			if err != nil {
				return 0, fmt.Errorf("cpu: core %d writeback: %w", c.ID, err)
			}
			t = res.Completion
		}
		t += c.FlushLatency
		c.counters.Flushes++
	}

	c.counters.Accesses++
	cres := c.cache.Access(acc.Line, acc.Write)
	if cres.Hit {
		t += c.HitLatency
	} else {
		c.counters.LLCMisses++
		if len(c.samples) >= c.sampleCap {
			copy(c.samples, c.samples[1:])
			c.samples = c.samples[:len(c.samples)-1]
		}
		c.samples = append(c.samples, acc.Line)
		if cres.Writeback {
			res, err := c.mc.ServeRequest(memctrl.Request{
				Line:   cres.WritebackLine,
				Write:  true,
				Domain: c.Domain,
				Source: memctrl.Source{Kind: memctrl.SourceCPU, ID: c.ID},
			}, t)
			if err != nil {
				return 0, fmt.Errorf("cpu: core %d eviction writeback: %w", c.ID, err)
			}
			t = res.Completion
		}
		// A store miss fills the line with a read (read-for-ownership);
		// the dirty data only reaches DRAM on eviction or flush.
		res, err := c.mc.ServeRequest(memctrl.Request{
			Line:   acc.Line,
			Domain: c.Domain,
			Source: memctrl.Source{Kind: memctrl.SourceCPU, ID: c.ID},
		}, t)
		if err != nil {
			return 0, fmt.Errorf("cpu: core %d access: %w", c.ID, err)
		}
		t = res.Completion
	}
	return t, nil
}
