// Package report renders experiment results as aligned text tables and
// CSV — the output format of the benchmark harness that regenerates the
// paper's tables and figures.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is an ordered grid of string cells with a header row.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Headers))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.Rows = append(t.Rows, row)
}

// errCellPrefix marks a cell holding a failure placeholder instead of a
// measurement (see ErrCell).
const errCellPrefix = "ERR("

// ErrCell formats the placeholder a degraded (fail-soft) run renders for
// a failed grid cell: ERR(reason). Partial tables keep their rows — a
// long sweep with one bad cell is still a table — and the placeholder
// marks exactly where the grid degraded.
func ErrCell(reason string) string { return errCellPrefix + reason + ")" }

// ErrCellN is ErrCell annotated with the attempt count: a cell that
// failed after retries renders as ERR(reason x3), recording how many
// times the harness tried before giving up. attempts <= 1 renders
// exactly like ErrCell, so tables without retries are unchanged.
func ErrCellN(reason string, attempts int) string {
	if attempts <= 1 {
		return ErrCell(reason)
	}
	return fmt.Sprintf("%s%s x%d)", errCellPrefix, reason, attempts)
}

// IsErrCell reports whether a cell is a failure placeholder.
func IsErrCell(cell string) bool { return strings.HasPrefix(cell, errCellPrefix) }

// Degraded reports whether any cell of the table is a failure
// placeholder, i.e. the table came out of a fail-soft run that lost
// cells.
func (t *Table) Degraded() bool { return t.DegradedCells() > 0 }

// DegradedCells counts the failure placeholders in the table.
func (t *Table) DegradedCells() int {
	n := 0
	for _, row := range t.Rows {
		for _, c := range row {
			if IsErrCell(c) {
				n++
			}
		}
	}
	return n
}

// AddRowf appends a row of formatted values: each value is rendered with
// %v except float64, which uses %.3g.
func (t *Table) AddRowf(values ...any) {
	cells := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			cells[i] = fmt.Sprintf("%.3g", x)
		default:
			cells[i] = fmt.Sprint(x)
		}
	}
	t.AddRow(cells...)
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	if err := t.Render(&b); err != nil {
		return fmt.Sprintf("report: render failed: %v", err)
	}
	return b.String()
}

// RenderCSV writes the table as CSV (RFC-4180-ish; cells containing
// commas or quotes are quoted).
func (t *Table) RenderCSV(w io.Writer) error {
	writeRow := func(cells []string) error {
		for i, c := range cells {
			if i > 0 {
				if _, err := io.WriteString(w, ","); err != nil {
					return err
				}
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			if _, err := io.WriteString(w, c); err != nil {
				return err
			}
		}
		_, err := io.WriteString(w, "\n")
		return err
	}
	if err := writeRow(t.Headers); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	return nil
}
