package report

import (
	"strings"
	"testing"
)

func TestTableRenderAligned(t *testing.T) {
	tb := NewTable("demo", "name", "value")
	tb.AddRow("a", "1")
	tb.AddRow("longer-name", "2")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "== demo ==") {
		t.Fatalf("title line: %q", lines[0])
	}
	// Header and rows must align on the widest cell.
	if len(lines[1]) != len(lines[3]) {
		t.Fatalf("misaligned rows:\n%s", out)
	}
}

func TestAddRowPadsShortRows(t *testing.T) {
	tb := NewTable("", "a", "b", "c")
	tb.AddRow("only")
	if got := tb.Rows[0]; len(got) != 3 || got[1] != "" {
		t.Fatalf("row = %v", got)
	}
}

func TestAddRowfFormats(t *testing.T) {
	tb := NewTable("", "x", "f")
	tb.AddRowf(42, 3.14159)
	if tb.Rows[0][0] != "42" || tb.Rows[0][1] != "3.14" {
		t.Fatalf("row = %v", tb.Rows[0])
	}
}

func TestRenderCSVQuotes(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddRow("x,y", `say "hi"`)
	var b strings.Builder
	if err := tb.RenderCSV(&b); err != nil {
		t.Fatal(err)
	}
	want := "a,b\n\"x,y\",\"say \"\"hi\"\"\"\n"
	if b.String() != want {
		t.Fatalf("csv = %q, want %q", b.String(), want)
	}
}

func TestErrCellRoundTrip(t *testing.T) {
	cell := ErrCell("timeout")
	if cell != "ERR(timeout)" {
		t.Fatalf("ErrCell = %q", cell)
	}
	if !IsErrCell(cell) {
		t.Error("IsErrCell rejects its own placeholder")
	}
	for _, s := range []string{"", "12", "error", "err(x)"} {
		if IsErrCell(s) {
			t.Errorf("IsErrCell(%q) = true", s)
		}
	}
}

func TestTableDegraded(t *testing.T) {
	tb := NewTable("t", "a", "b")
	tb.AddRow("1", "2")
	if tb.Degraded() {
		t.Fatal("clean table reports degraded")
	}
	tb.AddRow(ErrCell("panic"), "3")
	tb.AddRow("4", ErrCell("timeout"))
	if !tb.Degraded() {
		t.Fatal("degraded table not detected")
	}
	if got := tb.DegradedCells(); got != 2 {
		t.Fatalf("DegradedCells = %d, want 2", got)
	}
}
