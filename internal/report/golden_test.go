package report

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// update regenerates the golden files instead of comparing against them:
//
//	go test ./internal/report -run Golden -update
var update = flag.Bool("update", false, "rewrite golden files with current output")

// goldenTable exercises every rendering feature in one table: title,
// alignment on the widest cell, AddRowf formatting (%v ints, %.3g
// floats), short-row padding, and CSV quoting of commas and quotes.
func goldenTable() *Table {
	tb := NewTable("golden demo: flips per defense", "defense", "attack", "flips", "rate")
	tb.AddRowf("none", "double-sided", 4182, 0.931)
	tb.AddRowf("para", "many-sided(12)", 0, 0.0)
	tb.AddRowf("blockhammer", `say "throttled"`, 17, 0.00123456)
	tb.AddRow("graphene", "half,double")
	return tb
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/report -run Golden -update` to generate)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden file:\n--- got ---\n%s--- want ---\n%s", name, got, want)
	}
}

func TestGoldenTableText(t *testing.T) {
	var b bytes.Buffer
	if err := goldenTable().Render(&b); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "table.txt", b.Bytes())
}

func TestGoldenTableCSV(t *testing.T) {
	var b bytes.Buffer
	if err := goldenTable().RenderCSV(&b); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "table.csv", b.Bytes())
}
