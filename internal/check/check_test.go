package check_test

import (
	"strings"
	"testing"

	"hammertime/internal/check"
	"hammertime/internal/dram"
	"hammertime/internal/obs"
)

func testConfig() check.Config {
	return check.Config{
		Geometry: dram.DefaultGeometry(),
		Timing:   dram.DDR4Timing(),
		Profile:  dram.DDR4Old(),
	}
}

// firstViolation asserts exactly which invariant tripped first.
func firstViolation(t *testing.T, a *check.Auditor, inv string) check.Violation {
	t.Helper()
	vs := a.Violations()
	if len(vs) == 0 {
		t.Fatalf("expected a %s violation, auditor is clean", inv)
	}
	if vs[0].Invariant != inv {
		t.Fatalf("first violation is %s (%s), want %s", vs[0].Invariant, vs[0].Detail, inv)
	}
	if a.Err() == nil {
		t.Fatal("Err() should surface the violation")
	}
	return vs[0]
}

func TestACTOnOpenBankViolatesFSM(t *testing.T) {
	a := check.New(testConfig())
	rec := a.Chain(nil)
	rec.Emit(obs.Event{Kind: obs.KindACT, Cycle: 10, Bank: 0, Row: 1, Domain: 0, Arg: 1})
	rec.Emit(obs.Event{Kind: obs.KindACT, Cycle: 100, Bank: 0, Row: 2, Domain: 0, Arg: 1})
	v := firstViolation(t, a, check.InvRowBufferFSM)
	if !strings.Contains(v.Detail, "still open") {
		t.Errorf("detail %q should mention the open row", v.Detail)
	}
	if len(v.Trace) == 0 {
		t.Error("violation should carry the recent-event trace")
	}
}

func TestPREOnClosedBankViolatesFSM(t *testing.T) {
	a := check.New(testConfig())
	a.Chain(nil).Emit(obs.Event{Kind: obs.KindPRE, Cycle: 5, Bank: 3, Row: -1, Domain: -1})
	firstViolation(t, a, check.InvRowBufferFSM)
}

func TestClassificationMismatchesViolateFSM(t *testing.T) {
	cases := []struct {
		name string
		evs  []obs.Event
	}{
		{"hit-on-closed", []obs.Event{
			{Kind: obs.KindRowHit, Cycle: 10, Bank: 0, Row: 5, Domain: 0},
		}},
		{"empty-on-open", []obs.Event{
			{Kind: obs.KindACT, Cycle: 10, Bank: 0, Row: 5, Domain: 0, Arg: 1},
			{Kind: obs.KindRowEmpty, Cycle: 100, Bank: 0, Row: 6, Domain: 0},
		}},
		{"conflict-on-same-row", []obs.Event{
			{Kind: obs.KindACT, Cycle: 10, Bank: 0, Row: 5, Domain: 0, Arg: 1},
			{Kind: obs.KindRowConflict, Cycle: 100, Bank: 0, Row: 5, Domain: 0},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a := check.New(testConfig())
			rec := a.Chain(nil)
			for _, ev := range tc.evs {
				rec.Emit(ev)
			}
			firstViolation(t, a, check.InvRowBufferFSM)
		})
	}
}

func TestTRCSpacingViolation(t *testing.T) {
	a := check.New(testConfig())
	rec := a.Chain(nil)
	rec.Emit(obs.Event{Kind: obs.KindACT, Cycle: 10, Bank: 0, Row: 1, Domain: 0, Arg: 1})
	rec.Emit(obs.Event{Kind: obs.KindPRE, Cycle: 12, Bank: 0, Row: -1, Domain: -1})
	// Only 2 cycles after the previous ACT; tRC is 55.
	rec.Emit(obs.Event{Kind: obs.KindACT, Cycle: 12, Bank: 0, Row: 2, Domain: 0, Arg: 1})
	firstViolation(t, a, check.InvTRCSpacing)
}

func TestInternalACTsExemptFromTRCAndCounting(t *testing.T) {
	a := check.New(testConfig())
	rec := a.Chain(nil)
	rec.Emit(obs.Event{Kind: obs.KindACT, Cycle: 10, Bank: 0, Row: 1, Domain: 0, Arg: 1})
	rec.Emit(obs.Event{Kind: obs.KindPRE, Cycle: 12, Bank: 0, Row: -1, Domain: -1})
	// A mitigation-internal cure (Arg 0, Domain -1) right after: legal.
	rec.Emit(obs.Event{Kind: obs.KindACT, Cycle: 12, Bank: 0, Row: 3, Domain: -1})
	rec.Emit(obs.Event{Kind: obs.KindPRE, Cycle: 12, Bank: 0, Row: -1, Domain: -1})
	if err := a.Err(); err != nil {
		t.Fatalf("internal ACT should be exempt from tRC: %v", err)
	}
}

func TestCommandOrderViolation(t *testing.T) {
	a := check.New(testConfig())
	rec := a.Chain(nil)
	rec.Emit(obs.Event{Kind: obs.KindRowEmpty, Cycle: 1000, Bank: 2, Row: 1, Domain: 0})
	rec.Emit(obs.Event{Kind: obs.KindRowHit, Cycle: 500, Bank: 2, Row: 1, Domain: 0})
	firstViolation(t, a, check.InvCmdOrder)
}

func TestRefreshCadenceViolation(t *testing.T) {
	cfg := testConfig()
	a := check.New(cfg)
	// First REF lands one cycle late: a skipped/slipped refresh epoch.
	a.Chain(nil).Emit(obs.Event{Kind: obs.KindREF, Cycle: cfg.Timing.TREFI + 1, Bank: -1, Row: -1, Domain: -1})
	firstViolation(t, a, check.InvRefCadence)
}

func TestRefIssueOrderViolation(t *testing.T) {
	cfg := testConfig()
	tREFI := cfg.Timing.TREFI
	a := check.New(cfg)
	rec := a.Chain(nil)
	rec.Emit(obs.Event{Kind: obs.KindREF, Cycle: tREFI, Bank: -1, Row: -1, Domain: -1})
	// A request settles at cycle 3*tREFI...
	rec.Emit(obs.Event{Kind: obs.KindRowEmpty, Cycle: 3 * tREFI, Bank: 0, Row: 1, Domain: 0})
	// ...and only afterwards is the REF for 2*tREFI issued (back-dated).
	rec.Emit(obs.Event{Kind: obs.KindREF, Cycle: 2 * tREFI, Bank: -1, Row: -1, Domain: -1})
	firstViolation(t, a, check.InvRefOrder)
}

func TestFlipCausalityViolation(t *testing.T) {
	a := check.New(testConfig())
	// A flip on a row with zero shadow disturbance cannot happen.
	a.Chain(nil).Emit(obs.Event{Kind: obs.KindBitFlip, Cycle: 50, Bank: 1, Row: 7, Domain: 0, Arg: 3})
	firstViolation(t, a, check.InvFlipCause)
}

// TestShadowMatchesRealModule drives a real module through a legal
// command sequence with the auditor chained in and verifies exact
// end-state agreement (open rows, bitwise disturbance, ACT counts,
// counters).
func TestShadowMatchesRealModule(t *testing.T) {
	cfg := testConfig()
	mod, err := dram.NewModule(dram.Config{Geometry: cfg.Geometry, Timing: cfg.Timing, Profile: cfg.Profile, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	a := check.New(cfg)
	mod.SetRecorder(a.Chain(nil))

	cycle := uint64(10)
	for i := 0; i < 50; i++ {
		row := (i * 7) % cfg.Geometry.RowsPerBank()
		if _, err := mod.Activate(i%4, row, cycle, 1); err != nil {
			t.Fatal(err)
		}
		if err := mod.Precharge(i%4, cycle+2); err != nil {
			t.Fatal(err)
		}
		cycle += cfg.Timing.TRC
	}
	mod.SeedDisturbance(5, 100, 321.5)
	if err := mod.RefreshNeighbors(2, 8, 2, cycle); err != nil {
		t.Fatal(err)
	}
	if err := a.Verify(mod, nil); err != nil {
		t.Fatalf("shadow diverged from module: %v", err)
	}
}

// TestVerifyCatchesDrift attaches the auditor after the module already
// has state it never saw; Verify must flag the disagreement.
func TestVerifyCatchesDrift(t *testing.T) {
	cfg := testConfig()
	mod, err := dram.NewModule(dram.Config{Geometry: cfg.Geometry, Timing: cfg.Timing, Profile: cfg.Profile, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mod.Activate(0, 5, 10, 1); err != nil {
		t.Fatal(err)
	}
	a := check.New(cfg)
	mod.SetRecorder(a.Chain(nil))
	err = a.Verify(mod, nil)
	if err == nil {
		t.Fatal("Verify should catch state the auditor never observed")
	}
	v, ok := err.(*check.Violation)
	if !ok {
		t.Fatalf("Verify error should be a *check.Violation, got %T", err)
	}
	if v.Invariant != check.InvStateMatch {
		t.Fatalf("invariant = %s, want %s", v.Invariant, check.InvStateMatch)
	}
	// Verify must be idempotent: same single answer on a second call.
	if err2 := a.Verify(mod, nil); err2 == nil {
		t.Fatal("second Verify should still report the drift")
	}
}

// TestChainForwards checks that the auditor forwards events to the
// user's recorder (honoring its mask) while still auditing them.
func TestChainForwards(t *testing.T) {
	a := check.New(testConfig())
	ring := obs.NewRing(8)
	user := obs.NewRecorder(ring)
	user.SetKinds(obs.KindACT)
	rec := a.Chain(user)
	rec.Emit(obs.Event{Kind: obs.KindACT, Cycle: 10, Bank: 0, Row: 1, Domain: 0, Arg: 1})
	rec.Emit(obs.Event{Kind: obs.KindPRE, Cycle: 12, Bank: 0, Row: -1, Domain: -1})
	if got := ring.Total(); got != 1 {
		t.Fatalf("user recorder saw %d events, want 1 (mask filters PRE)", got)
	}
	if err := a.Err(); err != nil {
		t.Fatalf("legal sequence should be clean: %v", err)
	}
}

func TestViolationListBounded(t *testing.T) {
	cfg := testConfig()
	cfg.MaxViolations = 4
	a := check.New(cfg)
	rec := a.Chain(nil)
	for i := 0; i < 10; i++ {
		// Ten PREs on a closed bank: ten violations, four retained.
		rec.Emit(obs.Event{Kind: obs.KindPRE, Cycle: uint64(i), Bank: 0, Row: -1, Domain: -1})
	}
	if got := len(a.Violations()); got != 4 {
		t.Fatalf("retained %d violations, want 4", got)
	}
	if got := a.Dropped(); got != 6 {
		t.Fatalf("dropped %d violations, want 6", got)
	}
}
