// Package check is the simulator's correctness layer: an online invariant
// auditor that consumes the obs event stream and maintains an independent
// shadow model of DRAM state — row-buffer FSM, per-row charge and ACT
// counts, the periodic refresh sweep — verifying simulator-wide
// invariants as events arrive and, at end of run, that the shadow agrees
// exactly (bit-for-bit on disturbance) with the real module and
// controller counters.
//
// The auditor is a pure observer: it attaches as the first sink of a
// machine's recorder chain (see core.SetChecking and the -check CLI
// flag; it is always on under `go test`) and never feeds anything back
// into the simulation, so results are byte-identical with and without
// it. Violations are typed check.Violation errors carrying the
// triggering event and a trace of the most recent events; they surface
// through core.Machine.CheckInvariants and from there through the
// harness fail-soft CellError machinery.
//
// Invariants verified online (per event):
//
//   - row-buffer-fsm: every ACT lands on a precharged bank, every PRE
//     closes an open row, and each row-hit/empty/conflict classification
//     matches the shadow row-buffer state;
//   - command-order: per bank, request-path command cycles (row
//     classifications and counted ACTs) never decrease;
//   - trc-spacing: counted ACTs to one bank are at least tRC apart;
//   - refresh-cadence: REF commands arrive exactly every tREFI;
//   - ref-issue-order: no REF is issued after a request-path command
//     with a later cycle (a REF "back-dated" behind work that already
//     settled means the refresh schedule was applied too late);
//   - refresh-window-coverage: consecutive sweep recharges of one row
//     are at most tREFW plus slack apart, including across
//     AdvanceTo/catchUpRefresh jumps;
//   - charge-conservation: disturbance accumulates exactly as the blast
//     radius and distance decay dictate, is zeroed by refreshes, never
//     goes negative, and every bit flip happens on a row whose shadow
//     disturbance exceeds the MAC (flip-causality);
//   - domain-enforcer: the enforcer's violation count matches a shadow
//     re-derivation of every request's domain/row verdict.
//
// End-of-run (Verify): shadow open rows, per-row disturbance (exact
// float equality) and ACT counts against the module, plus counter
// agreement (dram.act/pre/ref/flips, mc.acts, mc.domain_violations).
package check

import (
	"fmt"
	"math"
	"strings"

	"hammertime/internal/dram"
	"hammertime/internal/memctrl"
	"hammertime/internal/obs"
)

// Invariant names, used as Violation.Invariant.
const (
	InvRowBufferFSM = "row-buffer-fsm"
	InvCmdOrder     = "command-order"
	InvTRCSpacing   = "trc-spacing"
	InvRefCadence   = "refresh-cadence"
	InvRefOrder     = "ref-issue-order"
	InvRefWindow    = "refresh-window-coverage"
	InvCharge       = "charge-conservation"
	InvFlipCause    = "flip-causality"
	InvEnforcer     = "domain-enforcer"
	InvStateMatch   = "state-agreement"
	InvCounterMatch = "counter-agreement"
)

// Violation is one invariant violation: which invariant, the event that
// triggered it (zero-valued for end-of-run state checks), what exactly
// went wrong, and the most recent events before it (oldest first).
type Violation struct {
	Invariant string
	Event     obs.Event
	Detail    string
	Trace     []obs.Event
}

// Error implements error.
func (v *Violation) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "check: %s violated: %s", v.Invariant, v.Detail)
	if v.Event != (obs.Event{}) {
		fmt.Fprintf(&b, " [at %s]", fmtEvent(v.Event))
	}
	if len(v.Trace) > 0 {
		b.WriteString("; recent events:")
		for _, ev := range v.Trace {
			b.WriteString("\n  ")
			b.WriteString(fmtEvent(ev))
		}
	}
	return b.String()
}

func fmtEvent(ev obs.Event) string {
	return fmt.Sprintf("{%s cycle=%d bank=%d row=%d domain=%d line=%d arg=%d}",
		ev.Kind, ev.Cycle, ev.Bank, ev.Row, ev.Domain, ev.Line, ev.Arg)
}

// Config parametrizes an Auditor. Geometry, Timing and Profile must match
// the audited module's.
type Config struct {
	Geometry dram.Geometry
	Timing   dram.Timing
	Profile  dram.DisturbanceProfile
	// MaxViolations bounds the retained violation list (0 means 16);
	// further violations are counted but dropped.
	MaxViolations int
	// TraceDepth is how many recent events each violation carries
	// (0 means 32).
	TraceDepth int
}

// Auditor is the online invariant checker. It implements obs.Sink; use
// Chain to splice it in front of a user recorder. Not safe for
// concurrent use — one auditor audits one machine.
type Auditor struct {
	geom dram.Geometry
	tim  dram.Timing
	prof dram.DisturbanceProfile

	// Shadow DRAM state, mirrored from events.
	open      []int       // per-bank open row (-1 closed)
	disturb   [][]float64 // per (bank, row) charge disturbance
	acts      [][]uint64  // per (bank, row) ACTs since last refresh
	lastSweep [][]uint64  // per (bank, row) cycle of last sweep recharge

	// Per-bank command ordering.
	lastCmd []uint64 // cycle of the bank's last request-path command
	lastACT []uint64 // cycle+1 of the bank's last counted ACT (0 = never)
	maxCmd  uint64   // max over banks of lastCmd

	// Refresh schedule mirror.
	nextRef   uint64
	sweepPtr  int
	sweepAcc  int
	sweepDen  int
	sweepGap  uint64 // max legal gap between sweeps of one row
	everSwept bool

	// Event counters for end-of-run counter agreement.
	actsAll     uint64 // every ACT command
	actsCounted uint64 // counted (Arg=1) ACTs only
	pres        uint64
	refs        uint64
	flips       uint64

	enf     *memctrl.DomainEnforcer
	enfViol uint64

	ring     []obs.Event
	ringNext int
	ringFull bool

	vios    []Violation
	maxVios int
	dropped uint64
}

// New returns an auditor for a module with the given geometry, timing
// and disturbance profile.
func New(cfg Config) *Auditor {
	if cfg.MaxViolations <= 0 {
		cfg.MaxViolations = 16
	}
	if cfg.TraceDepth <= 0 {
		cfg.TraceDepth = 32
	}
	g := cfg.Geometry
	rows := g.RowsPerBank()
	a := &Auditor{
		geom:    g,
		tim:     cfg.Timing,
		prof:    cfg.Profile,
		open:    make([]int, g.Banks),
		lastCmd: make([]uint64, g.Banks),
		lastACT: make([]uint64, g.Banks),
		nextRef: cfg.Timing.TREFI,
		ring:    make([]obs.Event, cfg.TraceDepth),
		maxVios: cfg.MaxViolations,
	}
	for b := range a.open {
		a.open[b] = -1
	}
	a.disturb = make([][]float64, g.Banks)
	a.acts = make([][]uint64, g.Banks)
	a.lastSweep = make([][]uint64, g.Banks)
	for b := 0; b < g.Banks; b++ {
		a.disturb[b] = make([]float64, rows)
		a.acts[b] = make([]uint64, rows)
		a.lastSweep[b] = make([]uint64, rows)
	}
	a.sweepDen = cfg.Timing.RefreshCommandsPerWindow()
	if a.sweepDen <= 0 {
		a.sweepDen = 1
	}
	// A row is swept once per tREFW; allow two extra tREFI of rounding
	// slack from the fractional sweep accumulator.
	a.sweepGap = cfg.Timing.RefreshWindow + 2*cfg.Timing.TREFI
	return a
}

// SetEnforcer gives the auditor the controller's domain enforcer so it
// can shadow-derive every request's verdict. Must be set before events
// flow to audit the domain-enforcer invariant.
func (a *Auditor) SetEnforcer(e *memctrl.DomainEnforcer) { a.enf = e }

// Chain returns a recorder that feeds the auditor first and then
// forwards every event to next (which may be nil). Components should
// emit into the returned recorder; next's own kind mask still applies
// to forwarded events.
func (a *Auditor) Chain(next *obs.Recorder) *obs.Recorder {
	if next == nil {
		return obs.NewRecorder(a)
	}
	return obs.NewRecorder(a, obs.Forward(next))
}

// Violations returns the retained violations (oldest first).
func (a *Auditor) Violations() []Violation { return a.vios }

// Dropped returns how many violations were discarded beyond the bound.
func (a *Auditor) Dropped() uint64 { return a.dropped }

// Err returns the first online violation as an error, or nil.
func (a *Auditor) Err() error {
	if len(a.vios) == 0 {
		return nil
	}
	return &a.vios[0]
}

func (a *Auditor) violate(inv string, ev obs.Event, format string, args ...any) {
	if len(a.vios) >= a.maxVios {
		a.dropped++
		return
	}
	a.vios = append(a.vios, Violation{
		Invariant: inv,
		Event:     ev,
		Detail:    fmt.Sprintf(format, args...),
		Trace:     a.trace(),
	})
}

// trace returns a copy of the recent-event ring, oldest first.
func (a *Auditor) trace() []obs.Event {
	if !a.ringFull {
		out := make([]obs.Event, a.ringNext)
		copy(out, a.ring[:a.ringNext])
		return out
	}
	out := make([]obs.Event, 0, len(a.ring))
	out = append(out, a.ring[a.ringNext:]...)
	out = append(out, a.ring[:a.ringNext]...)
	return out
}

// Flush implements obs.Sink (no-op).
func (*Auditor) Flush() error { return nil }

// Record implements obs.Sink: it updates the shadow model and checks the
// online invariants.
func (a *Auditor) Record(ev obs.Event) {
	switch ev.Kind {
	case obs.KindACT:
		a.onACT(ev)
	case obs.KindPRE:
		a.onPRE(ev)
	case obs.KindRowHit, obs.KindRowEmpty, obs.KindRowConflict:
		a.onClassify(ev)
	case obs.KindREF:
		a.onREF(ev)
	case obs.KindTargetedRefresh:
		if a.validAddr(ev) {
			a.refreshRow(ev.Bank, ev.Row)
		}
	case obs.KindRefNeighbors:
		a.onRefNeighbors(ev)
	case obs.KindSeedDisturb:
		if a.validAddr(ev) {
			a.disturb[ev.Bank][ev.Row] = math.Float64frombits(ev.Arg)
		}
	case obs.KindBitFlip:
		a.onFlip(ev)
	}

	a.ring[a.ringNext] = ev
	a.ringNext++
	if a.ringNext == len(a.ring) {
		a.ringNext = 0
		a.ringFull = true
	}
}

func (a *Auditor) validAddr(ev obs.Event) bool {
	return a.geom.ValidBank(ev.Bank) && a.geom.ValidRow(ev.Row)
}

func (a *Auditor) refreshRow(bank, row int) {
	a.disturb[bank][row] = 0
	a.acts[bank][row] = 0
}

func (a *Auditor) onACT(ev obs.Event) {
	a.actsAll++
	if !a.validAddr(ev) {
		a.violate(InvRowBufferFSM, ev, "ACT outside geometry (%d banks x %d rows)",
			a.geom.Banks, a.geom.RowsPerBank())
		return
	}
	b := ev.Bank
	if a.open[b] != -1 {
		a.violate(InvRowBufferFSM, ev, "ACT on bank %d with row %d still open (no PRE)", b, a.open[b])
	}
	a.open[b] = ev.Row

	if ev.Arg == 1 {
		// Counted, controller-issued ACT: ordering, tRC and the per-row
		// ACT counter apply. Mitigation-internal cures (Arg 0) are
		// back-dated to REF cycles and skip all three, matching the
		// module's own bookkeeping.
		a.actsCounted++
		a.orderCheck(ev)
		if last := a.lastACT[b]; last > 0 && ev.Cycle < last-1+a.tim.TRC {
			a.violate(InvTRCSpacing, ev, "ACTs on bank %d only %d cycles apart, tRC is %d",
				b, ev.Cycle-(last-1), a.tim.TRC)
		}
		a.lastACT[b] = ev.Cycle + 1
		a.acts[b][ev.Row]++
	}

	// Replay the electrical effects in the module's exact float order so
	// the shadow stays bit-identical: self-recharge, then per-distance
	// neighbor disturbance within the subarray.
	a.disturb[b][ev.Row] = 0
	sub := a.geom.SubarrayOf(ev.Row)
	for dist := 1; dist <= a.prof.BlastRadius; dist++ {
		amount := a.prof.DisturbanceAt(dist)
		if amount < 0 {
			a.violate(InvCharge, ev, "negative disturbance %g at distance %d", amount, dist)
			continue
		}
		for _, victim := range [2]int{ev.Row - dist, ev.Row + dist} {
			if !a.geom.ValidRow(victim) || a.geom.SubarrayOf(victim) != sub {
				continue // subarray isolation: disturbance must not cross
			}
			a.disturb[b][victim] += amount
		}
	}
}

func (a *Auditor) onPRE(ev obs.Event) {
	a.pres++
	if !a.geom.ValidBank(ev.Bank) {
		a.violate(InvRowBufferFSM, ev, "PRE outside geometry (%d banks)", a.geom.Banks)
		return
	}
	if a.open[ev.Bank] == -1 {
		a.violate(InvRowBufferFSM, ev, "PRE on bank %d that is already precharged", ev.Bank)
	}
	a.open[ev.Bank] = -1
}

func (a *Auditor) onClassify(ev obs.Event) {
	if !a.validAddr(ev) {
		a.violate(InvRowBufferFSM, ev, "classification outside geometry")
		return
	}
	a.orderCheck(ev)
	open := a.open[ev.Bank]
	switch ev.Kind {
	case obs.KindRowHit:
		if open != ev.Row {
			a.violate(InvRowBufferFSM, ev, "row-hit on bank %d but shadow open row is %d", ev.Bank, open)
		}
	case obs.KindRowEmpty:
		if open != -1 {
			a.violate(InvRowBufferFSM, ev, "row-empty on bank %d but shadow open row is %d", ev.Bank, open)
		}
	case obs.KindRowConflict:
		if open == -1 || open == ev.Row {
			a.violate(InvRowBufferFSM, ev, "row-conflict on bank %d but shadow open row is %d", ev.Bank, open)
		}
	}
	if a.enf != nil && !a.enf.Allowed(ev.Domain, ev.Row) {
		a.enfViol++
	}
}

// orderCheck enforces per-bank cycle monotonicity of request-path
// commands (classifications and counted ACTs). Mitigation-internal
// commands are exempt: TRR cures are legitimately back-dated to the REF
// cycle that triggered them.
func (a *Auditor) orderCheck(ev obs.Event) {
	if ev.Cycle < a.lastCmd[ev.Bank] {
		a.violate(InvCmdOrder, ev, "%s at cycle %d before bank %d's previous command at %d",
			ev.Kind, ev.Cycle, ev.Bank, a.lastCmd[ev.Bank])
	}
	a.lastCmd[ev.Bank] = ev.Cycle
	if ev.Cycle > a.maxCmd {
		a.maxCmd = ev.Cycle
	}
}

func (a *Auditor) onREF(ev obs.Event) {
	a.refs++
	if ev.Cycle != a.nextRef {
		a.violate(InvRefCadence, ev, "REF at cycle %d, expected %d (tREFI %d): refresh epoch skipped or duplicated",
			ev.Cycle, a.nextRef, a.tim.TREFI)
		// Resynchronize on the observed cycle so one slip reports once.
		a.nextRef = ev.Cycle
	}
	a.nextRef += a.tim.TREFI
	if ev.Cycle <= a.maxCmd && a.maxCmd > 0 {
		a.violate(InvRefOrder, ev, "REF for cycle %d issued after a command at cycle %d already settled",
			ev.Cycle, a.maxCmd)
	}

	// Mirror the module's fractional sweep exactly.
	rows := a.geom.RowsPerBank()
	a.sweepAcc += rows
	for a.sweepAcc >= a.sweepDen {
		a.sweepAcc -= a.sweepDen
		for b := 0; b < a.geom.Banks; b++ {
			if a.everSwept || a.lastSweep[b][a.sweepPtr] > 0 {
				if gap := ev.Cycle - a.lastSweep[b][a.sweepPtr]; gap > a.sweepGap {
					a.violate(InvRefWindow, ev, "row (%d,%d) swept %d cycles after its previous sweep, window is %d",
						b, a.sweepPtr, gap, a.sweepGap)
				}
			}
			a.refreshRow(b, a.sweepPtr)
			a.lastSweep[b][a.sweepPtr] = ev.Cycle
		}
		if a.sweepPtr == rows-1 {
			a.everSwept = true // every row now has a real lastSweep stamp
		}
		a.sweepPtr = (a.sweepPtr + 1) % rows
	}
}

func (a *Auditor) onRefNeighbors(ev obs.Event) {
	if !a.validAddr(ev) {
		return
	}
	sub := a.geom.SubarrayOf(ev.Row)
	for dist := 1; dist <= int(ev.Arg); dist++ {
		for _, victim := range [2]int{ev.Row - dist, ev.Row + dist} {
			if a.geom.ValidRow(victim) && a.geom.SubarrayOf(victim) == sub {
				a.refreshRow(ev.Bank, victim)
			}
		}
	}
}

func (a *Auditor) onFlip(ev obs.Event) {
	a.flips++
	if !a.validAddr(ev) {
		a.violate(InvFlipCause, ev, "bit flip outside geometry")
		return
	}
	if d := a.disturb[ev.Bank][ev.Row]; d <= float64(a.prof.MAC) {
		a.violate(InvFlipCause, ev, "bit flip on row (%d,%d) whose shadow disturbance %g is within the MAC %d",
			ev.Bank, ev.Row, d, a.prof.MAC)
	}
}

// Verify runs the end-of-run agreement checks: the shadow model against
// the module's actual state, and — when mc is non-nil — event counts
// against the controller's counters. It returns the first online
// violation if any occurred, else the first disagreement found, else
// nil. Verify is idempotent: end-of-run disagreements are re-derived,
// not accumulated, so it is safe to call repeatedly on a live machine.
func (a *Auditor) Verify(mod *dram.Module, mc *memctrl.Controller) error {
	if err := a.Err(); err != nil {
		return err
	}
	if mod != nil {
		if v := a.stateMismatch(mod); v != nil {
			return v
		}
		if v := a.moduleCounterMismatch(mod); v != nil {
			return v
		}
	}
	if mc != nil {
		if v := a.controllerCounterMismatch(mc); v != nil {
			return v
		}
	}
	return nil
}

func (a *Auditor) stateMismatch(mod *dram.Module) *Violation {
	mismatch := func(format string, args ...any) *Violation {
		return &Violation{Invariant: InvStateMatch, Detail: fmt.Sprintf(format, args...), Trace: a.trace()}
	}
	if g := mod.Geometry(); g != a.geom {
		return mismatch("auditor geometry %+v differs from module %+v", a.geom, g)
	}
	for b := 0; b < a.geom.Banks; b++ {
		if got := mod.OpenRow(b); got != a.open[b] {
			return mismatch("bank %d open row: module %d, shadow %d", b, got, a.open[b])
		}
		for r := 0; r < a.geom.RowsPerBank(); r++ {
			if got := mod.Disturbance(b, r); got != a.disturb[b][r] {
				return mismatch("row (%d,%d) disturbance: module %g, shadow %g", b, r, got, a.disturb[b][r])
			}
			if got := mod.ActCount(b, r); got != a.acts[b][r] {
				return mismatch("row (%d,%d) ACT count: module %d, shadow %d", b, r, got, a.acts[b][r])
			}
			if a.disturb[b][r] < 0 {
				return &Violation{Invariant: InvCharge,
					Detail: fmt.Sprintf("row (%d,%d) has negative disturbance %g", b, r, a.disturb[b][r])}
			}
		}
	}
	return nil
}

func (a *Auditor) moduleCounterMismatch(mod *dram.Module) *Violation {
	st := mod.Stats()
	for _, c := range []struct {
		name string
		want uint64
	}{
		{"dram.act", a.actsAll},
		{"dram.pre", a.pres},
		{"dram.ref", a.refs},
		{"dram.flips", a.flips},
	} {
		if got := st.Counter(c.name); got != int64(c.want) {
			return &Violation{Invariant: InvCounterMatch,
				Detail: fmt.Sprintf("%s is %d, but %d matching events were recorded", c.name, got, c.want),
				Trace:  a.trace()}
		}
	}
	if got := mod.FlipCount(); got != a.flips {
		return &Violation{Invariant: InvCounterMatch,
			Detail: fmt.Sprintf("module flip count %d, but %d bit-flip events were recorded", got, a.flips)}
	}
	return nil
}

func (a *Auditor) controllerCounterMismatch(mc *memctrl.Controller) *Violation {
	st := mc.Stats()
	if got := st.Counter("mc.acts"); got != int64(a.actsCounted) {
		return &Violation{Invariant: InvCounterMatch,
			Detail: fmt.Sprintf("mc.acts is %d, but %d counted ACT events were recorded", got, a.actsCounted),
			Trace:  a.trace()}
	}
	if a.enf != nil {
		if got := st.Counter("mc.domain_violations"); got != int64(a.enfViol) {
			return &Violation{Invariant: InvEnforcer,
				Detail: fmt.Sprintf("mc.domain_violations is %d, shadow enforcer derived %d", got, a.enfViol),
				Trace:  a.trace()}
		}
	}
	return nil
}
