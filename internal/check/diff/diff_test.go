package diff

import (
	"testing"

	"hammertime/internal/harness"
)

// TestDenseVsReference exercises the dense-vs-naive oracle over several
// seeds and controller configurations; any divergence between the dense
// hot-path state and the sparse reference model fails.
func TestDenseVsReference(t *testing.T) {
	cases := []StreamConfig{
		{Seed: 1, Defense: "none"},
		{Seed: 2, Defense: "para"},
		{Seed: 3, Defense: "graphene"},
		{Seed: 4, Defense: "blockhammer"},
		{Seed: 5, Defense: "none"},
		{Seed: 6, Defense: "para"},
	}
	for _, cfg := range cases {
		cfg := cfg
		t.Run(cfg.Defense+"/"+string('0'+rune(cfg.Seed)), func(t *testing.T) {
			t.Parallel()
			if err := DenseVsReference(cfg); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestSerialVsParallel pins the harness guarantee that worker-pool and
// serial grid execution render byte-identical tables.
func TestSerialVsParallel(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full attack simulations")
	}
	opts := harness.AttackOpts{Horizon: 400_000, Tenants: 2, PagesPerTenant: 60}
	if err := SerialVsParallel([]string{"none", "para", "trr"}, 4, opts); err != nil {
		t.Fatal(err)
	}
}
