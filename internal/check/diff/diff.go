// Package diff holds the simulator's differential oracles: the same
// work computed two independent ways must agree exactly.
//
//   - SerialVsParallel runs an experiment grid twice through the real
//     harness — once serial, once on a worker pool — and compares the
//     rendered result tables byte for byte. It pins the parallel
//     harness's core guarantee (parallel.go): fanning cells out over
//     goroutines never changes results.
//
//   - SerialVsDistributed does the same for the distributed harness: an
//     experiment run through a grid delegate — cells sharded across
//     cluster workers, cached, or stolen back from dead nodes — must
//     render the identical table to an in-process run.
//
//   - DenseVsReference drives one deterministic, seeded request stream
//     through a real controller + module pair and, via the obs event
//     stream, through an independent naive reference model (sparse maps,
//     no hot-path tricks). At the end the dense module state — open
//     rows, per-row disturbance bit for bit, per-row ACT counts — and
//     the recorded bit flips must match the reference exactly. It pins
//     the dense hot-path state introduced for performance against the
//     obviously-correct implementation, with the invariant auditor
//     (package check) chained in for its online checks and counter
//     agreement.
package diff

import (
	"context"
	"fmt"
	"math"

	"hammertime/internal/addr"
	"hammertime/internal/check"
	"hammertime/internal/dram"
	"hammertime/internal/harness"
	"hammertime/internal/memctrl"
	"hammertime/internal/obs"
	"hammertime/internal/sim"
)

// SerialVsParallel runs the E1 protection matrix once with a single
// worker and once on a pool, and returns an error unless the two
// rendered tables are byte-identical. defenses/manySided/opts are
// passed through to harness.E1Matrix; opts.Parallelism is overridden.
func SerialVsParallel(defenses []string, manySided int, opts harness.AttackOpts) error {
	ctx := context.Background()
	serial := opts
	serial.Parallelism = 1
	st, err := harness.E1Matrix(ctx, defenses, manySided, serial)
	if err != nil {
		return fmt.Errorf("diff: serial run: %w", err)
	}
	parallel := opts
	parallel.Parallelism = 4
	pt, err := harness.E1Matrix(ctx, defenses, manySided, parallel)
	if err != nil {
		return fmt.Errorf("diff: parallel run: %w", err)
	}
	if s, p := st.String(), pt.String(); s != p {
		return fmt.Errorf("diff: serial and parallel tables differ:\n--- serial ---\n%s\n--- parallel ---\n%s", s, p)
	}
	return nil
}

// SerialVsDistributed runs the named experiment twice — once plain and
// in-process, once with every identified grid routed through delegate
// (a cluster coordinator, or any other harness.GridDelegate) — and
// returns an error unless the rendered tables are byte-identical. It
// pins the distributed harness's core guarantee: sharding cells across
// workers, serving them from a content-addressed cache, or stealing
// them back from a dead worker never changes a single byte of the
// result. Run it with a worker killed mid-run to pin the recovery path
// too — the oracle cannot tell the difference, which is the point.
func SerialVsDistributed(ctx context.Context, delegate harness.GridDelegate, experiment string, horizon uint64, opts harness.AttackOpts) error {
	if delegate == nil {
		return fmt.Errorf("diff: nil grid delegate")
	}
	serial := opts
	serial.Parallelism = 1
	st, err := harness.Experiment(ctx, experiment, horizon, serial)
	if err != nil {
		return fmt.Errorf("diff: serial run: %w", err)
	}
	dt, err := harness.Experiment(harness.WithGridDelegate(ctx, delegate), experiment, horizon, opts)
	if err != nil {
		return fmt.Errorf("diff: distributed run: %w", err)
	}
	if s, d := st.String(), dt.String(); s != d {
		return fmt.Errorf("diff: serial and distributed tables differ:\n--- serial ---\n%s\n--- distributed ---\n%s", s, d)
	}
	return nil
}

// StreamConfig parametrizes one DenseVsReference run.
type StreamConfig struct {
	// Seed drives every random choice in the stream (and the module and
	// controller RNGs); the run is a pure function of it.
	Seed uint64
	// Requests is the stream length (0 means 4000 operations).
	Requests int
	// Defense selects the controller-side mitigation under the stream:
	// "none", "para", "graphene", or "blockhammer" (which also switches
	// the controller to closed-page to exercise that path).
	Defense string
}

// stressProfile is a deliberately fragile disturbance profile so a short
// stream crosses the MAC and generates flips for the flip-record diff.
func stressProfile() dram.DisturbanceProfile {
	return dram.DisturbanceProfile{Name: "diff-stress", MAC: 64, BlastRadius: 2, DistanceDecay: 0.5, FlipProb: 0.05}
}

// DenseVsReference runs the configured request stream and returns the
// first divergence between the dense module/controller and the naive
// reference model, or nil when they agree exactly.
func DenseVsReference(cfg StreamConfig) error {
	if cfg.Requests == 0 {
		cfg.Requests = 4000
	}
	geom := dram.DefaultGeometry()
	tim := dram.DDR4Timing()
	prof := stressProfile()
	if err := prof.Validate(); err != nil {
		return err
	}
	mod, err := dram.NewModule(dram.Config{Geometry: geom, Timing: tim, Profile: prof, Seed: cfg.Seed})
	if err != nil {
		return err
	}
	mapper := addr.NewLineInterleave(geom)
	mcfg := memctrl.Config{Mapper: mapper, DRAM: mod, OpenPage: true, Seed: cfg.Seed + 1}
	switch cfg.Defense {
	case "", "none":
	case "para":
		mcfg.PARAProb = 0.3
		mcfg.PARARadius = 2
	case "graphene":
		mcfg.Graphene = memctrl.NewGraphene(geom.Banks, 64, 96, 2)
	case "blockhammer":
		mcfg.Admission = memctrl.NewRateLimiter(geom, 96, 200_000, 48)
		mcfg.OpenPage = false
	default:
		return fmt.Errorf("diff: unknown defense %q", cfg.Defense)
	}
	mc, err := memctrl.NewController(mcfg)
	if err != nil {
		return err
	}

	// Reference model and invariant auditor both consume the event
	// stream; the auditor forwards into the reference's recorder.
	ref := newRefModel(geom, tim, prof)
	aud := check.New(check.Config{Geometry: geom, Timing: tim, Profile: prof})
	rec := aud.Chain(obs.NewRecorder(ref))
	mod.SetRecorder(rec)
	mc.SetRecorder(rec)

	// The stream hammers a cluster of adjacent rows in one bank (enough
	// pressure to cross the stress MAC) with background traffic, idle
	// jumps across refresh epochs and whole refresh windows, targeted
	// refreshes, and direct disturbance injection.
	rng := sim.NewRNG(cfg.Seed ^ 0x9e3779b97f4a7c15)
	baseRow := 3 + rng.Intn(geom.RowsPerBank()-8)
	hot := make([]uint64, 4)
	for i := range hot {
		hot[i] = mapper.Unmap(addr.DDR{Bank: 0, Row: baseRow + 2*i, Column: rng.Intn(geom.ColumnsPerRow)})
	}
	now := uint64(0)
	total := geom.TotalLines()
	for i := 0; i < cfg.Requests; i++ {
		op := rng.Intn(100)
		switch {
		case op < 1:
			// Idle across a whole refresh window (thousands of REFs and a
			// Graphene window reset in one catch-up).
			now += tim.RefreshWindow + uint64(rng.Intn(int(tim.TREFI)))
			mc.AdvanceTo(now)
		case op < 3:
			// Idle across a handful of refresh epochs.
			now += tim.TREFI * uint64(1+rng.Intn(20))
			mc.AdvanceTo(now)
		case op < 5:
			res, err := mc.RefreshInstruction(hot[rng.Intn(len(hot))], rng.Intn(2) == 0, 0, now)
			if err != nil {
				return fmt.Errorf("diff: op %d refresh instruction: %w", i, err)
			}
			now = res.Completion
		case op < 6:
			res, err := mc.RefreshNeighborsCmd(hot[rng.Intn(len(hot))], 2, 0, now)
			if err != nil {
				return fmt.Errorf("diff: op %d ref-neighbors: %w", i, err)
			}
			now = res.Completion
		case op < 8:
			mod.SeedDisturbance(rng.Intn(geom.Banks), rng.Intn(geom.RowsPerBank()), float64(rng.Intn(50)))
		default:
			line := hot[rng.Intn(len(hot))]
			if op >= 80 {
				line = rng.Uint64n(total)
			}
			res, err := mc.ServeRequest(memctrl.Request{Line: line, Domain: rng.Intn(3)}, now)
			if err != nil {
				return fmt.Errorf("diff: op %d request: %w", i, err)
			}
			if rng.Bool(0.5) {
				now = res.Completion
			} else {
				now += uint64(rng.Intn(300))
			}
		}
	}
	mc.AdvanceTo(now + tim.TREFI)

	if err := aud.Verify(mod, mc); err != nil {
		return fmt.Errorf("diff: invariant auditor: %w", err)
	}
	if err := ref.diff(mod); err != nil {
		return err
	}
	return nil
}

// rowKey addresses one row of one bank in the reference maps.
type rowKey struct{ bank, row int }

// refModel is the naive reference DRAM model: event-driven, sparse maps,
// no dense arrays, no incremental counters — the implementation you
// would write first and trust. It implements obs.Sink.
type refModel struct {
	geom dram.Geometry
	prof dram.DisturbanceProfile

	open    map[int]int // bank -> open row; absent = precharged
	disturb map[rowKey]float64
	acts    map[rowKey]uint64
	flips   []obs.Event

	// Periodic-sweep mirror (same fractional scheme as the module).
	sweepPtr, sweepAcc, sweepDen int
}

func newRefModel(g dram.Geometry, t dram.Timing, p dram.DisturbanceProfile) *refModel {
	den := t.RefreshCommandsPerWindow()
	if den <= 0 {
		den = 1
	}
	return &refModel{
		geom:     g,
		prof:     p,
		open:     make(map[int]int),
		disturb:  make(map[rowKey]float64),
		acts:     make(map[rowKey]uint64),
		sweepDen: den,
	}
}

// Flush implements obs.Sink (no-op).
func (*refModel) Flush() error { return nil }

// Record implements obs.Sink.
func (r *refModel) Record(ev obs.Event) {
	switch ev.Kind {
	case obs.KindACT:
		r.open[ev.Bank] = ev.Row
		if ev.Arg == 1 {
			r.acts[rowKey{ev.Bank, ev.Row}]++
		}
		// Same float-addition order as the module: self-recharge, then
		// victims per distance, lower row first.
		r.clearRow(ev.Bank, ev.Row)
		sub := r.geom.SubarrayOf(ev.Row)
		for dist := 1; dist <= r.prof.BlastRadius; dist++ {
			amount := r.prof.DisturbanceAt(dist)
			for _, victim := range [2]int{ev.Row - dist, ev.Row + dist} {
				if r.geom.ValidRow(victim) && r.geom.SubarrayOf(victim) == sub {
					r.disturb[rowKey{ev.Bank, victim}] += amount
				}
			}
		}
	case obs.KindPRE:
		delete(r.open, ev.Bank)
	case obs.KindREF:
		rows := r.geom.RowsPerBank()
		r.sweepAcc += rows
		for r.sweepAcc >= r.sweepDen {
			r.sweepAcc -= r.sweepDen
			for b := 0; b < r.geom.Banks; b++ {
				r.clearRow(b, r.sweepPtr)
				delete(r.acts, rowKey{b, r.sweepPtr})
			}
			r.sweepPtr = (r.sweepPtr + 1) % rows
		}
	case obs.KindTargetedRefresh:
		r.clearRow(ev.Bank, ev.Row)
		delete(r.acts, rowKey{ev.Bank, ev.Row})
	case obs.KindRefNeighbors:
		sub := r.geom.SubarrayOf(ev.Row)
		for dist := 1; dist <= int(ev.Arg); dist++ {
			for _, victim := range [2]int{ev.Row - dist, ev.Row + dist} {
				if r.geom.ValidRow(victim) && r.geom.SubarrayOf(victim) == sub {
					r.clearRow(ev.Bank, victim)
					delete(r.acts, rowKey{ev.Bank, victim})
				}
			}
		}
	case obs.KindSeedDisturb:
		r.disturb[rowKey{ev.Bank, ev.Row}] = math.Float64frombits(ev.Arg)
	case obs.KindBitFlip:
		r.flips = append(r.flips, ev)
	}
}

func (r *refModel) clearRow(bank, row int) {
	delete(r.disturb, rowKey{bank, row})
}

// diff compares the reference's final state against the dense module,
// exhaustively over every (bank, row), and the flip records in order.
func (r *refModel) diff(mod *dram.Module) error {
	for b := 0; b < r.geom.Banks; b++ {
		wantOpen := -1
		if row, ok := r.open[b]; ok {
			wantOpen = row
		}
		if got := mod.OpenRow(b); got != wantOpen {
			return fmt.Errorf("diff: bank %d open row: dense %d, reference %d", b, got, wantOpen)
		}
		for row := 0; row < r.geom.RowsPerBank(); row++ {
			if got, want := mod.Disturbance(b, row), r.disturb[rowKey{b, row}]; got != want {
				return fmt.Errorf("diff: row (%d,%d) disturbance: dense %g, reference %g", b, row, got, want)
			}
			if got, want := mod.ActCount(b, row), r.acts[rowKey{b, row}]; got != want {
				return fmt.Errorf("diff: row (%d,%d) ACT count: dense %d, reference %d", b, row, got, want)
			}
		}
	}

	real := mod.Flips()
	if mod.FlipCount() != uint64(len(real)) {
		return fmt.Errorf("diff: stream produced %d flips, beyond the module's %d-record bound; shrink the stream",
			mod.FlipCount(), len(real))
	}
	if len(real) != len(r.flips) {
		return fmt.Errorf("diff: dense module recorded %d flips, reference saw %d flip events", len(real), len(r.flips))
	}
	for i, f := range real {
		ev := r.flips[i]
		if f.Bank != ev.Bank || f.Row != ev.Row || f.Cycle != ev.Cycle ||
			f.ActorDomain != ev.Domain || uint64(f.Bit) != ev.Arg {
			return fmt.Errorf("diff: flip %d: dense %+v, reference event %+v", i, f, ev)
		}
	}
	return nil
}
