package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"hammertime/internal/harness"
	"hammertime/internal/telemetry"
)

// sseEvent is one parsed Server-Sent Event.
type sseEvent struct {
	Type string
	Data string
}

// readSSE parses an SSE stream until EOF.
func readSSE(t *testing.T, body *bufio.Scanner) []sseEvent {
	t.Helper()
	var events []sseEvent
	var typ string
	for body.Scan() {
		line := body.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			typ = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			events = append(events, sseEvent{Type: typ, Data: strings.TrimPrefix(line, "data: ")})
		}
	}
	if err := body.Err(); err != nil {
		t.Fatalf("reading SSE stream: %v", err)
	}
	return events
}

// TestTelemetryEndToEnd drives the full observability path against a
// real manager running a real harness experiment: submit a grid job,
// watch its SSE stream deliver progress and cell completions while it
// runs, then fetch the Chrome trace and verify the span tree nests
// job -> run -> grid -> cell under the trace id the submit response
// returned.
func TestTelemetryEndToEnd(t *testing.T) {
	// Gate the run on a channel so the SSE subscriber is guaranteed to
	// attach before the first cell completes.
	release := make(chan struct{})
	m := NewManager(Config{
		Sessions: 1,
		Run: func(ctx context.Context, req JobRequest) (string, error) {
			<-release
			tb, err := harness.Experiment(ctx, req.Experiment, req.Horizon, harness.AttackOpts{})
			if err != nil {
				return "", err
			}
			return tb.String(), nil
		},
	})
	defer m.Drain(context.Background())
	srv := httptest.NewServer(NewHandler(m))
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"experiment":"e1","horizon":200000}`))
	if err != nil {
		t.Fatal(err)
	}
	var view JobView
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	if view.TraceID == "" {
		t.Fatal("submit response carries no trace_id")
	}

	sse, err := http.Get(srv.URL + "/v1/jobs/" + view.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer sse.Body.Close()
	if ct := sse.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("SSE content type %q", ct)
	}
	// Subscription is registered before the handler writes its response
	// headers, so once Get returns the stream cannot miss cell events.
	close(release)

	type done struct {
		events []sseEvent
	}
	ch := make(chan done, 1)
	go func() {
		sc := bufio.NewScanner(sse.Body)
		sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
		ch <- done{events: readSSE(t, sc)}
	}()
	var events []sseEvent
	select {
	case d := <-ch:
		events = d.events
	case <-time.After(2 * time.Minute):
		t.Fatal("SSE stream did not terminate")
	}

	// The stream must deliver progress and cell completions before the
	// job's terminal state, and end on that terminal state.
	progressBefore, cellsBefore, terminal := 0, 0, false
	var lastState JobView
	for _, ev := range events {
		switch ev.Type {
		case "state":
			if err := json.Unmarshal([]byte(ev.Data), &lastState); err != nil {
				t.Fatalf("bad state event %q: %v", ev.Data, err)
			}
			terminal = terminal || lastState.State.Terminal()
		case "progress":
			if !terminal {
				progressBefore++
			}
			var p telemetry.Progress
			if err := json.Unmarshal([]byte(ev.Data), &p); err != nil {
				t.Fatalf("bad progress event %q: %v", ev.Data, err)
			}
			if p.Total == 0 {
				t.Fatalf("progress with zero total: %+v", p)
			}
		case "cell":
			if !terminal {
				cellsBefore++
			}
		}
	}
	if progressBefore == 0 || cellsBefore == 0 {
		t.Fatalf("got %d progress and %d cell events before completion, want >=1 of each (stream: %v)",
			progressBefore, cellsBefore, events)
	}
	if !terminal || lastState.State != StateDone {
		t.Fatalf("stream ended in state %q (terminal seen: %v), want done", lastState.State, terminal)
	}

	// The Chrome trace nests job -> run -> grid -> cell under the trace
	// id the submit response returned.
	tr, err := http.Get(srv.URL + "/v1/jobs/" + view.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Body.Close()
	var trace struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Pid  int            `json:"pid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.NewDecoder(tr.Body).Decode(&trace); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	str := func(args map[string]any, key string) string {
		s, _ := args[key].(string)
		return s
	}
	names := map[string]string{}   // span id -> name
	parents := map[string]string{} // span id -> parent span id
	var cellSpans []string
	for _, ev := range trace.TraceEvents {
		if ev.Ph != "b" {
			continue
		}
		if got := str(ev.Args, "trace"); got != view.TraceID {
			t.Fatalf("span %q carries trace %q, want %q", ev.Name, got, view.TraceID)
		}
		id := str(ev.Args, "span")
		names[id] = ev.Name
		parents[id] = str(ev.Args, "parent")
		if ev.Name == "cell" {
			cellSpans = append(cellSpans, id)
		}
	}
	if len(cellSpans) == 0 {
		t.Fatalf("no cell spans in trace (%d begins)", len(names))
	}
	// Walk one cell up to the root; the chain must pass through the job
	// span.
	chain := []string{}
	for id := cellSpans[0]; id != ""; id = parents[id] {
		chain = append(chain, names[id])
		if len(chain) > 16 {
			t.Fatalf("span parent chain does not terminate: %v", chain)
		}
	}
	if chain[len(chain)-1] != "job" {
		t.Fatalf("cell span chain %v does not root at the job span", chain)
	}
	found := false
	for _, n := range chain {
		if strings.HasPrefix(n, "grid:") {
			found = true
		}
	}
	if !found {
		t.Fatalf("cell span chain %v skips the grid span", chain)
	}

	// JSONL form serves too.
	jl, err := http.Get(srv.URL + "/v1/jobs/" + view.ID + "/trace?format=jsonl")
	if err != nil {
		t.Fatal(err)
	}
	defer jl.Body.Close()
	sc := bufio.NewScanner(jl.Body)
	lines := 0
	for sc.Scan() {
		var span struct {
			Type  string `json:"type"`
			Trace string `json:"trace"`
		}
		if err := json.Unmarshal(sc.Bytes(), &span); err != nil {
			t.Fatalf("bad JSONL span line %q: %v", sc.Text(), err)
		}
		if span.Type != "span" || span.Trace != view.TraceID {
			t.Fatalf("JSONL span line %q: wrong type or trace", sc.Text())
		}
		lines++
	}
	if lines != len(names) {
		t.Fatalf("JSONL has %d spans, Chrome trace has %d", lines, len(names))
	}
}

// TestMetricsNegotiationAndRouteInstrumentation checks that /metrics
// stays JSON by default, switches to Prometheus text exposition on
// Accept, and that the middleware feeds per-route histograms, request
// counters and access logs.
func TestMetricsNegotiationAndRouteInstrumentation(t *testing.T) {
	var logBuf bytes.Buffer
	m := NewManager(Config{
		Logger: slog.New(slog.NewTextHandler(&logBuf, nil)),
		Run: func(ctx context.Context, req JobRequest) (string, error) {
			return "table", nil
		},
	})
	defer m.Drain(context.Background())
	h := NewHandler(m)

	// Default stays JSON (existing tooling depends on it).
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rr.Header().Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Fatalf("default /metrics content type %q", ct)
	}
	var js map[string]any
	if err := json.Unmarshal(rr.Body.Bytes(), &js); err != nil {
		t.Fatalf("default /metrics is not JSON: %v", err)
	}

	// Generate some route traffic, including a 404.
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/healthz", nil))
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/v1/jobs/nope", nil))

	req := httptest.NewRequest("GET", "/metrics", nil)
	req.Header.Set("Accept", "text/plain")
	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	if ct := rr.Header().Get("Content-Type"); ct != telemetry.PromContentType {
		t.Fatalf("prom /metrics content type %q", ct)
	}
	body := rr.Body.String()
	for _, want := range []string{
		`serve_http_seconds_bucket{route="GET /healthz",le="+Inf"}`,
		`serve_http_requests{route="GET /healthz",code="200"}`,
		`serve_http_requests{route="GET /v1/jobs/{id}",code="404"}`,
		"serve_sessions",
		"# TYPE serve_http_seconds histogram",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("prom exposition missing %q:\n%s", want, body)
		}
	}

	logs := logBuf.String()
	if !strings.Contains(logs, "route=/healthz") && !strings.Contains(logs, `route="GET /healthz"`) {
		t.Fatalf("access log missing /healthz route:\n%s", logs)
	}
	if !strings.Contains(logs, "status=404") {
		t.Fatalf("access log missing 404 line:\n%s", logs)
	}
}

// TestSSEKeepaliveAndCancel covers the stream's idle and teardown
// paths: a queued job's stream sends keepalive comments, and cancelling
// the job ends the stream with a terminal state event.
func TestSSEKeepaliveAndCancel(t *testing.T) {
	old := sseKeepalive
	sseKeepalive = 20 * time.Millisecond
	defer func() { sseKeepalive = old }()

	block := make(chan struct{})
	defer close(block)
	m := NewManager(Config{
		Sessions: 1,
		Run: func(ctx context.Context, req JobRequest) (string, error) {
			select {
			case <-block:
			case <-ctx.Done():
			}
			return "", ctx.Err()
		},
	})
	defer m.Drain(context.Background())
	srv := httptest.NewServer(NewHandler(m))
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"experiment":"e1"}`))
	if err != nil {
		t.Fatal(err)
	}
	var view JobView
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	sse, err := http.Get(srv.URL + "/v1/jobs/" + view.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer sse.Body.Close()

	raw := make(chan string, 1)
	go func() {
		var buf bytes.Buffer
		sc := bufio.NewScanner(sse.Body)
		for sc.Scan() {
			fmt.Fprintln(&buf, sc.Text())
		}
		raw <- buf.String()
	}()

	// Let at least one keepalive tick pass, then cancel the job.
	time.Sleep(80 * time.Millisecond)
	req, _ := http.NewRequest("DELETE", srv.URL+"/v1/jobs/"+view.ID, nil)
	if _, err := http.DefaultClient.Do(req); err != nil {
		t.Fatal(err)
	}

	var stream string
	select {
	case stream = <-raw:
	case <-time.After(10 * time.Second):
		t.Fatal("SSE stream did not end after cancel")
	}
	if !strings.Contains(stream, ": keepalive") {
		t.Fatalf("no keepalive comment in stream:\n%s", stream)
	}
	if !strings.Contains(stream, `"state":"cancelled"`) {
		t.Fatalf("stream missing terminal cancelled state:\n%s", stream)
	}
}
